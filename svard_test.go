package svard

import (
	"testing"

	"svard/internal/sim"
)

func TestModuleLabels(t *testing.T) {
	labels := ModuleLabels()
	if len(labels) != 15 {
		t.Fatalf("labels = %d, want 15", len(labels))
	}
	if _, err := BuildModuleScaled(labels[0], 1, 1024, 1024); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildModule("nope", 1); err == nil {
		t.Error("unknown label accepted")
	}
}

func TestPublicPipeline(t *testing.T) {
	m, err := BuildModuleScaled("M0", 1, 2048, 2048)
	if err != nil {
		t.Fatal(err)
	}
	bench, model, err := NewBench(m)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Dev.Geom.RowsPerBank != 2048 {
		t.Error("bench geometry mismatch")
	}
	prof := CaptureProfile(m)
	sv, err := NewSvard(prof, 256)
	if err != nil {
		t.Fatal(err)
	}
	if sv.MinBudget() != 256 {
		t.Errorf("scaled min budget = %v", sv.MinBudget())
	}
	// Budget security against the scaled model.
	factor := 256 / prof.MinSafeThreshold()
	for row := 2; row < 200; row++ {
		budget := sv.ActivationBudget(1, row)
		for _, v := range []int{row - 1, row + 1} {
			if budget >= model.HCFirst(1, v)*factor {
				t.Fatalf("budget %v >= scaled victim HCfirst", budget)
			}
		}
	}
}

// TestEndToEndDefenseProtects is the repo's headline integration test:
// on a weak future chip, an undefended hammering workload flips bits,
// and every defense — with and without Svärd — prevents all of them.
func TestEndToEndDefenseProtects(t *testing.T) {
	base := DefaultSimConfig()
	base.Cores = 2
	base.RowsPerBank = 2048
	base.CellsPerRow = 2048
	base.InstrPerCore = 40_000
	base.WarmupPerCore = 5_000
	base.NRH = 64
	base.Mix = []string{"attack:rrs", "mcf06"}

	undefended := base
	undefended.Defense = "none"
	res, err := RunSim(undefended)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("undefended hammering caused no bitflips; the threat model is vacuous")
	}

	for _, defense := range sim.DefenseNames {
		for _, svard := range []bool{false, true} {
			cfg := base
			cfg.Defense = defense
			cfg.Svard = svard
			res, err := RunSim(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violations != 0 {
				t.Errorf("%s (svard=%v): %d bitflips under attack", defense, svard, res.Violations)
			}
		}
	}
}
