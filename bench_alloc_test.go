package svard

import (
	"testing"

	"svard/internal/core"
	"svard/internal/mitigation"
	"svard/internal/mitigation/aqua"
	"svard/internal/mitigation/blockhammer"
	"svard/internal/mitigation/hydra"
	"svard/internal/mitigation/para"
	"svard/internal/mitigation/rrs"
	"svard/internal/sim"
)

// benchRunConfig is the single-simulation config the allocation
// benchmarks run: small enough for tight iteration, busy enough
// (low threshold, mixed locality) that every defense hot path fires.
func benchRunConfig(defense string) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	cfg.RowsPerBank = 2048
	cfg.CellsPerRow = 2048
	cfg.InstrPerCore = 15_000
	cfg.WarmupPerCore = 3_000
	cfg.NRH = 64
	cfg.Defense = defense
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	return cfg
}

// BenchmarkSimRunAllocs measures one pooled simulation per iteration
// with allocation reporting: the headline number for the run-state
// pooling work. After the pool warms (first iteration), steady-state
// allocs/op is the per-cell allocation cost an entire sweep pays.
func BenchmarkSimRunAllocs(b *testing.B) {
	cfg := benchRunConfig("para")
	pool := sim.NewPool()
	if _, err := pool.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRunFreshAllocs is the unpooled reference: the same
// simulation built from scratch every iteration, as every cell of a
// sweep used to be. The ratio to BenchmarkSimRunAllocs is the pooling
// win.
func BenchmarkSimRunFreshAllocs(b *testing.B) {
	cfg := benchRunConfig("para")
	if _, err := sim.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDefenseHot drives one defense's CanActivate/OnActivate hot path
// directly (no simulator around it), the per-activation cost every ACT
// pays. ReportAllocs pins the zero-allocation contract of the flat
// per-row tables and directive scratch buffers.
func benchDefenseHot(b *testing.B, build func(si mitigation.SystemInfo, th core.Thresholds) mitigation.Defense) {
	b.Helper()
	si := mitigation.SystemInfo{
		Banks:       32,
		RowsPerBank: 8192,
		REFWCycles:  2_000_000,
		Seed:        1,
	}
	d := build(si, core.Fixed(1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank := i & 31
		row := (i * 613) & 8191
		cycle := uint64(i) * 50
		if ok, _ := d.CanActivate(bank, row, cycle); ok {
			d.OnActivate(bank, row, cycle)
		}
	}
}

func BenchmarkDefenseAQUA(b *testing.B) {
	benchDefenseHot(b, func(si mitigation.SystemInfo, th core.Thresholds) mitigation.Defense {
		return aqua.New(si, th, 3.2)
	})
}

func BenchmarkDefenseBlockHammer(b *testing.B) {
	benchDefenseHot(b, func(si mitigation.SystemInfo, th core.Thresholds) mitigation.Defense {
		return blockhammer.New(si, th)
	})
}

func BenchmarkDefenseHydra(b *testing.B) {
	benchDefenseHot(b, func(si mitigation.SystemInfo, th core.Thresholds) mitigation.Defense {
		return hydra.New(si, th)
	})
}

func BenchmarkDefensePARA(b *testing.B) {
	benchDefenseHot(b, func(si mitigation.SystemInfo, th core.Thresholds) mitigation.Defense {
		return para.New(si, th)
	})
}

func BenchmarkDefenseRRS(b *testing.B) {
	benchDefenseHot(b, func(si mitigation.SystemInfo, th core.Thresholds) mitigation.Defense {
		return rrs.New(si, th, 3.2)
	})
}
