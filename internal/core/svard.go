// Package core implements Svärd, the paper's contribution (§6): a
// mechanism that supplies existing read disturbance defenses with a
// per-row HCfirst classification instead of the module-wide worst case,
// dynamically tuning their aggressiveness to each potential victim row's
// actual vulnerability.
//
// Svärd sits next to the defense (in the memory controller or in the
// DRAM chip, §6.2). On every row activation it reports the activation
// budget: the largest hammer count guaranteed safe for every potential
// victim of that aggressor row. Defenses replace their global nRH with
// this per-activation value. Security is preserved by construction: the
// budget is the minimum of the victims' profiled safe thresholds, each
// of which lower-bounds the victim's true HCfirst (§6.3).
package core

import (
	"fmt"

	"svard/internal/profile"
)

// Thresholds supplies a defense with the hammer-count budget for an
// activation of (bank, row). Implementations: Fixed (the conventional
// single worst-case nRH) and Svard (per-row, profile-driven).
type Thresholds interface {
	// ActivationBudget returns the number of activations of (bank, row)
	// that are guaranteed safe for all of the row's potential victims.
	ActivationBudget(bank, row int) float64
	// MinBudget returns the smallest budget any activation can have
	// (used for sizing defense structures).
	MinBudget() float64
}

// Fixed is the profile-oblivious baseline: every row gets the module's
// worst-case threshold.
type Fixed float64

// ActivationBudget implements Thresholds.
func (f Fixed) ActivationBudget(bank, row int) float64 { return float64(f) }

// MinBudget implements Thresholds.
func (f Fixed) MinBudget() float64 { return float64(f) }

// BlastRadius is how far (in physical rows) an aggressor's disturbance
// reaches victims. Svärd budgets for victims at distance 1 and 2,
// matching the device model.
const BlastRadius = 2

// Distance2Coupling is the assumed fraction of an aggressor's
// disturbance that reaches a distance-2 victim, with a 2x safety margin
// over the characterized coupling (~5% on the modelled chips): a
// distance-2 victim with safe threshold T tolerates T/Distance2Coupling
// activations of the aggressor.
const Distance2Coupling = 0.1

// Svard answers activation-budget queries from a captured (and
// optionally scaled) vulnerability profile.
type Svard struct {
	prof        *profile.ScaledProfile
	rowsPerBank int
	store       Store
}

// Store abstracts where the per-row classification metadata lives
// (§6.1 A/B): an exact table in the memory controller, in-DRAM
// integrity bits, or a Bloom-filter-compressed table. All stores must be
// conservative: they may under-report a row's safe threshold, never
// over-report it.
type Store interface {
	// SafeThreshold returns the stored safe threshold for one row.
	SafeThreshold(bank, row int) float64
}

// Option configures New.
type Option func(*config)

type config struct {
	store func(*profile.ScaledProfile) Store
}

// WithBloomStore compresses the metadata with per-bin Bloom filters
// (bitsPerBin bits each); false positives only ever lower a row's
// reported threshold, preserving security at some performance cost.
func WithBloomStore(bitsPerBin int) Option {
	return func(c *config) {
		c.store = func(p *profile.ScaledProfile) Store {
			return NewBloomStore(p, bitsPerBin)
		}
	}
}

// New builds Svärd over a scaled vulnerability profile. By default the
// metadata lives in an exact MC-side table (§6.1 option A).
func New(prof *profile.ScaledProfile, opts ...Option) (*Svard, error) {
	if prof == nil || prof.P == nil {
		return nil, fmt.Errorf("core: nil profile")
	}
	cfg := config{store: func(p *profile.ScaledProfile) Store { return tableStore{p} }}
	for _, o := range opts {
		o(&cfg)
	}
	return &Svard{
		prof:        prof,
		rowsPerBank: prof.P.RowsPerBank,
		store:       cfg.store(prof),
	}, nil
}

// tableStore is the exact MC-side table (§6.1 option A / §6.4 table
// implementation).
type tableStore struct{ p *profile.ScaledProfile }

func (t tableStore) SafeThreshold(bank, row int) float64 {
	return t.p.SafeThreshold(bank, row)
}

// ActivationBudget implements Thresholds: the tightest constraint over
// the activated row's potential victims — each victim's safe threshold
// divided by the coupling its distance receives (distance-1 victims
// couple fully; distance-2 victims receive Distance2Coupling of the
// disturbance, so they tolerate proportionally more activations).
func (s *Svard) ActivationBudget(bank, row int) float64 {
	budget := -1.0
	for d := -BlastRadius; d <= BlastRadius; d++ {
		if d == 0 {
			continue
		}
		v := row + d
		if v < 0 || v >= s.rowsPerBank {
			continue
		}
		th := s.store.SafeThreshold(bank, v)
		if d == -2 || d == 2 {
			th /= Distance2Coupling
		}
		if budget < 0 || th < budget {
			budget = th
		}
	}
	if budget < 0 {
		// A bank with a single row has no victims; any budget is safe.
		return s.prof.MinSafeThreshold()
	}
	return budget
}

// MinBudget implements Thresholds.
func (s *Svard) MinBudget() float64 { return s.prof.MinSafeThreshold() }

// Profile exposes the underlying scaled profile.
func (s *Svard) Profile() *profile.ScaledProfile { return s.prof }
