package core

import (
	"svard/internal/profile"
	"svard/internal/rng"
)

// BloomStore compresses Svärd's per-row bin metadata with one Bloom
// filter per vulnerability bin, as suggested in §6.1 ("Svärd's
// classification metadata storage can be optimized by using Bloom
// filters"). Membership is queried from the weakest bin upward and the
// first hit wins, so a false positive can only *lower* the reported
// threshold — conservative, hence security-preserving — while rows in no
// filter fall back to the strongest observed bin.
type BloomStore struct {
	p     *profile.ScaledProfile
	bins  []uint8 // distinct bin indices present, ascending (weakest first)
	bits  []uint64
	nbits int
	k     int // hash functions
}

// NewBloomStore builds the compressed store with bitsPerBin bits per
// distinct bin.
func NewBloomStore(p *profile.ScaledProfile, bitsPerBin int) *BloomStore {
	if bitsPerBin < 64 {
		bitsPerBin = 64
	}
	// Collect the distinct bins, weakest (below-grid) first. The bin id
	// domain is a uint8: a fixed array beats hashing every row.
	var present [256]bool
	for _, bankBins := range p.P.Bins {
		for _, b := range bankBins {
			present[b] = true
		}
	}
	var bins []uint8
	if present[profile.BinBelowGrid] {
		bins = append(bins, profile.BinBelowGrid)
	}
	for idx := 0; idx < len(p.P.Levels); idx++ {
		if present[uint8(idx)] {
			bins = append(bins, uint8(idx))
		}
	}
	s := &BloomStore{
		p:     p,
		bins:  bins,
		nbits: bitsPerBin,
		k:     4,
	}
	words := (bitsPerBin + 63) / 64
	s.bits = make([]uint64, words*len(bins))

	// Populate: every characterized row joins its bin's filter, except
	// rows of the strongest bin, which is the fallback and needs no bits.
	for bi, bank := range p.P.Banks {
		for row, bin := range p.P.Bins[bi] {
			slot := s.binSlot(bin)
			if slot < 0 || slot == len(s.bins)-1 {
				continue
			}
			s.insert(slot, bank, row)
		}
	}
	return s
}

func (s *BloomStore) binSlot(bin uint8) int {
	for i, b := range s.bins {
		if b == bin {
			return i
		}
	}
	return -1
}

func (s *BloomStore) bitPositions(bank, row int) [4]int {
	var pos [4]int
	h := rng.Hash64(uint64(bank), uint64(row))
	for i := range pos {
		pos[i] = int(h % uint64(s.nbits))
		h = rng.Mix64(h)
	}
	return pos
}

func (s *BloomStore) insert(slot, bank, row int) {
	base := slot * ((s.nbits + 63) / 64)
	for _, p := range s.bitPositions(bank, row) {
		s.bits[base+p/64] |= 1 << (p % 64)
	}
}

func (s *BloomStore) contains(slot, bank, row int) bool {
	base := slot * ((s.nbits + 63) / 64)
	for _, p := range s.bitPositions(bank, row) {
		if s.bits[base+p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// SafeThreshold implements Store: first matching filter from the
// weakest bin up; fallback to the strongest bin.
func (s *BloomStore) SafeThreshold(bank, row int) float64 {
	// Normalize the bank to a characterized one, like the exact table.
	bankPos := -1
	for i, b := range s.p.P.Banks {
		if b == bank {
			bankPos = i
			break
		}
	}
	if bankPos < 0 {
		bankPos = bank % len(s.p.P.Banks)
	}
	cb := s.p.P.Banks[bankPos]
	row %= s.p.P.RowsPerBank
	for slot := 0; slot < len(s.bins)-1; slot++ {
		if s.contains(slot, cb, row) {
			return s.binThreshold(s.bins[slot])
		}
	}
	return s.binThreshold(s.bins[len(s.bins)-1])
}

func (s *BloomStore) binThreshold(bin uint8) float64 {
	if bin == profile.BinBelowGrid {
		return s.p.P.Levels[0] / 2 * s.Factor()
	}
	return s.p.P.Levels[bin] * s.Factor()
}

// Factor exposes the profile's scaling factor.
func (s *BloomStore) Factor() float64 { return s.p.Factor }

// SizeBits returns the total metadata size in bits.
func (s *BloomStore) SizeBits() int { return len(s.bits) * 64 }
