package core

import "math"

// Hardware cost model for Svärd's metadata storage (§6.4). The paper
// evaluates two implementations with CACTI:
//
//  1. a table in the memory controller: 0.056 mm² per DRAM bank (64K
//     rows × 4-bit bin ids), 0.47 ns access latency, 0.86% of a
//     four-channel high-end Xeon's chip area for a dual-rank system
//     with 16 banks per rank;
//  2. metadata bits in the DRAM array: 4 extra bits per 8 KiB row,
//     a 0.006% DRAM array size increase, zero added latency.
//
// The constants below are fit to those published numbers, so the model
// regenerates §6.4's arithmetic for arbitrary configurations.

// CostConfig describes a system for the metadata cost model.
type CostConfig struct {
	RowsPerBank  int     // DRAM rows per bank (paper: 64K)
	RowBytes     int     // DRAM row size (paper: 8 KiB)
	BitsPerRow   int     // metadata bits per row (paper: 4, for <=16 bins)
	BanksPerRank int     // paper: 16
	Ranks        int     // per channel; paper: 2
	Channels     int     // paper: 4 (high-end Xeon)
	CPUDieMM2    float64 // reference die area; defaults to refXeonDieMM2
}

// DefaultCostConfig returns §6.4's evaluated configuration.
func DefaultCostConfig() CostConfig {
	return CostConfig{
		RowsPerBank:  64 * 1024,
		RowBytes:     8 * 1024,
		BitsPerRow:   4,
		BanksPerRank: 16,
		Ranks:        2,
		Channels:     4,
		CPUDieMM2:    refXeonDieMM2,
	}
}

// SRAM area per metadata bit (mm²), fit to 0.056 mm² for a 64K×4b bank
// table.
const sramMM2PerBit = 0.056 / (64 * 1024 * 4)

// refXeonDieMM2 is fit so the paper's dual-rank, 16-banks-per-rank,
// four-channel table overhead equals 0.86% of the CPU die.
const refXeonDieMM2 = 0.056 * 2 * 16 * 4 / 0.0086

// TableCost is the MC-side table implementation's cost.
type TableCost struct {
	PerBankMM2  float64 // SRAM area per bank table
	TotalMM2    float64 // across all channels/ranks/banks
	CPUAreaFrac float64 // fraction of the reference CPU die
	AccessNs    float64 // lookup latency
	HiddenByACT bool    // lookup fully overlaps row activation latency
}

// DRAMBitsCost is the in-DRAM metadata implementation's cost.
type DRAMBitsCost struct {
	ArrayOverheadFrac float64 // DRAM array size increase
	AddedLatencyNs    float64 // always 0: metadata rides the data access
}

// rowActivationNs is a typical DDR4 tRCD the paper cites (≈14 ns); the
// table lookup hides under it.
const rowActivationNs = 14.0

// TableImplementation evaluates the MC table option for cfg.
func TableImplementation(cfg CostConfig) TableCost {
	bits := float64(cfg.RowsPerBank * cfg.BitsPerRow)
	perBank := bits * sramMM2PerBit
	total := perBank * float64(cfg.BanksPerRank*cfg.Ranks*cfg.Channels)
	die := cfg.CPUDieMM2
	if die == 0 {
		die = refXeonDieMM2
	}
	// CACTI-style latency: ~0.47 ns at 64K entries, growing gently with
	// log2 of the entry count.
	lat := 0.47 + 0.03*(math.Log2(float64(cfg.RowsPerBank))-16)
	return TableCost{
		PerBankMM2:  perBank,
		TotalMM2:    total,
		CPUAreaFrac: total / die,
		AccessNs:    lat,
		HiddenByACT: lat < rowActivationNs,
	}
}

// DRAMBitsImplementation evaluates the in-DRAM metadata option for cfg.
func DRAMBitsImplementation(cfg CostConfig) DRAMBitsCost {
	rowBits := float64(cfg.RowBytes * 8)
	return DRAMBitsCost{
		ArrayOverheadFrac: float64(cfg.BitsPerRow) / rowBits,
		AddedLatencyNs:    0,
	}
}
