package core

import (
	"math"
	"testing"
	"testing/quick"

	"svard/internal/disturb"
	"svard/internal/profile"
)

func testSvard(t *testing.T, label string, targetMin float64, opts ...Option) (*Svard, *disturb.Model, float64) {
	t.Helper()
	spec, ok := profile.SpecByLabel(label)
	if !ok {
		t.Fatalf("unknown module %s", label)
	}
	m, err := profile.BuildScaled(spec, 1, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	model := m.NewModel()
	prof := profile.Capture(model, label, profile.TestedBanks())
	scaled := prof.ScaledTo(targetMin)
	s, err := New(scaled, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, model, scaled.Factor
}

func TestFixedThresholds(t *testing.T) {
	f := Fixed(1024)
	if f.ActivationBudget(3, 99) != 1024 || f.MinBudget() != 1024 {
		t.Error("Fixed threshold must be constant")
	}
}

func TestNewRejectsNil(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestBudgetIsMinOverVictims(t *testing.T) {
	s, _, _ := testSvard(t, "S0", 1024)
	prof := s.Profile()
	for _, bank := range profile.TestedBanks() {
		for row := 2; row < 100; row++ {
			want := math.Inf(1)
			for d := -BlastRadius; d <= BlastRadius; d++ {
				if d == 0 {
					continue
				}
				v := row + d
				if v < 0 || v >= prof.P.RowsPerBank {
					continue
				}
				th := prof.SafeThreshold(bank, v)
				if d == -2 || d == 2 {
					th /= Distance2Coupling
				}
				if th < want {
					want = th
				}
			}
			if got := s.ActivationBudget(bank, row); got != want {
				t.Fatalf("bank %d row %d: budget %v, want %v", bank, row, got, want)
			}
		}
	}
}

// Security invariant: hammering any row for its activation budget must
// not flip any of its victims, under the scaled vulnerability model.
func TestBudgetNeverExceedsVictimHCFirst(t *testing.T) {
	for _, label := range []string{"S0", "M0", "H1"} {
		for _, target := range []float64{4096, 256, 64} {
			s, model, factor := testSvard(t, label, target)
			for _, bank := range profile.TestedBanks() {
				for row := 0; row < 4096; row++ {
					budget := s.ActivationBudget(bank, row)
					for d := -BlastRadius; d <= BlastRadius; d++ {
						v := row + d
						if d == 0 || v < 0 || v >= 4096 {
							continue
						}
						// Effective hammers the victim sees if this row is
						// activated budget times (distance-2 victims couple
						// at Distance2Coupling, itself 2x the model's).
						eff := budget
						if d == -2 || d == 2 {
							eff *= Distance2Coupling
						}
						trueHC := model.HCFirst(bank, v) * factor
						if eff >= trueHC {
							t.Fatalf("%s target %v bank %d row %d: effective %v >= victim %d scaled HCfirst %v",
								label, target, bank, row, eff, v, trueHC)
						}
					}
				}
			}
		}
	}
}

func TestBudgetAtLeastMin(t *testing.T) {
	s, _, _ := testSvard(t, "M0", 512)
	min := s.MinBudget()
	for row := 0; row < 4096; row += 7 {
		if b := s.ActivationBudget(4, row); b < min {
			t.Fatalf("row %d budget %v below profile minimum %v", row, b, min)
		}
	}
}

func TestSvardBudgetsExceedWorstCaseForMostRows(t *testing.T) {
	// The entire point: most activations get budgets well above the
	// module's worst case (S0's distribution is top-heavy, Fig. 5).
	s, _, _ := testSvard(t, "S0", 64)
	min := s.MinBudget()
	better := 0
	sum := 0.0
	const rows = 4096
	for row := 0; row < rows; row++ {
		b := s.ActivationBudget(1, row)
		sum += b
		if b >= 1.5*min {
			better++
		}
	}
	if frac := float64(better) / rows; frac < 0.4 {
		t.Errorf("only %v of rows have budgets >=1.5x worst case; Svärd would not help", frac)
	}
	if mean := sum / rows; mean < 1.6*min {
		t.Errorf("mean budget %v vs worst case %v; Svärd would not help", mean, min)
	}
}

func TestBloomStoreConservative(t *testing.T) {
	sExact, _, _ := testSvard(t, "S0", 1024)
	sBloom, _, _ := testSvard(t, "S0", 1024, WithBloomStore(1<<17))
	lower, n := 0, 0
	for _, bank := range profile.TestedBanks() {
		for row := 0; row < 4096; row += 3 {
			e := sExact.ActivationBudget(bank, row)
			b := sBloom.ActivationBudget(bank, row)
			if b > e {
				t.Fatalf("bloom store over-reported: row %d exact %v bloom %v", row, e, b)
			}
			if b < e {
				lower++
			}
			n++
		}
	}
	// False positives must be rare with generously sized filters.
	if frac := float64(lower) / float64(n); frac > 0.05 {
		t.Errorf("bloom store degraded %v of budgets; filters too small", frac)
	}
}

func TestBloomStoreSize(t *testing.T) {
	spec, _ := profile.SpecByLabel("M0")
	m, err := profile.BuildScaled(spec, 1, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.Capture(m.NewModel(), "M0", profile.TestedBanks())
	bs := NewBloomStore(prof.ScaledTo(1024), 1<<12)
	if bs.SizeBits() == 0 {
		t.Fatal("empty bloom store")
	}
	// Compression: far fewer bits than the exact table (4 bits per row x
	// 4 banks x 4096 rows = 64Kb).
	if bs.SizeBits() >= 4*4*4096 {
		t.Errorf("bloom store (%d bits) not smaller than exact table", bs.SizeBits())
	}
}

func TestQuickBudgetPositive(t *testing.T) {
	s, _, _ := testSvard(t, "H1", 128)
	f := func(bank uint8, row uint16) bool {
		b := s.ActivationBudget(int(bank)%16, int(row)%4096)
		return b > 0 && !math.IsInf(b, 0) && !math.IsNaN(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableCostMatchesPaper(t *testing.T) {
	c := TableImplementation(DefaultCostConfig())
	if math.Abs(c.PerBankMM2-0.056) > 1e-9 {
		t.Errorf("per-bank area = %v mm2, want 0.056 (paper §6.4)", c.PerBankMM2)
	}
	if math.Abs(c.CPUAreaFrac-0.0086) > 1e-4 {
		t.Errorf("CPU area fraction = %v, want 0.86%%", c.CPUAreaFrac)
	}
	if math.Abs(c.AccessNs-0.47) > 0.01 {
		t.Errorf("access latency = %v ns, want 0.47", c.AccessNs)
	}
	if !c.HiddenByACT {
		t.Error("table lookup must hide under row activation latency")
	}
}

func TestDRAMBitsCostMatchesPaper(t *testing.T) {
	c := DRAMBitsImplementation(DefaultCostConfig())
	if math.Abs(c.ArrayOverheadFrac-0.00006103515625) > 1e-12 {
		t.Errorf("DRAM array overhead = %v, want 4/65536 (0.006%%)", c.ArrayOverheadFrac)
	}
	if c.AddedLatencyNs != 0 {
		t.Error("in-DRAM metadata must add no access latency")
	}
}

func TestCostScalesWithRows(t *testing.T) {
	small := DefaultCostConfig()
	big := DefaultCostConfig()
	big.RowsPerBank *= 2
	cs, cb := TableImplementation(small), TableImplementation(big)
	if cb.PerBankMM2 <= cs.PerBankMM2 {
		t.Error("table area must grow with row count")
	}
	if cb.AccessNs <= cs.AccessNs {
		t.Error("table latency must grow with entry count")
	}
}
