// Package cache is the persistent, content-addressed simulation result
// store behind the campaign engine (internal/campaign): the evaluation
// sweeps are hundreds of independent cycle-level simulations, and a
// re-run with one changed knob — or a run restarted after a crash —
// should recompute only the cells it has never seen.
//
// Each sim.Config canonically hashes to a key (see Key); the key maps to
// a JSON-encoded sim.Result on disk under the store directory, fronted
// by an in-memory LRU. Concurrent requests for the same key coalesce
// onto a single computation (singleflight), and corrupt or truncated
// disk entries are counted and silently recomputed, never surfaced as
// errors. All methods are safe for concurrent use.
package cache

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"svard/internal/sim"
)

// DefaultLRUEntries bounds the in-memory layer when Open is given no
// explicit size. A sim.Result is a few hundred bytes, so the default
// holds a full paper-scale Fig. 12 sweep (5*7*4*120 = 16.8K cells)
// comfortably.
const DefaultLRUEntries = 32768

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	MemHits  uint64 // served from the in-memory LRU
	DiskHits uint64 // served from a valid on-disk entry
	Misses   uint64 // computed (no valid entry anywhere)
	Deduped  uint64 // coalesced onto a concurrent identical computation
	Corrupt  uint64 // on-disk entries that failed to load and were recomputed
	Writes   uint64 // entries persisted to disk
}

// Hits is the total number of lookups served without recomputing.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits + s.Deduped }

func (s Stats) String() string {
	return fmt.Sprintf("%d hits (%d mem, %d disk, %d deduped), %d misses, %d corrupt, %d written",
		s.Hits(), s.MemHits, s.DiskHits, s.Deduped, s.Misses, s.Corrupt, s.Writes)
}

// Store is a content-addressed sim.Result store. The zero value is not
// usable; construct with Open.
type Store struct {
	dir    string // "" disables the disk layer
	lruMax int

	memHits  atomic.Uint64
	diskHits atomic.Uint64
	misses   atomic.Uint64
	deduped  atomic.Uint64
	corrupt  atomic.Uint64
	writes   atomic.Uint64

	mu     sync.Mutex
	lru    *list.List // most-recent first; values are *entry
	idx    map[string]*list.Element
	flight map[string]*call
}

type entry struct {
	key string
	res sim.Result
}

type call struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// Open returns a store persisting under dir (created if missing), with
// an in-memory LRU of at most lruEntries results (<= 0 selects
// DefaultLRUEntries). An empty dir yields a memory-only store — every
// result still deduplicates and caches within the process, but nothing
// survives it.
func Open(dir string, lruEntries int) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	if lruEntries <= 0 {
		lruEntries = DefaultLRUEntries
	}
	return &Store{
		dir:    dir,
		lruMax: lruEntries,
		lru:    list.New(),
		idx:    make(map[string]*list.Element),
		flight: make(map[string]*call),
	}, nil
}

// Dir returns the store's on-disk directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:  s.memHits.Load(),
		DiskHits: s.diskHits.Load(),
		Misses:   s.misses.Load(),
		Deduped:  s.deduped.Load(),
		Corrupt:  s.corrupt.Load(),
		Writes:   s.writes.Load(),
	}
}

// GetOrCompute returns the stored result for cfg, computing and storing
// it via compute on a miss. Concurrent calls with the same key wait for
// one computation instead of duplicating it. Errors from compute are
// returned to every waiter and never cached.
func (s *Store) GetOrCompute(cfg sim.Config, compute func(sim.Config) (sim.Result, error)) (sim.Result, error) {
	key := Key(cfg)

	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		s.lru.MoveToFront(el)
		res := copyResult(el.Value.(*entry).res)
		s.mu.Unlock()
		s.memHits.Add(1)
		return res, nil
	}
	if c, ok := s.flight[key]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			// Not a hit: the coalesced computation produced nothing.
			return sim.Result{}, c.err
		}
		s.deduped.Add(1)
		return copyResult(c.res), nil
	}
	c := &call{done: make(chan struct{})}
	s.flight[key] = c
	s.mu.Unlock()

	res, fromDisk, err := s.load(key)
	if err != nil {
		// No valid entry anywhere: this caller computes for everyone.
		res, err = compute(cfg)
		if err == nil {
			s.misses.Add(1)
			s.persist(key, res)
		}
	} else if fromDisk {
		s.diskHits.Add(1)
	}

	c.res, c.err = res, err
	s.mu.Lock()
	delete(s.flight, key)
	if err == nil {
		s.remember(key, res)
	}
	s.mu.Unlock()
	close(c.done)

	if err != nil {
		return sim.Result{}, err
	}
	return copyResult(res), nil
}

// Contains reports whether key has a valid entry in memory or on disk,
// without computing anything or touching the hit/miss counters.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	_, ok := s.idx[key]
	s.mu.Unlock()
	if ok {
		return true
	}
	_, err := s.read(key)
	return err == nil
}

// remember inserts into the LRU (caller holds s.mu).
func (s *Store) remember(key string, res sim.Result) {
	if el, ok := s.idx[key]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.idx[key] = s.lru.PushFront(&entry{key: key, res: copyResult(res)})
	for s.lru.Len() > s.lruMax {
		el := s.lru.Back()
		s.lru.Remove(el)
		delete(s.idx, el.Value.(*entry).key)
	}
}

// envelope is the on-disk format. Schema and Key are verified on load so
// a file that was truncated, hand-edited, or written by an incompatible
// simulator version registers as corrupt and is recomputed.
type envelope struct {
	Schema string     `json:"schema"`
	Key    string     `json:"key"`
	Result sim.Result `json:"result"`
}

// path shards entries by the first byte of the key so no single
// directory accumulates a paper-scale campaign's worth of files.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// read loads and validates one disk entry. Keys shorter than the shard
// prefix cannot name an entry (Key always returns 64 hex chars; the
// guard keeps exported lookups like Contains total).
func (s *Store) read(key string) (sim.Result, error) {
	if s.dir == "" || len(key) < 2 {
		return sim.Result{}, os.ErrNotExist
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return sim.Result{}, err
	}
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return sim.Result{}, fmt.Errorf("cache: entry %s: %w", key, err)
	}
	if env.Schema != SchemaVersion || env.Key != key {
		return sim.Result{}, fmt.Errorf("cache: entry %s: schema %q key %q mismatch", key, env.Schema, env.Key)
	}
	return env.Result, nil
}

// load wraps read with the corrupt-entry policy: a missing file is a
// plain miss, anything else unreadable counts as corrupt; both report
// err != nil so the caller recomputes.
func (s *Store) load(key string) (res sim.Result, fromDisk bool, err error) {
	res, err = s.read(key)
	if err == nil {
		return res, true, nil
	}
	if !os.IsNotExist(err) {
		s.corrupt.Add(1)
	}
	return sim.Result{}, false, err
}

// persist writes an entry atomically (temp file + rename), so a crash
// mid-write leaves at worst a stray temp file, never a torn entry read
// back as valid. Write failures are deliberately swallowed: the cache
// is an accelerator, and a read-only or full disk must not fail a sweep
// whose computation already succeeded.
func (s *Store) persist(key string, res sim.Result) {
	if s.dir == "" || len(key) < 2 {
		return
	}
	b, err := json.Marshal(envelope{Schema: SchemaVersion, Key: key, Result: res})
	if err != nil {
		return
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), p) != nil {
		os.Remove(tmp.Name())
		return
	}
	s.writes.Add(1)
}

// copyResult deep-copies a result so cached entries are immune to caller
// mutation (Result carries a per-core IPC slice).
func copyResult(r sim.Result) sim.Result {
	if r.IPC != nil {
		r.IPC = append([]float64(nil), r.IPC...)
	}
	return r
}
