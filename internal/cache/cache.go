// Package cache is the persistent, content-addressed simulation result
// store behind the campaign engine (internal/campaign): the evaluation
// sweeps are hundreds of independent cycle-level simulations, and a
// re-run with one changed knob — or a run restarted after a crash —
// should recompute only the cells it has never seen.
//
// Each sim.Config canonically hashes to a key (see Key); the key maps to
// a JSON-encoded sim.Result on disk under the store directory, fronted
// by an in-memory LRU. Concurrent requests for the same key coalesce
// onto a single computation (singleflight; a computation that died with
// its caller's cancellation is inherited by no one — waiters retry with
// their own), and corrupt or truncated disk entries are counted and
// silently recomputed, never surfaced as errors. All methods are safe
// for concurrent use.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"svard/internal/sim"
)

// DefaultLRUEntries bounds the in-memory layer when Open is given no
// explicit size. A sim.Result is a few hundred bytes, so the default
// holds a full paper-scale Fig. 12 sweep (5*7*4*120 = 16.8K cells)
// comfortably.
const DefaultLRUEntries = 32768

// Stats is a point-in-time snapshot of the store's counters, plus the
// disk-layer gauges (entry count and bytes, maintained incrementally
// from a startup scan — cheap to read, never a directory walk).
type Stats struct {
	MemHits  uint64 // served from the in-memory LRU
	DiskHits uint64 // served from a valid on-disk entry
	Misses   uint64 // computed (no valid entry anywhere)
	Deduped  uint64 // coalesced onto a concurrent identical computation
	Corrupt  uint64 // on-disk entries that failed to load and were recomputed
	Writes   uint64 // entries persisted to disk

	// Remote-layer counters (zero unless a Remote backend is attached).
	// RemoteErrors counts every degraded interaction — a failed or
	// integrity-rejected Get and a failed Put alike — none of which ever
	// fail a lookup: the store falls back to local compute.
	RemoteHits   uint64 // served from the remote backend
	RemoteMisses uint64 // remote consulted, entry absent
	RemoteErrors uint64 // remote errors or corrupt responses, degraded to compute

	Entries   uint64 // entries currently on disk (gauge, not a counter)
	DiskBytes uint64 // bytes those entries occupy (gauge)
}

// Hits is the total number of lookups served without recomputing.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits + s.Deduped + s.RemoteHits }

func (s Stats) String() string {
	str := fmt.Sprintf("%d hits (%d mem, %d disk, %d deduped), %d misses, %d corrupt, %d written; %d entries, %s on disk",
		s.Hits(), s.MemHits, s.DiskHits, s.Deduped, s.Misses, s.Corrupt, s.Writes,
		s.Entries, humanBytes(s.DiskBytes))
	if s.RemoteHits+s.RemoteMisses+s.RemoteErrors > 0 {
		str += fmt.Sprintf("; remote: %d hits, %d misses, %d errors", s.RemoteHits, s.RemoteMisses, s.RemoteErrors)
	}
	return str
}

// humanBytes renders a byte gauge for the stats footer.
func humanBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Remote is a pluggable second-level result backend shared across
// processes — an HTTP object store speaking the 64-hex SHA-256 cache
// keys as the wire identity (internal/client.CacheRemote is the stock
// implementation; the svard-fabric coordinator serves the other end).
//
// The store treats the remote as strictly best-effort: a Get error, a
// response failing integrity checks, or a Put failure degrade to local
// compute and a Stats counter, never to a failed lookup. Implementations
// own their transport-level retries and timeouts; the store calls them
// synchronously on the lookup path.
type Remote interface {
	// Get returns the remote entry for key, reporting found=false for a
	// clean miss. An error covers everything else — transport failures,
	// 5xx responses, and integrity-rejected payloads alike.
	Get(ctx context.Context, key string) (res sim.Result, found bool, err error)
	// Put publishes a computed result under key, best-effort.
	Put(ctx context.Context, key string, res sim.Result) error
}

// Store is a content-addressed sim.Result store. The zero value is not
// usable; construct with Open.
type Store struct {
	dir    string // "" disables the disk layer
	lruMax int

	remote        Remote
	remoteTimeout time.Duration

	memHits  atomic.Uint64
	diskHits atomic.Uint64
	misses   atomic.Uint64
	deduped  atomic.Uint64
	corrupt  atomic.Uint64
	writes   atomic.Uint64

	remoteHits   atomic.Uint64
	remoteMisses atomic.Uint64
	remoteErrors atomic.Uint64

	entries   atomic.Int64 // on-disk entries (gauge; seeded by the Open scan)
	diskBytes atomic.Int64 // bytes those entries occupy
	lastScan  atomic.Int64 // unix nanos of the last disk scan (rescan pacing)

	mu     sync.Mutex
	lru    *list.List // most-recent first; values are *entry
	idx    map[string]*list.Element
	flight map[string]*call
}

type entry struct {
	key string
	res sim.Result
}

type call struct {
	done chan struct{}
	res  sim.Result
	err  error
}

// Open returns a store persisting under dir (created if missing), with
// an in-memory LRU of at most lruEntries results (<= 0 selects
// DefaultLRUEntries). An empty dir yields a memory-only store — every
// result still deduplicates and caches within the process, but nothing
// survives it.
func Open(dir string, lruEntries int) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	if lruEntries <= 0 {
		lruEntries = DefaultLRUEntries
	}
	s := &Store{
		dir:    dir,
		lruMax: lruEntries,
		lru:    list.New(),
		idx:    make(map[string]*list.Element),
		flight: make(map[string]*call),
	}
	s.scanDisk()
	s.lastScan.Store(time.Now().UnixNano())
	return s, nil
}

// staleTempAge bounds the startup temp-file sweep: a *.tmp younger than
// this may belong to another live process persisting into the same
// cache directory (svard-served and svard-sweep sharing one store is
// the intended setup), and deleting it would silently lose that
// process's in-flight write when its rename fails. Crash residue, by
// contrast, only gets older.
const staleTempAge = time.Hour

// scanDisk walks the shard directories once at Open: it removes stale
// *.tmp files stranded by a crash mid-persist (the atomic write's only
// failure residue; see staleTempAge for why only old ones) and seeds
// the entry-count and disk-bytes gauges. Errors are ignored throughout
// — the scan is hygiene and accounting, and an unreadable directory
// must not fail Open any more than it fails a lookup.
func (s *Store) scanDisk() {
	if s.dir == "" {
		return
	}
	var entries, bytes int64
	cutoff := time.Now().Add(-staleTempAge)
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, shard := range shards {
		// Shard directories are the 2-hex-char key prefixes; everything
		// else at the top level (campaign journals) is not ours to touch.
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, shard.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			name := f.Name()
			switch {
			case strings.Contains(name, ".tmp"):
				if info, err := f.Info(); err == nil && info.ModTime().Before(cutoff) {
					os.Remove(filepath.Join(s.dir, shard.Name(), name))
				}
			case strings.HasSuffix(name, ".json"):
				if info, err := f.Info(); err == nil {
					entries++
					bytes += info.Size()
				}
			}
		}
	}
	s.entries.Store(entries)
	s.diskBytes.Store(bytes)
}

// Dir returns the store's on-disk directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// DefaultRemoteTimeout bounds each remote Get/Put when SetRemote is
// given no explicit timeout: long enough for a cold object store, short
// enough that a black-holed remote cannot stall a sweep cell for long.
const DefaultRemoteTimeout = 10 * time.Second

// SetRemote attaches (or, with nil, detaches) a remote backend. timeout
// bounds each remote call (<= 0: DefaultRemoteTimeout). Call before the
// store is shared across goroutines — the field is not synchronized, by
// the same construction-time contract as Open's parameters.
func (s *Store) SetRemote(r Remote, timeout time.Duration) {
	if timeout <= 0 {
		timeout = DefaultRemoteTimeout
	}
	s.remote = r
	s.remoteTimeout = timeout
}

// remoteGet consults the remote backend (if any), degrading every
// failure to a counted miss. A hit is persisted locally so the next
// lookup never leaves the process.
func (s *Store) remoteGet(key string) (sim.Result, bool) {
	if s.remote == nil {
		return sim.Result{}, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.remoteTimeout)
	defer cancel()
	res, found, err := s.remote.Get(ctx, key)
	switch {
	case err != nil:
		s.remoteErrors.Add(1)
		return sim.Result{}, false
	case !found:
		s.remoteMisses.Add(1)
		return sim.Result{}, false
	}
	s.remoteHits.Add(1)
	s.persist(key, res)
	return res, true
}

// remotePut publishes a freshly computed result, best-effort.
func (s *Store) remotePut(key string, res sim.Result) {
	if s.remote == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.remoteTimeout)
	defer cancel()
	if err := s.remote.Put(ctx, key, res); err != nil {
		s.remoteErrors.Add(1)
	}
}

// rescanInterval paces how often Stats refreshes the disk gauges with a
// real directory walk. The gauges track this process's writes exactly,
// but the directory may be shared with other processes (svard-served
// plus CLI sweeps over one -cache-dir); the periodic rescan keeps the
// gauges eventually consistent with their writes too, without a walk
// per Stats call.
const rescanInterval = 5 * time.Minute

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.maybeRescan()
	return Stats{
		MemHits:      s.memHits.Load(),
		DiskHits:     s.diskHits.Load(),
		Misses:       s.misses.Load(),
		Deduped:      s.deduped.Load(),
		Corrupt:      s.corrupt.Load(),
		Writes:       s.writes.Load(),
		RemoteHits:   s.remoteHits.Load(),
		RemoteMisses: s.remoteMisses.Load(),
		RemoteErrors: s.remoteErrors.Load(),
		Entries:      clampUint(s.entries.Load()),
		DiskBytes:    clampUint(s.diskBytes.Load()),
	}
}

// clampUint guards the gauges against transient negatives (a concurrent
// external deletion racing the incremental accounting).
func clampUint(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// maybeRescan refreshes the disk gauges if the last scan is older than
// rescanInterval; the CAS elects one scanner per interval.
func (s *Store) maybeRescan() {
	if s.dir == "" {
		return
	}
	now := time.Now().UnixNano()
	last := s.lastScan.Load()
	if now-last < int64(rescanInterval) || !s.lastScan.CompareAndSwap(last, now) {
		return
	}
	s.scanDisk()
}

// GetOrCompute returns the stored result for cfg, computing and storing
// it via compute on a miss. Concurrent calls with the same key wait for
// one computation instead of duplicating it. Errors from compute are
// returned to waiters and never cached — with one carve-out: a leader
// that failed with a *cancellation* (context.Canceled/DeadlineExceeded
// anywhere in the chain) reflects its own lifetime, not the cell, so
// coalesced waiters retry with their own compute instead of inheriting
// it (one campaign job's cancellation must not surface as a failure in
// an overlapping job). Genuine compute failures still propagate to all
// waiters, so a deterministically failing cell is not re-executed once
// per waiter.
func (s *Store) GetOrCompute(cfg sim.Config, compute func(sim.Config) (sim.Result, error)) (sim.Result, error) {
	key := Key(cfg)

	var c *call
	for {
		s.mu.Lock()
		if el, ok := s.idx[key]; ok {
			s.lru.MoveToFront(el)
			res := copyResult(el.Value.(*entry).res)
			s.mu.Unlock()
			s.memHits.Add(1)
			return res, nil
		}
		if inflight, ok := s.flight[key]; ok {
			s.mu.Unlock()
			<-inflight.done
			if inflight.err != nil {
				if isCancellation(inflight.err) {
					continue // the leader was cancelled, not the cell; retry ourselves
				}
				return sim.Result{}, inflight.err
			}
			s.deduped.Add(1)
			return copyResult(inflight.res), nil
		}
		c = &call{done: make(chan struct{})}
		s.flight[key] = c
		s.mu.Unlock()
		break
	}

	res, fromDisk, err := s.load(key)
	if err != nil {
		// No valid local entry: try the remote pool, then compute. A
		// remote failure of any kind degrades to compute — the remote is
		// an accelerator, exactly like the disk layer, and must never
		// fail a sweep.
		if rres, ok := s.remoteGet(key); ok {
			res, err = rres, nil
		} else {
			res, err = compute(cfg)
			if err == nil {
				s.misses.Add(1)
				s.persist(key, res)
				s.remotePut(key, res)
			}
		}
	} else if fromDisk {
		s.diskHits.Add(1)
	}

	c.res, c.err = res, err
	s.mu.Lock()
	delete(s.flight, key)
	if err == nil {
		s.remember(key, res)
	}
	s.mu.Unlock()
	close(c.done)

	if err != nil {
		return sim.Result{}, err
	}
	return copyResult(res), nil
}

// Get returns the stored result for key from memory or disk, without
// computing anything or touching the hit/miss counters: it is the
// observability read behind the service's raw-cell endpoint, and an
// inspection read must not skew the effectiveness counters the
// campaign footer and /metrics report. A disk read is promoted into
// the LRU like any other.
func (s *Store) Get(key string) (sim.Result, bool) {
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		s.lru.MoveToFront(el)
		res := copyResult(el.Value.(*entry).res)
		s.mu.Unlock()
		return res, true
	}
	s.mu.Unlock()
	res, err := s.read(key)
	if err != nil {
		return sim.Result{}, false
	}
	s.mu.Lock()
	s.remember(key, res)
	s.mu.Unlock()
	return copyResult(res), true
}

// Contains reports whether key has a valid entry in memory or on disk,
// without computing anything or touching the hit/miss counters.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	_, ok := s.idx[key]
	s.mu.Unlock()
	if ok {
		return true
	}
	_, err := s.read(key)
	return err == nil
}

// remember inserts into the LRU (caller holds s.mu).
func (s *Store) remember(key string, res sim.Result) {
	if el, ok := s.idx[key]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.idx[key] = s.lru.PushFront(&entry{key: key, res: copyResult(res)})
	for s.lru.Len() > s.lruMax {
		el := s.lru.Back()
		s.lru.Remove(el)
		delete(s.idx, el.Value.(*entry).key)
	}
}

// envelope is the on-disk format, shared verbatim with the remote
// object-store wire (client.CacheRemote ships and verifies the same
// bytes). Schema, Key, and Sum are verified on load so a file that was
// truncated, hand-edited, bit-flipped, or written by an incompatible
// simulator version registers as corrupt and is recomputed.
type envelope struct {
	Schema string     `json:"schema"`
	Key    string     `json:"key"`
	Sum    string     `json:"sum"` // resultSum over the canonical Result JSON
	Result sim.Result `json:"result"`
}

// resultSum is the entry's integrity checksum: a hex SHA-256 over the
// result's canonical JSON bytes. The key cannot play this role — it
// hashes the *configuration* — so without a content sum a torn or
// bit-flipped entry that still parses as JSON would read back as valid.
func resultSum(res sim.Result) string {
	b, err := json.Marshal(res)
	if err != nil {
		// sim.Result is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("cache: result sum: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Seal wraps a result in its canonical wire envelope (the exact bytes
// persist writes and the remote object store serves).
func Seal(key string, res sim.Result) ([]byte, error) {
	return json.Marshal(envelope{Schema: SchemaVersion, Key: key, Sum: resultSum(res), Result: res})
}

// OpenEnvelope parses and integrity-checks one wire envelope against the
// key it was requested under: schema, key, and content sum must all
// match. It is the single verification path for both disk reads and
// remote responses.
func OpenEnvelope(key string, b []byte) (sim.Result, error) {
	var env envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return sim.Result{}, fmt.Errorf("cache: entry %s: %w", key, err)
	}
	if env.Schema != SchemaVersion || env.Key != key {
		return sim.Result{}, fmt.Errorf("cache: entry %s: schema %q key %q mismatch", key, env.Schema, env.Key)
	}
	if sum := resultSum(env.Result); env.Sum != sum {
		return sim.Result{}, fmt.Errorf("cache: entry %s: content sum %q, want %q", key, env.Sum, sum)
	}
	return env.Result, nil
}

// path shards entries by the first byte of the key so no single
// directory accumulates a paper-scale campaign's worth of files.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// read loads and validates one disk entry. Only a well-formed key — 64
// lowercase hex chars, the exact shape Key produces — can name an
// entry; anything else (including path-traversal shapes fed through
// exported lookups like Get and Contains) is a plain miss before any
// filesystem access.
func (s *Store) read(key string) (sim.Result, error) {
	if s.dir == "" || !wellFormedKey(key) {
		return sim.Result{}, os.ErrNotExist
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		return sim.Result{}, err
	}
	return OpenEnvelope(key, b)
}

// load wraps read with the corrupt-entry policy: a missing file is a
// plain miss, anything else unreadable counts as corrupt; both report
// err != nil so the caller recomputes.
func (s *Store) load(key string) (res sim.Result, fromDisk bool, err error) {
	res, err = s.read(key)
	if err == nil {
		return res, true, nil
	}
	if !os.IsNotExist(err) {
		s.corrupt.Add(1)
	}
	return sim.Result{}, false, err
}

// persist writes an entry atomically (temp file + fsync + rename), so a
// crash mid-write leaves at worst a stray temp file, never a torn entry
// read back as valid: the fsync forces the temp file's bytes to stable
// storage *before* the rename publishes the name, closing the window in
// which a power loss could leave a renamed-but-empty (or partially
// written) entry — the classic torn-write-through-rename hazard. The
// content sum in the envelope is the second line of defense, catching
// whatever slips past. Write failures are deliberately swallowed: the
// cache is an accelerator, and a read-only or full disk must not fail a
// sweep whose computation already succeeded.
func (s *Store) persist(key string, res sim.Result) {
	if s.dir == "" || len(key) < 2 {
		return
	}
	b, err := Seal(key, res)
	if err != nil {
		return
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return
	}
	// The rename either creates a new entry or replaces a corrupt one;
	// stat first so the gauges track both cases.
	var oldSize, isNew int64 = 0, 1
	if info, err := os.Stat(p); err == nil {
		oldSize, isNew = info.Size(), 0
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil || os.Rename(tmp.Name(), p) != nil {
		os.Remove(tmp.Name())
		return
	}
	s.writes.Add(1)
	s.entries.Add(isNew)
	s.diskBytes.Add(int64(len(b)) - oldSize)
}

// Put inserts a result computed elsewhere under its content-addressed
// key — the fabric coordinator stores worker-computed cells through it,
// and the coordinator's object-store PUT endpoint lands here. The entry
// enters the in-memory LRU unconditionally and the disk layer
// best-effort (same swallowed-write policy as persist). Only the exact
// key shape Key produces is accepted.
func (s *Store) Put(key string, res sim.Result) error {
	if !wellFormedKey(key) {
		return fmt.Errorf("cache: malformed key %q: want 64 lowercase hex chars", key)
	}
	s.mu.Lock()
	s.remember(key, res)
	s.mu.Unlock()
	s.persist(key, res)
	return nil
}

// wellFormedKey reports whether key is 64 lowercase hex chars.
func wellFormedKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// isCancellation reports whether err stems from a cancelled or expired
// context rather than the computation itself. Callers that cancel with
// a custom cause should wrap context.Canceled so their waiters-must-
// retry intent survives (the campaign service's scheduler does).
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// copyResult deep-copies a result so cached entries are immune to caller
// mutation (Result carries a per-core IPC slice).
func copyResult(r sim.Result) sim.Result {
	if r.IPC != nil {
		r.IPC = append([]float64(nil), r.IPC...)
	}
	return r
}
