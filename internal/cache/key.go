package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"reflect"
	"sort"

	"svard/internal/sim"
)

// SchemaVersion tags every cache key and on-disk entry. Bump it whenever
// the simulator's semantics change in a way that makes previously stored
// results stale (a new Config field is covered automatically — it changes
// the key — but a behavioural change behind the same Config is not):
// stale entries then simply miss and are recomputed, never misread.
//
// v2: sim.Run ends at the exact cycle the last core finishes (the v1
// loop polled every 1024 cycles, overstating Result.Cycles and the MC
// stats' tail), and truncated runs report measurement-region IPC.
//
// v3: the memory system is geometry-parameterized (Config.Backend
// selects DDR4-3200 or HBM2). The DDR4 default is bit-identical to v2,
// but the stack's structural assumptions changed (per-channel
// controllers, backend-resolved timing), so v2 entries are invalidated
// wholesale rather than trusting the refactor across every stored cell;
// they recompute on next access, never error.
//
// Config.NoSkip participates in the key like every other field, even
// though the two engines are bit-identical by (test-enforced) contract:
// a -noskip run therefore recomputes rather than reading entries a
// normal run wrote. That duplication is deliberate — the reference loop
// exists to check the engine, and a shared entry would hand it the
// engine's cached answer, masking exactly the divergence it is there to
// catch.
const SchemaVersion = "svard-sim-v3"

// TemporalSchemaVersion tags keys of configurations that carry a
// temporal-variation block (Config.Temporal != nil). Static
// configurations keep SchemaVersion — and, because nil pointer fields
// are skipped by the encoder below, their keys are byte-identical to
// pre-temporal builds, so no stored static result is invalidated.
// Temporal runs get their own version string so the namespace starts
// empty and can be bumped independently of the static schema.
const TemporalSchemaVersion = "svard-sim-v4"

// Key returns the canonical content address of one simulation: a hex
// SHA-256 over the schema version and a stable field-order encoding of
// cfg. Two Configs differing in any field (including nested Core fields
// and Mix entries) hash to different keys; the same Config always hashes
// to the same key, across processes and runs.
func Key(cfg sim.Config) string {
	h := sha256.New()
	if cfg.Temporal != nil {
		writeString(h, TemporalSchemaVersion)
	} else {
		writeString(h, SchemaVersion)
	}
	writeValue(h, reflect.ValueOf(cfg))
	return hex.EncodeToString(h.Sum(nil))
}

// writeValue encodes v into h with an unambiguous, self-delimiting
// framing: every atom is prefixed with a one-byte kind tag, strings and
// composites carry explicit lengths, and struct fields are walked in
// sorted name order so the encoding is stable under field reordering.
func writeValue(h hash.Hash, v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		h.Write([]byte{'b'})
		if v.Bool() {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		h.Write([]byte{'i'})
		writeUint64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		h.Write([]byte{'u'})
		writeUint64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		// Bit-exact: distinguishes -0/+0 and every NaN payload, which is
		// stricter than == but exactly what "same configuration" means.
		h.Write([]byte{'f'})
		writeUint64(h, math.Float64bits(v.Float()))
	case reflect.String:
		h.Write([]byte{'s'})
		writeString(h, v.String())
	case reflect.Slice, reflect.Array:
		h.Write([]byte{'l'})
		writeUint64(h, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			writeValue(h, v.Index(i))
		}
	case reflect.Pointer:
		// Reached only for non-nil pointers: the struct case below skips
		// nil pointer fields entirely. The tag keeps a *T field from
		// aliasing an inline T field.
		h.Write([]byte{'p'})
		writeValue(h, v.Elem())
	case reflect.Struct:
		t := v.Type()
		names := make([]string, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			// A nil pointer field stays out of the encoding altogether —
			// not even its name is written — so adding an optional block
			// to sim.Config leaves every config without it at its exact
			// pre-existing key (the pinned-key test enforces this for the
			// Temporal field).
			if f.Type.Kind() == reflect.Pointer && v.Field(i).IsNil() {
				continue
			}
			names = append(names, f.Name)
		}
		sort.Strings(names)
		h.Write([]byte{'{'})
		writeUint64(h, uint64(len(names)))
		for _, name := range names {
			writeString(h, name)
			writeValue(h, v.FieldByName(name))
		}
	default:
		// sim.Config is a plain-data struct; any future field of an
		// unhashable kind must fail loudly, not silently alias configs.
		panic(fmt.Sprintf("cache: cannot hash %s field in sim.Config", v.Kind()))
	}
}

func writeUint64(h hash.Hash, x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	h.Write(b[:])
}

func writeString(h hash.Hash, s string) {
	writeUint64(h, uint64(len(s)))
	h.Write([]byte(s))
}
