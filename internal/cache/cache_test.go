package cache

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"svard/internal/memctrl"
	"svard/internal/sim"
)

// fakeCompute returns a compute function that derives a deterministic
// result from the config (no real simulation) and counts invocations.
func fakeCompute(calls *atomic.Int64) func(sim.Config) (sim.Result, error) {
	return func(cfg sim.Config) (sim.Result, error) {
		if calls != nil {
			calls.Add(1)
		}
		return sim.Result{
			IPC:        []float64{cfg.NRH / 1024, float64(cfg.Cores)},
			Cycles:     uint64(cfg.Cores) * 1000,
			MC:         memctrl.Stats{Reads: uint64(cfg.RowsPerBank)},
			Violations: 7,
			Finished:   true,
		}, nil
	}
}

func testCfg(nrh float64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Mix = []string{"mcf06", "lbm06"}
	cfg.Cores = 2
	cfg.NRH = nrh
	return cfg
}

func sameResult(t *testing.T, a, b sim.Result) {
	t.Helper()
	if a.Cycles != b.Cycles || a.Violations != b.Violations || a.Finished != b.Finished ||
		a.MC != b.MC || len(a.IPC) != len(b.IPC) {
		t.Fatalf("results differ: %+v vs %+v", a, b)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("IPC[%d] differs: %v vs %v", i, a.IPC[i], b.IPC[i])
		}
	}
}

func TestMissThenMemoryHit(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	cold, err := s.GetOrCompute(testCfg(64), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.GetOrCompute(testCfg(64), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, cold, warm)
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
	st := s.Stats()
	if st.Misses != 1 || st.MemHits != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %v", st)
	}
}

func TestDiskPersistenceAcrossStores(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	var calls atomic.Int64
	cold, err := s1.GetOrCompute(testCfg(128), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory (fresh process, in effect).
	s2, _ := Open(dir, 0)
	warm, err := s2.GetOrCompute(testCfg(128), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, cold, warm)
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times across stores, want 1", calls.Load())
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("second store stats = %v", st)
	}
	if !s2.Contains(Key(testCfg(128))) {
		t.Error("Contains: persisted key reported missing")
	}
	if s2.Contains(Key(testCfg(1))) {
		t.Error("Contains: absent key reported present")
	}
}

// Corrupt or truncated entries fall back to recompute — never an error —
// and the recomputed result overwrites the bad entry.
func TestCorruptEntryRecomputes(t *testing.T) {
	for name, corrupt := range map[string]func(path string) error{
		"truncated": func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, b[:len(b)/2], 0o644)
		},
		"garbage": func(p string) error {
			return os.WriteFile(p, []byte("not json at all"), 0o644)
		},
		"wrong-schema": func(p string) error {
			return os.WriteFile(p, []byte(`{"schema":"svard-sim-v0","key":"x","result":{}}`), 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s1, _ := Open(dir, 0)
			var calls atomic.Int64
			cold, err := s1.GetOrCompute(testCfg(256), fakeCompute(&calls))
			if err != nil {
				t.Fatal(err)
			}
			if err := corrupt(s1.path(Key(testCfg(256)))); err != nil {
				t.Fatal(err)
			}

			s2, _ := Open(dir, 0)
			got, err := s2.GetOrCompute(testCfg(256), fakeCompute(&calls))
			if err != nil {
				t.Fatalf("corrupt entry surfaced as error: %v", err)
			}
			sameResult(t, cold, got)
			if calls.Load() != 2 {
				t.Errorf("compute ran %d times, want 2 (recompute)", calls.Load())
			}
			if st := s2.Stats(); st.Corrupt != 1 || st.Misses != 1 {
				t.Errorf("stats = %v", st)
			}

			// The bad entry was repaired in place.
			s3, _ := Open(dir, 0)
			if _, err := s3.GetOrCompute(testCfg(256), fakeCompute(&calls)); err != nil {
				t.Fatal(err)
			}
			if st := s3.Stats(); st.DiskHits != 1 {
				t.Errorf("repaired entry not served from disk: %v", st)
			}
		})
	}
}

// TestSchemaV3InvalidatesOldEntries pins the svard-sim-v3 schema bump
// that came with the geometry-parameterized memory backend. An entry a
// v2 binary left on disk — well-formed JSON, matching key, old schema
// string — must be recomputed and rewritten in place, never served and
// never surfaced as an error: the same config bytes now describe a
// different simulation.
func TestSchemaV3InvalidatesOldEntries(t *testing.T) {
	if SchemaVersion != "svard-sim-v3" {
		t.Fatalf("SchemaVersion = %q, want svard-sim-v3 (if bumping, update this test with the new version)", SchemaVersion)
	}

	dir := t.TempDir()
	s1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(512)
	key := Key(cfg)
	stale := envelope{
		Schema: "svard-sim-v2",
		Key:    key,
		Result: sim.Result{Cycles: 1, Violations: 999, Finished: true},
	}
	b, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	p := s1.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	got, err := s1.GetOrCompute(cfg, fakeCompute(&calls))
	if err != nil {
		t.Fatalf("v2 entry surfaced as error: %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1 (stale entry must recompute)", calls.Load())
	}
	if got.Cycles == stale.Result.Cycles && got.Violations == stale.Result.Violations {
		t.Error("stale v2 result was served instead of recomputed")
	}
	if st := s1.Stats(); st.Corrupt != 1 || st.Misses != 1 {
		t.Errorf("stats = %v, want the v2 entry counted corrupt+miss", st)
	}

	// The entry was rewritten under the v3 schema: a fresh store serves
	// it from disk without recomputing.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s2.GetOrCompute(cfg, fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, warm)
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times after repair, want 1", calls.Load())
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Errorf("repaired entry not served from disk: %v", st)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	s, _ := Open("", 0) // memory-only
	var calls atomic.Int64
	release := make(chan struct{})
	slow := func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		<-release
		return fakeCompute(nil)(cfg)
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([]sim.Result, n)
	lookup := func(i int) {
		defer wg.Done()
		r, err := s.GetOrCompute(testCfg(512), slow)
		if err != nil {
			t.Error(err)
			return
		}
		results[i] = r
	}
	// First caller registers the in-flight computation and blocks in it;
	// everyone arriving after it must coalesce (or memory-hit), not
	// recompute.
	wg.Add(1)
	go lookup(0)
	for calls.Load() == 0 {
	}
	for i := 1; i < n; i++ {
		wg.Add(1)
		go lookup(i)
	}
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Errorf("compute ran %d times under %d concurrent identical requests", calls.Load(), n)
	}
	for i := 1; i < n; i++ {
		sameResult(t, results[0], results[i])
	}
	if st := s.Stats(); st.Deduped+st.MemHits != n-1 {
		t.Errorf("stats = %v, want %d coalesced-or-memory hits", st, n-1)
	}
}

// TestCoalescedWaiterSurvivesLeaderCancellation: a waiter coalesced
// onto a computation that dies with its leader's *cancellation* must
// not inherit the error — it retries with its own compute and succeeds.
// This is the isolation the campaign service's cross-job dedup relies
// on: cancelling one job cannot fail another. A genuine compute failure
// is different: it describes the cell, so every waiter inherits it and
// nobody re-executes a deterministically failing computation.
func TestCoalescedWaiterSurvivesLeaderCancellation(t *testing.T) {
	for name, tc := range map[string]struct {
		leaderErr   error
		wantInherit bool
	}{
		"cancellation-retries":   {leaderErr: fmt.Errorf("job gone (%w)", context.Canceled), wantInherit: false},
		"genuine-error-inherits": {leaderErr: errors.New("simulation blew up"), wantInherit: true},
	} {
		t.Run(name, func(t *testing.T) {
			s, _ := Open("", 0)
			var leaderCalls, waiterCalls atomic.Int64
			waiterArrived := make(chan struct{})
			failingLeader := func(cfg sim.Config) (sim.Result, error) {
				leaderCalls.Add(1)
				<-waiterArrived // fail only once the waiter has coalesced
				return sim.Result{}, tc.leaderErr
			}

			leaderDone := make(chan error, 1)
			go func() {
				_, err := s.GetOrCompute(testCfg(64), failingLeader)
				leaderDone <- err
			}()
			for leaderCalls.Load() == 0 {
			}

			waiterDone := make(chan error, 1)
			go func() {
				_, err := s.GetOrCompute(testCfg(64), func(cfg sim.Config) (sim.Result, error) {
					waiterCalls.Add(1)
					return fakeCompute(nil)(cfg)
				})
				waiterDone <- err
			}()
			// The waiter is either parked on the leader's flight or will
			// retry; give it a moment to coalesce before the leader fails.
			time.Sleep(10 * time.Millisecond)
			close(waiterArrived)

			if err := <-leaderDone; !errors.Is(err, tc.leaderErr) {
				t.Errorf("leader's own error = %v, want %v", err, tc.leaderErr)
			}
			waiterErr := <-waiterDone
			if tc.wantInherit {
				if !errors.Is(waiterErr, tc.leaderErr) {
					t.Errorf("waiter error = %v, want the leader's (cell-describing) failure", waiterErr)
				}
				if waiterCalls.Load() != 0 {
					t.Errorf("waiter re-executed a deterministically failing compute %d times", waiterCalls.Load())
				}
			} else {
				if waiterErr != nil {
					t.Errorf("waiter inherited the leader's cancellation: %v", waiterErr)
				}
				if waiterCalls.Load() != 1 {
					t.Errorf("waiter computed %d times, want 1 (its own retry)", waiterCalls.Load())
				}
			}
		})
	}
}

func TestComputeErrorsPropagateAndAreNotCached(t *testing.T) {
	s, _ := Open(t.TempDir(), 0)
	var calls atomic.Int64
	boom := func(sim.Config) (sim.Result, error) {
		calls.Add(1)
		return sim.Result{}, os.ErrPermission
	}
	if _, err := s.GetOrCompute(testCfg(64), boom); err == nil {
		t.Fatal("expected error")
	}
	// The failure must not poison the key: a later good compute succeeds.
	if _, err := s.GetOrCompute(testCfg(64), fakeCompute(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", calls.Load())
	}
	if entries, _ := filepath.Glob(filepath.Join(s.Dir(), "*", "*.json")); len(entries) != 1 {
		t.Errorf("disk holds %d entries, want 1 (errors never persisted)", len(entries))
	}
}

func TestLRUEvictionFallsBackToDiskOrRecompute(t *testing.T) {
	s, _ := Open("", 2) // memory-only, two slots
	var calls atomic.Int64
	for _, nrh := range []float64{64, 128, 256} {
		if _, err := s.GetOrCompute(testCfg(nrh), fakeCompute(&calls)); err != nil {
			t.Fatal(err)
		}
	}
	// 64 was evicted by 256; with no disk layer it recomputes.
	if _, err := s.GetOrCompute(testCfg(64), fakeCompute(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Errorf("calls = %d, want 4 (three cold + one post-eviction)", calls.Load())
	}
	// 256 is still resident.
	if _, err := s.GetOrCompute(testCfg(256), fakeCompute(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Error("resident entry recomputed")
	}
}

// TestConcurrentOverlappingConfigs is the dedup guarantee under real
// concurrency: many goroutines submit overlapping config sets (the
// cross-job shape of two clients sweeping intersecting specs), and
// every distinct key must compute exactly once — the rest must be
// served by the singleflight or a cache layer. Run under -race in CI.
func TestConcurrentOverlappingConfigs(t *testing.T) {
	s, _ := Open(t.TempDir(), 0)

	nrhs := []float64{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	perKey := make(map[string]*atomic.Int64, len(nrhs))
	for _, nrh := range nrhs {
		perKey[Key(testCfg(nrh))] = new(atomic.Int64)
	}
	compute := func(cfg sim.Config) (sim.Result, error) {
		perKey[Key(cfg)].Add(1)
		return fakeCompute(nil)(cfg)
	}

	// 16 goroutines, each sweeping an 8-key window into the shared key
	// space so every pair of goroutines overlaps on most keys.
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < len(nrhs); i++ {
				nrh := nrhs[(g+i)%len(nrhs)]
				res, err := s.GetOrCompute(testCfg(nrh), compute)
				if err != nil {
					t.Error(err)
					return
				}
				if want := nrh / 1024; res.IPC[0] != want {
					t.Errorf("key nrh=%v served result for %v", nrh, res.IPC[0]*1024)
				}
			}
		}(g)
	}
	wg.Wait()

	for key, calls := range perKey {
		if calls.Load() != 1 {
			t.Errorf("key %s computed %d times, want exactly 1", key[:8], calls.Load())
		}
	}
	st := s.Stats()
	if want := uint64(goroutines * len(nrhs)); st.Hits()+st.Misses != want {
		t.Errorf("lookups = %d hits + %d misses, want %d total", st.Hits(), st.Misses, want)
	}
	if st.Misses != uint64(len(nrhs)) {
		t.Errorf("misses = %d, want %d (one per distinct key)", st.Misses, len(nrhs))
	}
}

// TestOpenSweepsStaleTempFiles: *.tmp residue from a crash mid-persist
// is removed by the next Open once it is old enough to be provably
// stale; a fresh temp file — possibly another live process's in-flight
// write into the shared directory — and valid entries are untouched.
func TestOpenSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	if _, err := s1.GetOrCompute(testCfg(64), fakeCompute(nil)); err != nil {
		t.Fatal(err)
	}
	key := Key(testCfg(64))
	shard := filepath.Join(dir, key[:2])
	stale := filepath.Join(shard, key+".tmp12345")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(shard, key+".tmp67890")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := Open(dir, 0)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (a possible live writer's) was swept")
	}
	if !s2.Contains(key) {
		t.Error("valid entry was swept along with the temp file")
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Errorf("Entries = %d after sweep, want 1", st.Entries)
	}
}

// TestStatsGauges: entry-count and disk-bytes track writes incrementally
// and are re-seeded by a fresh Open's scan.
func TestStatsGauges(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	if st := s1.Stats(); st.Entries != 0 || st.DiskBytes != 0 {
		t.Errorf("fresh store gauges = %+v", st)
	}
	for _, nrh := range []float64{64, 128} {
		if _, err := s1.GetOrCompute(testCfg(nrh), fakeCompute(nil)); err != nil {
			t.Fatal(err)
		}
	}
	st1 := s1.Stats()
	if st1.Entries != 2 || st1.DiskBytes == 0 {
		t.Errorf("gauges after 2 writes = %+v", st1)
	}

	// A fresh store over the same directory scans the same footprint.
	s2, _ := Open(dir, 0)
	st2 := s2.Stats()
	if st2.Entries != st1.Entries || st2.DiskBytes != st1.DiskBytes {
		t.Errorf("rescan gauges = %+v, incremental said %+v", st2, st1)
	}

	// Memory-only stores have no disk footprint.
	m, _ := Open("", 0)
	if _, err := m.GetOrCompute(testCfg(64), fakeCompute(nil)); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Entries != 0 || st.DiskBytes != 0 {
		t.Errorf("memory-only gauges = %+v", st)
	}
}

// TestGetByKey: the observability read returns entries from memory and
// disk without perturbing the hit/miss counters, and reports absence.
func TestGetByKey(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	want, err := s1.GetOrCompute(testCfg(64), fakeCompute(nil))
	if err != nil {
		t.Fatal(err)
	}
	key := Key(testCfg(64))

	before := s1.Stats()
	got, ok := s1.Get(key)
	if !ok {
		t.Fatal("Get missed a resident entry")
	}
	sameResult(t, want, got)
	if s1.Stats() != before {
		t.Errorf("Get changed counters: %v -> %v", before, s1.Stats())
	}

	// Fresh store: served from disk.
	s2, _ := Open(dir, 0)
	got2, ok := s2.Get(key)
	if !ok {
		t.Fatal("Get missed a disk entry")
	}
	sameResult(t, want, got2)
	if st := s2.Stats(); st.DiskHits != 0 || st.MemHits != 0 {
		t.Errorf("Get counted as a hit: %v", st)
	}

	if _, ok := s2.Get(Key(testCfg(99))); ok {
		t.Error("Get fabricated a missing entry")
	}
	if _, ok := s2.Get("zz"); ok {
		t.Error("Get accepted a malformed key")
	}
}

// Results handed out must be isolated from the cached copy: mutating a
// returned IPC slice cannot corrupt what the next caller sees.
func TestResultAliasingIsolation(t *testing.T) {
	s, _ := Open("", 0)
	first, err := s.GetOrCompute(testCfg(64), fakeCompute(nil))
	if err != nil {
		t.Fatal(err)
	}
	want := first.IPC[0]
	first.IPC[0] = -1
	second, err := s.GetOrCompute(testCfg(64), fakeCompute(nil))
	if err != nil {
		t.Fatal(err)
	}
	if second.IPC[0] != want {
		t.Errorf("cached result was mutated through a returned slice: %v", second.IPC[0])
	}
}

// TestCrashTruncatedWriteRecomputes simulates a crash that publishes a
// partial entry: the stored file is truncated at several points mid-way
// (as if the rename landed but the data did not all reach the platter),
// and every prefix must register as corrupt and recompute — never be
// served, never surface as an error. The fsync-before-rename in persist
// makes this window vanishingly small; the read-side verification is
// the backstop this test pins.
func TestCrashTruncatedWriteRecomputes(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	var calls atomic.Int64
	cold, err := s.GetOrCompute(testCfg(96), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	p := s.path(Key(testCfg(96)))
	whole, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(whole) / 4, len(whole) / 2, len(whole) - 1} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			s2, _ := Open(dir, 0)
			before := calls.Load()
			got, err := s2.GetOrCompute(testCfg(96), fakeCompute(&calls))
			if err != nil {
				t.Fatalf("truncated entry surfaced as error: %v", err)
			}
			sameResult(t, cold, got)
			if calls.Load() != before+1 {
				t.Errorf("compute ran %d times, want %d (truncated entry must recompute)", calls.Load(), before+1)
			}
			if st := s2.Stats(); st.Corrupt != 1 {
				t.Errorf("stats = %v, want Corrupt=1", st)
			}
		})
	}
}

// TestContentSumCatchesBitFlips pins the integrity sum: an entry whose
// result bytes were mutated — still valid JSON, schema and key intact,
// exactly what a torn sector or bit flip can produce — must fail the
// sum check and recompute, not serve the mutated numbers.
func TestContentSumCatchesBitFlips(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	var calls atomic.Int64
	cold, err := s.GetOrCompute(testCfg(97), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	key := Key(testCfg(97))
	p := s.path(key)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the violation count inside the result payload; everything
	// else (schema, key, sum fields) stays byte-identical.
	mutated := []byte(strings.Replace(string(b), `"Violations":7`, `"Violations":8`, 1))
	if string(mutated) == string(b) {
		t.Fatal("test setup: Violations field not found in entry")
	}
	if err := os.WriteFile(p, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(dir, 0)
	got, err := s2.GetOrCompute(testCfg(97), fakeCompute(&calls))
	if err != nil {
		t.Fatalf("bit-flipped entry surfaced as error: %v", err)
	}
	sameResult(t, cold, got)
	if calls.Load() != 2 {
		t.Errorf("compute ran %d times, want 2 (mutated entry must recompute)", calls.Load())
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Errorf("stats = %v, want the mutated entry counted corrupt", st)
	}
}

// TestPutServesWithoutCompute: results inserted via Put (the fabric
// coordinator's path for worker-computed cells) serve later lookups
// without invoking compute, in-process and across store reopenings.
func TestPutServesWithoutCompute(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 0)
	cfg := testCfg(2048)
	key := Key(cfg)
	want, _ := fakeCompute(nil)(cfg)
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	got, err := s.GetOrCompute(cfg, fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
	if calls.Load() != 0 {
		t.Errorf("compute ran %d times after Put, want 0", calls.Load())
	}

	s2, _ := Open(dir, 0)
	got2, err := s2.GetOrCompute(cfg, fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got2)
	if calls.Load() != 0 {
		t.Errorf("compute ran %d times across stores after Put, want 0", calls.Load())
	}

	if err := s.Put("not-a-key", want); err == nil {
		t.Error("Put accepted a malformed key")
	}
	if err := s.Put("../"+key[:61], want); err == nil {
		t.Error("Put accepted a traversal-shaped key")
	}
}

// mapRemote is an in-memory Remote for tests: a shared map plus
// injectable failures.
type mapRemote struct {
	mu      sync.Mutex
	entries map[string]sim.Result
	getErr  error
	putErr  error
	gets    atomic.Int64
	puts    atomic.Int64
}

func newMapRemote() *mapRemote { return &mapRemote{entries: map[string]sim.Result{}} }

func (r *mapRemote) Get(ctx context.Context, key string) (sim.Result, bool, error) {
	r.gets.Add(1)
	if r.getErr != nil {
		return sim.Result{}, false, r.getErr
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.entries[key]
	return res, ok, nil
}

func (r *mapRemote) Put(ctx context.Context, key string, res sim.Result) error {
	r.puts.Add(1)
	if r.putErr != nil {
		return r.putErr
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[key] = res
	return nil
}

// TestRemoteLayerSharesResults: a computed result is published to the
// remote, and a second store (fresh process, fresh directory — another
// fleet worker) serves it from the remote without recomputing, then
// persists it locally so the next lookup never leaves the process.
func TestRemoteLayerSharesResults(t *testing.T) {
	remote := newMapRemote()
	cfg := testCfg(384)

	s1, _ := Open(t.TempDir(), 0)
	s1.SetRemote(remote, 0)
	var calls atomic.Int64
	cold, err := s1.GetOrCompute(cfg, fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.Misses != 1 || st.RemoteMisses != 1 {
		t.Errorf("first store stats = %v, want one miss local and remote", st)
	}
	if remote.puts.Load() != 1 {
		t.Errorf("remote received %d puts, want 1", remote.puts.Load())
	}

	dir2 := t.TempDir()
	s2, _ := Open(dir2, 0)
	s2.SetRemote(remote, 0)
	warm, err := s2.GetOrCompute(cfg, fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, cold, warm)
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times across workers, want 1 (remote must serve)", calls.Load())
	}
	if st := s2.Stats(); st.RemoteHits != 1 || st.Misses != 0 {
		t.Errorf("second store stats = %v, want the cell served from remote", st)
	}
	// The remote hit was persisted locally: a reopen serves from disk.
	s3, _ := Open(dir2, 0)
	if _, err := s3.GetOrCompute(cfg, fakeCompute(&calls)); err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.DiskHits != 1 {
		t.Errorf("reopened store stats = %v, want the remote hit served from disk", st)
	}
}

// TestRemoteDegradesGracefully: a remote that fails every call (a
// partitioned or misconfigured object store) must never fail a lookup —
// the store computes locally and counts the degradation.
func TestRemoteDegradesGracefully(t *testing.T) {
	remote := newMapRemote()
	remote.getErr = errors.New("faultinject: 503")
	remote.putErr = errors.New("faultinject: connection reset")

	s, _ := Open(t.TempDir(), 0)
	s.SetRemote(remote, 0)
	var calls atomic.Int64
	got, err := s.GetOrCompute(testCfg(48), fakeCompute(&calls))
	if err != nil {
		t.Fatalf("remote failure surfaced as error: %v", err)
	}
	want, _ := fakeCompute(nil)(testCfg(48))
	sameResult(t, want, got)
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
	if st := s.Stats(); st.RemoteErrors != 2 || st.Misses != 1 {
		t.Errorf("stats = %v, want RemoteErrors=2 (failed get + failed put), Misses=1", st)
	}
}

// TestSealOpenEnvelopeRoundTrip pins the wire format both the disk and
// the remote object store speak, and its integrity rejections.
func TestSealOpenEnvelopeRoundTrip(t *testing.T) {
	cfg := testCfg(112)
	key := Key(cfg)
	res, _ := fakeCompute(nil)(cfg)
	b, err := Seal(key, res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenEnvelope(key, b)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, got)

	otherKey := Key(testCfg(113))
	if _, err := OpenEnvelope(otherKey, b); err == nil {
		t.Error("envelope accepted under the wrong key")
	}
	if _, err := OpenEnvelope(key, b[:len(b)-2]); err == nil {
		t.Error("truncated envelope accepted")
	}
	flipped := []byte(strings.Replace(string(b), `"Violations":7`, `"Violations":9`, 1))
	if _, err := OpenEnvelope(key, flipped); err == nil {
		t.Error("bit-flipped envelope passed the content sum")
	}
}
