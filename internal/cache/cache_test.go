package cache

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"svard/internal/memctrl"
	"svard/internal/sim"
)

// fakeCompute returns a compute function that derives a deterministic
// result from the config (no real simulation) and counts invocations.
func fakeCompute(calls *atomic.Int64) func(sim.Config) (sim.Result, error) {
	return func(cfg sim.Config) (sim.Result, error) {
		if calls != nil {
			calls.Add(1)
		}
		return sim.Result{
			IPC:        []float64{cfg.NRH / 1024, float64(cfg.Cores)},
			Cycles:     uint64(cfg.Cores) * 1000,
			MC:         memctrl.Stats{Reads: uint64(cfg.RowsPerBank)},
			Violations: 7,
			Finished:   true,
		}, nil
	}
}

func testCfg(nrh float64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Mix = []string{"mcf06", "lbm06"}
	cfg.Cores = 2
	cfg.NRH = nrh
	return cfg
}

func sameResult(t *testing.T, a, b sim.Result) {
	t.Helper()
	if a.Cycles != b.Cycles || a.Violations != b.Violations || a.Finished != b.Finished ||
		a.MC != b.MC || len(a.IPC) != len(b.IPC) {
		t.Fatalf("results differ: %+v vs %+v", a, b)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("IPC[%d] differs: %v vs %v", i, a.IPC[i], b.IPC[i])
		}
	}
}

func TestMissThenMemoryHit(t *testing.T) {
	s, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	cold, err := s.GetOrCompute(testCfg(64), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.GetOrCompute(testCfg(64), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, cold, warm)
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times, want 1", calls.Load())
	}
	st := s.Stats()
	if st.Misses != 1 || st.MemHits != 1 || st.Writes != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %v", st)
	}
}

func TestDiskPersistenceAcrossStores(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	var calls atomic.Int64
	cold, err := s1.GetOrCompute(testCfg(128), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory (fresh process, in effect).
	s2, _ := Open(dir, 0)
	warm, err := s2.GetOrCompute(testCfg(128), fakeCompute(&calls))
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, cold, warm)
	if calls.Load() != 1 {
		t.Errorf("compute ran %d times across stores, want 1", calls.Load())
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("second store stats = %v", st)
	}
	if !s2.Contains(Key(testCfg(128))) {
		t.Error("Contains: persisted key reported missing")
	}
	if s2.Contains(Key(testCfg(1))) {
		t.Error("Contains: absent key reported present")
	}
}

// Corrupt or truncated entries fall back to recompute — never an error —
// and the recomputed result overwrites the bad entry.
func TestCorruptEntryRecomputes(t *testing.T) {
	for name, corrupt := range map[string]func(path string) error{
		"truncated": func(p string) error {
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, b[:len(b)/2], 0o644)
		},
		"garbage": func(p string) error {
			return os.WriteFile(p, []byte("not json at all"), 0o644)
		},
		"wrong-schema": func(p string) error {
			return os.WriteFile(p, []byte(`{"schema":"svard-sim-v0","key":"x","result":{}}`), 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s1, _ := Open(dir, 0)
			var calls atomic.Int64
			cold, err := s1.GetOrCompute(testCfg(256), fakeCompute(&calls))
			if err != nil {
				t.Fatal(err)
			}
			if err := corrupt(s1.path(Key(testCfg(256)))); err != nil {
				t.Fatal(err)
			}

			s2, _ := Open(dir, 0)
			got, err := s2.GetOrCompute(testCfg(256), fakeCompute(&calls))
			if err != nil {
				t.Fatalf("corrupt entry surfaced as error: %v", err)
			}
			sameResult(t, cold, got)
			if calls.Load() != 2 {
				t.Errorf("compute ran %d times, want 2 (recompute)", calls.Load())
			}
			if st := s2.Stats(); st.Corrupt != 1 || st.Misses != 1 {
				t.Errorf("stats = %v", st)
			}

			// The bad entry was repaired in place.
			s3, _ := Open(dir, 0)
			if _, err := s3.GetOrCompute(testCfg(256), fakeCompute(&calls)); err != nil {
				t.Fatal(err)
			}
			if st := s3.Stats(); st.DiskHits != 1 {
				t.Errorf("repaired entry not served from disk: %v", st)
			}
		})
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	s, _ := Open("", 0) // memory-only
	var calls atomic.Int64
	release := make(chan struct{})
	slow := func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		<-release
		return fakeCompute(nil)(cfg)
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([]sim.Result, n)
	lookup := func(i int) {
		defer wg.Done()
		r, err := s.GetOrCompute(testCfg(512), slow)
		if err != nil {
			t.Error(err)
			return
		}
		results[i] = r
	}
	// First caller registers the in-flight computation and blocks in it;
	// everyone arriving after it must coalesce (or memory-hit), not
	// recompute.
	wg.Add(1)
	go lookup(0)
	for calls.Load() == 0 {
	}
	for i := 1; i < n; i++ {
		wg.Add(1)
		go lookup(i)
	}
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Errorf("compute ran %d times under %d concurrent identical requests", calls.Load(), n)
	}
	for i := 1; i < n; i++ {
		sameResult(t, results[0], results[i])
	}
	if st := s.Stats(); st.Deduped+st.MemHits != n-1 {
		t.Errorf("stats = %v, want %d coalesced-or-memory hits", st, n-1)
	}
}

func TestComputeErrorsPropagateAndAreNotCached(t *testing.T) {
	s, _ := Open(t.TempDir(), 0)
	var calls atomic.Int64
	boom := func(sim.Config) (sim.Result, error) {
		calls.Add(1)
		return sim.Result{}, os.ErrPermission
	}
	if _, err := s.GetOrCompute(testCfg(64), boom); err == nil {
		t.Fatal("expected error")
	}
	// The failure must not poison the key: a later good compute succeeds.
	if _, err := s.GetOrCompute(testCfg(64), fakeCompute(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", calls.Load())
	}
	if entries, _ := filepath.Glob(filepath.Join(s.Dir(), "*", "*.json")); len(entries) != 1 {
		t.Errorf("disk holds %d entries, want 1 (errors never persisted)", len(entries))
	}
}

func TestLRUEvictionFallsBackToDiskOrRecompute(t *testing.T) {
	s, _ := Open("", 2) // memory-only, two slots
	var calls atomic.Int64
	for _, nrh := range []float64{64, 128, 256} {
		if _, err := s.GetOrCompute(testCfg(nrh), fakeCompute(&calls)); err != nil {
			t.Fatal(err)
		}
	}
	// 64 was evicted by 256; with no disk layer it recomputes.
	if _, err := s.GetOrCompute(testCfg(64), fakeCompute(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Errorf("calls = %d, want 4 (three cold + one post-eviction)", calls.Load())
	}
	// 256 is still resident.
	if _, err := s.GetOrCompute(testCfg(256), fakeCompute(&calls)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 4 {
		t.Error("resident entry recomputed")
	}
}

// Results handed out must be isolated from the cached copy: mutating a
// returned IPC slice cannot corrupt what the next caller sees.
func TestResultAliasingIsolation(t *testing.T) {
	s, _ := Open("", 0)
	first, err := s.GetOrCompute(testCfg(64), fakeCompute(nil))
	if err != nil {
		t.Fatal(err)
	}
	want := first.IPC[0]
	first.IPC[0] = -1
	second, err := s.GetOrCompute(testCfg(64), fakeCompute(nil))
	if err != nil {
		t.Fatal(err)
	}
	if second.IPC[0] != want {
		t.Errorf("cached result was mutated through a returned slice: %v", second.IPC[0])
	}
}
