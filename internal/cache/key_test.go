package cache

import (
	"crypto/sha256"
	"reflect"
	"testing"

	"svard/internal/sim"
)

func TestKeyDeterministic(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Mix = []string{"mcf06", "lbm06"}
	if Key(cfg) != Key(cfg) {
		t.Fatal("same config hashed to different keys")
	}
	other := cfg
	other.Mix = append([]string(nil), cfg.Mix...)
	if Key(cfg) != Key(other) {
		t.Fatal("equal configs with distinct Mix backing arrays hashed differently")
	}
}

// TestKeyCoversEveryField mutates each field of sim.Config (recursing
// into nested structs) and asserts the key changes, so no two configs
// differing in any knob can ever collide — and a future Config field is
// covered the day it is added, with no cache code change.
func TestKeyCoversEveryField(t *testing.T) {
	base := sim.DefaultConfig()
	base.Mix = []string{"mcf06", "lbm06"}
	baseKey := Key(base)

	var mutate func(t *testing.T, path string, v reflect.Value)
	mutate = func(t *testing.T, path string, v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.Type().NumField(); i++ {
				f := v.Type().Field(i)
				if f.IsExported() {
					mutate(t, path+f.Name, v.Field(i))
				}
			}
			return
		case reflect.Bool:
			v.SetBool(!v.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			v.SetInt(v.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			v.SetUint(v.Uint() + 1)
		case reflect.Float32, reflect.Float64:
			v.SetFloat(v.Float() + 0.5)
		case reflect.String:
			v.SetString(v.String() + "x")
		case reflect.Slice:
			v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
		default:
			t.Fatalf("%s: unhandled kind %s — extend this test and cache.writeValue", path, v.Kind())
		}
	}

	walkLeaves(t, reflect.TypeOf(base), "", func(path string) {
		cfg := base // fresh copy per leaf
		v := reflect.ValueOf(&cfg).Elem()
		leaf := fieldByPath(v, path)
		mutate(t, path, leaf)
		if Key(cfg) == baseKey {
			t.Errorf("mutating %s did not change the cache key", path)
		}
	})
}

// walkLeaves visits the dotted path of every exported leaf field.
func walkLeaves(t *testing.T, typ reflect.Type, prefix string, visit func(path string)) {
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		if f.Type.Kind() == reflect.Struct {
			walkLeaves(t, f.Type, path, visit)
		} else {
			visit(path)
		}
	}
}

func fieldByPath(v reflect.Value, path string) reflect.Value {
	for {
		for i := 0; i < len(path); i++ {
			if path[i] == '.' {
				v = v.FieldByName(path[:i])
				path = path[i+1:]
				goto next
			}
		}
		return v.FieldByName(path)
	next:
	}
}

// The two collision pairs the issue calls out explicitly: WindowScale
// and Svard are the knobs most likely to be "forgotten" by a
// hand-written key.
func TestKeyDistinguishesWindowScaleAndSvard(t *testing.T) {
	a := sim.DefaultConfig()
	a.Mix = []string{"mcf06"}

	b := a
	b.WindowScale = a.WindowScale * 2
	if Key(a) == Key(b) {
		t.Error("configs differing only in WindowScale collided")
	}

	c := a
	c.Svard = !a.Svard
	if Key(a) == Key(c) {
		t.Error("configs differing only in Svard collided")
	}
}

// TestKeyMixFraming: the encoding must be self-delimiting, so adjacent
// Mix entries cannot be re-split into a colliding configuration.
func TestKeyMixFraming(t *testing.T) {
	a := sim.DefaultConfig()
	a.Mix = []string{"mcf06", "lbm06"}
	b := sim.DefaultConfig()
	b.Mix = []string{"mcf06lbm06"}
	c := sim.DefaultConfig()
	c.Mix = []string{"mcf06", "lbm06", ""}
	if Key(a) == Key(b) || Key(a) == Key(c) {
		t.Error("Mix framing is not self-delimiting")
	}
}

// TestHashFieldOrderIndependence: struct fields are hashed in sorted
// name order, so reordering a struct's declaration does not silently
// invalidate every cached entry.
func TestHashFieldOrderIndependence(t *testing.T) {
	type ab struct {
		A int
		B string
	}
	type ba struct {
		B string
		A int
	}
	h1, h2 := sha256.New(), sha256.New()
	writeValue(h1, reflect.ValueOf(ab{A: 7, B: "x"}))
	writeValue(h2, reflect.ValueOf(ba{A: 7, B: "x"}))
	if string(h1.Sum(nil)) != string(h2.Sum(nil)) {
		t.Error("field order changed the hash")
	}
}
