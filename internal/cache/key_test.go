package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"testing"

	"svard/internal/sim"
	"svard/internal/temporal"
)

func TestKeyDeterministic(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Mix = []string{"mcf06", "lbm06"}
	if Key(cfg) != Key(cfg) {
		t.Fatal("same config hashed to different keys")
	}
	other := cfg
	other.Mix = append([]string(nil), cfg.Mix...)
	if Key(cfg) != Key(other) {
		t.Fatal("equal configs with distinct Mix backing arrays hashed differently")
	}
}

// TestKeyCoversEveryField mutates each field of sim.Config (recursing
// into nested structs) and asserts the key changes, so no two configs
// differing in any knob can ever collide — and a future Config field is
// covered the day it is added, with no cache code change.
func TestKeyCoversEveryField(t *testing.T) {
	base := sim.DefaultConfig()
	base.Mix = []string{"mcf06", "lbm06"}
	baseKey := Key(base)

	var mutate func(t *testing.T, path string, v reflect.Value)
	mutate = func(t *testing.T, path string, v reflect.Value) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.Type().NumField(); i++ {
				f := v.Type().Field(i)
				if f.IsExported() {
					mutate(t, path+f.Name, v.Field(i))
				}
			}
			return
		case reflect.Bool:
			v.SetBool(!v.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			v.SetInt(v.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			v.SetUint(v.Uint() + 1)
		case reflect.Float32, reflect.Float64:
			v.SetFloat(v.Float() + 0.5)
		case reflect.String:
			v.SetString(v.String() + "x")
		case reflect.Slice:
			v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
		case reflect.Pointer:
			// nil → pointer-to-zero: field presence alone must change the
			// key (nested pointee fields get their own coverage walk in
			// TestKeyCoversTemporalFields).
			v.Set(reflect.New(v.Type().Elem()))
		default:
			t.Fatalf("%s: unhandled kind %s — extend this test and cache.writeValue", path, v.Kind())
		}
	}

	walkLeaves(t, reflect.TypeOf(base), "", func(path string) {
		cfg := base // fresh copy per leaf
		v := reflect.ValueOf(&cfg).Elem()
		leaf := fieldByPath(v, path)
		mutate(t, path, leaf)
		if Key(cfg) == baseKey {
			t.Errorf("mutating %s did not change the cache key", path)
		}
	})
}

// walkLeaves visits the dotted path of every exported leaf field.
func walkLeaves(t *testing.T, typ reflect.Type, prefix string, visit func(path string)) {
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			continue
		}
		path := f.Name
		if prefix != "" {
			path = prefix + "." + f.Name
		}
		if f.Type.Kind() == reflect.Struct {
			walkLeaves(t, f.Type, path, visit)
		} else {
			visit(path)
		}
	}
}

func fieldByPath(v reflect.Value, path string) reflect.Value {
	for {
		for i := 0; i < len(path); i++ {
			if path[i] == '.' {
				v = v.FieldByName(path[:i])
				path = path[i+1:]
				goto next
			}
		}
		return v.FieldByName(path)
	next:
	}
}

// The two collision pairs the issue calls out explicitly: WindowScale
// and Svard are the knobs most likely to be "forgotten" by a
// hand-written key.
func TestKeyDistinguishesWindowScaleAndSvard(t *testing.T) {
	a := sim.DefaultConfig()
	a.Mix = []string{"mcf06"}

	b := a
	b.WindowScale = a.WindowScale * 2
	if Key(a) == Key(b) {
		t.Error("configs differing only in WindowScale collided")
	}

	c := a
	c.Svard = !a.Svard
	if Key(a) == Key(c) {
		t.Error("configs differing only in Svard collided")
	}
}

// TestKeyMixFraming: the encoding must be self-delimiting, so adjacent
// Mix entries cannot be re-split into a colliding configuration.
func TestKeyMixFraming(t *testing.T) {
	a := sim.DefaultConfig()
	a.Mix = []string{"mcf06", "lbm06"}
	b := sim.DefaultConfig()
	b.Mix = []string{"mcf06lbm06"}
	c := sim.DefaultConfig()
	c.Mix = []string{"mcf06", "lbm06", ""}
	if Key(a) == Key(b) || Key(a) == Key(c) {
		t.Error("Mix framing is not self-delimiting")
	}
}

// TestKeyCoversTemporalFields: with a temporal block attached, every
// field of the Spec must participate in the key.
func TestKeyCoversTemporalFields(t *testing.T) {
	base := sim.DefaultConfig()
	base.Mix = []string{"mcf06"}
	base.Temporal = &temporal.Spec{EpochCycles: 65536}
	baseKey := Key(base)

	specType := reflect.TypeOf(temporal.Spec{})
	for i := 0; i < specType.NumField(); i++ {
		f := specType.Field(i)
		if !f.IsExported() {
			continue
		}
		cfg := base
		spec := *base.Temporal // fresh copy per field
		cfg.Temporal = &spec
		fv := reflect.ValueOf(cfg.Temporal).Elem().Field(i)
		switch fv.Kind() {
		case reflect.Uint64:
			fv.SetUint(fv.Uint() + 1)
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 0.5)
		default:
			t.Fatalf("Temporal.%s: unhandled kind %s — extend this test", f.Name, fv.Kind())
		}
		if Key(cfg) == baseKey {
			t.Errorf("mutating Temporal.%s did not change the cache key", f.Name)
		}
	}
}

// TestKeyStaticUnchangedByTemporalField pins the exact keys two static
// configurations hashed to before Config.Temporal existed. A nil
// Temporal must stay invisible to the encoding — these hex strings are
// the proof that no stored static result was orphaned by the field's
// introduction. If either ever changes, cached static entries are being
// silently invalidated: bump SchemaVersion deliberately instead.
func TestKeyStaticUnchangedByTemporalField(t *testing.T) {
	a := sim.DefaultConfig()
	a.Mix = []string{"mcf06", "lbm06"}
	const pinA = "c1ac9733c6d1de51027706600a5d031e41c350bb233090377f293bc017a4c282"
	if got := Key(a); got != pinA {
		t.Errorf("static key drifted:\n got %s\nwant %s", got, pinA)
	}

	b := sim.DefaultConfig()
	b.Cores = 2
	b.RowsPerBank = 2048
	b.CellsPerRow = 2048
	b.InstrPerCore = 10000
	b.WarmupPerCore = 2000
	b.NRH = 64
	b.Defense = "para"
	b.Svard = true
	b.Mix = []string{"mcf06", "ycsb-a"}
	const pinB = "a513d603642ea77b1c815aaf531d195ee6b6c58e09bbf2d5df42670ab5d5e7c7"
	if got := Key(b); got != pinB {
		t.Errorf("static key drifted:\n got %s\nwant %s", got, pinB)
	}
}

// TestKeyTemporalSchemaVersion: only configs with a temporal block are
// keyed under the v4 schema; static configs stay on v3. Pinned by
// recomputing both keys against the schema constants directly.
func TestKeyTemporalSchemaVersion(t *testing.T) {
	if SchemaVersion != "svard-sim-v3" {
		t.Fatalf("static SchemaVersion changed to %q: this invalidates every stored static result", SchemaVersion)
	}
	if TemporalSchemaVersion != "svard-sim-v4" {
		t.Fatalf("TemporalSchemaVersion changed to %q", TemporalSchemaVersion)
	}
	cfg := sim.DefaultConfig()
	cfg.Mix = []string{"mcf06"}
	static := Key(cfg)
	cfg.Temporal = &temporal.Spec{EpochCycles: 65536, Drift: -0.01}
	tempo := Key(cfg)
	if static == tempo {
		t.Fatal("temporal block did not change the cache key")
	}

	// Recompute each key with the schema string written explicitly: the
	// static key must be reproducible under SchemaVersion, the temporal
	// one under TemporalSchemaVersion.
	rekey := func(schema string, c sim.Config) string {
		h := sha256.New()
		writeString(h, schema)
		writeValue(h, reflect.ValueOf(c))
		return hex.EncodeToString(h.Sum(nil))
	}
	cfg.Temporal = nil
	if rekey(SchemaVersion, cfg) != static {
		t.Error("static config not keyed under SchemaVersion")
	}
	cfg.Temporal = &temporal.Spec{EpochCycles: 65536, Drift: -0.01}
	if rekey(TemporalSchemaVersion, cfg) != tempo {
		t.Error("temporal config not keyed under TemporalSchemaVersion")
	}
}

// TestHashFieldOrderIndependence: struct fields are hashed in sorted
// name order, so reordering a struct's declaration does not silently
// invalidate every cached entry.
func TestHashFieldOrderIndependence(t *testing.T) {
	type ab struct {
		A int
		B string
	}
	type ba struct {
		B string
		A int
	}
	h1, h2 := sha256.New(), sha256.New()
	writeValue(h1, reflect.ValueOf(ab{A: 7, B: "x"}))
	writeValue(h2, reflect.ValueOf(ba{A: 7, B: "x"}))
	if string(h1.Sum(nil)) != string(h2.Sum(nil)) {
		t.Error("field order changed the hash")
	}
}
