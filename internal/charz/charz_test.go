package charz

import (
	"math"
	"sort"
	"testing"

	"svard/internal/profile"
)

func buildModule(t *testing.T, label string) *profile.Module {
	t.Helper()
	spec, ok := profile.SpecByLabel(label)
	if !ok {
		t.Fatalf("unknown module %s", label)
	}
	m, err := profile.BuildScaled(spec, 1, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTable5RowMatchesSpec(t *testing.T) {
	m := buildModule(t, "M0")
	row := Table5(m, 1)
	if row.MinHC != m.Spec.MinHC {
		t.Errorf("min = %v, want %v", row.MinHC, m.Spec.MinHC)
	}
	if rel := math.Abs(row.AvgHC-m.Spec.AvgHC) / m.Spec.AvgHC; rel > 0.12 {
		t.Errorf("avg = %v, want %v", row.AvgHC, m.Spec.AvgHC)
	}
	if row.MaxHC > m.Spec.MaxHC {
		t.Errorf("max = %v exceeds %v", row.MaxHC, m.Spec.MaxHC)
	}
}

func TestFig3BanksOverlap(t *testing.T) {
	// Obsv. 2: banks exhibit similar BER distributions — boxes overlap.
	m := buildModule(t, "H1")
	d := Fig3(m, 4)
	if len(d.Banks) != 4 {
		t.Fatalf("banks = %d", len(d.Banks))
	}
	for i := 1; i < len(d.Banks); i++ {
		a, b := d.Banks[0].Summary, d.Banks[i].Summary
		if a.Q3 < b.Q1 || b.Q3 < a.Q1 {
			t.Errorf("bank %d box does not overlap bank %d", d.Banks[i].Bank, d.Banks[0].Bank)
		}
	}
	if d.CV <= 0 {
		t.Error("CV must be positive: BER varies across rows (Obsv. 1)")
	}
}

func TestFig4NormalizedAndPeriodic(t *testing.T) {
	m := buildModule(t, "S4")
	pts := Fig4(m, 128)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	minY := math.Inf(1)
	for _, p := range pts {
		if p.Norm < minY {
			minY = p.Norm
		}
		if p.NormLo > p.Norm || p.NormHi < p.Norm {
			t.Fatalf("shade does not bracket mean at %v", p.Loc)
		}
	}
	if minY < 0.99 {
		t.Errorf("normalized minimum %v below 1", minY)
	}
	// Obsv. 4: repeating pattern — the curve must rise and fall multiple
	// times (count direction changes of a smoothed series).
	changes := 0
	for i := 2; i < len(pts); i++ {
		d1 := pts[i-1].Norm - pts[i-2].Norm
		d2 := pts[i].Norm - pts[i-1].Norm
		if d1*d2 < 0 {
			changes++
		}
	}
	if changes < 4 {
		t.Errorf("only %d direction changes; periodic structure missing", changes)
	}
}

func TestFig5FractionsSumToOne(t *testing.T) {
	m := buildModule(t, "S0")
	levels := Fig5(m, 2)
	sum := 0.0
	for _, l := range levels {
		sum += l.Frac
		if l.FracLo > l.Frac+1e-9 || l.FracHi < l.Frac-1e-9 {
			t.Errorf("level %v: span [%v,%v] does not bracket %v", l.Level, l.FracLo, l.FracHi, l.Frac)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	// S0's minimum is 32K: no mass below it.
	for _, l := range levels {
		if l.Level < m.Spec.MinHC && l.Frac > 0 {
			t.Errorf("mass %v below the module minimum at %v", l.Frac, l.Level)
		}
	}
}

func TestFig6NormalizedScatter(t *testing.T) {
	m := buildModule(t, "H0")
	pts := Fig6(m, 256)
	for _, p := range pts {
		if p.Y < 1 {
			t.Fatalf("normalized HCfirst %v below 1", p.Y)
		}
		if p.X < 0 || p.X > 1 {
			t.Fatalf("location %v outside [0,1]", p.X)
		}
	}
}

func TestFig7RowPressShape(t *testing.T) {
	// Takeaway 5: HCfirst decreases with tAggOn, and still varies widely
	// at 2us.
	m := buildModule(t, "H2")
	boxes := Fig7(m, 4)
	if len(boxes) != 3 {
		t.Fatalf("boxes = %d", len(boxes))
	}
	for i := 1; i < 3; i++ {
		if boxes[i].Summary.Mean >= boxes[i-1].Summary.Mean {
			t.Errorf("mean HCfirst not decreasing: %v -> %v", boxes[i-1].Summary.Mean, boxes[i].Summary.Mean)
		}
		if boxes[i].Summary.Q3 >= boxes[i-1].Summary.Q3 {
			t.Errorf("IQR not shifting down with on-time")
		}
	}
	if boxes[2].CV < 0.1 {
		t.Errorf("CV at 2us = %v; variation should persist (Obsv. 11)", boxes[2].CV)
	}
	// Roughly an order of magnitude drop at 2us (Fig. 7).
	ratio := boxes[0].Summary.Mean / boxes[2].Summary.Mean
	if ratio < 5 || ratio > 30 {
		t.Errorf("36ns/2us HCfirst ratio = %v, want ~an order of magnitude", ratio)
	}
}

func TestFig8FindsSubarrayCount(t *testing.T) {
	m := buildModule(t, "S2")
	d := Fig8(m, 4)
	if d.BestK != d.TruthK {
		t.Errorf("best k = %d, truth %d", d.BestK, d.TruthK)
	}
	if len(d.Curve) == 0 {
		t.Fatal("empty curve")
	}
}

func TestFig9Table3Membership(t *testing.T) {
	strongCount := map[string]int{}
	maxF1 := 0.0
	for _, label := range []string{"S0", "S4", "H1", "M4"} {
		m := buildModule(t, label)
		d := Fig9(m)
		strongCount[label] = len(d.Strong)
		if d.MaxF1 > maxF1 {
			maxF1 = d.MaxF1
		}
		// The Fig. 9 curve is monotone non-increasing.
		for i := 1; i < len(d.Fraction); i++ {
			if d.Fraction[i] > d.Fraction[i-1]+1e-12 {
				t.Errorf("%s: fraction curve not monotone", label)
			}
		}
	}
	if strongCount["S0"] == 0 || strongCount["S4"] == 0 {
		t.Errorf("S modules lack strong features: %v", strongCount)
	}
	if strongCount["H1"] != 0 || strongCount["M4"] != 0 {
		t.Errorf("H/M modules show strong features: %v", strongCount)
	}
	if maxF1 > 0.85 {
		t.Errorf("max F1 = %v; paper's strongest average is 0.77", maxF1)
	}
}

func TestFig10AgingTransitions(t *testing.T) {
	m := buildModule(t, "H3") // the paper ages module H3
	cells := Fig10(m, 68, 1)
	sort.Slice(cells, func(i, j int) bool { return cells[i].Before < cells[j].Before })
	degraded := 0
	for _, c := range cells {
		if c.After > c.Before {
			t.Fatalf("aging raised HCfirst: %v -> %v", c.Before, c.After)
		}
		if c.After < c.Before {
			degraded++
			if c.Before >= 96*1024 {
				t.Errorf("strong rows must not age (Obsv. 13): %v -> %v", c.Before, c.After)
			}
			if c.Fraction > 0.15 {
				t.Errorf("degradation fraction %v at %v implausibly high", c.Fraction, c.Before)
			}
		}
	}
	if degraded == 0 {
		t.Error("no degradation transitions (Obsv. 12 expects a non-zero fraction)")
	}
	// Per-before fractions sum to 1.
	sums := map[float64]float64{}
	for _, c := range cells {
		sums[c.Before] += c.Fraction
	}
	for before, s := range sums {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("fractions at %v sum to %v", before, s)
		}
	}
}
