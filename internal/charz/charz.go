// Package charz computes the data behind the paper's characterization
// tables and figures (Table 5, Figs. 3-10) from calibrated modules.
// The computations use the analytic view of the disturbance model —
// which tests prove equal to command-level hammering through the
// testbench — so full banks can be swept in seconds rather than weeks.
package charz

import (
	"math"

	"svard/internal/disturb"
	"svard/internal/profile"
	"svard/internal/reveng"
	"svard/internal/rng"
	"svard/internal/stats"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// censoredLevel reports rows that never flip as the top tested level,
// matching Table 5's reporting convention.
func censoredLevel(levels []float64, hc float64) float64 {
	if q, ok := disturb.Quantize(levels, hc); ok {
		return q
	}
	return levels[len(levels)-1]
}

// Table5Row is one measured row of Table 5.
type Table5Row struct {
	Label        string
	Mfr          string
	Chips        int
	DensityGb    int
	DieRev       string
	Org          int
	FreqMTs      int
	DateCode     string
	RowsPerBank  int
	MinHC, AvgHC float64
	MaxHC        float64
}

// Table5 measures a built module's HCfirst statistics over the tested
// banks, with rows sampled at the given stride (1 = every row).
func Table5(m *profile.Module, stride int) Table5Row {
	model := m.NewModel()
	levels := disturb.HammerLevels()
	minV, maxV, sum, n := math.Inf(1), 0.0, 0.0, 0
	for _, b := range profile.TestedBanks() {
		for row := 0; row < m.Geom.RowsPerBank; row += stride {
			q := censoredLevel(levels, model.HCFirst(b, row))
			if q < minV {
				minV = q
			}
			if q > maxV {
				maxV = q
			}
			sum += q
			n++
		}
	}
	return Table5Row{
		Label: m.Spec.Label, Mfr: string(m.Spec.Mfr), Chips: m.Spec.Chips,
		DensityGb: m.Spec.DensityGb, DieRev: m.Spec.DieRev, Org: m.Spec.Org,
		FreqMTs: m.Spec.FreqMTs, DateCode: m.Spec.DateCode,
		RowsPerBank: m.Spec.RowsPerBank,
		MinHC:       minV, AvgHC: sum / float64(n), MaxHC: maxV,
	}
}

// Fig3Bank is one box of Fig. 3: the BER distribution of one bank.
type Fig3Bank struct {
	Bank    int
	Summary stats.Summary
}

// Fig3Data is one module's subplot of Fig. 3.
type Fig3Data struct {
	Label string
	Banks []Fig3Bank
	CV    float64 // across all rows and banks
}

// Fig3 computes the per-bank BER distributions at HC=128K, tAggOn=36ns.
func Fig3(m *profile.Module, stride int) Fig3Data {
	model := m.NewModel()
	out := Fig3Data{Label: m.Spec.Label}
	var all []float64
	for _, b := range profile.TestedBanks() {
		var bers []float64
		for row := 0; row < m.Geom.RowsPerBank; row += stride {
			ber := model.BER(b, row, 128*1024)
			bers = append(bers, ber)
			all = append(all, ber)
		}
		out.Banks = append(out.Banks, Fig3Bank{Bank: b, Summary: stats.Summarize(bers)})
	}
	out.CV = stats.Summarize(all).CV()
	return out
}

// Fig4 returns BER vs relative row location, normalized to the minimum
// BER across all tested rows (y-axis of Fig. 4), with the min/max shade
// across banks.
type Fig4Point struct {
	Loc            float64
	Norm           float64 // mean across banks
	NormLo, NormHi float64
}

// Fig4 samples the normalized-BER curve at `points` locations.
func Fig4(m *profile.Module, points int) []Fig4Point {
	model := m.NewModel()
	banks := profile.TestedBanks()
	minBER := math.Inf(1)
	rows := m.Geom.RowsPerBank
	step := rows / points
	if step < 1 {
		step = 1
	}
	type cell struct{ sum, lo, hi float64 }
	cells := make([]cell, 0, points)
	var locs []float64
	for row := 0; row < rows; row += step {
		c := cell{lo: math.Inf(1), hi: math.Inf(-1)}
		for _, b := range banks {
			ber := model.BER(b, row, 128*1024)
			c.sum += ber
			if ber < c.lo {
				c.lo = ber
			}
			if ber > c.hi {
				c.hi = ber
			}
			if ber < minBER && ber > 0 {
				minBER = ber
			}
		}
		cells = append(cells, c)
		locs = append(locs, m.Geom.RelativeLocation(row))
	}
	out := make([]Fig4Point, len(cells))
	for i, c := range cells {
		out[i] = Fig4Point{
			Loc:    locs[i],
			Norm:   c.sum / float64(len(banks)) / minBER,
			NormLo: c.lo / minBER,
			NormHi: c.hi / minBER,
		}
	}
	return out
}

// Fig5Level is one histogram bar of Fig. 5 with its across-banks span.
type Fig5Level struct {
	Level          float64
	Frac           float64
	FracLo, FracHi float64
}

// Fig5 computes the HCfirst distribution across rows (censored rows
// report the top level).
func Fig5(m *profile.Module, stride int) []Fig5Level {
	model := m.NewModel()
	levels := disturb.HammerLevels()
	banks := profile.TestedBanks()
	perBank := make([][]float64, len(banks))
	for bi, b := range banks {
		var qs []float64
		for row := 0; row < m.Geom.RowsPerBank; row += stride {
			qs = append(qs, censoredLevel(levels, model.HCFirst(b, row)))
		}
		perBank[bi] = stats.HistogramDiscrete(qs, levels).Fractions()
	}
	out := make([]Fig5Level, len(levels))
	for li, l := range levels {
		lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
		for bi := range banks {
			f := perBank[bi][li]
			sum += f
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		out[li] = Fig5Level{Level: l, Frac: sum / float64(len(banks)), FracLo: lo, FracHi: hi}
	}
	return out
}

// Fig6 returns HCfirst (normalized to the module minimum) vs relative
// row location samples — the scatter whose irregularity is Takeaway 4.
func Fig6(m *profile.Module, points int) []Point {
	model := m.NewModel()
	levels := disturb.HammerLevels()
	bank := profile.TestedBanks()[0]
	rows := m.Geom.RowsPerBank
	step := rows / points
	if step < 1 {
		step = 1
	}
	minHC := math.Inf(1)
	var qs []float64
	var locs []float64
	for row := 0; row < rows; row += step {
		q := censoredLevel(levels, model.HCFirst(bank, row))
		qs = append(qs, q)
		locs = append(locs, m.Geom.RelativeLocation(row))
		if q < minHC {
			minHC = q
		}
	}
	out := make([]Point, len(qs))
	for i := range qs {
		out[i] = Point{X: locs[i], Y: qs[i] / minHC}
	}
	return out
}

// Fig7Box is the HCfirst distribution at one aggressor on-time.
type Fig7Box struct {
	TAggOnNs float64
	Summary  stats.Summary
	CV       float64
}

// Fig7 computes the RowPress effect: HCfirst distributions at the three
// tested on-times.
func Fig7(m *profile.Module, stride int) []Fig7Box {
	model := m.NewModel()
	banks := profile.TestedBanks()
	var out []Fig7Box
	for _, t := range []float64{36, 500, 2000} {
		var hcs []float64
		for _, b := range banks {
			for row := 0; row < m.Geom.RowsPerBank; row += stride {
				hcs = append(hcs, model.HCFirstAt(b, row, t))
			}
		}
		s := stats.Summarize(hcs)
		out = append(out, Fig7Box{TAggOnNs: t, Summary: s, CV: s.CV()})
	}
	return out
}

// Fig8Data is the silhouette sweep of the subarray clustering.
type Fig8Data struct {
	Curve  []reveng.SilhouettePoint
	BestK  int
	TruthK int
}

// Fig8 runs the subarray-count estimation on analytic footprints,
// sweeping k around the true count.
func Fig8(m *profile.Module, span int) Fig8Data {
	fp := reveng.AnalyticFootprints(m.Geom)
	truth := m.Geom.Subarrays()
	var ks []int
	lo := truth - span
	if lo < 2 {
		lo = 2
	}
	for k := lo; k <= truth+span; k++ {
		ks = append(ks, k)
	}
	curve, best := reveng.SubarraySilhouetteSweep(fp, ks, rng.Hash64(m.Seed, 0xF18))
	return Fig8Data{Curve: curve, BestK: best, TruthK: truth}
}

// Fig9Data holds the feature-correlation outputs: the Fig. 9 curve and
// Table 3's strong features.
type Fig9Data struct {
	Label      string
	Thresholds []float64
	Fraction   []float64
	Strong     []reveng.FeatureScore // F1 > 0.7 (Table 3)
	MaxF1      float64
}

// Fig9 scores every spatial feature of the module against measured
// HCfirst levels.
func Fig9(m *profile.Module) Fig9Data {
	model := m.NewModel()
	levels := disturb.HammerLevels()
	levelOf := func(bank, row int) int {
		return disturb.LevelIndex(levels, model.HCFirst(bank, row))
	}
	scores := reveng.ScoreFeatures(m.Geom, profile.TestedBanks(), levelOf, len(levels), reveng.AllFeatures(m.Geom))
	var ths []float64
	for t := 0.0; t <= 1.0001; t += 0.1 {
		ths = append(ths, t)
	}
	maxF1 := 0.0
	for _, s := range scores {
		if s.F1 > maxF1 {
			maxF1 = s.F1
		}
	}
	return Fig9Data{
		Label:      m.Spec.Label,
		Thresholds: ths,
		Fraction:   reveng.FractionAbove(scores, ths),
		Strong:     reveng.StrongFeatures(scores, 0.7),
		MaxF1:      maxF1,
	}
}

// Fig10Cell is one annotated transition of Fig. 10.
type Fig10Cell struct {
	Before, After float64
	Fraction      float64 // of rows at Before
}

// Fig10 computes the aging transition fractions: per before-aging level,
// the fraction of rows whose HCfirst dropped after the aging interval.
func Fig10(m *profile.Module, agingDays float64, stride int) []Fig10Cell {
	before := m.NewModel()
	after := m.NewModel()
	after.AgingDays = agingDays
	levels := disturb.HammerLevels()
	banks := profile.TestedBanks()
	counts := map[[2]float64]int{}
	totals := map[float64]int{}
	for _, b := range banks {
		for row := 0; row < m.Geom.RowsPerBank; row += stride {
			qb := censoredLevel(levels, before.HCFirst(b, row))
			qa := censoredLevel(levels, after.HCFirst(b, row))
			counts[[2]float64{qb, qa}]++
			totals[qb]++
		}
	}
	var out []Fig10Cell
	for key, n := range counts {
		out = append(out, Fig10Cell{
			Before:   key[0],
			After:    key[1],
			Fraction: float64(n) / float64(totals[key[0]]),
		})
	}
	return out
}
