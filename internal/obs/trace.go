// Chrome trace_event output: the campaign-level Trace collector, its
// JSON writer, and the reader/validator svard-trace and the CI trace
// check use. The format is the Trace Event Format's JSON object form
// ("traceEvents" + complete "X" events), so a whole campaign opens
// directly in chrome://tracing or Perfetto.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Cell is one sweep cell's flight record: identity, execution interval,
// per-phase spans, and the counter snapshot its Recorder accumulated.
type Cell struct {
	Label   string // human-readable cell label (defense, nRH, mix, ...)
	Key     string // content-addressed cache key (64 hex chars), if known
	Outcome string // "computed" or "served"
	Err     string // non-empty if the cell failed

	Start time.Time // execution start (after any queue wait)
	End   time.Time // execution end

	Phases   [NumPhases]PhaseSpan
	Counters Counters
}

// PhaseSpan is one phase's interval in a Cell (zero values: not run).
type PhaseSpan struct {
	Start time.Time
	End   time.Time
}

// Valid reports whether the span completed.
func (s PhaseSpan) Valid() bool {
	return !s.Start.IsZero() && !s.End.IsZero() && !s.End.Before(s.Start)
}

// Dur returns the span's duration, 0 when incomplete.
func (s PhaseSpan) Dur() time.Duration {
	if !s.Valid() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// CellFromRecorder assembles a Cell from a finished Recorder.
func CellFromRecorder(label, key, outcome string, rec *Recorder, start, end time.Time) Cell {
	c := Cell{Label: label, Key: key, Outcome: outcome, Start: start, End: end, Counters: rec.Counters}
	for p := Phase(0); int(p) < NumPhases; p++ {
		if s, e, ok := rec.Span(p); ok {
			c.Phases[p] = PhaseSpan{Start: s, End: e}
		}
	}
	return c
}

// DefaultTraceCells bounds how many per-cell records a Trace retains.
// Counter totals keep accumulating past the bound; only the span
// records are dropped (and counted in Dropped).
const DefaultTraceCells = 65536

// Trace collects per-cell flight records for one campaign and writes
// them as Chrome trace_event JSON. Safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	limit   int
	cells   []Cell
	dropped int
	totals  Counters
}

// NewTrace returns a collector anchored at time.Now() retaining up to
// DefaultTraceCells cell records.
func NewTrace() *Trace { return NewTraceLimit(DefaultTraceCells) }

// NewTraceLimit is NewTrace with an explicit retention bound
// (limit <= 0 means DefaultTraceCells).
func NewTraceLimit(limit int) *Trace {
	if limit <= 0 {
		limit = DefaultTraceCells
	}
	return &Trace{start: time.Now(), limit: limit}
}

// Start returns the trace anchor: t=0 of the timeline, and the start
// of every cell's queue-wait phase.
func (t *Trace) Start() time.Time { return t.start }

// Add records one cell. Past the retention bound the span record is
// dropped but its counters still accumulate into Totals.
func (t *Trace) Add(c Cell) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.totals.Add(c.Counters)
	if len(t.cells) >= t.limit {
		t.dropped++
		return
	}
	t.cells = append(t.cells, c)
}

// Cells returns a snapshot of the retained cell records.
func (t *Trace) Cells() []Cell {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Cell, len(t.cells))
	copy(out, t.cells)
	return out
}

// Len returns the number of retained cell records.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.cells)
}

// Dropped returns how many cells exceeded the retention bound.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Totals returns the counter sum over every added cell (including
// dropped ones).
func (t *Trace) Totals() Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totals
}

// Event is one trace_event record. Only the fields svärd emits are
// modeled; unknown fields are ignored on read.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds from trace start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// File is the JSON object form of the Trace Event Format.
type File struct {
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
	TraceEvents     []Event `json:"traceEvents"`
}

// usSince converts an absolute time to microseconds from the anchor.
func usSince(anchor, t time.Time) float64 {
	return float64(t.Sub(anchor)) / float64(time.Microsecond)
}

// build renders the retained cells as trace events. Cells are packed
// onto worker lanes (tids) by greedy interval partitioning over their
// execution intervals, reconstructing the worker occupancy picture
// without the runner having to thread worker IDs through.
func (t *Trace) build() File {
	t.mu.Lock()
	cells := make([]Cell, len(t.cells))
	copy(cells, t.cells)
	anchor := t.start
	dropped := t.dropped
	t.mu.Unlock()

	order := make([]int, len(cells))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cells[order[a]].Start.Before(cells[order[b]].Start)
	})

	f := File{DisplayTimeUnit: "ms"}
	f.TraceEvents = append(f.TraceEvents, Event{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "svard campaign"},
	})

	var laneEnd []time.Time // last occupied instant per lane
	lane := func(c Cell) int {
		for i, end := range laneEnd {
			if !c.Start.Before(end) {
				laneEnd[i] = c.End
				return i
			}
		}
		laneEnd = append(laneEnd, c.End)
		return len(laneEnd) - 1
	}

	for _, i := range order {
		c := cells[i]
		if c.End.Before(c.Start) {
			c.End = c.Start
		}
		tid := lane(c)
		args := map[string]any{
			"outcome":  c.Outcome,
			"counters": c.Counters.Map(),
		}
		if c.Key != "" {
			args["key"] = c.Key
		}
		if c.Err != "" {
			args["err"] = c.Err
		}
		// The queue wait precedes the execution interval, so it is
		// reported as a duration arg rather than a nested span — nested
		// spans must sit inside the cell event.
		if w := c.Phases[PhaseWait]; w.Valid() {
			args["wait_us"] = float64(w.Dur()) / float64(time.Microsecond)
		}
		f.TraceEvents = append(f.TraceEvents, Event{
			Name: c.Label, Cat: "cell", Ph: "X", Pid: 1, Tid: tid,
			Ts:   usSince(anchor, c.Start),
			Dur:  usSince(c.Start, c.End),
			Args: args,
		})
		for p := PhaseLookup; int(p) < NumPhases; p++ {
			s := c.Phases[p]
			if !s.Valid() {
				continue
			}
			// Clamp into the cell interval so spans always nest (phase
			// stamps and the cell end are taken a few instructions apart).
			start, end := s.Start, s.End
			if start.Before(c.Start) {
				start = c.Start
			}
			if end.After(c.End) {
				end = c.End
			}
			if end.Before(start) {
				continue
			}
			f.TraceEvents = append(f.TraceEvents, Event{
				Name: p.String(), Cat: "phase", Ph: "X", Pid: 1, Tid: tid,
				Ts:  usSince(anchor, start),
				Dur: usSince(start, end),
			})
		}
	}
	for i := range laneEnd {
		f.TraceEvents = append(f.TraceEvents, Event{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i,
			Args: map[string]any{"name": fmt.Sprintf("worker lane %d", i)},
		})
	}
	if dropped > 0 {
		f.TraceEvents = append(f.TraceEvents, Event{
			Name: "cells dropped (retention bound)", Cat: "cell", Ph: "I", Pid: 1,
			Args: map[string]any{"dropped": dropped},
		})
	}
	return f
}

// Write writes the trace as Chrome trace_event JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.build())
}

// WriteFile writes the trace to path (0644).
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a trace_event JSON stream.
func Read(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: parse trace: %w", err)
	}
	return &f, nil
}

// ReadFile parses a trace_event JSON file.
func ReadFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Validate checks structural invariants: every complete event has a
// non-negative duration, and on each lane the "X" events strictly nest
// (a span is either disjoint from or fully contained in any other on
// its lane), with every phase span inside a cell span.
func (f *File) Validate() error {
	byLane := map[int][]Event{}
	for _, e := range f.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Dur < 0 {
			return fmt.Errorf("obs: event %q has negative duration %v", e.Name, e.Dur)
		}
		byLane[e.Tid] = append(byLane[e.Tid], e)
	}
	const eps = 1e-6 // one picosecond in µs: float round-off guard
	for tid, evs := range byLane {
		// Parent-before-child order: by start, longest first on ties.
		sort.SliceStable(evs, func(a, b int) bool {
			if evs[a].Ts != evs[b].Ts {
				return evs[a].Ts < evs[b].Ts
			}
			return evs[a].Dur > evs[b].Dur
		})
		var stack []Event
		for _, e := range evs {
			for len(stack) > 0 && e.Ts >= stack[len(stack)-1].Ts+stack[len(stack)-1].Dur-eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if e.Ts+e.Dur > top.Ts+top.Dur+eps {
					return fmt.Errorf("obs: lane %d: span %q [%v, %v] overlaps %q [%v, %v] without nesting",
						tid, e.Name, e.Ts, e.Ts+e.Dur, top.Name, top.Ts, top.Ts+top.Dur)
				}
			}
			if e.Cat == "phase" {
				inCell := false
				for _, p := range stack {
					if p.Cat == "cell" {
						inCell = true
						break
					}
				}
				if !inCell {
					return fmt.Errorf("obs: lane %d: phase span %q at %v is outside any cell span", tid, e.Name, e.Ts)
				}
			}
			stack = append(stack, e)
		}
	}
	return nil
}

// CellSummary is the inspector's view of one cell event: identity,
// timing, the wait duration, phase durations, and counters — all in
// microseconds, as parsed back from the JSON.
type CellSummary struct {
	Label   string
	Key     string
	Outcome string
	Err     string
	Tid     int
	TsUs    float64
	DurUs   float64
	WaitUs  float64
	Phases  map[string]float64 // phase name -> duration µs
	Counter map[string]uint64
}

// CellSummaries reconstructs per-cell views from the parsed events,
// attributing phase spans to the cell event that contains them on the
// same lane. Cells come back in timeline order.
func (f *File) CellSummaries() []CellSummary {
	type laneCell struct {
		idx      int
		ts, dur  float64
	}
	var out []CellSummary
	lanes := map[int][]laneCell{}
	for _, e := range f.TraceEvents {
		if e.Ph != "X" || e.Cat != "cell" {
			continue
		}
		cs := CellSummary{
			Label:  e.Name,
			Tid:    e.Tid,
			TsUs:   e.Ts,
			DurUs:  e.Dur,
			Phases: map[string]float64{},
		}
		if v, ok := e.Args["key"].(string); ok {
			cs.Key = v
		}
		if v, ok := e.Args["outcome"].(string); ok {
			cs.Outcome = v
		}
		if v, ok := e.Args["err"].(string); ok {
			cs.Err = v
		}
		if v, ok := e.Args["wait_us"].(float64); ok {
			cs.WaitUs = v
		}
		if m, ok := e.Args["counters"].(map[string]any); ok {
			cs.Counter = make(map[string]uint64, len(m))
			for k, v := range m {
				if n, ok := v.(float64); ok && n >= 0 {
					cs.Counter[k] = uint64(n)
				}
			}
		}
		lanes[e.Tid] = append(lanes[e.Tid], laneCell{idx: len(out), ts: e.Ts, dur: e.Dur})
		out = append(out, cs)
	}
	for _, e := range f.TraceEvents {
		if e.Ph != "X" || e.Cat != "phase" {
			continue
		}
		// Attribute to the tightest containing cell on the lane.
		best := -1
		bestDur := 0.0
		for _, lc := range lanes[e.Tid] {
			if e.Ts >= lc.ts-1e-6 && e.Ts+e.Dur <= lc.ts+lc.dur+1e-6 {
				if best == -1 || lc.dur < bestDur {
					best, bestDur = lc.idx, lc.dur
				}
			}
		}
		if best >= 0 {
			out[best].Phases[e.Name] += e.Dur
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TsUs < out[b].TsUs })
	return out
}
