package obs

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestPhaseString(t *testing.T) {
	want := []string{"wait", "lookup", "build", "warmup", "run", "fold"}
	if NumPhases != len(want) {
		t.Fatalf("NumPhases = %d, want %d", NumPhases, len(want))
	}
	for p, name := range want {
		if got := Phase(p).String(); got != name {
			t.Errorf("Phase(%d) = %q, want %q", p, got, name)
		}
	}
	if Phase(-1).String() != "unknown" || Phase(NumPhases).String() != "unknown" {
		t.Error("out-of-range phases must stringify as unknown")
	}
}

// countUint64Fields walks a struct (embedded structs included) and
// counts its uint64 fields.
func countUint64Fields(t reflect.Type) int {
	n := 0
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		switch {
		case f.Type.Kind() == reflect.Struct:
			n += countUint64Fields(f.Type)
		case f.Type.Kind() == reflect.Uint64:
			n++
		}
	}
	return n
}

// TestGlossaryCoversEveryCounter pins the glossary to the struct: a
// counter added to Counters without a glossary entry would silently
// miss svard-trace, /metrics, and the docs.
func TestGlossaryCoversEveryCounter(t *testing.T) {
	fields := countUint64Fields(reflect.TypeOf(Counters{}))
	if g := len(Glossary()); g != fields {
		t.Fatalf("glossary has %d entries, Counters has %d uint64 fields", g, fields)
	}
	// Each Get must read a distinct field: fill the struct with unique
	// values and require the glossary to surface every one of them.
	var c Counters
	var fill func(v reflect.Value, next *uint64)
	fill = func(v reflect.Value, next *uint64) {
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Struct:
				fill(f, next)
			case reflect.Uint64:
				*next++
				f.SetUint(*next)
			}
		}
	}
	n := uint64(0)
	fill(reflect.ValueOf(&c).Elem(), &n)
	seen := map[uint64]string{}
	for _, info := range Glossary() {
		v := info.Get(&c)
		if v == 0 {
			t.Errorf("glossary %q reads no field", info.Name)
		}
		if prev, dup := seen[v]; dup {
			t.Errorf("glossary %q and %q read the same field", info.Name, prev)
		}
		seen[v] = info.Name
		if info.Help == "" {
			t.Errorf("glossary %q has no help text", info.Name)
		}
		if info.Name != strings.ToLower(info.Name) || strings.Contains(info.Name, " ") {
			t.Errorf("glossary name %q is not snake_case", info.Name)
		}
	}
	m := c.Map()
	if len(m) != fields {
		t.Errorf("Map has %d entries, want %d", len(m), fields)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{
		EngineCounters:     EngineCounters{Ticks: 10, SkippedCycles: 5, BoundCore: 2},
		ControllerCounters: ControllerCounters{ScanPasses: 3, DirSwapRows: 1},
		CellsComputed:      1,
	}
	var sum Counters
	sum.Add(a)
	sum.Add(a)
	if sum.Ticks != 20 || sum.SkippedCycles != 10 || sum.BoundCore != 4 ||
		sum.ScanPasses != 6 || sum.DirSwapRows != 2 || sum.CellsComputed != 2 {
		t.Errorf("Add accumulated wrong: %+v", sum)
	}
}

// TestRecorderNilSafe pins the disabled-path contract: every Recorder
// method must be a no-op on a nil receiver.
func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Reset()
	r.Begin(PhaseRun)
	r.End(PhaseRun)
	r.Stamp(PhaseWait, time.Now(), time.Now())
	if _, _, ok := r.Span(PhaseRun); ok {
		t.Error("nil recorder reported a span")
	}
	if r.Dur(PhaseRun) != 0 {
		t.Error("nil recorder reported a duration")
	}
}

func TestRecorderSpans(t *testing.T) {
	r := &Recorder{}
	if _, _, ok := r.Span(PhaseBuild); ok {
		t.Error("unstamped phase reported a span")
	}
	t0 := time.Now()
	r.Stamp(PhaseBuild, t0, t0.Add(5*time.Millisecond))
	if d := r.Dur(PhaseBuild); d != 5*time.Millisecond {
		t.Errorf("Dur = %v, want 5ms", d)
	}
	r.Begin(PhaseRun)
	r.End(PhaseRun)
	if _, _, ok := r.Span(PhaseRun); !ok {
		t.Error("Begin/End did not complete the span")
	}
	// End before Begin (clock skew / misuse) is an incomplete span, not
	// a negative duration.
	r.Stamp(PhaseFold, t0.Add(time.Second), t0)
	if d := r.Dur(PhaseFold); d != 0 {
		t.Errorf("inverted span Dur = %v, want 0", d)
	}
	r.Counters.Ticks = 7
	r.Reset()
	if r.Counters.Ticks != 0 || r.Dur(PhaseBuild) != 0 {
		t.Error("Reset left state behind")
	}
}

// makeCell builds a synthetic cell [startMs, endMs] after the trace
// anchor with a plausible phase layout and the given counters.
func makeCell(tr *Trace, label string, startMs, endMs float64, c Counters) Cell {
	anchor := tr.Start()
	at := func(ms float64) time.Time { return anchor.Add(time.Duration(ms * float64(time.Millisecond))) }
	rec := &Recorder{Counters: c}
	start, end := at(startMs), at(endMs)
	mid := startMs + (endMs-startMs)/2
	rec.Stamp(PhaseWait, anchor, start)
	rec.Stamp(PhaseLookup, start, at(startMs+0.1))
	rec.Stamp(PhaseBuild, at(startMs+0.1), at(startMs+0.3))
	rec.Stamp(PhaseWarmup, at(startMs+0.3), at(mid))
	rec.Stamp(PhaseRun, at(mid), at(endMs-0.1))
	rec.Stamp(PhaseFold, at(endMs-0.1), end)
	return CellFromRecorder(label, strings.Repeat("ab", 32), "computed", rec, start, end)
}

func TestTraceRoundtrip(t *testing.T) {
	tr := NewTrace()
	// A and B overlap (two lanes); C starts after A ends (reuses lane 0).
	a := makeCell(tr, "cell A", 10, 30, Counters{EngineCounters: EngineCounters{Ticks: 100, SkippedCycles: 40}})
	b := makeCell(tr, "cell B", 20, 40, Counters{EngineCounters: EngineCounters{Ticks: 200}})
	cc := makeCell(tr, "cell C", 35, 50, Counters{ControllerCounters: ControllerCounters{ScanPasses: 7}})
	cc.Outcome = "served"
	cc.Err = "boom"
	tr.Add(a)
	tr.Add(b)
	tr.Add(cc)

	if tot := tr.Totals(); tot.Ticks != 300 || tot.ScanPasses != 7 {
		t.Errorf("Totals = %+v", tot)
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("emitted trace does not validate: %v", err)
	}

	sums := f.CellSummaries()
	if len(sums) != 3 {
		t.Fatalf("got %d cell summaries, want 3", len(sums))
	}
	// Timeline order.
	if sums[0].Label != "cell A" || sums[1].Label != "cell B" || sums[2].Label != "cell C" {
		t.Fatalf("order: %q %q %q", sums[0].Label, sums[1].Label, sums[2].Label)
	}
	// Lane packing: A and B overlap, C fits back on A's lane.
	if sums[0].Tid == sums[1].Tid {
		t.Error("overlapping cells share a lane")
	}
	if sums[2].Tid != sums[0].Tid {
		t.Errorf("cell C on lane %d, want reuse of lane %d", sums[2].Tid, sums[0].Tid)
	}
	// Counters and identity survive the roundtrip.
	if sums[0].Counter["sim_ticks"] != 100 || sums[0].Counter["skipped_cycles"] != 40 {
		t.Errorf("cell A counters = %v", sums[0].Counter)
	}
	if sums[2].Counter["scan_passes"] != 7 || sums[2].Outcome != "served" || sums[2].Err != "boom" {
		t.Errorf("cell C = %+v", sums[2])
	}
	if sums[0].Key != strings.Repeat("ab", 32) {
		t.Errorf("cell A key = %q", sums[0].Key)
	}
	// Wait is the anchor-to-start gap (10ms), reported as an arg.
	if math.Abs(sums[0].WaitUs-10_000) > 100 {
		t.Errorf("cell A wait = %.0fµs, want ~10000", sums[0].WaitUs)
	}
	// Phases attribute to their cell: A's run phase is ~9.9ms.
	if run := sums[0].Phases["run"]; math.Abs(run-9_900) > 100 {
		t.Errorf("cell A run phase = %.0fµs, want ~9900", run)
	}
	if lookup := sums[1].Phases["lookup"]; math.Abs(lookup-100) > 20 {
		t.Errorf("cell B lookup phase = %.0fµs, want ~100", lookup)
	}
}

func TestTraceRetentionLimit(t *testing.T) {
	tr := NewTraceLimit(2)
	for i := 0; i < 5; i++ {
		tr.Add(makeCell(tr, "cell", float64(10*i), float64(10*i+5),
			Counters{EngineCounters: EngineCounters{Ticks: 1}}))
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Errorf("Len = %d Dropped = %d, want 2/3", tr.Len(), tr.Dropped())
	}
	// Counters stay exact past the span-retention bound.
	if tot := tr.Totals(); tot.Ticks != 5 {
		t.Errorf("Totals.Ticks = %d, want 5", tot.Ticks)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(f.CellSummaries()); got != 2 {
		t.Errorf("summaries = %d, want 2", got)
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cell := func(name string, tid int, ts, dur float64) Event {
		return Event{Name: name, Cat: "cell", Ph: "X", Pid: 1, Tid: tid, Ts: ts, Dur: dur}
	}
	// Partial overlap on one lane: invalid.
	bad := &File{TraceEvents: []Event{cell("a", 0, 0, 10), cell("b", 0, 5, 10)}}
	if err := bad.Validate(); err == nil {
		t.Error("partial overlap validated")
	}
	// Same intervals on different lanes: fine.
	ok := &File{TraceEvents: []Event{cell("a", 0, 0, 10), cell("b", 1, 5, 10)}}
	if err := ok.Validate(); err != nil {
		t.Errorf("cross-lane overlap rejected: %v", err)
	}
	// Nested: fine.
	nested := &File{TraceEvents: []Event{cell("a", 0, 0, 10), {Name: "run", Cat: "phase", Ph: "X", Tid: 0, Ts: 2, Dur: 3}}}
	if err := nested.Validate(); err != nil {
		t.Errorf("nested span rejected: %v", err)
	}
	// Phase outside any cell: invalid.
	orphan := &File{TraceEvents: []Event{{Name: "run", Cat: "phase", Ph: "X", Tid: 3, Ts: 2, Dur: 3}}}
	if err := orphan.Validate(); err == nil {
		t.Error("orphan phase span validated")
	}
	// Negative duration: invalid.
	neg := &File{TraceEvents: []Event{cell("a", 0, 0, -1)}}
	if err := neg.Validate(); err == nil {
		t.Error("negative duration validated")
	}
}

func TestProfilingLabelsGate(t *testing.T) {
	if ProfilingLabelsEnabled() {
		t.Fatal("labels must start disabled")
	}
	EnableProfilingLabels()
	defer profilingLabels.Store(false)
	if !ProfilingLabelsEnabled() {
		t.Fatal("EnableProfilingLabels did not stick")
	}
}
