// Package obs is svärd's flight-recorder telemetry layer: allocation-free
// hot-path counters, per-cell phase spans, and Chrome trace_event output
// (trace.go). It depends only on the standard library, and nothing in it
// runs unless a caller attaches a Recorder or a Trace — the disabled path
// is a nil check.
//
// The layer has three pieces:
//
//   - Counters: plain uint64 fields incremented by the engine loops and
//     the memory controller. The hot-path counters (ControllerCounters,
//     EngineCounters) live inside the components themselves — embedded by
//     value, zeroed by each component's Reset — so recording adds no
//     branches, no interface calls, and no allocations to the hot loops.
//   - Recorder: a per-run arena the sim folds counters and phase
//     timestamps into. All methods are nil-receiver safe, so callers
//     stamp phases unconditionally.
//   - Trace (trace.go): a campaign-level collector of per-cell Recorder
//     snapshots, serialized as Chrome trace_event JSON.
package obs

import (
	"sync/atomic"
	"time"
)

// Phase indexes the per-cell span timeline: the lifecycle stations one
// sweep cell passes through, in order.
type Phase int

const (
	// PhaseWait is the queue wait: campaign start to execution start.
	// It is reported as a duration on the cell (args.wait_us), not as a
	// nested span — it happens before the cell's execution interval.
	PhaseWait Phase = iota
	// PhaseLookup is the result-cache lookup (hit: the whole cell).
	PhaseLookup
	// PhaseBuild is module calibration plus machine construction.
	PhaseBuild
	// PhaseWarmup is the drive loop until every core has entered its
	// measurement region.
	PhaseWarmup
	// PhaseRun is the measurement region to completion (or truncation).
	PhaseRun
	// PhaseFold is folding machine state into the Result.
	PhaseFold

	NumPhases int = iota
)

var phaseNames = [NumPhases]string{"wait", "lookup", "build", "warmup", "run", "fold"}

func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// EngineCounters are the driver-loop counters, embedded by value in the
// sim's per-run machine (freshly zeroed every run by construction).
type EngineCounters struct {
	Ticks         uint64 // cycles the driver loop actually ticked
	ActiveTicks   uint64 // ticked cycles where some component made progress (skip engine)
	SkipJumps     uint64 // idle gaps the event engine jumped over
	SkippedCycles uint64 // cycles elided by those jumps

	// NextEvent bound attribution: which component's bound set each
	// jump target (ties resolve tracker > controller > core, matching
	// the engine's scan order; horizon = quiescent to MaxCycles).
	BoundTracker    uint64
	BoundController uint64
	BoundCore       uint64
	BoundHorizon    uint64

	EpochAdvances uint64 // temporal epoch edges crossed by the live view
}

// Add accumulates o into c.
func (c *EngineCounters) Add(o EngineCounters) {
	c.Ticks += o.Ticks
	c.ActiveTicks += o.ActiveTicks
	c.SkipJumps += o.SkipJumps
	c.SkippedCycles += o.SkippedCycles
	c.BoundTracker += o.BoundTracker
	c.BoundController += o.BoundController
	c.BoundCore += o.BoundCore
	c.BoundHorizon += o.BoundHorizon
	c.EpochAdvances += o.EpochAdvances
}

// ControllerCounters are the memory-controller counters, embedded by
// value in memctrl.Controller and zeroed by its Reset exactly like its
// Stats — so pooled arena reuse starts every run from zero.
type ControllerCounters struct {
	ScanPasses  uint64 // FR-FCFS scheduler passes over a non-empty queue
	ScanEntries uint64 // queue entries examined across all passes

	RefreshStalls  uint64 // precharges forced to unblock a due refresh
	ThrottleStalls uint64 // issue slots lost to a defense throttle

	// Mitigation directives executed, by kind.
	DirRefreshVictim  uint64 // neighbor-refresh directives carried out
	DirRefreshDeduped uint64 // neighbor refreshes elided by the in-flight victim set
	DirSwapRows       uint64 // row swap/migration directives
	DirExtraMem       uint64 // extra memory traffic directives (tracker metadata)
}

// Add accumulates o into c.
func (c *ControllerCounters) Add(o ControllerCounters) {
	c.ScanPasses += o.ScanPasses
	c.ScanEntries += o.ScanEntries
	c.RefreshStalls += o.RefreshStalls
	c.ThrottleStalls += o.ThrottleStalls
	c.DirRefreshVictim += o.DirRefreshVictim
	c.DirRefreshDeduped += o.DirRefreshDeduped
	c.DirSwapRows += o.DirSwapRows
	c.DirExtraMem += o.DirExtraMem
}

// Counters is the full per-cell counter set: the hot-path engine and
// controller counters plus the campaign-level cache outcome. It is what
// a Recorder accumulates and a Trace totals.
type Counters struct {
	EngineCounters
	ControllerCounters

	// Cache outcome, attributed by the campaign engine: a cell either
	// computed (its simulation ran) or was served from the result cache
	// (memory, disk, or deduplicated onto a concurrent computation).
	CellsComputed uint64
	CellsServed   uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.EngineCounters.Add(o.EngineCounters)
	c.ControllerCounters.Add(o.ControllerCounters)
	c.CellsComputed += o.CellsComputed
	c.CellsServed += o.CellsServed
}

// CounterInfo names one counter for rendering: the canonical snake_case
// name used in trace JSON and /metrics, and a one-line description.
type CounterInfo struct {
	Name string
	Help string
	Get  func(*Counters) uint64
}

// Glossary lists every counter in canonical order. svard-trace renders
// it, /metrics derives per-job rollups from it, and EXPERIMENTS.md's
// counter glossary mirrors it.
func Glossary() []CounterInfo {
	return []CounterInfo{
		{"sim_ticks", "cycles the driver loop actually ticked", func(c *Counters) uint64 { return c.Ticks }},
		{"sim_active_ticks", "ticked cycles where some component made progress (skip engine)", func(c *Counters) uint64 { return c.ActiveTicks }},
		{"skip_jumps", "idle gaps the event engine jumped over", func(c *Counters) uint64 { return c.SkipJumps }},
		{"skipped_cycles", "cycles elided by NextEvent jumps", func(c *Counters) uint64 { return c.SkippedCycles }},
		{"bound_tracker", "jumps bounded by the security tracker's next epoch edge", func(c *Counters) uint64 { return c.BoundTracker }},
		{"bound_controller", "jumps bounded by a memory controller's next ready time", func(c *Counters) uint64 { return c.BoundController }},
		{"bound_core", "jumps bounded by a core's next ready time", func(c *Counters) uint64 { return c.BoundCore }},
		{"bound_horizon", "jumps truncated at the MaxCycles horizon", func(c *Counters) uint64 { return c.BoundHorizon }},
		{"epoch_advances", "temporal epoch edges crossed by the live threshold view", func(c *Counters) uint64 { return c.EpochAdvances }},
		{"scan_passes", "FR-FCFS scheduler passes over a non-empty queue", func(c *Counters) uint64 { return c.ScanPasses }},
		{"scan_entries", "queue entries examined across all scheduler passes", func(c *Counters) uint64 { return c.ScanEntries }},
		{"refresh_stalls", "precharges forced to unblock a due refresh", func(c *Counters) uint64 { return c.RefreshStalls }},
		{"throttle_stalls", "issue slots lost to a defense throttle", func(c *Counters) uint64 { return c.ThrottleStalls }},
		{"dir_refresh_victim", "neighbor-refresh directives carried out", func(c *Counters) uint64 { return c.DirRefreshVictim }},
		{"dir_refresh_deduped", "neighbor refreshes elided by the in-flight victim set", func(c *Counters) uint64 { return c.DirRefreshDeduped }},
		{"dir_swap_rows", "row swap/migration directives executed", func(c *Counters) uint64 { return c.DirSwapRows }},
		{"dir_extra_mem", "extra-memory-traffic directives executed", func(c *Counters) uint64 { return c.DirExtraMem }},
		{"cells_computed", "cells whose simulation actually ran", func(c *Counters) uint64 { return c.CellsComputed }},
		{"cells_served", "cells served from the result cache", func(c *Counters) uint64 { return c.CellsServed }},
	}
}

// Map renders the counters under their canonical names.
func (c *Counters) Map() map[string]uint64 {
	m := make(map[string]uint64, len(Glossary()))
	for _, info := range Glossary() {
		m[info.Name] = info.Get(c)
	}
	return m
}

// span is one phase's wall-clock interval.
type span struct {
	start time.Time
	end   time.Time
}

// Recorder is the per-run telemetry arena: the counter set plus one
// wall-clock span per phase. Every method is nil-receiver safe — the
// disabled path is exactly one nil check — and none of them allocates,
// so a Recorder can ride along the allocation-flat pooled sweep.
//
// A Recorder is not safe for concurrent use; attach one per running
// cell (the campaign engine does) or serialize access (the serial
// benchmark shares one).
type Recorder struct {
	Counters Counters
	phases   [NumPhases]span
}

// Reset zeroes the recorder for reuse.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	*r = Recorder{}
}

// Begin stamps the start of phase p at time.Now().
func (r *Recorder) Begin(p Phase) {
	if r == nil {
		return
	}
	r.phases[p].start = time.Now()
}

// End stamps the end of phase p at time.Now().
func (r *Recorder) End(p Phase) {
	if r == nil {
		return
	}
	r.phases[p].end = time.Now()
}

// Stamp records phase p's span explicitly.
func (r *Recorder) Stamp(p Phase, start, end time.Time) {
	if r == nil {
		return
	}
	r.phases[p] = span{start: start, end: end}
}

// Span returns phase p's interval; ok is false if the phase never
// completed (either stamp missing).
func (r *Recorder) Span(p Phase) (start, end time.Time, ok bool) {
	if r == nil {
		return time.Time{}, time.Time{}, false
	}
	s := r.phases[p]
	return s.start, s.end, !s.start.IsZero() && !s.end.IsZero() && !s.end.Before(s.start)
}

// Dur returns phase p's duration, 0 if it never completed.
func (r *Recorder) Dur(p Phase) time.Duration {
	start, end, ok := r.Span(p)
	if !ok {
		return 0
	}
	return end.Sub(start)
}

// profilingLabels gates the pprof cell labels the exec pool attaches
// around per-cell execution. Off by default: pprof.Do allocates per
// call, which would break the allocation-flat sweep budget, so only
// the profiling entry points (svard-perf -cpuprofile, svard-served
// -pprof) switch it on.
var profilingLabels atomic.Bool

// EnableProfilingLabels turns on per-cell pprof labels process-wide.
func EnableProfilingLabels() { profilingLabels.Store(true) }

// ProfilingLabelsEnabled reports whether per-cell pprof labels are on.
func ProfilingLabelsEnabled() bool { return profilingLabels.Load() }
