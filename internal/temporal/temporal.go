// Package temporal models per-row HCfirst as a stochastic process in
// time. The paper's defenses are all configured against a
// calibration-time vulnerability profile, but Olgun et al. ("Variable
// Read Disturbance", arXiv:2502.13075) show that a row's HCfirst is not
// a constant: it drifts with aging and dips transiently, so a defense
// that was safe when calibrated can silently lose margin by attack
// time.
//
// The process is deliberately simple and fully deterministic: in log
// space, a row's disturbance threshold performs a Gaussian random walk
// with per-epoch drift Mu and step deviation Sigma (so the per-epoch
// multiplicative factor is lognormal, consistent with the lognormal
// per-row HCfirst model in package disturb), plus memoryless transient
// dips that last exactly one epoch. Every random draw is a stateless
// coordinate hash (internal/rng) of (seed, bank, row, epoch), so any
// row's entire trajectory is a pure function of its coordinates:
// trajectories can be sampled lazily, in any order, from any worker,
// without materializing state for the whole device — and two runs with
// the same seed see the identical drifted truth.
//
// Calibration age is folded in closed form: the accumulated walk over
// AgeEpochs pre-run epochs is N(Mu*A, Sigma^2*A) in log space, which is
// exactly the distribution of summing A independent steps, so sampling
// it as one scaled normal keeps the law of the process while making a
// 10K-epoch-old profile as cheap as a fresh one.
package temporal

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"svard/internal/rng"
)

// Spec declares one temporal-variation process. The zero value is not a
// valid process (Validate rejects EpochCycles == 0); the absence of a
// process is represented by the absence of the Spec (sim.Config.Temporal
// is nil), which keeps every static configuration's cache key and
// campaign fingerprint untouched.
type Spec struct {
	// EpochCycles is the epoch length in CPU cycles: the granularity at
	// which the live per-row truth is resampled. Must be > 0.
	EpochCycles uint64 `json:"epoch_cycles"`

	// Drift is the per-epoch log-space drift mu: negative values weaken
	// rows over time (HCfirst decays), positive values strengthen them.
	Drift float64 `json:"drift,omitempty"`

	// Sigma is the per-epoch log-space step deviation (>= 0): each
	// epoch multiplies a row's HCfirst by an independent
	// Lognormal(Drift, Sigma^2) factor.
	Sigma float64 `json:"sigma,omitempty"`

	// DipP is the per-(row, epoch) probability of a transient dip
	// ([0, 1]): for that one epoch the row's HCfirst is additionally
	// multiplied by DipFactor, then recovers.
	DipP float64 `json:"dip_p,omitempty"`

	// DipFactor is the transient dip multiplier, in (0, 1]. Required
	// when DipP > 0.
	DipFactor float64 `json:"dip_factor,omitempty"`

	// AgeEpochs is the re-calibration interval: how many epochs of
	// drift elapsed between calibration and the start of the run. 0
	// means the defense was calibrated at run start.
	AgeEpochs uint64 `json:"age_epochs,omitempty"`
}

// driftBound caps |Drift| and Sigma: per-epoch log steps past this are
// physically meaningless (a single epoch changing HCfirst by more than
// e^8 ~ 3000x) and, compounded over many epochs, push exp() into
// overflow. Rejecting them at admission keeps every downstream float
// finite for any realistic epoch count.
const driftBound = 8

// Validate rejects a spec no simulation should ever see: zero epoch
// length, negative or non-finite sigma, dip probability outside [0, 1],
// and a dip without a factor. It is called at all three admission
// layers (sim.Config.Validate, campaign.Spec.Validate, the campaign
// service's submit path), so a malformed process is a descriptive error
// — HTTP 400 at the service — never a panic inside a worker.
func (s *Spec) Validate() error {
	if s.EpochCycles == 0 {
		return fmt.Errorf("temporal: epoch length must be > 0 cycles")
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"drift", s.Drift}, {"sigma", s.Sigma}, {"dip_p", s.DipP}, {"dip_factor", s.DipFactor}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("temporal: %s must be finite, got %v", f.name, f.v)
		}
	}
	if s.Sigma < 0 {
		return fmt.Errorf("temporal: sigma must be >= 0, got %v", s.Sigma)
	}
	if s.Sigma > driftBound {
		return fmt.Errorf("temporal: sigma %v implausibly large (max %d)", s.Sigma, driftBound)
	}
	if math.Abs(s.Drift) > driftBound {
		return fmt.Errorf("temporal: |drift| %v implausibly large (max %d)", s.Drift, driftBound)
	}
	if s.DipP < 0 || s.DipP > 1 {
		return fmt.Errorf("temporal: dip probability must be in [0, 1], got %v", s.DipP)
	}
	if s.DipP > 0 && (s.DipFactor <= 0 || s.DipFactor > 1) {
		return fmt.Errorf("temporal: dip factor must be in (0, 1] when dip_p > 0, got %v", s.DipFactor)
	}
	if s.DipP == 0 && s.DipFactor != 0 && (s.DipFactor <= 0 || s.DipFactor > 1) {
		return fmt.Errorf("temporal: dip factor must be in (0, 1], got %v", s.DipFactor)
	}
	return nil
}

// String renders the spec in ParseSpec's syntax (round-trips through
// ParseSpec for any valid spec).
func (s Spec) String() string {
	parts := []string{fmt.Sprintf("epoch=%d", s.EpochCycles)}
	if s.Drift != 0 {
		parts = append(parts, fmt.Sprintf("drift=%v", s.Drift))
	}
	if s.Sigma != 0 {
		parts = append(parts, fmt.Sprintf("sigma=%v", s.Sigma))
	}
	if s.DipP != 0 {
		parts = append(parts, fmt.Sprintf("dip=%v", s.DipP))
	}
	if s.DipFactor != 0 {
		parts = append(parts, fmt.Sprintf("dipfactor=%v", s.DipFactor))
	}
	if s.AgeEpochs != 0 {
		parts = append(parts, fmt.Sprintf("age=%d", s.AgeEpochs))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the comma-separated key=value syntax of the
// -temporal flag, e.g.
//
//	epoch=65536,drift=-0.05,sigma=0.1,dip=0.01,dipfactor=0.5,age=64
//
// Keys: epoch (cycles, required), drift, sigma, dip (probability),
// dipfactor (defaults to 0.5 when dip > 0 and unset), age (epochs).
// The returned spec is validated; malformed input is an error, never a
// panic (FuzzParseSpec enforces it).
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	if strings.TrimSpace(s) == "" {
		return Spec{}, fmt.Errorf("temporal: empty spec (need at least epoch=N)")
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return Spec{}, fmt.Errorf("temporal: empty entry in spec %q", s)
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("temporal: entry %q is not key=value", part)
		}
		k = strings.TrimSpace(k)
		v = strings.TrimSpace(v)
		if seen[k] {
			return Spec{}, fmt.Errorf("temporal: duplicate key %q", k)
		}
		seen[k] = true
		var err error
		switch k {
		case "epoch":
			spec.EpochCycles, err = strconv.ParseUint(v, 10, 64)
		case "drift":
			spec.Drift, err = strconv.ParseFloat(v, 64)
		case "sigma":
			spec.Sigma, err = strconv.ParseFloat(v, 64)
		case "dip":
			spec.DipP, err = strconv.ParseFloat(v, 64)
		case "dipfactor":
			spec.DipFactor, err = strconv.ParseFloat(v, 64)
		case "age":
			spec.AgeEpochs, err = strconv.ParseUint(v, 10, 64)
		default:
			keys := []string{"age", "dip", "dipfactor", "drift", "epoch", "sigma"}
			sort.Strings(keys)
			return Spec{}, fmt.Errorf("temporal: unknown key %q (have %s)", k, strings.Join(keys, ", "))
		}
		if err != nil {
			return Spec{}, fmt.Errorf("temporal: %s: %v", k, err)
		}
	}
	if spec.DipP > 0 && !seen["dipfactor"] {
		spec.DipFactor = 0.5
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Coordinate-space tags that keep the process's three draw families
// (pre-run age, in-run steps, transient dips) on independent hash
// streams, decorrelated from every other consumer of the run seed.
const (
	coordAge  = 0x7e4d0a11a6e0b001
	coordStep = 0x7e4d0a11a6e0b002
	coordDip  = 0x7e4d0a11a6e0b003
)

// Process is a spec bound to a run seed: the pure function from
// (bank, row, epoch) to the row's live HCfirst multiplier. The zero
// value is inert (Factor would walk zero epochs of a zero-drift spec);
// build one with NewProcess. Process is a small value type — copying it
// is free and it holds no per-row state, so it is trivially safe for
// concurrent use.
type Process struct {
	spec Spec
	seed uint64
}

// NewProcess binds spec to a run seed. The caller is expected to have
// validated the spec.
func NewProcess(spec Spec, seed uint64) Process {
	return Process{spec: spec, seed: seed}
}

// Spec returns the process's spec.
func (p Process) Spec() Spec { return p.spec }

// Factor returns the multiplier the process applies to (bank, row)'s
// calibration-time HCfirst at in-run epoch number `epoch` (0 = the
// epoch the run starts in). It is a pure function of
// (seed, bank, row, epoch):
//
//	log F = walk(AgeEpochs) + sum_{e=1..epoch} step_e + dip_e
//
// where walk(A) ~ N(Drift*A, Sigma^2*A) is the closed-form accumulated
// pre-run walk, each step_e ~ N(Drift, Sigma^2) is an independent
// coordinate-hashed draw, and dip_e multiplies by DipFactor with
// probability DipP for exactly that epoch. Cost is O(epoch) — callers
// that consult a row repeatedly within one epoch memoize (see
// internal/sim's live view).
func (p Process) Factor(bank, row int, epoch uint64) float64 {
	s := p.spec
	logf := 0.0
	if a := s.AgeEpochs; a > 0 {
		fa := float64(a)
		logf = s.Drift*fa + s.Sigma*math.Sqrt(fa)*rng.NormalAt(p.seed, coordAge, uint64(bank), uint64(row))
	}
	for e := uint64(1); e <= epoch; e++ {
		logf += s.Drift + s.Sigma*rng.NormalAt(p.seed, coordStep, uint64(bank), uint64(row), e)
	}
	f := math.Exp(logf)
	if s.DipP > 0 && rng.UniformAt(p.seed, coordDip, uint64(bank), uint64(row), s.AgeEpochs+epoch) < s.DipP {
		f *= s.DipFactor
	}
	return f
}
