package temporal

import (
	"math"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{EpochCycles: 65536, Drift: -0.05, Sigma: 0.1, DipP: 0.01, DipFactor: 0.5, AgeEpochs: 16}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		breakIt func(*Spec)
		wantErr string
	}{
		{"valid", func(s *Spec) {}, ""},
		{"minimal", func(s *Spec) { *s = Spec{EpochCycles: 1} }, ""},
		{"zero epoch length", func(s *Spec) { s.EpochCycles = 0 }, "epoch length"},
		{"negative sigma", func(s *Spec) { s.Sigma = -0.1 }, "sigma"},
		{"huge sigma", func(s *Spec) { s.Sigma = 9 }, "sigma"},
		{"NaN sigma", func(s *Spec) { s.Sigma = math.NaN() }, "finite"},
		{"inf drift", func(s *Spec) { s.Drift = math.Inf(1) }, "finite"},
		{"huge drift", func(s *Spec) { s.Drift = -9 }, "drift"},
		{"dip probability negative", func(s *Spec) { s.DipP = -0.1 }, "dip probability"},
		{"dip probability above one", func(s *Spec) { s.DipP = 1.5 }, "dip probability"},
		{"NaN dip probability", func(s *Spec) { s.DipP = math.NaN() }, "finite"},
		{"dip without factor", func(s *Spec) { s.DipP = 0.5; s.DipFactor = 0 }, "dip factor"},
		{"dip factor above one", func(s *Spec) { s.DipFactor = 1.5 }, "dip factor"},
		{"negative dip factor without dip", func(s *Spec) { s.DipP = 0; s.DipFactor = -1 }, "dip factor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.breakIt(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, s := range []Spec{
		{EpochCycles: 1},
		{EpochCycles: 65536, Drift: -0.05},
		validSpec(),
	} {
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", s.String(), got, s)
		}
	}
}

func TestParseSpecDefaultsDipFactor(t *testing.T) {
	s, err := ParseSpec("epoch=100,dip=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if s.DipFactor != 0.5 {
		t.Errorf("DipFactor = %v, want the 0.5 default", s.DipFactor)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"   ",
		"epoch",                      // not key=value
		"epoch=",                     // empty value
		"epoch=x",                    // not a number
		"epoch=0",                    // fails validation
		"drift=0.1",                  // missing epoch
		"epoch=1,epoch=2",            // duplicate key
		"epoch=1,wat=3",              // unknown key
		"epoch=1,,drift=1",           // empty entry
		"epoch=1,sigma=-1",           // fails validation
		"epoch=1,dip=2",              // fails validation
		"epoch=1,drift=1e9",          // fails validation
		"epoch=99999999999999999999", // uint64 overflow
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want rejection", bad)
		}
	}
}

// TestFactorDeterministic: a row's trajectory is a pure function of
// (seed, bank, row, epoch) — two processes with the same binding agree
// exactly, in any evaluation order.
func TestFactorDeterministic(t *testing.T) {
	p1 := NewProcess(validSpec(), 42)
	p2 := NewProcess(validSpec(), 42)
	for epoch := uint64(8); epoch > 0; epoch-- { // reverse order on p2's first touch
		if got, want := p2.Factor(3, 1000, epoch), p1.Factor(3, 1000, epoch); got != want {
			t.Fatalf("Factor(3,1000,%d) = %v vs %v across processes", epoch, got, want)
		}
	}
}

// TestFactorVaries: with sigma > 0 distinct rows and seeds see distinct
// trajectories, and the factor actually moves over epochs.
func TestFactorVaries(t *testing.T) {
	spec := Spec{EpochCycles: 1024, Sigma: 0.2}
	p := NewProcess(spec, 1)
	if p.Factor(0, 0, 0) != 1 {
		t.Errorf("fresh row at epoch 0 with no age: factor = %v, want exactly 1", p.Factor(0, 0, 0))
	}
	if p.Factor(0, 0, 5) == p.Factor(0, 1, 5) {
		t.Error("adjacent rows share a trajectory")
	}
	if p.Factor(0, 0, 5) == NewProcess(spec, 2).Factor(0, 0, 5) {
		t.Error("different seeds share a trajectory")
	}
	if p.Factor(0, 0, 5) == 1 {
		t.Error("sigma > 0 left the factor at exactly 1 after 5 epochs")
	}
}

// TestFactorDrift: a strongly negative drift must decay thresholds on
// essentially every row; positive drift must grow them.
func TestFactorDrift(t *testing.T) {
	down := NewProcess(Spec{EpochCycles: 1, Drift: -0.5}, 7)
	up := NewProcess(Spec{EpochCycles: 1, Drift: 0.5}, 7)
	for row := 0; row < 32; row++ {
		if f := down.Factor(0, row, 10); f >= 1 {
			t.Fatalf("row %d: negative drift gave factor %v >= 1", row, f)
		}
		if f := up.Factor(0, row, 10); f <= 1 {
			t.Fatalf("row %d: positive drift gave factor %v <= 1", row, f)
		}
	}
}

// TestFactorAgeClosedForm: the pre-run age term uses the closed-form
// N(mu*A, sigma^2*A) law; with sigma = 0 it must be exactly exp(mu*A),
// matching what summing A deterministic steps would give.
func TestFactorAgeClosedForm(t *testing.T) {
	spec := Spec{EpochCycles: 1, Drift: -0.1, AgeEpochs: 30}
	p := NewProcess(spec, 3)
	want := math.Exp(-0.1 * 30)
	if got := p.Factor(0, 0, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("aged factor = %v, want exp(drift*age) = %v", got, want)
	}
}

// TestFactorDip: with DipP = 1 every epoch dips, so the factor must be
// exactly DipFactor times the undipped trajectory.
func TestFactorDip(t *testing.T) {
	base := Spec{EpochCycles: 1, Drift: -0.01}
	dipped := base
	dipped.DipP = 1
	dipped.DipFactor = 0.25
	pb := NewProcess(base, 5)
	pd := NewProcess(dipped, 5)
	for epoch := uint64(0); epoch < 4; epoch++ {
		want := pb.Factor(1, 2, epoch) * 0.25
		if got := pd.Factor(1, 2, epoch); math.Abs(got-want) > 1e-15 {
			t.Fatalf("epoch %d: dipped factor = %v, want %v", epoch, got, want)
		}
	}
}
