package temporal

import "testing"

// FuzzParseSpec: ParseSpec must reject malformed specs with an error —
// never a panic — and any spec it accepts must validate and round-trip
// through String.
func FuzzParseSpec(f *testing.F) {
	f.Add("epoch=65536,drift=-0.05,sigma=0.1,dip=0.01,dipfactor=0.5,age=64")
	f.Add("epoch=1")
	f.Add("")
	f.Add("epoch=0")
	f.Add("epoch=1,epoch=2")
	f.Add("epoch=1,sigma=NaN")
	f.Add("drift==,")
	f.Add("epoch=18446744073709551615,dip=1")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted a spec Validate rejects: %v", s, verr)
		}
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("accepted spec %+v does not re-parse from %q: %v", spec, spec.String(), err)
		}
		if back != spec {
			t.Fatalf("round trip changed the spec: %+v -> %q -> %+v", spec, spec.String(), back)
		}
	})
}
