// Package dram models a DDR4 DRAM module at the command level: geometry
// (bank groups, banks, subarrays, rows, cells), JEDEC-style timing
// parameters, in-DRAM logical-to-physical row address scrambling, and a
// device state machine that accepts ACT/PRE/RD/WR/REF commands with
// timing validation.
//
// The device itself is physics-free: it reports row activations (with
// their on-time) to a DisturbSink and asks the sink which cells of a row
// have flipped when the row is read. Package disturb provides the sink
// implementation; this split mirrors the real separation between a DRAM
// chip's addressing/state logic and its analog disturbance behaviour.
package dram

import (
	"fmt"
	"sort"

	"svard/internal/rng"
)

// Geometry describes the structure of one DRAM module (a rank of chips
// operating in lock-step, presented as a single wide device, which is how
// both DRAM Bender and the memory controller see it).
type Geometry struct {
	BankGroups    int // bank groups per rank (DDR4: 4)
	BanksPerGroup int // banks per bank group (DDR4: 4)
	RowsPerBank   int // rows per bank (32K / 64K / 128K in the tested modules)
	CellsPerRow   int // cells (bits) per row across the rank (8 KiB row = 65536)

	// subarrayStarts[i] is the first physical row of subarray i; the
	// slice is ascending and starts at 0. Populated by BuildSubarrays.
	subarrayStarts []int
}

// Banks returns the total number of banks in the module.
func (g *Geometry) Banks() int { return g.BankGroups * g.BanksPerGroup }

// BankGroupOf returns the bank group of a flat bank index.
func (g *Geometry) BankGroupOf(bank int) int { return bank / g.BanksPerGroup }

// RowBytes returns the row size in bytes.
func (g *Geometry) RowBytes() int { return g.CellsPerRow / 8 }

// Validate reports whether the geometry is internally consistent.
func (g *Geometry) Validate() error {
	switch {
	case g.BankGroups <= 0 || g.BanksPerGroup <= 0:
		return fmt.Errorf("dram: non-positive bank organization %d x %d", g.BankGroups, g.BanksPerGroup)
	case g.RowsPerBank <= 0:
		return fmt.Errorf("dram: non-positive rows per bank %d", g.RowsPerBank)
	case g.CellsPerRow <= 0 || g.CellsPerRow%8 != 0:
		return fmt.Errorf("dram: cells per row %d must be a positive multiple of 8", g.CellsPerRow)
	case len(g.subarrayStarts) > 0 && g.subarrayStarts[0] != 0:
		return fmt.Errorf("dram: first subarray must start at row 0, got %d", g.subarrayStarts[0])
	}
	return nil
}

// BuildSubarrays partitions the bank's rows into consecutive subarrays
// whose sizes vary pseudo-randomly in [minRows, maxRows], matching the
// paper's reverse-engineered finding of differently sized subarrays (330
// to 1027 rows per subarray, 32 to 206 subarrays per bank, §5.4.1). The
// layout is a deterministic function of seed. The final subarray absorbs
// the remainder and may be smaller than minRows.
func (g *Geometry) BuildSubarrays(seed uint64, minRows, maxRows int) {
	if minRows <= 0 || maxRows < minRows {
		panic("dram: invalid subarray size bounds")
	}
	r := rng.At(seed, 0x5A) // 0x5A: sub-seed domain for subarray layout
	starts := []int{0}
	row := 0
	for {
		size := minRows + r.Intn(maxRows-minRows+1)
		row += size
		if row >= g.RowsPerBank {
			break
		}
		starts = append(starts, row)
	}
	g.subarrayStarts = starts
}

// SetSubarrayStarts installs an explicit subarray layout (ascending row
// indices beginning with 0). Used by tests and by profile replay.
func (g *Geometry) SetSubarrayStarts(starts []int) {
	g.subarrayStarts = append([]int(nil), starts...)
}

// Subarrays returns the number of subarrays per bank (0 when no layout
// has been built).
func (g *Geometry) Subarrays() int { return len(g.subarrayStarts) }

// SubarrayStarts returns a copy of the subarray start rows.
func (g *Geometry) SubarrayStarts() []int {
	return append([]int(nil), g.subarrayStarts...)
}

// SubarrayOf returns the index of the subarray containing physical row.
// With no layout built, the whole bank is subarray 0.
func (g *Geometry) SubarrayOf(physRow int) int {
	if len(g.subarrayStarts) == 0 {
		return 0
	}
	// Largest i with subarrayStarts[i] <= physRow.
	return sort.SearchInts(g.subarrayStarts, physRow+1) - 1
}

// SubarrayBounds returns the [start, end) physical row range of subarray i.
func (g *Geometry) SubarrayBounds(i int) (start, end int) {
	if len(g.subarrayStarts) == 0 {
		return 0, g.RowsPerBank
	}
	start = g.subarrayStarts[i]
	if i+1 < len(g.subarrayStarts) {
		end = g.subarrayStarts[i+1]
	} else {
		end = g.RowsPerBank
	}
	return start, end
}

// SameSubarray reports whether two physical rows share a subarray.
func (g *Geometry) SameSubarray(a, b int) bool {
	return g.SubarrayOf(a) == g.SubarrayOf(b)
}

// DistanceToSenseAmps returns the physical row's distance (in rows) to
// the nearest subarray boundary, i.e., to its local sense amplifiers.
// Edge rows have distance 0.
func (g *Geometry) DistanceToSenseAmps(physRow int) int {
	sa := g.SubarrayOf(physRow)
	start, end := g.SubarrayBounds(sa)
	d1 := physRow - start
	d2 := end - 1 - physRow
	if d1 < d2 {
		return d1
	}
	return d2
}

// RelativeLocation maps a physical row to [0, 1], the paper's x-axis for
// Figs. 4 and 6 (0 and 1 are the two edges of a DRAM bank).
func (g *Geometry) RelativeLocation(physRow int) float64 {
	if g.RowsPerBank <= 1 {
		return 0
	}
	return float64(physRow) / float64(g.RowsPerBank-1)
}
