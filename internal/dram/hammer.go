package dram

// HammerBatchSink is an optional fast path a DisturbSink can provide:
// the exact end state of hammer_doublesided (Alg. 1) applied pairs
// times — and of a single-sided hammer burst — without issuing every
// command. Package disturb implements it with loop-identical semantics;
// the equivalence is asserted by tests.
type HammerBatchSink interface {
	DoubleSidedBatch(bank, aggLo, aggHi, pairs int, onTimeNs float64)
	SingleSidedBatch(bank, agg, acts int, onTimeNs float64)
}

// HammerDoubleSided performs Alg. 1's hammer_doublesided: pairs
// iterations of {ACT aggHi, wait tAggOn, PRE, wait tRP, ACT aggLo, wait
// tAggOn, PRE, wait tRP}, with aggressor rows given as logical
// addresses. The bank must be precharged and ready. When the sink
// supports batching the device applies the disturbance in one step and
// advances its clock by the exact loop duration; otherwise it falls back
// to issuing every command.
//
// tAggOnNs below tRAS is a timing violation, as in the real testbench
// (36 ns is the minimum).
func (d *Device) HammerDoubleSided(bank, aggLoLogical, aggHiLogical, pairs int, tAggOnNs float64) error {
	if err := d.bankCheck(bank); err != nil {
		return err
	}
	if pairs <= 0 {
		return nil
	}
	if tAggOnNs < d.Tim.TRAS {
		return &TimingError{Cmd: "HAMMER", Bank: bank, Reason: "tAggOn below tRAS"}
	}
	for _, r := range [...]int{aggLoLogical, aggHiLogical} {
		if r < 0 || r >= d.Geom.RowsPerBank {
			return &TimingError{Cmd: "HAMMER", Bank: bank, Reason: "aggressor row out of range"}
		}
	}
	b := &d.banks[bank]
	if b.openRow >= 0 {
		return &TimingError{Cmd: "HAMMER", Bank: bank, Reason: "bank has an open row"}
	}
	if d.now < b.actReadyAt {
		return &TimingError{Cmd: "HAMMER", Bank: bank, Reason: "tRP not satisfied"}
	}

	batch, ok := d.sink.(HammerBatchSink)
	if !ok {
		return d.hammerLoop(bank, aggLoLogical, aggHiLogical, pairs, tAggOnNs)
	}
	loPhys := d.Map.LogicalToPhysical(aggLoLogical)
	hiPhys := d.Map.LogicalToPhysical(aggHiLogical)
	batch.DoubleSidedBatch(bank, loPhys, hiPhys, pairs, tAggOnNs+d.Tim.TCK)
	// Loop duration: each activation occupies one clock, stays open
	// tAggOn, precharges (one clock), then waits tRP.
	perAct := d.Tim.TCK + tAggOnNs + d.Tim.TCK + d.Tim.TRP
	d.now += float64(2*pairs) * perAct
	d.acts += uint64(2 * pairs)
	d.pres += uint64(2 * pairs)
	b.actReadyAt = d.now
	return nil
}

// HammerSingleSided activates one aggressor row acts times, holding it
// open tAggOn each time, per the single-sided tests of the subarray
// reverse engineering (§5.4.1, Key Insight 1). Preconditions as for
// HammerDoubleSided.
func (d *Device) HammerSingleSided(bank, aggLogical, acts int, tAggOnNs float64) error {
	if err := d.bankCheck(bank); err != nil {
		return err
	}
	if acts <= 0 {
		return nil
	}
	if tAggOnNs < d.Tim.TRAS {
		return &TimingError{Cmd: "HAMMER1S", Bank: bank, Reason: "tAggOn below tRAS"}
	}
	if aggLogical < 0 || aggLogical >= d.Geom.RowsPerBank {
		return &TimingError{Cmd: "HAMMER1S", Bank: bank, Reason: "aggressor row out of range"}
	}
	b := &d.banks[bank]
	if b.openRow >= 0 {
		return &TimingError{Cmd: "HAMMER1S", Bank: bank, Reason: "bank has an open row"}
	}
	if d.now < b.actReadyAt {
		return &TimingError{Cmd: "HAMMER1S", Bank: bank, Reason: "tRP not satisfied"}
	}
	batch, ok := d.sink.(HammerBatchSink)
	if !ok {
		for i := 0; i < acts; i++ {
			if err := d.Activate(bank, aggLogical); err != nil {
				return err
			}
			d.Wait(tAggOnNs)
			if err := d.Precharge(bank); err != nil {
				return err
			}
			d.Wait(d.Tim.TRP)
		}
		return nil
	}
	batch.SingleSidedBatch(bank, d.Map.LogicalToPhysical(aggLogical), acts, tAggOnNs+d.Tim.TCK)
	perAct := d.Tim.TCK + tAggOnNs + d.Tim.TCK + d.Tim.TRP
	d.now += float64(acts) * perAct
	d.acts += uint64(acts)
	d.pres += uint64(acts)
	b.actReadyAt = d.now
	return nil
}

func (d *Device) hammerLoop(bank, aggLo, aggHi, pairs int, tAggOnNs float64) error {
	for i := 0; i < pairs; i++ {
		for _, row := range [...]int{aggHi, aggLo} {
			if err := d.Activate(bank, row); err != nil {
				return err
			}
			d.Wait(tAggOnNs)
			if err := d.Precharge(bank); err != nil {
				return err
			}
			d.Wait(d.Tim.TRP)
		}
	}
	return nil
}
