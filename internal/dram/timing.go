package dram

import "fmt"

// Timing holds the DRAM timing parameters the device model enforces, in
// nanoseconds. The presets approximate JEDEC speed bins (DDR4 for the
// module frequencies of Table 5, HBM2 per JESD235); exact vendor values
// are proprietary, but every relationship the experiments depend on
// (activation rate, minimum on-time, refresh cadence, retention window)
// is respected.
type Timing struct {
	TCK   float64 // clock period
	TRCD  float64 // ACT to column command
	TRAS  float64 // ACT to PRE (minimum row on-time)
	TRP   float64 // PRE to ACT
	TCL   float64 // column read latency
	TCWL  float64 // column write latency
	TBL   float64 // burst transfer time (BL8)
	TCCDS float64 // column-to-column, different bank group
	TCCDL float64 // column-to-column, same bank group
	TRRDS float64 // ACT-to-ACT, different bank group
	TRRDL float64 // ACT-to-ACT, same bank group
	TFAW  float64 // rolling four-activate window
	TWR   float64 // write recovery
	TWTRS float64 // write-to-read turnaround, different bank group
	TWTRL float64 // write-to-read turnaround, same bank group
	TRTP  float64 // read to precharge
	TRFC  float64 // refresh command latency
	TREFI float64 // refresh command interval
	TREFW float64 // refresh window (retention budget per row)
}

// TRC returns the minimum ACT-to-ACT time on the same bank.
func (t Timing) TRC() float64 { return t.TRAS + t.TRP }

// Validate reports whether the timing set is self-consistent.
func (t Timing) Validate() error {
	switch {
	case t.TCK <= 0:
		return fmt.Errorf("dram: TCK must be positive, got %v", t.TCK)
	case t.TRAS < t.TRCD:
		return fmt.Errorf("dram: TRAS %v < TRCD %v", t.TRAS, t.TRCD)
	case t.TREFW < t.TREFI:
		return fmt.Errorf("dram: TREFW %v < TREFI %v", t.TREFW, t.TREFI)
	case t.TRP <= 0 || t.TRAS <= 0:
		return fmt.Errorf("dram: TRP/TRAS must be positive")
	}
	return nil
}

// DDR4Timing returns the timing preset for a DDR4 speed grade given in
// MT/s (3200, 2933, 2666, 2400). Unknown rates fall back to 3200.
// The 36 ns TRAS matches the paper's "minimum tRAS value" used as the
// baseline tAggOn in all RowHammer tests.
func DDR4Timing(mts int) Timing {
	tck := 2000.0 / float64(mts) // DDR: two transfers per clock
	t := Timing{
		TCK:   tck,
		TRCD:  13.75,
		TRAS:  36.0,
		TRP:   13.75,
		TCL:   13.75,
		TCWL:  10.0,
		TBL:   4 * tck, // BL8 = 4 clocks
		TCCDS: 4 * tck,
		TCCDL: 6 * tck,
		TRRDS: 4 * tck,
		TRRDL: 6 * tck,
		TFAW:  25.0,
		TWR:   15.0,
		TWTRS: 2.5,
		TWTRL: 7.5,
		TRTP:  7.5,
		TRFC:  350.0, // 8-16 Gb parts
		TREFI: 7800.0,
		TREFW: 64e6, // 64 ms at normal operating temperature
	}
	switch mts {
	case 2400:
		t.TRCD, t.TRP, t.TCL = 14.16, 14.16, 14.16
	case 2666:
		t.TRCD, t.TRP, t.TCL = 14.25, 14.25, 14.25
	case 2933:
		t.TRCD, t.TRP, t.TCL = 13.64, 13.64, 13.64
	}
	return t
}

// HBM2Timing returns the timing preset for an HBM2 pseudo channel at
// 2400 MT/s, following JESD235-style parameters as used by the HBM read
// disturbance characterization study (arXiv:2310.14665). HBM2 trades
// per-pin rate for width: the interface clock is slower than DDR4-3200,
// the four-activate window and same-bank-group turnarounds are tighter,
// and refresh is issued twice as often against a 32 ms retention window.
func HBM2Timing() Timing {
	tck := 2000.0 / 2400.0 // 0.833 ns, 1200 MHz interface clock
	return Timing{
		TCK:   tck,
		TRCD:  14.0,
		TRAS:  33.0,
		TRP:   14.0,
		TCL:   14.0,
		TCWL:  8.0,
		TBL:   2 * tck, // BL4 over the 128-bit pseudo-channel bus
		TCCDS: 2 * tck,
		TCCDL: 4 * tck,
		TRRDS: 4 * tck,
		TRRDL: 6 * tck,
		TFAW:  16.0,
		TWR:   15.0,
		TWTRS: 2.5,
		TWTRL: 6.5,
		TRTP:  7.5,
		TRFC:  260.0,
		TREFI: 3900.0,
		TREFW: 32e6, // 32 ms retention budget
	}
}
