package dram

import (
	"errors"
	"testing"
	"testing/quick"
)

func testGeometry() *Geometry {
	g := &Geometry{BankGroups: 2, BanksPerGroup: 2, RowsPerBank: 1024, CellsPerRow: 256}
	g.SetSubarrayStarts([]int{0, 256, 512, 768})
	return g
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeometry().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := &Geometry{BankGroups: 0, BanksPerGroup: 4, RowsPerBank: 10, CellsPerRow: 8}
	if bad.Validate() == nil {
		t.Error("zero bank groups accepted")
	}
	bad2 := &Geometry{BankGroups: 4, BanksPerGroup: 4, RowsPerBank: 10, CellsPerRow: 7}
	if bad2.Validate() == nil {
		t.Error("non-byte-multiple cells accepted")
	}
}

func TestSubarrayLookup(t *testing.T) {
	g := testGeometry()
	cases := []struct{ row, want int }{
		{0, 0}, {255, 0}, {256, 1}, {511, 1}, {512, 2}, {767, 2}, {768, 3}, {1023, 3},
	}
	for _, c := range cases {
		if got := g.SubarrayOf(c.row); got != c.want {
			t.Errorf("SubarrayOf(%d) = %d, want %d", c.row, got, c.want)
		}
	}
	if !g.SameSubarray(0, 255) || g.SameSubarray(255, 256) {
		t.Error("SameSubarray boundary logic wrong")
	}
}

func TestDistanceToSenseAmps(t *testing.T) {
	g := testGeometry()
	if got := g.DistanceToSenseAmps(0); got != 0 {
		t.Errorf("edge row distance = %d, want 0", got)
	}
	if got := g.DistanceToSenseAmps(255); got != 0 {
		t.Errorf("edge row distance = %d, want 0", got)
	}
	if got := g.DistanceToSenseAmps(128); got != 127 {
		t.Errorf("middle row distance = %d, want 127", got)
	}
}

func TestBuildSubarraysCoversBank(t *testing.T) {
	g := &Geometry{BankGroups: 4, BanksPerGroup: 4, RowsPerBank: 65536, CellsPerRow: 64}
	g.BuildSubarrays(7, 330, 1027)
	starts := g.SubarrayStarts()
	if len(starts) == 0 || starts[0] != 0 {
		t.Fatalf("bad starts: %v", starts[:min(4, len(starts))])
	}
	for i := 1; i < len(starts); i++ {
		size := starts[i] - starts[i-1]
		if size < 330 || size > 1027 {
			t.Fatalf("subarray %d size %d outside [330,1027]", i-1, size)
		}
		if starts[i] >= g.RowsPerBank {
			t.Fatalf("start %d beyond bank", starts[i])
		}
	}
	// Paper: 32 to 206 subarrays per bank for the real modules; 64K rows
	// with these bounds lands inside that range.
	if n := g.Subarrays(); n < 32 || n > 206 {
		t.Errorf("subarray count %d outside paper range [32,206]", n)
	}
	// Deterministic for the same seed.
	g2 := &Geometry{BankGroups: 4, BanksPerGroup: 4, RowsPerBank: 65536, CellsPerRow: 64}
	g2.BuildSubarrays(7, 330, 1027)
	s2 := g2.SubarrayStarts()
	if len(s2) != len(starts) {
		t.Fatal("subarray layout not deterministic")
	}
	for i := range s2 {
		if s2[i] != starts[i] {
			t.Fatal("subarray layout not deterministic")
		}
	}
}

func TestRelativeLocation(t *testing.T) {
	g := testGeometry()
	if got := g.RelativeLocation(0); got != 0 {
		t.Errorf("rel(0) = %v", got)
	}
	if got := g.RelativeLocation(1023); got != 1 {
		t.Errorf("rel(last) = %v", got)
	}
}

func TestPatternTable(t *testing.T) {
	// Table 2 byte values.
	checks := []struct {
		p                 Pattern
		aggressor, victim byte
	}{
		{RowStripe, 0xFF, 0x00},
		{RowStripeInv, 0x00, 0xFF},
		{ColStripe, 0xAA, 0xAA},
		{ColStripeInv, 0x55, 0x55},
		{Checkerboard, 0xAA, 0x55},
		{CheckerboardInv, 0x55, 0xAA},
	}
	for _, c := range checks {
		if c.p.AggressorByte() != c.aggressor || c.p.VictimByte() != c.victim {
			t.Errorf("%v bytes = %02X/%02X, want %02X/%02X",
				c.p, c.p.AggressorByte(), c.p.VictimByte(), c.aggressor, c.victim)
		}
		if c.p.Inverse().Inverse() != c.p {
			t.Errorf("%v double inverse != identity", c.p)
		}
	}
}

func TestTimingPresets(t *testing.T) {
	for _, mts := range []int{2400, 2666, 2933, 3200} {
		tim := DDR4Timing(mts)
		if err := tim.Validate(); err != nil {
			t.Errorf("DDR4-%d invalid: %v", mts, err)
		}
		if tim.TRAS != 36.0 {
			t.Errorf("DDR4-%d TRAS = %v, want paper's 36 ns", mts, tim.TRAS)
		}
		if tim.TRC() != tim.TRAS+tim.TRP {
			t.Errorf("TRC mismatch")
		}
	}
}

func TestScrambleMappingBijective(t *testing.T) {
	const rows = 4096
	m := NewScrambleMapping(99, rows, 6)
	seen := make([]bool, rows)
	for l := 0; l < rows; l++ {
		p := m.LogicalToPhysical(l)
		if p < 0 || p >= rows {
			t.Fatalf("physical %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("mapping not injective at %d", l)
		}
		seen[p] = true
		if back := m.PhysicalToLogical(p); back != l {
			t.Fatalf("inverse broken: %d -> %d -> %d", l, p, back)
		}
	}
}

func TestQuickScrambleRoundTrip(t *testing.T) {
	m := NewScrambleMapping(5, 1<<16, 8)
	f := func(l uint16) bool {
		return m.PhysicalToLogical(m.LogicalToPhysical(int(l))) == int(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScrambleZeroOpsIsIdentity(t *testing.T) {
	m := NewScrambleMapping(1, 256, 0)
	for i := 0; i < 256; i++ {
		if m.LogicalToPhysical(i) != i {
			t.Fatal("0-op scramble is not the identity")
		}
	}
}

// recordSink records disturbance events for inspection.
type recordSink struct {
	closed []struct {
		bank, row int
		onTime    float64
	}
	restored []struct{ bank, row int }
	written  []struct{ bank, row int }
}

func (s *recordSink) RowClosed(bank, row int, onTime float64) {
	s.closed = append(s.closed, struct {
		bank, row int
		onTime    float64
	}{bank, row, onTime})
}
func (s *recordSink) RowRestored(bank, row int) {
	s.restored = append(s.restored, struct{ bank, row int }{bank, row})
}
func (s *recordSink) RowWritten(bank, row int) {
	s.written = append(s.written, struct{ bank, row int }{bank, row})
}
func (s *recordSink) Flips(int, int, Pattern) []int   { return nil }
func (s *recordSink) FlipCount(int, int, Pattern) int { return 0 }

func newTestDevice(t *testing.T, sink DisturbSink) *Device {
	t.Helper()
	d, err := NewDevice(testGeometry(), DDR4Timing(3200), IdentityMapping{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceActPreCycle(t *testing.T) {
	sink := &recordSink{}
	d := newTestDevice(t, sink)
	if err := d.Activate(0, 100); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRAS)
	if err := d.Precharge(0); err != nil {
		t.Fatal(err)
	}
	if len(sink.closed) != 1 {
		t.Fatalf("RowClosed events = %d, want 1", len(sink.closed))
	}
	ev := sink.closed[0]
	if ev.bank != 0 || ev.row != 100 {
		t.Errorf("closed event = %+v", ev)
	}
	if ev.onTime < d.Tim.TRAS {
		t.Errorf("onTime %v < tRAS", ev.onTime)
	}
}

func TestDeviceTimingViolations(t *testing.T) {
	d := newTestDevice(t, nil)
	if err := d.Activate(0, 1); err != nil {
		t.Fatal(err)
	}
	// Immediate PRE violates tRAS.
	err := d.Precharge(0)
	var te *TimingError
	if !errors.As(err, &te) {
		t.Fatalf("expected TimingError for early PRE, got %v", err)
	}
	// Second ACT on an open bank is a protocol violation.
	d.Wait(d.Tim.TRAS)
	if err := d.Activate(0, 2); err == nil {
		t.Error("ACT on open bank accepted")
	}
	if err := d.Precharge(0); err != nil {
		t.Fatal(err)
	}
	// ACT before tRP is a violation.
	if err := d.Activate(0, 2); !errors.As(err, &te) {
		t.Errorf("expected TimingError for early ACT, got %v", err)
	}
	d.Wait(d.Tim.TRP)
	if err := d.Activate(0, 2); err != nil {
		t.Errorf("legal ACT rejected: %v", err)
	}
}

func TestDeviceRRDEnforced(t *testing.T) {
	d := newTestDevice(t, nil)
	if err := d.Activate(0, 1); err != nil {
		t.Fatal(err)
	}
	// Immediately activating another bank in the same group violates tRRD_L
	// (TCK advance from the first ACT is smaller than tRRD_L).
	if err := d.Activate(1, 1); err == nil {
		t.Error("back-to-back same-group ACT accepted")
	}
	d.Wait(d.Tim.TRRDL)
	if err := d.Activate(1, 1); err != nil {
		t.Errorf("legal second ACT rejected: %v", err)
	}
}

func TestDeviceBoundsChecks(t *testing.T) {
	d := newTestDevice(t, nil)
	if err := d.Activate(-1, 0); err == nil {
		t.Error("negative bank accepted")
	}
	if err := d.Activate(99, 0); err == nil {
		t.Error("out-of-range bank accepted")
	}
	if err := d.Activate(0, -1); err == nil {
		t.Error("negative row accepted")
	}
	if err := d.Activate(0, 1024); err == nil {
		t.Error("out-of-range row accepted")
	}
}

func TestDeviceWriteReadClean(t *testing.T) {
	d := newTestDevice(t, nil)
	if err := d.Activate(2, 7); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRCD)
	if err := d.WriteOpenRow(2, Checkerboard); err != nil {
		t.Fatal(err)
	}
	n, _, err := d.ReadOpenRowFlips(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("clean row reads %d flips", n)
	}
	p, written := d.PatternOf(2, 7)
	if !written || p != Checkerboard {
		t.Errorf("PatternOf = %v/%v", p, written)
	}
}

func TestDeviceUnwrittenRowReadsClean(t *testing.T) {
	d := newTestDevice(t, nil)
	if err := d.Activate(0, 3); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRCD)
	n, _, err := d.ReadOpenRowFlips(0, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("unwritten row reads %d flips", n)
	}
}

func TestDeviceActivationRestoresOwnRow(t *testing.T) {
	sink := &recordSink{}
	d := newTestDevice(t, sink)
	if err := d.Activate(1, 50); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range sink.restored {
		if ev.bank == 1 && ev.row == 50 {
			found = true
		}
	}
	if !found {
		t.Error("activation did not restore the activated row")
	}
}

func TestDeviceRefresh(t *testing.T) {
	sink := &recordSink{}
	d := newTestDevice(t, sink)
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	if len(sink.restored) == 0 {
		t.Fatal("refresh restored no rows")
	}
	// REF with an open row is illegal.
	d.Wait(d.Tim.TRP)
	if err := d.Activate(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Refresh(); err == nil {
		t.Error("REF with open row accepted")
	}
}

func TestRefreshAllCoversEveryRow(t *testing.T) {
	sink := &recordSink{}
	d := newTestDevice(t, sink)
	d.RefreshAll()
	want := d.Geom.RowsPerBank * d.Geom.Banks()
	if len(sink.restored) != want {
		t.Errorf("RefreshAll restored %d rows, want %d", len(sink.restored), want)
	}
}

func TestRowCloneSameSubarray(t *testing.T) {
	d := newTestDevice(t, nil)
	d.SetSeed(11)
	// Write a pattern into the source.
	if err := d.Activate(0, 10); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRCD)
	if err := d.WriteOpenRow(0, RowStripe); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRAS)
	if err := d.Precharge(0); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRP)

	// Find an intra-subarray pair that clones successfully (85% of pairs do).
	success := false
	for dst := 11; dst < 40 && !success; dst++ {
		res, err := d.TryRowClone(0, 10, dst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Copied {
			success = true
			p, written := d.PatternOf(0, dst)
			if !written || p != RowStripe {
				t.Errorf("clone did not copy data: %v/%v", p, written)
			}
		}
		d.Wait(d.Tim.TRP)
	}
	if !success {
		t.Error("no intra-subarray clone succeeded in 29 attempts (rate should be ~0.85)")
	}
}

func TestRowCloneAcrossSubarrayAlwaysFails(t *testing.T) {
	d := newTestDevice(t, nil)
	d.SetSeed(12)
	for dst := 256; dst < 280; dst++ { // rows 10 and 256+ are in different subarrays
		res, err := d.TryRowClone(0, 10, dst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Copied {
			t.Fatalf("cross-subarray clone to %d succeeded", dst)
		}
		d.Wait(d.Tim.TRP)
	}
}

func TestRowCloneFailureCorrupts(t *testing.T) {
	d := newTestDevice(t, nil)
	d.SetSeed(13)
	// Write the destination first, then corrupt it with a cross-subarray clone.
	if err := d.Activate(0, 300); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRCD)
	if err := d.WriteOpenRow(0, ColStripe); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRAS)
	if err := d.Precharge(0); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRP)
	if _, err := d.TryRowClone(0, 10, 300); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRP)
	if err := d.Activate(0, 300); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRCD)
	n, _, err := d.ReadOpenRowFlips(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != d.Geom.CellsPerRow/2 {
		t.Errorf("corrupted row reads %d flips, want %d", n, d.Geom.CellsPerRow/2)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
