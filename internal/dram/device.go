package dram

import (
	"fmt"
)

// DisturbSink receives the disturbance-relevant events of a device and
// answers bitflip queries. Package disturb provides the physical model;
// tests may substitute simpler fakes.
//
// All rows in this interface are physical.
type DisturbSink interface {
	// RowClosed reports that a row was activated and then precharged
	// after being open for onTimeNs nanoseconds. This is where both
	// RowHammer (the activation itself) and RowPress (the on-time)
	// disturbance accrue to the row's physical neighbours.
	RowClosed(bank, physRow int, onTimeNs float64)
	// RowRestored reports that a row's cells were recharged: the row was
	// activated (charge restoration) or refreshed. Restoration recharges
	// cells to the value they currently hold — cells that already
	// flipped stay flipped — so it resets the in-progress disturbance
	// accumulation without clearing committed flips.
	RowRestored(bank, physRow int)
	// RowWritten reports that new data was driven into the row (a write
	// or a successful RowClone), clearing all committed flips.
	RowWritten(bank, physRow int)
	// Flips returns the indices of the cells of the row that currently
	// read back flipped, given the stored data pattern.
	Flips(bank, physRow int, pattern Pattern) []int
	// FlipCount returns len(Flips) without materializing positions.
	FlipCount(bank, physRow int, pattern Pattern) int
}

// NopSink ignores all events and reports no flips; the device is then a
// pure timing/state model.
type NopSink struct{}

// RowClosed implements DisturbSink.
func (NopSink) RowClosed(int, int, float64) {}

// RowRestored implements DisturbSink.
func (NopSink) RowRestored(int, int) {}

// RowWritten implements DisturbSink.
func (NopSink) RowWritten(int, int) {}

// Flips implements DisturbSink.
func (NopSink) Flips(int, int, Pattern) []int { return nil }

// FlipCount implements DisturbSink.
func (NopSink) FlipCount(int, int, Pattern) int { return 0 }

// TimingError reports a command issued in violation of a timing
// parameter or protocol state.
type TimingError struct {
	Cmd    string
	Bank   int
	Reason string
}

func (e *TimingError) Error() string {
	return fmt.Sprintf("dram: %s on bank %d: %s", e.Cmd, e.Bank, e.Reason)
}

type bankState struct {
	openRow    int     // physical row, -1 when precharged
	actAt      float64 // time of last ACT
	actReadyAt float64 // earliest time for the next ACT
	colReadyAt float64 // earliest time for the next RD/WR
	preReadyAt float64 // earliest time for PRE (tRAS / tRTP / tWR)
}

type rowKey struct{ bank, row int }

// rowData records what was last written to a row. The device stores data
// as a repeated byte pattern; flips relative to it come from the sink.
type rowData struct {
	pattern   Pattern
	written   bool
	corrupted bool // clobbered by a failed RowClone; reads back garbage
}

// Device is a command-level DDR4 module: the unit DRAM Bender talks to.
// All exported row parameters are logical addresses; the device applies
// the module's internal scrambling before touching physical state.
//
// Time is explicit and driven by the caller: commands execute at the
// device's current time and advance it by one clock; Wait advances it
// further. The device enforces the timing parameters relevant to
// characterization (tRC, tRAS, tRP, tRCD, tFAW, tRRD) and returns
// *TimingError on violations rather than silently accepting them.
type Device struct {
	Geom    *Geometry
	Tim     Timing
	Map     RowMapping
	sink    DisturbSink
	now     float64
	banks   []bankState
	rows    map[rowKey]*rowData
	actHist []float64 // times of recent ACTs, for tFAW
	lastAct float64   // time of last ACT on any bank, for tRRD
	lastBG  int       // bank group of last ACT

	refreshOn   bool
	refRowNext  int // next row index to refresh (all banks refresh in lockstep)
	refsPerCmd  int
	acts, pres  uint64 // command counters
	refreshedAt float64
	seed        uint64 // device identity, for analog idiosyncrasies
}

// NewDevice builds a device over the given geometry, timing, and row
// mapping, attached to sink. A nil sink behaves like NopSink.
func NewDevice(geom *Geometry, tim Timing, mapping RowMapping, sink DisturbSink) (*Device, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	if err := tim.Validate(); err != nil {
		return nil, err
	}
	if mapping == nil {
		mapping = IdentityMapping{}
	}
	if sink == nil {
		sink = NopSink{}
	}
	d := &Device{
		Geom:  geom,
		Tim:   tim,
		Map:   mapping,
		sink:  sink,
		banks: make([]bankState, geom.Banks()),
		rows:  make(map[rowKey]*rowData),
	}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	// One REF refreshes rowsPerBank / (tREFW / tREFI) rows per bank so
	// that the full bank is covered once per refresh window.
	cmds := int(tim.TREFW / tim.TREFI)
	if cmds <= 0 {
		cmds = 1
	}
	d.refsPerCmd = (geom.RowsPerBank + cmds - 1) / cmds
	return d, nil
}

// Now returns the device's current time in nanoseconds.
func (d *Device) Now() float64 { return d.now }

// Wait advances the device clock by ns nanoseconds.
func (d *Device) Wait(ns float64) {
	if ns > 0 {
		d.now += ns
	}
}

// Activates returns the number of ACT commands issued so far.
func (d *Device) Activates() uint64 { return d.acts }

// SetRefreshEnabled turns autonomous refresh bookkeeping on or off.
// Characterization runs disable refresh (§4.1) to expose circuit-level
// behaviour; the performance simulator keeps it on.
func (d *Device) SetRefreshEnabled(on bool) { d.refreshOn = on }

func (d *Device) bankCheck(bank int) error {
	if bank < 0 || bank >= len(d.banks) {
		return fmt.Errorf("dram: bank %d out of range [0,%d)", bank, len(d.banks))
	}
	return nil
}

// Activate opens the logical row in bank. It enforces tRP (bank must be
// precharged and ready), tRRD between activations, and tFAW.
func (d *Device) Activate(bank, logicalRow int) error {
	if err := d.bankCheck(bank); err != nil {
		return err
	}
	if logicalRow < 0 || logicalRow >= d.Geom.RowsPerBank {
		return fmt.Errorf("dram: row %d out of range [0,%d)", logicalRow, d.Geom.RowsPerBank)
	}
	b := &d.banks[bank]
	if b.openRow >= 0 {
		return &TimingError{Cmd: "ACT", Bank: bank, Reason: "bank already has an open row"}
	}
	if d.now < b.actReadyAt {
		return &TimingError{Cmd: "ACT", Bank: bank,
			Reason: fmt.Sprintf("tRP/tRC not satisfied: now=%.2f ready=%.2f", d.now, b.actReadyAt)}
	}
	if d.acts > 0 {
		rrd := d.Tim.TRRDS
		if d.Geom.BankGroupOf(bank) == d.lastBG {
			rrd = d.Tim.TRRDL
		}
		if d.now < d.lastAct+rrd {
			return &TimingError{Cmd: "ACT", Bank: bank, Reason: "tRRD not satisfied"}
		}
	}
	if len(d.actHist) >= 4 && d.now < d.actHist[len(d.actHist)-4]+d.Tim.TFAW {
		return &TimingError{Cmd: "ACT", Bank: bank, Reason: "tFAW not satisfied"}
	}

	phys := d.Map.LogicalToPhysical(logicalRow)
	b.openRow = phys
	b.actAt = d.now
	b.colReadyAt = d.now + d.Tim.TRCD
	b.preReadyAt = d.now + d.Tim.TRAS
	d.lastAct = d.now
	d.lastBG = d.Geom.BankGroupOf(bank)
	d.actHist = append(d.actHist, d.now)
	if len(d.actHist) > 8 {
		d.actHist = d.actHist[len(d.actHist)-8:]
	}
	d.acts++
	// Activation restores the row's own cells (charge restoration).
	d.sink.RowRestored(bank, phys)
	d.now += d.Tim.TCK
	return nil
}

// Precharge closes the open row of bank, reporting its on-time to the
// disturbance sink. It enforces tRAS (and read/write recovery folded
// into preReadyAt).
func (d *Device) Precharge(bank int) error {
	if err := d.bankCheck(bank); err != nil {
		return err
	}
	b := &d.banks[bank]
	if b.openRow < 0 {
		return &TimingError{Cmd: "PRE", Bank: bank, Reason: "no open row"}
	}
	if d.now < b.preReadyAt {
		return &TimingError{Cmd: "PRE", Bank: bank,
			Reason: fmt.Sprintf("tRAS not satisfied: now=%.2f ready=%.2f", d.now, b.preReadyAt)}
	}
	onTime := d.now - b.actAt
	d.sink.RowClosed(bank, b.openRow, onTime)
	b.openRow = -1
	b.actReadyAt = d.now + d.Tim.TRP
	d.pres++
	d.now += d.Tim.TCK
	return nil
}

// OpenRow returns the physical open row of bank, or -1.
func (d *Device) OpenRow(bank int) int {
	return d.banks[bank].openRow
}

// WriteOpenRow writes the pattern's victim byte across the open row of
// bank (the testbench writes whole rows; per-column writes are not
// needed by any experiment). It enforces tRCD.
func (d *Device) WriteOpenRow(bank int, p Pattern) error {
	if err := d.bankCheck(bank); err != nil {
		return err
	}
	b := &d.banks[bank]
	if b.openRow < 0 {
		return &TimingError{Cmd: "WR", Bank: bank, Reason: "no open row"}
	}
	if d.now < b.colReadyAt {
		return &TimingError{Cmd: "WR", Bank: bank, Reason: "tRCD not satisfied"}
	}
	d.rows[rowKey{bank, b.openRow}] = &rowData{pattern: p, written: true}
	// Writing drives fresh data into every cell, clearing committed flips.
	d.sink.RowWritten(bank, b.openRow)
	// Full-row write: one burst per 8 bytes.
	bursts := float64(d.Geom.RowBytes() / 8)
	d.now += d.Tim.TCWL + bursts*d.Tim.TCCDL + d.Tim.TWR
	if t := d.now; t > b.preReadyAt {
		b.preReadyAt = t
	}
	return nil
}

// ReadOpenRowFlips reads back the open row of bank and returns the
// number of cells that differ from the last written pattern, plus the
// flipped cell indices if wantPositions is set. It enforces tRCD. A row
// that was never written reads back clean (0 flips) by definition.
func (d *Device) ReadOpenRowFlips(bank int, wantPositions bool) (int, []int, error) {
	if err := d.bankCheck(bank); err != nil {
		return 0, nil, err
	}
	b := &d.banks[bank]
	if b.openRow < 0 {
		return 0, nil, &TimingError{Cmd: "RD", Bank: bank, Reason: "no open row"}
	}
	if d.now < b.colReadyAt {
		return 0, nil, &TimingError{Cmd: "RD", Bank: bank, Reason: "tRCD not satisfied"}
	}
	bursts := float64(d.Geom.RowBytes() / 8)
	d.now += d.Tim.TCL + bursts*d.Tim.TCCDL
	if t := d.now + d.Tim.TRTP; t > b.preReadyAt {
		b.preReadyAt = t
	}
	rd, ok := d.rows[rowKey{bank, b.openRow}]
	if !ok || !rd.written {
		return 0, nil, nil
	}
	if rd.corrupted {
		// A failed RowClone leaves indeterminate data: report half the
		// cells as mismatching, which is what comparing against the
		// intended pattern would show on real hardware.
		return d.Geom.CellsPerRow / 2, nil, nil
	}
	if wantPositions {
		flips := d.sink.Flips(bank, b.openRow, rd.pattern)
		return len(flips), flips, nil
	}
	return d.sink.FlipCount(bank, b.openRow, rd.pattern), nil, nil
}

// PatternOf returns the pattern last written to the logical row and
// whether the row has been written at all.
func (d *Device) PatternOf(bank, logicalRow int) (Pattern, bool) {
	rd, ok := d.rows[rowKey{bank, d.Map.LogicalToPhysical(logicalRow)}]
	if !ok {
		return 0, false
	}
	return rd.pattern, rd.written
}

// Refresh executes one REF command: it refreshes the next refsPerCmd
// rows of every bank (lock-step, round-robin), restoring their cells.
// All banks must be precharged. The device clock advances by tRFC.
func (d *Device) Refresh() error {
	for bank := range d.banks {
		if d.banks[bank].openRow >= 0 {
			return &TimingError{Cmd: "REF", Bank: bank, Reason: "bank has an open row"}
		}
	}
	for i := 0; i < d.refsPerCmd; i++ {
		row := (d.refRowNext + i) % d.Geom.RowsPerBank
		for bank := range d.banks {
			d.sink.RowRestored(bank, row)
		}
	}
	d.refRowNext = (d.refRowNext + d.refsPerCmd) % d.Geom.RowsPerBank
	d.refreshedAt = d.now
	d.now += d.Tim.TRFC
	return nil
}

// RefreshAll restores every row of every bank (e.g., between test
// iterations) without advancing time realistically; it advances by one
// full refresh window worth of REF latencies.
func (d *Device) RefreshAll() {
	for row := 0; row < d.Geom.RowsPerBank; row++ {
		for bank := range d.banks {
			d.sink.RowRestored(bank, row)
		}
	}
	d.refRowNext = 0
	d.now += d.Tim.TRFC * d.Tim.TREFW / d.Tim.TREFI
}
