package dram

import "fmt"

// SystemGeometry describes the full memory system shape above a single
// module: how many independent channels (and, for HBM, pseudo channels
// per channel) the controller fans out over, and the per-channel bank
// organization. A channel here is the unit that owns its own command
// bus, FR-FCFS queues, and refresh engine; HBM2 pseudo channels are
// modeled the same way because they operate independently above the
// shared row-activation power budget.
type SystemGeometry struct {
	Channels       int // independent memory channels
	PseudoChannels int // pseudo channels per channel (HBM2: 2; DDR4: 1)
	Ranks          int // ranks per (pseudo) channel
	BankGroups     int // bank groups per rank
	BanksPerGroup  int // banks per bank group
	RowsPerBank    int // rows per bank
	RowBytes       int // row buffer size in bytes per (pseudo) channel
}

// TotalChannels returns the number of independently scheduled channels
// (channels x pseudo channels).
func (g SystemGeometry) TotalChannels() int { return g.Channels * g.PseudoChannels }

// BanksPerChannel returns the banks one (pseudo) channel controls.
func (g SystemGeometry) BanksPerChannel() int { return g.Ranks * g.BankGroups * g.BanksPerGroup }

// TotalBanks returns the banks across the whole system.
func (g SystemGeometry) TotalBanks() int { return g.TotalChannels() * g.BanksPerChannel() }

// Validate reports whether every dimension is positive and sane.
func (g SystemGeometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("dram: geometry needs a positive channel count, got %d", g.Channels)
	case g.PseudoChannels <= 0:
		return fmt.Errorf("dram: geometry needs a positive pseudo-channel count, got %d", g.PseudoChannels)
	case g.Ranks <= 0:
		return fmt.Errorf("dram: geometry needs a positive rank count, got %d", g.Ranks)
	case g.BankGroups <= 0 || g.BanksPerGroup <= 0:
		return fmt.Errorf("dram: non-positive bank organization %d x %d", g.BankGroups, g.BanksPerGroup)
	case g.RowsPerBank <= 0:
		return fmt.Errorf("dram: geometry needs positive rows per bank, got %d", g.RowsPerBank)
	case g.RowBytes <= 0 || g.RowBytes%64 != 0:
		return fmt.Errorf("dram: row bytes %d must be a positive multiple of 64", g.RowBytes)
	}
	return nil
}

// Backend names a complete memory-system preset: a system geometry plus
// the timing family it runs under. The simulator selects one by name
// through sim.Config; the empty name aliases the DDR4 Table 4 system so
// existing configs keep their exact meaning.
type Backend struct {
	Name string
	HBM  bool // HBM-family part: pseudo channels allowed, HBM2 timing
	Geom SystemGeometry
}

// Backend names.
const (
	BackendDDR4 = "ddr4-3200"
	BackendHBM2 = "hbm2"
)

// backends lists the presets in display order.
var backends = []Backend{
	{
		// The paper's Table 4 evaluation system: one channel, two ranks,
		// 4x4 banks of 128K rows with an 8 KiB row buffer.
		Name: BackendDDR4,
		Geom: SystemGeometry{
			Channels:       1,
			PseudoChannels: 1,
			Ranks:          2,
			BankGroups:     4,
			BanksPerGroup:  4,
			RowsPerBank:    128 * 1024,
			RowBytes:       8192,
		},
	},
	{
		// HBM2 per arXiv:2310.14665 / JESD235: each channel splits into
		// two independent pseudo channels of 16 banks (one rank, 4x4)
		// with 2 KiB rows. Two channels keep the modeled system within
		// the same order of capacity as the DDR4 preset.
		Name: BackendHBM2,
		HBM:  true,
		Geom: SystemGeometry{
			Channels:       2,
			PseudoChannels: 2,
			Ranks:          1,
			BankGroups:     4,
			BanksPerGroup:  4,
			RowsPerBank:    16 * 1024,
			RowBytes:       2048,
		},
	},
}

// BackendNames returns the preset names in display order.
func BackendNames() []string {
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name
	}
	return names
}

// BackendByName resolves a backend preset. The empty string aliases the
// DDR4 Table 4 preset (the pre-backend default).
func BackendByName(name string) (Backend, error) {
	if name == "" {
		name = BackendDDR4
	}
	for _, b := range backends {
		if b.Name == name {
			return b, nil
		}
	}
	return Backend{}, fmt.Errorf("dram: unknown backend %q (have %v)", name, BackendNames())
}

// Validate checks the backend's geometry and the HBM-only constraints.
func (b Backend) Validate() error {
	if err := b.Geom.Validate(); err != nil {
		return fmt.Errorf("backend %q: %w", b.Name, err)
	}
	if !b.HBM && b.Geom.PseudoChannels != 1 {
		return fmt.Errorf("backend %q: %d pseudo channels on a non-HBM backend", b.Name, b.Geom.PseudoChannels)
	}
	return nil
}

// Timing returns the backend's timing set. DDR4 modules carry their own
// speed bin (Table 5's per-module frequencies), so the module's MT/s
// selects the DDR4 preset; HBM2 timing is fixed by the part.
func (b Backend) Timing(moduleMTs int) Timing {
	if b.HBM {
		return HBM2Timing()
	}
	return DDR4Timing(moduleMTs)
}
