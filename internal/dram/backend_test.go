package dram

import (
	"strings"
	"testing"
)

// TestBackendPresetsValid: every named preset must pass its own
// validation — a preset that cannot validate would reject every config
// that selects it.
func TestBackendPresetsValid(t *testing.T) {
	for _, name := range BackendNames() {
		b, err := BackendByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := b.Timing(3200).Validate(); err != nil {
			t.Errorf("%s timing: %v", name, err)
		}
	}
}

// TestBackendEmptyAliasesDDR4 pins the compatibility contract: the empty
// backend name is the paper's Table 4 DDR4 system, so pre-backend
// configs keep their exact meaning.
func TestBackendEmptyAliasesDDR4(t *testing.T) {
	def, err := BackendByName("")
	if err != nil {
		t.Fatal(err)
	}
	ddr4, err := BackendByName(BackendDDR4)
	if err != nil {
		t.Fatal(err)
	}
	if def != ddr4 {
		t.Errorf("empty backend = %+v, want the %s preset %+v", def, BackendDDR4, ddr4)
	}
	g := ddr4.Geom
	if g.TotalChannels() != 1 || g.Ranks != 2 || g.BankGroups != 4 || g.BanksPerGroup != 4 || g.RowBytes != 8192 {
		t.Errorf("ddr4-3200 geometry drifted from Table 4: %+v", g)
	}
	if g.TotalBanks() != 32 {
		t.Errorf("ddr4-3200 has %d banks, Table 4 has 32", g.TotalBanks())
	}
}

// TestBackendHBM2Geometry pins the HBM2 preset's pseudo-channel shape.
func TestBackendHBM2Geometry(t *testing.T) {
	b, err := BackendByName(BackendHBM2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.HBM {
		t.Error("hbm2 preset not marked HBM")
	}
	g := b.Geom
	if g.PseudoChannels != 2 {
		t.Errorf("hbm2 pseudo channels = %d, want 2", g.PseudoChannels)
	}
	if g.TotalChannels() != g.Channels*2 {
		t.Errorf("TotalChannels = %d, want %d", g.TotalChannels(), g.Channels*2)
	}
	if g.Ranks != 1 {
		t.Errorf("hbm2 ranks = %d; HBM pseudo channels are single-rank", g.Ranks)
	}
	// HBM2 timing is fixed by the part, regardless of the module's MT/s.
	if b.Timing(3200) != b.Timing(2400) {
		t.Error("hbm2 timing varied with module MT/s")
	}
	if ddr4 := DDR4Timing(3200); b.Timing(3200) == ddr4 {
		t.Error("hbm2 timing identical to DDR4-3200")
	}
}

// TestBackendUnknown: unknown names fail with the available presets
// listed (the server surfaces this string as its 400 body).
func TestBackendUnknown(t *testing.T) {
	_, err := BackendByName("ddr5-6400")
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, name := range BackendNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list preset %q", err, name)
		}
	}
}

// TestSystemGeometryValidate covers the descriptive-error contract for
// every dimension, plus the pseudo-channel/HBM coupling on Backend.
func TestSystemGeometryValidate(t *testing.T) {
	valid := SystemGeometry{
		Channels: 1, PseudoChannels: 1, Ranks: 2,
		BankGroups: 4, BanksPerGroup: 4, RowsPerBank: 1024, RowBytes: 8192,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*SystemGeometry)
		want   string
	}{
		{"zero channels", func(g *SystemGeometry) { g.Channels = 0 }, "channel count"},
		{"negative channels", func(g *SystemGeometry) { g.Channels = -1 }, "channel count"},
		{"zero pseudo channels", func(g *SystemGeometry) { g.PseudoChannels = 0 }, "pseudo-channel count"},
		{"zero ranks", func(g *SystemGeometry) { g.Ranks = 0 }, "rank count"},
		{"zero bank groups", func(g *SystemGeometry) { g.BankGroups = 0 }, "bank organization"},
		{"negative banks per group", func(g *SystemGeometry) { g.BanksPerGroup = -4 }, "bank organization"},
		{"zero rows", func(g *SystemGeometry) { g.RowsPerBank = 0 }, "rows per bank"},
		{"unaligned row bytes", func(g *SystemGeometry) { g.RowBytes = 100 }, "row bytes"},
	}
	for _, tc := range cases {
		g := valid
		tc.mutate(&g)
		err := g.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// Pseudo channels > 1 are an HBM-only construct.
	nonHBM := Backend{Name: "bogus", HBM: false, Geom: valid}
	nonHBM.Geom.PseudoChannels = 2
	err := nonHBM.Validate()
	if err == nil {
		t.Error("2 pseudo channels on a non-HBM backend accepted")
	} else if !strings.Contains(err.Error(), "pseudo channels") {
		t.Errorf("non-HBM pseudo-channel error %q lacks context", err)
	}
}

// TestDDR4TimingWTR: the write-to-read turnarounds live in the timing
// preset (they were hard-coded at the mem layer before) and match the
// JEDEC DDR4 values.
func TestDDR4TimingWTR(t *testing.T) {
	for _, mts := range []int{2400, 2666, 2933, 3200} {
		tm := DDR4Timing(mts)
		if tm.TWTRS != 2.5 || tm.TWTRL != 7.5 {
			t.Errorf("DDR4-%d WTR = (%v, %v), want (2.5, 7.5)", mts, tm.TWTRS, tm.TWTRL)
		}
	}
	if tm := HBM2Timing(); tm.TWTRS <= 0 || tm.TWTRL <= 0 {
		t.Errorf("HBM2 WTR = (%v, %v), want positive", tm.TWTRS, tm.TWTRL)
	}
}
