package dram

import "svard/internal/rng"

// cloneSuccessRate is the probability that an intra-subarray RowClone
// succeeds for a given (src, dst) pair. RowClone is not an official DDR4
// operation; prior work shows it works in off-the-shelf chips for many
// but not all row pairs, which is why a failed clone does not prove the
// rows are in different subarrays (§5.4.1, Key Insight 2).
const cloneSuccessRate = 0.85

// RowCloneResult describes the outcome of a RowClone attempt.
type RowCloneResult struct {
	Copied bool // destination now holds the source data, bit exact
}

// TryRowClone attempts an intra-subarray RowClone from srcLogical to
// dstLogical in bank by activating the two rows in quick succession with
// violated timing. The bank must be precharged. Physics: the copy can
// only succeed when both rows share local bitlines (same subarray), and
// even then only for pairs where the analog margin works out, modelled
// as a deterministic per-pair coin with rate cloneSuccessRate. A failed
// attempt leaves the destination row corrupted.
func (d *Device) TryRowClone(bank, srcLogical, dstLogical int) (RowCloneResult, error) {
	if err := d.bankCheck(bank); err != nil {
		return RowCloneResult{}, err
	}
	b := &d.banks[bank]
	if b.openRow >= 0 {
		return RowCloneResult{}, &TimingError{Cmd: "ROWCLONE", Bank: bank, Reason: "bank has an open row"}
	}
	if d.now < b.actReadyAt {
		return RowCloneResult{}, &TimingError{Cmd: "ROWCLONE", Bank: bank, Reason: "tRP not satisfied"}
	}
	srcPhys := d.Map.LogicalToPhysical(srcLogical)
	dstPhys := d.Map.LogicalToPhysical(dstLogical)

	// The back-to-back ACT/PRE/ACT sequence takes roughly one tRC.
	d.now += d.Tim.TRC()
	b.actReadyAt = d.now + d.Tim.TRP

	sameSub := d.Geom.SameSubarray(srcPhys, dstPhys)
	ok := sameSub && srcPhys != dstPhys &&
		rng.UniformAt(d.cloneSeed(), uint64(bank), uint64(srcPhys), uint64(dstPhys)) < cloneSuccessRate

	dstKey := rowKey{bank, dstPhys}
	if ok {
		if src, written := d.rows[rowKey{bank, srcPhys}]; written {
			cp := *src
			d.rows[dstKey] = &cp
		} else {
			delete(d.rows, dstKey)
		}
		// A successful clone fully drives the destination cells.
		d.sink.RowWritten(bank, dstPhys)
		return RowCloneResult{Copied: true}, nil
	}
	// Failure corrupts the destination: the two wordlines fought over
	// the bitlines without a clean copy.
	if dst, written := d.rows[dstKey]; written {
		dst.corrupted = true
	} else {
		d.rows[dstKey] = &rowData{written: true, corrupted: true}
	}
	return RowCloneResult{Copied: false}, nil
}

func (d *Device) cloneSeed() uint64 {
	return rng.Hash64(d.seed, 0xC107E)
}

// SetSeed installs the device's identity seed, which parameterizes
// analog idiosyncrasies such as RowClone pair reliability.
func (d *Device) SetSeed(seed uint64) { d.seed = seed }
