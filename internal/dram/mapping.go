package dram

import "svard/internal/rng"

// RowMapping translates between logical row addresses (what the memory
// controller and DRAM Bender see on the interface) and physical row
// locations inside the bank. Manufacturers scramble this mapping for
// repair and cost reasons (§4.2), so both the characterization and the
// attacks must reverse-engineer physical adjacency.
type RowMapping interface {
	// LogicalToPhysical maps an interface row address to the physical row.
	LogicalToPhysical(logical int) int
	// PhysicalToLogical inverts LogicalToPhysical.
	PhysicalToLogical(physical int) int
}

// IdentityMapping maps logical addresses straight through.
type IdentityMapping struct{}

// LogicalToPhysical returns logical unchanged.
func (IdentityMapping) LogicalToPhysical(logical int) int { return logical }

// PhysicalToLogical returns physical unchanged.
func (IdentityMapping) PhysicalToLogical(physical int) int { return physical }

// bitOp is one invertible step of a scrambling pipeline.
type bitOp struct {
	kind int // 0: xor dst ^= bit(src); 1: swap bits a and b
	a, b int
}

// ScrambleMapping is a composition of invertible bit-level transforms
// (bit swaps and conditional XORs), the two families observed in real
// in-DRAM address remapping (e.g., the classic "bit 3 XOR into bit 2 of
// odd-numbered 8-row groups" scheme reported for DDR3/DDR4 parts).
type ScrambleMapping struct {
	bits int // row address width
	ops  []bitOp
}

// NewScrambleMapping derives a deterministic scrambling for a bank of
// rowsPerBank rows (which must be a power of two) from seed. nOps
// transforms are composed; nOps = 0 yields the identity.
func NewScrambleMapping(seed uint64, rowsPerBank, nOps int) *ScrambleMapping {
	bits := 0
	for 1<<bits < rowsPerBank {
		bits++
	}
	if 1<<bits != rowsPerBank {
		panic("dram: NewScrambleMapping requires power-of-two rowsPerBank")
	}
	m := &ScrambleMapping{bits: bits}
	r := rng.At(seed, 0x3A9) // sub-seed domain for row scrambling
	for i := 0; i < nOps; i++ {
		a := r.Intn(bits)
		b := r.Intn(bits)
		if a == b {
			b = (b + 1) % bits
		}
		if r.Bool(0.5) {
			m.ops = append(m.ops, bitOp{kind: 0, a: a, b: b}) // a ^= bit b
		} else {
			m.ops = append(m.ops, bitOp{kind: 1, a: a, b: b}) // swap a, b
		}
	}
	return m
}

// LogicalToPhysical applies the transform pipeline.
func (m *ScrambleMapping) LogicalToPhysical(logical int) int {
	v := logical
	for _, op := range m.ops {
		v = applyOp(v, op)
	}
	return v
}

// PhysicalToLogical applies the inverse pipeline (each op is an
// involution, so reversing the order inverts the composition).
func (m *ScrambleMapping) PhysicalToLogical(physical int) int {
	v := physical
	for i := len(m.ops) - 1; i >= 0; i-- {
		v = applyOp(v, m.ops[i])
	}
	return v
}

func applyOp(v int, op bitOp) int {
	switch op.kind {
	case 0: // v.bit[a] ^= v.bit[b]
		if v>>op.b&1 == 1 {
			v ^= 1 << op.a
		}
	case 1: // swap bits a and b
		ba := v >> op.a & 1
		bb := v >> op.b & 1
		if ba != bb {
			v ^= 1<<op.a | 1<<op.b
		}
	}
	return v
}
