package dram

import "fmt"

// Pattern is one of the six data patterns of Table 2. A pattern fixes
// the byte written to the victim row and to the aggressor rows; the
// paper initializes aggressors and victim with opposite data to
// exacerbate read disturbance.
type Pattern int

// The six data patterns of Table 2.
const (
	RowStripe Pattern = iota // aggressors 0xFF, victim 0x00
	RowStripeInv
	ColStripe
	ColStripeInv
	Checkerboard
	CheckerboardInv

	NumPatterns = 6
)

// AllPatterns lists the patterns in Table 2 order.
var AllPatterns = [NumPatterns]Pattern{
	RowStripe, RowStripeInv, ColStripe, ColStripeInv, Checkerboard, CheckerboardInv,
}

var patternNames = [NumPatterns]string{"RS", "RSI", "CS", "CSI", "CB", "CBI"}

var patternBytes = [NumPatterns]struct{ aggressor, victim byte }{
	{0xFF, 0x00}, // RS
	{0x00, 0xFF}, // RSI
	{0xAA, 0xAA}, // CS
	{0x55, 0x55}, // CSI
	{0xAA, 0x55}, // CB
	{0x55, 0xAA}, // CBI
}

// String returns the Table 2 abbreviation.
func (p Pattern) String() string {
	if p < 0 || int(p) >= NumPatterns {
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
	return patternNames[p]
}

// VictimByte returns the byte stored in every victim-row byte position.
func (p Pattern) VictimByte() byte { return patternBytes[p].victim }

// AggressorByte returns the byte stored in every aggressor-row byte
// position, the bitwise inverse of the victim byte for the stripe and
// checkerboard patterns of Table 2.
func (p Pattern) AggressorByte() byte { return patternBytes[p].aggressor }

// Inverse returns the pattern with aggressor/victim bytes inverted.
func (p Pattern) Inverse() Pattern {
	switch p {
	case RowStripe:
		return RowStripeInv
	case RowStripeInv:
		return RowStripe
	case ColStripe:
		return ColStripeInv
	case ColStripeInv:
		return ColStripe
	case Checkerboard:
		return CheckerboardInv
	default:
		return Checkerboard
	}
}
