// Package metrics computes the multiprogrammed-workload performance
// metrics of §7.1: system throughput as weighted speedup, job turnaround
// time as harmonic speedup, and fairness as maximum slowdown.
package metrics

// PerCore holds one core's performance in two runs of the same
// workload: the reference (baseline) and the evaluated configuration.
type PerCore struct {
	BaselineIPC float64
	IPC         float64
}

// Slowdown returns BaselineIPC / IPC (>= 1 when the configuration is
// slower than the baseline).
func (p PerCore) Slowdown() float64 {
	if p.IPC <= 0 {
		return 0
	}
	return p.BaselineIPC / p.IPC
}

// WeightedSpeedup returns the weighted speedup of the configuration,
// normalized to the baseline run of the same mix: mean over cores of
// IPC_i / IPC_baseline_i. A defense-free system scores 1.0.
func WeightedSpeedup(cores []PerCore) float64 {
	if len(cores) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cores {
		if c.BaselineIPC > 0 {
			sum += c.IPC / c.BaselineIPC
		}
	}
	return sum / float64(len(cores))
}

// HarmonicSpeedup returns the harmonic mean of the per-core normalized
// IPCs, the turnaround-oriented counterpart of WeightedSpeedup.
func HarmonicSpeedup(cores []PerCore) float64 {
	if len(cores) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cores {
		s := c.Slowdown()
		if s <= 0 {
			return 0
		}
		sum += s
	}
	return float64(len(cores)) / sum
}

// MaxSlowdown returns the largest per-core slowdown (the paper's
// unfairness metric; higher is worse).
func MaxSlowdown(cores []PerCore) float64 {
	max := 0.0
	for _, c := range cores {
		if s := c.Slowdown(); s > max {
			max = s
		}
	}
	return max
}

// OverheadFromSpeedup converts a normalized weighted speedup into the
// paper's "performance overhead" percentage: 1 - WS.
func OverheadFromSpeedup(ws float64) float64 { return 1 - ws }
