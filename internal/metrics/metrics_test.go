package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdenticalRunsScoreOne(t *testing.T) {
	cores := []PerCore{{1.5, 1.5}, {0.2, 0.2}, {0.9, 0.9}}
	if ws := WeightedSpeedup(cores); math.Abs(ws-1) > 1e-12 {
		t.Errorf("WS = %v, want 1", ws)
	}
	if hs := HarmonicSpeedup(cores); math.Abs(hs-1) > 1e-12 {
		t.Errorf("HS = %v, want 1", hs)
	}
	if ms := MaxSlowdown(cores); math.Abs(ms-1) > 1e-12 {
		t.Errorf("MS = %v, want 1", ms)
	}
}

func TestKnownSlowdown(t *testing.T) {
	// One core at half speed, one untouched.
	cores := []PerCore{{1.0, 0.5}, {1.0, 1.0}}
	if ws := WeightedSpeedup(cores); math.Abs(ws-0.75) > 1e-12 {
		t.Errorf("WS = %v, want 0.75", ws)
	}
	// Harmonic: 2 / (2 + 1) = 0.666...
	if hs := HarmonicSpeedup(cores); math.Abs(hs-2.0/3.0) > 1e-12 {
		t.Errorf("HS = %v, want 2/3", hs)
	}
	if ms := MaxSlowdown(cores); math.Abs(ms-2) > 1e-12 {
		t.Errorf("MS = %v, want 2", ms)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if WeightedSpeedup(nil) != 0 || HarmonicSpeedup(nil) != 0 || MaxSlowdown(nil) != 0 {
		t.Error("empty inputs must score 0")
	}
	if s := (PerCore{1, 0}).Slowdown(); s != 0 {
		t.Errorf("zero-IPC slowdown = %v", s)
	}
}

func TestOverheadFromSpeedup(t *testing.T) {
	if o := OverheadFromSpeedup(0.6); math.Abs(o-0.4) > 1e-12 {
		t.Errorf("overhead = %v", o)
	}
}

// Property: harmonic speedup never exceeds weighted speedup (AM-HM
// inequality on normalized IPCs), and both lie in (0, max ratio].
func TestQuickHarmonicLEWeighted(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		cores := make([]PerCore, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			b := float64(raw[i])/32 + 0.1
			v := float64(raw[i+1])/32 + 0.1
			cores = append(cores, PerCore{BaselineIPC: b, IPC: v})
		}
		ws, hs := WeightedSpeedup(cores), HarmonicSpeedup(cores)
		return hs <= ws+1e-9 && ws > 0 && hs > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
