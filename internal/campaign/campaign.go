// Package campaign is the resumable sweep engine over the
// content-addressed result cache (internal/cache): a campaign is a
// declarative description of which figures to regenerate and which
// defenses, thresholds, profiles, and workload mixes to sweep; the
// engine expands it to the flat simulation job list, routes every job
// through cache-then-sim.Run, journals completed jobs, and picks an
// interrupted campaign back up exactly where it stopped.
//
// Correctness never depends on the journal: the cache is keyed by the
// full simulation configuration, so a restarted campaign recomputes only
// the cells it has never finished, and the folded figure cells are
// bit-identical whether the cache was cold, warm, or mixed (asserted
// against internal/sim's golden fixtures by this package's tests).
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"svard/internal/cache"
	"svard/internal/obs"
	"svard/internal/population"
	"svard/internal/profile"
	"svard/internal/sim"
	"svard/internal/temporal"
	"svard/internal/trace"
)

// Spec declares one campaign. The zero value of every field selects the
// paper's defaults (both figures, all five defenses, the 4K..64
// threshold sweep, the three representative profiles, MixCount drawn
// mixes), so the smallest useful spec is just a Base config.
type Spec struct {
	Name    string   `json:"name,omitempty"`
	Figures []string `json:"figures,omitempty"` // subset of "fig12", "fig13"; empty = both

	// Base carries the sizing knobs (cores, instructions, module scale,
	// seed). The per-job fields the expansion owns — Mix, ModuleLabel,
	// Defense, Svard, NRH — are overwritten per cell.
	Base sim.Config `json:"base"`

	Mixes    [][]string `json:"mixes,omitempty"`     // explicit Fig. 12 mixes
	MixCount int        `json:"mix_count,omitempty"` // mixes drawn from the catalog if Mixes is empty (default 4)
	NRHs     []float64  `json:"nrhs,omitempty"`
	Defenses []string   `json:"defenses,omitempty"`
	Profiles []string   `json:"profiles,omitempty"`
	Backends []string   `json:"backends,omitempty"` // memory backends to sweep (empty = just Base.Backend)

	Benign []string `json:"benign,omitempty"` // Fig. 13 benign workloads
	NRH13  float64  `json:"nrh13,omitempty"`  // Fig. 13 threshold (default 64)

	// Population, when set, turns the Fig. 12 sweep into a Monte Carlo
	// confidence-band sweep over Size synthetic modules sampled from the
	// Table 5 fit by (Seed, index) — the campaign's outcome carries
	// Bands instead of Fig12 cells. The field is a pointer with
	// omitempty precisely so it is fingerprint-neutral when absent:
	// every pre-population spec keeps its exact fingerprint, journal,
	// and cache keys.
	Population *PopulationSpec `json:"population,omitempty"`

	// Temporal, when set, turns the Fig. 12 sweep into a margin-erosion
	// sweep (sim.RunErosion): the same (defense, nRH, Svärd) grid is
	// evaluated under the calibration-time truth and under a live truth
	// aged by each re-calibration interval, and the outcome carries
	// Erosion cells instead of Fig12 cells. Like Population, the field
	// is a pointer with omitempty so it is fingerprint-neutral when
	// absent.
	Temporal *TemporalSpec `json:"temporal,omitempty"`
}

// PopulationSpec declares a campaign's synthetic module population.
// Only result-shaping knobs live here (they feed the fingerprint);
// execution knobs like the module chunk size belong to the Engine.
type PopulationSpec struct {
	Seed uint64 `json:"seed"`
	Size int    `json:"size"`
}

// TemporalSpec declares a campaign's margin-erosion sweep: the temporal
// process (its AgeEpochs must be 0 — the intervals own the age axis)
// and the re-calibration intervals to evaluate.
type TemporalSpec struct {
	Process   temporal.Spec `json:"process"`
	Intervals []uint64      `json:"intervals,omitempty"`
}

// Figures a campaign can regenerate.
const (
	Fig12 = "fig12"
	Fig13 = "fig13"
)

// Normalized returns the spec with every default filled in — the
// figures, the drawn mixes, the mix count — so it fully pins the
// campaign (svard-sweep -print-spec emits it; saving it as a -spec file
// reproduces the identical sweep even if the drawing defaults ever
// change). Idempotent, and fingerprint-neutral: a spec and its
// normalized form scope the same journal.
func (s Spec) Normalized() Spec {
	if len(s.Figures) == 0 {
		s.Figures = []string{Fig12, Fig13}
	}
	if len(s.Mixes) == 0 {
		n := s.MixCount
		if n <= 0 {
			n = 4
		}
		s.Mixes = trace.Mixes(n, s.Base.Cores, s.Base.Seed)
		s.MixCount = n
	}
	if s.Temporal != nil && len(s.Temporal.Intervals) == 0 {
		t := *s.Temporal
		t.Intervals = sim.DefaultErosionIntervals()
		s.Temporal = &t
	}
	return s
}

// Validate rejects a spec whose expansion would fail mid-sweep: unknown
// figures, defenses, or workload names surface here, before any
// simulation runs. User-supplied mixes (svard-sweep spec files) are
// checked entry-by-entry through the same validator as the -mix flag.
func (s Spec) Validate() error {
	s = s.Normalized()
	for _, f := range s.Figures {
		if f != Fig12 && f != Fig13 {
			return fmt.Errorf("campaign: unknown figure %q (have %s, %s)", f, Fig12, Fig13)
		}
	}
	for _, d := range s.Defenses {
		ok := false
		for _, known := range sim.DefenseNames {
			if d == known {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("campaign: unknown defense %q (have %s)", d, strings.Join(sim.DefenseNames, ", "))
		}
	}
	for mi, mix := range s.Mixes {
		if len(mix) != s.Base.Cores {
			return fmt.Errorf("campaign: mix %d has %d workloads, need one per core (%d)", mi, len(mix), s.Base.Cores)
		}
		for _, w := range mix {
			if err := trace.CheckWorkload(w); err != nil {
				return fmt.Errorf("campaign: mix %d: %w", mi, err)
			}
		}
	}
	for _, p := range s.Profiles {
		if _, ok := profile.SpecByLabel(p); !ok {
			labels := make([]string, 0, len(profile.Table5()))
			for _, spec := range profile.Table5() {
				labels = append(labels, spec.Label)
			}
			return fmt.Errorf("campaign: unknown module profile %q (have %s)", p, strings.Join(labels, ", "))
		}
	}
	for _, w := range s.Benign {
		if err := trace.CheckWorkload(w); err != nil {
			return fmt.Errorf("campaign: benign workloads: %w", err)
		}
	}
	if err := s.Base.Validate(); err != nil {
		return fmt.Errorf("campaign: base config: %w", err)
	}
	for _, be := range s.Backends {
		cfg := s.Base
		cfg.Backend = be
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("campaign: backends: %w", err)
		}
	}
	if s.has(Fig13) {
		if _, err := sim.Fig13Jobs(s.fig13Options()); err != nil {
			return err
		}
	}
	if s.Population != nil {
		if s.Population.Size < 1 {
			return fmt.Errorf("campaign: population size %d, want >= 1", s.Population.Size)
		}
		if s.has(Fig13) {
			return fmt.Errorf("campaign: population campaigns sweep fig12 confidence bands only; drop fig13 (or evaluate fig13 over population labels directly via sim.Fig13Options)")
		}
		if len(s.Profiles) > 0 {
			return fmt.Errorf("campaign: population and profiles are mutually exclusive (the population IS the profile axis)")
		}
		if len(s.Backends) > 0 {
			return fmt.Errorf("campaign: population campaigns sweep one backend; set base.backend instead of backends")
		}
		if s.Temporal != nil {
			return fmt.Errorf("campaign: population and temporal are mutually exclusive")
		}
	}
	if s.Temporal != nil {
		if err := s.Temporal.Process.Validate(); err != nil {
			return fmt.Errorf("campaign: temporal: %w", err)
		}
		if s.has(Fig13) {
			return fmt.Errorf("campaign: temporal campaigns sweep fig12 margin erosion only; drop fig13")
		}
		if len(s.Profiles) > 1 {
			return fmt.Errorf("campaign: temporal campaigns erode one module profile; set base config's ModuleLabel (or a single profile) instead of %d profiles", len(s.Profiles))
		}
		if len(s.Backends) > 0 {
			return fmt.Errorf("campaign: temporal campaigns sweep one backend; set base.backend instead of backends")
		}
		if s.Base.Temporal != nil {
			return fmt.Errorf("campaign: temporal campaigns attach the process themselves; base.Temporal must be unset")
		}
		// The erosion expansion re-validates (AgeEpochs, duplicate
		// intervals) — surface those errors at admission too.
		if _, err := sim.ErosionJobs(s.erosionOptions()); err != nil {
			return err
		}
	}
	return nil
}

func (s Spec) has(figure string) bool {
	for _, f := range s.Figures {
		if f == figure {
			return true
		}
	}
	return false
}

// fig12Options expands the (normalized) spec for the Fig. 12 sweep.
func (s Spec) fig12Options() sim.Fig12Options {
	return sim.Fig12Options{
		Base:     s.Base,
		Mixes:    s.Mixes,
		NRHs:     s.NRHs,
		Defenses: s.Defenses,
		Profiles: s.Profiles,
		Backends: s.Backends,
	}
}

// populationOptions expands the (normalized) spec for the Monte Carlo
// band sweep. chunk is the engine's module-residency knob (0: default);
// it never reaches the spec, so it cannot shape the fingerprint.
func (s Spec) populationOptions(chunk int) sim.PopulationOptions {
	return sim.PopulationOptions{
		Base:       s.Base,
		Population: population.Ref{Seed: s.Population.Seed, Size: s.Population.Size},
		Mixes:      s.Mixes,
		NRHs:       s.NRHs,
		Defenses:   s.Defenses,
		Chunk:      chunk,
	}
}

// erosionOptions expands the (normalized) spec for the margin-erosion
// sweep. A single Profiles entry overrides the base module label; the
// multi-profile case is rejected by Validate (erosion drifts one
// module's truth).
func (s Spec) erosionOptions() sim.ErosionOptions {
	base := s.Base
	if len(s.Profiles) == 1 {
		base.ModuleLabel = s.Profiles[0]
	}
	return sim.ErosionOptions{
		Base:      base,
		Process:   s.Temporal.Process,
		Intervals: s.Temporal.Intervals,
		Mixes:     s.Mixes,
		NRHs:      s.NRHs,
		Defenses:  s.Defenses,
	}
}

// fig13Options expands the (normalized) spec for the Fig. 13 sweep.
func (s Spec) fig13Options() sim.Fig13Options {
	return sim.Fig13Options{
		Base:     s.Base,
		NRH:      s.NRH13,
		Benign:   s.Benign,
		Profiles: s.Profiles,
		Backends: s.Backends,
	}
}

// Jobs returns the campaign's full flat job list across its figures, the
// same expansion the engine executes. Callers use it to size a campaign
// (and the checkpoint journal) before running it.
func (s Spec) Jobs() ([]sim.Job, error) {
	s = s.Normalized()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var jobs []sim.Job
	if s.has(Fig12) {
		switch {
		case s.Population != nil:
			pj, err := sim.PopulationJobs(s.populationOptions(0))
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, pj...)
		case s.Temporal != nil:
			ej, err := sim.ErosionJobs(s.erosionOptions())
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, ej...)
		default:
			jobs = append(jobs, sim.Fig12Jobs(s.fig12Options())...)
		}
	}
	if s.has(Fig13) {
		j, err := sim.Fig13Jobs(s.fig13Options())
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j...)
	}
	return jobs, nil
}

// Fingerprint identifies the campaign for checkpointing: a hex SHA-256
// of the normalized spec's canonical JSON. Two invocations with the same
// knobs resume each other's journal; any changed knob is a different
// campaign (its jobs may still hit the shared result cache — content
// addressing is per cell, the fingerprint only scopes the journal).
func (s Spec) Fingerprint() string {
	b, err := json.Marshal(s.Normalized())
	if err != nil {
		// Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("campaign: fingerprint: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Outcome is a completed campaign: the folded figure cells plus the
// run's accounting.
type Outcome struct {
	Fig12 []sim.Fig12Cell
	Fig13 []sim.Fig13Cell

	// Bands carries the Monte Carlo confidence bands of a population
	// campaign (Spec.Population set), in place of Fig12 point cells.
	Bands []sim.BandCell `json:",omitempty"`

	// Erosion carries the margin-erosion cells of a temporal campaign
	// (Spec.Temporal set), in place of Fig12 point cells.
	Erosion []sim.ErosionCell `json:",omitempty"`

	Total   int // simulation jobs in the campaign
	Resumed int // jobs already journaled as complete when the run started

	// Computed counts the cells THIS campaign actually simulated: its
	// compute callback ran (exactly-once attribution — a cell another
	// concurrent campaign computed, or that any cache layer served, is
	// not counted here). Served is the rest: Total - Computed.
	Computed int
	Served   int

	// Stats is the shared store's counter snapshot when the run
	// finished. The store may be shared with concurrent campaigns (the
	// svard-served scheduler runs several engines over one store), so
	// these are global totals, not this campaign's share — Computed and
	// Served carry the per-campaign attribution.
	Stats cache.Stats
}

// Engine executes campaigns. Fields are read-only during Run.
type Engine struct {
	Store   *cache.Store // result cache (required)
	Workers int          // max concurrent simulations (<= 0: GOMAXPROCS)

	// Resume picks up the campaign's journal from a previous interrupted
	// run of the same spec instead of starting a fresh one. Results are
	// identical either way (the cache is consulted unconditionally);
	// Resume preserves the completed-job accounting across restarts.
	Resume bool

	// PopulationChunk bounds how many of a population campaign's
	// synthetic modules are resident at once (<= 0: the sim default).
	// Purely an execution/memory knob: bands are identical for any
	// value, and it participates in neither the fingerprint nor the
	// cache keys.
	PopulationChunk int

	// Sim is the base executor a cache miss falls back to (nil: sim.Run).
	// Tests inject failing or counting runners here.
	Sim sim.Runner

	// Trace, when set, turns on the flight recorder: every cell gets a
	// per-run obs.Recorder, its phase spans (queue wait, cache lookup,
	// build, warmup, run, fold) and counters are collected into Trace,
	// and the cache outcome (computed vs served) is attributed per cell.
	// nil costs nothing — the untraced runner is byte-for-byte the
	// pre-observability path. Results are bit-identical either way; the
	// recorder observes, it never steers.
	Trace *obs.Trace

	// SimRecorded, when set alongside Trace, is the recorded base
	// executor a traced cache miss falls back to — the scheduler injects
	// its worker-slot-gated recorded runner here. nil falls back to Sim
	// (phases still recorded around it, sim-internal counters absent) or,
	// when both are nil, to sim.PooledRunRecorded.
	SimRecorded RecordedRunner

	Progress func(string)

	// Observe, when set, is called once per completed cell (cache hit or
	// fresh computation alike) with the cell's config, from worker
	// goroutines. The campaign service streams per-cell progress from it.
	// It must not block for long: it runs on the sweep's critical path.
	Observe func(sim.Config)
}

// RecordedRunner executes one cell while folding its counters and phase
// stamps into rec (which may be nil: run unrecorded). sim.RunRecorded
// and sim.PooledRunRecorded satisfy it.
type RecordedRunner func(sim.Config, *obs.Recorder) (sim.Result, error)

// CellLabel renders a human-oriented label from a cell's config — used
// by the server's progress events and the flight-recorder trace. The
// mix is part of it: without it every mix of the same (defense, nRH,
// module, svard) cell would label identically. The cache key carries
// the exact identity.
func CellLabel(cfg sim.Config) string {
	svard := "nosvard"
	if cfg.Svard {
		svard = "svard"
	}
	return fmt.Sprintf("%s nRH=%v %s %s [%s]",
		cfg.Defense, cfg.NRH, cfg.ModuleLabel, svard, strings.Join(cfg.Mix, ","))
}

// Run executes the campaign, reusing every cached cell and journaling
// each completed job so an interrupted run can be resumed. On error
// (including an interruption injected through Sim), everything completed
// so far remains in the cache and the journal.
func (e *Engine) Run(spec Spec) (*Outcome, error) {
	return e.RunCtx(context.Background(), spec)
}

// RunCtx is Run with cancellation: once ctx is done, no new simulation
// starts, cells already running finish (and are cached and journaled),
// and the call returns ctx's cause within one cell's latency. The
// journal stays intact, so the cancelled campaign resumes exactly like
// an interrupted one — re-run with Resume (svard-sweep -resume) and
// only the never-computed cells simulate.
func (e *Engine) RunCtx(ctx context.Context, spec Spec) (*Outcome, error) {
	if e.Store == nil {
		return nil, fmt.Errorf("campaign: engine has no result store")
	}
	spec = spec.Normalized()
	jobs, err := spec.Jobs() // validates the spec as it expands
	if err != nil {
		return nil, err
	}

	j, err := openJournal(e.Store.Dir(), spec.Fingerprint(), len(jobs), e.Resume)
	if err != nil {
		return nil, err
	}
	defer j.close()

	out := &Outcome{Total: len(jobs), Resumed: j.resumed()}

	base := e.Sim
	if base == nil {
		base = sim.PooledRun // bit-identical to sim.Run, allocation-flat
	}
	// computed counts only the cells whose compute callback actually ran
	// for THIS campaign: a lookup that coalesces onto another campaign's
	// in-flight computation, or hits any cache layer, never invokes it.
	var computed atomic.Int64
	compute := func(cfg sim.Config) (sim.Result, error) {
		res, err := base(cfg)
		if err == nil {
			computed.Add(1)
		}
		return res, err
	}
	runner := func(cfg sim.Config) (sim.Result, error) {
		res, err := e.Store.GetOrCompute(cfg, compute)
		if err == nil {
			j.done(cache.Key(cfg))
			if e.Observe != nil {
				e.Observe(cfg)
			}
		}
		return res, err
	}
	if e.Trace != nil {
		runner = e.tracedRunner(j, &computed)
	}

	for _, figure := range spec.Figures {
		switch figure {
		case Fig12:
			if spec.Population != nil {
				opt := spec.populationOptions(e.PopulationChunk)
				opt.Workers, opt.Runner, opt.Progress = e.Workers, runner, e.Progress
				if out.Bands, err = sim.RunPopulationCtx(ctx, opt); err != nil {
					return nil, err
				}
				continue
			}
			if spec.Temporal != nil {
				opt := spec.erosionOptions()
				opt.Workers, opt.Runner, opt.Progress = e.Workers, runner, e.Progress
				if out.Erosion, err = sim.RunErosionCtx(ctx, opt); err != nil {
					return nil, err
				}
				continue
			}
			opt := spec.fig12Options()
			opt.Workers, opt.Runner, opt.Progress = e.Workers, runner, e.Progress
			if out.Fig12, err = sim.RunFig12Ctx(ctx, opt); err != nil {
				return nil, err
			}
		case Fig13:
			opt := spec.fig13Options()
			opt.Workers, opt.Runner, opt.Progress = e.Workers, runner, e.Progress
			if out.Fig13, err = sim.RunFig13Ctx(ctx, opt); err != nil {
				return nil, err
			}
		}
	}

	out.Computed = int(computed.Load())
	out.Served = out.Total - out.Computed
	out.Stats = e.Store.Stats()
	return out, nil
}

// tracedRunner is the flight-recorded variant of RunCtx's cell runner:
// identical cache/journal/Observe behavior, plus a per-cell Recorder
// whose phase spans and counters land in e.Trace. The wait phase runs
// from the trace anchor to the cell's execution start; the lookup phase
// ends either when the compute callback takes over (miss) or when
// GetOrCompute returns (hit/dedup — the lookup WAS the cell).
func (e *Engine) tracedRunner(j *journal, computed *atomic.Int64) sim.Runner {
	baseRec := e.SimRecorded
	if baseRec == nil {
		if e.Sim != nil {
			s := e.Sim
			baseRec = func(cfg sim.Config, _ *obs.Recorder) (sim.Result, error) { return s(cfg) }
		} else {
			baseRec = sim.PooledRunRecorded
		}
	}
	return func(cfg sim.Config) (sim.Result, error) {
		start := time.Now()
		rec := &obs.Recorder{}
		rec.Stamp(obs.PhaseWait, e.Trace.Start(), start)
		rec.Begin(obs.PhaseLookup)
		ran := false
		res, err := e.Store.GetOrCompute(cfg, func(c sim.Config) (sim.Result, error) {
			ran = true
			rec.End(obs.PhaseLookup)
			r, cerr := baseRec(c, rec)
			if cerr == nil {
				computed.Add(1)
			}
			return r, cerr
		})
		if !ran {
			rec.End(obs.PhaseLookup)
		}
		end := time.Now()
		outcome := "served"
		if ran {
			outcome = "computed"
			rec.Counters.CellsComputed = 1
		} else {
			rec.Counters.CellsServed = 1
		}
		key := cache.Key(cfg)
		if err == nil {
			j.done(key)
			if e.Observe != nil {
				e.Observe(cfg)
			}
		}
		cell := obs.CellFromRecorder(CellLabel(cfg), key, outcome, rec, start, end)
		if err != nil {
			cell.Err = err.Error()
		}
		e.Trace.Add(cell)
		return res, err
	}
}
