package campaign

import (
	"bytes"
	"reflect"
	"testing"

	"svard/internal/obs"
)

// TestCampaignTraceRidesAlong is the campaign-level flight-recorder
// contract: with Engine.Trace attached, the swept cells stay
// bit-identical to the golden fixture, every cell lands in the trace
// with the right cache outcome, and the emitted trace_event JSON
// parses and validates.
func TestCampaignTraceRidesAlong(t *testing.T) {
	spec, golden := goldenSpec(t)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	store := newStore(t, t.TempDir())

	cold := obs.NewTrace()
	eng := &Engine{Store: store, Workers: 4, Trace: cold}
	out, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Fig12, golden) {
		t.Fatal("traced cold campaign cells differ from golden fixture")
	}
	if cold.Len() != len(jobs) {
		t.Fatalf("trace retained %d cells, want %d", cold.Len(), len(jobs))
	}
	tot := cold.Totals()
	if tot.CellsComputed != uint64(len(jobs)) || tot.CellsServed != 0 {
		t.Errorf("cold totals: computed=%d served=%d, want %d/0", tot.CellsComputed, tot.CellsServed, len(jobs))
	}
	if tot.Ticks == 0 || tot.SkipJumps == 0 {
		t.Errorf("cold totals recorded no engine work: %+v", tot.EngineCounters)
	}
	for _, c := range cold.Cells() {
		if c.Outcome != "computed" || c.Err != "" {
			t.Fatalf("cold cell %q: outcome=%q err=%q", c.Label, c.Outcome, c.Err)
		}
		if c.Label == "" || len(c.Key) != 64 {
			t.Fatalf("cell identity incomplete: label=%q key=%q", c.Label, c.Key)
		}
		for _, p := range []obs.Phase{obs.PhaseWait, obs.PhaseLookup, obs.PhaseBuild, obs.PhaseRun} {
			if !c.Phases[p].Valid() {
				t.Fatalf("cell %q: phase %s incomplete", c.Label, p)
			}
		}
	}

	var buf bytes.Buffer
	if err := cold.Write(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := obs.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("campaign trace does not validate: %v", err)
	}
	if got := len(f.CellSummaries()); got != len(jobs) {
		t.Fatalf("trace JSON has %d cell summaries, want %d", got, len(jobs))
	}

	// Warm re-run: all cells served from cache, still bit-identical,
	// and the serve path stamps a lookup-only timeline.
	warm := obs.NewTrace()
	eng.Trace = warm
	out, err = eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Fig12, golden) {
		t.Fatal("traced warm campaign cells differ from golden fixture")
	}
	wtot := warm.Totals()
	if wtot.CellsServed != uint64(len(jobs)) || wtot.CellsComputed != 0 {
		t.Errorf("warm totals: computed=%d served=%d, want 0/%d", wtot.CellsComputed, wtot.CellsServed, len(jobs))
	}
	if wtot.Ticks != 0 {
		t.Errorf("served cells must not report sim ticks, got %d", wtot.Ticks)
	}
	for _, c := range warm.Cells() {
		if c.Outcome != "served" {
			t.Fatalf("warm cell %q: outcome=%q", c.Label, c.Outcome)
		}
		if !c.Phases[obs.PhaseLookup].Valid() {
			t.Fatalf("warm cell %q: lookup phase incomplete", c.Label)
		}
		if c.Phases[obs.PhaseRun].Valid() {
			t.Fatalf("warm cell %q: run phase stamped on a cache hit", c.Label)
		}
	}
}

// TestCellLabel pins the label format the trace and the service's
// progress events share.
func TestCellLabel(t *testing.T) {
	spec, _ := goldenSpec(t)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		l := CellLabel(j.Config)
		if l == "" || seen[l] {
			t.Fatalf("cell label %q empty or duplicated", l)
		}
		seen[l] = true
	}
}
