package campaign

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"svard/internal/cache"
	"svard/internal/sim"
	"svard/internal/temporal"
)

// fig12GoldenFile mirrors internal/sim's golden fixture layout: the
// exact options the fixture swept plus the recorded cells, so this
// package replays the identical sweep without depending on sim's test
// internals.
type fig12GoldenFile struct {
	Base     sim.Config
	Mixes    [][]string
	NRHs     []float64
	Defenses []string
	Profiles []string
	Cells    []sim.Fig12Cell
}

// goldenSpec loads internal/sim's Fig. 12 golden fixture and rebuilds
// the campaign spec that sweeps exactly those cells.
func goldenSpec(t *testing.T) (Spec, []sim.Fig12Cell) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "sim", "testdata", "fig12_golden.json"))
	if err != nil {
		t.Fatalf("%v (generate with: go test ./internal/sim/ -run Golden -update)", err)
	}
	var g fig12GoldenFile
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	return Spec{
		Figures:  []string{Fig12},
		Base:     g.Base,
		Mixes:    g.Mixes,
		NRHs:     g.NRHs,
		Defenses: g.Defenses,
		Profiles: g.Profiles,
	}, g.Cells
}

func newStore(t *testing.T, dir string) *cache.Store {
	t.Helper()
	s, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// countingSim wraps sim.Run, counting real simulations.
func countingSim(calls *atomic.Int64) sim.Runner {
	return func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return sim.Run(cfg)
	}
}

// failAfter runs real simulations until n have succeeded, then fails
// every later job — the model of a campaign killed mid-sweep.
func failAfter(n int64, calls *atomic.Int64) sim.Runner {
	return func(cfg sim.Config) (sim.Result, error) {
		if calls.Add(1) > n {
			return sim.Result{}, errors.New("interrupted")
		}
		return sim.Run(cfg)
	}
}

// TestCampaignColdThenWarmMatchesGolden: a cold campaign reproduces the
// golden cells exactly; a warm re-run over the same store recomputes
// nothing and reproduces them again (cold vs warm sweep equivalence).
func TestCampaignColdThenWarmMatchesGolden(t *testing.T) {
	spec, golden := goldenSpec(t)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	store := newStore(t, t.TempDir())

	var calls atomic.Int64
	eng := &Engine{Store: store, Workers: 4, Sim: countingSim(&calls)}
	cold, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Fig12, golden) {
		t.Fatalf("cold campaign cells differ from golden fixture:\ngot  %+v\nwant %+v", cold.Fig12, golden)
	}
	if cold.Total != len(jobs) || int(calls.Load()) != len(jobs) {
		t.Errorf("cold run: total=%d sims=%d, want %d", cold.Total, calls.Load(), len(jobs))
	}
	if cold.Computed != len(jobs) || cold.Served != 0 {
		t.Errorf("cold attribution: computed=%d served=%d, want %d/0", cold.Computed, cold.Served, len(jobs))
	}
	if cold.Stats.Misses != uint64(len(jobs)) || cold.Stats.Hits() != 0 {
		t.Errorf("cold stats = %v", cold.Stats)
	}

	warm, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Fig12, golden) {
		t.Fatal("warm campaign cells differ from golden fixture")
	}
	if int(calls.Load()) != len(jobs) {
		t.Errorf("warm run re-simulated: %d total sims, want %d", calls.Load(), len(jobs))
	}
	if warm.Computed != 0 || warm.Served != len(jobs) {
		t.Errorf("warm attribution: computed=%d served=%d, want 0/%d", warm.Computed, warm.Served, len(jobs))
	}
	// Stats is the shared store's global snapshot: after the warm run it
	// still reports the cold run's misses plus the warm run's hits.
	if warm.Stats.Misses != uint64(len(jobs)) || warm.Stats.Hits() != uint64(len(jobs)) {
		t.Errorf("warm stats = %v", warm.Stats)
	}
}

// TestCampaignInterruptedThenResumed is the acceptance criterion: a
// Fig. 12 sweep interrupted mid-run and restarted with resume completes
// from cached cells and produces cells bit-identical to a single cold
// serial run (the golden fixture, which -update records from a serial
// sweep).
func TestCampaignInterruptedThenResumed(t *testing.T) {
	spec, golden := goldenSpec(t)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const interruptAt = 5

	// First run: killed after 5 completed simulations.
	var calls1 atomic.Int64
	eng1 := &Engine{Store: newStore(t, dir), Workers: 2, Sim: failAfter(interruptAt, &calls1)}
	if _, err := eng1.Run(spec); err == nil {
		t.Fatal("interrupted campaign reported success")
	} else if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Restart in a fresh store (fresh process, in effect), resuming.
	var calls2 atomic.Int64
	eng2 := &Engine{Store: newStore(t, dir), Workers: 2, Resume: true, Sim: countingSim(&calls2)}
	out, err := eng2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Fig12, golden) {
		t.Fatalf("resumed campaign cells differ from the cold serial golden run:\ngot  %+v\nwant %+v", out.Fig12, golden)
	}
	if out.Resumed != interruptAt {
		t.Errorf("Resumed = %d, want %d journaled jobs from the interrupted run", out.Resumed, interruptAt)
	}
	want := int64(len(jobs) - interruptAt)
	if calls2.Load() != want {
		t.Errorf("resume re-simulated %d jobs, want %d (the %d interrupted-run cells must come from cache)",
			calls2.Load(), want, interruptAt)
	}
	if out.Computed != int(want) || out.Served != interruptAt {
		t.Errorf("resume attribution: computed=%d served=%d, want %d/%d", out.Computed, out.Served, want, interruptAt)
	}
	if out.Stats.DiskHits != interruptAt {
		t.Errorf("resume stats = %v, want %d disk hits (fresh store, so global == this run)", out.Stats, interruptAt)
	}
}

// fakeSim is a cheap deterministic stand-in for sim.Run for tests that
// exercise engine accounting, not simulation.
func fakeSim(cfg sim.Config) (sim.Result, error) {
	ipc := make([]float64, cfg.Cores)
	for i := range ipc {
		ipc[i] = 1 + float64(i)*0.25 + cfg.NRH/1e6
	}
	return sim.Result{IPC: ipc, Cycles: 1000, Finished: true}, nil
}

func tinySpec() Spec {
	base := sim.DefaultConfig()
	base.Cores = 2
	return Spec{
		Figures:  []string{Fig12, Fig13},
		Base:     base,
		Mixes:    [][]string{{"mcf06", "lbm06"}},
		NRHs:     []float64{64},
		Defenses: []string{"para"},
		Profiles: []string{"S0"},
		Benign:   []string{"mcf06"},
	}
}

func TestEngineMemoryOnlyStore(t *testing.T) {
	store := newStore(t, "") // no disk: still deduplicates and folds
	eng := &Engine{Store: store, Workers: 2, Sim: fakeSim}
	out, err := eng.Run(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// fig12: 1 baseline + 1*1*2*1*1 cells = 3; fig13: 2*(2+1) = 6.
	if out.Total != 9 {
		t.Errorf("Total = %d, want 9", out.Total)
	}
	if len(out.Fig12) != 2 { // NoSvard + Svard-S0
		t.Errorf("Fig12 cells = %d, want 2", len(out.Fig12))
	}
	if len(out.Fig13) != 4 {
		t.Errorf("Fig13 cells = %d, want 4", len(out.Fig13))
	}
	if out.Stats.Writes != 0 {
		t.Errorf("memory-only store wrote %d disk entries", out.Stats.Writes)
	}
}

func TestSpecValidate(t *testing.T) {
	for name, breakIt := range map[string]func(*Spec){
		"unknown-figure":   func(s *Spec) { s.Figures = []string{"fig99"} },
		"unknown-defense":  func(s *Spec) { s.Defenses = []string{"guardian"} },
		"unknown-workload": func(s *Spec) { s.Mixes = [][]string{{"mcf06", "no-such"}} },
		"unknown-profile":  func(s *Spec) { s.Profiles = []string{"S0", "X9"} },
		"unknown-attack":   func(s *Spec) { s.Mixes = [][]string{{"mcf06", "attack:nope"}} },
		"short-mix":        func(s *Spec) { s.Mixes = [][]string{{"mcf06"}} },
		"bad-benign":       func(s *Spec) { s.Benign = []string{"no-such"} },
		"fig13-one-core":   func(s *Spec) { s.Base.Cores = 1; s.Mixes = [][]string{{"mcf06"}} },
		"unknown-backend":  func(s *Spec) { s.Backends = []string{"lpddr5"} },
		"bad-base-backend": func(s *Spec) { s.Base.Backend = "gddr6" },
	} {
		t.Run(name, func(t *testing.T) {
			s := tinySpec()
			breakIt(&s)
			if err := s.Validate(); err == nil {
				t.Error("validation accepted a broken spec")
			}
		})
	}
	if err := tinySpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestSpecFingerprint(t *testing.T) {
	a, b := tinySpec(), tinySpec()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical specs fingerprint differently")
	}
	b.NRHs = []float64{128}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different sweeps share a fingerprint")
	}
	// Normalization makes implicit and explicit defaults agree.
	c := tinySpec()
	c.Figures = nil
	d := tinySpec()
	d.Figures = []string{Fig12, Fig13}
	if c.Fingerprint() != d.Fingerprint() {
		t.Error("default figures fingerprint differently from explicit ones")
	}
	// The backend axis scopes its own journal, but a spec that never
	// names backends fingerprints identically to one from before the
	// axis existed (omitempty: pre-axis journals keep resuming).
	e := tinySpec()
	e.Backends = []string{"hbm2"}
	if e.Fingerprint() == a.Fingerprint() {
		t.Error("backend sweep shares a fingerprint with the default-backend sweep")
	}
	f := tinySpec()
	f.Backends = []string{}
	if f.Fingerprint() != a.Fingerprint() {
		t.Error("empty Backends changed the fingerprint; old journals orphaned")
	}
}

// TestSpecBackendsAxis: naming backends multiplies the job list once
// per backend, stamps every job's config with its backend, suffixes
// labels so cells from different geometries stay distinguishable, and
// keeps every cache key distinct across the expansion.
func TestSpecBackendsAxis(t *testing.T) {
	spec, _ := goldenSpec(t)
	baseJobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	spec.Backends = []string{"ddr4-3200", "hbm2"}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*len(baseJobs) {
		t.Fatalf("jobs = %d, want %d (two backends x %d)", len(jobs), 2*len(baseJobs), len(baseJobs))
	}
	counts := map[string]int{}
	seen := map[string]bool{}
	for _, job := range jobs {
		counts[job.Config.Backend]++
		if !strings.Contains(job.Label, "["+job.Config.Backend+"]") {
			t.Errorf("job %q does not name its backend %q", job.Label, job.Config.Backend)
		}
		key := cache.Key(job.Config)
		if seen[key] {
			t.Errorf("duplicate cache key for job %q", job.Label)
		}
		seen[key] = true
	}
	if counts["ddr4-3200"] != len(baseJobs) || counts["hbm2"] != len(baseJobs) {
		t.Errorf("backend job split = %v, want %d each", counts, len(baseJobs))
	}
}

func TestJournalTornLineAndResume(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(dir, strings.Repeat("ab", 32), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := strings.Repeat("11", 32), strings.Repeat("22", 32)
	j.done(k1)
	j.done(k2)
	j.done(k2) // idempotent
	j.close()

	// Simulate a crash mid-append: a torn half-written key.
	path := journalPath(dir, strings.Repeat("ab", 32))
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(strings.Repeat("33", 10))
	f.Close()

	r, err := openJournal(dir, strings.Repeat("ab", 32), 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.resumed() != 2 {
		t.Errorf("resumed = %d, want 2 (torn line must be dropped)", r.resumed())
	}
	// A key appended right after the torn line must not be glued onto it:
	// the next resume still sees it.
	k3 := strings.Repeat("44", 32)
	r.done(k3)
	r.close()
	r2, err := openJournal(dir, strings.Repeat("ab", 32), 10, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.close()
	if r2.resumed() != 3 {
		t.Errorf("resumed = %d, want 3 (key after torn line must survive)", r2.resumed())
	}

	// Without resume, the journal restarts from zero.
	fresh, err := openJournal(dir, strings.Repeat("ab", 32), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.close()
	if fresh.resumed() != 0 {
		t.Errorf("fresh journal resumed %d", fresh.resumed())
	}
}

// tinyPopulationSpec is a real-simulation population campaign sized to
// run in well under a second per cell.
func tinyPopulationSpec() Spec {
	base := sim.DefaultConfig()
	base.Cores = 2
	base.RowsPerBank = 2048
	base.CellsPerRow = 2048
	base.InstrPerCore = 8_000
	base.WarmupPerCore = 1_000
	return Spec{
		Figures:    []string{Fig12},
		Base:       base,
		Mixes:      [][]string{{"mcf06", "lbm06"}},
		NRHs:       []float64{64},
		Defenses:   []string{"para"},
		Population: &PopulationSpec{Seed: 7, Size: 3},
	}
}

func TestPopulationSpecJobsAndValidate(t *testing.T) {
	jobs, err := tinyPopulationSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// Per module: 1 baseline + 1 defense x 1 nRH x 2 configs, x 1 mix.
	if want := 3 * 3; len(jobs) != want {
		t.Errorf("jobs = %d, want %d", len(jobs), want)
	}
	seen := map[string]bool{}
	for _, job := range jobs {
		key := cache.Key(job.Config)
		if seen[key] {
			t.Errorf("duplicate cache key for job %q", job.Label)
		}
		seen[key] = true
	}

	for name, breakIt := range map[string]func(*Spec){
		"zero-size":      func(s *Spec) { s.Population.Size = 0 },
		"with-fig13":     func(s *Spec) { s.Figures = []string{Fig12, Fig13}; s.Benign = []string{"mcf06"} },
		"with-profiles":  func(s *Spec) { s.Profiles = []string{"S0"} },
		"with-backends":  func(s *Spec) { s.Backends = []string{"hbm2"} },
		"default-figure": func(s *Spec) { s.Figures = nil }, // normalizes to both -> fig13 conflict
	} {
		t.Run(name, func(t *testing.T) {
			s := tinyPopulationSpec()
			breakIt(&s)
			if err := s.Validate(); err == nil {
				t.Error("validation accepted a broken population spec")
			}
		})
	}
}

// TestPopulationFingerprintNeutral: the Population field must be
// invisible when unset — pre-population specs keep their exact
// fingerprint and journal — and must scope a distinct campaign when set.
func TestPopulationFingerprintNeutral(t *testing.T) {
	plain := tinySpec()
	b, err := json.Marshal(plain.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "population") {
		t.Fatalf("population leaks into a population-free spec's canonical JSON: %s", b)
	}

	a := tinyPopulationSpec()
	c := tinyPopulationSpec()
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("identical population specs fingerprint differently")
	}
	c.Population.Seed = 8
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different population seeds share a fingerprint")
	}
	d := tinyPopulationSpec()
	d.Population = nil
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("population campaign shares a fingerprint with the point-estimate campaign")
	}
}

// TestPopulationCampaignInterruptedThenResumed is the tentpole
// acceptance criterion: a population campaign killed mid-sweep and
// resumed completes from cached cells and reports confidence bands
// bit-identical to an uninterrupted run.
func TestPopulationCampaignInterruptedThenResumed(t *testing.T) {
	spec := tinyPopulationSpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one uninterrupted cold run in its own store.
	ref, err := (&Engine{Store: newStore(t, t.TempDir()), Workers: 2, PopulationChunk: 2}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Bands) != 2 || ref.Fig12 != nil {
		t.Fatalf("population campaign outcome: %d bands, fig12 %v", len(ref.Bands), ref.Fig12)
	}
	for _, c := range ref.Bands {
		if c.Modules != spec.Population.Size {
			t.Errorf("%s: folded %d modules, want %d", c.Config, c.Modules, spec.Population.Size)
		}
	}

	// Interrupted run: killed after 4 completed simulations.
	dir := t.TempDir()
	const interruptAt = 4
	var calls1 atomic.Int64
	eng1 := &Engine{Store: newStore(t, dir), Workers: 2, Sim: failAfter(interruptAt, &calls1)}
	if _, err := eng1.Run(spec); err == nil {
		t.Fatal("interrupted population campaign reported success")
	}

	// Resume in a fresh store over the same directory, with a different
	// chunk size: results must not notice either.
	var calls2 atomic.Int64
	eng2 := &Engine{Store: newStore(t, dir), Workers: 1, Resume: true, PopulationChunk: 1, Sim: countingSim(&calls2)}
	out, err := eng2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Bands, ref.Bands) {
		t.Fatalf("resumed bands differ from the uninterrupted run:\ngot  %+v\nwant %+v", out.Bands, ref.Bands)
	}
	if out.Resumed != interruptAt {
		t.Errorf("Resumed = %d, want %d", out.Resumed, interruptAt)
	}
	if want := int64(len(jobs) - interruptAt); calls2.Load() != want {
		t.Errorf("resume re-simulated %d jobs, want %d", calls2.Load(), want)
	}
}

// tinyTemporalSpec is a real-simulation margin-erosion campaign sized
// to run in well under a second per cell.
func tinyTemporalSpec() Spec {
	base := sim.DefaultConfig()
	base.Cores = 2
	base.RowsPerBank = 2048
	base.CellsPerRow = 2048
	base.InstrPerCore = 8_000
	base.WarmupPerCore = 1_000
	return Spec{
		Figures:  []string{Fig12},
		Base:     base,
		Mixes:    [][]string{{"mcf06", "lbm06"}},
		NRHs:     []float64{256, 64},
		Defenses: []string{"para"},
		Temporal: &TemporalSpec{
			Process:   temporal.Spec{EpochCycles: 65536, Drift: -0.03, Sigma: 0.05},
			Intervals: []uint64{0, 16},
		},
	}
}

func TestTemporalSpecJobsAndValidate(t *testing.T) {
	jobs, err := tinyTemporalSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// (1 static + 2 interval) grids x 1 defense x 2 svard x 2 nRH x 1 mix.
	if want := 3 * 4; len(jobs) != want {
		t.Errorf("jobs = %d, want %d", len(jobs), want)
	}
	seen := map[string]bool{}
	for _, job := range jobs {
		key := cache.Key(job.Config)
		if seen[key] {
			t.Errorf("duplicate cache key for job %q", job.Label)
		}
		seen[key] = true
	}

	for name, breakIt := range map[string]func(*Spec){
		"zero-epoch":      func(s *Spec) { s.Temporal.Process.EpochCycles = 0 },
		"negative-sigma":  func(s *Spec) { s.Temporal.Process.Sigma = -0.1 },
		"dip-above-one":   func(s *Spec) { s.Temporal.Process.DipP = 1.5 },
		"process-age":     func(s *Spec) { s.Temporal.Process.AgeEpochs = 4 },
		"dup-intervals":   func(s *Spec) { s.Temporal.Intervals = []uint64{0, 16, 16} },
		"with-fig13":      func(s *Spec) { s.Figures = []string{Fig12, Fig13}; s.Benign = []string{"mcf06"} },
		"with-population": func(s *Spec) { s.Population = &PopulationSpec{Seed: 1, Size: 2} },
		"with-backends":   func(s *Spec) { s.Backends = []string{"hbm2"} },
		"two-profiles":    func(s *Spec) { s.Profiles = []string{"S0", "M0"} },
		"base-temporal":   func(s *Spec) { s.Base.Temporal = &temporal.Spec{EpochCycles: 1} },
		"default-figure":  func(s *Spec) { s.Figures = nil }, // normalizes to both -> fig13 conflict
	} {
		t.Run(name, func(t *testing.T) {
			s := tinyTemporalSpec()
			breakIt(&s)
			if err := s.Validate(); err == nil {
				t.Error("validation accepted a broken temporal spec")
			}
		})
	}
}

// TestTemporalFingerprintNeutral: the Temporal field must be invisible
// when unset — pre-temporal specs keep their exact fingerprint and
// journal — and must scope a distinct campaign when set.
func TestTemporalFingerprintNeutral(t *testing.T) {
	plain := tinySpec()
	b, err := json.Marshal(plain.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "temporal") {
		t.Fatalf("temporal leaks into a temporal-free spec's canonical JSON: %s", b)
	}

	a := tinyTemporalSpec()
	c := tinyTemporalSpec()
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("identical temporal specs fingerprint differently")
	}
	c.Temporal.Process.Drift = -0.04
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different temporal drifts share a fingerprint")
	}
	d := tinyTemporalSpec()
	d.Temporal = nil
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("temporal campaign shares a fingerprint with the static campaign")
	}
	// The default intervals are pinned by normalization, so a spec that
	// spells them out is the same campaign as one that omits them.
	e := tinyTemporalSpec()
	e.Temporal.Intervals = nil
	f := tinyTemporalSpec()
	f.Temporal.Intervals = sim.DefaultErosionIntervals()
	if e.Fingerprint() != f.Fingerprint() {
		t.Error("default intervals fingerprint differently from explicit ones")
	}
}

// TestErosionCampaignInterruptedThenResumed: a temporal campaign killed
// mid-sweep and resumed completes from cached cells and reports a
// margin-erosion table bit-identical to an uninterrupted run.
func TestErosionCampaignInterruptedThenResumed(t *testing.T) {
	spec := tinyTemporalSpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one uninterrupted cold run in its own store.
	ref, err := (&Engine{Store: newStore(t, t.TempDir()), Workers: 2}).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Erosion) != 4 || ref.Fig12 != nil {
		t.Fatalf("temporal campaign outcome: %d erosion cells, fig12 %v", len(ref.Erosion), ref.Fig12)
	}

	// Interrupted run: killed after 4 completed simulations.
	dir := t.TempDir()
	const interruptAt = 4
	var calls1 atomic.Int64
	eng1 := &Engine{Store: newStore(t, dir), Workers: 2, Sim: failAfter(interruptAt, &calls1)}
	if _, err := eng1.Run(spec); err == nil {
		t.Fatal("interrupted temporal campaign reported success")
	}

	// Resume in a fresh store over the same directory, with a different
	// worker count: the erosion table must not notice either.
	var calls2 atomic.Int64
	eng2 := &Engine{Store: newStore(t, dir), Workers: 1, Resume: true, Sim: countingSim(&calls2)}
	out, err := eng2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Erosion, ref.Erosion) {
		t.Fatalf("resumed erosion cells differ from the uninterrupted run:\ngot  %+v\nwant %+v", out.Erosion, ref.Erosion)
	}
	if out.Resumed != interruptAt {
		t.Errorf("Resumed = %d, want %d", out.Resumed, interruptAt)
	}
	if want := int64(len(jobs) - interruptAt); calls2.Load() != want {
		t.Errorf("resume re-simulated %d jobs, want %d", calls2.Load(), want)
	}
}

func TestSpecJobsCounts(t *testing.T) {
	spec, _ := goldenSpec(t)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// baselines: 1 profile x 2 mixes; cells: 2 defenses x 2 nRHs x
	// 2 svard x 1 profile x 2 mixes.
	if want := 2 + 16; len(jobs) != want {
		t.Errorf("jobs = %d, want %d", len(jobs), want)
	}
	// Every job must carry a complete, runnable config with a distinct
	// cache key (the engine relies on key uniqueness for journaling).
	seen := map[string]bool{}
	for _, job := range jobs {
		key := cache.Key(job.Config)
		if seen[key] {
			t.Errorf("duplicate cache key for job %q", job.Label)
		}
		seen[key] = true
	}
}
