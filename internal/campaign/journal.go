package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// journalHeader's version is independent of cache.SchemaVersion: the
// journal stores only accounting, never results.
const journalHeader = "svard-campaign v1"

// journal is the campaign checkpoint: an append-only file of completed
// job keys, named by the campaign fingerprint under the cache directory.
// It exists for accounting and observability (how far did the
// interrupted run get), not correctness — the result cache alone makes a
// restart skip completed work. A torn final line from a crash is
// skipped on resume, and the corresponding cell simply replays as a
// cache hit.
type journal struct {
	mu           sync.Mutex
	f            *os.File // nil: memory-only store, accounting is per-process
	seen         map[string]bool
	resumedCount int
}

func journalPath(dir, fingerprint string) string {
	return filepath.Join(dir, "campaign-"+fingerprint[:16]+".journal")
}

// openJournal opens the campaign's journal. With resume set and an
// existing journal for the same fingerprint, previously completed keys
// are loaded; otherwise a fresh journal replaces whatever was there.
func openJournal(dir, fingerprint string, total int, resume bool) (*journal, error) {
	j := &journal{seen: make(map[string]bool)}
	if dir == "" {
		return j, nil
	}
	path := journalPath(dir, fingerprint)

	if resume {
		if b, err := os.ReadFile(path); err == nil {
			lines := strings.Split(string(b), "\n")
			if len(lines) > 0 && strings.HasPrefix(lines[0], journalHeader+" "+fingerprint) {
				for _, line := range lines[1:] {
					line = strings.TrimSpace(line)
					if len(line) == 64 { // a full hex SHA-256; shorter = torn write
						j.seen[line] = true
					}
				}
				j.resumedCount = len(j.seen)
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return nil, fmt.Errorf("campaign: reopen journal: %w", err)
				}
				// A crash mid-append can leave the file without a trailing
				// newline; terminate the torn line so the next key is not
				// glued onto it (and lost with it on the following resume).
				if len(b) > 0 && b[len(b)-1] != '\n' {
					fmt.Fprintln(f)
				}
				j.f = f
				return j, nil
			}
			// Header mismatch: a different (or corrupt) campaign's file
			// under a colliding name — start over rather than miscount.
		}
	}

	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: create journal: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%s %s total=%d\n", journalHeader, fingerprint, total); err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: write journal header: %w", err)
	}
	j.f = f
	return j, nil
}

// resumed returns how many jobs were already journaled when the run
// started.
func (j *journal) resumed() int { return j.resumedCount }

// done records one completed job (idempotent across restarts, so a
// resumed run's cache hits do not duplicate lines).
func (j *journal) done(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seen[key] {
		return
	}
	j.seen[key] = true
	if j.f != nil {
		// A failed append only degrades accounting; never the campaign.
		fmt.Fprintln(j.f, key)
	}
}

func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// has reports whether key is already journaled.
func (j *journal) has(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seen[key]
}

// Journal is the exported view of a campaign checkpoint, for layers
// above the engine: the distributed fabric journals its dispatch-phase
// completions through it, so a restarted coordinator resumes a
// campaign instead of re-dispatching finished cells. It shares the
// engine's on-disk format and path scheme — a campaign interrupted
// under the fabric resumes under a local engine run and vice versa.
type Journal struct{ j *journal }

// OpenJournal opens (resume) or creates the journal for a campaign
// fingerprint under the cache directory. An empty dir keeps the
// journal in memory only.
func OpenJournal(dir, fingerprint string, total int, resume bool) (*Journal, error) {
	j, err := openJournal(dir, fingerprint, total, resume)
	if err != nil {
		return nil, err
	}
	return &Journal{j: j}, nil
}

// Done records one completed cell key (idempotent).
func (j *Journal) Done(key string) { j.j.done(key) }

// Seen reports whether key is recorded as completed.
func (j *Journal) Seen(key string) bool { return j.j.has(key) }

// Resumed returns how many cells were already journaled at open.
func (j *Journal) Resumed() int { return j.j.resumed() }

// Close releases the journal file; the record stays on disk for the
// next resume.
func (j *Journal) Close() { j.j.close() }
