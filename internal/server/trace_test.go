// Tests of the flight-recorder surface: the per-job trace endpoint and
// the /metrics rollups it feeds.
package server_test

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"svard/internal/obs"
	"svard/internal/server"
)

// TestJobTraceEndpoint: a finished job's trace downloads as valid
// Chrome trace_event JSON with one cell per swept config.
func TestJobTraceEndpoint(t *testing.T) {
	_, c := newService(t, t.TempDir(), server.Config{Workers: 2, Sim: fakeSim})
	ctx := context.Background()
	info, err := c.Submit(ctx, tinySpec(), "traced", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, info.ID, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(c.BaseURL + "/api/v1/jobs/" + info.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type = %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, info.ID) {
		t.Errorf("content disposition %q does not name the job", cd)
	}
	f, err := obs.Read(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("job trace does not validate: %v", err)
	}
	cells := f.CellSummaries()
	if len(cells) != info.Total {
		t.Fatalf("trace has %d cells, job swept %d", len(cells), info.Total)
	}
	for _, cell := range cells {
		if cell.Outcome != "computed" {
			t.Errorf("cell %q outcome = %q, want computed (cold store)", cell.Label, cell.Outcome)
		}
		if cell.Phases["lookup"] <= 0 {
			t.Errorf("cell %q has no lookup phase", cell.Label)
		}
	}

	// Unknown job: 404, not an empty trace.
	resp2, err := http.Get(c.BaseURL + "/api/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("missing job trace status = %d, want 404", resp2.StatusCode)
	}
}

// TestMetricsObsRollups: /metrics exposes the counter glossary summed
// over jobs, per-job cell outcomes, and the Go runtime gauges — all in
// the hand-rolled text format (no client dependency).
func TestMetricsObsRollups(t *testing.T) {
	_, c := newService(t, t.TempDir(), server.Config{Workers: 2, Sim: fakeSim})
	ctx := context.Background()
	info, err := c.Submit(ctx, tinySpec(), "rollup", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, info.ID, nil); err != nil {
		t.Fatal(err)
	}

	text := scrapeMetrics(t, c)
	for _, series := range []string{
		// Every glossary counter appears as an aggregate series.
		"svard_obs_sim_ticks_total",
		"svard_obs_skipped_cycles_total",
		"svard_obs_scan_passes_total",
		// The injected fake sim computes every cell.
		"svard_obs_cells_computed_total 5",
		"svard_obs_cells_served_total 0",
		// Per-job rollups carry the job identity.
		`svard_job_cells{id="` + info.ID + `",name="rollup",outcome="computed"} 5`,
		`svard_job_sim_ticks{id="` + info.ID + `",name="rollup"}`,
		// Go runtime gauges.
		"go_goroutines",
		"go_heap_inuse_bytes",
		"go_gc_pause_seconds_total",
		"go_gc_cycles_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", text)
	}
}
