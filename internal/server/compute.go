package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/exec"
	"svard/internal/sim"
)

// ComputeRequest is the body of POST /api/v1/compute — the fabric
// coordinator's unit of dispatch: one leased batch of raw cells,
// computed synchronously through the worker's shared slots and cache.
type ComputeRequest struct {
	Configs []sim.Config `json:"configs"`
}

// ComputeCell reports one cell of a computed batch. Computed means this
// call ran the simulator for the cell; false means the cell was served
// from the cache (or deduplicated onto a computation already in
// flight) — the distinction the fabric's exactly-once attribution is
// built on. A non-empty Error carries a per-cell simulation failure;
// the rest of the batch still completes.
type ComputeCell struct {
	Key      string `json:"key"`
	Label    string `json:"label,omitempty"`
	Computed bool   `json:"computed"`
	Error    string `json:"error,omitempty"`
}

// ComputeResponse is the body POST /api/v1/compute returns.
type ComputeResponse struct {
	Cells    []ComputeCell `json:"cells"`
	Computed int           `json:"computed"`
	Served   int           `json:"served"`
	Failed   int           `json:"failed"`
}

// ComputeBatch runs a batch of raw cells to completion through the
// shared cache and worker slots — the fabric worker's serving surface.
// Batch cells contend for the same global slots as campaign cells, so
// a worker serving both a local sweep and fabric dispatch stays within
// its configured parallelism. Per-cell simulation failures are
// reported in the cell (the batch continues); config validation
// failures, shutdown, and ctx cancellation fail the whole batch.
func (s *Scheduler) ComputeBatch(ctx context.Context, cfgs []sim.Config) ([]ComputeCell, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrShuttingDown
	}
	for i := range cfgs {
		if err := cfgs[i].Validate(); err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
	}
	base := s.sim
	if base == nil {
		base = sim.Run
	}
	return exec.MapCtx(ctx, s.workers, len(cfgs), func(i int) (ComputeCell, error) {
		cfg := cfgs[i]
		cell := ComputeCell{Key: cache.Key(cfg), Label: campaign.CellLabel(cfg)}
		computed := false
		// The worker slot is taken inside the compute callback only, so
		// cache hits and deduplicated cells never occupy a slot.
		_, err := s.store.GetOrCompute(cfg, func(c sim.Config) (sim.Result, error) {
			select {
			case s.slots <- struct{}{}:
			case <-ctx.Done():
				return sim.Result{}, context.Cause(ctx)
			}
			defer func() { <-s.slots }()
			computed = true
			return base(c)
		})
		if err != nil {
			if ctx.Err() != nil {
				return cell, context.Cause(ctx)
			}
			cell.Error = err.Error()
			return cell, nil
		}
		cell.Computed = computed
		s.cellsDone.Add(1)
		return cell, nil
	})
}

// handleCompute serves POST /api/v1/compute.
func (s *Server) handleCompute(w http.ResponseWriter, r *http.Request) {
	var req ComputeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode compute request: %w", err))
		return
	}
	if len(req.Configs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("compute request has no configs"))
		return
	}
	cells, err := s.sched.ComputeBatch(r.Context(), req.Configs)
	if err != nil {
		switch {
		case errors.Is(err, ErrShuttingDown), r.Context().Err() != nil:
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	resp := ComputeResponse{Cells: cells}
	for _, c := range cells {
		switch {
		case c.Error != "":
			resp.Failed++
		case c.Computed:
			resp.Computed++
		default:
			resp.Served++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
