// Tests for the fabric worker surface: POST /api/v1/compute runs raw
// cell batches through the shared slots and cache with per-cell
// Computed/Served attribution — the primitive the coordinator's
// exactly-once accounting is built on.
package server_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"svard/internal/cache"
	"svard/internal/server"
	"svard/internal/sim"
)

// TestComputeBatchAttribution: a fresh batch is Computed; the same
// batch again is Served (cache hits), with zero extra simulator calls.
func TestComputeBatchAttribution(t *testing.T) {
	var calls atomic.Int64
	counting := func(cfg sim.Config) (sim.Result, error) {
		calls.Add(1)
		return fakeSim(cfg)
	}
	_, c := newService(t, t.TempDir(), server.Config{Workers: 2, Sim: counting})
	ctx := context.Background()

	spec := tinySpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]sim.Config, len(jobs))
	for i, j := range jobs {
		cfgs[i] = j.Config
	}

	resp, err := c.Compute(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Computed != len(cfgs) || resp.Served != 0 || resp.Failed != 0 {
		t.Fatalf("fresh batch: computed=%d served=%d failed=%d, want %d/0/0",
			resp.Computed, resp.Served, resp.Failed, len(cfgs))
	}
	for i, cell := range resp.Cells {
		if cell.Key != cache.Key(cfgs[i]) {
			t.Fatalf("cell %d key %s, want %s (index order must hold)", i, cell.Key, cache.Key(cfgs[i]))
		}
		if !cell.Computed || cell.Error != "" {
			t.Fatalf("fresh cell %d: %+v", i, cell)
		}
	}
	if got := calls.Load(); got != int64(len(cfgs)) {
		t.Fatalf("simulator ran %d times, want %d", got, len(cfgs))
	}

	again, err := c.Compute(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if again.Computed != 0 || again.Served != len(cfgs) {
		t.Fatalf("replayed batch: computed=%d served=%d, want 0/%d", again.Computed, again.Served, len(cfgs))
	}
	if got := calls.Load(); got != int64(len(cfgs)) {
		t.Fatalf("replayed batch re-ran the simulator (%d calls)", got)
	}
}

// TestComputeBatchPerCellFailure: one failing cell is reported in place
// while the rest of the batch completes.
func TestComputeBatchPerCellFailure(t *testing.T) {
	failing := func(cfg sim.Config) (sim.Result, error) {
		if cfg.NRH == 64 {
			return sim.Result{}, context.DeadlineExceeded
		}
		return fakeSim(cfg)
	}
	_, c := newService(t, t.TempDir(), server.Config{Workers: 2, Sim: failing})

	jobs, err := tinySpec(64, 128).Jobs()
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]sim.Config, len(jobs))
	nrh64 := 0
	for i, j := range jobs {
		cfgs[i] = j.Config
		if j.Config.NRH == 64 {
			nrh64++
		}
	}
	resp, err := c.Compute(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Failed != nrh64 {
		t.Fatalf("failed=%d, want %d (the nrh=64 cells)", resp.Failed, nrh64)
	}
	if resp.Computed != len(cfgs)-nrh64 {
		t.Fatalf("computed=%d, want %d", resp.Computed, len(cfgs)-nrh64)
	}
	for _, cell := range resp.Cells {
		wantErr := false
		for i, cfg := range cfgs {
			if cell.Key == cache.Key(cfg) {
				wantErr = cfgs[i].NRH == 64
			}
		}
		if (cell.Error != "") != wantErr {
			t.Fatalf("cell %+v: error presence mismatch", cell)
		}
	}
}

// TestComputeBatchRejectsBadInput: empty batches and invalid configs
// are 400s, not half-run batches.
func TestComputeBatchRejectsBadInput(t *testing.T) {
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, Sim: fakeSim})
	ctx := context.Background()

	if _, err := c.Compute(ctx, nil); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("empty batch: %v, want 400", err)
	}
	bad := sim.DefaultConfig()
	bad.Backend = "lpddr9"
	if _, err := c.Compute(ctx, []sim.Config{bad}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("invalid config: %v, want 400", err)
	}
}
