package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/sim"
)

// Config sizes a Server.
type Config struct {
	// Store is the shared result cache every job reads and writes
	// (required). One store per daemon: that sharing is the point.
	Store *cache.Store

	// Workers bounds concurrent simulations across ALL jobs (<= 0:
	// GOMAXPROCS). MaxActiveJobs bounds concurrently admitted jobs
	// (<= 0: 4); queued jobs beyond it wait, highest priority first.
	// RetainJobs bounds the job table (<= 0: 256): beyond it the oldest
	// terminal jobs — their event logs and folded outcomes — are
	// evicted so a long-lived daemon's memory stays bounded.
	Workers       int
	MaxActiveJobs int
	RetainJobs    int

	// Sim replaces sim.Run as the base executor (tests inject counting
	// or failing runners; nil means the real simulator).
	Sim sim.Runner
}

// Server is the campaign service: an HTTP API over one Scheduler and
// one cache.Store. Construct with New, serve Handler(), stop with
// Shutdown.
type Server struct {
	store *cache.Store
	sched *Scheduler
	mux   *http.ServeMux
	start time.Time
}

// New builds the service.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: config has no result store")
	}
	s := &Server{
		store: cfg.Store,
		sched: newScheduler(cfg.Store, cfg.Sim, cfg.Workers, cfg.MaxActiveJobs, cfg.RetainJobs),
		mux:   http.NewServeMux(),
		start: time.Now().UTC(),
	}
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /api/v1/cells/{key}", s.handleCell)
	s.mux.HandleFunc("POST /api/v1/key", s.handleKey)
	s.mux.HandleFunc("POST /api/v1/compute", s.handleCompute)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Handler returns the service's HTTP handler (also usable under
// httptest and custom http.Servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Scheduler exposes the job table to in-process embedders (the daemon's
// shutdown path, tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Shutdown stops admission, cancels all jobs, and waits for them (or
// ctx). See Scheduler.Shutdown for the latency contract.
func (s *Server) Shutdown(ctx context.Context) error { return s.sched.Shutdown(ctx) }

// SubmitRequest is the body of POST /api/v1/jobs.
type SubmitRequest struct {
	Name     string        `json:"name,omitempty"`
	Priority int           `json:"priority,omitempty"` // higher runs first; FIFO within a priority
	Spec     campaign.Spec `json:"spec"`
}

// ResultResponse is the body of GET /api/v1/jobs/{id}/result.
type ResultResponse struct {
	Job   JobInfo         `json:"job"`
	Fig12 []sim.Fig12Cell `json:"fig12,omitempty"`
	Fig13 []sim.Fig13Cell `json:"fig13,omitempty"`
	// Bands carries a population campaign's Monte Carlo confidence
	// bands, in place of Fig12 point cells.
	Bands   []sim.BandCell `json:"bands,omitempty"`
	Total   int            `json:"total"`
	Resumed int            `json:"resumed"`
	// Computed/Served attribute this job's cells exactly: Computed were
	// simulated by this job, Served came from the cache or another
	// job's in-flight computation. Stats is the shared store's global
	// counter snapshot (the whole daemon, not just this job).
	Computed int         `json:"computed"`
	Served   int         `json:"served"`
	Stats    cache.Stats `json:"stats"`
}

// CellResponse is the body of GET /api/v1/cells/{key}.
type CellResponse struct {
	Key    string     `json:"key"`
	Result sim.Result `json:"result"`
}

// KeyResponse is the body of POST /api/v1/key.
type KeyResponse struct {
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode submit request: %w", err))
		return
	}
	info, err := s.sched.Submit(req.Spec, req.Name, req.Priority)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrShuttingDown) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	info, err := s.sched.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.sched.Cancel(r.PathValue("id"), r.URL.Query().Get("reason"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleEvents streams the job's progress as NDJSON: every line one
// Event, flushed as it happens, following until the job is terminal
// (or the client goes away). ?from=N resumes after a dropped
// connection without replaying the whole stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q: %w", q, err))
			return
		}
		from = v
	}
	// Probe for existence before committing the streaming response.
	if _, err := s.sched.Job(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	for {
		evs, more, err := s.sched.Events(id, from)
		if err != nil {
			return // job vanished mid-stream: just end it
		}
		for _, ev := range evs {
			if enc.Encode(ev) != nil {
				return // client hung up
			}
			from = ev.Seq + 1
		}
		if flusher != nil {
			flusher.Flush()
		}
		if more == nil {
			return // terminal and drained
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	out, info, err := s.sched.Outcome(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if out == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; results exist only for %s jobs", info.ID, info.State, StateDone))
		return
	}
	writeJSON(w, http.StatusOK, ResultResponse{
		Job:      info,
		Fig12:    out.Fig12,
		Fig13:    out.Fig13,
		Bands:    out.Bands,
		Total:    out.Total,
		Resumed:  out.Resumed,
		Computed: out.Computed,
		Served:   out.Served,
		Stats:    out.Stats,
	})
}

// handleTrace serves a job's flight-recorder timeline as Chrome
// trace_event JSON — save it and open it in chrome://tracing or
// Perfetto, or feed it to svard-trace. Available while the job runs
// (a partial timeline) and after it finishes.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr, info, err := s.sched.Trace(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", info.ID+"-trace.json"))
	w.WriteHeader(http.StatusOK)
	tr.Write(w)
}

// handleCell serves one raw cached simulation result by its
// content-addressed key (see POST /api/v1/key, or cache.Key for Go
// clients). 404 means the cell has never been computed and persisted.
// The key is strictly validated before it goes anywhere near the
// store's filesystem paths: PathValue decodes %2F, so an unvalidated
// "key" could otherwise traverse out of the cache directory.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("malformed cell key %q: want 64 lowercase hex chars (a cache.Key)", key))
		return
	}
	res, ok := s.store.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached cell for key %s", key))
		return
	}
	writeJSON(w, http.StatusOK, CellResponse{Key: key, Result: res})
}

// validKey reports whether key has the exact shape cache.Key produces:
// 64 lowercase hex characters, nothing else.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleKey maps a posted sim.Config to its content-addressed cache
// key, so non-Go clients can look up raw cells without reimplementing
// the canonical hash.
func (s *Server) handleKey(w http.ResponseWriter, r *http.Request) {
	var cfg sim.Config
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode config: %w", err))
		return
	}
	key := cache.Key(cfg)
	writeJSON(w, http.StatusOK, KeyResponse{Key: key, Cached: s.store.Contains(key)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
