// Package server is the resident campaign service behind svard-served:
// one process holding one shared result cache, one warm module pool,
// and one scheduler, multiplexed over an HTTP API so many clients can
// submit campaign.Specs as asynchronous jobs, stream per-cell progress,
// and query folded figures and raw cached cells.
//
// Determinism is the contract the whole stack inherits from the sweep
// engine: a job's folded cells are bit-identical to a direct
// sim.RunFig12/13 call — the scheduler only changes when and where
// cells compute, never what they compute — and the end-to-end tests
// assert it against internal/sim's golden fixtures.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/exec"
	"svard/internal/obs"
	"svard/internal/sim"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one record of a job's progress stream: a state transition or
// a completed cell. Seq is the event's index in the job's stream, so a
// reconnecting client resumes from where it stopped (?from=Seq). Key is
// the completed cell's content address — its unambiguous identity,
// resolvable via GET /api/v1/cells/{key} (Label is human-oriented).
type Event struct {
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time"`
	Type  string    `json:"type"` // "state" or "cell"
	State State     `json:"state,omitempty"`
	Label string    `json:"label,omitempty"` // completed cell's label (type "cell")
	Key   string    `json:"key,omitempty"`   // completed cell's cache key (type "cell")
	Done  int       `json:"done,omitempty"`  // cells completed so far
	Total int       `json:"total"`
	Error string    `json:"error,omitempty"`
}

// JobInfo is the API view of a job.
type JobInfo struct {
	ID          string     `json:"id"`
	Name        string     `json:"name,omitempty"`
	Priority    int        `json:"priority"`
	State       State      `json:"state"`
	Fingerprint string     `json:"fingerprint"`
	Total       int        `json:"total"` // simulation cells in the campaign
	Done        int        `json:"done"`  // cells completed (cache hits included)
	Resumed     int        `json:"resumed,omitempty"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// job is the scheduler's record of one submitted campaign.
type job struct {
	id       string
	name     string
	priority int
	seq      int64 // admission tiebreak: FIFO within a priority
	spec     campaign.Spec
	fp       string // spec.Fingerprint(), computed once at submit
	total    int

	ctx    context.Context
	cancel context.CancelCauseFunc

	// trace is the job's flight recorder: per-cell phase spans and
	// counter snapshots, capped at maxRetainedTraceCells span records
	// (counter totals keep accumulating past the cap). Served by
	// GET /api/v1/jobs/{id}/trace and rolled up on /metrics.
	trace *obs.Trace

	mu       sync.Mutex
	state    State
	done     int
	resumed  int
	err      error
	events   []Event
	eventSeq int           // next Event.Seq; monotonic even after compaction
	changed  chan struct{} // closed and replaced on every append
	outcome  *campaign.Outcome
	sub      time.Time
	started  *time.Time
	finished *time.Time
}

// info snapshots the job under its lock.
func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	inf := JobInfo{
		ID:          j.id,
		Name:        j.name,
		Priority:    j.priority,
		State:       j.state,
		Fingerprint: j.fp,
		Total:       j.total,
		Done:        j.done,
		Resumed:     j.resumed,
		SubmittedAt: j.sub,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.err != nil {
		inf.Error = j.err.Error()
	}
	return inf
}

// append records an event and wakes every stream follower (caller holds
// j.mu).
func (j *job) append(ev Event) {
	ev.Seq = j.eventSeq
	j.eventSeq++
	ev.Time = time.Now().UTC()
	ev.Total = j.total
	j.events = append(j.events, ev)
	close(j.changed)
	j.changed = make(chan struct{})
}

// maxRetainedCellEvents bounds a terminal job's event log. While a job
// runs, every per-cell event is retained so a reconnecting stream can
// replay from any offset; once the job is terminal, a log bigger than
// this compacts down to its state-transition events (cell events are
// only replay fuel, and a paper-scale campaign's ~17K of them would
// otherwise sit in memory until the job is evicted). Seq numbering is
// monotonic across compaction, so ?from= offsets stay valid — a client
// asking for compacted seqs simply receives the retained tail.
const maxRetainedCellEvents = 1024

// maxRetainedTraceCells bounds a job's flight-recorder span records for
// the same reason: a paper-scale campaign's ~17K cells at a few hundred
// bytes each would otherwise sit in memory until the job is evicted.
// Counter totals (the /metrics rollups) are exact regardless — only
// span records past the cap are dropped, and the trace notes how many.
const maxRetainedTraceCells = 2048

// compactLocked drops a terminal job's cell events if the log is large
// (caller holds j.mu).
func (j *job) compactLocked() {
	if len(j.events) <= maxRetainedCellEvents {
		return
	}
	kept := j.events[:0]
	for _, ev := range j.events {
		if ev.Type != "cell" {
			kept = append(kept, ev)
		}
	}
	j.events = kept
}

// Scheduler owns the job table, the admission queue, and the worker
// slots every running job's cells contend for. Admission is
// FIFO-within-priority: among queued jobs, the highest Priority runs
// first, ties broken by submission order. Cells across concurrently
// admitted jobs share one bounded pool, and overlapping jobs
// deduplicate shared cells through the cache's singleflight — two
// clients sweeping intersecting specs compute each shared cell once.
type Scheduler struct {
	store     *cache.Store
	sim       sim.Runner
	workers   int
	maxActive int
	retain    int           // max jobs kept in the table (terminal ones evicted oldest-first beyond it)
	slots     chan struct{} // one token per global worker slot

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job // submission order, for listing
	queue   []*job // admission queue (popped by priority, then seq)
	active  int
	nextSeq int64
	closed  bool

	wg        sync.WaitGroup
	cellsDone atomic.Uint64 // completed cells across all jobs, ever
}

// newScheduler wires a scheduler over the shared store. workers bounds
// concurrent simulations across all jobs; maxActive bounds concurrently
// admitted jobs (queued jobs beyond it wait their turn); retain bounds
// the job table (see pruneLocked).
func newScheduler(store *cache.Store, run sim.Runner, workers, maxActive, retain int) *Scheduler {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if maxActive <= 0 {
		maxActive = 4
	}
	if retain <= 0 {
		retain = 256
	}
	return &Scheduler{
		store:     store,
		sim:       run,
		workers:   workers,
		maxActive: maxActive,
		retain:    retain,
		slots:     make(chan struct{}, workers),
		jobs:      make(map[string]*job),
	}
}

// Submit validates and enqueues a campaign, returning the queued job's
// info. The spec is validated (and its job list sized) before anything
// is admitted, so a malformed campaign fails the submit call, never a
// running job.
//
// Submission is idempotent over in-flight work: a spec whose
// fingerprint matches a queued or running job returns that job instead
// of enqueuing a duplicate — the whole campaign is one shared unit of
// work, exactly like two overlapping specs sharing cells through the
// cache. Resubmitting after the earlier job finished (or was cancelled)
// starts a fresh job, which replays from the cache and journal.
func (s *Scheduler) Submit(spec campaign.Spec, name string, priority int) (JobInfo, error) {
	spec = spec.Normalized()
	jobs, err := spec.Jobs() // validates as it expands
	if err != nil {
		return JobInfo{}, err
	}
	fp := spec.Fingerprint()

	ctx, cancel := context.WithCancelCause(context.Background())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel(nil)
		return JobInfo{}, ErrShuttingDown
	}
	for _, existing := range s.order {
		if existing.fp != fp {
			continue
		}
		existing.mu.Lock()
		terminal := existing.state.Terminal()
		existing.mu.Unlock()
		// A cancelled job counts as terminal here even before its
		// in-flight cell drains: cancel-then-resubmit is the documented
		// resume flow, and it must get a fresh job, not the dying one.
		if !terminal && existing.ctx.Err() == nil {
			// The duplicate's priority still counts: resubmitting a
			// queued spec at higher priority expedites the shared job
			// (priority only ever rises — a low-priority duplicate
			// cannot demote work someone already paid more for).
			if priority > existing.priority {
				existing.mu.Lock()
				existing.priority = priority
				existing.mu.Unlock()
			}
			s.mu.Unlock()
			cancel(nil)
			return existing.info(), nil
		}
	}
	s.nextSeq++
	j := &job{
		id:       fmt.Sprintf("job-%d", s.nextSeq),
		name:     name,
		priority: priority,
		seq:      s.nextSeq,
		spec:     spec,
		fp:       fp,
		total:    len(jobs),
		ctx:      ctx,
		cancel:   cancel,
		trace:    obs.NewTraceLimit(maxRetainedTraceCells),
		state:    StateQueued,
		changed:  make(chan struct{}),
		sub:      time.Now().UTC(),
	}
	j.mu.Lock()
	j.append(Event{Type: "state", State: StateQueued})
	j.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.queue = append(s.queue, j)
	s.pruneLocked()
	s.dispatchLocked()
	s.mu.Unlock()
	return j.info(), nil
}

// pruneLocked evicts the oldest terminal jobs once more than `retain`
// of them have accumulated (caller holds s.mu), bounding the daemon's
// memory across weeks of recurring submissions: a terminal job retains
// its full event log and folded outcome until evicted. The cap counts
// finished jobs only — live jobs neither count against it nor are ever
// evicted, so a deep queue backlog cannot push a just-completed job
// (and its not-yet-fetched result) out from under its client. An
// evicted job's ID becomes a 404; its cells live on in the cache.
func (s *Scheduler) pruneLocked() {
	terminal := 0
	for _, j := range s.order {
		j.mu.Lock()
		t := j.state.Terminal()
		j.mu.Unlock()
		if t {
			terminal++
		}
	}
	for terminal > s.retain {
		for i, j := range s.order {
			j.mu.Lock()
			t := j.state.Terminal()
			j.mu.Unlock()
			if t {
				s.order = append(s.order[:i], s.order[i+1:]...)
				delete(s.jobs, j.id)
				terminal--
				break
			}
		}
	}
}

// dispatchLocked admits queued jobs while active slots remain (caller
// holds s.mu). Pop order: highest priority first, FIFO within it.
func (s *Scheduler) dispatchLocked() {
	for !s.closed && s.active < s.maxActive && len(s.queue) > 0 {
		best := 0
		for i, j := range s.queue[1:] {
			if j.priority > s.queue[best].priority ||
				(j.priority == s.queue[best].priority && j.seq < s.queue[best].seq) {
				best = i + 1
			}
		}
		j := s.queue[best]
		s.queue = append(s.queue[:best], s.queue[best+1:]...)
		s.active++
		s.wg.Add(1)
		go s.run(j)
	}
}

// run executes one admitted job to a terminal state, then admits the
// next queued one.
func (s *Scheduler) run(j *job) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		s.active--
		s.pruneLocked() // this job just turned terminal; enforce retention
		s.dispatchLocked()
		s.mu.Unlock()
	}()

	now := time.Now().UTC()
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued, between pop and here
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = &now
	j.append(Event{Type: "state", State: StateRunning})
	j.mu.Unlock()

	base := s.sim
	if base == nil {
		base = sim.Run
	}
	// Cells contend for the shared worker slots only when they actually
	// compute: the slot is taken inside the cache's compute callback, so
	// cache hits (and cells deduplicated onto another job's computation)
	// never occupy a worker.
	slotted := func(cfg sim.Config) (sim.Result, error) {
		select {
		case s.slots <- struct{}{}:
		case <-j.ctx.Done():
			return sim.Result{}, context.Cause(j.ctx)
		}
		defer func() { <-s.slots }()
		return base(cfg)
	}
	// The recorded variant: same slot gating, but a cache miss runs with
	// the cell's flight recorder attached so the job's trace carries
	// sim-internal counters and phases. An injected test runner (s.sim)
	// runs unrecorded — the campaign engine still stamps the cell's
	// spans around it.
	slottedRec := func(cfg sim.Config, rec *obs.Recorder) (sim.Result, error) {
		select {
		case s.slots <- struct{}{}:
		case <-j.ctx.Done():
			return sim.Result{}, context.Cause(j.ctx)
		}
		defer func() { <-s.slots }()
		if s.sim != nil {
			return s.sim(cfg)
		}
		return sim.RunRecorded(cfg, rec)
	}

	eng := &campaign.Engine{
		Store: s.store,
		// The engine's pool may outnumber the global slots; excess
		// goroutines just block in slotted, and the shared bound holds.
		Workers:     s.workers,
		Resume:      true, // re-submitted specs report prior progress
		Sim:         slotted,
		Trace:       j.trace,
		SimRecorded: slottedRec,
		Observe: func(cfg sim.Config) {
			s.cellsDone.Add(1)
			key := cache.Key(cfg)
			j.mu.Lock()
			j.done++
			j.append(Event{Type: "cell", Label: campaign.CellLabel(cfg), Key: key, Done: j.done})
			j.mu.Unlock()
		},
	}
	out, err := eng.RunCtx(j.ctx, j.spec)

	end := time.Now().UTC()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = &end
	switch {
	case err == nil:
		j.state = StateDone
		j.outcome = out
		j.resumed = out.Resumed
		j.append(Event{Type: "state", State: StateDone, Done: j.done})
	case j.ctx.Err() != nil:
		j.state = StateCanceled
		j.err = context.Cause(j.ctx)
		j.append(Event{Type: "state", State: StateCanceled, Done: j.done, Error: j.err.Error()})
	default:
		j.state = StateFailed
		j.err = err
		j.append(Event{Type: "state", State: StateFailed, Done: j.done, Error: err.Error()})
	}
	j.compactLocked()
}

// Cancel stops a job: a queued job terminates immediately, a running
// one stops dispatching cells and returns within one cell's latency.
// Its journal survives, so resubmitting the same spec resumes it.
func (s *Scheduler) Cancel(id, reason string) (JobInfo, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobInfo{}, errNotFound
	}
	// Remove from the admission queue if still waiting there.
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.mu.Unlock()

	// Wrap context.Canceled so the cache's singleflight classifies the
	// failure as a lifetime event, not a cell failure — an overlapping
	// job coalesced on one of this job's in-flight cells then retries
	// the cell instead of inheriting the cancellation.
	if reason == "" {
		reason = "by client"
	}
	cause := fmt.Errorf("canceled %s (%w)", reason, context.Canceled)
	j.cancel(cause)

	j.mu.Lock()
	if j.state == StateQueued { // never admitted; finalize here
		now := time.Now().UTC()
		j.state = StateCanceled
		j.err = cause
		j.finished = &now
		j.append(Event{Type: "state", State: StateCanceled, Error: cause.Error()})
	}
	j.mu.Unlock()
	return j.info(), nil
}

// Job returns one job's info.
func (s *Scheduler) Job(id string) (JobInfo, error) {
	if j := s.lookup(id); j != nil {
		return j.info(), nil
	}
	return JobInfo{}, errNotFound
}

// Jobs lists every job in submission order.
func (s *Scheduler) Jobs() []JobInfo {
	s.mu.Lock()
	order := append([]*job(nil), s.order...)
	s.mu.Unlock()
	infos := make([]JobInfo, len(order))
	for i, j := range order {
		infos[i] = j.info()
	}
	return infos
}

// Trace returns a job's flight-recorder trace (available from the
// moment the job is admitted; it grows as cells complete).
func (s *Scheduler) Trace(id string) (*obs.Trace, JobInfo, error) {
	j := s.lookup(id)
	if j == nil {
		return nil, JobInfo{}, errNotFound
	}
	return j.trace, j.info(), nil
}

// Outcome returns a completed job's folded figures.
func (s *Scheduler) Outcome(id string) (*campaign.Outcome, JobInfo, error) {
	j := s.lookup(id)
	if j == nil {
		return nil, JobInfo{}, errNotFound
	}
	j.mu.Lock()
	out := j.outcome
	j.mu.Unlock()
	return out, j.info(), nil
}

// Events returns the job's events with Seq >= from plus a channel that
// is closed when more arrive (or nil if the job is terminal, so no
// more ever will). Seqs may have gaps after a terminal job's large
// cell log was compacted — callers follow Seq, not positions.
func (s *Scheduler) Events(id string, from int) ([]Event, <-chan struct{}, error) {
	j := s.lookup(id)
	if j == nil {
		return nil, nil, errNotFound
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	for _, ev := range j.events {
		if ev.Seq >= from {
			evs = append(evs, ev)
		}
	}
	if j.state.Terminal() {
		// The terminal event is appended in the same critical section
		// that sets the state, so a terminal job's log is complete.
		return evs, nil, nil
	}
	return evs, j.changed, nil
}

// lookup finds a job by ID.
func (s *Scheduler) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// queueDepth and activeJobs are metrics reads.
func (s *Scheduler) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// stateCounts tallies jobs per state.
func (s *Scheduler) stateCounts() map[State]int {
	counts := map[State]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCanceled: 0,
	}
	for _, inf := range s.Jobs() {
		counts[inf.State]++
	}
	return counts
}

// busyWorkers is the number of worker slots currently computing cells.
func (s *Scheduler) busyWorkers() int { return len(s.slots) }

// Shutdown stops admission, cancels every non-terminal job (each
// returns within one cell's latency, journal intact for resume), and
// waits for all of them — or for ctx, whichever first.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	all := append([]*job(nil), s.order...)
	s.queue = nil
	s.mu.Unlock()

	cause := fmt.Errorf("server shutting down (%w)", context.Canceled)
	for _, j := range all {
		j.cancel(cause)
		j.mu.Lock()
		if j.state == StateQueued {
			now := time.Now().UTC()
			j.state = StateCanceled
			j.err = cause
			j.finished = &now
			j.append(Event{Type: "state", State: StateCanceled, Error: cause.Error()})
		}
		j.mu.Unlock()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown timed out: %w", context.Cause(ctx))
	}
}

// defaultWorkers mirrors the sweep engine's worker default.
func defaultWorkers() int { return exec.Workers(0) }

var errNotFound = errors.New("server: no such job")

// ErrShuttingDown is returned by Submit once graceful shutdown has
// begun; the HTTP layer maps it to 503 so clients retry against a
// restarted daemon instead of treating the spec as malformed.
var ErrShuttingDown = errors.New("server: scheduler is shut down")
