package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"svard/internal/obs"
)

// handleHealthz is the liveness/readiness probe: cheap, allocation-light,
// and truthful — it reports the scheduler's aggregate state so an
// orchestrator (or a curl) sees queue pressure at a glance.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := s.sched.stateCounts()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.start).Seconds()),
		"queued":         counts[StateQueued],
		"running":        counts[StateRunning],
		"workers":        s.sched.workers,
		"workers_busy":   s.sched.busyWorkers(),
	})
}

// handleMetrics renders Prometheus text exposition format (version
// 0.0.4, the plain-text scrape format every Prometheus server accepts)
// without taking a client dependency: the counters are all simple
// atomics and gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.store.Stats()
	counts := s.sched.stateCounts()
	uptime := time.Since(s.start).Seconds()
	cells := s.sched.cellsDone.Load()
	rate := 0.0
	if uptime > 0 {
		rate = float64(cells) / uptime
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	m("# HELP svard_cache_hits_total Lookups served without recomputing, by layer.")
	m("# TYPE svard_cache_hits_total counter")
	m(`svard_cache_hits_total{layer="mem"} %d`, st.MemHits)
	m(`svard_cache_hits_total{layer="disk"} %d`, st.DiskHits)
	m(`svard_cache_hits_total{layer="dedup"} %d`, st.Deduped)
	m(`svard_cache_hits_total{layer="remote"} %d`, st.RemoteHits)
	m("# HELP svard_cache_misses_total Lookups that computed a fresh cell.")
	m("# TYPE svard_cache_misses_total counter")
	m("svard_cache_misses_total %d", st.Misses)
	m("# HELP svard_cache_remote_misses_total Remote object-store lookups that found nothing.")
	m("# TYPE svard_cache_remote_misses_total counter")
	m("svard_cache_remote_misses_total %d", st.RemoteMisses)
	m("# HELP svard_cache_remote_errors_total Remote object-store operations that failed (the store degraded to local compute).")
	m("# TYPE svard_cache_remote_errors_total counter")
	m("svard_cache_remote_errors_total %d", st.RemoteErrors)
	m("# HELP svard_cache_corrupt_total On-disk entries that failed to load and were recomputed.")
	m("# TYPE svard_cache_corrupt_total counter")
	m("svard_cache_corrupt_total %d", st.Corrupt)
	m("# HELP svard_cache_writes_total Entries persisted to disk.")
	m("# TYPE svard_cache_writes_total counter")
	m("svard_cache_writes_total %d", st.Writes)
	m("# HELP svard_cache_entries Entries currently on disk.")
	m("# TYPE svard_cache_entries gauge")
	m("svard_cache_entries %d", st.Entries)
	m("# HELP svard_cache_disk_bytes Bytes the on-disk entries occupy.")
	m("# TYPE svard_cache_disk_bytes gauge")
	m("svard_cache_disk_bytes %d", st.DiskBytes)

	m("# HELP svard_jobs Jobs by state.")
	m("# TYPE svard_jobs gauge")
	for _, state := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		m(`svard_jobs{state=%q} %d`, string(state), counts[state])
	}
	m("# HELP svard_queue_depth Jobs waiting for admission.")
	m("# TYPE svard_queue_depth gauge")
	m("svard_queue_depth %d", s.sched.queueDepth())
	m("# HELP svard_workers Configured shared worker slots.")
	m("# TYPE svard_workers gauge")
	m("svard_workers %d", s.sched.workers)
	m("# HELP svard_workers_busy Worker slots currently computing a cell.")
	m("# TYPE svard_workers_busy gauge")
	m("svard_workers_busy %d", s.sched.busyWorkers())

	m("# HELP svard_cells_completed_total Cells completed across all jobs (cache hits included).")
	m("# TYPE svard_cells_completed_total counter")
	m("svard_cells_completed_total %d", cells)
	m("# HELP svard_cells_per_second Completed cells per second of uptime (prefer rate() over svard_cells_completed_total for windows).")
	m("# TYPE svard_cells_per_second gauge")
	m("svard_cells_per_second %g", rate)
	m("# HELP svard_uptime_seconds Seconds since the service started.")
	m("# TYPE svard_uptime_seconds counter")
	m("svard_uptime_seconds %g", uptime)

	// Flight-recorder rollups: the full obs counter glossary summed
	// across all retained jobs, plus a compact per-job breakdown (the
	// full per-cell detail lives behind GET /api/v1/jobs/{id}/trace).
	rollups := s.sched.traceRollups()
	var agg obs.Counters
	for _, r := range rollups {
		agg.Add(r.totals)
	}
	aggMap := agg.Map()
	for _, info := range obs.Glossary() {
		name := "svard_obs_" + info.Name + "_total"
		m("# HELP %s %s (summed over retained jobs).", name, info.Help)
		m("# TYPE %s counter", name)
		m("%s %d", name, aggMap[info.Name])
	}
	m("# HELP svard_job_cells Cells per job by cache outcome.")
	m("# TYPE svard_job_cells gauge")
	m("# HELP svard_job_sim_ticks Simulated cycles actually ticked, per job.")
	m("# TYPE svard_job_sim_ticks gauge")
	m("# HELP svard_job_skipped_cycles Cycles elided by the event engine, per job.")
	m("# TYPE svard_job_skipped_cycles gauge")
	for _, r := range rollups {
		m(`svard_job_cells{id=%q,name=%q,outcome="computed"} %d`, r.info.ID, r.info.Name, r.totals.CellsComputed)
		m(`svard_job_cells{id=%q,name=%q,outcome="served"} %d`, r.info.ID, r.info.Name, r.totals.CellsServed)
		m(`svard_job_sim_ticks{id=%q,name=%q} %d`, r.info.ID, r.info.Name, r.totals.Ticks)
		m(`svard_job_skipped_cycles{id=%q,name=%q} %d`, r.info.ID, r.info.Name, r.totals.SkippedCycles)
	}

	// Go runtime gauges, so a scrape sees service health without a
	// client-library dependency.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m("# HELP go_goroutines Number of goroutines that currently exist.")
	m("# TYPE go_goroutines gauge")
	m("go_goroutines %d", runtime.NumGoroutine())
	m("# HELP go_heap_inuse_bytes Heap bytes in in-use spans.")
	m("# TYPE go_heap_inuse_bytes gauge")
	m("go_heap_inuse_bytes %d", ms.HeapInuse)
	m("# HELP go_gc_pause_seconds_total Cumulative stop-the-world GC pause time.")
	m("# TYPE go_gc_pause_seconds_total counter")
	m("go_gc_pause_seconds_total %g", float64(ms.PauseTotalNs)/1e9)
	m("# HELP go_gc_cycles_total Completed GC cycles.")
	m("# TYPE go_gc_cycles_total counter")
	m("go_gc_cycles_total %d", ms.NumGC)
}

// jobRollup pairs a job's identity with its flight-recorder totals.
type jobRollup struct {
	info   JobInfo
	totals obs.Counters
}

// traceRollups snapshots every retained job's counter totals in
// submission order.
func (s *Scheduler) traceRollups() []jobRollup {
	s.mu.Lock()
	order := append([]*job(nil), s.order...)
	s.mu.Unlock()
	out := make([]jobRollup, 0, len(order))
	for _, j := range order {
		out = append(out, jobRollup{info: j.info(), totals: j.trace.Totals()})
	}
	return out
}
