// End-to-end tests of the campaign service: a real HTTP stack
// (httptest) driven through the typed client, asserting the
// ISSUE-level guarantees — golden determinism over HTTP, exactly-once
// computation across overlapping concurrent jobs, prompt cancellation,
// and graceful shutdown that leaves journals resumable.
package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/client"
	"svard/internal/server"
	"svard/internal/sim"
	"svard/internal/temporal"
)

// fig12GoldenFile mirrors internal/sim's fixture layout.
type fig12GoldenFile struct {
	Base     sim.Config
	Mixes    [][]string
	NRHs     []float64
	Defenses []string
	Profiles []string
	Cells    []sim.Fig12Cell
}

func goldenSpec(t *testing.T) (campaign.Spec, []sim.Fig12Cell) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "sim", "testdata", "fig12_golden.json"))
	if err != nil {
		t.Fatalf("%v (generate with: go test ./internal/sim/ -run Golden -update)", err)
	}
	var g fig12GoldenFile
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	return campaign.Spec{
		Figures:  []string{campaign.Fig12},
		Base:     g.Base,
		Mixes:    g.Mixes,
		NRHs:     g.NRHs,
		Defenses: g.Defenses,
		Profiles: g.Profiles,
	}, g.Cells
}

// newService stands up a server over a store in dir and returns a
// client against an httptest listener.
func newService(t *testing.T, dir string, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	store, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	svc, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc, client.New(ts.URL)
}

// tinySpec is a 5-cell Fig. 12 campaign (1 baseline + 2 nRH x 2 Svärd)
// per nRH pair, for fake-sim tests.
func tinySpec(nrhs ...float64) campaign.Spec {
	if len(nrhs) == 0 {
		nrhs = []float64{64, 128}
	}
	base := sim.DefaultConfig()
	base.Cores = 2
	return campaign.Spec{
		Figures:  []string{campaign.Fig12},
		Base:     base,
		Mixes:    [][]string{{"mcf06", "lbm06"}},
		NRHs:     nrhs,
		Defenses: []string{"para"},
		Profiles: []string{"S0"},
	}
}

// fakeSim derives a deterministic result from the config without
// simulating anything.
func fakeSim(cfg sim.Config) (sim.Result, error) {
	ipc := make([]float64, cfg.Cores)
	for i := range ipc {
		ipc[i] = 1 + float64(i)*0.25 + cfg.NRH/1e6
	}
	return sim.Result{IPC: ipc, Cycles: 1000, Finished: true}, nil
}

// waitDone polls a job until its Done count reaches n (progress made
// server-side, journaled and observed).
func waitDone(t *testing.T, c *client.Client, id string, n int) server.JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Done >= n {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %d/%d done", id, info.Done, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func scrapeMetrics(t *testing.T, c *client.Client) string {
	t.Helper()
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServiceGoldenDeterminism is the tentpole acceptance criterion: a
// campaign submitted over HTTP — scheduled, pooled, cached, folded, and
// fetched back over the API — yields Fig. 12 cells bit-identical to the
// golden fixture a direct serial sim.RunFig12 recorded.
func TestServiceGoldenDeterminism(t *testing.T) {
	spec, golden := goldenSpec(t)
	_, c := newService(t, t.TempDir(), server.Config{Workers: 4})
	ctx := context.Background()

	info, err := c.Submit(ctx, spec, "golden", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != server.StateQueued && info.State != server.StateRunning {
		t.Fatalf("fresh job state = %s", info.State)
	}

	var cellEvents int
	final, err := c.Wait(ctx, info.ID, func(ev server.Event) error {
		if ev.Type == "cell" {
			cellEvents++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if cellEvents != info.Total || final.Done != info.Total {
		t.Errorf("progress stream reported %d cells, job done=%d, want %d", cellEvents, final.Done, info.Total)
	}

	res, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Fig12, golden) {
		t.Fatalf("cells served over HTTP differ from the golden fixture:\ngot  %+v\nwant %+v", res.Fig12, golden)
	}

	// Raw-cell endpoint: any job config's key resolves to the exact
	// result the simulator produced for it.
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	cfg := jobs[0].Config
	keyResp, err := c.Key(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if keyResp.Key != client.LocalKey(cfg) {
		t.Errorf("server key %s != local key %s", keyResp.Key, client.LocalKey(cfg))
	}
	if !keyResp.Cached {
		t.Error("completed campaign's cell not reported cached")
	}
	cell, err := c.Cell(ctx, keyResp.Key)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cell, direct) {
		t.Errorf("raw cell over HTTP differs from direct sim.Run:\ngot  %+v\nwant %+v", cell, direct)
	}
}

// TestCrossJobDedup: two clients concurrently submit overlapping specs;
// every shared cell computes exactly once, proven by per-key compute
// counters and the cache's miss accounting in /metrics.
func TestCrossJobDedup(t *testing.T) {
	var mu sync.Mutex
	computes := map[string]int{}
	slowCounting := func(cfg sim.Config) (sim.Result, error) {
		key := cache.Key(cfg)
		mu.Lock()
		computes[key]++
		mu.Unlock()
		time.Sleep(20 * time.Millisecond) // hold the overlap window open
		return fakeSim(cfg)
	}

	_, c := newService(t, t.TempDir(), server.Config{Workers: 4, MaxActiveJobs: 4, Sim: slowCounting})
	ctx := context.Background()

	// Specs share the baseline and the nrh=128 cells.
	specA, specB := tinySpec(64, 128), tinySpec(128, 256)
	jobsA, _ := specA.Jobs()
	jobsB, _ := specB.Jobs()
	uniq := map[string]bool{}
	for _, j := range append(jobsA, jobsB...) {
		uniq[cache.Key(j.Config)] = true
	}
	if len(uniq) >= len(jobsA)+len(jobsB) {
		t.Fatalf("test specs do not overlap: %d unique of %d total", len(uniq), len(jobsA)+len(jobsB))
	}

	infoA, err := c.Submit(ctx, specA, "client-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := c.Submit(ctx, specB, "client-b", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{infoA.ID, infoB.ID} {
		final, err := c.Wait(ctx, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != server.StateDone {
			t.Fatalf("job %s ended %s: %s", id, final.State, final.Error)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(computes) != len(uniq) {
		t.Errorf("computed %d distinct keys, want %d", len(computes), len(uniq))
	}
	for key, n := range computes {
		if n != 1 {
			t.Errorf("key %s computed %d times across overlapping jobs, want exactly 1", key[:8], n)
		}
	}
	// The cache counters in /metrics tell the same story: misses equal
	// the unique keys; every overlapping lookup was served as a hit.
	text := scrapeMetrics(t, c)
	if want := "svard_cache_misses_total " + strconv.Itoa(len(uniq)); !strings.Contains(text, want) {
		t.Errorf("metrics missing %q:\n%s", want, text)
	}
}

// TestDuplicateInFlightSubmitCoalesces: resubmitting a spec whose job
// is still in flight returns the same job instead of duplicating work;
// after completion the same spec starts a fresh job.
func TestDuplicateInFlightSubmitCoalesces(t *testing.T) {
	release := make(chan struct{})
	gated := func(cfg sim.Config) (sim.Result, error) {
		<-release
		return fakeSim(cfg)
	}
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, Sim: gated})
	ctx := context.Background()

	first, err := c.Submit(ctx, tinySpec(), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, tinySpec(), "b", 7)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Errorf("identical in-flight spec got a new job %s, want %s", second.ID, first.ID)
	}
	// The duplicate's higher priority escalates the shared job instead
	// of being silently dropped.
	if second.Priority != 7 {
		t.Errorf("coalesced submit priority = %d, want escalated to 7", second.Priority)
	}
	close(release)
	if _, err := c.Wait(ctx, first.ID, nil); err != nil {
		t.Fatal(err)
	}

	third, err := c.Submit(ctx, tinySpec(), "c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if third.ID == first.ID {
		t.Error("completed job was reused for a fresh submission")
	}
	if _, err := c.Wait(ctx, third.ID, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCancelRunningAndQueued: cancelling a running job returns within
// one cell's latency; cancelling a queued job terminates it without it
// ever running.
func TestCancelRunningAndQueued(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	gated := func(cfg sim.Config) (sim.Result, error) {
		started <- struct{}{}
		<-release
		return fakeSim(cfg)
	}
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, MaxActiveJobs: 1, Sim: gated})
	ctx := context.Background()

	running, err := c.Submit(ctx, tinySpec(64, 128), "running", 0)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(ctx, tinySpec(256, 512), "queued", 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started // first cell of the running job is in flight

	// The queued job dies immediately, having never simulated.
	qinfo, err := c.Cancel(ctx, queued.ID, "changed my mind")
	if err != nil {
		t.Fatal(err)
	}
	if qinfo.State != server.StateCanceled {
		t.Errorf("queued job state after cancel = %s", qinfo.State)
	}
	if qinfo.Done != 0 {
		t.Errorf("queued job completed %d cells", qinfo.Done)
	}

	// Cancel the running job, then let its in-flight cell finish: the
	// job must reach canceled without starting another cell.
	if _, err := c.Cancel(ctx, running.ID, "shutting down the experiment"); err != nil {
		t.Fatal(err)
	}
	close(release)
	final, err := c.Wait(ctx, running.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateCanceled {
		t.Fatalf("running job ended %s, want canceled", final.State)
	}
	if !strings.Contains(final.Error, "shutting down the experiment") {
		t.Errorf("cancel reason lost: %q", final.Error)
	}
	if n := len(started); n > 1 {
		t.Errorf("%d cells started on the cancelled job, want only the in-flight one", n)
	}
	// The result endpoint refuses a cancelled job.
	if _, err := c.Result(ctx, running.ID); err == nil {
		t.Error("result endpoint served a cancelled job")
	}
}

// TestCancelDoesNotPoisonOverlappingJob: job A and job B overlap on a
// cell; A registers the cell's singleflight but is still waiting for
// the one worker slot (held by a hog job) when a client cancels it. B,
// coalesced onto A's flight, must not inherit A's cancellation — it
// retries the cell itself and completes.
func TestCancelDoesNotPoisonOverlappingJob(t *testing.T) {
	hogStarted := make(chan struct{}, 1)
	gate := make(chan struct{})
	gated := func(cfg sim.Config) (sim.Result, error) {
		if cfg.Seed == 2 { // the hog's cells
			select {
			case hogStarted <- struct{}{}:
			default:
			}
			<-gate
		}
		return fakeSim(cfg)
	}
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, MaxActiveJobs: 3, Sim: gated})
	ctx := context.Background()

	hogSpec := tinySpec(64)
	hogSpec.Base.Seed = 2 // disjoint keys from A and B
	hog, err := c.Submit(ctx, hogSpec, "hog", 0)
	if err != nil {
		t.Fatal(err)
	}
	<-hogStarted // hog holds the only worker slot

	specA, specB := tinySpec(64, 128), tinySpec(128, 256) // share the baseline cell
	jobA, err := c.Submit(ctx, specA, "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // A registers the shared cell's flight, waits for a slot
	jobB, err := c.Submit(ctx, specB, "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // B coalesces onto A's flight

	if _, err := c.Cancel(ctx, jobA.ID, "client a left"); err != nil {
		t.Fatal(err)
	}
	close(gate) // hog drains, slot frees

	finalA, err := c.Wait(ctx, jobA.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if finalA.State != server.StateCanceled {
		t.Errorf("job A ended %s, want canceled", finalA.State)
	}
	for _, id := range []string{hog.ID, jobB.ID} {
		final, err := c.Wait(ctx, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != server.StateDone {
			t.Fatalf("job %s ended %s (%s), want done — a neighbour's cancellation leaked",
				id, final.State, final.Error)
		}
	}
}

// TestCancelThenResubmitGetsFreshJob: the documented resume flow —
// cancel a running job, resubmit the same spec — must yield a fresh
// job, not coalesce onto the dying one (whose state lags its
// cancellation by up to one cell's latency).
func TestCancelThenResubmitGetsFreshJob(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 64)
	gated := func(cfg sim.Config) (sim.Result, error) {
		started <- struct{}{}
		<-gate
		return fakeSim(cfg)
	}
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, Sim: gated})
	ctx := context.Background()

	first, err := c.Submit(ctx, tinySpec(), "first", 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started // first cell in flight
	if _, err := c.Cancel(ctx, first.ID, "restarting"); err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, tinySpec(), "second", 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID {
		t.Fatal("resubmit after cancel coalesced onto the dying job")
	}
	close(gate)
	if final, err := c.Wait(ctx, second.ID, nil); err != nil || final.State != server.StateDone {
		t.Fatalf("resubmitted job: state=%v err=%v", final.State, err)
	}
}

// TestTerminalJobRetention: beyond RetainJobs, the oldest finished jobs
// are evicted (404) so the daemon's memory stays bounded.
func TestTerminalJobRetention(t *testing.T) {
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, RetainJobs: 2, Sim: fakeSim})
	ctx := context.Background()

	var ids []string
	for _, nrh := range []float64{64, 128, 256} {
		info, err := c.Submit(ctx, tinySpec(nrh), "r", 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, info.ID, nil); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}

	// Eviction happens when the third job turns terminal, which the
	// client may observe slightly before the scheduler's bookkeeping
	// runs; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Job(ctx, ids[0]); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("oldest terminal job survived past the retention cap")
		}
		time.Sleep(2 * time.Millisecond)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Errorf("job table holds %d jobs, want 2 (RetainJobs)", len(jobs))
	}
	// The evicted job's cells still serve from the cache.
	specJobs, _ := tinySpec(64).Jobs()
	if _, err := c.Cell(ctx, client.LocalKey(specJobs[0].Config)); err != nil {
		t.Errorf("evicted job's cell no longer served: %v", err)
	}
}

// TestPriorityAdmission: with the single admission slot busy, a later
// high-priority submission is admitted before an earlier low-priority
// one.
func TestPriorityAdmission(t *testing.T) {
	release := make(chan struct{})
	admitted := make(chan struct{}, 1)
	gated := func(cfg sim.Config) (sim.Result, error) {
		select {
		case admitted <- struct{}{}:
		default:
		}
		<-release
		return fakeSim(cfg)
	}
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, MaxActiveJobs: 1, Sim: gated})
	ctx := context.Background()

	hog, err := c.Submit(ctx, tinySpec(64), "hog", 0)
	if err != nil {
		t.Fatal(err)
	}
	<-admitted // hog admitted and simulating

	low, err := c.Submit(ctx, tinySpec(128), "low", 0)
	if err != nil {
		t.Fatal(err)
	}
	high, err := c.Submit(ctx, tinySpec(256), "high", 5)
	if err != nil {
		t.Fatal(err)
	}

	close(release)
	for _, id := range []string{hog.ID, low.ID, high.ID} {
		final, err := c.Wait(ctx, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != server.StateDone {
			t.Fatalf("job %s ended %s: %s", id, final.State, final.Error)
		}
	}

	lowInfo, _ := c.Job(ctx, low.ID)
	highInfo, _ := c.Job(ctx, high.ID)
	if lowInfo.StartedAt == nil || highInfo.StartedAt == nil {
		t.Fatal("missing start times")
	}
	if highInfo.StartedAt.After(*lowInfo.StartedAt) {
		t.Errorf("high-priority job started %v, after low-priority %v",
			highInfo.StartedAt, lowInfo.StartedAt)
	}
}

// TestGracefulShutdownLeavesResumableJournal is the shutdown acceptance
// criterion: shutdown returns within one cell's latency of the
// in-flight cell, and a resubmission of the interrupted spec on a
// fresh service over the same cache directory resumes from the journal
// instead of recomputing.
func TestGracefulShutdownLeavesResumableJournal(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	block := make(chan struct{})
	gatedAfterFirst := func(cfg sim.Config) (sim.Result, error) {
		if calls.Add(1) > 1 {
			<-block // every cell after the first blocks until shutdown
		}
		return fakeSim(cfg)
	}

	svc, c := newService(t, dir, server.Config{Workers: 1, Sim: gatedAfterFirst})
	ctx := context.Background()
	spec := tinySpec(64, 128)

	info, err := c.Submit(ctx, spec, "interrupted", 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, info.ID, 1) // first cell journaled and observed

	done := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- svc.Shutdown(sctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown cancel the job context
	close(block)                      // the in-flight cell finishes
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	final, err := c.Job(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateCanceled {
		t.Fatalf("job after shutdown = %s, want canceled", final.State)
	}
	if final.Done == 0 {
		t.Error("no cells completed before shutdown; test gated too early")
	}

	// The journal survived under the cache dir.
	journals, err := filepath.Glob(filepath.Join(dir, "campaign-*.journal"))
	if err != nil || len(journals) == 0 {
		t.Fatalf("no campaign journal in %s after shutdown (err=%v)", dir, err)
	}

	// New submissions are refused after shutdown — with 503 (retryable
	// server state), not 400 (malformed request).
	if _, err := c.Submit(ctx, tinySpec(999), "late", 0); err == nil {
		t.Error("shut-down scheduler accepted a submission")
	} else if !strings.Contains(err.Error(), "503") {
		t.Errorf("shutdown submit error = %v, want 503", err)
	}

	// A fresh service over the same directory resumes the campaign:
	// cells completed before shutdown replay from journal + cache.
	var computes atomic.Int64
	counting := func(cfg sim.Config) (sim.Result, error) {
		computes.Add(1)
		return fakeSim(cfg)
	}
	_, c2 := newService(t, dir, server.Config{Workers: 1, Sim: counting})
	info2, err := c2.Submit(ctx, spec, "resumed", 0)
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c2.Wait(ctx, info2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != server.StateDone {
		t.Fatalf("resumed job ended %s: %s", final2.State, final2.Error)
	}
	res, err := c2.Result(ctx, info2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != final.Done {
		t.Errorf("resumed job reports %d journaled cells, interrupted run completed %d", res.Resumed, final.Done)
	}
	if got := computes.Load(); got != int64(info.Total-final.Done) {
		t.Errorf("resume recomputed %d cells, want %d (total %d - %d done before shutdown)",
			got, info.Total-final.Done, info.Total, final.Done)
	}
}

// TestEventStreamResumesFromOffset: ?from=N replays only the tail, so a
// reconnecting client does not re-observe completed cells.
func TestEventStreamResumesFromOffset(t *testing.T) {
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, Sim: fakeSim})
	ctx := context.Background()
	info, err := c.Submit(ctx, tinySpec(), "stream", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, info.ID, nil); err != nil {
		t.Fatal(err)
	}

	var all []server.Event
	if err := c.Events(ctx, info.ID, 0, func(ev server.Event) error {
		all = append(all, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// queued + running + N cells + done
	if want := info.Total + 3; len(all) != want {
		t.Fatalf("full stream has %d events, want %d", len(all), want)
	}
	for i, ev := range all {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	var tail []server.Event
	if err := c.Events(ctx, info.ID, 3, func(ev server.Event) error {
		tail = append(tail, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(all)-3 || tail[0].Seq != 3 {
		t.Fatalf("tail from=3: %d events starting at %d", len(tail), tail[0].Seq)
	}
}

// TestAPIErrors: the error paths speak JSON with useful statuses.
func TestAPIErrors(t *testing.T) {
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, Sim: fakeSim})
	ctx := context.Background()

	if _, err := c.Job(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job error = %v, want 404", err)
	}
	if _, err := c.Cancel(ctx, "job-999", ""); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("cancel unknown job = %v, want 404", err)
	}
	if _, err := c.Cell(ctx, strings.Repeat("ab", 32)); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing cell = %v, want 404", err)
	}

	bad := tinySpec()
	bad.Defenses = []string{"guardian"}
	if _, err := c.Submit(ctx, bad, "bad", 0); err == nil || !strings.Contains(err.Error(), "guardian") {
		t.Errorf("invalid spec error = %v, want defense named", err)
	}

	// An unknown memory backend is a 400 at submit, not a panic (or a
	// failed job) when the sweep later builds its machines.
	badBackend := tinySpec()
	badBackend.Backends = []string{"lpddr5"}
	if _, err := c.Submit(ctx, badBackend, "bad-backend", 0); err == nil ||
		!strings.Contains(err.Error(), "400") || !strings.Contains(err.Error(), "lpddr5") {
		t.Errorf("invalid backend error = %v, want 400 naming lpddr5", err)
	}

	// A malformed temporal process is a 400 at submit — never a panic in
	// a worker — for every way it can be malformed.
	for name, proc := range map[string]temporal.Spec{
		"zero-epoch":     {EpochCycles: 0, Drift: -0.05},
		"negative-sigma": {EpochCycles: 65536, Sigma: -1},
		"dip-above-one":  {EpochCycles: 65536, DipP: 2, DipFactor: 0.5},
	} {
		badTemporal := tinySpec()
		badTemporal.Figures = []string{campaign.Fig12}
		badTemporal.Temporal = &campaign.TemporalSpec{Process: proc}
		if _, err := c.Submit(ctx, badTemporal, "bad-temporal", 0); err == nil ||
			!strings.Contains(err.Error(), "400") || !strings.Contains(err.Error(), "temporal") {
			t.Errorf("%s: invalid temporal error = %v, want 400 naming temporal", name, err)
		}
	}

	// A running (non-done) job has no result yet: 409, not 200/404.
	gate := make(chan struct{})
	_, c2 := newService(t, t.TempDir(), server.Config{Workers: 1, Sim: func(cfg sim.Config) (sim.Result, error) {
		<-gate
		return fakeSim(cfg)
	}})
	info, err := c2.Submit(ctx, tinySpec(), "pending", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Result(ctx, info.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("pending result error = %v, want 409", err)
	}
	close(gate)
	if _, err := c2.Wait(ctx, info.ID, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCellKeyTraversalRejected: the cells endpoint must refuse anything
// that is not a well-formed cache key — PathValue decodes %2F, so an
// unvalidated key would walk filesystem paths outside the cache dir.
func TestCellKeyTraversalRejected(t *testing.T) {
	_, c := newService(t, t.TempDir(), server.Config{Workers: 1, Sim: fakeSim})
	for _, path := range []string{
		"/api/v1/cells/..%2F..%2F..%2Fetc%2Fpasswd",
		"/api/v1/cells/" + strings.Repeat("ZZ", 32), // right length, not hex
		"/api/v1/cells/abc",                         // too short
	} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestTerminalEventLogCompaction: a terminal job with a large cell log
// keeps only its state events (monotonic seqs, gaps allowed), so dead
// jobs do not hold thousands of events until eviction.
func TestTerminalEventLogCompaction(t *testing.T) {
	_, c := newService(t, t.TempDir(), server.Config{Workers: 4, Sim: fakeSim})
	ctx := context.Background()

	// > 1024 cells: 600 nRH values -> 1 baseline + 600*2 svard cells.
	nrhs := make([]float64, 600)
	for i := range nrhs {
		nrhs[i] = float64(1000 + i)
	}
	info, err := c.Submit(ctx, tinySpec(nrhs...), "big", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, info.ID, nil); err != nil {
		t.Fatal(err)
	}

	var evs []server.Event
	if err := c.Events(ctx, info.ID, 0, func(ev server.Event) error {
		evs = append(evs, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 { // queued, running, done — cell events compacted away
		t.Fatalf("terminal big job retains %d events, want 3 state events", len(evs))
	}
	last := evs[len(evs)-1]
	if last.State != server.StateDone || last.Done != info.Total {
		t.Errorf("terminal event = %+v, want done with %d cells", last, info.Total)
	}
	if last.Seq != info.Total+2 {
		t.Errorf("terminal seq = %d, want %d (numbering monotonic across compaction)", last.Seq, info.Total+2)
	}
}

// TestPopulationCampaignOverHTTP: a Monte Carlo population campaign
// rides the generic submit/schedule/result path end to end — the
// scheduler sizes it from Spec.Jobs, streams per-cell progress, and the
// result endpoint serves confidence bands instead of Fig. 12 cells.
func TestPopulationCampaignOverHTTP(t *testing.T) {
	base := sim.DefaultConfig()
	base.Cores = 2
	base.RowsPerBank = 2048
	base.CellsPerRow = 2048
	base.InstrPerCore = 8_000
	base.WarmupPerCore = 1_000
	spec := campaign.Spec{
		Figures:    []string{campaign.Fig12},
		Base:       base,
		Mixes:      [][]string{{"mcf06", "lbm06"}},
		NRHs:       []float64{64},
		Defenses:   []string{"para"},
		Population: &campaign.PopulationSpec{Seed: 7, Size: 2},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	_, c := newService(t, t.TempDir(), server.Config{Workers: 2})
	ctx := context.Background()
	info, err := c.Submit(ctx, spec, "population", 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Total != len(jobs) {
		t.Errorf("job sized at %d cells, want %d", info.Total, len(jobs))
	}
	final, err := c.Wait(ctx, info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}

	res, err := c.Result(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fig12) != 0 {
		t.Errorf("population campaign served %d Fig12 point cells", len(res.Fig12))
	}
	if len(res.Bands) != 2 { // 1 defense x 1 nRH x {NoSvard, Svard}
		t.Fatalf("bands = %d, want 2", len(res.Bands))
	}
	for _, b := range res.Bands {
		if b.Modules != spec.Population.Size {
			t.Errorf("%s: folded %d modules, want %d", b.Config, b.Modules, spec.Population.Size)
		}
		if !(b.WS.Min <= b.WS.P50 && b.WS.P50 <= b.WS.Max) {
			t.Errorf("%s: WS band unordered: %+v", b.Config, b.WS)
		}
	}
}

// TestHealthzAndMetrics: the observability endpoints expose the
// scheduler and cache counters the ISSUE names.
func TestHealthzAndMetrics(t *testing.T) {
	_, c := newService(t, t.TempDir(), server.Config{Workers: 2, Sim: fakeSim})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	info, err := c.Submit(ctx, tinySpec(), "metrics", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, info.ID, nil); err != nil {
		t.Fatal(err)
	}

	text := scrapeMetrics(t, c)
	n := strconv.Itoa(info.Total)
	for _, series := range []string{
		`svard_cache_hits_total{layer="mem"}`,
		`svard_cache_hits_total{layer="disk"}`,
		`svard_cache_hits_total{layer="dedup"}`,
		"svard_cache_misses_total " + n,
		"svard_cache_writes_total " + n,
		"svard_cache_entries " + n,
		"svard_cache_disk_bytes",
		`svard_jobs{state="done"} 1`,
		"svard_queue_depth 0",
		"svard_workers 2",
		"svard_cells_completed_total " + n,
		"svard_cells_per_second",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q:\n%s", series, text)
		}
	}
}
