// Package fabric is the distributed campaign layer: a coordinator that
// shards a campaign's cell set across registered svard-served workers
// using lease-based dispatch, then folds the figures locally from its
// own store — so the folded cells are bit-identical to a single-node
// run for ANY worker count, failure schedule, or cache state.
//
// The failure model is crash-stop workers over a flaky network:
//
//   - Each batch of cells is leased to one worker with a deadline.
//     Worker heartbeats renew their leases, so an alive-but-slow
//     worker keeps its work; a dead or partitioned one misses
//     heartbeats, its leases expire, and the cells are re-dispatched.
//   - Completions are attributed exactly once, first writer wins: a
//     re-dispatched cell that some worker already delivered is ignored
//     (stale), and a completion arriving under an EXPIRED lease is
//     accepted as Served, never Computed — so `Computed` can never
//     double-count a cell however races resolve.
//   - The coordinator doubles as the shared remote object store
//     (GET/PUT /api/v1/objects/{key}, speaking the cache's sealed
//     envelope bytes), so workers publish results as they compute and
//     serve each other's cells through their cache's Remote layer.
//   - Dispatch-phase completions are journaled through the campaign
//     journal; a restarted coordinator resumes instead of
//     re-dispatching finished cells.
//
// Correctness never depends on the bookkeeping: results live in the
// content-addressed cache, and the final fold replays the campaign
// engine over the warm store.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/client"
	"svard/internal/sim"
)

// Config sizes a Coordinator.
type Config struct {
	// Store is the coordinator's result cache: the backing of the
	// object-store endpoints, the source of the final fold, and the
	// journal's home (required).
	Store *cache.Store

	// Sim is the local fallback executor for cells no worker managed to
	// deliver within MaxCellAttempts lease generations (nil: sim.Run).
	// Tests inject counting runners.
	Sim sim.Runner

	// Workers bounds local parallelism (fallback computes and the final
	// fold; <= 0: GOMAXPROCS).
	Workers int

	// BatchSize is the number of cells per lease (<= 0: 16).
	BatchSize int

	// LeaseTTL is how long a dispatched batch stays owned without a
	// heartbeat renewing it (<= 0: 15s). Workers are considered live
	// while their last heartbeat is within one TTL.
	LeaseTTL time.Duration

	// HeartbeatEvery is the interval advertised to registering workers
	// (<= 0: LeaseTTL/3).
	HeartbeatEvery time.Duration

	// MinWorkers is how many live workers RunCtx waits for before
	// dispatching (<= 0: 1).
	MinWorkers int

	// MaxCellAttempts bounds dispatch generations per cell before the
	// coordinator computes it locally (<= 0: 3).
	MaxCellAttempts int

	// Retry shapes the per-worker-endpoint clients: bounded retries
	// with jittered backoff and a circuit breaker per worker. A zero
	// AttemptTimeout is replaced by none at all — a compute batch
	// legitimately runs for minutes.
	Retry client.Policy

	// Resume picks up the campaign journal from a previous interrupted
	// coordinator run of the same spec.
	Resume bool

	// Logf, when set, receives dispatch-plane progress lines.
	Logf func(format string, args ...any)
}

// DispatchStats is the fabric-plane accounting of one campaign run.
type DispatchStats struct {
	Workers       int // workers that held at least one lease
	Batches       int // leases issued
	Redispatched  int // cell re-dispatches (expiry, errors, lost results)
	ExpiredLeases int // leases expired by missed heartbeats
	Stale         int // completions that arrived after the cell was done
	AcceptedLate  int // cells accepted as Served from expired-lease completions
	LocalCells    int // cells the coordinator computed itself as last resort
}

func (d DispatchStats) String() string {
	return fmt.Sprintf("%d workers, %d batches; %d redispatched, %d leases expired, %d stale, %d accepted late, %d local",
		d.Workers, d.Batches, d.Redispatched, d.ExpiredLeases, d.Stale, d.AcceptedLate, d.LocalCells)
}

// Result is a fabric campaign's outcome: the folded figures (identical
// to a local run) plus the dispatch-plane accounting.
type Result struct {
	*campaign.Outcome
	Dispatch DispatchStats
}

// Coordinator shards campaigns across registered workers. Construct
// with New, serve Handler() so workers can register/heartbeat and
// exchange objects, and run campaigns with RunCtx (one at a time).
type Coordinator struct {
	cfg Config
	mux *http.ServeMux

	mu         sync.Mutex
	workers    map[string]*worker
	nextWorker int64
	nextLease  int64
	run        *runState

	objectsServed atomic.Uint64
	objectsStored atomic.Uint64
}

// worker is one registered svard-served endpoint.
type worker struct {
	id       string
	name     string
	url      string
	client   *client.Client
	lastBeat time.Time
	inflight int // outstanding batches (capacity 1)
	leases   map[int64]*lease
	leased   bool // held a lease during the current run (DispatchStats.Workers)
}

// lease is one batch of cells owned by one worker until deadline.
type lease struct {
	id       int64
	w        *worker
	cells    []int // indices into runState.jobs
	deadline time.Time
	expired  bool
}

// runState is the dispatch-plane state of the campaign in flight.
type runState struct {
	ctx      context.Context
	jobs     []sim.Job
	keys     []string
	done     []bool
	attempts []int
	pending  []int
	journal  *campaign.Journal

	remaining int
	resumed   int
	computed  int
	served    int
	stats     DispatchStats

	localSem chan struct{}

	failErr  error
	finished chan struct{}
	ended    bool
}

// New builds a coordinator. The store is required.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, errors.New("fabric: config has no result store")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = cfg.LeaseTTL / 3
	}
	if cfg.MinWorkers <= 0 {
		cfg.MinWorkers = 1
	}
	if cfg.MaxCellAttempts <= 0 {
		cfg.MaxCellAttempts = 3
	}
	if cfg.Retry.AttemptTimeout == 0 {
		// A compute batch legitimately runs for minutes; lease expiry,
		// not a per-attempt stopwatch, is the liveness mechanism.
		cfg.Retry.AttemptTimeout = -1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{cfg: cfg, workers: make(map[string]*worker), mux: http.NewServeMux()}
	c.mux.HandleFunc("POST /api/v1/workers", c.handleRegister)
	c.mux.HandleFunc("POST /api/v1/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("GET /api/v1/objects/{key}", c.handleObjectGet)
	c.mux.HandleFunc("PUT /api/v1/objects/{key}", c.handleObjectPut)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	return c, nil
}

// Handler returns the coordinator's HTTP surface: worker registration
// and heartbeats, the shared object store, and a health probe.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// LiveWorkers counts workers whose last heartbeat is within one lease
// TTL.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked(time.Now())
}

func (c *Coordinator) liveLocked(now time.Time) int {
	n := 0
	for _, w := range c.workers {
		if now.Sub(w.lastBeat) <= c.cfg.LeaseTTL {
			n++
		}
	}
	return n
}

// RunCtx shards one campaign across the registered workers and returns
// the folded outcome, bit-identical to a local run. It waits for
// MinWorkers live workers, dispatches lease-by-lease until every cell
// is journaled, then folds locally over the warm store. Exactly one
// campaign runs at a time.
func (c *Coordinator) RunCtx(ctx context.Context, spec campaign.Spec) (*Result, error) {
	spec = spec.Normalized()
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	fp := spec.Fingerprint()
	journal, err := campaign.OpenJournal(c.cfg.Store.Dir(), fp, len(jobs), c.cfg.Resume)
	if err != nil {
		return nil, err
	}

	run := &runState{
		ctx:      ctx,
		jobs:     jobs,
		keys:     make([]string, len(jobs)),
		done:     make([]bool, len(jobs)),
		attempts: make([]int, len(jobs)),
		journal:  journal,
		localSem: make(chan struct{}, maxInt(1, c.cfg.Workers)),
		finished: make(chan struct{}),
	}
	for i, j := range jobs {
		run.keys[i] = cache.Key(j.Config)
		// A journaled cell whose result is still in the store is done
		// before dispatch starts; a journaled cell the store lost is
		// re-dispatched (the journal is accounting, the cache is truth).
		if journal.Seen(run.keys[i]) && c.cfg.Store.Contains(run.keys[i]) {
			run.done[i] = true
			run.resumed++
			continue
		}
		run.pending = append(run.pending, i)
	}
	run.remaining = len(run.pending)

	c.mu.Lock()
	if c.run != nil {
		c.mu.Unlock()
		journal.Close()
		return nil, errors.New("fabric: a campaign is already running")
	}
	c.run = run
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		// A batch completion landing after this point must find the run
		// closed, or it would requeue and re-dispatch on a dead run.
		run.ended = true
		c.run = nil
		for _, w := range c.workers {
			w.leases = make(map[int64]*lease)
			w.inflight = 0
			w.leased = false
		}
		c.mu.Unlock()
		journal.Close()
	}()

	c.cfg.Logf("fabric: campaign %s: %d cells (%d resumed), batch=%d lease=%s",
		fp[:8], len(jobs), run.resumed, c.cfg.BatchSize, c.cfg.LeaseTTL)

	if run.remaining > 0 {
		if err := c.waitForWorkers(ctx, run); err != nil {
			return nil, err
		}
		tick := time.NewTicker(maxDur(c.cfg.LeaseTTL/4, 10*time.Millisecond))
		defer tick.Stop()
		c.mu.Lock()
		c.dispatchLocked(run)
		c.mu.Unlock()
	loop:
		for {
			select {
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			case <-run.finished:
				break loop
			case now := <-tick.C:
				c.mu.Lock()
				c.expireLocked(run, now)
				c.dispatchLocked(run)
				c.mu.Unlock()
			}
		}
		c.mu.Lock()
		failErr := run.failErr
		c.mu.Unlock()
		if failErr != nil {
			return nil, failErr
		}
	}

	// Fold locally over the warm store: every cell is a cache hit, so
	// the folded figures are bit-identical to a single-node run. The
	// engine's own attribution is superseded by the dispatch plane's
	// (its compute callback only fires if the store lost an entry
	// between dispatch and fold — a recompute, not a new attribution).
	eng := &campaign.Engine{Store: c.cfg.Store, Workers: c.cfg.Workers, Resume: true, Sim: c.cfg.Sim}
	out, err := eng.RunCtx(ctx, spec)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	out.Resumed = run.resumed
	out.Computed = run.computed
	out.Served = out.Total - run.resumed - run.computed
	stats := run.stats
	c.mu.Unlock()
	c.cfg.Logf("fabric: campaign %s done: computed=%d served=%d resumed=%d (%s)",
		fp[:8], out.Computed, out.Served, out.Resumed, stats)
	return &Result{Outcome: out, Dispatch: stats}, nil
}

// waitForWorkers blocks until MinWorkers live workers are registered —
// or the run already finished, because registrations and heartbeats
// dispatch opportunistically, so a fleet that shrinks below the gate
// after completing all the work must not wedge the campaign.
func (c *Coordinator) waitForWorkers(ctx context.Context, run *runState) error {
	for {
		c.mu.Lock()
		live := c.liveLocked(time.Now())
		ended := run.ended
		c.mu.Unlock()
		if live >= c.cfg.MinWorkers || ended {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fabric: waiting for %d workers: %w", c.cfg.MinWorkers, context.Cause(ctx))
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// dispatchLocked hands pending cells to idle live workers, one
// outstanding batch per worker (caller holds c.mu).
func (c *Coordinator) dispatchLocked(run *runState) {
	if run.ended {
		return
	}
	now := time.Now()
	for _, w := range c.workers {
		if len(run.pending) == 0 {
			return
		}
		if w.inflight > 0 || now.Sub(w.lastBeat) > c.cfg.LeaseTTL {
			continue
		}
		// Pop up to a batch of cells, skipping any a stale delivery
		// finished while they sat requeued.
		var cells []int
		for len(cells) < c.cfg.BatchSize && len(run.pending) > 0 {
			idx := run.pending[0]
			run.pending = run.pending[1:]
			if !run.done[idx] {
				cells = append(cells, idx)
			}
		}
		if len(cells) == 0 {
			return
		}
		c.nextLease++
		l := &lease{id: c.nextLease, w: w, cells: cells, deadline: now.Add(c.cfg.LeaseTTL)}
		w.inflight++
		w.leases[l.id] = l
		if !w.leased {
			w.leased = true
			run.stats.Workers++
		}
		run.stats.Batches++
		cfgs := make([]sim.Config, len(cells))
		for i, idx := range cells {
			cfgs[i] = run.jobs[idx].Config
		}
		c.cfg.Logf("fabric: lease %d -> %s: %d cells", l.id, w.name, len(cells))
		go c.sendBatch(run, l, cfgs)
	}
}

// expireLocked requeues the cells of leases whose deadline passed
// without a heartbeat renewal (caller holds c.mu). The in-flight HTTP
// call is NOT cancelled: if the worker is merely slow, its eventual
// completion is accepted as Served.
func (c *Coordinator) expireLocked(run *runState, now time.Time) {
	for _, w := range c.workers {
		for id, l := range w.leases {
			if l.expired || now.Before(l.deadline) {
				continue
			}
			l.expired = true
			delete(w.leases, id)
			run.stats.ExpiredLeases++
			c.cfg.Logf("fabric: lease %d (%s) expired; requeueing", l.id, w.name)
			for _, idx := range l.cells {
				if !run.done[idx] {
					c.requeueLocked(run, idx)
				}
			}
		}
	}
}

// requeueLocked puts a cell back in the queue, or escalates it to a
// local compute once its dispatch attempts are exhausted (caller holds
// c.mu).
func (c *Coordinator) requeueLocked(run *runState, idx int) {
	run.stats.Redispatched++
	run.attempts[idx]++
	if run.attempts[idx] >= c.cfg.MaxCellAttempts {
		run.stats.LocalCells++
		c.cfg.Logf("fabric: cell %s: %d dispatch attempts; computing locally",
			run.keys[idx][:8], run.attempts[idx])
		go c.computeLocal(run, idx)
		return
	}
	run.pending = append(run.pending, idx)
}

// sendBatch pushes one leased batch to its worker and feeds the
// response back into the dispatch plane.
func (c *Coordinator) sendBatch(run *runState, l *lease, cfgs []sim.Config) {
	resp, err := l.w.client.Compute(run.ctx, cfgs)
	if err != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		if l.w.inflight > 0 {
			l.w.inflight--
		}
		if run.ended {
			return
		}
		c.cfg.Logf("fabric: lease %d (%s) failed: %v", l.id, l.w.name, err)
		// A failed send (retries exhausted or breaker open) is evidence
		// of death: demote the worker until its next heartbeat proves
		// otherwise, so its cells move to live workers instead of
		// ping-ponging back to the corpse.
		l.w.lastBeat = time.Time{}
		if !l.expired {
			l.expired = true
			delete(l.w.leases, l.id)
			for _, idx := range l.cells {
				if !run.done[idx] {
					c.requeueLocked(run, idx)
				}
			}
		}
		c.dispatchLocked(run)
		return
	}

	// Make every delivered result durable in the coordinator's store
	// BEFORE any accounting: a cell is only ever journaled as done once
	// its bytes are local truth. Workers publish through the remote
	// cache as they compute, so most of these are already present.
	delivered := make([]bool, len(l.cells))
	for i, cell := range resp.Cells {
		if i >= len(l.cells) || cell.Error != "" {
			continue
		}
		if c.cfg.Store.Contains(cell.Key) {
			delivered[i] = true
			continue
		}
		res, err := l.w.client.Cell(run.ctx, cell.Key)
		if err != nil {
			c.cfg.Logf("fabric: lease %d: fetching cell %s from %s: %v", l.id, cell.Key[:8], l.w.name, err)
			continue
		}
		if c.cfg.Store.Put(cell.Key, res) == nil {
			delivered[i] = true
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if l.w.inflight > 0 {
		l.w.inflight--
	}
	if run.ended {
		return
	}
	stale := l.expired
	if !stale {
		delete(l.w.leases, l.id)
	}
	for i, cell := range resp.Cells {
		if i >= len(l.cells) {
			break
		}
		idx := l.cells[i]
		switch {
		case run.done[idx]:
			// First completion won; this one changes nothing.
			run.stats.Stale++
		case cell.Error != "":
			c.cfg.Logf("fabric: cell %s failed on %s: %s", run.keys[idx][:8], l.w.name, cell.Error)
			c.requeueLocked(run, idx)
		case !delivered[i]:
			// The worker claims completion but the result never became
			// local truth; treat as undone.
			c.requeueLocked(run, idx)
		case stale:
			// Completion under an expired lease: the cell may have been
			// re-dispatched concurrently, so it must never count as
			// Computed twice — accept it, attribute Served.
			run.stats.AcceptedLate++
			c.completeLocked(run, idx, false)
		default:
			c.completeLocked(run, idx, cell.Computed)
		}
	}
	c.dispatchLocked(run)
}

// completeLocked attributes one finished cell exactly once and
// journals it (caller holds c.mu; the result is already in the store).
func (c *Coordinator) completeLocked(run *runState, idx int, computed bool) {
	run.done[idx] = true
	run.remaining--
	if computed {
		run.computed++
	} else {
		run.served++
	}
	run.journal.Done(run.keys[idx])
	if run.remaining == 0 && !run.ended {
		run.ended = true
		close(run.finished)
	}
}

// computeLocal is the last-resort path: the coordinator runs the cell
// through its own store and simulator.
func (c *Coordinator) computeLocal(run *runState, idx int) {
	select {
	case run.localSem <- struct{}{}:
	case <-run.ctx.Done():
		return
	}
	defer func() { <-run.localSem }()

	base := c.cfg.Sim
	if base == nil {
		base = sim.Run
	}
	computed := false
	_, err := c.cfg.Store.GetOrCompute(run.jobs[idx].Config, func(cfg sim.Config) (sim.Result, error) {
		computed = true
		return base(cfg)
	})

	c.mu.Lock()
	defer c.mu.Unlock()
	if run.ended {
		return
	}
	if run.done[idx] {
		run.stats.Stale++
		return
	}
	if err != nil {
		// Local compute was the end of the line for this cell: the
		// campaign fails rather than silently losing a cell.
		run.failErr = fmt.Errorf("fabric: cell %s failed after %d dispatch attempts and a local compute: %w",
			run.keys[idx][:8], run.attempts[idx], err)
		run.ended = true
		close(run.finished)
		return
	}
	c.completeLocked(run, idx, computed)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// --- HTTP surface -----------------------------------------------------

// RegisterRequest is the body of POST /api/v1/workers.
type RegisterRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"` // the worker's svard-served base URL, reachable from the coordinator
}

// RegisterResponse tells the worker its identity and cadence.
type RegisterResponse struct {
	ID               string  `json:"id"`
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
	LeaseSeconds     float64 `json:"lease_seconds"`
}

// HeartbeatRequest is the body of POST /api/v1/heartbeat. An unknown
// ID (coordinator restarted, worker evicted) is a 404: the worker
// re-registers.
type HeartbeatRequest struct {
	ID string `json:"id"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, errors.New("register request has no url"))
		return
	}
	now := time.Now()
	c.mu.Lock()
	// A re-registration of the same endpoint supersedes the old entry;
	// its undone leased cells go back in the queue.
	for id, old := range c.workers {
		if old.url != req.URL {
			continue
		}
		for lid, l := range old.leases {
			l.expired = true
			delete(old.leases, lid)
			if c.run != nil {
				for _, idx := range l.cells {
					if !c.run.done[idx] {
						c.requeueLocked(c.run, idx)
					}
				}
			}
		}
		delete(c.workers, id)
	}
	c.nextWorker++
	wk := &worker{
		id:       fmt.Sprintf("worker-%d", c.nextWorker),
		name:     req.Name,
		url:      req.URL,
		client:   client.NewResilient(req.URL, c.cfg.Retry),
		lastBeat: now,
		leases:   make(map[int64]*lease),
	}
	if wk.name == "" {
		wk.name = wk.id
	}
	c.workers[wk.id] = wk
	if c.run != nil {
		c.dispatchLocked(c.run)
	}
	c.mu.Unlock()
	c.cfg.Logf("fabric: worker %s (%s) registered at %s", wk.name, wk.id, wk.url)
	writeJSON(w, http.StatusOK, RegisterResponse{
		ID:               wk.id,
		HeartbeatSeconds: c.cfg.HeartbeatEvery.Seconds(),
		LeaseSeconds:     c.cfg.LeaseTTL.Seconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	now := time.Now()
	c.mu.Lock()
	wk, ok := c.workers[req.ID]
	if ok {
		wk.lastBeat = now
		// The beat renews every live lease the worker holds: an
		// alive-but-slow worker keeps its cells.
		for _, l := range wk.leases {
			l.deadline = now.Add(c.cfg.LeaseTTL)
		}
		if c.run != nil {
			c.dispatchLocked(c.run)
		}
	}
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown worker %q (re-register)", req.ID))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleObjectGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !wellFormedKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed object key %q", key))
		return
	}
	res, ok := c.cfg.Store.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no object %s", key))
		return
	}
	b, err := cache.Seal(key, res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	c.objectsServed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (c *Coordinator) handleObjectPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !wellFormedKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed object key %q", key))
		return
	}
	b, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading object body: %w", err))
		return
	}
	res, err := cache.OpenEnvelope(key, b)
	if err != nil {
		// The envelope failed verification: reject it so a corrupt or
		// truncated upload can never poison the shared store.
		writeError(w, http.StatusUnprocessableEntity, fmt.Errorf("object %s rejected: %w", key[:8], err))
		return
	}
	if err := c.cfg.Store.Put(key, res); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	c.objectsStored.Add(1)
	writeJSON(w, http.StatusNoContent, nil)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	total := len(c.workers)
	live := c.liveLocked(time.Now())
	running := c.run != nil
	var remaining int
	if c.run != nil {
		remaining = c.run.remaining
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"workers":         total,
		"workers_live":    live,
		"campaign":        running,
		"cells_remaining": remaining,
		"objects_served":  c.objectsServed.Load(),
		"objects_stored":  c.objectsStored.Load(),
	})
}

// wellFormedKey matches the exact shape cache.Key produces: 64
// lowercase hex characters.
func wellFormedKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, ch := range key {
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}
