// Tests of the distributed campaign fabric against real HTTP stacks:
// exactly-once attribution across worker failures, lease expiry and
// stale completions, journal-based coordinator restart, and the chaos
// end-to-end — a golden sweep sharded across two workers staying
// byte-identical while one worker is killed mid-campaign and the
// remote cache serves a 5xx/truncated/corrupt mix.
package fabric_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/client"
	"svard/internal/fabric"
	"svard/internal/faultinject"
	"svard/internal/server"
	"svard/internal/sim"
)

// fastRetry keeps test-time backoff in the milliseconds.
func fastRetry() client.Policy {
	return client.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 1}
}

// fakeSim derives a deterministic result from the config without
// simulating anything (mirrors the server test harness).
func fakeSim(cfg sim.Config) (sim.Result, error) {
	ipc := make([]float64, cfg.Cores)
	for i := range ipc {
		ipc[i] = 1 + float64(i)*0.25 + cfg.NRH/1e6
	}
	return sim.Result{IPC: ipc, Cycles: 1000, Finished: true}, nil
}

// tinySpec is the 5-cell Fig. 12 campaign the server tests use.
func tinySpec(nrhs ...float64) campaign.Spec {
	if len(nrhs) == 0 {
		nrhs = []float64{64, 128}
	}
	base := sim.DefaultConfig()
	base.Cores = 2
	return campaign.Spec{
		Figures:  []string{campaign.Fig12},
		Base:     base,
		Mixes:    [][]string{{"mcf06", "lbm06"}},
		NRHs:     nrhs,
		Defenses: []string{"para"},
		Profiles: []string{"S0"},
	}
}

// fig12GoldenFile mirrors internal/sim's fixture layout.
type fig12GoldenFile struct {
	Base     sim.Config
	Mixes    [][]string
	NRHs     []float64
	Defenses []string
	Profiles []string
	Cells    []sim.Fig12Cell
}

func goldenSpec(t *testing.T) (campaign.Spec, []sim.Fig12Cell) {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "sim", "testdata", "fig12_golden.json"))
	if err != nil {
		t.Fatalf("%v (generate with: go test ./internal/sim/ -run Golden -update)", err)
	}
	var g fig12GoldenFile
	if err := json.Unmarshal(b, &g); err != nil {
		t.Fatal(err)
	}
	return campaign.Spec{
		Figures:  []string{campaign.Fig12},
		Base:     g.Base,
		Mixes:    g.Mixes,
		NRHs:     g.NRHs,
		Defenses: g.Defenses,
		Profiles: g.Profiles,
	}, g.Cells
}

// newCoordinator stands up a coordinator over a fresh store and serves
// its handler, returning the coordinator and its base URL.
func newCoordinator(t *testing.T, dir string, cfg fabric.Config) (*fabric.Coordinator, string) {
	t.Helper()
	store, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = fastRetry()
	}
	coord, err := fabric.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	return coord, ts.URL
}

// newWorker stands up a svard-served worker over its own store. When
// remote is non-nil it becomes the store's remote cache layer. The
// listener is wrapped with the faultinject kill switch so tests can
// sever the worker mid-run.
func newWorker(t *testing.T, runner sim.Runner, remote cache.Remote) (*httptest.Server, *faultinject.Listener, *cache.Store) {
	t.Helper()
	store, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if remote != nil {
		store.SetRemote(remote, 5*time.Second)
	}
	svc, err := server.New(server.Config{Store: store, Workers: 4, Sim: runner})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(svc.Handler())
	lst := faultinject.Wrap(ts.Listener)
	ts.Listener = lst
	ts.Start()
	t.Cleanup(func() {
		if !lst.Severed() {
			ts.Close()
		}
	})
	return ts, lst, store
}

// register announces a worker to the coordinator directly (tests that
// do not need heartbeats).
func register(t *testing.T, coordURL, name, workerURL string) {
	t.Helper()
	b, _ := json.Marshal(fabric.RegisterRequest{Name: name, URL: workerURL})
	resp, err := http.Post(coordURL+"/api/v1/workers", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: %d", name, resp.StatusCode)
	}
}

// startAgent runs a worker's heartbeat loop until the test (or the
// returned cancel) stops it.
func startAgent(t *testing.T, coordURL, name, workerURL string, beat time.Duration) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	a := &fabric.Agent{Fabric: coordURL, Advertise: workerURL, Name: name, Heartbeat: beat}
	go func() {
		defer close(done)
		a.Run(ctx)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return cancel
}

// mustJSON marshals for byte-level figure comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// localReference folds the same spec through a plain local engine over
// a fresh store — the bit-identity baseline.
func localReference(t *testing.T, spec campaign.Spec, runner sim.Runner) *campaign.Outcome {
	t.Helper()
	store, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := &campaign.Engine{Store: store, Workers: 2, Sim: runner}
	out, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFabricShardsAcrossWorkers: a clean two-worker run computes every
// cell exactly once across the fleet and folds bit-identically to a
// local engine run.
func TestFabricShardsAcrossWorkers(t *testing.T) {
	var w1calls, w2calls atomic.Int64
	ts1, _, _ := newWorker(t, func(cfg sim.Config) (sim.Result, error) { w1calls.Add(1); return fakeSim(cfg) }, nil)
	ts2, _, _ := newWorker(t, func(cfg sim.Config) (sim.Result, error) { w2calls.Add(1); return fakeSim(cfg) }, nil)

	coord, coordURL := newCoordinator(t, t.TempDir(), fabric.Config{
		BatchSize: 2, LeaseTTL: 5 * time.Second, MinWorkers: 2, Logf: t.Logf,
	})
	register(t, coordURL, "w1", ts1.URL)
	register(t, coordURL, "w2", ts2.URL)

	spec := tinySpec()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	total := len(jobs)

	out, err := coord.RunCtx(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Total != total || out.Computed != total || out.Served != 0 || out.Resumed != 0 {
		t.Fatalf("attribution total=%d computed=%d served=%d resumed=%d, want %d/%d/0/0",
			out.Total, out.Computed, out.Served, out.Resumed, total, total)
	}
	if got := w1calls.Load() + w2calls.Load(); got != int64(total) {
		t.Fatalf("fleet ran the simulator %d times for %d cells (a cell was computed twice or lost)", got, total)
	}
	if w1calls.Load() == 0 || w2calls.Load() == 0 {
		t.Fatalf("work was not sharded: w1=%d w2=%d", w1calls.Load(), w2calls.Load())
	}
	if out.Dispatch.Workers != 2 {
		t.Fatalf("dispatch saw %d workers, want 2", out.Dispatch.Workers)
	}

	ref := localReference(t, spec, fakeSim)
	if !bytes.Equal(mustJSON(t, out.Fig12), mustJSON(t, ref.Fig12)) {
		t.Fatal("fabric fold differs from local engine fold")
	}
}

// TestWorkerDiesMidBatch: severing a worker mid-compute re-dispatches
// its cells; the campaign completes with exactly-once attribution and
// an identical fold.
func TestWorkerDiesMidBatch(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	slowSim := func(cfg sim.Config) (sim.Result, error) {
		once.Do(func() { close(started) })
		time.Sleep(150 * time.Millisecond)
		return fakeSim(cfg)
	}
	var w2calls atomic.Int64
	ts1, lst1, _ := newWorker(t, slowSim, nil)
	ts2, _, _ := newWorker(t, func(cfg sim.Config) (sim.Result, error) { w2calls.Add(1); return fakeSim(cfg) }, nil)

	coord, coordURL := newCoordinator(t, t.TempDir(), fabric.Config{
		BatchSize: 2, LeaseTTL: 300 * time.Millisecond, MinWorkers: 2, MaxCellAttempts: 8, Logf: t.Logf,
	})
	cancel1 := startAgent(t, coordURL, "w1", ts1.URL, 50*time.Millisecond)
	startAgent(t, coordURL, "w2", ts2.URL, 50*time.Millisecond)

	go func() {
		<-started
		cancel1() // heartbeats stop...
		lst1.Sever()
	}()

	spec := tinySpec()
	jobs, _ := spec.Jobs()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := coord.RunCtx(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Computed + out.Served + out.Resumed; got != len(jobs) {
		t.Fatalf("attribution %d+%d+%d != %d cells", out.Computed, out.Served, out.Resumed, len(jobs))
	}
	if out.Dispatch.Redispatched == 0 {
		t.Fatal("the killed worker's batch was never re-dispatched")
	}
	if w2calls.Load() == 0 {
		t.Fatal("the surviving worker computed nothing")
	}
	ref := localReference(t, spec, fakeSim)
	if !bytes.Equal(mustJSON(t, out.Fig12), mustJSON(t, ref.Fig12)) {
		t.Fatal("fold after worker death differs from local engine fold")
	}
}

// TestStaleCompletionAcceptedAsServed: a worker that outlives its lease
// (no heartbeats) still gets its delivery accepted — but as Served,
// never Computed, so re-dispatch races can never double-count.
func TestStaleCompletionAcceptedAsServed(t *testing.T) {
	gate := make(chan struct{})
	gatedSim := func(cfg sim.Config) (sim.Result, error) {
		<-gate
		return fakeSim(cfg)
	}
	ts1, _, _ := newWorker(t, gatedSim, nil)

	coord, coordURL := newCoordinator(t, t.TempDir(), fabric.Config{
		BatchSize: 16, LeaseTTL: 120 * time.Millisecond, MaxCellAttempts: 50, Logf: t.Logf,
	})
	register(t, coordURL, "w1", ts1.URL) // no agent: the lease will expire

	// Release the gate only after the lease must have expired.
	go func() {
		time.Sleep(400 * time.Millisecond)
		close(gate)
	}()

	spec := tinySpec()
	jobs, _ := spec.Jobs()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := coord.RunCtx(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dispatch.ExpiredLeases == 0 {
		t.Fatal("the lease never expired; the test proved nothing")
	}
	if out.Dispatch.AcceptedLate != len(jobs) {
		t.Fatalf("accepted late %d cells, want %d", out.Dispatch.AcceptedLate, len(jobs))
	}
	if out.Computed != 0 || out.Served != len(jobs) {
		t.Fatalf("stale completions attributed computed=%d served=%d, want 0/%d", out.Computed, out.Served, len(jobs))
	}
}

// TestCoordinatorRestartResumes: a coordinator killed mid-campaign
// resumes from the campaign journal — journaled cells are never
// re-dispatched.
func TestCoordinatorRestartResumes(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	partialSim := func(cfg sim.Config) (sim.Result, error) {
		if calls.Add(1) > 3 {
			<-gate
		}
		return fakeSim(cfg)
	}
	ts1, _, _ := newWorker(t, partialSim, nil)

	dir := t.TempDir()
	spec := tinySpec(64, 128, 256)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 5 {
		t.Fatalf("spec too small to interrupt meaningfully: %d jobs", len(jobs))
	}

	coord1, coordURL1 := newCoordinator(t, dir, fabric.Config{
		BatchSize: 1, LeaseTTL: 5 * time.Second, Logf: t.Logf,
	})
	register(t, coordURL1, "w1", ts1.URL)

	// Cancel the first run once three cells are journaled (the fourth
	// compute is gated).
	ctx1, cancel1 := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for calls.Load() < 4 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		cancel1()
	}()
	if _, err := coord1.RunCtx(ctx1, spec); err == nil {
		t.Fatal("interrupted run reported success")
	}
	close(gate) // let the in-flight cell finish so the worker drains

	coord2, coordURL2 := newCoordinator(t, dir, fabric.Config{
		BatchSize: 1, LeaseTTL: 5 * time.Second, Resume: true, Logf: t.Logf,
	})
	register(t, coordURL2, "w1", ts1.URL)
	out, err := coord2.RunCtx(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed != 3 {
		t.Fatalf("resumed %d cells, want 3 (the journaled prefix)", out.Resumed)
	}
	if got := out.Computed + out.Served + out.Resumed; got != len(jobs) {
		t.Fatalf("attribution %d+%d+%d != %d cells", out.Computed, out.Served, out.Resumed, len(jobs))
	}
	ref := localReference(t, spec, fakeSim)
	if !bytes.Equal(mustJSON(t, out.Fig12), mustJSON(t, ref.Fig12)) {
		t.Fatal("resumed fold differs from local engine fold")
	}
}

// TestChaosGoldenByteIdentical is the acceptance end-to-end: the golden
// Fig. 12 sweep sharded across two real-simulator workers stays
// byte-identical to the committed fixture while one worker is killed
// mid-campaign and every remote-cache exchange risks a 5xx, truncated,
// or corrupted response — and the attribution shows no cell computed
// twice and no cell lost.
func TestChaosGoldenByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e runs real simulations")
	}
	spec, golden := goldenSpec(t)
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	coord, coordURL := newCoordinator(t, t.TempDir(), fabric.Config{
		BatchSize: 3, LeaseTTL: 500 * time.Millisecond, MinWorkers: 2, MaxCellAttempts: 10, Logf: t.Logf,
	})

	// Both workers publish and fetch results through the coordinator's
	// object store — through a transport that injects a deterministic
	// mix of 5xx, truncated, and corrupted responses.
	faulty := &faultinject.Transport{Plan: faultinject.Plan{
		Seed: 99, Err5xx: 0.25, Truncate: 0.15, Corrupt: 0.15,
	}}
	remote := func() cache.Remote {
		r := client.NewCacheRemote(coordURL, fastRetry())
		r.HTTP = &http.Client{Transport: faulty}
		return r
	}

	killAtCall := int64(3)
	var w1calls atomic.Int64
	killReady := make(chan struct{})
	var killOnce sync.Once
	w1sim := func(cfg sim.Config) (sim.Result, error) {
		if w1calls.Add(1) >= killAtCall {
			killOnce.Do(func() { close(killReady) })
		}
		return sim.Run(cfg)
	}
	ts1, lst1, _ := newWorker(t, w1sim, remote())
	ts2, _, _ := newWorker(t, sim.Run, remote())

	cancel1 := startAgent(t, coordURL, "w1", ts1.URL, 80*time.Millisecond)
	startAgent(t, coordURL, "w2", ts2.URL, 80*time.Millisecond)

	go func() {
		<-killReady
		cancel1()
		lst1.Sever()
		t.Log("chaos: worker w1 severed mid-campaign")
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	out, err := coord.RunCtx(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// No cell lost, none double-counted.
	if got := out.Computed + out.Served + out.Resumed; got != len(jobs) || out.Total != len(jobs) {
		t.Fatalf("attribution computed=%d served=%d resumed=%d total=%d, want sum %d",
			out.Computed, out.Served, out.Resumed, out.Total, len(jobs))
	}
	if out.Computed > len(jobs) {
		t.Fatalf("computed=%d exceeds %d cells", out.Computed, len(jobs))
	}

	// The worker actually died mid-run and faults actually flew.
	if !lst1.Severed() {
		t.Fatal("w1 was never severed; the campaign finished too fast to test anything")
	}
	if st := faulty.Stats(); st.Faults() == 0 {
		t.Fatalf("fault injector never fired: %v", st)
	} else {
		t.Logf("chaos: %v; dispatch: %v", st, out.Dispatch)
	}

	// And for all that: byte-identical figures.
	if !bytes.Equal(mustJSON(t, out.Fig12), mustJSON(t, golden)) {
		t.Fatal("chaos fold differs from the golden fixture")
	}
}

// BenchmarkFabricDispatch measures the fabric's per-campaign dispatch
// overhead: a 5-cell campaign sharded over two loopback workers with a
// free simulator, so the time is leases, HTTP, and fold.
func BenchmarkFabricDispatch(b *testing.B) {
	store, err := cache.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	newBenchWorker := func() *httptest.Server {
		ws, err := cache.Open(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		svc, err := server.New(server.Config{Store: ws, Workers: 4, Sim: fakeSim})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(svc.Handler())
		b.Cleanup(ts.Close)
		return ts
	}
	coord, err := fabric.New(fabric.Config{
		Store: store, BatchSize: 2, LeaseTTL: 10 * time.Minute, MinWorkers: 2, Retry: fastRetry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	b.Cleanup(ts.Close)
	for i, w := range []*httptest.Server{newBenchWorker(), newBenchWorker()} {
		body, _ := json.Marshal(fabric.RegisterRequest{Name: "bench", URL: w.URL})
		resp, err := http.Post(ts.URL+"/api/v1/workers", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatalf("register worker %d: %v", i, err)
		}
		resp.Body.Close()
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A distinct spec per iteration: every campaign dispatches fresh
		// cells instead of replaying the cache.
		spec := tinySpec(float64(1000+i), float64(100000+i))
		if _, err := coord.RunCtx(context.Background(), spec); err != nil {
			b.Fatal(err)
		}
	}
}
