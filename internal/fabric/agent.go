package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Agent is the worker-side fabric loop a svard-served process runs
// alongside its API: register with the coordinator, then heartbeat at
// the advertised cadence so the coordinator keeps this worker's leases
// alive. A 404 on heartbeat (coordinator restarted, worker evicted)
// triggers re-registration; transient errors are ridden out — missing
// a few beats only risks a lease, never the worker.
type Agent struct {
	// Fabric is the coordinator's base URL (required).
	Fabric string
	// Advertise is this worker's own svard-served base URL as reachable
	// from the coordinator (required).
	Advertise string
	// Name labels this worker in coordinator logs (default: Advertise).
	Name string
	// HTTP is the client for coordinator calls (nil: a 10s-timeout
	// client — register and heartbeat are small unary calls).
	HTTP *http.Client
	// Heartbeat overrides the coordinator-advertised interval (0: obey
	// the coordinator).
	Heartbeat time.Duration
	// Logf, when set, receives agent lifecycle lines.
	Logf func(format string, args ...any)
}

// Run registers and heartbeats until ctx is done. It only returns the
// context's cause: every network failure is retried, because the agent
// outliving coordinator restarts is the point.
func (a *Agent) Run(ctx context.Context) error {
	if a.Fabric == "" || a.Advertise == "" {
		return errors.New("fabric: agent needs both a coordinator URL and an advertise URL")
	}
	logf := a.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	base := strings.TrimRight(a.Fabric, "/")

	registerDelay := 200 * time.Millisecond
	for {
		reg, err := a.register(ctx, base)
		if err != nil {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			logf("fabric-agent: register with %s failed: %v (retrying in %s)", base, err, registerDelay)
			if !sleepCtx(ctx, registerDelay) {
				return context.Cause(ctx)
			}
			if registerDelay *= 2; registerDelay > 5*time.Second {
				registerDelay = 5 * time.Second
			}
			continue
		}
		registerDelay = 200 * time.Millisecond

		interval := a.Heartbeat
		if interval <= 0 {
			interval = time.Duration(reg.HeartbeatSeconds * float64(time.Second))
		}
		if interval <= 0 {
			interval = 5 * time.Second
		}
		logf("fabric-agent: registered as %s, heartbeating every %s", reg.ID, interval)

		if rejoin := a.beatLoop(ctx, base, reg.ID, interval); !rejoin {
			return context.Cause(ctx)
		}
		logf("fabric-agent: coordinator no longer knows %s; re-registering", reg.ID)
	}
}

// beatLoop heartbeats until ctx ends (returns false) or the
// coordinator answers 404 (returns true: re-register).
func (a *Agent) beatLoop(ctx context.Context, base, id string, interval time.Duration) (rejoin bool) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
		status, err := a.postJSON(ctx, base+"/api/v1/heartbeat", HeartbeatRequest{ID: id}, nil)
		switch {
		case ctx.Err() != nil:
			return false
		case status == http.StatusNotFound:
			return true
		case err != nil && a.Logf != nil:
			a.Logf("fabric-agent: heartbeat: %v", err)
		}
	}
}

func (a *Agent) register(ctx context.Context, base string) (RegisterResponse, error) {
	var reg RegisterResponse
	_, err := a.postJSON(ctx, base+"/api/v1/workers", RegisterRequest{Name: a.Name, URL: a.Advertise}, &reg)
	return reg, err
}

// postJSON is the agent's minimal unary call: it returns the status
// code alongside the error so callers can branch on 404 specifically.
func (a *Agent) postJSON(ctx context.Context, url string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	h := a.HTTP
	if h == nil {
		h = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := h.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, fmt.Errorf("fabric: %s: %d %s", url, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out == nil {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx waits d or until ctx is done (false).
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// --- shared HTTP helpers ---------------------------------------------

func decodeJSON(r *http.Request, out any) error {
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(out); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	if v == nil {
		w.WriteHeader(status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
