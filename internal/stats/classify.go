package stats

// ConfusionMatrix accumulates multiclass prediction outcomes over a fixed
// label universe [0, classes).
type ConfusionMatrix struct {
	classes int
	counts  []int // counts[actual*classes+predicted]
}

// NewConfusionMatrix creates a matrix over `classes` labels.
func NewConfusionMatrix(classes int) *ConfusionMatrix {
	if classes <= 0 {
		panic("stats: NewConfusionMatrix classes <= 0")
	}
	return &ConfusionMatrix{classes: classes, counts: make([]int, classes*classes)}
}

// Add records one (actual, predicted) observation. Out-of-range labels
// are ignored.
func (m *ConfusionMatrix) Add(actual, predicted int) {
	if actual < 0 || actual >= m.classes || predicted < 0 || predicted >= m.classes {
		return
	}
	m.counts[actual*m.classes+predicted]++
}

// Count returns the number of observations with the given actual and
// predicted labels.
func (m *ConfusionMatrix) Count(actual, predicted int) int {
	return m.counts[actual*m.classes+predicted]
}

// Total returns the number of recorded observations.
func (m *ConfusionMatrix) Total() int {
	t := 0
	for _, c := range m.counts {
		t += c
	}
	return t
}

// Accuracy returns the fraction of observations on the diagonal.
func (m *ConfusionMatrix) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	diag := 0
	for c := 0; c < m.classes; c++ {
		diag += m.counts[c*m.classes+c]
	}
	return float64(diag) / float64(t)
}

// F1 returns the macro-averaged F1 score: the unweighted mean of the
// per-class harmonic mean of precision and recall, over classes that
// appear in the data (as actual or predicted). This is the scoring used
// for the paper's spatial-feature correlation analysis (§5.4.2, Fig. 9):
// a spatial feature correlates strongly with HCfirst when predicting
// HCfirst from the feature yields a high F1.
func (m *ConfusionMatrix) F1() float64 {
	sum, n := 0.0, 0
	for c := 0; c < m.classes; c++ {
		tp := m.counts[c*m.classes+c]
		fp, fn := 0, 0
		for o := 0; o < m.classes; o++ {
			if o == c {
				continue
			}
			fp += m.counts[o*m.classes+c]
			fn += m.counts[c*m.classes+o]
		}
		if tp+fp+fn == 0 {
			continue // class absent entirely: skip from macro average
		}
		n++
		if tp == 0 {
			continue // precision and recall are both 0
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(tp+fn)
		sum += 2 * precision * recall / (precision + recall)
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WeightedF1 returns the support-weighted F1 over classes present as
// actuals.
func (m *ConfusionMatrix) WeightedF1() float64 {
	sum, total := 0.0, 0
	for c := 0; c < m.classes; c++ {
		tp := m.counts[c*m.classes+c]
		fp, fn := 0, 0
		support := 0
		for o := 0; o < m.classes; o++ {
			support += m.counts[c*m.classes+o]
			if o == c {
				continue
			}
			fp += m.counts[o*m.classes+c]
			fn += m.counts[c*m.classes+o]
		}
		if support == 0 {
			continue
		}
		total += support
		if tp == 0 {
			continue
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(tp+fn)
		sum += float64(support) * 2 * precision * recall / (precision + recall)
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}
