package stats

import (
	"math"

	"svard/internal/rng"
)

// KMeansResult holds the outcome of a k-means clustering run.
type KMeansResult struct {
	K          int
	Centroids  [][]float64
	Assignment []int // cluster index per input point
	Inertia    float64
}

// KMeans clusters points (each a d-dimensional vector) into k clusters
// using Lloyd's algorithm with k-means++ style seeding drawn from the
// provided deterministic stream. maxIter bounds the Lloyd iterations.
//
// This is the clustering primitive behind the paper's subarray reverse
// engineering (§5.4.1, Key Insight 1): DRAM rows are clustered by row
// address and single-sided disturbance footprint, and the silhouette
// score selects the number of subarrays.
func KMeans(points [][]float64, k, maxIter int, r *rng.Rand) KMeansResult {
	n := len(points)
	if n == 0 || k <= 0 {
		return KMeansResult{K: k}
	}
	if k > n {
		k = n
	}
	d := len(points[0])
	centroids := seedPlusPlus(points, k, r)
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, d)
	}

	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				dist := sqDist(p, centroids[c])
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best || iter == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		if iter > 0 && !changed {
			break
		}
		for c := range sums {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster on a random point to avoid
				// degenerate solutions.
				copy(centroids[c], points[r.Intn(n)])
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}

	inertia := 0.0
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	return KMeansResult{K: k, Centroids: centroids, Assignment: assign, Inertia: inertia}
}

func seedPlusPlus(points [][]float64, k int, r *rng.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := append([]float64(nil), points[r.Intn(n)]...)
	centroids = append(centroids, first)
	dist := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			dist[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids: duplicate one.
			centroids = append(centroids, append([]float64(nil), points[r.Intn(n)]...))
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		idx := n - 1
		for i, d := range dist {
			acc += d
			if acc >= target {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Silhouette returns the simplified (centroid-based) silhouette score of
// a clustering: for each point, a is the distance to its own centroid and
// b the distance to the nearest other centroid; the score is the mean of
// (b-a)/max(a,b). The score lies in [-1, 1]; higher is better. With
// fewer than two non-empty clusters the score is 0.
//
// The exact pairwise silhouette is O(n²); the centroid form is O(n·k) and
// preserves the property the paper exploits (Fig. 8): the score peaks at
// the true cluster count and decays monotonically past it.
func Silhouette(points [][]float64, res KMeansResult) float64 {
	if len(points) == 0 || res.K < 2 || len(res.Assignment) != len(points) {
		return 0
	}
	nonEmpty := make(map[int]bool)
	for _, a := range res.Assignment {
		nonEmpty[a] = true
	}
	if len(nonEmpty) < 2 {
		return 0
	}
	total := 0.0
	for i, p := range points {
		own := math.Sqrt(sqDist(p, res.Centroids[res.Assignment[i]]))
		other := math.Inf(1)
		for c := range res.Centroids {
			if c == res.Assignment[i] || !nonEmpty[c] {
				continue
			}
			if d := math.Sqrt(sqDist(p, res.Centroids[c])); d < other {
				other = d
			}
		}
		denom := math.Max(own, other)
		if denom == 0 {
			continue // coincident point and both centroids: contributes 0
		}
		total += (other - own) / denom
	}
	return total / float64(len(points))
}
