package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"svard/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	s := Summarize(xs)
	if s.N != 9 || s.Min != 1 || s.Max != 9 {
		t.Fatalf("bad N/Min/Max: %+v", s)
	}
	if !almostEq(s.Mean, 5, 1e-12) {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if !almostEq(s.Median, 5, 1e-12) {
		t.Errorf("median = %v, want 5", s.Median)
	}
	if !almostEq(s.Q1, 3, 1e-12) || !almostEq(s.Q3, 7, 1e-12) {
		t.Errorf("quartiles = %v/%v, want 3/7", s.Q1, s.Q3)
	}
	if !almostEq(s.IQR, 4, 1e-12) {
		t.Errorf("IQR = %v, want 4", s.IQR)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
	if s.CV() != 0 {
		t.Errorf("empty summary CV = %v", s.CV())
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.Median != 42 {
		t.Errorf("single-element summary wrong: %+v", s)
	}
	if s.Std != 0 {
		t.Errorf("single-element std = %v, want 0", s.Std)
	}
}

func TestCV(t *testing.T) {
	s := Summarize([]float64{10, 10, 10, 10})
	if s.CV() != 0 {
		t.Errorf("constant sample CV = %v, want 0", s.CV())
	}
	s2 := Summarize([]float64{8, 12})
	// mean 10, std 2 → CV 0.2
	if !almostEq(s2.CV(), 0.2, 1e-9) {
		t.Errorf("CV = %v, want 0.2", s2.CV())
	}
}

func TestQuantileInterp(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); !almostEq(got, 5, 1e-12) {
		t.Errorf("Quantile(.5) = %v, want 5", got)
	}
	if got := Quantile(xs, 0.25); !almostEq(got, 2.5, 1e-12) {
		t.Errorf("Quantile(.25) = %v, want 2.5", got)
	}
	if got := Quantile(xs, 0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample should be NaN")
	}
}

func TestWhiskersClampToData(t *testing.T) {
	// Whiskers mark the central 1.5*IQR range but never extend past the
	// observed extrema.
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.WhiskLo < s.Min || s.WhiskHi > s.Max {
		t.Errorf("whiskers escape data: %+v", s)
	}
}

func TestMeans(t *testing.T) {
	if got := Mean([]float64{2, 4, 6}); !almostEq(got, 4, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean([]float64{1, 100}); !almostEq(got, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if got := HarmonicMean([]float64{1, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("HarmonicMean = %v, want 1", got)
	}
	// Harmonic mean of {2, 2/3}: 2/(1/2+3/2) = 1.
	if got := HarmonicMean([]float64{2, 2.0 / 3}); !almostEq(got, 1, 1e-9) {
		t.Errorf("HarmonicMean = %v, want 1", got)
	}
	if HarmonicMean(nil) != 0 || GeoMean(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty means should be 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v, want -1", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
	if got := Pearson(xs, ys[:2]); got != 0 {
		t.Errorf("length mismatch correlation = %v, want 0", got)
	}
}

func TestHistogramDiscrete(t *testing.T) {
	levels := []float64{1, 2, 4}
	h := HistogramDiscrete([]float64{1, 1, 2, 4, 4, 4, 3}, levels)
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 3 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Other != 1 {
		t.Errorf("other = %d, want 1", h.Other)
	}
	fs := h.Fractions()
	if !almostEq(fs[2], 0.5, 1e-12) {
		t.Errorf("fraction = %v, want 0.5", fs[2])
	}
}

func TestECDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := ECDF(xs, 2.5); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("ECDF = %v, want 0.5", got)
	}
	if got := ECDF(nil, 1); got != 0 {
		t.Errorf("ECDF empty = %v, want 0", got)
	}
}

func TestKMeansSeparatesClusters(t *testing.T) {
	r := rng.New(1)
	var points [][]float64
	for i := 0; i < 50; i++ {
		points = append(points, []float64{r.NormFloat64() * 0.1})
	}
	for i := 0; i < 50; i++ {
		points = append(points, []float64{10 + r.NormFloat64()*0.1})
	}
	res := KMeans(points, 2, 50, rng.New(2))
	// All of the first 50 must share a cluster, all of the last 50 the other.
	first := res.Assignment[0]
	for i := 1; i < 50; i++ {
		if res.Assignment[i] != first {
			t.Fatalf("cluster split within group A at %d", i)
		}
	}
	second := res.Assignment[50]
	if second == first {
		t.Fatal("two well-separated groups assigned the same cluster")
	}
	for i := 51; i < 100; i++ {
		if res.Assignment[i] != second {
			t.Fatalf("cluster split within group B at %d", i)
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	res := KMeans(nil, 3, 10, rng.New(1))
	if len(res.Assignment) != 0 {
		t.Error("empty input should yield empty assignment")
	}
	pts := [][]float64{{1}, {2}}
	res = KMeans(pts, 5, 10, rng.New(1)) // k > n clamps to n
	if len(res.Assignment) != 2 {
		t.Error("k > n should still assign all points")
	}
}

func TestSilhouettePeaksAtTrueK(t *testing.T) {
	// Three well-separated 1-D clusters: silhouette at k=3 should beat
	// k=2 and k=6.
	r := rng.New(3)
	var points [][]float64
	for _, center := range []float64{0, 100, 200} {
		for i := 0; i < 60; i++ {
			points = append(points, []float64{center + r.NormFloat64()})
		}
	}
	score := func(k int) float64 {
		res := KMeans(points, k, 60, rng.New(4))
		return Silhouette(points, res)
	}
	s2, s3, s6 := score(2), score(3), score(6)
	if s3 <= s2 || s3 <= s6 {
		t.Errorf("silhouette did not peak at true k: s2=%v s3=%v s6=%v", s2, s3, s6)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if got := Silhouette(pts, KMeansResult{K: 1}); got != 0 {
		t.Errorf("k=1 silhouette = %v, want 0", got)
	}
	if got := Silhouette(nil, KMeansResult{K: 3}); got != 0 {
		t.Errorf("empty silhouette = %v, want 0", got)
	}
}

func TestConfusionMatrixPerfect(t *testing.T) {
	m := NewConfusionMatrix(3)
	for c := 0; c < 3; c++ {
		for i := 0; i < 10; i++ {
			m.Add(c, c)
		}
	}
	if got := m.F1(); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect F1 = %v, want 1", got)
	}
	if got := m.Accuracy(); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect accuracy = %v, want 1", got)
	}
}

func TestConfusionMatrixKnown(t *testing.T) {
	// Binary case with known precision/recall.
	m := NewConfusionMatrix(2)
	// class 1: tp=8, fn=2, fp=4.
	for i := 0; i < 8; i++ {
		m.Add(1, 1)
	}
	for i := 0; i < 2; i++ {
		m.Add(1, 0)
	}
	for i := 0; i < 4; i++ {
		m.Add(0, 1)
	}
	for i := 0; i < 6; i++ {
		m.Add(0, 0)
	}
	// class1: p=8/12, r=8/10 → f1 = 2*(2/3)(4/5)/(2/3+4/5) = 0.727272...
	// class0: p=6/8, r=6/10 → f1 = 2*(.75)(.6)/(1.35) = 0.666666...
	want := (0.7272727272727273 + 2.0/3.0) / 2
	if got := m.F1(); !almostEq(got, want, 1e-9) {
		t.Errorf("macro F1 = %v, want %v", got, want)
	}
}

func TestConfusionMatrixIgnoresOutOfRange(t *testing.T) {
	m := NewConfusionMatrix(2)
	m.Add(-1, 0)
	m.Add(0, 7)
	if m.Total() != 0 {
		t.Errorf("out-of-range labels were counted: total=%d", m.Total())
	}
}

func TestWeightedF1MatchesMacroWhenBalanced(t *testing.T) {
	m := NewConfusionMatrix(2)
	for i := 0; i < 10; i++ {
		m.Add(0, 0)
		m.Add(1, 1)
	}
	m.Add(0, 1)
	m.Add(1, 0)
	if !almostEq(m.F1(), m.WeightedF1(), 1e-12) {
		t.Errorf("balanced classes: macro=%v weighted=%v", m.F1(), m.WeightedF1())
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		sort.Float64s(xs)
		lo := QuantileSorted(xs, qa)
		hi := QuantileSorted(xs, qb)
		return lo <= hi && lo >= xs[0] && hi <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Summarize ordering invariants hold for any finite sample.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.WhiskLo >= s.Min && s.WhiskHi <= s.Max &&
			s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: F1 always lies in [0, 1].
func TestQuickF1Bounded(t *testing.T) {
	f := func(pairs []uint8) bool {
		m := NewConfusionMatrix(4)
		for i := 0; i+1 < len(pairs); i += 2 {
			m.Add(int(pairs[i]%4), int(pairs[i+1]%4))
		}
		f1 := m.F1()
		w := m.WeightedF1()
		return f1 >= 0 && f1 <= 1 && w >= 0 && w <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
