// Package stats implements the statistical substrate used by the
// characterization analyses: descriptive summaries (the box-and-whisker
// quantities of Figs. 3 and 7), coefficient of variation, histograms
// (Fig. 5), k-means clustering with silhouette scoring (Fig. 8, subarray
// reverse engineering), and confusion-matrix/F1 scoring (Fig. 9 and
// Table 3, spatial feature correlation).
package stats

import (
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample, including the
// box-and-whisker quantities used throughout the paper's figures: the box
// is bounded by Q1 and Q3, whiskers mark the central 1.5·IQR range
// (clamped to the observed extrema), and the white circle is the mean.
type Summary struct {
	N         int
	Min, Max  float64
	Mean, Std float64
	Q1        float64
	Median    float64
	Q3        float64
	IQR       float64
	WhiskLo   float64
	WhiskHi   float64
}

// CV returns the coefficient of variation: the standard deviation
// normalized to the mean. It returns 0 for an empty sample or zero mean.
func (s Summary) CV() float64 {
	if s.N == 0 || s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// Summarize computes a Summary of xs. It does not modify xs.
// An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SummarizeSorted(sorted)
}

// SummarizeSorted is Summarize for an already ascending-sorted sample.
func SummarizeSorted(sorted []float64) Summary {
	n := len(sorted)
	if n == 0 {
		return Summary{}
	}
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0 // guard against catastrophic cancellation
	}
	s := Summary{
		N:      n,
		Min:    sorted[0],
		Max:    sorted[n-1],
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Q1:     QuantileSorted(sorted, 0.25),
		Median: QuantileSorted(sorted, 0.5),
		Q3:     QuantileSorted(sorted, 0.75),
	}
	s.IQR = s.Q3 - s.Q1
	s.WhiskLo = math.Max(s.Min, s.Q1-1.5*s.IQR)
	s.WhiskHi = math.Min(s.Max, s.Q3+1.5*s.IQR)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the "type 7" estimator used by
// most plotting software). It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted sample.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values contribute as if absent.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// HarmonicMean returns the harmonic mean of xs. Non-positive values
// contribute as if absent.
func HarmonicMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += 1 / x
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(n) / sum
}

// Min returns the minimum of xs; +Inf for an empty sample.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; -Inf for an empty sample.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples xs and ys. It returns 0 when either sample has zero variance
// or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram counts how many values of xs fall on each of the given
// discrete levels (exact match after mapping through level index).
// Values not equal to any level are counted in Other.
type Histogram struct {
	Levels []float64
	Counts []int
	Other  int
}

// HistogramDiscrete builds a Histogram of xs over the given levels.
// The levels must be sorted ascending.
func HistogramDiscrete(xs []float64, levels []float64) Histogram {
	h := Histogram{
		Levels: append([]float64(nil), levels...),
		Counts: make([]int, len(levels)),
	}
	for _, x := range xs {
		i := sort.SearchFloat64s(h.Levels, x)
		if i < len(h.Levels) && h.Levels[i] == x {
			h.Counts[i]++
		} else {
			h.Other++
		}
	}
	return h
}

// Total returns the number of values counted on the levels (not Other).
func (h Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fractions returns the per-level fraction of the on-level total.
func (h Histogram) Fractions() []float64 {
	t := h.Total()
	fs := make([]float64, len(h.Counts))
	if t == 0 {
		return fs
	}
	for i, c := range h.Counts {
		fs[i] = float64(c) / float64(t)
	}
	return fs
}

// ECDF returns the empirical CDF value P(X <= x) of the sample xs at x.
func ECDF(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, v := range xs {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
