package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"svard/internal/rng"
)

// Policy bounds how a client retries a failed round-trip: up to
// MaxAttempts tries, each under its own AttemptTimeout, with
// decorrelated-jitter exponential backoff between them (sleep drawn
// uniformly from [BaseDelay, 3×previous sleep], capped at MaxDelay).
// The jitter stream derives from Seed and a per-client attempt counter
// through internal/rng, so a test's retry timing is reproducible.
// The zero Policy means the defaults below.
type Policy struct {
	MaxAttempts    int           // total tries including the first (default 4)
	BaseDelay      time.Duration // backoff floor (default 50ms)
	MaxDelay       time.Duration // backoff ceiling (default 2s)
	AttemptTimeout time.Duration // per-attempt deadline (default 30s; <0 disables)
	Seed           uint64        // jitter stream identity
}

// Policy defaults.
const (
	DefaultMaxAttempts    = 4
	DefaultBaseDelay      = 50 * time.Millisecond
	DefaultMaxDelay       = 2 * time.Second
	DefaultAttemptTimeout = 30 * time.Second
)

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = DefaultAttemptTimeout
	}
	return p
}

// backoff draws the next decorrelated-jitter sleep after prev, using
// draw i of the policy's jitter stream.
func (p Policy) backoff(prev time.Duration, i uint64) time.Duration {
	span := 3*prev - p.BaseDelay
	if span <= 0 {
		return p.BaseDelay
	}
	d := p.BaseDelay + time.Duration(rng.UniformAt(p.Seed, 0x6a17, i)*float64(span))
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// APIError is a non-2xx response from the service, preserving the
// status code so callers (and the retry loop) can tell a crashed
// backend (5xx, retryable) from a rejected request (4xx, not).
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %d %s: %s", e.StatusCode, http.StatusText(e.StatusCode), e.Message)
}

// Temporary reports whether retrying the same request can help.
func (e *APIError) Temporary() bool {
	return e.StatusCode >= 500 || e.StatusCode == http.StatusTooManyRequests
}

// retryable reports whether err is worth another attempt: transport
// errors and 5xx/429 are; application-level 4xx, an explicit no-retry
// wrap, and an open breaker are not. Context errors are resolved by
// the caller against the parent context.
func retryable(err error) bool {
	var nr *noRetryError
	if errors.As(err, &nr) {
		return false
	}
	if errors.Is(err, ErrBreakerOpen) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Temporary()
	}
	return true
}

// retryDo runs op under p: per-attempt timeouts, backoff between
// retryable failures, stopping as soon as ctx (the parent) is done.
// seq is the caller's jitter-draw counter, shared across calls so
// concurrent retries decorrelate.
func retryDo(ctx context.Context, p Policy, seq *atomic.Uint64, op func(context.Context) error) error {
	p = p.withDefaults()
	var lastErr error
	sleep := p.BaseDelay
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			sleep = p.backoff(sleep, seq.Add(1))
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-time.After(sleep):
			}
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := op(actx)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The parent gave up; an attempt-timeout alone would retry.
			return context.Cause(ctx)
		}
		if !retryable(err) {
			return err
		}
	}
	return fmt.Errorf("client: %d attempts exhausted: %w", p.MaxAttempts, lastErr)
}

// ErrBreakerOpen is returned (without touching the network) while a
// circuit breaker is cooling down after consecutive endpoint failures.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// Breaker is a per-endpoint circuit breaker. Closed, it passes calls
// through and counts consecutive endpoint failures (transport errors
// and 5xx — a 4xx proves the endpoint alive and resets the count);
// Threshold failures trip it open, failing calls fast for Cooldown;
// then one half-open probe decides: success recloses, failure reopens.
type Breaker struct {
	Threshold int           // consecutive failures to trip (default 5)
	Cooldown  time.Duration // open period before a probe (default 5s)

	now func() time.Time // test hook; nil means time.Now

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker defaults.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return DefaultBreakerThreshold
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return DefaultBreakerCooldown
	}
	return b.Cooldown
}

// Allow reports whether a call may proceed, reserving the half-open
// probe slot when the cooldown has elapsed.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			return ErrBreakerOpen
		}
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Record reports a call's outcome. endpointFailure means the endpoint
// itself misbehaved (transport error or 5xx), not that the request was
// merely rejected.
func (b *Breaker) Record(endpointFailure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if !endpointFailure {
		b.state = breakerClosed
		b.fails = 0
		return
	}
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = b.clock()
		return
	}
	b.fails++
	if b.fails >= b.threshold() {
		b.state = breakerOpen
		b.openedAt = b.clock()
	}
}

// endpointFailure classifies err for the breaker: did the endpoint
// fail, as opposed to rejecting a well-formed-but-wrong request?
func endpointFailure(err error) bool {
	if err == nil {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.StatusCode >= 500
	}
	if errors.Is(err, context.Canceled) {
		return false // our side hung up
	}
	return true
}
