package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"svard/internal/cache"
	"svard/internal/faultinject"
	"svard/internal/server"
	"svard/internal/sim"
)

// fastPolicy keeps retry tests snappy.
func fastPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 1}
}

// TestRetryRecoversFrom5xxBurst: a unary call rides out transient 500s
// within the attempt budget; without a policy the first 500 surfaces.
func TestRetryRecoversFrom5xxBurst(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}))
	defer srv.Close()

	bare := New(srv.URL)
	if err := bare.Health(context.Background()); err == nil {
		t.Fatal("policy-free client swallowed a 500")
	}
	calls.Store(0)

	c := New(srv.URL)
	p := fastPolicy()
	c.Retry = &p
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("retrying client failed across a 2-deep 500 burst: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 500s + success)", got)
	}
}

// TestRetrySkips4xx: application errors are not retried — hammering a
// server with a request it already rejected is pure load.
func TestRetrySkips4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer srv.Close()

	c := New(srv.URL)
	p := fastPolicy()
	c.Retry = &p
	_, err := c.Job(context.Background(), "nope")
	if err == nil {
		t.Fatal("404 did not surface")
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("error = %v, want APIError 404", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls for a 404, want 1", got)
	}
}

// TestBreakerTripsAndRecloses: consecutive endpoint failures trip the
// breaker (calls fail fast, no network), the cooldown admits one probe,
// and a healthy probe recloses it.
func TestBreakerTripsAndRecloses(t *testing.T) {
	var calls atomic.Int64
	healthy := atomic.Bool{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if !healthy.Load() {
			http.Error(w, `{"error":"dying"}`, http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}))
	defer srv.Close()

	now := time.Now()
	var nowMu sync.Mutex
	clock := func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }
	advance := func(d time.Duration) { nowMu.Lock(); now = now.Add(d); nowMu.Unlock() }

	c := New(srv.URL)
	c.Breaker = &Breaker{Threshold: 3, Cooldown: time.Minute, now: clock}

	for i := 0; i < 3; i++ {
		if err := c.Health(context.Background()); err == nil {
			t.Fatal("500 did not surface")
		}
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls before trip, want 3", got)
	}
	err := c.Health(context.Background())
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("open breaker still hit the server (%d calls)", got)
	}

	healthy.Store(true)
	advance(2 * time.Minute)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("reclosed breaker rejected a call: %v", err)
	}
}

// TestBreakerReopensOnFailedProbe: a failing half-open probe goes
// straight back to open — no burst of traffic at a still-down backend.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	now := time.Now()
	b := &Breaker{Threshold: 1, Cooldown: time.Minute, now: func() time.Time { return now }}
	b.Record(true) // trip
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow during cooldown = %v, want open", err)
	}
	now = now.Add(2 * time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe not admitted after cooldown: %v", err)
	}
	b.Record(true) // probe failed
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("Allow after failed probe = %v, want open", err)
	}
}

func TestWaitDelayCapsAndResets(t *testing.T) {
	if d := waitDelay(0); d != waitBaseDelay {
		t.Fatalf("waitDelay(0) = %v, want %v", d, waitBaseDelay)
	}
	prev := time.Duration(0)
	for i := 1; i < 12; i++ {
		d := waitDelay(i)
		if d < prev {
			t.Fatalf("waitDelay(%d) = %v < waitDelay(%d) = %v", i, d, i-1, prev)
		}
		if d > waitMaxDelay {
			t.Fatalf("waitDelay(%d) = %v exceeds cap %v", i, d, waitMaxDelay)
		}
		prev = d
	}
	if waitDelay(11) != waitMaxDelay {
		t.Fatalf("waitDelay(11) = %v, want cap %v", waitDelay(11), waitMaxDelay)
	}
}

// eventServer fakes the two endpoints Wait touches: a chunked events
// stream that tears the connection after a few events, and the job
// endpoint that turns done only once the stream has served everything.
type eventServer struct {
	total   int // cell events before the terminal state event
	perConn int // events served per connection before tearing

	mu       sync.Mutex
	froms    []int // ?from offset of every events request
	maxServe int   // highest seq served so far
}

func (s *eventServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/jobs/j1/events", func(w http.ResponseWriter, r *http.Request) {
		from := 0
		fmt.Sscanf(r.URL.Query().Get("from"), "%d", &from)
		s.mu.Lock()
		s.froms = append(s.froms, from)
		s.mu.Unlock()
		enc := json.NewEncoder(w)
		for i, n := from, 0; i <= s.total && n < s.perConn; i, n = i+1, n+1 {
			ev := server.Event{Seq: i, Type: "cell", Done: i + 1, Total: s.total}
			if i == s.total {
				ev = server.Event{Seq: i, Type: "state", State: server.StateDone, Done: s.total, Total: s.total}
			}
			enc.Encode(ev)
			s.mu.Lock()
			if i > s.maxServe {
				s.maxServe = i
			}
			s.mu.Unlock()
		}
		// Connection ends here; a client mid-stream sees a clean EOF
		// with the job still running and must reconnect from its offset.
	})
	mux.HandleFunc("GET /api/v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		done := s.maxServe >= s.total
		s.mu.Unlock()
		info := server.JobInfo{ID: "j1", State: server.StateRunning, Total: s.total}
		if done {
			info.State = server.StateDone
			info.Done = s.total
		}
		json.NewEncoder(w).Encode(info)
	})
	return mux
}

// TestWaitResumesFromOffsetUnderDrops is the reconnect regression test:
// Wait must ride out torn streams AND injected transport drops, resume
// each reconnect from the last seen offset (never from zero), deliver
// every event exactly once in order, and land on the terminal state.
func TestWaitResumesFromOffsetUnderDrops(t *testing.T) {
	es := &eventServer{total: 12, perConn: 3}
	srv := httptest.NewServer(es.handler())
	defer srv.Close()

	tr := &faultinject.Transport{Plan: faultinject.Plan{Seed: 11, Drop: 0.25}}
	c := New(srv.URL)
	p := fastPolicy()
	p.MaxAttempts = 6
	c.Retry = &p
	c.HTTP = &http.Client{Transport: tr}

	var seqs []int
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := c.Wait(ctx, "j1", func(ev server.Event) error {
		seqs = append(seqs, ev.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("Wait under drops: %v (faults: %v)", err, tr.Stats())
	}
	if info.State != server.StateDone {
		t.Fatalf("final state = %s, want done", info.State)
	}
	if len(seqs) != es.total+1 {
		t.Fatalf("delivered %d events, want %d: %v", len(seqs), es.total+1, seqs)
	}
	for i, seq := range seqs {
		if seq != i {
			t.Fatalf("event %d has seq %d — duplicate or gap: %v", i, seq, seqs)
		}
	}
	if st := tr.Stats(); st.Dropped == 0 {
		t.Fatalf("fault plan injected no drops (%v); the test proved nothing", st)
	}

	es.mu.Lock()
	defer es.mu.Unlock()
	if len(es.froms) < 2 {
		t.Fatalf("stream never reconnected (froms=%v)", es.froms)
	}
	for i := 1; i < len(es.froms); i++ {
		if es.froms[i] < es.froms[i-1] {
			t.Fatalf("reconnect offsets regressed: %v", es.froms)
		}
	}
	if es.froms[len(es.froms)-1] == 0 {
		t.Fatalf("final reconnect restarted from zero: %v", es.froms)
	}
}

// objectStore is an in-memory /api/v1/objects/{key} backend.
type objectStore struct {
	mu      sync.Mutex
	objects map[string][]byte
	gets    atomic.Int64
	fail5xx atomic.Int64 // GETs to fail with 500 before serving
}

func (o *objectStore) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/objects/{key}", func(w http.ResponseWriter, r *http.Request) {
		o.gets.Add(1)
		if o.fail5xx.Load() > 0 {
			o.fail5xx.Add(-1)
			http.Error(w, `{"error":"store overloaded"}`, http.StatusInternalServerError)
			return
		}
		o.mu.Lock()
		b, ok := o.objects[r.PathValue("key")]
		o.mu.Unlock()
		if !ok {
			http.Error(w, `{"error":"no such object"}`, http.StatusNotFound)
			return
		}
		w.Write(b)
	})
	mux.HandleFunc("PUT /api/v1/objects/{key}", func(w http.ResponseWriter, r *http.Request) {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, `{"error":"bad body"}`, http.StatusBadRequest)
			return
		}
		o.mu.Lock()
		if o.objects == nil {
			o.objects = map[string][]byte{}
		}
		o.objects[r.PathValue("key")] = b
		o.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// TestCacheRemoteRoundTrip: Put publishes a sealed envelope a fresh
// CacheRemote can Get back verified, riding out a 5xx burst; a missing
// key is a clean miss; a corrupt stored object is an error and is NOT
// refetched (retrying cannot heal a corrupt store).
func TestCacheRemoteRoundTrip(t *testing.T) {
	store := &objectStore{}
	srv := httptest.NewServer(store.handler())
	defer srv.Close()

	cfg := sim.DefaultConfig()
	key := cache.Key(cfg)
	res := sim.Result{IPC: []float64{1.25}, Cycles: 77, Violations: 3, Finished: true}

	rc := NewCacheRemote(srv.URL, fastPolicy())
	ctx := context.Background()
	if err := rc.Put(ctx, key, res); err != nil {
		t.Fatalf("Put: %v", err)
	}

	if _, found, err := rc.Get(ctx, "deadbeef"+key[8:]); err != nil || found {
		t.Fatalf("absent key: found=%v err=%v, want clean miss", found, err)
	}

	store.fail5xx.Store(2)
	got, found, err := rc.Get(ctx, key)
	if err != nil || !found {
		t.Fatalf("Get across 5xx burst: found=%v err=%v", found, err)
	}
	if got.Cycles != res.Cycles || got.Violations != res.Violations || !got.Finished {
		t.Fatalf("round-trip mismatch: got %+v want %+v", got, res)
	}

	// Corrupt the stored envelope: one flipped bit inside the payload.
	store.mu.Lock()
	store.objects[key][len(store.objects[key])-20] ^= 1
	store.mu.Unlock()
	store.gets.Store(0)
	if _, found, err := rc.Get(ctx, key); err == nil {
		t.Fatalf("corrupt object served as found=%v", found)
	}
	if got := store.gets.Load(); got != 1 {
		t.Fatalf("corrupt object fetched %d times, want 1 (no retry)", got)
	}
}

// TestStoreWithCacheRemoteEndToEnd: the disk cache wired to a real
// HTTP object store shares results across stores with distinct dirs —
// the wire envelope and the disk envelope are the same sealed bytes.
func TestStoreWithCacheRemoteEndToEnd(t *testing.T) {
	osrv := httptest.NewServer((&objectStore{}).handler())
	defer osrv.Close()

	cfg := sim.DefaultConfig()
	cfg.NRH = 512
	want := sim.Result{IPC: []float64{0.5, 0.75}, Cycles: 123, Finished: true}
	var computes atomic.Int64
	runner := func(sim.Config) (sim.Result, error) {
		computes.Add(1)
		return want, nil
	}

	s1, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s1.SetRemote(NewCacheRemote(osrv.URL, fastPolicy()), 0)
	if _, err := s1.GetOrCompute(cfg, runner); err != nil {
		t.Fatal(err)
	}

	s2, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetRemote(NewCacheRemote(osrv.URL, fastPolicy()), 0)
	got, err := s2.GetOrCompute(cfg, runner)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles {
		t.Fatalf("remote-served result differs: %+v", got)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times across two stores sharing a remote, want 1", n)
	}
	if st := s2.Stats(); st.RemoteHits != 1 {
		t.Fatalf("second store RemoteHits = %d, want 1 (%v)", st.RemoteHits, st)
	}
}
