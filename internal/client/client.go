// Package client is the typed Go client for the svard-served campaign
// service (internal/server): submit a campaign.Spec as an asynchronous
// job, follow its per-cell progress stream, cancel it, and fetch the
// folded figure cells or raw cached simulation results. Every call
// takes a context and maps non-2xx responses to errors carrying the
// server's message.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/server"
	"svard/internal/sim"
)

// Client talks to one svard-served instance.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTP is the underlying client (nil: http.DefaultClient). Streaming
	// calls hold a connection open for the job's lifetime; configure
	// timeouts via the context, not the transport.
	HTTP *http.Client
	// Retry, when set, retries failed unary calls (not Events streams —
	// Wait owns stream reconnection) under the policy's attempt bound,
	// per-attempt timeouts, and jittered backoff. Nil means one attempt.
	Retry *Policy
	// Breaker, when set, fail-fasts unary calls against an endpoint
	// that keeps failing (one breaker per Client = per endpoint). Nil
	// means no breaking.
	Breaker *Breaker

	retrySeq atomic.Uint64 // jitter-draw counter shared across calls
}

// New returns a client for the service at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// NewResilient returns a client with retry policy p and a default
// circuit breaker — the configuration fabric coordinators use per
// worker endpoint.
func NewResilient(baseURL string, p Policy) *Client {
	c := New(baseURL)
	c.Retry = &p
	c.Breaker = &Breaker{}
	return c
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Submit enqueues a campaign and returns the queued job.
func (c *Client) Submit(ctx context.Context, spec campaign.Spec, name string, priority int) (server.JobInfo, error) {
	var info server.JobInfo
	err := c.call(ctx, http.MethodPost, "/api/v1/jobs", server.SubmitRequest{
		Name: name, Priority: priority, Spec: spec,
	}, &info)
	return info, err
}

// Job fetches one job's state.
func (c *Client) Job(ctx context.Context, id string) (server.JobInfo, error) {
	var info server.JobInfo
	err := c.call(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Jobs lists every job the service knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]server.JobInfo, error) {
	var infos []server.JobInfo
	err := c.call(ctx, http.MethodGet, "/api/v1/jobs", nil, &infos)
	return infos, err
}

// Cancel stops a job (see the server's latency contract: within one
// cell's latency for a running job, immediately for a queued one).
func (c *Client) Cancel(ctx context.Context, id, reason string) (server.JobInfo, error) {
	p := "/api/v1/jobs/" + url.PathEscape(id) + "/cancel"
	if reason != "" {
		p += "?reason=" + url.QueryEscape(reason)
	}
	var info server.JobInfo
	err := c.call(ctx, http.MethodPost, p, nil, &info)
	return info, err
}

// Result fetches a completed job's folded figures. A job that is not
// done yet returns an error carrying the server's state message.
func (c *Client) Result(ctx context.Context, id string) (server.ResultResponse, error) {
	var res server.ResultResponse
	err := c.call(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id)+"/result", nil, &res)
	return res, err
}

// Cell fetches one raw cached simulation result by its cache key (use
// cache.Key(cfg) to derive it, or Key for the server's view).
func (c *Client) Cell(ctx context.Context, key string) (sim.Result, error) {
	var res server.CellResponse
	err := c.call(ctx, http.MethodGet, "/api/v1/cells/"+url.PathEscape(key), nil, &res)
	return res.Result, err
}

// Key asks the server for a config's content-addressed key and whether
// the cell is already cached. Go clients can compute the key locally
// with cache.Key; the round-trip buys the Cached bit and keeps non-Go
// clients honest about the canonical hash.
func (c *Client) Key(ctx context.Context, cfg sim.Config) (server.KeyResponse, error) {
	var res server.KeyResponse
	err := c.call(ctx, http.MethodPost, "/api/v1/key", cfg, &res)
	return res, err
}

// LocalKey derives a config's cache key without a round-trip.
func LocalKey(cfg sim.Config) string { return cache.Key(cfg) }

// Compute runs a batch of raw cells synchronously on the worker and
// reports per-cell outcomes — the fabric coordinator's dispatch call.
// Callers stream large campaigns as many small batches; the worker
// computes each batch through its shared slots and cache.
func (c *Client) Compute(ctx context.Context, cfgs []sim.Config) (server.ComputeResponse, error) {
	var resp server.ComputeResponse
	err := c.call(ctx, http.MethodPost, "/api/v1/compute", server.ComputeRequest{Configs: cfgs}, &resp)
	return resp, err
}

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/healthz", nil, &struct {
		Status string `json:"status"`
	}{})
}

// Events follows a job's NDJSON progress stream from seq `from`,
// invoking fn per event, until the job reaches a terminal state, fn
// returns an error, or ctx is done. It returns nil on a fully drained
// terminal stream.
func (c *Client) Events(ctx context.Context, id string, from int, fn func(server.Event) error) error {
	p := "/api/v1/jobs/" + url.PathEscape(id) + "/events"
	if from > 0 {
		p += "?from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+p, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: bad event line %q: %w", line, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Wait streams events (calling fn on each if non-nil) until the job is
// terminal, reconnecting from the last seen event if the stream drops —
// including transport errors and torn NDJSON lines, not just a clean
// end — and returns the final job info. An error from fn, a cancelled
// ctx, and API errors on the job itself (404 after eviction) end the
// wait; a severed connection does not, because the job keeps running
// server-side regardless of our socket.
func (c *Client) Wait(ctx context.Context, id string, fn func(server.Event) error) (server.JobInfo, error) {
	from := 0
	idle := 0 // consecutive reconnects that yielded no events
	for {
		var cbErr error
		progressed := false
		streamErr := c.Events(ctx, id, from, func(ev server.Event) error {
			from = ev.Seq + 1
			progressed = true
			if fn != nil {
				if err := fn(ev); err != nil {
					cbErr = err
					return err
				}
			}
			return nil
		})
		if cbErr != nil {
			return server.JobInfo{}, cbErr
		}
		if ctx.Err() != nil {
			return server.JobInfo{}, context.Cause(ctx)
		}

		// Whether the stream ended cleanly (job terminal, fully drained)
		// or dropped mid-flight, the job's state decides what's next.
		info, err := c.Job(ctx, id)
		if err != nil {
			if streamErr != nil {
				return server.JobInfo{}, fmt.Errorf("client: stream dropped (%v) and job poll failed: %w", streamErr, err)
			}
			return server.JobInfo{}, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		// Still running: reconnect from the last seen event, backing
		// off while reconnects yield nothing so a flapping stream does
		// not hammer a recovering daemon. Any received event resets
		// the pace to the floor.
		if progressed {
			idle = 0
		} else {
			idle++
		}
		select {
		case <-ctx.Done():
			return info, context.Cause(ctx)
		case <-time.After(waitDelay(idle)):
		}
	}
}

// Wait's reconnect pacing: exponential from the floor while the stream
// yields nothing, capped so a long outage still polls.
const (
	waitBaseDelay = 100 * time.Millisecond
	waitMaxDelay  = 3 * time.Second
)

// waitDelay is the reconnect pause after `idle` consecutive
// event-free reconnects (0 means the last stream made progress).
func waitDelay(idle int) time.Duration {
	d := waitBaseDelay
	for i := 0; i < idle && d < waitMaxDelay; i++ {
		d *= 2
	}
	if d > waitMaxDelay {
		d = waitMaxDelay
	}
	return d
}

// call performs a JSON request/response round-trip, retried under
// c.Retry and gated by c.Breaker when those are configured.
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	var b []byte
	if body != nil {
		var err error
		if b, err = json.Marshal(body); err != nil {
			return err
		}
	}
	attempt := func(actx context.Context) error {
		if c.Breaker != nil {
			if err := c.Breaker.Allow(); err != nil {
				return err
			}
		}
		err := c.once(actx, method, path, b, body != nil, out)
		if c.Breaker != nil && !errors.Is(err, ErrBreakerOpen) {
			c.Breaker.Record(endpointFailure(err))
		}
		return err
	}
	if c.Retry == nil {
		return attempt(ctx)
	}
	return retryDo(ctx, *c.Retry, &c.retrySeq, attempt)
}

// once performs a single request/response exchange.
func (c *Client) once(ctx context.Context, method, path string, body []byte, hasBody bool, out any) error {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError surfaces the server's JSON error message (falling back
// to the raw body) as an *APIError carrying the status code.
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb struct {
		Error string `json:"error"`
	}
	msg := string(bytes.TrimSpace(b))
	if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg}
}
