// Package client is the typed Go client for the svard-served campaign
// service (internal/server): submit a campaign.Spec as an asynchronous
// job, follow its per-cell progress stream, cancel it, and fetch the
// folded figure cells or raw cached simulation results. Every call
// takes a context and maps non-2xx responses to errors carrying the
// server's message.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"svard/internal/cache"
	"svard/internal/campaign"
	"svard/internal/server"
	"svard/internal/sim"
)

// Client talks to one svard-served instance.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTP is the underlying client (nil: http.DefaultClient). Streaming
	// calls hold a connection open for the job's lifetime; configure
	// timeouts via the context, not the transport.
	HTTP *http.Client
}

// New returns a client for the service at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Submit enqueues a campaign and returns the queued job.
func (c *Client) Submit(ctx context.Context, spec campaign.Spec, name string, priority int) (server.JobInfo, error) {
	var info server.JobInfo
	err := c.call(ctx, http.MethodPost, "/api/v1/jobs", server.SubmitRequest{
		Name: name, Priority: priority, Spec: spec,
	}, &info)
	return info, err
}

// Job fetches one job's state.
func (c *Client) Job(ctx context.Context, id string) (server.JobInfo, error) {
	var info server.JobInfo
	err := c.call(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id), nil, &info)
	return info, err
}

// Jobs lists every job the service knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]server.JobInfo, error) {
	var infos []server.JobInfo
	err := c.call(ctx, http.MethodGet, "/api/v1/jobs", nil, &infos)
	return infos, err
}

// Cancel stops a job (see the server's latency contract: within one
// cell's latency for a running job, immediately for a queued one).
func (c *Client) Cancel(ctx context.Context, id, reason string) (server.JobInfo, error) {
	p := "/api/v1/jobs/" + url.PathEscape(id) + "/cancel"
	if reason != "" {
		p += "?reason=" + url.QueryEscape(reason)
	}
	var info server.JobInfo
	err := c.call(ctx, http.MethodPost, p, nil, &info)
	return info, err
}

// Result fetches a completed job's folded figures. A job that is not
// done yet returns an error carrying the server's state message.
func (c *Client) Result(ctx context.Context, id string) (server.ResultResponse, error) {
	var res server.ResultResponse
	err := c.call(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id)+"/result", nil, &res)
	return res, err
}

// Cell fetches one raw cached simulation result by its cache key (use
// cache.Key(cfg) to derive it, or Key for the server's view).
func (c *Client) Cell(ctx context.Context, key string) (sim.Result, error) {
	var res server.CellResponse
	err := c.call(ctx, http.MethodGet, "/api/v1/cells/"+url.PathEscape(key), nil, &res)
	return res.Result, err
}

// Key asks the server for a config's content-addressed key and whether
// the cell is already cached. Go clients can compute the key locally
// with cache.Key; the round-trip buys the Cached bit and keeps non-Go
// clients honest about the canonical hash.
func (c *Client) Key(ctx context.Context, cfg sim.Config) (server.KeyResponse, error) {
	var res server.KeyResponse
	err := c.call(ctx, http.MethodPost, "/api/v1/key", cfg, &res)
	return res, err
}

// LocalKey derives a config's cache key without a round-trip.
func LocalKey(cfg sim.Config) string { return cache.Key(cfg) }

// Health probes /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.call(ctx, http.MethodGet, "/healthz", nil, &struct {
		Status string `json:"status"`
	}{})
}

// Events follows a job's NDJSON progress stream from seq `from`,
// invoking fn per event, until the job reaches a terminal state, fn
// returns an error, or ctx is done. It returns nil on a fully drained
// terminal stream.
func (c *Client) Events(ctx context.Context, id string, from int, fn func(server.Event) error) error {
	p := "/api/v1/jobs/" + url.PathEscape(id) + "/events"
	if from > 0 {
		p += "?from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+p, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev server.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("client: bad event line %q: %w", line, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Wait streams events (calling fn on each if non-nil) until the job is
// terminal, reconnecting from the last seen event if the stream drops —
// including transport errors and torn NDJSON lines, not just a clean
// end — and returns the final job info. An error from fn, a cancelled
// ctx, and API errors on the job itself (404 after eviction) end the
// wait; a severed connection does not, because the job keeps running
// server-side regardless of our socket.
func (c *Client) Wait(ctx context.Context, id string, fn func(server.Event) error) (server.JobInfo, error) {
	from := 0
	for {
		var cbErr error
		streamErr := c.Events(ctx, id, from, func(ev server.Event) error {
			from = ev.Seq + 1
			if fn != nil {
				if err := fn(ev); err != nil {
					cbErr = err
					return err
				}
			}
			return nil
		})
		if cbErr != nil {
			return server.JobInfo{}, cbErr
		}
		if ctx.Err() != nil {
			return server.JobInfo{}, context.Cause(ctx)
		}

		// Whether the stream ended cleanly (job terminal, fully drained)
		// or dropped mid-flight, the job's state decides what's next.
		info, err := c.Job(ctx, id)
		if err != nil {
			if streamErr != nil {
				return server.JobInfo{}, fmt.Errorf("client: stream dropped (%v) and job poll failed: %w", streamErr, err)
			}
			return server.JobInfo{}, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		// Still running: reconnect from the last seen event, pacing
		// reconnects so a flapping stream does not hot-loop.
		select {
		case <-ctx.Done():
			return info, context.Cause(ctx)
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// call performs one JSON request/response round-trip.
func (c *Client) call(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError surfaces the server's JSON error message, falling back to
// the raw body.
func decodeError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &eb) == nil && eb.Error != "" {
		return fmt.Errorf("client: %s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("client: %s: %s", resp.Status, bytes.TrimSpace(b))
}
