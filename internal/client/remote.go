package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"

	"svard/internal/cache"
	"svard/internal/sim"
)

// CacheRemote is the HTTP implementation of cache.Remote: a shared
// object store addressed by the 64-hex SHA-256 cache keys, speaking the
// same sealed-envelope bytes the disk cache persists (GET/PUT
// /api/v1/objects/{key}). Every response body is verified through
// cache.OpenEnvelope before a result is surfaced, so a corrupt or
// truncated remote entry reads as an error — which the cache layer
// counts and absorbs by computing locally, never failing a sweep.
type CacheRemote struct {
	// BaseURL is the object store's root, e.g. the fabric coordinator.
	BaseURL string
	// HTTP is the underlying client (nil: http.DefaultClient).
	HTTP *http.Client
	// Retry bounds per-object retries; the zero value means the
	// package defaults (see Policy).
	Retry Policy

	seq atomic.Uint64
}

// NewCacheRemote returns a remote cache backend rooted at baseURL.
func NewCacheRemote(baseURL string, p Policy) *CacheRemote {
	return &CacheRemote{BaseURL: strings.TrimRight(baseURL, "/"), Retry: p}
}

func (r *CacheRemote) http() *http.Client {
	if r.HTTP != nil {
		return r.HTTP
	}
	return http.DefaultClient
}

func (r *CacheRemote) objectURL(key string) string {
	return r.BaseURL + "/api/v1/objects/" + url.PathEscape(key)
}

// Get implements cache.Remote. A missing object is (zero, false, nil);
// transport failures, non-2xx responses other than 404, and envelope
// verification failures are errors.
func (r *CacheRemote) Get(ctx context.Context, key string) (sim.Result, bool, error) {
	var (
		res   sim.Result
		found bool
	)
	err := retryDo(ctx, r.Retry, &r.seq, func(actx context.Context) error {
		req, err := http.NewRequestWithContext(actx, http.MethodGet, r.objectURL(key), nil)
		if err != nil {
			return err
		}
		resp, err := r.http().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			found = false
			return nil
		}
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return decodeError(resp)
		}
		b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		if err != nil {
			return fmt.Errorf("remote cache: reading object %s: %w", key[:8], err)
		}
		got, err := cache.OpenEnvelope(key, b)
		if err != nil {
			// The object exists but fails verification; retrying the
			// fetch cannot fix a corrupt store entry.
			return fmt.Errorf("%w (refusing corrupt remote object)", errNoRetry(err))
		}
		res, found = got, true
		return nil
	})
	if err != nil {
		return sim.Result{}, false, err
	}
	return res, found, nil
}

// Put implements cache.Remote, publishing a sealed envelope.
func (r *CacheRemote) Put(ctx context.Context, key string, res sim.Result) error {
	b, err := cache.Seal(key, res)
	if err != nil {
		return err
	}
	return retryDo(ctx, r.Retry, &r.seq, func(actx context.Context) error {
		req, err := http.NewRequestWithContext(actx, http.MethodPut, r.objectURL(key), bytes.NewReader(b))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.http().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return decodeError(resp)
		}
		io.Copy(io.Discard, resp.Body)
		return nil
	})
}

// errNoRetry wraps err so the retry loop stops without masking the
// cause.
func errNoRetry(err error) error {
	return &noRetryError{err: err}
}

type noRetryError struct{ err error }

func (e *noRetryError) Error() string { return e.err.Error() }
func (e *noRetryError) Unwrap() error { return e.err }
