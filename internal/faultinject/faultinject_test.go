package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// okHandler returns a fixed body so corruption/truncation are observable.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"status":"ok","payload":"0123456789abcdef"}`)
	})
}

// schedule replays the transport's per-request outcomes against srv for
// n requests and returns a compact outcome string per request.
func schedule(t *testing.T, tr *Transport, url string, n int) []string {
	t.Helper()
	client := &http.Client{Transport: tr}
	var out []string
	for i := 0; i < n; i++ {
		resp, err := client.Get(url)
		if err != nil {
			out = append(out, "drop")
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusInternalServerError:
			out = append(out, "5xx")
		case rerr != nil:
			out = append(out, "trunc")
		case strings.Contains(string(body), `"status":"ok"`) && strings.Contains(string(body), "0123456789abcdef"):
			out = append(out, "ok")
		default:
			out = append(out, "corrupt")
		}
	}
	return out
}

func TestDeterministicSchedule(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	plan := Plan{Seed: 42, Drop: 0.2, Err5xx: 0.2, Truncate: 0.2, Corrupt: 0.2}
	first := schedule(t, &Transport{Plan: plan}, srv.URL, 40)
	second := schedule(t, &Transport{Plan: plan}, srv.URL, 40)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("request %d: schedule diverged: %q vs %q\nfirst:  %v\nsecond: %v",
				i, first[i], second[i], first, second)
		}
	}

	kinds := map[string]bool{}
	for _, k := range first {
		kinds[k] = true
	}
	for _, want := range []string{"ok", "drop", "5xx"} {
		if !kinds[want] {
			t.Fatalf("40-request schedule at p=0.2 each never produced %q: %v", want, first)
		}
	}
	if !kinds["trunc"] && !kinds["corrupt"] {
		t.Fatalf("schedule never produced a body fault: %v", first)
	}

	other := schedule(t, &Transport{Plan: Plan{Seed: 43, Drop: 0.2, Err5xx: 0.2, Truncate: 0.2, Corrupt: 0.2}}, srv.URL, 40)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 40-request schedules")
	}
}

func TestZeroPlanIsTransparent(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	tr := &Transport{}
	for i, got := range schedule(t, tr, srv.URL, 10) {
		if got != "ok" {
			t.Fatalf("zero plan request %d: got %q, want ok", i, got)
		}
	}
	st := tr.Stats()
	if st.Requests != 10 || st.Faults() != 0 {
		t.Fatalf("zero plan stats: %v", st)
	}
}

func TestAfterExemptsSetupRequests(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	tr := &Transport{Plan: Plan{Seed: 7, Drop: 1.0, After: 3}}
	got := schedule(t, tr, srv.URL, 6)
	want := []string{"ok", "ok", "ok", "drop", "drop", "drop"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d: got %q, want %q (%v)", i, got[i], want[i], got)
		}
	}
	if st := tr.Stats(); st.Dropped != 3 {
		t.Fatalf("Dropped = %d, want 3 (%v)", st.Dropped, st)
	}
}

func TestTruncatedBodySurfacesUnexpectedEOF(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	tr := &Transport{Plan: Plan{Seed: 1, Truncate: 1.0}}
	resp, err := (&http.Client{Transport: tr}).Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	b, rerr := io.ReadAll(resp.Body)
	if rerr == nil {
		t.Fatalf("truncated body read succeeded with %d bytes", len(b))
	}
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body error = %v, want ErrUnexpectedEOF", rerr)
	}
	full := `{"status":"ok","payload":"0123456789abcdef"}`
	if len(b) >= len(full) {
		t.Fatalf("truncated body returned %d bytes, want < %d", len(b), len(full))
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	tr := &Transport{Plan: Plan{Seed: 9, Corrupt: 1.0}}
	resp, err := (&http.Client{Transport: tr}).Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	b, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		t.Fatalf("ReadAll: %v", rerr)
	}
	full := `{"status":"ok","payload":"0123456789abcdef"}`
	if len(b) != len(full) {
		t.Fatalf("corrupt body length %d, want %d", len(b), len(full))
	}
	diff := 0
	for i := range b {
		if b[i] != full[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bytes, want exactly 1: %q", diff, b)
	}
}

func TestLatencyDelays(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	tr := &Transport{Plan: Plan{Seed: 3, Latency: 1.0, Delay: 20 * time.Millisecond}}
	start := time.Now()
	resp, err := (&http.Client{Transport: tr}).Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delayed request completed in %v, want >= 20ms", d)
	}
	if st := tr.Stats(); st.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", st.Delayed)
	}
}

func TestSeverKillsWorker(t *testing.T) {
	srv := httptest.NewUnstartedServer(okHandler())
	lis := Wrap(srv.Listener)
	srv.Listener = lis
	srv.Start()
	// Not deferred srv.Close(): Sever already closed the listener, and
	// httptest.Close would double-close; close the client side instead.

	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("pre-sever Get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	lis.Sever()
	if !lis.Severed() {
		t.Fatal("Severed() = false after Sever")
	}
	lis.Sever() // idempotent

	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("post-sever Get succeeded, want connection failure")
	}
	client.CloseIdleConnections()
}
