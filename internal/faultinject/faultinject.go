// Package faultinject is the chaos harness behind the distributed
// fabric's robustness tests: a deterministic, seed-driven fault layer
// that wraps an http.RoundTripper (drops, latency spikes, 5xx bursts,
// truncated bodies, corrupted bytes) and a net.Listener (mid-job worker
// kills), so an end-to-end test can schedule an exact failure storm and
// still assert bit-identical golden results on the other side.
//
// Determinism is the design center: every per-request fault decision is
// a pure function of (Plan.Seed, request index) through the same
// coordinate-hash generator the simulator uses (internal/rng), so a
// failing chaos schedule replays exactly under `go test -run`, with no
// dependence on wall-clock time or goroutine interleaving for *which*
// faults fire (only their relative timing with respect to concurrent
// requests varies).
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"svard/internal/rng"
)

// Plan schedules faults for a Transport. Each probability field is the
// chance, per eligible request, that the corresponding fault fires;
// when several fire for one request the most disruptive wins, in the
// order Drop > Err5xx > Truncate > Corrupt (latency stacks with any of
// them). The zero Plan injects nothing.
type Plan struct {
	Seed uint64 // fault stream identity; same seed, same schedule

	// After exempts the first N requests, letting registration and
	// setup traffic through before the storm starts.
	After uint64

	Drop     float64       // P(connection error; request never reaches the server)
	Err5xx   float64       // P(synthesized 500 response instead of the real one)
	Truncate float64       // P(response body cut off mid-stream)
	Corrupt  float64       // P(one response body byte flipped)
	Latency  float64       // P(added latency before the request proceeds)
	Delay    time.Duration // the latency spike's size (default 50ms)
}

// fault selectors, hashed independently per request index so the fault
// mix of one schedule is stable when a single probability is tuned.
const (
	selDrop = iota + 1
	selErr5xx
	selTruncate
	selCorrupt
	selLatency
)

// decide reports whether the sel fault fires for request i under p.
func (p Plan) decide(sel, i uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	return rng.UniformAt(p.Seed, sel, i) < prob
}

// Transport injects the Plan's faults around Base (nil:
// http.DefaultTransport). It is safe for concurrent use; the request
// counter is shared, so concurrent requests draw distinct indices.
type Transport struct {
	Base http.RoundTripper
	Plan Plan

	n atomic.Uint64

	mu    sync.Mutex
	stats Stats
}

// Stats counts what actually fired, for assertions that a chaos test
// exercised the paths it claims to.
type Stats struct {
	Requests  uint64
	Dropped   uint64
	Served5xx uint64
	Truncated uint64
	Corrupted uint64
	Delayed   uint64
}

func (s Stats) String() string {
	return fmt.Sprintf("%d requests: %d dropped, %d 5xx, %d truncated, %d corrupted, %d delayed",
		s.Requests, s.Dropped, s.Served5xx, s.Truncated, s.Corrupted, s.Delayed)
}

// Faults is the total number of injected faults.
func (s Stats) Faults() uint64 {
	return s.Dropped + s.Served5xx + s.Truncated + s.Corrupted + s.Delayed
}

// Stats snapshots the transport's fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

func (t *Transport) count(f func(*Stats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}

// ErrInjectedDrop is the error a dropped request surfaces, wrapped the
// way a real severed connection would be.
var ErrInjectedDrop = fmt.Errorf("faultinject: connection dropped")

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := t.n.Add(1) - 1
	t.count(func(s *Stats) { s.Requests++ })
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	if i < t.Plan.After {
		return base.RoundTrip(req)
	}

	if t.Plan.decide(selLatency, i, t.Plan.Latency) {
		t.count(func(s *Stats) { s.Delayed++ })
		d := t.Plan.Delay
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}

	switch {
	case t.Plan.decide(selDrop, i, t.Plan.Drop):
		t.count(func(s *Stats) { s.Dropped++ })
		// Consume nothing; a dropped connection leaves the server side
		// untouched, exactly like a SYN lost on the wire.
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: ErrInjectedDrop}

	case t.Plan.decide(selErr5xx, i, t.Plan.Err5xx):
		t.count(func(s *Stats) { s.Served5xx++ })
		body := fmt.Sprintf("faultinject: synthesized 500 for request %d", i)
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}

	resp, err := base.RoundTrip(req)
	if err != nil {
		return resp, err
	}

	switch {
	case t.Plan.decide(selTruncate, i, t.Plan.Truncate):
		t.count(func(s *Stats) { s.Truncated++ })
		resp.Body = truncateBody(resp.Body, i)
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")

	case t.Plan.decide(selCorrupt, i, t.Plan.Corrupt):
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(b) > 0 {
			t.count(func(s *Stats) { s.Corrupted++ })
			pos := int(rng.Hash64(t.Plan.Seed, selCorrupt, i, 1) % uint64(len(b)))
			b[pos] ^= 0x20 // case-flip: keeps JSON syntactically plausible, semantically wrong
		}
		resp.Body = io.NopCloser(bytes.NewReader(b))
		resp.ContentLength = int64(len(b))
	}
	return resp, nil
}

// truncateBody reads the whole body and serves back a deterministic
// prefix, then errors like a torn connection would.
func truncateBody(body io.ReadCloser, i uint64) io.ReadCloser {
	b, err := io.ReadAll(body)
	body.Close()
	if err != nil || len(b) == 0 {
		return io.NopCloser(bytes.NewReader(nil))
	}
	cut := 1 + int(rng.Hash64(selTruncate, i)%uint64(len(b)))
	if cut >= len(b) {
		cut = len(b) - 1
	}
	return &tornBody{r: bytes.NewReader(b[:cut])}
}

// tornBody yields its prefix then fails with an unexpected-EOF-shaped
// error, the way a connection reset mid-body surfaces to a reader.
type tornBody struct{ r *bytes.Reader }

func (t *tornBody) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *tornBody) Close() error { return nil }

// Listener wraps a net.Listener with a kill switch: Sever() closes
// every connection accepted so far and makes further accepts fail —
// the network-visible shape of a worker process dying mid-job. Wrap a
// test server's listener before serving, then trip the switch from a
// request-count hook.
type Listener struct {
	net.Listener

	mu      sync.Mutex
	conns   []net.Conn
	severed bool
}

// Wrap returns a severable listener over l.
func Wrap(l net.Listener) *Listener { return &Listener{Listener: l} }

// Accept implements net.Listener, tracking accepted connections.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.severed {
		c.Close()
		return nil, net.ErrClosed
	}
	l.conns = append(l.conns, c)
	return c, nil
}

// Sever kills the worker: every accepted connection is closed (in-flight
// requests surface as resets to their clients) and the listener stops
// accepting. Idempotent.
func (l *Listener) Sever() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.severed {
		return
	}
	l.severed = true
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
	l.Listener.Close()
}

// Severed reports whether the kill switch has been tripped.
func (l *Listener) Severed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.severed
}
