package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	n := 64
	got, err := Map(8, n, func(i int) (int, error) {
		// Jitter completion order so ordering cannot come for free.
		time.Sleep(time.Duration((n-i)%7) * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapParallelMatchesSerial(t *testing.T) {
	fn := func(i int) (uint64, error) {
		return DeriveSeed(42, i), nil
	}
	serial, err := Map(1, 100, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		par, err := Map(w, 100, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: result %d = %x, serial %x", w, i, par[i], serial[i])
			}
		}
	}
}

func TestMapErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Map(4, 20, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap sentinel", err)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Fatalf("error %q does not name the failing job", err)
	}
}

func TestMapErrorSkipsUnstartedJobs(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(1, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, fmt.Errorf("fail fast")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("ran %d jobs after failure, want 1", got)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int64
	_, err := Map(workers, 50, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", m, workers)
	}
}

// TestMapCtxCancelStopsDispatch: cancelling mid-sweep lets running jobs
// finish but starts nothing new, and the error carries the cancel cause.
func TestMapCtxCancelStopsDispatch(t *testing.T) {
	cause := errors.New("client hung up")
	ctx, cancel := context.WithCancelCause(context.Background())

	var ran atomic.Int64
	started := make(chan struct{})
	var once atomic.Bool
	go func() {
		<-started
		cancel(cause)
	}()
	_, err := MapCtx(ctx, 2, 1000, func(i int) (int, error) {
		ran.Add(1)
		if once.CompareAndSwap(false, true) {
			close(started)
		}
		<-ctx.Done() // jobs in flight when the cancel lands
		return i, nil
	})

	if err == nil {
		t.Fatal("cancelled MapCtx reported success")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error %v does not carry the cancel cause", err)
	}
	// Only the jobs that were already in flight may have run: with 2
	// workers, at most 2 of the 1000.
	if got := ran.Load(); got > 2 {
		t.Fatalf("%d jobs ran after cancellation, want <= 2 (the in-flight ones)", got)
	}
}

// TestMapCtxPreCancelled: a context cancelled before the call runs no
// jobs at all.
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 4, 100, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran under a pre-cancelled context", ran.Load())
	}
}

// TestMapCtxBackgroundMatchesMap: Map is exactly MapCtx under a
// background context.
func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return i * 3, nil }
	a, errA := Map(4, 50, fn)
	b, errB := MapCtx(context.Background(), 4, 50, fn)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Map and MapCtx diverge at %d", i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(_, 0) = %v, %v", got, err)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(4, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(1, i)
		if s != DeriveSeed(1, i) {
			t.Fatalf("DeriveSeed(1, %d) unstable", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("jobs %d and %d collide on seed %x", prev, i, s)
		}
		seen[s] = i
	}
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Fatal("seeds do not depend on base")
	}
}

func TestProgressSerializesAndNilSafe(t *testing.T) {
	Progress(nil)("ignored") // must not panic

	var lines []string
	p := Progress(func(s string) { lines = append(lines, s) })
	if err := Each(8, 100, func(i int) error {
		p(fmt.Sprintf("job %d", i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 100 {
		t.Fatalf("recorded %d progress lines, want 100", len(lines))
	}
}
