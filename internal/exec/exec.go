// Package exec is the parallel experiment engine: a deterministic
// bounded worker pool for the embarrassingly parallel sweeps that
// dominate the evaluation (Fig. 12's defense x nRH x configuration x
// mix grid and Fig. 13's adversarial runs are hundreds of fully
// independent cycle-level simulations).
//
// Determinism is the contract: Map dispatches job indices in order,
// writes each result into its own slot, and aggregates errors in index
// order, so a sweep run with Workers=N produces results bit-identical
// to Workers=1. Jobs must take their randomness from their own
// coordinates, never from shared mutable state — the Fig. 12/13 sweeps
// seed every simulation from its cell's configuration; DeriveSeed is
// the helper for jobs that instead need an independent stream keyed on
// their index alone.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"svard/internal/rng"
)

// Workers normalizes a configured worker count: values <= 0 select
// GOMAXPROCS, everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on a pool of at most `workers`
// goroutines (<= 0: GOMAXPROCS) and returns the n results in index
// order. Indices are dispatched in ascending order, so job i never
// starts after job j > i.
//
// If any job fails, jobs not yet started are skipped, and Map returns a
// nil slice with every observed error joined in job-index order (each
// wrapped with its index). Jobs already running are allowed to finish.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cancellation: once ctx is done, no new job starts
// (jobs already running finish — the pool returns within one job's
// latency), and the joined error ends with the context's cause after
// any job errors. Cancellation does not change what completed jobs
// computed, so a sweep that persists per-job results (the campaign
// engine) can be cancelled and later resumed with bit-identical cells.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]T, n)
	errs := make([]error, n)

	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() || ctx.Err() != nil {
					return
				}
				r, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()

	canceled := ctx.Err() != nil
	if failed.Load() || canceled {
		var agg []error
		for i, err := range errs {
			if err != nil {
				agg = append(agg, fmt.Errorf("job %d: %w", i, err))
			}
		}
		if canceled {
			agg = append(agg, context.Cause(ctx))
		}
		return nil, errors.Join(agg...)
	}
	return results, nil
}

// Each is Map for jobs with no result value.
func Each(workers, n int, fn func(i int) error) error {
	return EachCtx(context.Background(), workers, n, fn)
}

// EachCtx is MapCtx for jobs with no result value.
func EachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	_, err := MapCtx(ctx, workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// DeriveSeed derives an independent per-job seed from a sweep's master
// seed, for jobs whose randomness is not already keyed on their own
// coordinates. The derivation depends only on (base, job), so a job's
// random stream is identical no matter which worker runs it or in what
// order. The Fig. 12/13 sweeps do not need it: each simulation's seed
// comes from its cell's Config.
func DeriveSeed(base uint64, job int) uint64 {
	return rng.Hash64(base, 0x6a0b, uint64(job))
}

// Progress wraps a progress callback so concurrent jobs can report
// safely: calls are serialized under a mutex. A nil callback yields a
// no-op, so callers never need to nil-check.
func Progress(fn func(string)) func(string) {
	if fn == nil {
		return func(string) {}
	}
	var mu sync.Mutex
	return func(msg string) {
		mu.Lock()
		defer mu.Unlock()
		fn(msg)
	}
}
