// Package trace synthesizes the memory behaviour of the paper's five
// benchmark suites (SPEC CPU2006, SPEC CPU2017, TPC, MediaBench, YCSB;
// §7.1) as parameterized generators, plus the adversarial access
// patterns of Fig. 13. The performance evaluation depends on memory
// intensity, row-buffer locality, footprint, and skew — the knobs each
// workload sets — not on instruction semantics.
package trace

import (
	"sync"

	"svard/internal/rng"
)

// Workload parameterizes one named benchmark's memory behaviour.
type Workload struct {
	Name      string
	Suite     string
	GapMean   float64 // mean non-memory instructions between accesses
	Footprint uint64  // bytes touched
	SeqProb   float64 // probability the next access is the sequential block
	ZipfS     float64 // >0: zipfian reuse over hot blocks
	HotBlocks int     // zipf support size
	WriteFrac float64
}

// Catalog returns the workload pool the 120 mixes draw from:
// memory-intensive members of each suite with parameters reflecting
// their published memory characters (streaming for lbm/MediaBench,
// pointer-chasing for mcf/omnetpp, zipfian reuse for YCSB, scan/join
// mixes for TPC).
func Catalog() []Workload {
	MB := uint64(1 << 20)
	return []Workload{
		// SPEC CPU2006.
		{Name: "mcf06", Suite: "SPEC06", GapMean: 4, Footprint: 256 * MB, SeqProb: 0.10, WriteFrac: 0.25},
		{Name: "lbm06", Suite: "SPEC06", GapMean: 6, Footprint: 192 * MB, SeqProb: 0.85, WriteFrac: 0.45},
		{Name: "milc06", Suite: "SPEC06", GapMean: 8, Footprint: 160 * MB, SeqProb: 0.55, WriteFrac: 0.30},
		{Name: "soplex06", Suite: "SPEC06", GapMean: 7, Footprint: 128 * MB, SeqProb: 0.40, WriteFrac: 0.20},
		{Name: "libquantum06", Suite: "SPEC06", GapMean: 5, Footprint: 96 * MB, SeqProb: 0.90, WriteFrac: 0.15},
		{Name: "omnetpp06", Suite: "SPEC06", GapMean: 9, Footprint: 144 * MB, SeqProb: 0.15, WriteFrac: 0.30},
		{Name: "gems06", Suite: "SPEC06", GapMean: 6, Footprint: 224 * MB, SeqProb: 0.60, WriteFrac: 0.35},
		// SPEC CPU2017.
		{Name: "mcf17", Suite: "SPEC17", GapMean: 5, Footprint: 320 * MB, SeqProb: 0.12, WriteFrac: 0.25},
		{Name: "lbm17", Suite: "SPEC17", GapMean: 6, Footprint: 256 * MB, SeqProb: 0.85, WriteFrac: 0.45},
		{Name: "cam417", Suite: "SPEC17", GapMean: 10, Footprint: 192 * MB, SeqProb: 0.65, WriteFrac: 0.30},
		{Name: "fotonik17", Suite: "SPEC17", GapMean: 7, Footprint: 256 * MB, SeqProb: 0.75, WriteFrac: 0.35},
		{Name: "roms17", Suite: "SPEC17", GapMean: 8, Footprint: 160 * MB, SeqProb: 0.70, WriteFrac: 0.30},
		{Name: "xz17", Suite: "SPEC17", GapMean: 12, Footprint: 128 * MB, SeqProb: 0.35, WriteFrac: 0.25},
		// TPC (OLTP/OLAP).
		{Name: "tpcc", Suite: "TPC", GapMean: 6, Footprint: 384 * MB, SeqProb: 0.08, ZipfS: 0.9, HotBlocks: 1 << 16, WriteFrac: 0.35},
		{Name: "tpch-q1", Suite: "TPC", GapMean: 7, Footprint: 512 * MB, SeqProb: 0.80, WriteFrac: 0.10},
		{Name: "tpch-q6", Suite: "TPC", GapMean: 6, Footprint: 448 * MB, SeqProb: 0.75, WriteFrac: 0.10},
		{Name: "tpce", Suite: "TPC", GapMean: 8, Footprint: 320 * MB, SeqProb: 0.10, ZipfS: 0.8, HotBlocks: 1 << 15, WriteFrac: 0.30},
		// MediaBench (streaming kernels).
		{Name: "h264dec", Suite: "Media", GapMean: 9, Footprint: 64 * MB, SeqProb: 0.80, WriteFrac: 0.30},
		{Name: "h264enc", Suite: "Media", GapMean: 8, Footprint: 96 * MB, SeqProb: 0.70, WriteFrac: 0.40},
		{Name: "jpeg2000", Suite: "Media", GapMean: 7, Footprint: 48 * MB, SeqProb: 0.85, WriteFrac: 0.35},
		{Name: "mpeg4", Suite: "Media", GapMean: 9, Footprint: 80 * MB, SeqProb: 0.75, WriteFrac: 0.30},
		// YCSB (key-value serving).
		{Name: "ycsb-a", Suite: "YCSB", GapMean: 5, Footprint: 512 * MB, SeqProb: 0.05, ZipfS: 0.99, HotBlocks: 1 << 17, WriteFrac: 0.50},
		{Name: "ycsb-b", Suite: "YCSB", GapMean: 5, Footprint: 512 * MB, SeqProb: 0.05, ZipfS: 0.99, HotBlocks: 1 << 17, WriteFrac: 0.05},
		{Name: "ycsb-c", Suite: "YCSB", GapMean: 6, Footprint: 512 * MB, SeqProb: 0.05, ZipfS: 0.99, HotBlocks: 1 << 17, WriteFrac: 0.0},
		{Name: "ycsb-d", Suite: "YCSB", GapMean: 6, Footprint: 384 * MB, SeqProb: 0.10, ZipfS: 0.8, HotBlocks: 1 << 16, WriteFrac: 0.05},
		{Name: "ycsb-e", Suite: "YCSB", GapMean: 7, Footprint: 448 * MB, SeqProb: 0.50, ZipfS: 0.7, HotBlocks: 1 << 16, WriteFrac: 0.05},
		{Name: "ycsb-f", Suite: "YCSB", GapMean: 5, Footprint: 512 * MB, SeqProb: 0.05, ZipfS: 0.9, HotBlocks: 1 << 16, WriteFrac: 0.25},
	}
}

// ByName returns the catalog workload with the given name.
func ByName(name string) (Workload, bool) {
	for _, w := range Catalog() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Mixes draws n 8-core mixes from the catalog (the paper draws 120),
// deterministically from seed.
func Mixes(n, cores int, seed uint64) [][]string {
	cat := Catalog()
	r := rng.At(seed, 0x3713E5)
	mixes := make([][]string, n)
	for i := range mixes {
		mix := make([]string, cores)
		for c := range mix {
			mix[c] = cat[r.Intn(len(cat))].Name
		}
		mixes[i] = mix
	}
	return mixes
}

// Synth generates a workload's access stream deterministically.
type Synth struct {
	w    Workload
	r    *rng.Rand
	zipf *rng.Zipf
	base uint64
	cur  uint64
}

// zipfCache memoizes Zipf samplers by (support, exponent). Building the
// inverse CDF costs one pow per hot block (131K for the YCSB suite) and
// depends only on the workload shape, yet every simulation of a sweep
// used to rebuild it per core; sharing is safe because Sample only
// reads the CDF (the caller supplies the random stream).
var zipfCache sync.Map // [2]float64{n, s} -> *rng.Zipf

func zipfFor(n int, s float64) *rng.Zipf {
	key := [2]float64{float64(n), s}
	if z, ok := zipfCache.Load(key); ok {
		return z.(*rng.Zipf)
	}
	z, _ := zipfCache.LoadOrStore(key, rng.NewZipf(n, s))
	return z.(*rng.Zipf)
}

// NewSynth builds the generator for one core: base is the core's
// address-space offset (cores are multiprogrammed, so footprints are
// disjoint).
func NewSynth(w Workload, base uint64, seed uint64) *Synth {
	s := &Synth{
		w:    w,
		r:    rng.At(seed, 0x9E4), // generator stream
		base: base,
	}
	if w.ZipfS > 0 && w.HotBlocks > 1 {
		s.zipf = zipfFor(w.HotBlocks, w.ZipfS)
	}
	s.cur = s.randomBlock()
	return s
}

func (s *Synth) randomBlock() uint64 {
	blocks := s.w.Footprint / 64
	if blocks == 0 {
		blocks = 1
	}
	if s.zipf != nil {
		// Hot blocks spread through the footprint with a fixed stride so
		// the hot set spans rows and banks.
		stride := blocks / uint64(s.zipf.N())
		if stride == 0 {
			stride = 1
		}
		return (uint64(s.zipf.Sample(s.r)) * stride) % blocks
	}
	return s.r.Uint64() % blocks
}

// Next implements the generator contract: gap compute instructions, then
// one access.
func (s *Synth) Next() (gap int, addr uint64, write bool) {
	gap = int(s.r.ExpFloat64() * s.w.GapMean)
	if s.r.Float64() < s.w.SeqProb {
		s.cur = (s.cur + 1) % (s.w.Footprint / 64)
	} else {
		s.cur = s.randomBlock()
	}
	return gap, s.base + s.cur*64, s.r.Bool(s.w.WriteFrac)
}

// RowCycler is Fig. 13's Hydra-adversarial pattern: it walks a large set
// of distinct rows (stride apart) so every access activates a new row
// and thrashes any row-granular cache.
type RowCycler struct {
	Base   uint64
	Stride uint64
	Count  uint64
	i      uint64
}

// Next implements the generator contract.
func (a *RowCycler) Next() (int, uint64, bool) {
	addr := a.Base + (a.i%a.Count)*a.Stride
	a.i++
	return 0, addr, false
}

// PairHammer is Fig. 13's RRS-adversarial pattern: it alternates two
// conflicting rows in one bank, maximizing one row's activation rate
// (and thus the defense's swap rate).
type PairHammer struct {
	A, B uint64
	i    uint64
}

// Next implements the generator contract.
func (a *PairHammer) Next() (int, uint64, bool) {
	a.i++
	if a.i%2 == 0 {
		return 0, a.A, false
	}
	return 0, a.B, false
}
