package trace

import (
	"fmt"
	"strings"
)

// AttackTargets lists the defenses with modeled adversarial access
// patterns; a mix entry "attack:<target>" selects the pattern instead of
// a catalog workload (Fig. 13's attacker core).
var AttackTargets = []string{"hydra", "rrs"}

// CheckWorkload validates one mix entry: either a catalog workload name
// or an "attack:<target>" adversarial pattern.
func CheckWorkload(name string) error {
	if target, ok := strings.CutPrefix(name, "attack:"); ok {
		for _, a := range AttackTargets {
			if target == a {
				return nil
			}
		}
		return fmt.Errorf("trace: unknown attack pattern %q (have attack:%s)",
			name, strings.Join(AttackTargets, ", attack:"))
	}
	if _, ok := ByName(name); !ok {
		return fmt.Errorf("trace: unknown workload %q", name)
	}
	return nil
}

// ParseMix parses a comma-separated workload mix as supplied to
// svard-sweep ("mcf06, lbm06, attack:rrs, ..."), trimming whitespace and
// validating every entry against the catalog and the attack patterns.
// If cores > 0 the mix must have exactly that many entries.
func ParseMix(s string, cores int) ([]string, error) {
	parts := strings.Split(s, ",")
	mix := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("trace: empty workload entry in mix %q", s)
		}
		if err := CheckWorkload(p); err != nil {
			return nil, err
		}
		mix = append(mix, p)
	}
	if cores > 0 && len(mix) != cores {
		return nil, fmt.Errorf("trace: mix %q has %d workloads, need one per core (%d)", s, len(mix), cores)
	}
	return mix, nil
}
