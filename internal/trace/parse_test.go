package trace

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseMix(t *testing.T) {
	for _, tc := range []struct {
		name  string
		in    string
		cores int
		want  []string // nil: expect an error
	}{
		{"plain", "mcf06,lbm06", 2, []string{"mcf06", "lbm06"}},
		{"spaces", " mcf06 ,\tlbm06 ", 2, []string{"mcf06", "lbm06"}},
		{"attack-entries", "attack:hydra,mcf06", 0, []string{"attack:hydra", "mcf06"}},
		{"attack-rrs", "attack:rrs", 1, []string{"attack:rrs"}},
		{"any-count", "mcf06,lbm06,tpcc", 0, []string{"mcf06", "lbm06", "tpcc"}},
		{"unknown-workload", "mcf06,nope", 2, nil},
		{"unknown-attack", "attack:para,mcf06", 2, nil},
		{"bare-attack-prefix", "attack:,mcf06", 2, nil},
		{"empty-entry", "mcf06,,lbm06", 3, nil},
		{"empty-string", "", 1, nil},
		{"trailing-comma", "mcf06,lbm06,", 2, nil},
		{"wrong-count", "mcf06,lbm06", 3, nil},
		{"case-sensitive", "MCF06", 1, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParseMix(tc.in, tc.cores)
			if tc.want == nil {
				if err == nil {
					t.Errorf("ParseMix(%q, %d) = %v, want error", tc.in, tc.cores, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseMix(%q, %d): %v", tc.in, tc.cores, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("ParseMix(%q, %d) = %v, want %v", tc.in, tc.cores, got, tc.want)
			}
		})
	}
}

func TestCheckWorkloadCoversCatalogAndAttacks(t *testing.T) {
	for _, w := range Catalog() {
		if err := CheckWorkload(w.Name); err != nil {
			t.Errorf("catalog workload rejected: %v", err)
		}
	}
	for _, a := range AttackTargets {
		if err := CheckWorkload("attack:" + a); err != nil {
			t.Errorf("attack pattern rejected: %v", err)
		}
	}
	for _, bad := range []string{"", "attack:", "attack:aqua", "Attack:rrs", "mcf06 "} {
		if err := CheckWorkload(bad); err == nil {
			t.Errorf("CheckWorkload(%q) accepted", bad)
		}
	}
}

// FuzzParseMix hardens svard-sweep's user-supplied campaign specs: the
// parser must never panic, and anything it accepts must be a mix the
// simulator can actually run — every entry validated and round-trippable
// through the same flag syntax.
func FuzzParseMix(f *testing.F) {
	f.Add("mcf06,lbm06", 2)
	f.Add("attack:hydra,mcf06", 0)
	f.Add("attack:rrs", 1)
	f.Add(" attack: , ,", 3)
	f.Add("attack:attack:rrs", 1)
	f.Add("mcf06,\x00,lbm06", 3)
	f.Add(strings.Repeat("mcf06,", 64)+"mcf06", 0)
	f.Fuzz(func(t *testing.T, s string, cores int) {
		mix, err := ParseMix(s, cores)
		if err != nil {
			return
		}
		if cores > 0 && len(mix) != cores {
			t.Fatalf("ParseMix(%q, %d) accepted %d entries", s, cores, len(mix))
		}
		for _, w := range mix {
			if err := CheckWorkload(w); err != nil {
				t.Fatalf("accepted mix carries invalid entry: %v", err)
			}
			if w != strings.TrimSpace(w) || strings.Contains(w, ",") {
				t.Fatalf("accepted entry %q is not normalized", w)
			}
		}
		// Round trip: re-rendering the accepted mix must reparse to the
		// identical mix.
		again, err := ParseMix(strings.Join(mix, ","), len(mix))
		if err != nil {
			t.Fatalf("accepted mix %v does not reparse: %v", mix, err)
		}
		if !reflect.DeepEqual(mix, again) {
			t.Fatalf("round trip changed the mix: %v vs %v", mix, again)
		}
	})
}
