package trace

import (
	"testing"
	"testing/quick"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) < 25 {
		t.Fatalf("catalog has %d workloads; the mixes need a wide pool", len(cat))
	}
	suites := map[string]int{}
	names := map[string]bool{}
	for _, w := range cat {
		suites[w.Suite]++
		if names[w.Name] {
			t.Fatalf("duplicate workload name %s", w.Name)
		}
		names[w.Name] = true
		if w.GapMean <= 0 || w.Footprint == 0 {
			t.Errorf("%s: degenerate parameters", w.Name)
		}
		if w.SeqProb < 0 || w.SeqProb > 1 || w.WriteFrac < 0 || w.WriteFrac > 1 {
			t.Errorf("%s: probabilities out of range", w.Name)
		}
	}
	for _, s := range []string{"SPEC06", "SPEC17", "TPC", "Media", "YCSB"} {
		if suites[s] == 0 {
			t.Errorf("suite %s missing (the paper draws from five suites)", s)
		}
	}
}

func TestMixesDeterministicAndSized(t *testing.T) {
	a := Mixes(120, 8, 7)
	b := Mixes(120, 8, 7)
	if len(a) != 120 {
		t.Fatalf("mixes = %d", len(a))
	}
	for i := range a {
		if len(a[i]) != 8 {
			t.Fatalf("mix %d has %d cores", i, len(a[i]))
		}
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				t.Fatal("mixes not deterministic")
			}
			if _, ok := ByName(a[i][c]); !ok {
				t.Fatalf("mix references unknown workload %s", a[i][c])
			}
		}
	}
}

func TestSynthRespectsFootprintAndBase(t *testing.T) {
	w, _ := ByName("mcf06")
	base := uint64(1) << 40
	g := NewSynth(w, base, 3)
	for i := 0; i < 50_000; i++ {
		gap, addr, _ := g.Next()
		if gap < 0 {
			t.Fatal("negative gap")
		}
		if addr < base || addr >= base+w.Footprint {
			t.Fatalf("address %x outside [%x, %x)", addr, base, base+w.Footprint)
		}
	}
}

func TestSynthWriteFraction(t *testing.T) {
	w, _ := ByName("ycsb-a") // 50% writes
	g := NewSynth(w, 0, 5)
	writes := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		_, _, wr := g.Next()
		if wr {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("write fraction = %v, want ~0.5", frac)
	}
}

func TestStreamingVsRandomLocality(t *testing.T) {
	seq := func(name string) float64 {
		w, _ := ByName(name)
		g := NewSynth(w, 0, 9)
		_, prev, _ := g.Next()
		sequential := 0
		const n = 20_000
		for i := 0; i < n; i++ {
			_, addr, _ := g.Next()
			if addr == prev+64 {
				sequential++
			}
			prev = addr
		}
		return float64(sequential) / n
	}
	if s, r := seq("lbm06"), seq("mcf06"); s < 2*r {
		t.Errorf("streaming locality (%v) not above pointer-chasing (%v)", s, r)
	}
}

func TestZipfWorkloadsReuseHotSet(t *testing.T) {
	w, _ := ByName("ycsb-c")
	g := NewSynth(w, 0, 11)
	counts := map[uint64]int{}
	const n = 50_000
	for i := 0; i < n; i++ {
		_, addr, _ := g.Next()
		counts[addr>>6]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 20 {
		t.Errorf("hottest block touched %d times; zipf reuse missing", max)
	}
}

func TestAttackers(t *testing.T) {
	rc := &RowCycler{Base: 0, Stride: 1 << 18, Count: 100}
	seen := map[uint64]bool{}
	for i := 0; i < 250; i++ {
		gap, addr, wr := rc.Next()
		if gap != 0 || wr {
			t.Fatal("attacker must be a pure read storm")
		}
		seen[addr] = true
	}
	if len(seen) != 100 {
		t.Errorf("cycler touched %d distinct addresses, want 100", len(seen))
	}
	ph := &PairHammer{A: 0, B: 1 << 18}
	a, b := 0, 0
	for i := 0; i < 100; i++ {
		_, addr, _ := ph.Next()
		switch addr {
		case ph.A:
			a++
		case ph.B:
			b++
		default:
			t.Fatal("pair hammer strayed")
		}
	}
	if a != 50 || b != 50 {
		t.Errorf("pair hammer split %d/%d", a, b)
	}
}

func TestQuickSynthAddressesInRange(t *testing.T) {
	w, _ := ByName("tpcc")
	f := func(seed uint16) bool {
		g := NewSynth(w, 0, uint64(seed))
		for i := 0; i < 200; i++ {
			_, addr, _ := g.Next()
			if addr >= w.Footprint {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
