// Package report renders experiment data as text tables, one renderer
// per paper table/figure, for the cmd binaries and EXPERIMENTS.md.
package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"svard/internal/charz"
	"svard/internal/sim"
)

// Table is a simple fixed-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row of cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns. Widths are sized to
// the widest row, not just the headers, so a row with more cells than
// headers still aligns (its extra columns simply have empty headers).
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, row := range t.Rows {
		if len(row) > cols {
			cols = len(row)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func hcK(v float64) string {
	return fmt.Sprintf("%.1fK", v/1024)
}

// Table5 renders the measured module inventory.
func Table5(rows []charz.Table5Row) string {
	t := Table{
		Title:   "Table 5: Tested DDR4 DRAM modules (measured on the simulated chips)",
		Headers: []string{"Module", "Mfr", "Chips", "Den.", "Rev", "Org", "MT/s", "Rows/Bank", "HCfirst Min", "Avg", "Max"},
	}
	for _, r := range rows {
		t.Add(r.Label, r.Mfr, fmt.Sprint(r.Chips), fmt.Sprintf("%dGb", r.DensityGb), r.DieRev,
			fmt.Sprintf("x%d", r.Org), fmt.Sprint(r.FreqMTs), fmt.Sprint(r.RowsPerBank),
			hcK(r.MinHC), hcK(r.AvgHC), hcK(r.MaxHC))
	}
	return t.String()
}

// Fig3 renders one module's per-bank BER box statistics.
func Fig3(d charz.Fig3Data) string {
	t := Table{
		Title:   fmt.Sprintf("Fig. 3 (%s): BER across rows per bank @128K hammers, CV=%.2f%%", d.Label, d.CV*100),
		Headers: []string{"Bank", "Min", "Q1", "Median", "Q3", "Max", "Mean"},
	}
	for _, b := range d.Banks {
		s := b.Summary
		t.Add(fmt.Sprint(b.Bank),
			fmt.Sprintf("%.3e", s.Min), fmt.Sprintf("%.3e", s.Q1), fmt.Sprintf("%.3e", s.Median),
			fmt.Sprintf("%.3e", s.Q3), fmt.Sprintf("%.3e", s.Max), fmt.Sprintf("%.3e", s.Mean))
	}
	return t.String()
}

// Fig4 renders the normalized BER-by-location series, coarsened to a
// few buckets.
func Fig4(label string, pts []charz.Fig4Point, buckets int) string {
	t := Table{
		Title:   fmt.Sprintf("Fig. 4 (%s): BER @128K vs relative row location (norm. to min)", label),
		Headers: []string{"Location", "Norm BER", "Min", "Max"},
	}
	step := len(pts) / buckets
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		t.Add(fmt.Sprintf("%.2f", p.Loc), fmt.Sprintf("%.3f", p.Norm),
			fmt.Sprintf("%.3f", p.NormLo), fmt.Sprintf("%.3f", p.NormHi))
	}
	return t.String()
}

// Fig5 renders the HCfirst histogram.
func Fig5(label string, levels []charz.Fig5Level) string {
	t := Table{
		Title:   fmt.Sprintf("Fig. 5 (%s): fraction of rows per HCfirst level", label),
		Headers: []string{"HCfirst", "Fraction", "Min(bank)", "Max(bank)"},
	}
	for _, l := range levels {
		if l.Frac == 0 && l.FracHi == 0 {
			continue
		}
		t.Add(hcK(l.Level), fmt.Sprintf("%.4f", l.Frac),
			fmt.Sprintf("%.4f", l.FracLo), fmt.Sprintf("%.4f", l.FracHi))
	}
	return t.String()
}

// Fig7 renders the RowPress on-time sweep.
func Fig7(label string, boxes []charz.Fig7Box) string {
	t := Table{
		Title:   fmt.Sprintf("Fig. 7 (%s): HCfirst vs aggressor on-time (RowPress)", label),
		Headers: []string{"tAggOn", "Min", "Q1", "Median", "Q3", "Max", "CV"},
	}
	for _, b := range boxes {
		s := b.Summary
		t.Add(fmt.Sprintf("%.0fns", b.TAggOnNs), hcK(s.Min), hcK(s.Q1), hcK(s.Median),
			hcK(s.Q3), hcK(s.Max), fmt.Sprintf("%.1f%%", b.CV*100))
	}
	return t.String()
}

// Fig8 renders the silhouette sweep.
func Fig8(label string, d charz.Fig8Data) string {
	t := Table{
		Title:   fmt.Sprintf("Fig. 8 (%s): silhouette vs k (truth %d, best %d)", label, d.TruthK, d.BestK),
		Headers: []string{"k", "Silhouette"},
	}
	for _, p := range d.Curve {
		marker := ""
		if p.K == d.BestK {
			marker = "  <= best"
		}
		t.Add(fmt.Sprint(p.K), fmt.Sprintf("%.4f%s", p.Score, marker))
	}
	return t.String()
}

// Fig9 renders the feature-correlation curve.
func Fig9(d charz.Fig9Data) string {
	t := Table{
		Title:   fmt.Sprintf("Fig. 9 (%s): fraction of spatial features above F1 threshold (max F1 %.2f)", d.Label, d.MaxF1),
		Headers: []string{"F1 threshold", "Fraction"},
	}
	for i := range d.Thresholds {
		t.Add(fmt.Sprintf("%.1f", d.Thresholds[i]), fmt.Sprintf("%.3f", d.Fraction[i]))
	}
	return t.String()
}

// Table3 renders the strong features of all modules.
func Table3(data []charz.Fig9Data) string {
	t := Table{
		Title:   "Table 3: spatial features with F1 > 0.7",
		Headers: []string{"Module", "Features", "Avg F1"},
	}
	for _, d := range data {
		if len(d.Strong) == 0 {
			continue
		}
		var names []string
		sum := 0.0
		for _, s := range d.Strong {
			names = append(names, s.Feature.String())
			sum += s.F1
		}
		t.Add(d.Label, strings.Join(names, ", "), fmt.Sprintf("%.2f", sum/float64(len(d.Strong))))
	}
	return t.String()
}

// Fig10 renders the aging transitions.
func Fig10(label string, cells []charz.Fig10Cell) string {
	t := Table{
		Title:   fmt.Sprintf("Fig. 10 (%s): HCfirst before vs after 68 days of aging", label),
		Headers: []string{"Before", "After", "Fraction"},
	}
	sorted := append([]charz.Fig10Cell(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Before != sorted[j].Before {
			return sorted[i].Before < sorted[j].Before
		}
		return sorted[i].After < sorted[j].After
	})
	for _, c := range sorted {
		t.Add(hcK(c.Before), hcK(c.After), fmt.Sprintf("%.2f%%", c.Fraction*100))
	}
	return t.String()
}

// Fig12 renders the performance sweep for one defense.
func Fig12(defense string, cells []sim.Fig12Cell) string {
	t := Table{
		Title:   fmt.Sprintf("Fig. 12 (%s): normalized weighted/harmonic speedup and max slowdown", defense),
		Headers: []string{"HCfirst", "Config", "WS", "WS min..max", "HS", "MaxSlowdown", "Bitflips"},
	}
	for _, c := range cells {
		if c.Defense != defense {
			continue
		}
		t.Add(fmt.Sprintf("%.0f", c.NRH), c.Config,
			fmt.Sprintf("%.3f", c.WS), fmt.Sprintf("%.3f..%.3f", c.WSMin, c.WSMax),
			fmt.Sprintf("%.3f", c.HS), fmt.Sprintf("%.3f", c.MS), fmt.Sprint(c.Violations))
	}
	return t.String()
}

// Bands renders the population confidence bands for one defense: the
// Fig. 12 grid with per-metric p5/p50/p95 over the sampled modules
// instead of three point estimates.
func Bands(defense string, cells []sim.BandCell) string {
	t := Table{
		Title:   fmt.Sprintf("Fig. 12 population bands (%s): weighted speedup p5/p50/p95 over sampled modules", defense),
		Headers: []string{"HCfirst", "Config", "Modules", "WS p5", "WS p50", "WS p95", "WS mean", "MS p95", "Bitflips"},
	}
	for _, c := range cells {
		if c.Defense != defense {
			continue
		}
		t.Add(fmt.Sprintf("%.0f", c.NRH), c.Config, fmt.Sprint(c.Modules),
			fmt.Sprintf("%.3f", c.WS.P5), fmt.Sprintf("%.3f", c.WS.P50), fmt.Sprintf("%.3f", c.WS.P95),
			fmt.Sprintf("%.3f", c.WS.Mean), fmt.Sprintf("%.3f", c.MS.P95), fmt.Sprint(c.Violations))
	}
	return t.String()
}

// BandsJSON emits the full band cells (all three metrics with complete
// distribution summaries) as indented JSON for downstream plotting.
func BandsJSON(cells []sim.BandCell) ([]byte, error) {
	return json.MarshalIndent(cells, "", "  ")
}

// Erosion renders the margin-erosion sweep: per (defense, config,
// re-calibration interval), the smallest violation-free swept nRH under
// the calibration-time truth vs. the drifted live truth, the resulting
// margin shift, and the bitflips the drift produces at the calibrated
// operating point. "none" in the nRH columns means no swept threshold
// kept the tracker silent.
func Erosion(cells []sim.ErosionCell) string {
	t := Table{
		Title:   "Margin erosion: violation-free nRH under calibration vs drifted truth",
		Headers: []string{"Defense", "Config", "Interval", "Calib nRH", "Live nRH", "Shift", "Bitflips@Calib"},
	}
	nrh := func(v float64) string {
		if v == 0 {
			return "none"
		}
		return fmt.Sprintf("%.0f", v)
	}
	for _, c := range cells {
		shift := "-"
		if c.Shift != 0 {
			shift = fmt.Sprintf("%.2fx", c.Shift)
		}
		t.Add(c.Defense, c.Config, fmt.Sprintf("%d ep", c.Interval),
			nrh(c.CalibNRH), nrh(c.LiveNRH), shift, fmt.Sprint(c.Violations))
	}
	return t.String()
}

// Obsv15 renders the residual overheads at one threshold.
func Obsv15(cells []sim.Fig12Cell, nrh float64) string {
	t := Table{
		Title:   fmt.Sprintf("Obsv. 15: performance overhead (1-WS) at HCfirst=%.0f", nrh),
		Headers: []string{"Defense", "Config", "Overhead"},
	}
	for _, c := range cells {
		if c.NRH != nrh {
			continue
		}
		t.Add(c.Defense, c.Config, fmt.Sprintf("%.2f%%", (1-c.WS)*100))
	}
	return t.String()
}

// Fig13 renders the adversarial-pattern slowdowns.
func Fig13(cells []sim.Fig13Cell) string {
	t := Table{
		Title:   "Fig. 13: adversarial access patterns, slowdown normalized to No-Svärd",
		Headers: []string{"Defense", "Config", "Slowdown", "Norm. to NoSvard"},
	}
	for _, c := range cells {
		t.Add(c.Defense, c.Config, fmt.Sprintf("%.3f", c.Slowdown), fmt.Sprintf("%.3f", c.RelToNoSvard))
	}
	return t.String()
}
