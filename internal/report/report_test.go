package report

import (
	"strings"
	"testing"

	"svard/internal/charz"
	"svard/internal/sim"
	"svard/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tab := Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tab.Add("xxxxxx", "y")
	out := tab.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "xxxxxx") {
		t.Errorf("table output malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, row
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

// TestTableRowsWiderThanHeaders: a row with more cells than headers used
// to misalign silently (the width loop guarded i < len(widths)); widths
// must size to the widest row and every line must align.
func TestTableRowsWiderThanHeaders(t *testing.T) {
	tab := Table{Headers: []string{"h1", "h2"}}
	tab.Add("a", "b", "a-third-cell")
	tab.Add("wider-than-h1", "b", "c", "fourth")
	out := tab.String()

	for _, cell := range []string{"a-third-cell", "fourth", "wider-than-h1"} {
		if !strings.Contains(out, cell) {
			t.Errorf("cell %q missing from output:\n%s", cell, out)
		}
	}
	// Every cell aligns on the same column starts: the second column of
	// each line begins at the same offset (width of the widest first
	// column + separator).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Column starts must agree across rows: the second column begins
	// after the widest first cell, the third after the widest second.
	col2 := len("wider-than-h1") + 2
	col3 := col2 + len("h2") + 2
	row1, row2 := lines[2], lines[3]
	if got := strings.Index(row1, "b"); got != col2 {
		t.Errorf("row 1 second column at %d, want %d\n%s", got, col2, out)
	}
	if got := strings.Index(row2, "b"); got != col2 {
		t.Errorf("row 2 second column at %d, want %d\n%s", got, col2, out)
	}
	if got := strings.Index(row1, "a-third-cell"); got != col3 {
		t.Errorf("row 1 third column at %d, want %d\n%s", got, col3, out)
	}
	if got := strings.Index(row2, "c"); got != col3 {
		t.Errorf("row 2 third column at %d, want %d\n%s", got, col3, out)
	}
}

func TestRenderersProduceAllRows(t *testing.T) {
	t5 := Table5([]charz.Table5Row{{Label: "H0", Mfr: "SK Hynix", MinHC: 16384, AvgHC: 47309, MaxHC: 98304}})
	if !strings.Contains(t5, "H0") || !strings.Contains(t5, "16.0K") {
		t.Errorf("Table5 output:\n%s", t5)
	}
	f3 := Fig3(charz.Fig3Data{Label: "M1", CV: 0.08, Banks: []charz.Fig3Bank{{Bank: 1, Summary: stats.Summarize([]float64{1e-4, 2e-4})}}})
	if !strings.Contains(f3, "M1") || !strings.Contains(f3, "8.00%") {
		t.Errorf("Fig3 output:\n%s", f3)
	}
	f12 := Fig12("para", []sim.Fig12Cell{
		{Defense: "para", NRH: 64, Config: "NoSvard", WS: 0.6, HS: 0.58, MS: 1.7},
		{Defense: "rrs", NRH: 64, Config: "NoSvard", WS: 0.4},
	})
	if !strings.Contains(f12, "NoSvard") || strings.Contains(f12, "0.400") {
		t.Errorf("Fig12 must filter by defense:\n%s", f12)
	}
	o15 := Obsv15([]sim.Fig12Cell{{Defense: "rrs", NRH: 64, Config: "Svard-S0", WS: 0.9}}, 64)
	if !strings.Contains(o15, "10.00%") {
		t.Errorf("Obsv15 overhead wrong:\n%s", o15)
	}
	f13 := Fig13([]sim.Fig13Cell{{Defense: "rrs", Config: "NoSvard", Slowdown: 2.5, RelToNoSvard: 1}})
	if !strings.Contains(f13, "2.500") {
		t.Errorf("Fig13 output:\n%s", f13)
	}
	ero := Erosion([]sim.ErosionCell{
		{Defense: "para", Config: "NoSvard", Interval: 0, CalibNRH: 64, LiveNRH: 64, Shift: 1},
		{Defense: "para", Config: "NoSvard", Interval: 64, CalibNRH: 64, LiveNRH: 1024, Shift: 16, Violations: 1757},
		{Defense: "rrs", Config: "Svard-S0", Interval: 64, CalibNRH: 64, LiveNRH: 0, Shift: 0, Violations: 9},
	})
	for _, want := range []string{"64 ep", "1.00x", "16.00x", "1757", "none", "-"} {
		if !strings.Contains(ero, want) {
			t.Errorf("Erosion output missing %q:\n%s", want, ero)
		}
	}
}
