package mem

import (
	"testing"

	"svard/internal/dram"
)

func testSystem() *System {
	t := CyclesFrom(dram.DDR4Timing(3200), 3.2)
	return NewSystem(t, 2, 4, 4, 8192)
}

func TestCyclesFromRounding(t *testing.T) {
	tim := CyclesFrom(dram.DDR4Timing(3200), 3.2)
	// 36 ns * 3.2 GHz = 115.2 → 116 cycles (rounded up).
	if tim.RAS != 116 {
		t.Errorf("RAS = %d cycles, want 116", tim.RAS)
	}
	if tim.RC != tim.RAS+tim.RP && tim.RC < tim.RAS {
		t.Errorf("RC = %d inconsistent with RAS %d + RP %d", tim.RC, tim.RAS, tim.RP)
	}
	if tim.REFW <= tim.REFI {
		t.Error("REFW must exceed REFI")
	}
}

// TestCyclesFromWTRFromPreset: the write-to-read turnarounds come from
// the dram.Timing preset (the regression was hard-coded DDR4 values at
// this layer, which every non-DDR4 backend would silently inherit).
func TestCyclesFromWTRFromPreset(t *testing.T) {
	ddr4 := CyclesFrom(dram.DDR4Timing(3200), 3.2)
	// 2.5 ns * 3.2 GHz = 8; 7.5 ns * 3.2 GHz = 24.
	if ddr4.WTRS != 8 || ddr4.WTRL != 24 {
		t.Errorf("DDR4 WTR = (%d, %d) cycles, want (8, 24)", ddr4.WTRS, ddr4.WTRL)
	}
	custom := dram.DDR4Timing(3200)
	custom.TWTRS, custom.TWTRL = 5.0, 10.0
	got := CyclesFrom(custom, 3.2)
	if got.WTRS != 16 || got.WTRL != 32 {
		t.Errorf("custom WTR = (%d, %d) cycles, want (16, 32) — WTR not read from the preset", got.WTRS, got.WTRL)
	}
	hbm2 := CyclesFrom(dram.HBM2Timing(), 3.2)
	if hbm2.WTRL == ddr4.WTRL {
		t.Error("HBM2 WTRL identical to DDR4; preset not honored")
	}
}

func TestActPreCycleTiming(t *testing.T) {
	s := testSystem()
	if !s.CanACT(0, 0) {
		t.Fatal("fresh bank rejects ACT")
	}
	s.ACT(0, 42, 0)
	if s.Banks[0].OpenRow != 42 {
		t.Fatal("row not open")
	}
	if s.CanPRE(0, 1) {
		t.Error("PRE allowed before tRAS")
	}
	if !s.CanPRE(0, s.T.RAS) {
		t.Error("PRE rejected at tRAS")
	}
	row, on := s.PRE(0, s.T.RAS)
	if row != 42 || on != s.T.RAS {
		t.Errorf("PRE returned %d/%d", row, on)
	}
	if s.CanACT(0, s.T.RAS+1) {
		t.Error("ACT allowed before tRP")
	}
	if !s.CanACT(0, s.T.RAS+s.T.RP) {
		t.Error("ACT rejected after tRP")
	}
}

func TestTFAWBlocksFifthActivation(t *testing.T) {
	s := testSystem()
	// Four ACTs to different bank groups, spaced by tRRD_S.
	cyc := uint64(0)
	for i := 0; i < 4; i++ {
		bank := i * 4 // one per bank group
		if !s.CanACT(bank, cyc) {
			t.Fatalf("ACT %d rejected at %d", i, cyc)
		}
		s.ACT(bank, 1, cyc)
		cyc += s.T.RRDS
	}
	// The fifth ACT within tFAW of the first must be rejected.
	fifth := 16 + 1 // a bank in rank 1 (independent RRD would allow it)
	_ = fifth
	if s.CanACT(1, cyc) && cyc < s.T.FAW {
		t.Errorf("fifth ACT allowed inside tFAW window at %d", cyc)
	}
	if !s.CanACT(1, s.T.FAW+1) {
		t.Error("ACT still rejected after tFAW")
	}
}

func TestColumnTiming(t *testing.T) {
	s := testSystem()
	s.ACT(3, 7, 0)
	if s.CanColumn(3, 7, false, s.T.RCD-1) {
		t.Error("RD allowed before tRCD")
	}
	if !s.CanColumn(3, 7, false, s.T.RCD) {
		t.Error("RD rejected at tRCD")
	}
	end := s.Column(3, false, s.T.RCD)
	if end != s.T.RCD+s.T.CL+s.T.BL {
		t.Errorf("read data end = %d", end)
	}
	if s.CanColumn(3, 8, false, end) {
		t.Error("column to a different row accepted")
	}
	// Write extends the precharge horizon by tWR.
	s2 := testSystem()
	s2.ACT(0, 1, 0)
	wEnd := s2.Column(0, true, s2.T.RCD)
	if s2.Banks[0].PreReady < wEnd+s2.T.WR {
		t.Error("write recovery not enforced before PRE")
	}
}

func TestDataBusSerializesBursts(t *testing.T) {
	s := testSystem()
	s.ACT(0, 1, 0)
	s.ACT(4, 1, s.T.RRDS) // different bank group
	c := s.T.RCD + s.T.RRDS
	s.Column(0, false, c)
	// A second read whose data would overlap the first burst must wait.
	if s.CanColumn(4, 1, false, c) {
		t.Error("overlapping data bursts accepted")
	}
	if !s.CanColumn(4, 1, false, c+s.T.BL) {
		t.Error("post-burst column rejected")
	}
}

func TestRefreshBlocksRank(t *testing.T) {
	s := testSystem()
	if s.RefreshDue(0, 0) {
		t.Error("refresh due at cycle 0")
	}
	due := s.Ranks[0].NextREF
	if !s.RefreshDue(0, due) {
		t.Error("refresh not due at tREFI")
	}
	s.REF(0, due)
	if s.CanACT(0, due+1) {
		t.Error("ACT allowed during refresh")
	}
	// Rank 1 is unaffected.
	if !s.CanACT(16, due+s.T.RRDS) {
		t.Error("other rank blocked by refresh")
	}
	if s.CanACT(0, due+s.T.RFC-1) {
		t.Error("ACT allowed before tRFC elapsed")
	}
	if !s.CanACT(0, due+s.T.RFC) {
		t.Error("ACT rejected after tRFC")
	}
}

// checkEarliest asserts the three *Earliest bounds agree exactly with
// their Can* predicates in the system's current state: the command is
// rejected one cycle before the bound and accepted at it.
func checkEarliest(t *testing.T, s *System, ctx string) {
	t.Helper()
	for b := range s.Banks {
		if s.Banks[b].OpenRow < 0 {
			e := s.ActEarliest(b)
			if e > 0 && s.CanACT(b, e-1) {
				t.Fatalf("%s: bank %d: ACT allowed at %d before ActEarliest %d", ctx, b, e-1, e)
			}
			if !s.CanACT(b, e) {
				t.Fatalf("%s: bank %d: ACT rejected at ActEarliest %d", ctx, b, e)
			}
			continue
		}
		row := s.Banks[b].OpenRow
		pe := s.PreEarliest(b)
		if pe > 0 && s.CanPRE(b, pe-1) {
			t.Fatalf("%s: bank %d: PRE allowed at %d before PreEarliest %d", ctx, b, pe-1, pe)
		}
		if !s.CanPRE(b, pe) {
			t.Fatalf("%s: bank %d: PRE rejected at PreEarliest %d", ctx, b, pe)
		}
		for _, write := range []bool{false, true} {
			e := s.ColumnEarliest(b, write)
			if e > 0 && s.CanColumn(b, row, write, e-1) {
				t.Fatalf("%s: bank %d: column(write=%v) allowed at %d before ColumnEarliest %d", ctx, b, write, e-1, e)
			}
			if !s.CanColumn(b, row, write, e) {
				t.Fatalf("%s: bank %d: column(write=%v) rejected at ColumnEarliest %d", ctx, b, write, e)
			}
		}
	}
}

// TestEarliestMatchesCanPredicates drives a deterministic pseudo-random
// command walk and, after every command, cross-checks every bank's
// earliest-issue bounds against the Can* predicates the event engine
// replaces with them.
func TestEarliestMatchesCanPredicates(t *testing.T) {
	s := testSystem()
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	cycle := uint64(0)
	for step := 0; step < 4000; step++ {
		cycle += next(40)
		for rank := range s.Ranks {
			s.EndRefreshIfDone(rank, cycle)
			if s.RefreshDue(rank, cycle) && !s.Ranks[rank].Refreshing && s.AllPrecharged(rank) {
				s.REF(rank, cycle)
			}
		}
		bank := int(next(uint64(s.TotalBanks())))
		switch b := &s.Banks[bank]; {
		case b.OpenRow < 0:
			if s.CanACT(bank, cycle) {
				s.ACT(bank, int(next(64)), cycle)
			}
		case next(3) == 0:
			if s.CanPRE(bank, cycle) {
				s.PRE(bank, cycle)
			}
		default:
			write := next(2) == 0
			if s.CanColumn(bank, b.OpenRow, write, cycle) {
				s.Column(bank, write, cycle)
			}
		}
		checkEarliest(t, s, "walk")
	}
}

func TestBlockBank(t *testing.T) {
	s := testSystem()
	s.BlockBank(5, 100, 1000)
	if s.CanACT(5, 900) {
		t.Error("blocked bank accepts ACT")
	}
	if !s.CanACT(5, 1101) {
		t.Error("bank still blocked after busy window")
	}
}
