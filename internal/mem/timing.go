// Package mem provides the cycle-level DDR4 device timing used by the
// performance simulator (§7.1, Table 4): per-bank state machines with
// ready-time bookkeeping for ACT/PRE/RD/WR/REF, rank-level tFAW/tRRD
// windows, and the shared data bus. All times are in CPU cycles.
package mem

import (
	"math"

	"svard/internal/dram"
)

// Timing holds DDR4 timing parameters converted to CPU clock cycles.
type Timing struct {
	RCD  uint64 // ACT to column command
	RAS  uint64 // ACT to PRE
	RP   uint64 // PRE to ACT
	RC   uint64 // ACT to ACT, same bank
	CL   uint64 // read latency
	CWL  uint64 // write latency
	BL   uint64 // data burst occupancy
	CCDS uint64 // column-to-column, different bank group
	CCDL uint64 // column-to-column, same bank group
	RRDS uint64 // ACT-to-ACT, different bank group
	RRDL uint64 // ACT-to-ACT, same bank group
	FAW  uint64 // four-activate window
	WR   uint64 // write recovery
	WTRS uint64 // write-to-read, different bank group
	WTRL uint64 // write-to-read, same bank group
	RTP  uint64 // read to precharge
	RFC  uint64 // refresh latency
	REFI uint64 // refresh interval
	REFW uint64 // refresh window
}

// CyclesFrom converts a nanosecond DDR4 timing set to CPU cycles at
// cpuGHz, rounding every parameter up (conservative).
func CyclesFrom(t dram.Timing, cpuGHz float64) Timing {
	c := func(ns float64) uint64 { return uint64(math.Ceil(ns * cpuGHz)) }
	return Timing{
		RCD:  c(t.TRCD),
		RAS:  c(t.TRAS),
		RP:   c(t.TRP),
		RC:   c(t.TRC()),
		CL:   c(t.TCL),
		CWL:  c(t.TCWL),
		BL:   c(t.TBL),
		CCDS: c(t.TCCDS),
		CCDL: c(t.TCCDL),
		RRDS: c(t.TRRDS),
		RRDL: c(t.TRRDL),
		FAW:  c(t.TFAW),
		WR:   c(t.TWR),
		WTRS: c(t.TWTRS),
		WTRL: c(t.TWTRL),
		RTP:  c(t.TRTP),
		RFC:  c(t.TRFC),
		REFI: c(t.TREFI),
		REFW: c(t.TREFW),
	}
}
