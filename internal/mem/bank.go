package mem

// Bank is the cycle-level state of one DRAM bank: the open row and the
// earliest cycles at which each command class may issue.
type Bank struct {
	OpenRow   int    // -1 when precharged
	ActAt     uint64 // cycle of the last ACT (for row on-time accounting)
	ActReady  uint64 // earliest next ACT
	ColReady  uint64 // earliest next RD/WR to the open row
	PreReady  uint64 // earliest next PRE
	BusyUntil uint64 // bank blocked (refresh, row migration)
	HitStreak int    // consecutive row-hit column commands (FR-FCFS cap)
	ActCount  uint64 // statistics
	PreCount  uint64
}

// Rank tracks rank-level activation windows shared by its banks.
type Rank struct {
	actTimes [4]uint64 // rolling window of the last four ACT cycles
	actIdx   int
	actCount uint64
	lastAct  uint64
	lastBG   int
	anyAct   bool

	NextREF    uint64 // next refresh deadline
	Refreshing bool
	RefUntil   uint64
}

// Channel is the shared command/data bus state.
type Channel struct {
	DataFree  uint64 // earliest cycle the data bus is free
	lastRdEnd uint64
	lastWrEnd uint64
}

// System is the cycle-level DRAM device array: ranks × banks with
// shared channel state.
type System struct {
	T           Timing
	BankGroups  int
	BanksPerGG  int // banks per bank group
	Ranks       []Rank
	Banks       []Bank // [rank*banksPerRank + bank]
	Chan        Channel
	RowsPerBank int

	// rankOf/groupOf memoize RankOf/GroupOf per bank: both sit on the
	// per-candidate paths of the controller's scheduling scans, where an
	// integer divide per call is measurable.
	rankOf  []int32
	groupOf []int32
}

// NewSystem builds a DRAM system with the given organization.
func NewSystem(t Timing, ranks, bankGroups, banksPerGroup, rowsPerBank int) *System {
	s := &System{}
	s.Reset(t, ranks, bankGroups, banksPerGroup, rowsPerBank)
	return s
}

// Reset reinitializes the system in place to the state NewSystem
// produces, retaining the rank and bank slices when the organization
// still fits — the pooled-reuse path between sweep cells.
func (s *System) Reset(t Timing, ranks, bankGroups, banksPerGroup, rowsPerBank int) {
	s.T = t
	s.BankGroups = bankGroups
	s.BanksPerGG = banksPerGroup
	if cap(s.Ranks) >= ranks {
		s.Ranks = s.Ranks[:ranks]
	} else {
		s.Ranks = make([]Rank, ranks)
	}
	for r := range s.Ranks {
		s.Ranks[r] = Rank{NextREF: t.REFI}
	}
	banks := ranks * bankGroups * banksPerGroup
	if cap(s.Banks) >= banks {
		s.Banks = s.Banks[:banks]
	} else {
		s.Banks = make([]Bank, banks)
	}
	for i := range s.Banks {
		s.Banks[i] = Bank{OpenRow: -1}
	}
	s.Chan = Channel{}
	s.RowsPerBank = rowsPerBank
	if cap(s.rankOf) >= banks {
		s.rankOf = s.rankOf[:banks]
		s.groupOf = s.groupOf[:banks]
	} else {
		s.rankOf = make([]int32, banks)
		s.groupOf = make([]int32, banks)
	}
	perRank := bankGroups * banksPerGroup
	for b := 0; b < banks; b++ {
		s.rankOf[b] = int32(b / perRank)
		s.groupOf[b] = int32(b % perRank / banksPerGroup)
	}
}

// BanksPerRank returns the banks in one rank.
func (s *System) BanksPerRank() int { return s.BankGroups * s.BanksPerGG }

// TotalBanks returns the number of banks across all ranks.
func (s *System) TotalBanks() int { return len(s.Banks) }

// RankOf returns the rank of a global bank index.
func (s *System) RankOf(bank int) int { return int(s.rankOf[bank]) }

// GroupOf returns the bank group (within its rank) of a global bank.
func (s *System) GroupOf(bank int) int { return int(s.groupOf[bank]) }

// CanACT reports whether an ACT to bank may issue at cycle.
func (s *System) CanACT(bank int, cycle uint64) bool {
	b := &s.Banks[bank]
	if b.OpenRow >= 0 || cycle < b.ActReady || cycle < b.BusyUntil {
		return false
	}
	r := &s.Ranks[s.RankOf(bank)]
	if r.Refreshing && cycle < r.RefUntil {
		return false
	}
	if r.anyAct {
		rrd := s.T.RRDS
		if s.GroupOf(bank) == r.lastBG {
			rrd = s.T.RRDL
		}
		if cycle < r.lastAct+rrd {
			return false
		}
	}
	// tFAW: the fourth-last ACT must be at least FAW ago.
	if r.actCount >= 4 && cycle < r.actTimes[r.actIdx]+s.T.FAW {
		return false
	}
	return true
}

// ACT opens row in bank at cycle. The caller must have checked CanACT.
func (s *System) ACT(bank, row int, cycle uint64) {
	b := &s.Banks[bank]
	b.OpenRow = row
	b.ActAt = cycle
	b.ColReady = cycle + s.T.RCD
	b.PreReady = cycle + s.T.RAS
	b.ActReady = cycle + s.T.RC
	b.HitStreak = 0
	b.ActCount++
	r := &s.Ranks[s.RankOf(bank)]
	r.actTimes[r.actIdx] = cycle
	r.actIdx = (r.actIdx + 1) % 4
	r.actCount++
	r.lastAct = cycle
	r.lastBG = s.GroupOf(bank)
	r.anyAct = true
}

// CanPRE reports whether a PRE to bank may issue at cycle.
func (s *System) CanPRE(bank int, cycle uint64) bool {
	b := &s.Banks[bank]
	return b.OpenRow >= 0 && cycle >= b.PreReady && cycle >= b.BusyUntil
}

// PRE closes the open row and returns it with its on-time in cycles.
func (s *System) PRE(bank int, cycle uint64) (row int, onCycles uint64) {
	b := &s.Banks[bank]
	row = b.OpenRow
	onCycles = cycle - b.ActAt
	b.OpenRow = -1
	b.ActReady = maxU(b.ActReady, cycle+s.T.RP)
	b.PreCount++
	return row, onCycles
}

// CanColumn reports whether a RD/WR to the open row of bank may issue at
// cycle (row must match; the data bus must be free).
func (s *System) CanColumn(bank, row int, write bool, cycle uint64) bool {
	b := &s.Banks[bank]
	if b.OpenRow != row || cycle < b.ColReady || cycle < b.BusyUntil {
		return false
	}
	// Data bus occupancy: the burst must start after the previous one
	// ends (CL/CWL pipelining folded into a single bus-free time).
	var dataStart uint64
	if write {
		dataStart = cycle + s.T.CWL
	} else {
		dataStart = cycle + s.T.CL
	}
	return dataStart >= s.Chan.DataFree
}

// Column issues a RD or WR to the open row of bank, returning the cycle
// at which the data transfer completes.
func (s *System) Column(bank int, write bool, cycle uint64) uint64 {
	b := &s.Banks[bank]
	ccd := s.T.CCDS
	// Same-bank back-to-back columns use the long CCD; cross-bank-group
	// pairs the short one. Approximated per bank group via ColReady.
	_ = ccd
	var dataStart, dataEnd uint64
	if write {
		dataStart = cycle + s.T.CWL
		dataEnd = dataStart + s.T.BL
		b.PreReady = maxU(b.PreReady, dataEnd+s.T.WR)
		s.Chan.lastWrEnd = dataEnd
	} else {
		dataStart = cycle + s.T.CL
		dataEnd = dataStart + s.T.BL
		b.PreReady = maxU(b.PreReady, cycle+s.T.RTP)
		s.Chan.lastRdEnd = dataEnd
	}
	b.ColReady = maxU(b.ColReady, cycle+s.T.CCDL)
	b.HitStreak++
	s.Chan.DataFree = dataEnd
	return dataEnd
}

// RefreshDue reports whether rank must refresh at cycle.
func (s *System) RefreshDue(rank int, cycle uint64) bool {
	return cycle >= s.Ranks[rank].NextREF
}

// AllPrecharged reports whether every bank of rank is closed.
func (s *System) AllPrecharged(rank int) bool {
	base := rank * s.BanksPerRank()
	for b := base; b < base+s.BanksPerRank(); b++ {
		if s.Banks[b].OpenRow >= 0 {
			return false
		}
	}
	return true
}

// REF starts a refresh on rank at cycle: all its banks block for RFC.
func (s *System) REF(rank int, cycle uint64) {
	r := &s.Ranks[rank]
	r.NextREF += s.T.REFI
	r.Refreshing = true
	r.RefUntil = cycle + s.T.RFC
	base := rank * s.BanksPerRank()
	for b := base; b < base+s.BanksPerRank(); b++ {
		s.Banks[b].BusyUntil = maxU(s.Banks[b].BusyUntil, cycle+s.T.RFC)
		s.Banks[b].ActReady = maxU(s.Banks[b].ActReady, cycle+s.T.RFC)
	}
}

// EndRefreshIfDone clears the refreshing flag once RFC has elapsed.
func (s *System) EndRefreshIfDone(rank int, cycle uint64) {
	r := &s.Ranks[rank]
	if r.Refreshing && cycle >= r.RefUntil {
		r.Refreshing = false
	}
}

// The earliest-issue methods below are the timing exposure the
// event-driven simulation engine skips by: given the current (frozen)
// device state, each returns a lower bound on the first cycle at which
// the corresponding command could issue to the bank. The bounds are
// exact while no command issues — every ready time in Bank/Rank/Channel
// only moves when a command does — so a driver that ticks the
// controller at every returned cycle observes the identical command
// sequence as one that ticks every cycle (see sim.Run).

// ActEarliest returns the earliest cycle an ACT could issue to bank,
// assuming the bank stays precharged. Mirrors every CanACT constraint:
// bank ready times, refresh occupancy, tRRD, and tFAW.
func (s *System) ActEarliest(bank int) uint64 {
	b := &s.Banks[bank]
	t := maxU(b.ActReady, b.BusyUntil)
	r := &s.Ranks[s.RankOf(bank)]
	if r.Refreshing {
		t = maxU(t, r.RefUntil)
	}
	if r.anyAct {
		rrd := s.T.RRDS
		if s.GroupOf(bank) == r.lastBG {
			rrd = s.T.RRDL
		}
		t = maxU(t, r.lastAct+rrd)
	}
	if r.actCount >= 4 {
		t = maxU(t, r.actTimes[r.actIdx]+s.T.FAW)
	}
	return t
}

// PreEarliest returns the earliest cycle a PRE could issue to bank,
// assuming its row stays open (CanPRE's ready times).
func (s *System) PreEarliest(bank int) uint64 {
	b := &s.Banks[bank]
	return maxU(b.PreReady, b.BusyUntil)
}

// ColumnEarliest returns the earliest cycle a RD/WR could issue to the
// open row of bank, assuming it stays open (CanColumn's ready times and
// the data-bus occupancy).
func (s *System) ColumnEarliest(bank int, write bool) uint64 {
	b := &s.Banks[bank]
	t := maxU(b.ColReady, b.BusyUntil)
	lat := s.T.CL
	if write {
		lat = s.T.CWL
	}
	// dataStart = cycle + lat must reach Chan.DataFree.
	if s.Chan.DataFree > lat {
		t = maxU(t, s.Chan.DataFree-lat)
	}
	return t
}

// BlockBank blocks a bank for extra cycles (row migration, swap).
func (s *System) BlockBank(bank int, cycle, busyCycles uint64) {
	b := &s.Banks[bank]
	until := cycle + busyCycles
	b.BusyUntil = maxU(b.BusyUntil, until)
	b.ActReady = maxU(b.ActReady, until)
	b.ColReady = maxU(b.ColReady, until)
	b.PreReady = maxU(b.PreReady, until)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
