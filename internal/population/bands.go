package population

import "math"

// Band summarizes one metric's distribution over a module population:
// exact mean/min/max plus the p5/p50/p95 confidence band.
type Band struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P5   float64 `json:"p5"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// Acc is a streaming distribution accumulator sized for
// population-scale sweeps: O(bins) memory no matter how many values
// stream through, with quantiles read from a fixed-resolution histogram
// over [lo, hi). Histogram counts commute, so the resulting Band is
// exactly order-independent — any permutation of the same Add sequence
// yields bit-identical quantiles, min, and max (the mean is summed in
// stream order, which the sweeps keep deterministic).
//
// Quantiles are bin midpoints clamped into [Min, Max]: quantization
// error is bounded by the bin width (hi-lo)/bins, far below the
// sampling noise of any population the accumulator summarizes. Values
// outside [lo, hi) clamp into the edge bins; Min/Max stay exact.
type Acc struct {
	lo, width float64
	bins      []uint32
	n         int
	sum       float64
	min, max  float64
}

// NewAcc returns an accumulator over [lo, hi) with the given number of
// bins. It panics if the range or bin count is empty — accumulator
// shapes are compile-time decisions of the sweep that owns them.
func NewAcc(lo, hi float64, bins int) *Acc {
	if bins <= 0 || hi <= lo {
		panic("population: NewAcc needs bins >= 1 and hi > lo")
	}
	return &Acc{
		lo:    lo,
		width: (hi - lo) / float64(bins),
		bins:  make([]uint32, bins),
		min:   math.Inf(1),
		max:   math.Inf(-1),
	}
}

// Add folds one value in.
func (a *Acc) Add(v float64) {
	a.n++
	a.sum += v
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
	i := int((v - a.lo) / a.width)
	if i < 0 {
		i = 0
	}
	if i >= len(a.bins) {
		i = len(a.bins) - 1
	}
	a.bins[i]++
}

// N returns how many values have been folded in.
func (a *Acc) N() int { return a.n }

// Quantile returns the q-quantile (q in [0, 1]) by the nearest-rank
// rule over the histogram: the midpoint of the bin holding the
// ceil(q*n)-th smallest value, clamped into [Min, Max].
func (a *Acc) Quantile(q float64) float64 {
	if a.n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(a.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > a.n {
		rank = a.n
	}
	cum := 0
	for i, c := range a.bins {
		cum += int(c)
		if cum >= rank {
			mid := a.lo + (float64(i)+0.5)*a.width
			return clamp(mid, a.min, a.max)
		}
	}
	return a.max
}

// Band folds the accumulated distribution into its summary.
func (a *Acc) Band() Band {
	if a.n == 0 {
		return Band{}
	}
	return Band{
		N:    a.n,
		Mean: a.sum / float64(a.n),
		Min:  a.min,
		Max:  a.max,
		P5:   a.Quantile(0.05),
		P50:  a.Quantile(0.50),
		P95:  a.Quantile(0.95),
	}
}
