// Package population generates synthetic DRAM module populations for
// Monte Carlo evaluation. The paper's Table 5 characterizes 15 real
// modules; its central claim — that spatial variation across modules
// determines how much a read-disturbance defense gains from per-row
// thresholds — is a claim about the *population* those 15 samples were
// drawn from. This package fits per-manufacturer distributions to the
// Table 5 inventory (HCfirst min / avg / max, BER scale and coefficient
// of variation, scramble depth, spatial character) and samples whole
// profile.ModuleSpecs from the fit, so sweeps can run over thousands of
// synthetic chips and report confidence bands instead of point
// estimates.
//
// Sampling is stable and lazy: module index i of population seed s is a
// pure function of (s, i) through rng.Hash64, so any single module of a
// 10K-chip population is reconstructible on demand — in any order, from
// any worker — without materializing the rest. A sampled module is
// addressed by the label "pop:<seed>:<index>"; internal/sim resolves
// such labels through SpecForLabel wherever a Table 5 label is
// accepted, which is what lets population cells flow through the
// content-addressed result cache and the campaign journal unchanged.
package population

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"svard/internal/profile"
	"svard/internal/rng"
)

// domPopulation namespaces the sampler's rng.Hash64 coordinates against
// every other consumer of the shared hash.
const domPopulation = 0x506f7031 // "Pop1"

const k = 1024

// Ref identifies one synthetic population: Size modules sampled from
// the Table 5 fit by (Seed, index), index in [0, Size).
type Ref struct {
	Seed uint64 `json:"seed"`
	Size int    `json:"size"`
}

// Labels returns the population's module labels in index order.
func (r Ref) Labels() []string {
	labels := make([]string, r.Size)
	for i := range labels {
		labels[i] = Label(r.Seed, i)
	}
	return labels
}

// LabelPrefix marks a synthetic population module label.
const LabelPrefix = "pop:"

// Label returns the canonical label of module index of population seed:
// "pop:<seed>:<index>".
func Label(seed uint64, index int) string {
	return LabelPrefix + strconv.FormatUint(seed, 10) + ":" + strconv.Itoa(index)
}

// ParseLabel inverts Label. Only the canonical spelling parses: a
// non-canonical variant ("pop:01:2") would alias the same module under
// a second simulation config, splitting its cache entries.
func ParseLabel(label string) (seed uint64, index int, ok bool) {
	rest, found := strings.CutPrefix(label, LabelPrefix)
	if !found {
		return 0, 0, false
	}
	seedStr, idxStr, found := strings.Cut(rest, ":")
	if !found {
		return 0, 0, false
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	index, err = strconv.Atoi(idxStr)
	if err != nil || index < 0 {
		return 0, 0, false
	}
	if Label(seed, index) != label {
		return 0, 0, false
	}
	return seed, index, true
}

// SpecForLabel resolves a population module label to its sampled spec
// under the default (Table 5) fit. Non-population labels report false.
func SpecForLabel(label string) (profile.ModuleSpec, bool) {
	seed, index, ok := ParseLabel(label)
	if !ok {
		return profile.ModuleSpec{}, false
	}
	return Default().Sample(seed, index), true
}

// LogNormal is a fitted lognormal distribution: Mu and Sigma are the
// mean and standard deviation of ln(x) over the fitted samples.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample draws one variate from stream r.
func (d LogNormal) Sample(r *rng.Rand) float64 {
	return math.Exp(d.Mu + d.Sigma*r.NormFloat64())
}

func fitLogNormal(xs []float64) LogNormal {
	mu := 0.0
	for _, x := range xs {
		mu += math.Log(x)
	}
	mu /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := math.Log(x) - mu
		v += d * d
	}
	// Sample standard deviation (n-1): 5 modules per manufacturer is a
	// small sample, and the biased estimator would understate the very
	// spread the population exists to explore.
	if len(xs) > 1 {
		v /= float64(len(xs) - 1)
	}
	return LogNormal{Mu: mu, Sigma: math.Sqrt(v)}
}

// MfrFit is one manufacturer's fitted generative model. HCfirst is
// parameterized as MinHC plus two ratios (avg/min and max/avg), so every
// sampled module automatically satisfies the ordering calibration
// requires (min < avg <= max); MaxHC is right-censored at 128K hammers
// exactly like the paper's measurement grid.
type MfrFit struct {
	Mfr profile.Manufacturer

	// Carriers are the manufacturer's Table 5 modules. A sampled module
	// draws one uniformly as the donor of its identity (chips, density,
	// die revision, organization, interface speed, bank size) and spatial
	// character (BER period, chunk structure, address-bit structure) —
	// the fields that are categorical per design, not per chip — then
	// overrides the per-chip calibration targets from the fits below.
	Carriers []profile.ModuleSpec

	MinHC    LogNormal // ln of Table 5 min HCfirst
	AvgRatio LogNormal // ln of AvgHC / MinHC
	MaxRatio LogNormal // ln of MaxHC / AvgHC (censored values enter at 128K)
	BER128   LogNormal // ln of the mean per-row BER at 128K hammers
	BERCV    LogNormal // ln of the BER coefficient of variation

	// ScrambleOps is the observed scramble-depth inventory, drawn
	// empirically (Table 5 shows one depth per manufacturer, so today the
	// draw is degenerate; the representation keeps the fit honest if the
	// inventory ever diversifies).
	ScrambleOps []int
}

// Model is a fitted population model over a module inventory.
type Model struct {
	Mfrs []MfrFit
}

// Fit fits the per-manufacturer distributions to a module inventory.
// It errors on an inventory it cannot fit: no modules, or targets that
// violate the orderings the simulator's calibration requires.
func Fit(specs []profile.ModuleSpec) (*Model, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("population: empty module inventory")
	}
	byMfr := make(map[profile.Manufacturer][]profile.ModuleSpec)
	var order []profile.Manufacturer
	for _, s := range specs {
		if s.MinHC <= 0 || s.AvgHC <= s.MinHC || s.MaxHC < s.AvgHC {
			return nil, fmt.Errorf("population: module %s HCfirst targets unordered (min %v, avg %v, max %v)",
				s.Label, s.MinHC, s.AvgHC, s.MaxHC)
		}
		if s.BER128 <= 0 || s.BERCV <= 0 {
			return nil, fmt.Errorf("population: module %s BER targets not positive", s.Label)
		}
		if _, seen := byMfr[s.Mfr]; !seen {
			order = append(order, s.Mfr)
		}
		byMfr[s.Mfr] = append(byMfr[s.Mfr], s)
	}
	m := &Model{}
	for _, mfr := range order {
		mods := byMfr[mfr]
		fit := MfrFit{Mfr: mfr, Carriers: mods}
		var minHC, avgRatio, maxRatio, ber, cv []float64
		for _, s := range mods {
			minHC = append(minHC, s.MinHC)
			avgRatio = append(avgRatio, s.AvgHC/s.MinHC)
			maxRatio = append(maxRatio, s.MaxHC/s.AvgHC)
			ber = append(ber, s.BER128)
			cv = append(cv, s.BERCV)
			fit.ScrambleOps = append(fit.ScrambleOps, s.ScrambleOps)
		}
		fit.MinHC = fitLogNormal(minHC)
		fit.AvgRatio = fitLogNormal(avgRatio)
		fit.MaxRatio = fitLogNormal(maxRatio)
		fit.BER128 = fitLogNormal(ber)
		fit.BERCV = fitLogNormal(cv)
		m.Mfrs = append(m.Mfrs, fit)
	}
	return m, nil
}

var (
	defaultOnce  sync.Once
	defaultModel *Model
)

// Default returns the model fitted to profile.Table5(), computed once
// per process. The inventory is a compiled-in constant the Fit
// invariants are tested against, so failure here is impossible by
// construction (and loud if a future edit breaks it).
func Default() *Model {
	defaultOnce.Do(func() {
		m, err := Fit(profile.Table5())
		if err != nil {
			panic(err)
		}
		defaultModel = m
	})
	return defaultModel
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Sample returns module index of population seed: one synthetic
// ModuleSpec drawn from the fitted per-manufacturer distributions.
//
// The draw is a pure function of (seed, index): each module owns the
// private stream rng.At(domPopulation, seed, index) and consumes a fixed
// sequence from it, so the same coordinates yield the byte-identical
// spec no matter which modules were sampled before, after, or
// concurrently. Manufacturers are drawn with their inventory share as
// weight; all bounded draws use the bias-free rng.UintN.
//
// Sampled calibration targets are clamped into the region the
// disturbance-model calibration (profile.BuildScaled) is solvable in:
// MinHC in [2K, 100K] hammers, avg/min ratio >= 1.25, max/avg ratio
// >= 1.1 with MaxHC right-censored at 128K, BER at 128K in (0, BERSat),
// and a positive BER CV. The clamps sit far outside the fitted mass
// (Table 5 spans 8K..56K minima), so they bound tail samples without
// distorting the distributions.
func (m *Model) Sample(seed uint64, index int) profile.ModuleSpec {
	r := rng.At(domPopulation, seed, uint64(index))

	total := 0
	for i := range m.Mfrs {
		total += len(m.Mfrs[i].Carriers)
	}
	pick := int(r.UintN(uint64(total)))
	fit := &m.Mfrs[0]
	for i := range m.Mfrs {
		if pick < len(m.Mfrs[i].Carriers) {
			fit = &m.Mfrs[i]
			break
		}
		pick -= len(m.Mfrs[i].Carriers)
	}

	spec := fit.Carriers[r.UintN(uint64(len(fit.Carriers)))]
	spec.Struct = append([]profile.StructSpec(nil), spec.Struct...)
	spec.Label = Label(seed, index)
	spec.DateCode = "synth"

	spec.MinHC = clamp(fit.MinHC.Sample(r), 2*k, 100*k)
	avgRatio := fit.AvgRatio.Sample(r)
	if avgRatio < 1.25 {
		avgRatio = 1.25
	}
	spec.AvgHC = spec.MinHC * avgRatio
	if spec.AvgHC > 120*k {
		spec.AvgHC = 120 * k
	}
	maxRatio := fit.MaxRatio.Sample(r)
	if maxRatio < 1.1 {
		maxRatio = 1.1
	}
	spec.MaxHC = spec.AvgHC * maxRatio
	if spec.MaxHC > 128*k {
		spec.MaxHC = 128 * k // right-censored, as in the paper's grid
	}
	spec.BER128 = clamp(fit.BER128.Sample(r), 1e-5, 0.25)
	spec.BERCV = clamp(fit.BERCV.Sample(r), 1e-3, 0.25)
	spec.ScrambleOps = fit.ScrambleOps[r.UintN(uint64(len(fit.ScrambleOps)))]
	return spec
}
