package population

import (
	"math"
	"reflect"
	"testing"

	"svard/internal/profile"
)

func TestLabelRoundTrip(t *testing.T) {
	for _, c := range []struct {
		seed  uint64
		index int
	}{{1, 0}, {1, 9999}, {42, 7}, {^uint64(0), 123}} {
		label := Label(c.seed, c.index)
		seed, index, ok := ParseLabel(label)
		if !ok || seed != c.seed || index != c.index {
			t.Errorf("round trip %q -> (%d, %d, %v)", label, seed, index, ok)
		}
	}
}

func TestParseLabelRejectsAliases(t *testing.T) {
	// Non-canonical spellings would address the same module under a
	// second cache identity, so only the exact Label output parses.
	for _, bad := range []string{
		"", "pop:", "pop:1", "pop:01:2", "pop:1:02", "pop:1:-1",
		"pop:1:2:3", "pop:x:2", "pop:1:x", "S0", "pop:1:2 ",
	} {
		if _, _, ok := ParseLabel(bad); ok {
			t.Errorf("ParseLabel(%q) accepted", bad)
		}
	}
}

func TestSampleDeterministicAndOrderFree(t *testing.T) {
	m := Default()
	// Same coordinates yield the byte-identical spec no matter what was
	// sampled before: a fresh draw at (1, 5) equals a draw taken after
	// walking other indices and seeds in arbitrary order.
	want := m.Sample(1, 5)
	for _, i := range []int{9, 0, 5, 3, 5} {
		m.Sample(7, i)
		m.Sample(1, i)
	}
	got := m.Sample(1, 5)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Sample(1, 5) changed across call order:\n%+v\n%+v", want, got)
	}
	if want.Label != Label(1, 5) {
		t.Errorf("sampled label = %q, want %q", want.Label, Label(1, 5))
	}
}

func TestSampleVariesAcrossCoordinates(t *testing.T) {
	m := Default()
	a, b, c := m.Sample(1, 0), m.Sample(1, 1), m.Sample(2, 0)
	a.Label, b.Label, c.Label = "", "", ""
	if reflect.DeepEqual(a, b) {
		t.Error("adjacent indices sampled identical modules")
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds sampled identical modules")
	}
}

func TestSpecForLabel(t *testing.T) {
	spec, ok := SpecForLabel(Label(3, 11))
	if !ok {
		t.Fatal("population label not resolved")
	}
	if want := Default().Sample(3, 11); !reflect.DeepEqual(spec, want) {
		t.Error("SpecForLabel disagrees with Default().Sample")
	}
	if _, ok := SpecForLabel("S0"); ok {
		t.Error("Table 5 label resolved as a population module")
	}
}

func TestSampledSpecsCalibrate(t *testing.T) {
	// Every sampled module must land inside the region the disturbance
	// calibration is solvable in — the whole point of the clamps.
	for i := 0; i < 8; i++ {
		spec := Default().Sample(99, i)
		if spec.MinHC <= 0 || spec.AvgHC <= spec.MinHC || spec.MaxHC < spec.AvgHC {
			t.Fatalf("module %d: HC targets unordered: %+v", i, spec)
		}
		if spec.MaxHC > 128*k {
			t.Fatalf("module %d: MaxHC %v past the censoring grid", i, spec.MaxHC)
		}
		if _, err := profile.BuildScaled(spec, 1, 64, 64); err != nil {
			t.Fatalf("module %d (%s) does not calibrate: %v", i, spec.Label, err)
		}
	}
}

func TestFitMomentsMatchTable5(t *testing.T) {
	// The population is a generative model of Table 5: sampling a few
	// thousand modules and grouping by manufacturer must reproduce each
	// manufacturer's log-mean MinHC within a loose tolerance (clamps trim
	// the extreme tails, so exact equality is not expected).
	specs := profile.Table5()
	wantMu := map[profile.Manufacturer][]float64{}
	for _, s := range specs {
		wantMu[s.Mfr] = append(wantMu[s.Mfr], math.Log(s.MinHC))
	}
	m := Default()
	logSum := map[profile.Manufacturer]float64{}
	count := map[profile.Manufacturer]int{}
	const n = 2000
	for i := 0; i < n; i++ {
		s := m.Sample(5, i)
		logSum[s.Mfr] += math.Log(s.MinHC)
		count[s.Mfr]++
	}
	for mfr, mus := range wantMu {
		want := 0.0
		for _, mu := range mus {
			want += mu
		}
		want /= float64(len(mus))
		if count[mfr] < n/6 {
			t.Errorf("%s: only %d of %d samples — inventory weighting broken", mfr, count[mfr], n)
			continue
		}
		got := logSum[mfr] / float64(count[mfr])
		if math.Abs(got-want) > 0.25 {
			t.Errorf("%s: sampled log-mean MinHC %.3f, fitted %.3f", mfr, got, want)
		}
	}
}

func TestFitRejectsBadInventory(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty inventory accepted")
	}
	bad := profile.Table5()[:1]
	bad[0].AvgHC = bad[0].MinHC
	if _, err := Fit(bad); err == nil {
		t.Error("unordered HC targets accepted")
	}
}

func TestAccOrderIndependent(t *testing.T) {
	vals := []float64{0.3, 1.7, 0.9, 1.1, 5.5, 0.3, 2.2, 1.05, 0.99, 1.01}
	fwd, rev := NewAcc(0, 8, 8192), NewAcc(0, 8, 8192)
	for _, v := range vals {
		fwd.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		rev.Add(vals[i])
	}
	if fwd.Band() != rev.Band() {
		t.Fatalf("bands differ by insertion order:\n%+v\n%+v", fwd.Band(), rev.Band())
	}
}

func TestAccBand(t *testing.T) {
	a := NewAcc(0, 8, 8192)
	for i := 1; i <= 100; i++ {
		a.Add(float64(i) / 100) // 0.01 .. 1.00
	}
	b := a.Band()
	if b.N != 100 || b.Min != 0.01 || b.Max != 1.00 {
		t.Fatalf("band shape: %+v", b)
	}
	if math.Abs(b.Mean-0.505) > 1e-9 {
		t.Errorf("mean = %v, want 0.505", b.Mean)
	}
	// Nearest-rank quantiles, within one bin width of the exact values.
	const tol = 8.0 / 8192
	for _, c := range []struct{ got, want float64 }{
		{b.P5, 0.05}, {b.P50, 0.50}, {b.P95, 0.95},
	} {
		if math.Abs(c.got-c.want) > tol {
			t.Errorf("quantile = %v, want %v within %v", c.got, c.want, tol)
		}
	}
}

func TestAccClampsOutliers(t *testing.T) {
	a := NewAcc(0, 8, 64)
	a.Add(-3)
	a.Add(100)
	b := a.Band()
	if b.Min != -3 || b.Max != 100 {
		t.Errorf("exact min/max lost: %+v", b)
	}
	// Quantiles clamp into [Min, Max] even though both values sit in
	// edge bins.
	if b.P5 < b.Min || b.P95 > b.Max {
		t.Errorf("quantiles escaped [min, max]: %+v", b)
	}
}

func TestAccEmpty(t *testing.T) {
	if b := NewAcc(0, 1, 4).Band(); b != (Band{}) {
		t.Errorf("empty accumulator band = %+v, want zero", b)
	}
}

func TestNewAccPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAcc(1, 1, 0) did not panic")
		}
	}()
	NewAcc(1, 1, 0)
}
