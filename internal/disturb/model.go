package disturb

import (
	"math"

	"svard/internal/dram"
	"svard/internal/rng"
)

// Hash sub-domains, so distinct fields draw independent randomness from
// one module seed.
const (
	domChunk   = 0x11
	domBank    = 0x12
	domIrr     = 0x13
	domTail    = 0x14
	domWCDP    = 0x15
	domCouple  = 0x16
	domPress   = 0x17
	domAge     = 0x18
	domFlipPos = 0x19
)

// StructKind identifies which spatial feature a structured vulnerability
// term keys on. Structured terms are what make a module's HCfirst
// correlate with address bits (Table 3); modules without them show no
// strong correlation (Takeaway 6).
type StructKind int

// Structured-term kinds.
const (
	RowBit      StructKind = iota // bit of the physical row address
	SubarrayBit                   // bit of the subarray index
	DistanceBit                   // bit of the distance to sense amps
)

// StructTerm shifts ln HCfirst by ±Amp·IrrSigma depending on one spatial
// feature bit (bit set → weaker row).
type StructTerm struct {
	Kind StructKind
	Bit  int
	Amp  float64
}

// Params configures the disturbance model for one module. All log-domain
// amplitudes are natural-log units.
type Params struct {
	Seed uint64

	// Cell threshold population.
	BERSat    float64 // saturating fraction of disturbable cells
	SigmaCell float64 // lognormal spread of per-cell thresholds
	LnHCMid   float64 // mean of ln(median-cell threshold), in double-sided hammers

	// Regular (design-induced + manufacturing) spatial field on hcMid;
	// this is what makes BER vary smoothly with row location (Obsv. 4/5).
	RegAmp       float64 // overall scale of the regular field
	PeriodFrac   float64 // period of the periodic term, as fraction of the bank
	PeriodWeight float64
	ChunkCount   int // number of coarse manufacturing chunks across the bank
	ChunkWeight  float64
	EdgeWeight   float64 // subarray-edge weakening
	EdgeScale    float64 // e-folding distance (rows) of the edge term
	BankJitter   float64 // small per-bank offset (banks look alike, Obsv. 2)

	// Irregular per-row component of HCfirst (Obsv. 9: HCfirst varies
	// irregularly even where BER is regular).
	IrrSigma   float64
	TailWeight float64 // weight of the heavy (Gumbel) low-outlier tail
	Struct     []StructTerm

	// RowPress response (§5.3): effective hammers per activation grow as
	// (tAggOn/PressRefNs)^PressAlpha, with per-row sensitivity spread.
	PressAlpha    float64
	PressRefNs    float64
	PressRowSigma float64

	// Data-pattern coupling (§4.3): the worst-case data pattern couples
	// fully; others lose up to CoupleSpread in log-effective-hammers.
	CoupleSpread float64

	// Temperature sensitivity around the 80°C reference (§4.3: <0.5%
	// BER variation between 50°C and 80°C).
	TempCoeff float64

	// BlastDecay is the fraction of disturbance reaching distance-2
	// victims relative to distance-1 victims.
	BlastDecay float64

	// CapHC, when positive, upper-bounds every row's true HCfirst.
	// Modules whose strongest rows still flip by e.g. 40K or 96K (Table
	// 5's Max column) have a bounded right tail; the cap reproduces it.
	CapHC float64
}

// DefaultParams returns a physically plausible parameter set for seed;
// package profile recalibrates LnHCMid/SigmaCell/RegAmp/IrrSigma per
// module against the paper's Table 5 and Fig. 3 targets.
func DefaultParams(seed uint64) Params {
	return Params{
		Seed:          seed,
		BERSat:        0.3,
		SigmaCell:     0.5,
		LnHCMid:       math.Log(600 * K),
		RegAmp:        0.05,
		PeriodFrac:    0.25,
		PeriodWeight:  1.0,
		ChunkCount:    24,
		ChunkWeight:   0.8,
		EdgeWeight:    0.5,
		EdgeScale:     8,
		BankJitter:    0.004,
		IrrSigma:      0.35,
		TailWeight:    0.25,
		PressAlpha:    0.6,
		PressRefNs:    36,
		PressRowSigma: 0.15,
		CoupleSpread:  0.3,
		TempCoeff:     0.0002,
		BlastDecay:    0.05,
	}
}

// Model is the read disturbance model of one module. It implements
// dram.DisturbSink (see sink.go) and exposes the analytic per-row view.
// A Model is not safe for concurrent mutation; concurrent read-only use
// of the analytic methods is safe.
type Model struct {
	P    Params
	Geom *dram.Geometry

	// TempC is the chip temperature for subsequently accrued
	// disturbance; the reference (and all paper experiments) is 80°C.
	TempC float64
	// AgingDays shifts weak rows' HCfirst down per the Fig. 10 hazard
	// (68 days is the paper's aging interval).
	AgingDays float64

	lift float64 // SigmaCell * z_M, the median→weakest-cell gap

	acc map[accKey]rowDisturb // disturbance state per victim row
}

type accKey struct{ bank, row int }

// NewModel builds a model over geometry geom.
func NewModel(p Params, geom *dram.Geometry) *Model {
	m := &Model{P: p, Geom: geom, TempC: 80, acc: make(map[accKey]rowDisturb)}
	m.recomputeLift()
	return m
}

func (m *Model) recomputeLift() {
	m.lift = Lift(m.Geom.CellsPerRow, m.P.BERSat, m.P.SigmaCell)
}

// Lift returns the log-domain gap between a row's median cell threshold
// and its weakest cell threshold for a population of cells·berSat
// disturbable cells with lognormal spread sigmaCell: the expected
// position of the minimum order statistic.
func Lift(cells int, berSat, sigmaCell float64) float64 {
	mEff := float64(cells) * berSat
	if mEff < 2 {
		mEff = 2
	}
	return sigmaCell * phiInv(1-1/mEff)
}

// PhiCDF exposes the standard normal CDF for calibration code.
func PhiCDF(x float64) float64 { return phi(x) }

// PhiInv exposes the standard normal quantile for calibration code.
func PhiInv(p float64) float64 { return phiInv(p) }

// SetSigmaCell updates the cell-threshold spread and dependent terms.
func (m *Model) SetSigmaCell(s float64) {
	m.P.SigmaCell = s
	m.recomputeLift()
}

// SetTemperature sets the chip temperature for subsequently accrued
// disturbance (the testbench's temperature-controller hook).
func (m *Model) SetTemperature(c float64) { m.TempC = c }

// phi is the standard normal CDF.
func phi(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// phiInv is the standard normal quantile function.
func phiInv(p float64) float64 { return math.Sqrt2 * math.Erfinv(2*p-1) }

// Regular returns the regular (smooth) component of the spatial
// vulnerability field at a physical row, roughly standardized to unit
// scale. Negative values mean weaker (lower hcMid).
func (m *Model) Regular(row int) float64 {
	pos := m.Geom.RelativeLocation(row)
	p := &m.P
	var sum, wsum float64
	if p.PeriodWeight > 0 && p.PeriodFrac > 0 {
		sum += p.PeriodWeight * math.Cos(2*math.Pi*pos/p.PeriodFrac)
		wsum += p.PeriodWeight
	}
	if p.ChunkWeight > 0 && p.ChunkCount > 0 {
		x := pos * float64(p.ChunkCount)
		i := int(x)
		frac := x - float64(i)
		a := rng.NormalAt(p.Seed, domChunk, uint64(i))
		b := rng.NormalAt(p.Seed, domChunk, uint64(i+1))
		sum += p.ChunkWeight * (a*(1-frac) + b*frac)
		wsum += p.ChunkWeight
	}
	if p.EdgeWeight > 0 && p.EdgeScale > 0 {
		d := float64(m.Geom.DistanceToSenseAmps(row))
		sum += p.EdgeWeight * -math.Exp(-d/p.EdgeScale)
		wsum += p.EdgeWeight
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// LnHCMid returns ln of the row's median-cell threshold (in double-sided
// hammers at the reference tAggOn and temperature).
func (m *Model) LnHCMid(bank, row int) float64 {
	v := m.P.LnHCMid + m.P.RegAmp*m.Regular(row)
	if m.P.BankJitter > 0 {
		v += m.P.BankJitter * rng.NormalAt(m.P.Seed, domBank, uint64(bank))
	}
	return v
}

// Irregular returns the standardized irregular per-row latent, the part
// of HCfirst variation that spatial features cannot predict (plus any
// structured address-bit terms the module was configured with).
func (m *Model) Irregular(bank, row int) float64 {
	p := &m.P
	z := (1 - p.TailWeight) * rng.NormalAt(p.Seed, domIrr, uint64(bank), uint64(row))
	if p.TailWeight > 0 {
		const eulerGamma = 0.5772156649015329
		g := rng.GumbelAt(p.Seed, domTail, uint64(bank), uint64(row)) - eulerGamma
		z -= p.TailWeight * g // heavy tail toward weak rows
	}
	for _, t := range p.Struct {
		bit := m.structBit(t, row)
		if bit {
			z -= t.Amp
		} else {
			z += t.Amp
		}
	}
	return z
}

func (m *Model) structBit(t StructTerm, row int) bool {
	switch t.Kind {
	case RowBit:
		return row>>t.Bit&1 == 1
	case SubarrayBit:
		return m.Geom.SubarrayOf(row)>>t.Bit&1 == 1
	case DistanceBit:
		return m.Geom.DistanceToSenseAmps(row)>>t.Bit&1 == 1
	default:
		return false
	}
}

// LnHCFirst returns ln of the row's true HCfirst: the number of
// double-sided hammers (at tAggOn = PressRefNs, the worst-case data
// pattern, and 80°C) at which the row's weakest cell flips. Aging is not
// applied here; see HCFirst.
func (m *Model) LnHCFirst(bank, row int) float64 {
	v := m.LnHCMid(bank, row) - m.lift + m.P.IrrSigma*m.Irregular(bank, row)
	if m.P.CapHC > 0 {
		if cap := math.Log(m.P.CapHC); v > cap {
			return cap
		}
	}
	return v
}

// HCFirst returns the row's true HCfirst in double-sided hammers,
// including the module's aging state.
func (m *Model) HCFirst(bank, row int) float64 {
	base := math.Exp(m.LnHCFirst(bank, row))
	if m.AgingDays <= 0 {
		return base
	}
	return m.agedHCFirst(bank, row, base)
}

// QuantizedHCFirst returns the smallest tested hammer level at which the
// row flips, with ok=false when the row survives even the largest level.
func (m *Model) QuantizedHCFirst(bank, row int, levels []float64) (float64, bool) {
	return Quantize(levels, m.HCFirst(bank, row))
}

// BER returns the fraction of the row's cells that flip under eff
// effective double-sided hammers (before pattern coupling). The value is
// the lognormal cell-threshold CDF scaled by the saturating BER.
func (m *Model) BER(bank, row int, eff float64) float64 {
	if eff <= 0 {
		return 0
	}
	return m.P.BERSat * phi((math.Log(eff)-m.LnHCMid(bank, row))/m.P.SigmaCell)
}

// FlipCountAt returns the number of flipped cells after eff effective
// double-sided hammers with the victim holding pattern pat: zero below
// the row's HCfirst, at least one at or above it, following the expected
// count of the cell-threshold population, capped at the cell count.
func (m *Model) FlipCountAt(bank, row int, eff float64, pat dram.Pattern) int {
	effP := eff * m.Couple(bank, row, pat)
	if effP < m.HCFirst(bank, row) {
		return 0
	}
	n := int(math.Round(float64(m.Geom.CellsPerRow) * m.BER(bank, row, effP)))
	if n < 1 {
		n = 1
	}
	if n > m.Geom.CellsPerRow {
		n = m.Geom.CellsPerRow
	}
	return n
}

// WCDP returns the row's worst-case data pattern: the pattern with full
// coupling. The distribution across rows favours the row-stripe family,
// as observed on real chips.
func (m *Model) WCDP(bank, row int) dram.Pattern {
	u := rng.UniformAt(m.P.Seed, domWCDP, uint64(bank), uint64(row))
	switch {
	case u < 0.50:
		return dram.RowStripe
	case u < 0.70:
		return dram.RowStripeInv
	case u < 0.82:
		return dram.Checkerboard
	case u < 0.94:
		return dram.CheckerboardInv
	case u < 0.97:
		return dram.ColStripe
	default:
		return dram.ColStripeInv
	}
}

// Couple returns the pattern-coupling multiplier on effective hammers
// for a victim row holding pattern pat (aggressors holding the inverse):
// 1 for the row's WCDP, less for the others.
func (m *Model) Couple(bank, row int, pat dram.Pattern) float64 {
	if pat == m.WCDP(bank, row) {
		return 1
	}
	u := rng.UniformAt(m.P.Seed, domCouple, uint64(bank), uint64(row), uint64(pat))
	return math.Exp(-m.P.CoupleSpread * (0.2 + 0.8*u))
}

// PressFactor returns the per-activation effective-hammer multiplier for
// an aggressor held open onTimeNs, as experienced by the given victim
// row: 1 at the minimum tRAS, growing sublinearly with on-time (§5.3),
// with per-victim sensitivity spread.
func (m *Model) PressFactor(bank, victimRow int, onTimeNs float64) float64 {
	return m.PressFactorFromPsi(m.PressPsi(bank, victimRow), onTimeNs)
}

// PressPsi returns the victim row's RowPress susceptibility multiplier —
// the row-dependent term of PressFactor. It depends only on the module
// seed and the row, so callers that evaluate PressFactor at high rate
// (the simulator's security tracker) precompute it per row.
func (m *Model) PressPsi(bank, victimRow int) float64 {
	return math.Exp(m.P.PressRowSigma * rng.NormalAt(m.P.Seed, domPress, uint64(bank), uint64(victimRow)))
}

// PressFactorFromPsi is PressFactor with a precomputed PressPsi value.
func (m *Model) PressFactorFromPsi(psi, onTimeNs float64) float64 {
	return PressFactorFromBase(m.PressBase(onTimeNs), psi)
}

// PressBase returns the on-time-dependent term of PressFactor — the
// part shared by every victim of one aggressor closing. Callers that
// account several neighbours per PRE (the simulator's security tracker)
// compute it once per closing instead of once per victim; the pow
// dominates the tracker's per-command cost otherwise.
func (m *Model) PressBase(onTimeNs float64) float64 {
	if onTimeNs <= m.P.PressRefNs {
		return 1
	}
	return math.Pow(onTimeNs/m.P.PressRefNs, m.P.PressAlpha)
}

// PressFactorFromBase combines a PressBase value with a victim's
// PressPsi, completing PressFactorFromPsi's arithmetic bit-exactly.
func PressFactorFromBase(base, psi float64) float64 {
	if base == 1 {
		return 1
	}
	// Only the RowPress excess varies by victim; the RowHammer unit does
	// not, so HCfirst at the reference on-time stays exact.
	return 1 + (base-1)*psi
}

// tempFactor scales effective hammers for the current temperature.
func (m *Model) tempFactor() float64 {
	return 1 + m.P.TempCoeff*(m.TempC-80)
}

// EffectiveHammers returns the analytic effective double-sided hammer
// count for hc hammers at the given aggressor on-time and the model's
// current temperature, before pattern coupling — the quantity the
// accumulator path converges to after hc double-sided hammer pairs.
func (m *Model) EffectiveHammers(bank, row int, hc, onTimeNs float64) float64 {
	return hc * m.PressFactor(bank, row, onTimeNs) * m.tempFactor()
}

// BERAt returns the analytic bit error rate for a double-sided test of
// hc hammers at onTimeNs with the victim holding pattern pat — the
// closed form of what measure_BER (Alg. 1) observes.
func (m *Model) BERAt(bank, row int, hc, onTimeNs float64, pat dram.Pattern) float64 {
	eff := m.EffectiveHammers(bank, row, hc, onTimeNs)
	n := m.FlipCountAt(bank, row, eff, pat)
	return float64(n) / float64(m.Geom.CellsPerRow)
}

// HCFirstAt returns the row's true HCfirst under an arbitrary aggressor
// on-time (RowPress lowers it) and the current temperature, under the
// worst-case data pattern.
func (m *Model) HCFirstAt(bank, row int, onTimeNs float64) float64 {
	return m.HCFirst(bank, row) / (m.PressFactor(bank, row, onTimeNs) * m.tempFactor())
}
