package disturb

import "svard/internal/rng"

// agingRefDays is the paper's aging interval: module H3 was re-tested
// after 68 days under continuous double-sided RowHammer at 80°C (§5.5).
const agingRefDays = 68.0

// degradeProb maps a row's before-aging quantized HCfirst level to the
// probability that aging over agingRefDays lowers it by one tested
// level. The table transcribes Fig. 10's annotations: 0.4% of rows at
// 12K degrade to 8K, 0.1% at 16K, 4.0% at 24K, 7.7% at 32K, 9.1% at
// 40K, 0.5% at 48K, 1.3% at 56K; rows at 96K and 128K showed no change
// (Obsv. 13: only weak rows age).
var degradeProb = map[float64]float64{
	12 * K: 0.004,
	16 * K: 0.001,
	24 * K: 0.040,
	32 * K: 0.077,
	40 * K: 0.091,
	48 * K: 0.005,
	56 * K: 0.013,
	64 * K: 0.008, // not annotated in Fig. 10; small, consistent with neighbours
}

// agedHCFirst applies the aging hazard to a row's base (unaged) HCfirst.
// A degraded row lands just below its previous tested level, so its
// quantized HCfirst drops exactly one level, as in Fig. 10.
func (m *Model) agedHCFirst(bank, row int, base float64) float64 {
	levels := HammerLevels()
	idx := LevelIndex(levels, base)
	if idx <= 0 || idx >= len(levels) {
		return base // below the grid (never happens in practice) or censored
	}
	p, ok := degradeProb[levels[idx]]
	if !ok || p <= 0 {
		return base
	}
	frac := m.AgingDays / agingRefDays
	if frac > 1 {
		frac = 1 // one re-test interval; longer aging is future work in the paper too
	}
	if rng.UniformAt(m.P.Seed, domAge, uint64(bank), uint64(row)) < p*frac {
		return levels[idx-1] * 0.97
	}
	return base
}
