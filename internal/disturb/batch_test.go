package disturb

import (
	"math"
	"testing"

	"svard/internal/dram"
)

// loopSink exposes only the per-command DisturbSink interface of a
// Model, hiding the batch fast path so the device falls back to issuing
// every ACT/PRE.
type loopSink struct{ m *Model }

func (s loopSink) RowClosed(bank, row int, onTime float64) { s.m.RowClosed(bank, row, onTime) }
func (s loopSink) RowRestored(bank, row int)               { s.m.RowRestored(bank, row) }
func (s loopSink) RowWritten(bank, row int)                { s.m.RowWritten(bank, row) }
func (s loopSink) Flips(bank, row int, p dram.Pattern) []int {
	return s.m.Flips(bank, row, p)
}
func (s loopSink) FlipCount(bank, row int, p dram.Pattern) int {
	return s.m.FlipCount(bank, row, p)
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestBatchMatchesLoop drives two identical models — one through the
// command-by-command hammer loop, one through the batch fast path — and
// requires identical disturbance state on every row near the victim.
func TestBatchMatchesLoop(t *testing.T) {
	g := testGeom()
	mLoop := NewModel(DefaultParams(7), g)
	mBatch := NewModel(DefaultParams(7), g)
	devLoop, err := dram.NewDevice(g, dram.DDR4Timing(3200), dram.IdentityMapping{}, loopSink{mLoop})
	if err != nil {
		t.Fatal(err)
	}
	devBatch, err := dram.NewDevice(g, dram.DDR4Timing(3200), dram.IdentityMapping{}, mBatch)
	if err != nil {
		t.Fatal(err)
	}

	const bank, victim, pairs = 0, 700, 500
	for _, tAggOn := range []float64{36, 500} {
		if err := devLoop.HammerDoubleSided(bank, victim-1, victim+1, pairs, tAggOn); err != nil {
			t.Fatal(err)
		}
		if err := devBatch.HammerDoubleSided(bank, victim-1, victim+1, pairs, tAggOn); err != nil {
			t.Fatal(err)
		}
		for row := victim - 3; row <= victim+3; row++ {
			curL, curB := mLoop.Accumulated(bank, row), mBatch.Accumulated(bank, row)
			if relDiff(curL, curB) > 1e-9 {
				t.Errorf("tAggOn=%v row %+d: cur loop=%v batch=%v", tAggOn, row-victim, curL, curB)
			}
			effL, effB := mLoop.Effective(bank, row), mBatch.Effective(bank, row)
			if relDiff(effL, effB) > 1e-9 {
				t.Errorf("tAggOn=%v row %+d: eff loop=%v batch=%v", tAggOn, row-victim, effL, effB)
			}
		}
		// Device clocks advance identically.
		if relDiff(devLoop.Now(), devBatch.Now()) > 1e-9 {
			t.Errorf("tAggOn=%v: device time loop=%v batch=%v", tAggOn, devLoop.Now(), devBatch.Now())
		}
		if devLoop.Activates() != devBatch.Activates() {
			t.Errorf("activation counts differ: %d vs %d", devLoop.Activates(), devBatch.Activates())
		}
	}
}

func TestSingleSidedBatchMatchesLoop(t *testing.T) {
	g := testGeom()
	mLoop := NewModel(DefaultParams(8), g)
	mBatch := NewModel(DefaultParams(8), g)
	devLoop, err := dram.NewDevice(g, dram.DDR4Timing(3200), dram.IdentityMapping{}, loopSink{mLoop})
	if err != nil {
		t.Fatal(err)
	}
	devBatch, err := dram.NewDevice(g, dram.DDR4Timing(3200), dram.IdentityMapping{}, mBatch)
	if err != nil {
		t.Fatal(err)
	}
	const bank, agg, acts = 1, 400, 300
	if err := devLoop.HammerSingleSided(bank, agg, acts, 36); err != nil {
		t.Fatal(err)
	}
	if err := devBatch.HammerSingleSided(bank, agg, acts, 36); err != nil {
		t.Fatal(err)
	}
	for row := agg - 3; row <= agg+3; row++ {
		if relDiff(mLoop.Effective(bank, row), mBatch.Effective(bank, row)) > 1e-9 {
			t.Errorf("row %+d: eff loop=%v batch=%v", row-agg,
				mLoop.Effective(bank, row), mBatch.Effective(bank, row))
		}
	}
}

func TestHammerRejectsShortOnTime(t *testing.T) {
	g := testGeom()
	m := NewModel(DefaultParams(9), g)
	dev, err := dram.NewDevice(g, dram.DDR4Timing(3200), dram.IdentityMapping{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.HammerDoubleSided(0, 10, 12, 5, 10); err == nil {
		t.Error("tAggOn below tRAS accepted")
	}
	if err := dev.HammerSingleSided(0, 10, 5, 10); err == nil {
		t.Error("single-sided tAggOn below tRAS accepted")
	}
}

func TestSingleSidedHalfRate(t *testing.T) {
	// A single-sided victim accrues exactly half the per-hammer rate of a
	// double-sided victim (one hammer = a pair of activations).
	g := testGeom()
	m := NewModel(DefaultParams(10), g)
	m.SingleSidedBatch(0, 500, 100, 36)
	if got := m.Accumulated(0, 501); got != 50 {
		t.Errorf("single-sided accrual = %v, want 50", got)
	}
}
