// Package disturb models DRAM read disturbance physics: per-row
// vulnerability (HCfirst and BER), the RowHammer accumulation of
// double-sided activations, the RowPress amplification of long aggressor
// on-times, data-pattern coupling, temperature sensitivity, and aging.
//
// The model is procedural: every per-row and per-cell quantity is a pure
// function of (module seed, bank, physical row, ...), so full-bank sweeps
// evaluate lazily and reproducibly, and the analytic view (HCFirst, BERAt)
// provably agrees with the command-level view (a Device hammering rows
// through the DisturbSink interface).
package disturb

// K follows the paper's convention: K is 2^10, not 10^3 (footnote 7).
const K = 1024

// HammerLevels returns the paper's 14 tested hammer counts (Alg. 1):
// 1K..128K where one hammer is a pair of activations to the two
// aggressor rows.
func HammerLevels() []float64 {
	return []float64{
		1 * K, 2 * K, 4 * K, 8 * K, 12 * K, 16 * K, 24 * K,
		32 * K, 40 * K, 48 * K, 56 * K, 64 * K, 96 * K, 128 * K,
	}
}

// LevelIndex returns the index of the smallest tested level >= hc, or
// len(levels) when hc exceeds every level (the row would show no bitflip
// in any test; callers treat it as right-censored).
func LevelIndex(levels []float64, hc float64) int {
	for i, l := range levels {
		if hc <= l {
			return i
		}
	}
	return len(levels)
}

// Quantize returns the smallest tested level >= hc and ok=true, or
// (0, false) when hc exceeds every tested level.
func Quantize(levels []float64, hc float64) (float64, bool) {
	i := LevelIndex(levels, hc)
	if i >= len(levels) {
		return 0, false
	}
	return levels[i], true
}
