package disturb

import "svard/internal/dram"

var _ dram.HammerBatchSink = (*Model)(nil)

// DoubleSidedBatch applies the exact end state of pairs iterations of
// Alg. 1's hammer_doublesided loop (ACT hi, PRE, ACT lo, PRE per pair)
// in O(victims) instead of O(pairs) sink events.
//
// Loop-equivalence argument, for rows other than the two aggressors:
// every closure of an aggressor contributes its per-closure weight; the
// victims are never restored during the loop, so the batch simply adds
// pairs × weight. The aggressors themselves are restored by their own
// activations each pair; the derivation of their residual cur/peak is
// spelled out inline. Tests assert bit-level agreement (up to float
// summation order) with the command-by-command loop.
func (m *Model) DoubleSidedBatch(bank, aggLo, aggHi, pairs int, onTimeNs float64) {
	if pairs <= 0 {
		return
	}
	tf := m.tempFactor()
	perClosure := func(agg, victim int) (float64, bool) {
		d := victim - agg
		if d < -2 || d > 2 || d == 0 {
			return 0, false
		}
		if victim < 0 || victim >= m.Geom.RowsPerBank || !m.Geom.SameSubarray(agg, victim) {
			return 0, false
		}
		w := 0.5
		if d == -2 || d == 2 {
			w *= m.P.BlastDecay
		}
		return w * m.PressFactor(bank, victim, onTimeNs) * tf, true
	}

	// Non-aggressor victims: pairs × per-closure contribution from each
	// aggressor's closures.
	for _, agg := range [...]int{aggLo, aggHi} {
		for _, d := range [...]int{-2, -1, 1, 2} {
			v := agg + d
			if v == aggLo || v == aggHi {
				continue
			}
			w, ok := perClosure(agg, v)
			if !ok {
				continue
			}
			k := accKey{bank, v}
			st := m.acc[k]
			st.cur += float64(pairs) * w
			m.acc[k] = st
		}
	}

	// Aggressors: each is restored by its own ACT every pair. The only
	// disturbance either receives is the other's closure at distance 2.
	//
	// aggLo (activated second in each pair): its pre-batch cur gains one
	// aggHi closure before aggLo's first ACT folds it into peak; every
	// later epoch ends with exactly one aggHi closure; after its final
	// ACT nothing disturbs it, so cur ends at 0.
	stepLo, okLo := perClosure(aggHi, aggLo)
	kLo := accKey{bank, aggLo}
	stLo := m.acc[kLo]
	first := stLo.cur
	if okLo {
		first += stepLo
	}
	stLo.peak = max3(stLo.peak, first, stepLo)
	stLo.cur = 0
	setOrDelete(m.acc, kLo, stLo)

	// aggHi (activated first): its pre-batch cur folds into peak
	// untouched at its first ACT; each epoch ends with one aggLo
	// closure; the final aggLo closure happens after aggHi's last ACT,
	// so cur ends at one step.
	stepHi, okHi := perClosure(aggLo, aggHi)
	kHi := accKey{bank, aggHi}
	stHi := m.acc[kHi]
	stHi.peak = max3(stHi.peak, stHi.cur, stepHi)
	if okHi {
		stHi.cur = stepHi
	} else {
		stHi.cur = 0
	}
	setOrDelete(m.acc, kHi, stHi)
}

// SingleSidedBatch applies the end state of acts single-sided hammers
// (ACT, hold onTimeNs, PRE) of one aggressor row: victims accrue acts ×
// per-closure weight; the aggressor's own in-progress disturbance folds
// into its peak at its first activation and ends at zero.
func (m *Model) SingleSidedBatch(bank, agg, acts int, onTimeNs float64) {
	if acts <= 0 {
		return
	}
	tf := m.tempFactor()
	for _, d := range [...]int{-2, -1, 1, 2} {
		v := agg + d
		if v < 0 || v >= m.Geom.RowsPerBank || !m.Geom.SameSubarray(agg, v) {
			continue
		}
		w := 0.5
		if d == -2 || d == 2 {
			w *= m.P.BlastDecay
		}
		k := accKey{bank, v}
		st := m.acc[k]
		st.cur += float64(acts) * w * m.PressFactor(bank, v, onTimeNs) * tf
		m.acc[k] = st
	}
	k := accKey{bank, agg}
	st := m.acc[k]
	if st.cur > st.peak {
		st.peak = st.cur
	}
	st.cur = 0
	setOrDelete(m.acc, k, st)
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func setOrDelete(acc map[accKey]rowDisturb, k accKey, st rowDisturb) {
	if st.cur == 0 && st.peak == 0 {
		delete(acc, k)
		return
	}
	acc[k] = st
}
