package disturb

import (
	"math"
	"testing"

	"svard/internal/dram"
)

// These tests close the loop between the command-level device and the
// analytic model: hammering through ACT/PRE must observe exactly the
// bitflip behaviour the closed forms predict (DESIGN.md §5, invariant 1).

func newDeviceAndModel(t *testing.T) (*dram.Device, *Model) {
	t.Helper()
	g := testGeom()
	m := NewModel(DefaultParams(42), g)
	d, err := dram.NewDevice(g, dram.DDR4Timing(3200), dram.IdentityMapping{}, m)
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

// hammerPair performs one double-sided hammer (one activation of each
// aggressor) per Alg. 1's hammer_doublesided inner loop.
func hammerPair(t *testing.T, d *dram.Device, bank, victim int, tAggOn float64) {
	t.Helper()
	for _, agg := range [...]int{victim + 1, victim - 1} {
		if err := d.Activate(bank, agg); err != nil {
			t.Fatal(err)
		}
		d.Wait(tAggOn - d.Tim.TCK)
		if err := d.Precharge(bank); err != nil {
			t.Fatal(err)
		}
		d.Wait(d.Tim.TRP)
	}
}

func TestDeviceHammerMatchesAnalyticHCFirst(t *testing.T) {
	d, m := newDeviceAndModel(t)
	const bank = 0
	// Pick an interior victim with a smallish HCfirst to keep the loop fast.
	victim, bestHCF := -1, math.Inf(1)
	for row := 2; row < m.Geom.RowsPerBank-2; row++ {
		if !m.Geom.SameSubarray(row-1, row+1) {
			continue
		}
		if hcf := m.HCFirst(bank, row); hcf < bestHCF {
			victim, bestHCF = row, hcf
		}
	}
	if victim < 0 {
		t.Fatal("no interior victim found")
	}
	pat := m.WCDP(bank, victim)

	// Initialize the victim row.
	if err := d.Activate(bank, victim); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRCD)
	if err := d.WriteOpenRow(bank, pat); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRAS)
	if err := d.Precharge(bank); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRP)

	// Hammer to just below HCfirst: no flips. The device's minimum
	// on-time is tAggOn (wait accounts for the ACT clock), so each pair
	// contributes at least 1.0 effective hammers; stop a few short.
	below := int(bestHCF) - 2
	for i := 0; i < below; i++ {
		hammerPair(t, d, bank, victim, 36)
	}
	if err := d.Activate(bank, victim); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRCD)
	n, _, err := d.ReadOpenRowFlips(bank, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("flips below HCfirst: %d (acc=%v hcf=%v)", n, m.Accumulated(bank, victim), bestHCF)
	}
	// Reading re-activated (and restored) the victim, so resume from zero:
	// hammer past HCfirst and expect flips.
	d.Wait(d.Tim.TRAS)
	if err := d.Precharge(bank); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRP)
	above := int(bestHCF) + 2
	for i := 0; i < above; i++ {
		hammerPair(t, d, bank, victim, 36)
	}
	if err := d.Activate(bank, victim); err != nil {
		t.Fatal(err)
	}
	d.Wait(d.Tim.TRCD)
	n, positions, err := d.ReadOpenRowFlips(bank, true)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("no flips above HCfirst (acc=%v hcf=%v)", m.Accumulated(bank, victim), bestHCF)
	}
	if len(positions) != n {
		t.Fatalf("positions %d != count %d", len(positions), n)
	}
}

func TestDeviceVictimActivationRestores(t *testing.T) {
	d, m := newDeviceAndModel(t)
	const bank, victim = 1, 600
	if !m.Geom.SameSubarray(victim-1, victim+1) {
		t.Skip("victim not interior")
	}
	for i := 0; i < 100; i++ {
		hammerPair(t, d, bank, victim, 36)
	}
	if m.Accumulated(bank, victim) == 0 {
		t.Fatal("no disturbance accrued")
	}
	// Activating the victim itself restores it.
	if err := d.Activate(bank, victim); err != nil {
		t.Fatal(err)
	}
	if m.Accumulated(bank, victim) != 0 {
		t.Error("victim activation did not restore the row")
	}
}

func TestDeviceRowPressAcceleratesFlips(t *testing.T) {
	d, m := newDeviceAndModel(t)
	const bank, victim = 0, 900
	if !m.Geom.SameSubarray(victim-1, victim+1) {
		t.Skip("victim not interior")
	}
	const pairs = 200
	for i := 0; i < pairs; i++ {
		hammerPair(t, d, bank, victim, 2000) // RowPress: 2us on-time
	}
	accPress := m.Accumulated(bank, victim)
	m.RowRestored(bank, victim)
	for i := 0; i < pairs; i++ {
		hammerPair(t, d, bank, victim, 36)
	}
	accHammer := m.Accumulated(bank, victim)
	if accPress < 5*accHammer {
		t.Errorf("RowPress amplification too small: press=%v hammer=%v", accPress, accHammer)
	}
}
