package disturb

import (
	"svard/internal/dram"
	"svard/internal/rng"
)

// This file implements dram.DisturbSink on *Model: the accumulator path
// that a command-level Device drives.
//
// Units: the accumulator counts effective double-sided hammers, so each
// single activation of a distance-1 neighbour contributes 0.5 (one
// "hammer" is a pair of activations, §4.3), scaled by RowPress and
// temperature.
//
// Two-level accumulation: `cur` is the disturbance accrued since the
// row's cells were last recharged (activation or refresh); `peak` is the
// largest epoch-final `cur` since the row was last written. Restoration
// recharges cells to whatever value they currently hold, so cells that
// flipped in an earlier epoch stay flipped — visible flips are a
// function of max(cur, peak) — while a timely restore before the
// threshold prevents flips entirely, which is exactly what preventive
// refresh defenses rely on.

var _ dram.DisturbSink = (*Model)(nil)

type rowDisturb struct {
	cur  float64 // effective hammers since last restore
	peak float64 // max epoch-final cur since last write
}

// RowClosed accrues disturbance from one activation of aggRow that
// stayed open onTimeNs, onto the aggressor's physical neighbours within
// the same subarray (sense-amp stripes isolate subarrays, which is the
// signal the paper's subarray reverse engineering exploits).
func (m *Model) RowClosed(bank, aggRow int, onTimeNs float64) {
	tf := m.tempFactor()
	for _, d := range [...]int{-2, -1, 1, 2} {
		v := aggRow + d
		if v < 0 || v >= m.Geom.RowsPerBank || !m.Geom.SameSubarray(aggRow, v) {
			continue
		}
		w := 0.5
		if d == -2 || d == 2 {
			w *= m.P.BlastDecay
		}
		k := accKey{bank, v}
		st := m.acc[k]
		st.cur += w * m.PressFactor(bank, v, onTimeNs) * tf
		m.acc[k] = st
	}
}

// RowRestored handles a recharge of the row (activation or refresh):
// committed flips persist, in-progress accumulation resets.
func (m *Model) RowRestored(bank, row int) {
	k := accKey{bank, row}
	st, ok := m.acc[k]
	if !ok {
		return
	}
	if st.cur > st.peak {
		st.peak = st.cur
	}
	st.cur = 0
	if st.peak == 0 {
		delete(m.acc, k)
		return
	}
	m.acc[k] = st
}

// RowWritten handles fresh data being driven into the row: all state,
// including committed flips, is cleared.
func (m *Model) RowWritten(bank, row int) {
	delete(m.acc, accKey{bank, row})
}

// Accumulated returns the row's in-progress effective double-sided
// hammer count (since the last recharge).
func (m *Model) Accumulated(bank, row int) float64 {
	return m.acc[accKey{bank, row}].cur
}

// Effective returns the disturbance level that determines the row's
// visible flips: the maximum of the in-progress and committed levels.
func (m *Model) Effective(bank, row int) float64 {
	st := m.acc[accKey{bank, row}]
	if st.cur > st.peak {
		return st.cur
	}
	return st.peak
}

// WouldFlip reports whether the row's disturbance has crossed its
// (worst-case pattern) HCfirst.
func (m *Model) WouldFlip(bank, row int) bool {
	return m.Effective(bank, row) >= m.HCFirst(bank, row)
}

// FlipCount implements dram.DisturbSink: the number of flipped cells the
// row reads back with.
func (m *Model) FlipCount(bank, row int, pat dram.Pattern) int {
	eff := m.Effective(bank, row)
	if eff == 0 {
		return 0
	}
	return m.FlipCountAt(bank, row, eff, pat)
}

// Flips implements dram.DisturbSink: the flipped cell indices. Flip
// positions are a stable per-row sequence, so the flip set at a lower
// hammer count is always a subset of the set at a higher count.
func (m *Model) Flips(bank, row int, pat dram.Pattern) []int {
	n := m.FlipCount(bank, row, pat)
	if n == 0 {
		return nil
	}
	return m.FlipPositions(bank, row, n)
}

// FlipPositions returns the first n cells of the row's stable flip
// order: distinct indices drawn from a per-row stream (the weakest cell
// first).
func (m *Model) FlipPositions(bank, row, n int) []int {
	cells := m.Geom.CellsPerRow
	if n > cells {
		n = cells
	}
	r := rng.At(m.P.Seed, domFlipPos, uint64(bank), uint64(row))
	out := make([]int, 0, n)
	seen := make(map[int]struct{}, n)
	for len(out) < n {
		c := r.Intn(cells)
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		out = append(out, c)
	}
	return out
}

// ResetAccumulators clears all disturbance state, as a full re-write of
// the device would (the testbench re-initializes rows between
// measurements).
func (m *Model) ResetAccumulators() {
	clear(m.acc)
}
