package disturb

import (
	"math"
	"testing"
	"testing/quick"

	"svard/internal/dram"
)

func testGeom() *dram.Geometry {
	g := &dram.Geometry{BankGroups: 2, BanksPerGroup: 2, RowsPerBank: 2048, CellsPerRow: 8192}
	g.BuildSubarrays(1, 330, 512)
	return g
}

func testModel() *Model {
	return NewModel(DefaultParams(99), testGeom())
}

func TestHammerLevels(t *testing.T) {
	levels := HammerLevels()
	if len(levels) != 14 {
		t.Fatalf("got %d levels, want 14 (Alg. 1)", len(levels))
	}
	if levels[0] != 1024 || levels[13] != 128*1024 {
		t.Errorf("level endpoints wrong: %v .. %v", levels[0], levels[13])
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatal("levels not ascending")
		}
	}
}

func TestQuantize(t *testing.T) {
	levels := HammerLevels()
	if l, ok := Quantize(levels, 1000); !ok || l != 1024 {
		t.Errorf("Quantize(1000) = %v,%v", l, ok)
	}
	if l, ok := Quantize(levels, 1024); !ok || l != 1024 {
		t.Errorf("Quantize(1024) = %v,%v", l, ok)
	}
	if l, ok := Quantize(levels, 1025); !ok || l != 2048 {
		t.Errorf("Quantize(1025) = %v,%v", l, ok)
	}
	if _, ok := Quantize(levels, 129*1024); ok {
		t.Error("Quantize beyond max level should be censored")
	}
}

func TestHCFirstDeterministicPositive(t *testing.T) {
	m := testModel()
	for row := 0; row < 100; row++ {
		a := m.HCFirst(0, row)
		b := m.HCFirst(0, row)
		if a != b {
			t.Fatalf("HCFirst not deterministic at row %d", row)
		}
		if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			t.Fatalf("HCFirst(0,%d) = %v", row, a)
		}
	}
}

func TestHCFirstVariesAcrossRows(t *testing.T) {
	m := testModel()
	first := m.HCFirst(0, 0)
	varied := false
	for row := 1; row < 50; row++ {
		if m.HCFirst(0, row) != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("HCFirst constant across rows; spatial variation missing")
	}
}

func TestHCFirstBelowHCMid(t *testing.T) {
	// The weakest cell threshold must not exceed the median cell
	// threshold by construction (lift > 0, noise bounded in practice).
	m := testModel()
	for row := 0; row < 500; row++ {
		if m.LnHCFirst(1, row) >= m.LnHCMid(1, row) {
			t.Fatalf("row %d: HCfirst above hcMid", row)
		}
	}
}

func TestBERMonotone(t *testing.T) {
	m := testModel()
	prev := -1.0
	for _, eff := range []float64{0, 1000, 10000, 50000, 200000, 1e6, 1e8} {
		ber := m.BER(0, 7, eff)
		if ber < prev {
			t.Fatalf("BER not monotone at eff=%v: %v < %v", eff, ber, prev)
		}
		if ber < 0 || ber > m.P.BERSat {
			t.Fatalf("BER out of [0, BERSat]: %v", ber)
		}
		prev = ber
	}
}

func TestFlipCountThresholdSemantics(t *testing.T) {
	m := testModel()
	for row := 0; row < 50; row++ {
		hcf := m.HCFirst(0, row)
		pat := m.WCDP(0, row)
		if n := m.FlipCountAt(0, row, hcf*0.999, pat); n != 0 {
			t.Fatalf("row %d flips below HCfirst: %d", row, n)
		}
		if n := m.FlipCountAt(0, row, hcf, pat); n < 1 {
			t.Fatalf("row %d does not flip at HCfirst", row)
		}
	}
}

func TestFlipCountMonotoneAndCapped(t *testing.T) {
	m := testModel()
	row := 11
	pat := m.WCDP(0, row)
	prev := 0
	for eff := 1000.0; eff < 1e9; eff *= 2 {
		n := m.FlipCountAt(0, row, eff, pat)
		if n < prev {
			t.Fatalf("flip count not monotone at eff=%v", eff)
		}
		if n > m.Geom.CellsPerRow {
			t.Fatalf("flip count exceeds cells: %d", n)
		}
		prev = n
	}
}

func TestWCDPCoupleContract(t *testing.T) {
	m := testModel()
	for row := 0; row < 200; row++ {
		w := m.WCDP(0, row)
		if c := m.Couple(0, row, w); c != 1 {
			t.Fatalf("WCDP coupling = %v, want 1", c)
		}
		for _, p := range dram.AllPatterns {
			c := m.Couple(0, row, p)
			if c <= 0 || c > 1 {
				t.Fatalf("coupling out of (0,1]: %v", c)
			}
		}
	}
}

func TestWCDPFavoursRowStripeFamily(t *testing.T) {
	m := testModel()
	counts := map[dram.Pattern]int{}
	for row := 0; row < 2000; row++ {
		counts[m.WCDP(0, row)]++
	}
	rs := counts[dram.RowStripe] + counts[dram.RowStripeInv]
	if float64(rs)/2000 < 0.5 {
		t.Errorf("row-stripe family WCDP share = %v, want > 0.5", float64(rs)/2000)
	}
}

func TestPressFactorShape(t *testing.T) {
	m := testModel()
	// Aggregate across rows: median HCfirst reduction ~3-8x at 0.5us and
	// ~8-20x at 2us (Fig. 7 / Takeaway 5 shapes).
	var sum05, sum2 float64
	const rows = 500
	for row := 0; row < rows; row++ {
		if pf := m.PressFactor(0, row, 36); pf != 1 {
			t.Fatalf("press factor at tRAS = %v, want 1", pf)
		}
		pf05 := m.PressFactor(0, row, 500)
		pf2 := m.PressFactor(0, row, 2000)
		if pf2 <= pf05 || pf05 <= 1 {
			t.Fatalf("press factor not increasing: %v %v", pf05, pf2)
		}
		sum05 += pf05
		sum2 += pf2
	}
	mean05, mean2 := sum05/rows, sum2/rows
	if mean05 < 3 || mean05 > 8 {
		t.Errorf("mean press factor at 0.5us = %v, want in [3,8]", mean05)
	}
	if mean2 < 8 || mean2 > 20 {
		t.Errorf("mean press factor at 2us = %v, want in [8,20]", mean2)
	}
}

func TestHCFirstAtDecreasesWithOnTime(t *testing.T) {
	m := testModel()
	for row := 0; row < 50; row++ {
		base := m.HCFirstAt(0, row, 36)
		mid := m.HCFirstAt(0, row, 500)
		long := m.HCFirstAt(0, row, 2000)
		if !(long < mid && mid < base) {
			t.Fatalf("row %d: HCfirst not decreasing with on-time: %v %v %v", row, base, mid, long)
		}
	}
}

func TestAccumulatorMatchesAnalytic(t *testing.T) {
	// Hammering a victim's two neighbours HC times each (one pair = one
	// hammer) at reference on-time must accumulate exactly HC effective
	// hammers, and the first flip must appear exactly at HCfirst.
	m := testModel()
	const bank = 2
	victim := 700
	if !m.Geom.SameSubarray(victim-1, victim+1) {
		t.Skip("victim not interior to a subarray in this layout")
	}
	hcf := m.HCFirst(bank, victim)
	pairs := int(hcf) // hammer up to just below threshold
	for i := 0; i < pairs; i++ {
		m.RowClosed(bank, victim-1, 36)
		m.RowClosed(bank, victim+1, 36)
	}
	acc := m.Accumulated(bank, victim)
	if math.Abs(acc-float64(pairs)) > 1e-6 {
		t.Fatalf("accumulated = %v after %d pairs", acc, pairs)
	}
	if m.WouldFlip(bank, victim) {
		t.Fatalf("row flipped below HCfirst: acc=%v hcf=%v", acc, hcf)
	}
	// One more hammer crosses the threshold.
	m.RowClosed(bank, victim-1, 36)
	m.RowClosed(bank, victim+1, 36)
	if !m.WouldFlip(bank, victim) {
		t.Fatalf("row did not flip at HCfirst: acc=%v hcf=%v", m.Accumulated(bank, victim), hcf)
	}
	if n := m.FlipCount(bank, victim, m.WCDP(bank, victim)); n < 1 {
		t.Errorf("FlipCount = %d at threshold", n)
	}
}

func TestRestoreResetsAccumulator(t *testing.T) {
	m := testModel()
	m.RowClosed(0, 100, 36)
	if m.Accumulated(0, 101) == 0 {
		t.Fatal("no disturbance accrued")
	}
	m.RowRestored(0, 101)
	if m.Accumulated(0, 101) != 0 {
		t.Error("restore did not reset accumulator")
	}
}

func TestSubarrayIsolation(t *testing.T) {
	m := testModel()
	starts := m.Geom.SubarrayStarts()
	if len(starts) < 2 {
		t.Skip("need at least two subarrays")
	}
	boundary := starts[1] // first row of subarray 1
	// Hammer the last row of subarray 0: the row across the boundary
	// must receive nothing.
	m.RowClosed(0, boundary-1, 36)
	if m.Accumulated(0, boundary) != 0 {
		t.Error("disturbance crossed a subarray boundary")
	}
	if m.Accumulated(0, boundary-2) == 0 {
		t.Error("intra-subarray neighbour received nothing")
	}
}

func TestBlastRadiusDecay(t *testing.T) {
	m := testModel()
	row := 1000
	m.RowClosed(0, row, 36)
	d1 := m.Accumulated(0, row+1)
	d2 := m.Accumulated(0, row+2)
	if d1 != 0.5 {
		t.Errorf("distance-1 contribution = %v, want 0.5", d1)
	}
	want := 0.5 * m.P.BlastDecay
	if math.Abs(d2-want) > 1e-12 {
		t.Errorf("distance-2 contribution = %v, want %v", d2, want)
	}
}

func TestFlipPositionsPrefixProperty(t *testing.T) {
	m := testModel()
	p5 := m.FlipPositions(0, 9, 5)
	p9 := m.FlipPositions(0, 9, 9)
	if len(p5) != 5 || len(p9) != 9 {
		t.Fatalf("lengths: %d, %d", len(p5), len(p9))
	}
	for i := range p5 {
		if p5[i] != p9[i] {
			t.Fatal("flip positions are not a stable prefix sequence")
		}
	}
	seen := map[int]bool{}
	for _, c := range p9 {
		if c < 0 || c >= m.Geom.CellsPerRow {
			t.Fatalf("cell index out of range: %d", c)
		}
		if seen[c] {
			t.Fatal("duplicate flip position")
		}
		seen[c] = true
	}
}

func TestAgingOnlyWeakensAndOnlyWeakRows(t *testing.T) {
	m := testModel()
	aged := NewModel(DefaultParams(99), testGeom())
	aged.AgingDays = 68
	levels := HammerLevels()
	degraded := 0
	for bank := 0; bank < 2; bank++ {
		for row := 0; row < 2048; row++ {
			before := m.HCFirst(bank, row)
			after := aged.HCFirst(bank, row)
			if after > before {
				t.Fatalf("aging strengthened row %d: %v -> %v", row, before, after)
			}
			qb, okb := Quantize(levels, before)
			qa, oka := Quantize(levels, after)
			if okb && oka && qa < qb {
				degraded++
				// Exactly one level down.
				if LevelIndex(levels, before)-LevelIndex(levels, after) != 1 {
					t.Fatalf("row %d degraded more than one level: %v -> %v", row, qb, qa)
				}
				// Strong rows (96K+) never degrade (Obsv. 13).
				if qb >= 96*K {
					t.Fatalf("strong row %d degraded", row)
				}
			}
		}
	}
	if degraded == 0 {
		t.Error("aging degraded no rows at all")
	}
}

func TestTemperatureEffectSmall(t *testing.T) {
	// §4.3: < 0.5% BER variation between 50°C and 80°C.
	m := testModel()
	m.TempC = 80
	b80 := m.BERAt(0, 42, 128*K, 36, m.WCDP(0, 42))
	m.TempC = 50
	b50 := m.BERAt(0, 42, 128*K, 36, m.WCDP(0, 42))
	if b80 == 0 {
		t.Skip("row too strong for BER comparison")
	}
	if rel := math.Abs(b80-b50) / b80; rel > 0.05 {
		t.Errorf("temperature effect too large: %v", rel)
	}
}

func TestQuickHCFirstPositiveFinite(t *testing.T) {
	m := testModel()
	f := func(bank uint8, row uint16) bool {
		b := int(bank) % m.Geom.Banks()
		r := int(row) % m.Geom.RowsPerBank
		v := m.HCFirst(b, r)
		return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoupleBounded(t *testing.T) {
	m := testModel()
	f := func(bank uint8, row uint16, p uint8) bool {
		b := int(bank) % m.Geom.Banks()
		r := int(row) % m.Geom.RowsPerBank
		pat := dram.Pattern(int(p) % dram.NumPatterns)
		c := m.Couple(b, r, pat)
		return c > 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickBERAtMonotoneInHC(t *testing.T) {
	m := testModel()
	f := func(row uint16, a, b uint32) bool {
		r := int(row) % m.Geom.RowsPerBank
		ha, hb := float64(a%(256*K)), float64(b%(256*K))
		if ha > hb {
			ha, hb = hb, ha
		}
		pat := m.WCDP(0, r)
		return m.BERAt(0, r, ha, 36, pat) <= m.BERAt(0, r, hb, 36, pat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStructuredTermsShiftHCFirst(t *testing.T) {
	p := DefaultParams(5)
	p.Struct = []StructTerm{{Kind: RowBit, Bit: 0, Amp: 2.0}}
	g := testGeom()
	m := NewModel(p, g)
	// Rows with bit0 set must be systematically weaker.
	var even, odd float64
	for row := 0; row < 1000; row++ {
		v := m.LnHCFirst(0, row)
		if row&1 == 1 {
			odd += v
		} else {
			even += v
		}
	}
	if odd/500 >= even/500 {
		t.Error("RowBit structured term did not weaken bit-set rows")
	}
}
