package benchdiff

import (
	"math"
	"strings"
	"testing"
)

const oldRun = `goos: linux
goarch: amd64
pkg: svard
BenchmarkFig12SweepSerial 	       3	 550000000 ns/op	37975492 B/op	  485790 allocs/op
BenchmarkFig12SweepSerial 	       3	 560000000 ns/op	37976032 B/op	  485790 allocs/op
BenchmarkFig12SweepParallel-4 	       6	 150000000 ns/op
BenchmarkGone 	      10	    100 ns/op
PASS
ok  	svard	7.879s
`

const newRun = `BenchmarkFig12SweepSerial 	       5	 330000000 ns/op	   87002 B/op	     411 allocs/op
BenchmarkFig12SweepParallel-8 	       6	 180000000 ns/op
BenchmarkNew 	      10	     90 ns/op
`

func TestParse(t *testing.T) {
	s := Parse(oldRun)
	if len(s) != 4 {
		t.Fatalf("parsed %d samples, want 4", len(s))
	}
	if s[0].Name != "BenchmarkFig12SweepSerial" || s[0].NsPerOp != 550000000 || s[0].AllocsOp != 485790 {
		t.Errorf("sample 0 = %+v", s[0])
	}
	// -N CPU suffix trimmed; missing allocs reported as NaN.
	if s[2].Name != "BenchmarkFig12SweepParallel" || !math.IsNaN(s[2].AllocsOp) {
		t.Errorf("sample 2 = %+v", s[2])
	}
}

func TestCompare(t *testing.T) {
	diffs := Compare(Parse(oldRun), Parse(newRun))
	if len(diffs) != 2 {
		t.Fatalf("diffs = %d, want 2 (Gone/New skipped)", len(diffs))
	}
	serial := diffs[1]
	if serial.Name != "BenchmarkFig12SweepSerial" {
		t.Fatalf("order: %+v", diffs)
	}
	if serial.TimeDelta > -35 || serial.TimeDelta < -45 {
		t.Errorf("serial time delta = %.1f%%, want ~-40%%", serial.TimeDelta)
	}
	if !serial.HasAllocs || serial.AllocsDelta > -99 {
		t.Errorf("serial allocs delta = %.2f%%, want ~-99.9%%", serial.AllocsDelta)
	}
	parallel := diffs[0]
	if parallel.TimeDelta < 19 || parallel.TimeDelta > 21 {
		t.Errorf("parallel time delta = %.1f%%, want +20%%", parallel.TimeDelta)
	}
	if parallel.HasAllocs {
		t.Error("parallel has no alloc data")
	}
}

func TestRegressions(t *testing.T) {
	diffs := Compare(Parse(oldRun), Parse(newRun))
	var all []string
	for _, d := range diffs {
		all = append(all, d.Regressions(10)...)
	}
	if len(all) != 1 || !strings.Contains(all[0], "BenchmarkFig12SweepParallel") {
		t.Errorf("regressions = %v, want only the parallel time regression", all)
	}
	// A higher threshold silences it.
	for _, d := range diffs {
		if r := d.Regressions(25); len(r) != 0 {
			t.Errorf("threshold 25 still warns: %v", r)
		}
	}
}

func TestAllocRegressionFromZero(t *testing.T) {
	diffs := Compare(
		Parse("BenchmarkX 	 10	 100 ns/op	 0 B/op	 0 allocs/op\n"),
		Parse("BenchmarkX 	 10	 100 ns/op	 64 B/op	 2 allocs/op\n"))
	if len(diffs) != 1 {
		t.Fatal("missing diff")
	}
	// Both deterministic metrics went from zero to nonzero: each must
	// warn, tagged with its own metric.
	typed := diffs[0].TypedRegressions(10)
	if len(typed) != 2 || typed[0].Metric != MetricAllocs || typed[1].Metric != MetricBytes {
		t.Errorf("0 -> 2 allocs and 0 -> 64 B/op must both warn, got %v", typed)
	}
	if r := diffs[0].Regressions(10); len(r) != 2 {
		t.Errorf("Regressions must mirror TypedRegressions, got %v", r)
	}
}

func TestBytesCompared(t *testing.T) {
	diffs := Compare(Parse(oldRun), Parse(newRun))
	serial := diffs[1]
	if !serial.HasBytes || serial.BytesDelta > -99 {
		t.Errorf("serial B/op delta = %.2f%% (has=%v), want ~-99.8%%", serial.BytesDelta, serial.HasBytes)
	}
	if diffs[0].HasBytes {
		t.Error("parallel has no B/op data")
	}
	// A B/op regression is typed MetricBytes so -fail-on bytes catches
	// it even when time and allocs held steady.
	up := Compare(
		Parse("BenchmarkY 	 10	 100 ns/op	 1000 B/op	 5 allocs/op\n"),
		Parse("BenchmarkY 	 10	 100 ns/op	 2000 B/op	 5 allocs/op\n"))
	typed := up[0].TypedRegressions(10)
	if len(typed) != 1 || typed[0].Metric != MetricBytes {
		t.Errorf("doubled B/op must warn exactly once as bytes, got %v", typed)
	}
}

func TestTableRenders(t *testing.T) {
	out := Table(Compare(Parse(oldRun), Parse(newRun)))
	if !strings.Contains(out, "BenchmarkFig12SweepSerial") || !strings.Contains(out, "allocs") {
		t.Errorf("table missing content:\n%s", out)
	}
}
