// Package benchdiff parses Go benchmark output (the format benchstat
// consumes) and compares two runs: per-benchmark geometric-mean time/op
// plus allocs/op and B/op, with per-metric regression detection for CI. It is the minimal
// self-contained core of a benchstat-style comparison — no external
// dependencies, so the CI step works offline and the logic is testable.
package benchdiff

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed benchmark result line.
type Sample struct {
	Name     string
	NsPerOp  float64
	AllocsOp float64 // NaN when the run did not report allocations
	BytesOp  float64 // NaN when the run did not report bytes
}

// Parse extracts benchmark samples from Go test output. Lines that are
// not benchmark results (headers, PASS/ok, noise) are ignored. A
// benchmark appearing multiple times (-count > 1) yields multiple
// samples.
func Parse(out string) []Sample {
	var samples []Sample
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // iteration count must follow the name
		}
		s := Sample{Name: trimCPUSuffix(fields[0]), AllocsOp: math.NaN(), BytesOp: math.NaN()}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.NsPerOp = v
				ok = true
			case "allocs/op":
				s.AllocsOp = v
			case "B/op":
				s.BytesOp = v
			}
		}
		if ok {
			samples = append(samples, s)
		}
	}
	return samples
}

// trimCPUSuffix drops the -N GOMAXPROCS suffix so runs on machines with
// different core counts still match.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Diff is one benchmark's old-vs-new comparison. Times are geometric
// means over the runs' samples; alloc counts are means (they are
// deterministic, so the samples agree anyway).
type Diff struct {
	Name               string
	OldNs, NewNs       float64
	OldAllocs          float64 // NaN when unreported
	NewAllocs          float64
	OldBytes           float64 // NaN when unreported
	NewBytes           float64
	TimeDelta          float64 // percent; positive = slower
	AllocsDelta        float64 // percent; positive = more allocations
	BytesDelta         float64 // percent; positive = more bytes per op
	HasAllocs          bool
	HasBytes           bool
	OldCount, NewCount int // samples per side
}

// Compare matches benchmarks by name and computes deltas. Benchmarks
// present on only one side are skipped (CI runs evolve).
func Compare(oldS, newS []Sample) []Diff {
	var diffs []Diff
	oldBy := group(oldS)
	newBy := group(newS)
	names := make([]string, 0, len(oldBy))
	for name := range oldBy {
		if _, ok := newBy[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := oldBy[name], newBy[name]
		d := Diff{
			Name:      name,
			OldNs:     geomean(times(o)),
			NewNs:     geomean(times(n)),
			OldAllocs: mean(allocs(o)),
			NewAllocs: mean(allocs(n)),
			OldBytes:  mean(bytes(o)),
			NewBytes:  mean(bytes(n)),
			OldCount:  len(o),
			NewCount:  len(n),
		}
		if d.OldNs > 0 {
			d.TimeDelta = (d.NewNs/d.OldNs - 1) * 100
		}
		if !math.IsNaN(d.OldAllocs) && !math.IsNaN(d.NewAllocs) {
			d.HasAllocs = true
			d.AllocsDelta = pctDelta(d.OldAllocs, d.NewAllocs)
		}
		if !math.IsNaN(d.OldBytes) && !math.IsNaN(d.NewBytes) {
			d.HasBytes = true
			d.BytesDelta = pctDelta(d.OldBytes, d.NewBytes)
		}
		diffs = append(diffs, d)
	}
	return diffs
}

// pctDelta is the old->new change in percent; 0->0 is 0, 0->anything
// is +Inf (any appearance of a formerly absent cost is a regression).
func pctDelta(old, new float64) float64 {
	if old > 0 {
		return (new/old - 1) * 100
	}
	if new > 0 {
		return math.Inf(1)
	}
	return 0
}

// Metric names one per-op measurement a benchmark can regress on.
type Metric string

const (
	MetricTime   Metric = "time"   // ns/op (noisy on shared runners)
	MetricAllocs Metric = "allocs" // allocs/op (deterministic)
	MetricBytes  Metric = "bytes"  // B/op (deterministic)
)

// Metrics lists every comparable metric, in report order.
var Metrics = []Metric{MetricTime, MetricAllocs, MetricBytes}

// Regression is one detected regression, typed by metric so a CI
// caller can warn on noisy metrics but hard-fail on deterministic ones
// (svard-benchdiff -fail-on).
type Regression struct {
	Metric  Metric
	Message string
}

// TypedRegressions returns this diff's regressions beyond thresholdPct,
// tagged with the metric that moved.
func (d Diff) TypedRegressions(thresholdPct float64) []Regression {
	var out []Regression
	if d.TimeDelta > thresholdPct {
		out = append(out, Regression{MetricTime, fmt.Sprintf("%s: time/op regressed %+.1f%% (%.3gms -> %.3gms)",
			d.Name, d.TimeDelta, d.OldNs/1e6, d.NewNs/1e6)})
	}
	if d.HasAllocs && d.AllocsDelta > thresholdPct {
		out = append(out, Regression{MetricAllocs, fmt.Sprintf("%s: allocs/op regressed %+.1f%% (%.0f -> %.0f)",
			d.Name, d.AllocsDelta, d.OldAllocs, d.NewAllocs)})
	}
	if d.HasBytes && d.BytesDelta > thresholdPct {
		out = append(out, Regression{MetricBytes, fmt.Sprintf("%s: B/op regressed %+.1f%% (%.0f -> %.0f)",
			d.Name, d.BytesDelta, d.OldBytes, d.NewBytes)})
	}
	return out
}

// Regressions returns human-readable regression descriptions for this
// diff beyond thresholdPct (TypedRegressions without the metric tags).
func (d Diff) Regressions(thresholdPct float64) []string {
	typed := d.TypedRegressions(thresholdPct)
	out := make([]string, len(typed))
	for i, r := range typed {
		out[i] = r.Message
	}
	return out
}

// Table renders the comparison as an aligned text table.
func Table(diffs []Diff) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %12s %12s %8s %12s %12s %8s %12s %12s %8s\n",
		"benchmark", "old time/op", "new time/op", "delta",
		"old allocs", "new allocs", "delta", "old B/op", "new B/op", "delta")
	for _, d := range diffs {
		alloc1, alloc2, alloc3 := "-", "-", "-"
		if d.HasAllocs {
			alloc1 = fmt.Sprintf("%.0f", d.OldAllocs)
			alloc2 = fmt.Sprintf("%.0f", d.NewAllocs)
			alloc3 = fmt.Sprintf("%+.1f%%", d.AllocsDelta)
		}
		byte1, byte2, byte3 := "-", "-", "-"
		if d.HasBytes {
			byte1 = fmt.Sprintf("%.0f", d.OldBytes)
			byte2 = fmt.Sprintf("%.0f", d.NewBytes)
			byte3 = fmt.Sprintf("%+.1f%%", d.BytesDelta)
		}
		fmt.Fprintf(&b, "%-40s %12s %12s %7.1f%% %12s %12s %8s %12s %12s %8s\n",
			d.Name, fmtNs(d.OldNs), fmtNs(d.NewNs), d.TimeDelta,
			alloc1, alloc2, alloc3, byte1, byte2, byte3)
	}
	return b.String()
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3gs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.4gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.4gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.4gns", ns)
	}
}

func group(s []Sample) map[string][]Sample {
	m := map[string][]Sample{}
	for _, x := range s {
		m[x.Name] = append(m[x.Name], x)
	}
	return m
}

func times(s []Sample) []float64 {
	out := make([]float64, len(s))
	for i, x := range s {
		out[i] = x.NsPerOp
	}
	return out
}

func allocs(s []Sample) []float64 {
	var out []float64
	for _, x := range s {
		if !math.IsNaN(x.AllocsOp) {
			out = append(out, x.AllocsOp)
		}
	}
	return out
}

func bytes(s []Sample) []float64 {
	var out []float64
	for _, x := range s {
		if !math.IsNaN(x.BytesOp) {
			out = append(out, x.BytesOp)
		}
	}
	return out
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return mean(xs) // degenerate; fall back
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
