package cpu

import (
	"reflect"
	"testing"
)

// scriptGen yields a fixed access script.
type scriptGen struct {
	gap  int
	step uint64
	next uint64
}

func (g *scriptGen) Next() (int, uint64, bool) {
	a := g.next
	g.next += g.step
	return g.gap, a, false
}

// instantPort satisfies every read after a fixed latency.
type instantPort struct {
	latency uint64
	pending []func(uint64)
	at      []uint64
	refused bool
}

func (p *instantPort) Read(addr uint64, done func(uint64), cycle uint64) bool {
	if p.refused {
		return false
	}
	p.pending = append(p.pending, done)
	p.at = append(p.at, cycle+p.latency)
	return true
}

func (p *instantPort) Write(addr uint64, cycle uint64) bool { return !p.refused }

func (p *instantPort) tick(cycle uint64) {
	for i := 0; i < len(p.pending); {
		if cycle >= p.at[i] {
			p.pending[i](cycle)
			p.pending = append(p.pending[:i], p.pending[i+1:]...)
			p.at = append(p.at[:i], p.at[i+1:]...)
		} else {
			i++
		}
	}
}

func runCore(c *Core, p *instantPort, cycles uint64) {
	for cyc := uint64(0); cyc < cycles; cyc++ {
		p.tick(cyc)
		c.Tick(cyc)
		if c.Finished() {
			return
		}
	}
}

func TestComputeBoundIPCNearWidth(t *testing.T) {
	// A stream of pure cache hits (tiny footprint) retires near full
	// width.
	cfg := DefaultConfig()
	p := &instantPort{latency: 100}
	c := New(0, cfg, &scriptGen{gap: 40, step: 64}, p) // footprint cycles inside the LLC after warmup
	gen := c.gen.(*scriptGen)
	gen.next = 0
	gen.step = 0 // always the same line: all hits after the first fill
	c.WarmupTarget = 1000
	c.MeasureTarget = 20_000
	runCore(c, p, 1_000_000)
	if !c.Finished() {
		t.Fatal("core did not finish")
	}
	if ipc := c.IPC(); ipc < 2.0 {
		t.Errorf("compute-bound IPC = %v, want near issue width", ipc)
	}
}

func TestMemoryBoundIPCLow(t *testing.T) {
	cfg := DefaultConfig()
	p := &instantPort{latency: 400}
	// Every access a new line far apart: all misses, gap 0.
	c := New(0, cfg, &scriptGen{gap: 0, step: 1 << 20}, p)
	c.WarmupTarget = 100
	c.MeasureTarget = 5_000
	runCore(c, p, 10_000_000)
	if !c.Finished() {
		t.Fatal("core did not finish")
	}
	if ipc := c.IPC(); ipc > 1.0 {
		t.Errorf("miss-bound IPC = %v, expected well below 1", ipc)
	}
}

func TestBackPressureStallsWithoutLoss(t *testing.T) {
	cfg := DefaultConfig()
	p := &instantPort{latency: 10, refused: true}
	c := New(0, cfg, &scriptGen{gap: 0, step: 1 << 20}, p)
	c.WarmupTarget = 0
	c.MeasureTarget = 1000
	for cyc := uint64(0); cyc < 2000; cyc++ {
		p.tick(cyc)
		c.Tick(cyc)
	}
	retiredWhileRefused := c.Retired
	// Un-refuse: the core must make progress again.
	p.refused = false
	runCore(c, p, 5_000_000)
	if !c.Finished() {
		t.Fatalf("core stuck after back-pressure lifted (retired %d)", c.Retired)
	}
	if retiredWhileRefused > 64 {
		t.Errorf("retired %d instructions with memory refusing", retiredWhileRefused)
	}
}

func TestWindowLimitsOutstanding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MSHRs = 1000 // remove the MSHR limit; the window must bind
	p := &instantPort{latency: 1 << 40}
	c := New(0, cfg, &scriptGen{gap: 0, step: 1 << 20}, p)
	c.MeasureTarget = 1 << 40
	for cyc := uint64(0); cyc < 10_000; cyc++ {
		c.Tick(cyc)
	}
	if len(p.pending) > cfg.Window {
		t.Errorf("%d outstanding reads exceed the %d-entry window", len(p.pending), cfg.Window)
	}
	if len(p.pending) == 0 {
		t.Error("no reads issued")
	}
}

func TestLLCEvictionsWriteBack(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LLCBytes = 64 * 16 * 4 // 4 sets
	p := &instantPort{latency: 10}
	writes := 0
	wp := &countingPort{inner: p, writes: &writes}
	gen := &scriptGen{gap: 0, step: 64 * 4} // march through sets
	c := New(0, cfg, gen, wp)
	c.MeasureTarget = 1 << 40
	// Make every access a write so lines are dirty.
	c2 := New(0, cfg, &writeGen{step: 64 * 4}, wp)
	c2.MeasureTarget = 1 << 40
	for cyc := uint64(0); cyc < 300_000; cyc++ {
		p.tick(cyc)
		c2.Tick(cyc)
	}
	if writes == 0 {
		t.Error("dirty evictions produced no writebacks")
	}
	_ = c
}

// TestTickReportsProgress pins the activity contract the event engine
// depends on: the first idle tick may latch the next pending
// instruction (it always executes — the driver steps active→+1), but
// every consecutive idle tick must leave the core bit-identical, so
// skipping those cycles cannot diverge from ticking through them.
func TestTickReportsProgress(t *testing.T) {
	cfg := DefaultConfig()
	p := &instantPort{latency: 1 << 40} // reads never complete
	c := New(0, cfg, &scriptGen{gap: 0, step: 1 << 20}, p)
	c.MeasureTarget = 1 << 40
	active, idle := 0, 0
	wasIdle := false
	for cyc := uint64(0); cyc < 1000; cyc++ {
		var before Core
		var beforeRob []uint64
		if wasIdle {
			before = *c
			beforeRob = append([]uint64(nil), c.rob...)
		}
		if c.Tick(cyc) {
			active++
			wasIdle = false
			continue
		}
		if wasIdle {
			idle++
			after := *c
			before.rob, after.rob = nil, nil // compared via the snapshot below
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("cycle %d: consecutive idle tick mutated core state", cyc)
			}
			if !reflect.DeepEqual(beforeRob, c.rob) {
				t.Fatalf("cycle %d: consecutive idle tick mutated the window", cyc)
			}
		}
		wasIdle = true
		if n := c.NextEvent(cyc); n != 1<<64-1 {
			t.Fatalf("cycle %d: memory-blocked core has self next event %d", cyc, n)
		}
	}
	if active == 0 || idle == 0 {
		t.Fatalf("degenerate run: %d active, %d idle ticks", active, idle)
	}
}

// TestEventDrivenCoreMatchesNaive drives two identical cores over the
// same deterministic port — one ticked every cycle, one only at cycles
// the NextEvent contract requires — and checks they retire the same
// instruction count at the same finish cycle.
func TestEventDrivenCoreMatchesNaive(t *testing.T) {
	mk := func() (*Core, *instantPort) {
		cfg := DefaultConfig()
		p := &instantPort{latency: 137}
		c := New(0, cfg, &scriptGen{gap: 3, step: 1 << 14}, p)
		c.WarmupTarget = 500
		c.MeasureTarget = 10_000
		return c, p
	}
	naive, np := mk()
	var naiveEnd uint64
	for cyc := uint64(0); ; cyc++ {
		np.tick(cyc)
		naive.Tick(cyc)
		if naive.Finished() {
			naiveEnd = cyc
			break
		}
		if cyc > 10_000_000 {
			t.Fatal("naive run did not finish")
		}
	}

	ev, ep := mk()
	var evEnd uint64
	ticks := uint64(0)
	for cyc := uint64(0); ; {
		ep.tick(cyc)
		active := ev.Tick(cyc)
		ticks++
		if ev.Finished() {
			evEnd = cyc
			break
		}
		if active {
			cyc++
			continue
		}
		next := ev.NextEvent(cyc)
		// The port is the core's "memory controller": its earliest
		// pending completion is the external wake-up.
		for _, at := range ep.at {
			if at > cyc && at < next {
				next = at
			}
		}
		if next <= cyc {
			next = cyc + 1
		}
		cyc = next
		if cyc > 10_000_000 {
			t.Fatal("event-driven run did not finish")
		}
	}
	if evEnd != naiveEnd || ev.Retired != naive.Retired {
		t.Fatalf("event-driven run diverged: end %d vs %d, retired %d vs %d",
			evEnd, naiveEnd, ev.Retired, naive.Retired)
	}
	if ticks >= naiveEnd {
		t.Errorf("event-driven run ticked %d times over %d cycles (no skipping)", ticks, naiveEnd)
	}
}

type writeGen struct {
	step uint64
	next uint64
}

func (g *writeGen) Next() (int, uint64, bool) {
	a := g.next
	g.next += g.step
	return 0, a, true
}

type countingPort struct {
	inner  *instantPort
	writes *int
}

func (p *countingPort) Read(addr uint64, done func(uint64), cycle uint64) bool {
	return p.inner.Read(addr, done, cycle)
}
func (p *countingPort) Write(addr uint64, cycle uint64) bool {
	*p.writes++
	return p.inner.Write(addr, cycle)
}
