// Package cpu models the simulated cores of Table 4: 4-wide issue with
// a 128-entry instruction window, trace-driven, each with a private
// 2 MiB last-level cache slice. The model follows the standard
// simplified out-of-order abstraction used by DRAM studies (and
// Ramulator's O3 core): non-memory instructions retire at full width,
// memory instructions occupy window entries until their data returns,
// and a full window stalls issue.
package cpu

import "math"

// Config sizes a core.
type Config struct {
	IssueWidth int
	Window     int
	LLCBytes   int
	LLCWays    int
	LLCHitLat  uint64
	MSHRs      int
	// Uncached makes every access bypass the LLC — the model of a
	// clflush-based RowHammer attacker, whose accesses always reach
	// DRAM (Fig. 13's adversarial patterns).
	Uncached bool
}

// DefaultConfig returns Table 4's core configuration.
func DefaultConfig() Config {
	return Config{
		IssueWidth: 4,
		Window:     128,
		LLCBytes:   2 << 20,
		LLCWays:    16,
		LLCHitLat:  30,
		MSHRs:      16,
	}
}

// Generator produces the core's instruction stream: gap non-memory
// instructions followed by one memory access.
type Generator interface {
	Next() (gap int, addr uint64, write bool)
}

// MemPort is the core's connection to the memory controller.
type MemPort interface {
	// Read requests a cache line; done fires with the completion cycle.
	// False means the controller queue was full (retry next cycle).
	Read(addr uint64, done func(cycle uint64), cycle uint64) bool
	// Write posts a writeback; false when the queue is full.
	Write(addr uint64, cycle uint64) bool
}

const pendingMem = math.MaxUint64

// fetchSlot is one in-flight line fetch's bookkeeping: the window entry
// to wake (-1 for stores) and the line being installed. Slots are
// preallocated per MSHR so issuing a fetch allocates nothing — the
// completion callbacks handed to the memory port are built once per
// slot at construction and reused for the core's lifetime.
type fetchSlot struct {
	rob   int
	addr  uint64
	dirty bool
}

// Core is one simulated core.
type Core struct {
	ID  int
	Cfg Config

	gen  Generator
	port MemPort
	llc  *llc

	rob   []uint64 // completion cycle per entry; pendingMem = in flight
	head  int
	count int

	gap      int
	haveMem  bool
	memAddr  uint64
	memWrite bool

	inflight  int
	fetch     []fetchSlot    // per-MSHR in-flight fetch records
	fetchFree []int32        // free fetch-slot indices (stack)
	doneFns   []func(uint64) // per-MSHR completion callbacks, built once

	// missMemo caches one negative LLC lookup: a back-pressured core
	// retries its pending access every tick, and a miss both mutates
	// nothing and can only turn into a hit through an install — so the
	// repeated lookups are skipped until completeFetch installs a line.
	missMemoAddr  uint64
	missMemoValid bool

	Retired       uint64
	WarmupTarget  uint64
	MeasureTarget uint64
	startCycle    uint64
	doneCycle     uint64
	started       bool
	finished      bool

	DroppedWB uint64
}

// New builds a core over its trace and memory port.
func New(id int, cfg Config, gen Generator, port MemPort) *Core {
	c := &Core{}
	c.Reset(id, cfg, gen, port)
	return c
}

// Reset reinitializes the core in place to the state
// New(id, cfg, gen, port) produces, retaining the window, cache, and
// MSHR allocations when cfg still fits them — the pooled-reuse path
// between sweep cells.
func (c *Core) Reset(id int, cfg Config, gen Generator, port MemPort) {
	c.ID = id
	c.gen = gen
	c.port = port
	if c.llc == nil || c.Cfg.LLCBytes != cfg.LLCBytes || c.Cfg.LLCWays != cfg.LLCWays {
		c.llc = newLLC(cfg.LLCBytes, cfg.LLCWays)
	} else {
		c.llc.reset()
	}
	if len(c.rob) != cfg.Window {
		c.rob = make([]uint64, cfg.Window)
	}
	if len(c.fetch) != cfg.MSHRs {
		c.fetch = make([]fetchSlot, cfg.MSHRs)
		c.fetchFree = make([]int32, 0, cfg.MSHRs)
		c.doneFns = make([]func(uint64), cfg.MSHRs)
		for i := range c.doneFns {
			i := i
			c.doneFns[i] = func(done uint64) { c.completeFetch(i, done) }
		}
	}
	c.fetchFree = c.fetchFree[:0]
	for i := cfg.MSHRs - 1; i >= 0; i-- {
		c.fetchFree = append(c.fetchFree, int32(i))
	}
	c.Cfg = cfg
	c.head, c.count = 0, 0
	c.gap, c.haveMem, c.memAddr, c.memWrite = 0, false, 0, false
	c.inflight = 0
	c.missMemoAddr, c.missMemoValid = 0, false
	c.Retired, c.WarmupTarget, c.MeasureTarget = 0, 0, 0
	c.startCycle, c.doneCycle = 0, 0
	c.started, c.finished = false, false
	c.DroppedWB = 0
}

// Finished reports whether the core has retired its measurement target.
func (c *Core) Finished() bool { return c.finished }

// Started reports whether the core has retired past its warmup target
// (entered the measurement region).
func (c *Core) Started() bool { return c.started }

// StartCycle returns the cycle the measurement region began (valid once
// Started).
func (c *Core) StartCycle() uint64 { return c.startCycle }

// DoneCycle returns the cycle the measurement region ended (valid once
// Finished).
func (c *Core) DoneCycle() uint64 { return c.doneCycle }

// IPC returns the measured instructions per cycle (0 until finished).
func (c *Core) IPC() float64 {
	if !c.finished || c.doneCycle <= c.startCycle {
		return 0
	}
	return float64(c.MeasureTarget) / float64(c.doneCycle-c.startCycle)
}

// MeasuredCycles returns the cycles spent in the measurement region.
func (c *Core) MeasuredCycles() uint64 {
	if !c.finished {
		return 0
	}
	return c.doneCycle - c.startCycle
}

// Tick advances the core one cycle: retire from the window head, then
// issue into the window. It reports whether the core made any progress
// (retired or issued at least one instruction); a false return means
// the tick was a no-op — the core's state is bit-identical to not
// having ticked at all, which is what lets the event-driven engine in
// sim.Run skip its idle cycles.
func (c *Core) Tick(cycle uint64) bool {
	progress := false
	// Retire.
	for n := 0; n < c.Cfg.IssueWidth && c.count > 0; n++ {
		if c.rob[c.head] > cycle {
			break
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.Retired++
		progress = true
		if !c.started && c.Retired >= c.WarmupTarget {
			c.started = true
			c.startCycle = cycle
		}
		if c.started && !c.finished && c.Retired >= c.WarmupTarget+c.MeasureTarget {
			c.finished = true
			c.doneCycle = cycle
		}
	}
	// Issue.
	for n := 0; n < c.Cfg.IssueWidth && c.count < len(c.rob); n++ {
		if c.gap == 0 && !c.haveMem {
			g, addr, wr := c.gen.Next()
			c.gap = g
			c.haveMem = true
			c.memAddr = addr &^ 63
			c.memWrite = wr
		}
		if c.gap > 0 {
			c.push(cycle + 1)
			c.gap--
			progress = true
			continue
		}
		if !c.issueMem(cycle) {
			break // memory system back-pressure: retry next cycle
		}
		progress = true
	}
	return progress
}

// NextEvent returns the earliest cycle after cycle at which an idle
// core could make progress on its own: the completion time of the
// window head. A core blocked on memory (head in flight, or issue
// back-pressured by MSHRs or a full controller queue) returns
// math.MaxUint64 — it can only be unblocked by memory-controller
// activity, after which the driver re-ticks every component anyway.
// Only meaningful after a Tick(cycle) that returned false.
func (c *Core) NextEvent(cycle uint64) uint64 {
	if c.count > 0 && c.rob[c.head] != pendingMem && c.rob[c.head] > cycle {
		return c.rob[c.head]
	}
	return math.MaxUint64
}

func (c *Core) push(doneAt uint64) int {
	slot := (c.head + c.count) % len(c.rob)
	c.rob[slot] = doneAt
	c.count++
	return slot
}

// issueMem tries to issue the pending memory instruction; false on
// back-pressure.
func (c *Core) issueMem(cycle uint64) bool {
	addr := c.memAddr
	if !c.Cfg.Uncached && !(c.missMemoValid && c.missMemoAddr == addr) {
		if c.llc.lookup(addr, c.memWrite) {
			c.push(cycle + c.Cfg.LLCHitLat)
			c.haveMem = false
			return true
		}
		c.missMemoAddr, c.missMemoValid = addr, true
	}
	if c.inflight >= c.Cfg.MSHRs {
		return false
	}
	if c.memWrite {
		// Write miss: fetch for ownership; the store itself is posted
		// and completes like a hit, while the line fetch proceeds in
		// the background.
		if !c.fetchLine(addr, true, cycle, -1) {
			return false
		}
		c.push(cycle + c.Cfg.LLCHitLat)
		c.haveMem = false
		return true
	}
	slot := c.push(pendingMem)
	if !c.fetchLine(addr, false, cycle, slot) {
		// Roll back the issue.
		c.count--
		return false
	}
	c.haveMem = false
	return true
}

// fetchLine requests a line from memory; on completion it installs the
// line (emitting a writeback for a dirty eviction) and wakes the window
// slot (slot < 0 for stores). The fetch's record lives in a
// preallocated MSHR slot and the completion callback is reused, so the
// per-access path allocates nothing. A free slot always exists here:
// issueMem bounds inflight by Cfg.MSHRs before calling.
func (c *Core) fetchLine(addr uint64, dirty bool, cycle uint64, slot int) bool {
	i := c.fetchFree[len(c.fetchFree)-1]
	c.fetch[i] = fetchSlot{rob: slot, addr: addr, dirty: dirty}
	if !c.port.Read(addr, c.doneFns[i], cycle) {
		return false
	}
	c.fetchFree = c.fetchFree[:len(c.fetchFree)-1]
	c.inflight++
	return true
}

// completeFetch is the body of the per-MSHR completion callbacks.
func (c *Core) completeFetch(i int, done uint64) {
	f := c.fetch[i]
	c.inflight--
	c.fetchFree = append(c.fetchFree, int32(i))
	if !c.Cfg.Uncached {
		c.missMemoValid = false // the install may satisfy the memoized miss
		if evicted, wb := c.llc.install(f.addr, f.dirty); evicted {
			if !c.port.Write(wb, done) {
				c.DroppedWB++
			}
		}
	}
	if f.rob >= 0 {
		c.rob[f.rob] = done
	}
}

// llc is a set-associative LRU cache. Ages are stored as packed bytes
// in uint64 words so that touch — which ages every way of a set on
// every access, the single hottest loop of the core model — runs as a
// couple of SWAR operations instead of a byte walk.
type llc struct {
	sets     int
	ways     int
	lruWords int      // uint64 words of packed age bytes per set
	tags     []uint64 // tag per way; 0 = invalid (tags store line|1)
	dirty    []bool
	lru      []uint64
}

func newLLC(bytes, ways int) *llc {
	sets := bytes / 64 / ways
	if sets < 1 {
		sets = 1
	}
	return &llc{
		sets:     sets,
		ways:     ways,
		lruWords: (ways + 7) / 8,
		tags:     make([]uint64, sets*ways),
		dirty:    make([]bool, sets*ways),
		lru:      make([]uint64, sets*((ways+7)/8)),
	}
}

// reset invalidates every line in place (tag 0 = invalid).
func (l *llc) reset() {
	clear(l.tags)
	clear(l.dirty)
	clear(l.lru)
}

// age returns way's LRU age within set.
func (l *llc) age(set, way int) uint8 {
	return uint8(l.lru[set*l.lruWords+way/8] >> (uint(way%8) * 8))
}

func (l *llc) setOf(addr uint64) int { return int(addr >> 6 % uint64(l.sets)) }

// lookup probes the cache, updating LRU and the dirty bit on a write
// hit.
func (l *llc) lookup(addr uint64, write bool) bool {
	set := l.setOf(addr)
	base := set * l.ways
	key := addr>>6 | 1<<63
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == key {
			l.touch(set, w)
			if write {
				l.dirty[base+w] = true
			}
			return true
		}
	}
	return false
}

// install fills a line, returning a writeback address if a dirty line
// was evicted.
func (l *llc) install(addr uint64, dirty bool) (evictedDirty bool, wbAddr uint64) {
	set := l.setOf(addr)
	base := set * l.ways
	key := addr>>6 | 1<<63
	victim, maxAge := 0, uint8(0)
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == 0 {
			victim = w
			break
		}
		if l.tags[base+w] == key {
			// Already present (racing fill); refresh state.
			l.dirty[base+w] = l.dirty[base+w] || dirty
			l.touch(set, w)
			return false, 0
		}
		if a := l.age(set, w); a >= maxAge {
			victim, maxAge = w, a
		}
	}
	if l.tags[base+victim] != 0 && l.dirty[base+victim] {
		evictedDirty = true
		wbAddr = l.tags[base+victim] &^ (1 << 63) << 6
	}
	l.tags[base+victim] = key
	l.dirty[base+victim] = dirty
	l.touch(set, victim)
	return evictedDirty, wbAddr
}

// touch ages every way of the set by one (saturating at 255) and
// zeroes the touched way — classic aging LRU, eight ways per SWAR step.
// Age bytes beyond ways in the set's last word are never read.
func (l *llc) touch(set, way int) {
	const (
		low7  = 0x7F7F7F7F7F7F7F7F
		highs = 0x8080808080808080
	)
	base := set * l.lruWords
	for i := 0; i < l.lruWords; i++ {
		x := l.lru[base+i]
		v := ^x // bytes at 255 become 0
		// High bit per byte of v that is nonzero = bytes not yet
		// saturated; add 1 to exactly those.
		m := ((v&low7 + low7) | v) & highs
		l.lru[base+i] = x + m>>7
	}
	w := base + way/8
	l.lru[w] &^= 0xFF << (uint(way%8) * 8)
}
