// Package cpu models the simulated cores of Table 4: 4-wide issue with
// a 128-entry instruction window, trace-driven, each with a private
// 2 MiB last-level cache slice. The model follows the standard
// simplified out-of-order abstraction used by DRAM studies (and
// Ramulator's O3 core): non-memory instructions retire at full width,
// memory instructions occupy window entries until their data returns,
// and a full window stalls issue.
package cpu

import "math"

// Config sizes a core.
type Config struct {
	IssueWidth int
	Window     int
	LLCBytes   int
	LLCWays    int
	LLCHitLat  uint64
	MSHRs      int
	// Uncached makes every access bypass the LLC — the model of a
	// clflush-based RowHammer attacker, whose accesses always reach
	// DRAM (Fig. 13's adversarial patterns).
	Uncached bool
}

// DefaultConfig returns Table 4's core configuration.
func DefaultConfig() Config {
	return Config{
		IssueWidth: 4,
		Window:     128,
		LLCBytes:   2 << 20,
		LLCWays:    16,
		LLCHitLat:  30,
		MSHRs:      16,
	}
}

// Generator produces the core's instruction stream: gap non-memory
// instructions followed by one memory access.
type Generator interface {
	Next() (gap int, addr uint64, write bool)
}

// MemPort is the core's connection to the memory controller.
type MemPort interface {
	// Read requests a cache line; done fires with the completion cycle.
	// False means the controller queue was full (retry next cycle).
	Read(addr uint64, done func(cycle uint64), cycle uint64) bool
	// Write posts a writeback; false when the queue is full.
	Write(addr uint64, cycle uint64) bool
}

const pendingMem = math.MaxUint64

// Core is one simulated core.
type Core struct {
	ID  int
	Cfg Config

	gen  Generator
	port MemPort
	llc  *llc

	rob   []uint64 // completion cycle per entry; pendingMem = in flight
	head  int
	count int

	gap      int
	haveMem  bool
	memAddr  uint64
	memWrite bool

	inflight int

	Retired       uint64
	WarmupTarget  uint64
	MeasureTarget uint64
	startCycle    uint64
	doneCycle     uint64
	started       bool
	finished      bool

	DroppedWB uint64
}

// New builds a core over its trace and memory port.
func New(id int, cfg Config, gen Generator, port MemPort) *Core {
	return &Core{
		ID:   id,
		Cfg:  cfg,
		gen:  gen,
		port: port,
		llc:  newLLC(cfg.LLCBytes, cfg.LLCWays),
		rob:  make([]uint64, cfg.Window),
	}
}

// Finished reports whether the core has retired its measurement target.
func (c *Core) Finished() bool { return c.finished }

// Started reports whether the core has retired past its warmup target
// (entered the measurement region).
func (c *Core) Started() bool { return c.started }

// StartCycle returns the cycle the measurement region began (valid once
// Started).
func (c *Core) StartCycle() uint64 { return c.startCycle }

// DoneCycle returns the cycle the measurement region ended (valid once
// Finished).
func (c *Core) DoneCycle() uint64 { return c.doneCycle }

// IPC returns the measured instructions per cycle (0 until finished).
func (c *Core) IPC() float64 {
	if !c.finished || c.doneCycle <= c.startCycle {
		return 0
	}
	return float64(c.MeasureTarget) / float64(c.doneCycle-c.startCycle)
}

// MeasuredCycles returns the cycles spent in the measurement region.
func (c *Core) MeasuredCycles() uint64 {
	if !c.finished {
		return 0
	}
	return c.doneCycle - c.startCycle
}

// Tick advances the core one cycle: retire from the window head, then
// issue into the window. It reports whether the core made any progress
// (retired or issued at least one instruction); a false return means
// the tick was a no-op — the core's state is bit-identical to not
// having ticked at all, which is what lets the event-driven engine in
// sim.Run skip its idle cycles.
func (c *Core) Tick(cycle uint64) bool {
	progress := false
	// Retire.
	for n := 0; n < c.Cfg.IssueWidth && c.count > 0; n++ {
		if c.rob[c.head] > cycle {
			break
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.Retired++
		progress = true
		if !c.started && c.Retired >= c.WarmupTarget {
			c.started = true
			c.startCycle = cycle
		}
		if c.started && !c.finished && c.Retired >= c.WarmupTarget+c.MeasureTarget {
			c.finished = true
			c.doneCycle = cycle
		}
	}
	// Issue.
	for n := 0; n < c.Cfg.IssueWidth && c.count < len(c.rob); n++ {
		if c.gap == 0 && !c.haveMem {
			g, addr, wr := c.gen.Next()
			c.gap = g
			c.haveMem = true
			c.memAddr = addr &^ 63
			c.memWrite = wr
		}
		if c.gap > 0 {
			c.push(cycle + 1)
			c.gap--
			progress = true
			continue
		}
		if !c.issueMem(cycle) {
			break // memory system back-pressure: retry next cycle
		}
		progress = true
	}
	return progress
}

// NextEvent returns the earliest cycle after cycle at which an idle
// core could make progress on its own: the completion time of the
// window head. A core blocked on memory (head in flight, or issue
// back-pressured by MSHRs or a full controller queue) returns
// math.MaxUint64 — it can only be unblocked by memory-controller
// activity, after which the driver re-ticks every component anyway.
// Only meaningful after a Tick(cycle) that returned false.
func (c *Core) NextEvent(cycle uint64) uint64 {
	if c.count > 0 && c.rob[c.head] != pendingMem && c.rob[c.head] > cycle {
		return c.rob[c.head]
	}
	return math.MaxUint64
}

func (c *Core) push(doneAt uint64) int {
	slot := (c.head + c.count) % len(c.rob)
	c.rob[slot] = doneAt
	c.count++
	return slot
}

// issueMem tries to issue the pending memory instruction; false on
// back-pressure.
func (c *Core) issueMem(cycle uint64) bool {
	addr := c.memAddr
	if !c.Cfg.Uncached && c.llc.lookup(addr, c.memWrite) {
		c.push(cycle + c.Cfg.LLCHitLat)
		c.haveMem = false
		return true
	}
	if c.inflight >= c.Cfg.MSHRs {
		return false
	}
	if c.memWrite {
		// Write miss: fetch for ownership; the store itself is posted
		// and completes like a hit, while the line fetch proceeds in
		// the background.
		if !c.fetchLine(addr, true, cycle, -1) {
			return false
		}
		c.push(cycle + c.Cfg.LLCHitLat)
		c.haveMem = false
		return true
	}
	slot := c.push(pendingMem)
	if !c.fetchLine(addr, false, cycle, slot) {
		// Roll back the issue.
		c.count--
		return false
	}
	c.haveMem = false
	return true
}

// fetchLine requests a line from memory; on completion it installs the
// line (emitting a writeback for a dirty eviction) and wakes the window
// slot (slot < 0 for stores).
func (c *Core) fetchLine(addr uint64, dirty bool, cycle uint64, slot int) bool {
	ok := c.port.Read(addr, func(done uint64) {
		c.inflight--
		if !c.Cfg.Uncached {
			if evicted, wb := c.llc.install(addr, dirty); evicted {
				if !c.port.Write(wb, done) {
					c.DroppedWB++
				}
			}
		}
		if slot >= 0 {
			c.rob[slot] = done
		}
	}, cycle)
	if ok {
		c.inflight++
	}
	return ok
}

// llc is a set-associative LRU cache.
type llc struct {
	sets  int
	ways  int
	tags  []uint64 // tag per way; 0 = invalid (tags store line|1)
	dirty []bool
	lru   []uint8
}

func newLLC(bytes, ways int) *llc {
	sets := bytes / 64 / ways
	if sets < 1 {
		sets = 1
	}
	return &llc{
		sets:  sets,
		ways:  ways,
		tags:  make([]uint64, sets*ways),
		dirty: make([]bool, sets*ways),
		lru:   make([]uint8, sets*ways),
	}
}

func (l *llc) setOf(addr uint64) int { return int(addr >> 6 % uint64(l.sets)) }

// lookup probes the cache, updating LRU and the dirty bit on a write
// hit.
func (l *llc) lookup(addr uint64, write bool) bool {
	set := l.setOf(addr)
	base := set * l.ways
	key := addr>>6 | 1<<63
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == key {
			l.touch(base, w)
			if write {
				l.dirty[base+w] = true
			}
			return true
		}
	}
	return false
}

// install fills a line, returning a writeback address if a dirty line
// was evicted.
func (l *llc) install(addr uint64, dirty bool) (evictedDirty bool, wbAddr uint64) {
	set := l.setOf(addr)
	base := set * l.ways
	key := addr>>6 | 1<<63
	victim, maxAge := 0, uint8(0)
	for w := 0; w < l.ways; w++ {
		if l.tags[base+w] == 0 {
			victim = w
			break
		}
		if l.tags[base+w] == key {
			// Already present (racing fill); refresh state.
			l.dirty[base+w] = l.dirty[base+w] || dirty
			l.touch(base, w)
			return false, 0
		}
		if l.lru[base+w] >= maxAge {
			victim, maxAge = w, l.lru[base+w]
		}
	}
	if l.tags[base+victim] != 0 && l.dirty[base+victim] {
		evictedDirty = true
		wbAddr = l.tags[base+victim] &^ (1 << 63) << 6
	}
	l.tags[base+victim] = key
	l.dirty[base+victim] = dirty
	l.touch(base, victim)
	return evictedDirty, wbAddr
}

// touch ages the set and zeroes the touched way (LRU).
func (l *llc) touch(base, way int) {
	for w := 0; w < l.ways; w++ {
		if l.lru[base+w] < 255 {
			l.lru[base+w]++
		}
	}
	l.lru[base+way] = 0
}
