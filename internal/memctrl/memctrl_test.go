package memctrl

import (
	"testing"

	"svard/internal/dram"
	"svard/internal/mem"
	"svard/internal/mitigation"
)

func newMC(def mitigation.Defense, tr Tracker) *Controller {
	cfg := DefaultConfig(4096)
	t := mem.CyclesFrom(dram.DDR4Timing(3200), cfg.CPUGHz)
	return New(cfg, t, def, tr)
}

func runCycles(c *Controller, from, n uint64) uint64 {
	for cyc := from; cyc < from+n; cyc++ {
		c.Tick(cyc)
	}
	return from + n
}

func TestDecodeMOPLocality(t *testing.T) {
	c := newMC(nil, nil)
	// Four consecutive cache blocks share a bank and row (MOP width 4).
	b0, r0 := c.Decode(0)
	for blk := uint64(1); blk < 4; blk++ {
		b, r := c.Decode(blk * 64)
		if b != b0 || r != r0 {
			t.Fatalf("block %d maps to %d/%d, want %d/%d", blk, b, r, b0, r0)
		}
	}
	// The fifth block moves to another bank group.
	b4, _ := c.Decode(4 * 64)
	if b4 == b0 {
		t.Error("MOP did not interleave after the group")
	}
	// Decode stays in range everywhere.
	for addr := uint64(0); addr < 1<<30; addr += 977 * 64 {
		b, r := c.Decode(addr)
		if b < 0 || b >= c.Sys.TotalBanks() || r < 0 || r >= c.Cfg.RowsPerBank {
			t.Fatalf("decode out of range: addr %d -> %d/%d", addr, b, r)
		}
	}
}

func TestReadCompletes(t *testing.T) {
	c := newMC(nil, nil)
	doneAt := uint64(0)
	ok := c.EnqueueRead(&Request{Addr: 0x1000, Done: func(cyc uint64) { doneAt = cyc }}, 0)
	if !ok {
		t.Fatal("enqueue failed")
	}
	runCycles(c, 0, 2000)
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	if c.Stats.Reads != 1 || c.Stats.Acts != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestRowHitsServedBeforeConflicts(t *testing.T) {
	c := newMC(nil, nil)
	var order []int
	mk := func(id int, addr uint64) *Request {
		return &Request{Addr: addr, Done: func(uint64) { order = append(order, id) }}
	}
	// Request 0 opens a row; requests 1 and 2 are a conflict (same bank,
	// different row) and a hit (same row).
	c.EnqueueRead(mk(0, 0), 0)
	runCycles(c, 0, 300)
	conflictAddr := uint64(4096) * 64 * 4 // jumps the row bits
	b0, r0 := c.Decode(0)
	bC, rC := c.Decode(conflictAddr)
	if b0 != bC || r0 == rC {
		// ensure it's truly a same-bank conflict
	}
	c.EnqueueRead(mk(1, conflictAddr), 300)
	c.EnqueueRead(mk(2, 64), 300) // same row as request 0 (MOP block 1)
	runCycles(c, 300, 4000)
	if len(order) != 3 {
		t.Fatalf("completed %d of 3", len(order))
	}
	if order[1] != 2 {
		t.Errorf("row hit not prioritized: order %v", order)
	}
}

func TestQueueCapacity(t *testing.T) {
	c := newMC(nil, nil)
	n := 0
	for i := 0; i < 200; i++ {
		if c.EnqueueRead(&Request{Addr: uint64(i) * 64 * 1024}, 0) {
			n++
		}
	}
	if n != c.Cfg.ReadQ {
		t.Errorf("accepted %d reads, queue size %d", n, c.Cfg.ReadQ)
	}
}

func TestWritesDrain(t *testing.T) {
	c := newMC(nil, nil)
	for i := 0; i < 50; i++ {
		if !c.EnqueueWrite(&Request{Addr: uint64(i) * 64 * 257}, 0) {
			t.Fatalf("write %d rejected", i)
		}
	}
	runCycles(c, 0, 50_000)
	if rd, wr := c.QueueLens(); rd != 0 || wr != 0 {
		t.Errorf("queues not drained: %d/%d", rd, wr)
	}
	if c.Stats.Writes != 50 {
		t.Errorf("writes = %d", c.Stats.Writes)
	}
}

func TestRefreshHappens(t *testing.T) {
	c := newMC(nil, nil)
	runCycles(c, 0, c.Sys.T.REFI*3)
	if c.Stats.Refreshes < 2 {
		t.Errorf("refreshes = %d over 3 tREFI", c.Stats.Refreshes)
	}
}

// throttleDefense denies the first ACT to observe retry handling.
type throttleDefense struct {
	denied bool
	acts   int
}

func (d *throttleDefense) Name() string { return "test" }
func (d *throttleDefense) CanActivate(bank, row int, cycle uint64) (bool, uint64) {
	if !d.denied {
		d.denied = true
		return false, cycle + 500
	}
	return true, 0
}
func (d *throttleDefense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	d.acts++
	return nil
}

func TestDefenseThrottleDelaysActivation(t *testing.T) {
	def := &throttleDefense{}
	c := newMC(def, nil)
	doneAt := uint64(0)
	c.EnqueueRead(&Request{Addr: 0, Done: func(cyc uint64) { doneAt = cyc }}, 0)
	runCycles(c, 0, 3000)
	if doneAt == 0 {
		t.Fatal("throttled read never completed")
	}
	if doneAt < 500 {
		t.Errorf("read completed at %d despite 500-cycle throttle", doneAt)
	}
	if c.Stats.ThrottleStalls == 0 {
		t.Error("throttle not recorded")
	}
	if def.acts != 1 {
		t.Errorf("OnActivate calls = %d", def.acts)
	}
}

// refreshDefense asks for a victim refresh on every ACT.
type refreshDefense struct{ rows int }

func (d *refreshDefense) Name() string                                { return "test" }
func (d *refreshDefense) CanActivate(int, int, uint64) (bool, uint64) { return true, 0 }
func (d *refreshDefense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	return []mitigation.Directive{{Kind: mitigation.RefreshVictim, Bank: bank, Row: row + 1}}
}

type recTracker struct {
	acts, pres int
	restored   map[[2]int]bool
}

func (r *recTracker) OnAct(bank, row int, cycle uint64) {
	r.acts++
	if r.restored == nil {
		r.restored = map[[2]int]bool{}
	}
	r.restored[[2]int{bank, row}] = true
}
func (r *recTracker) OnPre(bank, row int, on uint64) { r.pres++ }
func (r *recTracker) OnRefresh(int, int, int)        {}
func (r *recTracker) OnRowsSwapped(int, int, int)    {}

func TestVictimRefreshExecutes(t *testing.T) {
	tr := &recTracker{}
	c := newMC(&refreshDefense{}, tr)
	c.EnqueueRead(&Request{Addr: 0}, 0)
	runCycles(c, 0, 5000)
	if c.Stats.VictimRefreshes != 1 {
		t.Fatalf("victim refreshes = %d", c.Stats.VictimRefreshes)
	}
	_, row := c.Decode(0)
	if !tr.restored[[2]int{0, row + 1}] {
		t.Error("victim row was not restored through the tracker")
	}
}

// swapDefense migrates the row on its first activation.
type swapDefense struct{ done bool }

func (d *swapDefense) Name() string                                { return "test" }
func (d *swapDefense) CanActivate(int, int, uint64) (bool, uint64) { return true, 0 }
func (d *swapDefense) OnActivate(bank, row int, cycle uint64) []mitigation.Directive {
	if d.done {
		return nil
	}
	d.done = true
	return []mitigation.Directive{{Kind: mitigation.SwapRows, Bank: bank, Row: row, DstRow: row + 100, BusyCycles: 2000}}
}

func TestRowSwapRemapsFutureAccesses(t *testing.T) {
	tr := &recTracker{}
	c := newMC(&swapDefense{}, tr)
	b, r := c.Decode(0)
	c.EnqueueRead(&Request{Addr: 0}, 0)
	runCycles(c, 0, 10_000)
	if c.Stats.Migrations != 1 {
		t.Fatalf("migrations = %d", c.Stats.Migrations)
	}
	// A second access to the same address must activate the new
	// physical location.
	c.EnqueueRead(&Request{Addr: 0}, 10_000)
	runCycles(c, 10_000, 10_000)
	if !tr.restored[[2]int{b, r + 100}] {
		t.Error("post-swap access did not reach the migrated physical row")
	}
}

// newMC1Rank builds a single-rank controller so refresh edges can be
// probed without the other rank's refresh interleaving.
func newMC1Rank(def mitigation.Defense) *Controller {
	cfg := DefaultConfig(4096)
	cfg.Ranks = 1
	t := mem.CyclesFrom(dram.DDR4Timing(3200), cfg.CPUGHz)
	return New(cfg, t, def, nil)
}

// TestNextEventRefreshEdges covers the refresh components of NextEvent:
// the idle controller's next event is the refresh deadline; while a
// refresh is in flight it is the earlier of tRFC's end and the next
// deadline; and an overdue refresh blocked by an open bank waits on
// that bank's precharge readiness.
func TestNextEventRefreshEdges(t *testing.T) {
	c := newMC1Rank(nil)
	refi := c.Sys.T.REFI

	// Idle, nothing queued: next event is the refresh deadline.
	if c.Tick(0) {
		t.Fatal("empty controller issued at cycle 0")
	}
	if got := c.NextEvent(0); got != refi {
		t.Fatalf("idle NextEvent = %d, want tREFI %d", got, refi)
	}

	// The refresh issues exactly at the deadline.
	if !c.Tick(refi) || c.Stats.Refreshes != 1 {
		t.Fatalf("REF did not issue at its deadline (refreshes=%d)", c.Stats.Refreshes)
	}
	// During the refresh: the next event is tRFC's end (the banks
	// unblock), which precedes the next deadline.
	if c.Tick(refi + 1) {
		t.Fatal("controller active mid-refresh")
	}
	want := refi + c.Sys.T.RFC
	if got := c.NextEvent(refi + 1); got != want {
		t.Fatalf("mid-refresh NextEvent = %d, want RefUntil %d (next deadline %d)", got, want, 2*refi)
	}

	// Overdue refresh blocked by an open bank: the wake-up is the
	// bank's precharge readiness, not the (past) deadline.
	c2 := newMC1Rank(nil)
	actAt := 2*refi - 2 // open a row just before the deadline
	c2.Sys.ACT(0, 7, actAt)
	c2.Sys.Ranks[0].NextREF = 2 * refi // skip the first deadline for setup simplicity
	if c2.Tick(2 * refi) {
		t.Fatal("blocked refresh issued a command")
	}
	if got, want := c2.NextEvent(2*refi), c2.Sys.PreEarliest(0); got != want {
		t.Fatalf("blocked-refresh NextEvent = %d, want PreEarliest %d", got, want)
	}
}

// TestNextEventVictimBacklog covers the preventive-refresh components:
// a victim on a free bank acts immediately; an opened victim waits for
// its tRAS-derived precharge time; entries beyond the per-tick scan cap
// contribute nothing.
func TestNextEventVictimBacklog(t *testing.T) {
	c := newMC1Rank(nil)
	c.execute(mitigation.Directive{Kind: mitigation.RefreshVictim, Bank: 2, Row: 9}, 0)
	// Tick 0: the victim ACT issues (bank free).
	if !c.Tick(0) || c.Stats.Acts != 1 {
		t.Fatalf("victim ACT did not issue (acts=%d)", c.Stats.Acts)
	}
	// Opened: the completing PRE waits out tRAS.
	if c.Tick(1) {
		t.Fatal("controller active while victim row restores")
	}
	if got, want := c.NextEvent(1), c.Sys.T.RAS; got != want {
		t.Fatalf("opened-victim NextEvent = %d, want preAt %d", got, want)
	}
	if !c.Tick(c.Sys.T.RAS) || c.Stats.VictimRefreshes != 1 {
		t.Fatalf("victim PRE did not complete at preAt (victims=%d)", c.Stats.VictimRefreshes)
	}

	// Backlog beyond the scan cap: fill the head of the backlog with
	// victims on a far-blocked bank; a victim past the cap on a free
	// bank must not contribute a wake-up.
	c3 := newMC1Rank(nil)
	c3.Sys.BlockBank(1, 0, 1_000_000)
	for i := 0; i < victimScanCap; i++ {
		c3.execute(mitigation.Directive{Kind: mitigation.RefreshVictim, Bank: 1, Row: 100 + i}, 0)
	}
	c3.execute(mitigation.Directive{Kind: mitigation.RefreshVictim, Bank: 3, Row: 5}, 0)
	if c3.Tick(0) {
		t.Fatal("blocked backlog issued a command")
	}
	// The beyond-cap victim's bank is actionable immediately; if it
	// leaked into NextEvent the wake-up would be cycle+1. The earliest
	// real event is the refresh deadline (the capped head entries are
	// blocked until cycle 1000000).
	if got, want := c3.NextEvent(0), c3.Sys.T.REFI; got != want {
		t.Fatalf("NextEvent = %d, want the refresh deadline %d (beyond-cap victim must not contribute)", got, want)
	}
}

// TestNextEventWriteDrainWatermark covers the write-drain edges: writes
// are considered by NextEvent regardless of the current drain mode, and
// the 3/4 watermark flips the first serviced queue.
func TestNextEventWriteDrainWatermark(t *testing.T) {
	// A read on a far-blocked bank and a write on a sooner-blocked one:
	// the wake-up must be the write's unblock time even though the
	// controller is not in write-drain mode.
	c := newMC1Rank(nil)
	b0, _ := c.Decode(0)
	b1, _ := c.Decode(4 * 64) // next MOP group: a different bank
	if b0 == b1 {
		t.Fatalf("test addresses share bank %d", b0)
	}
	c.Sys.BlockBank(b0, 0, 10_000)
	c.Sys.BlockBank(b1, 0, 5_000)
	c.EnqueueRead(&Request{Addr: 0}, 0)
	c.EnqueueWrite(&Request{Addr: 4 * 64}, 0)
	if c.Tick(0) {
		t.Fatal("blocked queues issued a command")
	}
	if got, want := c.NextEvent(0), c.Sys.ActEarliest(b1); got != want {
		t.Fatalf("NextEvent = %d, want the write bank's ActEarliest %d", got, want)
	}

	// Watermark edge: at WriteQ*3/4 pending writes the first command
	// serves the write queue; one below, the read goes first.
	for _, tc := range []struct {
		writes    int
		wantWrite bool
	}{
		{DefaultConfig(4096).WriteQ*3/4 - 1, false},
		{DefaultConfig(4096).WriteQ * 3 / 4, true},
	} {
		c := newMC1Rank(nil)
		c.EnqueueRead(&Request{Addr: 0}, 0)
		for i := 0; i < tc.writes; i++ {
			if !c.EnqueueWrite(&Request{Addr: 4*64 + uint64(i)<<20}, 0) {
				t.Fatalf("write %d rejected", i)
			}
		}
		if !c.Tick(0) {
			t.Fatal("nothing issued with free banks")
		}
		readBank, _ := c.Decode(0)
		writeBank, _ := c.Decode(4 * 64)
		openedWrite := c.Sys.Banks[writeBank].OpenRow >= 0
		openedRead := c.Sys.Banks[readBank].OpenRow >= 0
		if openedWrite != tc.wantWrite || openedRead == tc.wantWrite {
			t.Errorf("writes=%d: first ACT went to write=%v read=%v, want write-first=%v",
				tc.writes, openedWrite, openedRead, tc.wantWrite)
		}
	}
}

func TestExtraMemGeneratesTraffic(t *testing.T) {
	c := newMC(nil, nil)
	c.execute(mitigation.Directive{Kind: mitigation.ExtraMem, Bank: 0, Row: 5, MemReads: 2, MemWrites: 1}, 0)
	if c.Stats.MetaReads != 2 || c.Stats.MetaWr != 1 {
		t.Errorf("meta traffic: %d/%d", c.Stats.MetaReads, c.Stats.MetaWr)
	}
	runCycles(c, 0, 30_000)
	if !c.Idle() {
		t.Error("metadata traffic never drained")
	}
}
