// Package memctrl implements the cycle-level memory controller of the
// performance evaluation (§7.1, Table 4): 64-entry read/write queues,
// FR-FCFS scheduling with a column cap of 16, open-row policy, MOP
// address mapping, rank-level refresh, and the defense hook points —
// activation gating (throttling), preventive victim refreshes, row
// migrations, and metadata traffic.
package memctrl

import (
	"svard/internal/dram"
	"svard/internal/mem"
	"svard/internal/mitigation"
	"svard/internal/obs"
	"svard/internal/rowtab"
)

// Config sizes the controller.
type Config struct {
	CPUGHz        float64
	ReadQ, WriteQ int
	ColumnCap     int // FR-FCFS consecutive row-hit cap
	MOPWidth      int // consecutive cache blocks per row before bank interleave
	RowBytes      int
	Ranks         int
	BankGroups    int
	BanksPerGroup int
	RowsPerBank   int
}

// DefaultConfig returns Table 4's memory controller configuration.
func DefaultConfig(rowsPerBank int) Config {
	g, _ := dram.BackendByName(dram.BackendDDR4)
	return ConfigFor(g.Geom, rowsPerBank, 3.2)
}

// ConfigFor returns the controller configuration for one (pseudo)
// channel of geometry g, overriding the preset's rows per bank with
// rowsPerBank (the simulator scales bank depth; see EXPERIMENTS.md).
// Queue depths, the FR-FCFS column cap, and the MOP width stay at the
// Table 4 values for every backend so cross-backend sweeps vary only
// the memory geometry and timing.
func ConfigFor(g dram.SystemGeometry, rowsPerBank int, cpuGHz float64) Config {
	return Config{
		CPUGHz:        cpuGHz,
		ReadQ:         64,
		WriteQ:        64,
		ColumnCap:     16,
		MOPWidth:      4,
		RowBytes:      g.RowBytes,
		Ranks:         g.Ranks,
		BankGroups:    g.BankGroups,
		BanksPerGroup: g.BanksPerGroup,
		RowsPerBank:   rowsPerBank,
	}
}

// Tracker observes physically-addressed DRAM activity for security
// accounting; package sim implements it over the disturbance model.
type Tracker interface {
	// OnAct fires when a row is opened (its cells recharge).
	OnAct(bank, physRow int, cycle uint64)
	// OnPre fires when a row closes after onCycles open.
	OnPre(bank, physRow int, onCycles uint64)
	// OnRefresh fires when REF restores rows [first, first+count) of
	// every bank in the rank.
	OnRefresh(rank, firstRow, count int)
	// OnRowsSwapped fires when a migration rewrites two rows.
	OnRowsSwapped(bank, physA, physB int)
}

// nopTracker is used when no security accounting is attached.
type nopTracker struct{}

func (nopTracker) OnAct(int, int, uint64)      {}
func (nopTracker) OnPre(int, int, uint64)      {}
func (nopTracker) OnRefresh(int, int, int)     {}
func (nopTracker) OnRowsSwapped(int, int, int) {}

// Request is one memory transaction. Enqueueing copies the request into
// the controller's queues (which store values contiguously — the
// FR-FCFS scan is the hot loop of the whole simulator), so callers must
// not expect post-enqueue mutations to be observed.
type Request struct {
	Addr    uint64
	Done    func(cycle uint64) // read completion callback (may be nil)
	arrive  uint64
	retryAt uint64
	Core    int
	bank    int32 // global bank
	row     int32 // MC-visible row (pre-remap)
	phys    int32 // physical row after migration indirection
	Write   bool
	// The layout keeps a Request at 56 bytes, within one cache line
	// per scanned queue entry in the FR-FCFS hot loop.
}

// victimOp is an in-flight preventive refresh (ACT+PRE of one row).
type victimOp struct {
	bank, row int // physical row
	opened    bool
	preAt     uint64
}

// Stats aggregates controller activity.
type Stats struct {
	Reads, Writes      uint64
	Acts, Pres         uint64
	RowHits, RowMisses uint64
	VictimRefreshes    uint64
	Migrations         uint64
	MetaReads, MetaWr  uint64
	ThrottleStalls     uint64
	Refreshes          uint64
}

// Add accumulates o into s — the fold across per-channel controllers of
// a multi-channel system.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Acts += o.Acts
	s.Pres += o.Pres
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.VictimRefreshes += o.VictimRefreshes
	s.Migrations += o.Migrations
	s.MetaReads += o.MetaReads
	s.MetaWr += o.MetaWr
	s.ThrottleStalls += o.ThrottleStalls
	s.Refreshes += o.Refreshes
}

// Controller is the memory controller.
type Controller struct {
	Cfg   Config
	Sys   *mem.System
	Def   mitigation.Defense
	Track Tracker
	Stats Stats

	// Obs carries the flight-recorder counters (scan lengths, refresh
	// stalls, mitigation directives). Unlike Stats it is never part of a
	// Result — sim folds it into an obs.Recorder when one is attached —
	// so it can grow without perturbing cached results or fixtures. It
	// follows Stats's lifecycle exactly: zeroed by Reset, incremented
	// unconditionally (an uint64 add is cheaper than a branch here).
	Obs obs.ControllerCounters

	readQ   []Request
	writeQ  []Request
	victims []victimOp
	// victimSet deduplicates pending preventive refreshes: a flat bitset
	// over the (bank, row) key space.
	victimSet *rowtab.Bits

	// Row indirection installed by migration defenses (RRS/AQUA): paged
	// flat tables over the (bank, row) key space storing mapped-row+1
	// (0 = identity). remapped short-circuits the lookup entirely for
	// the defenses that never migrate.
	logToPhys *rowtab.Table[int32]
	physToLog *rowtab.Table[int32]
	remapped  bool

	// hitCntR/hitCntW track, per bank, how many queued requests of each
	// queue target the bank's open row (hit-class membership, regardless
	// of any defense retry time); hitSumR/hitSumW are their totals. The
	// counts change only at the command choke points (enqueue, column
	// completion, issuePRE, issueACTRaw, row-swap repair), and a zero
	// sum lets the FR-FCFS scan stop at the first eligible ACT: with no
	// hit-class entry in the queue there can be no column or
	// cap-rotation candidate, and every conflict PRE is trivially
	// unsuppressed — exactly what the full scan would conclude.
	hitCntR []int32
	hitCntW []int32
	hitSumR int
	hitSumW int

	blocksPerRow int
	writeMode    bool
	refSlice     []int // per-rank next refresh slice row
	rowsPerREF   int
	idleUntil    uint64 // Tick fast path: no-op until this cycle

	// Per-tick bank memos for the scheduling passes (scanTag packs
	// epoch<<16|flags, one load validates and reads a bank's memo) and
	// per-call bank memos for NextEvent (neBank), all epoch-tagged so
	// neither path pays an O(banks) reset. The scan epoch advances once
	// per TickFull: within one tick no command separates the victim,
	// write, and read passes, so CanPRE/CanACT answers carry across all
	// of them (column and hit flags are kept per direction). The epochs
	// are monotone across pooled reuse, so a stale tag can never
	// collide.
	scanTag     []uint64
	scanEpoch   uint64
	neBank      []neScratch
	actEpoch    uint64
	suppEpoch   uint64
	confScratch []int32 // conflict-PRE queue indices/banks (schedule, NextEvent)

	// mutated records command-free state changes within one Tick (a
	// defense throttle stamping retryAt, a victim op adopting an
	// already-open row), so Tick can report them as activity to the
	// event-driven engine: a cycle that changed anything must not be
	// treated as skippable.
	mutated bool
}

// neScratch is NextEvent's per-bank memo line: the ActEarliest bound
// (valid when actEpoch matches) and the open-row suppression bound
// (valid when suppEpoch matches). One struct keeps a bank's NextEvent
// state on a single cache line instead of four parallel arrays.
type neScratch struct {
	actEpoch  uint64
	act       uint64
	suppEpoch uint64
	supp      uint64
	// seen dedupes identical queue candidates within one queue pass
	// (tagged by seenEpoch): requests of the same class on the same
	// bank with no retry gate produce the same earliest-actionable
	// cycle, so only the first is considered. Bit 0 = hit-class seen,
	// bit 1 = conflict-class seen.
	seenEpoch uint64
	seen      uint8
}

// New builds a controller over timing t, defense def (nil = none), and
// tracker tr (nil = none).
func New(cfg Config, t mem.Timing, def mitigation.Defense, tr Tracker) *Controller {
	c := &Controller{}
	c.Reset(cfg, t, def, tr)
	return c
}

// Reset reinitializes the controller in place to the state
// New(cfg, t, def, tr) produces, retaining queue, table, and scratch
// allocations — the pooled-reuse path between sweep cells. Requests
// still queued from a truncated run are recycled; the epoch counters
// deliberately keep counting (their values never affect scheduling,
// only whether a memo slot is current).
func (c *Controller) Reset(cfg Config, t mem.Timing, def mitigation.Defense, tr Tracker) {
	if def == nil {
		def = mitigation.Nop{}
	}
	if tr == nil {
		tr = nopTracker{}
	}
	if c.Sys == nil {
		c.Sys = mem.NewSystem(t, cfg.Ranks, cfg.BankGroups, cfg.BanksPerGroup, cfg.RowsPerBank)
	} else {
		c.Sys.Reset(t, cfg.Ranks, cfg.BankGroups, cfg.BanksPerGroup, cfg.RowsPerBank)
	}
	banks := c.Sys.TotalBanks()
	keys := int64(banks) * int64(cfg.RowsPerBank)
	refs := int(t.REFW / t.REFI)
	if refs <= 0 {
		refs = 1
	}
	c.Cfg = cfg
	c.Def = def
	c.Track = tr
	c.Stats = Stats{}
	c.Obs = obs.ControllerCounters{}
	c.readQ = c.readQ[:0]
	c.writeQ = c.writeQ[:0]
	c.victims = c.victims[:0]
	if c.victimSet == nil {
		c.victimSet = rowtab.NewBits(keys)
	} else {
		c.victimSet.Resize(keys)
	}
	if c.logToPhys == nil {
		c.logToPhys = rowtab.New[int32](keys)
		c.physToLog = rowtab.New[int32](keys)
	} else {
		c.logToPhys.Resize(keys)
		c.physToLog.Resize(keys)
	}
	c.remapped = false
	c.blocksPerRow = cfg.RowBytes / 64
	c.writeMode = false
	if cap(c.refSlice) >= cfg.Ranks {
		c.refSlice = c.refSlice[:cfg.Ranks]
		clear(c.refSlice)
	} else {
		c.refSlice = make([]int, cfg.Ranks)
	}
	c.rowsPerREF = (cfg.RowsPerBank + refs - 1) / refs
	c.idleUntil = 0
	c.mutated = false
	// Epoch-tagged scratch: zeroed only on growth (fresh zeros read as
	// "never current" because the epoch counters start above 0 and only
	// increment, across pooled reuse too).
	if cap(c.scanTag) >= banks {
		c.scanTag = c.scanTag[:banks]
	} else {
		c.scanTag = make([]uint64, banks)
	}
	if cap(c.neBank) >= banks {
		c.neBank = c.neBank[:banks]
	} else {
		c.neBank = make([]neScratch, banks)
	}
	if cap(c.hitCntR) >= banks {
		c.hitCntR = c.hitCntR[:banks]
		c.hitCntW = c.hitCntW[:banks]
		clear(c.hitCntR)
		clear(c.hitCntW)
	} else {
		c.hitCntR = make([]int32, banks)
		c.hitCntW = make([]int32, banks)
	}
	c.hitSumR, c.hitSumW = 0, 0
}

// recountHits recomputes bank's hit-class counts after its open row
// changed (ACT) or its queued requests' physical rows were remapped
// (swap repair). Runs once per such command; the scans it lets schedule
// skip repay it many times over.
func (c *Controller) recountHits(bank int) {
	row := c.Sys.Banks[bank].OpenRow
	n := int32(0)
	for i := range c.readQ {
		if int(c.readQ[i].bank) == bank && int(c.readQ[i].phys) == row {
			n++
		}
	}
	c.hitSumR += int(n - c.hitCntR[bank])
	c.hitCntR[bank] = n
	n = 0
	for i := range c.writeQ {
		if int(c.writeQ[i].bank) == bank && int(c.writeQ[i].phys) == row {
			n++
		}
	}
	c.hitSumW += int(n - c.hitCntW[bank])
	c.hitCntW[bank] = n
}

// rowKey flattens (bank, row) for the controller's per-row tables.
func (c *Controller) rowKey(bank, row int) int64 {
	return int64(bank)*int64(c.Cfg.RowsPerBank) + int64(row)
}

// Read enqueues a read transaction; false when the queue is full.
// Equivalent to EnqueueRead with a fresh Request, with no per-access
// allocation (the value lands directly in the queue's retained backing
// array).
func (c *Controller) Read(addr uint64, core int, done func(cycle uint64), cycle uint64) bool {
	return c.EnqueueRead(&Request{Addr: addr, Core: core, Done: done}, cycle)
}

// Write enqueues a posted write transaction; false when the queue is
// full.
func (c *Controller) Write(addr uint64, core int, cycle uint64) bool {
	return c.EnqueueWrite(&Request{Addr: addr, Core: core}, cycle)
}

// Decode applies the MOP address mapping: consecutive cache blocks fill
// MOPWidth columns of a row, then interleave across bank groups, banks,
// and ranks, keeping row-buffer locality while spreading traffic.
func (c *Controller) Decode(addr uint64) (bank, row int) {
	block := addr >> 6
	block /= uint64(c.Cfg.MOPWidth)
	bg := int(block % uint64(c.Cfg.BankGroups))
	block /= uint64(c.Cfg.BankGroups)
	bk := int(block % uint64(c.Cfg.BanksPerGroup))
	block /= uint64(c.Cfg.BanksPerGroup)
	rank := int(block % uint64(c.Cfg.Ranks))
	block /= uint64(c.Cfg.Ranks)
	colHigh := block % uint64(c.blocksPerRow/c.Cfg.MOPWidth)
	block /= uint64(c.blocksPerRow / c.Cfg.MOPWidth)
	_ = colHigh
	row = int(block % uint64(c.Cfg.RowsPerBank))
	bank = rank*c.Cfg.BankGroups*c.Cfg.BanksPerGroup + bg*c.Cfg.BanksPerGroup + bk
	return bank, row
}

// physOf resolves the MC-visible row through the migration indirection.
func (c *Controller) physOf(bank, row int) int {
	if !c.remapped {
		return row
	}
	if p := c.logToPhys.Get(c.rowKey(bank, row)); p != 0 {
		return int(p) - 1
	}
	return row
}

func (c *Controller) logOf(bank, phys int) int {
	if !c.remapped {
		return phys
	}
	if l := c.physToLog.Get(c.rowKey(bank, phys)); l != 0 {
		return int(l) - 1
	}
	return phys
}

func (c *Controller) swapRows(bank, physA, physB int) {
	la, lb := c.logOf(bank, physA), c.logOf(bank, physB)
	c.remapped = true
	c.logToPhys.Set(c.rowKey(bank, la), int32(physB)+1)
	c.logToPhys.Set(c.rowKey(bank, lb), int32(physA)+1)
	c.physToLog.Set(c.rowKey(bank, physB), int32(la)+1)
	c.physToLog.Set(c.rowKey(bank, physA), int32(lb)+1)
	// Repair the cached physical rows of queued requests (rare path).
	for _, q := range [2][]Request{c.readQ, c.writeQ} {
		for i := range q {
			if int(q[i].bank) == bank {
				q[i].phys = int32(c.physOf(bank, int(q[i].row)))
			}
		}
	}
	c.recountHits(bank)
}

// EnqueueRead adds a copy of the read to the queue; false when the
// queue is full.
func (c *Controller) EnqueueRead(r *Request, cycle uint64) bool {
	if len(c.readQ) >= c.Cfg.ReadQ {
		return false
	}
	r.arrive = cycle
	bank, row := c.Decode(r.Addr)
	r.bank, r.row = int32(bank), int32(row)
	r.phys = int32(c.physOf(bank, row))
	r.Write = false
	c.readQ = append(c.readQ, *r)
	if c.Sys.Banks[bank].OpenRow == int(r.phys) {
		c.hitCntR[r.bank]++
		c.hitSumR++
	}
	c.noteEnqueued(r, cycle)
	return true
}

// EnqueueWrite adds a copy of the write to the queue; false when the
// queue is full. Writes are posted: the issuer never waits for them.
func (c *Controller) EnqueueWrite(r *Request, cycle uint64) bool {
	if len(c.writeQ) >= c.Cfg.WriteQ {
		return false
	}
	r.arrive = cycle
	bank, row := c.Decode(r.Addr)
	r.bank, r.row = int32(bank), int32(row)
	r.phys = int32(c.physOf(bank, row))
	r.Write = true
	c.writeQ = append(c.writeQ, *r)
	if c.Sys.Banks[bank].OpenRow == int(r.phys) {
		c.hitCntW[r.bank]++
		c.hitSumW++
	}
	c.noteEnqueued(r, cycle)
	return true
}

// noteEnqueued tightens the cached idle bound for a newly queued
// request instead of discarding it: the controller stays dormant until
// min(previous bound, the request's own earliest actionable cycle).
// That bound is exact — a new request only adds candidate actions
// (bounded below by its device timing with retryAt still zero), the
// other requests' earliest times depend only on frozen bank state, the
// write-drain mode flip is covered because the idle bound already
// considers both queues regardless of mode, and a new row hit can only
// *suppress* (delay) a conflict PRE, where waking early is a wasted
// no-op tick, never a missed action. Bursty cores therefore no longer
// force a full scheduling rescan per enqueued miss.
func (c *Controller) noteEnqueued(r *Request, cycle uint64) {
	if c.idleUntil <= cycle {
		return // not dormant: the next Tick runs a full pass anyway
	}
	bank := int(r.bank)
	b := &c.Sys.Banks[bank]
	var at uint64
	switch {
	case b.OpenRow == int(r.phys) && b.HitStreak < c.Cfg.ColumnCap:
		at = c.Sys.ColumnEarliest(bank, r.Write)
	case b.OpenRow >= 0:
		at = c.Sys.PreEarliest(bank)
	default:
		at = c.Sys.ActEarliest(bank)
	}
	if at < c.idleUntil {
		c.idleUntil = at
	}
}

// QueueLens returns the current read and write queue depths.
func (c *Controller) QueueLens() (int, int) { return len(c.readQ), len(c.writeQ) }

// Idle reports whether all queues and internal operations are drained.
func (c *Controller) Idle() bool {
	return len(c.readQ) == 0 && len(c.writeQ) == 0 && len(c.victims) == 0
}

// Tick advances the controller one CPU cycle, issuing at most one DRAM
// command. It reports whether the controller did anything — issued a
// command or changed scheduling state. A false return guarantees the
// tick was a no-op (re-ticking any later cycle before NextEvent's bound
// would also be a no-op), which is what lets the event-driven engine in
// sim.Run skip the controller's idle cycles.
//
// Tick exploits its own guarantee: after an idle cycle it caches the
// NextEvent bound and answers every Tick before it with an immediate
// false, skipping the scheduling scan entirely. The cache is dropped on
// any enqueue (a new request can be actionable at once); every other
// state change happens inside an active tick, which recomputes the
// bound at the next idle one.
func (c *Controller) Tick(cycle uint64) bool {
	if cycle < c.idleUntil {
		return false
	}
	active := c.TickFull(cycle)
	// Cache the next actionable cycle after active ticks too, not just
	// idle ones: once this tick's command (or mutation) has landed, the
	// controller's state is frozen until the bound — by the same
	// argument that makes the bound exact after an idle tick — and any
	// enqueue in between re-tightens it through noteEnqueued. This
	// spares the full scheduling rescan that otherwise trails every
	// issued command on the next cycle, discovering nothing is ready.
	c.idleUntil = c.NextEvent(cycle)
	return active
}

// TickFull is Tick without the idle fast path: it always evaluates the
// full per-cycle scheduling pass. The per-cycle reference loop
// (sim.Config.NoSkip) drives the controller through TickFull so the
// baseline the differential tests compare against contains none of the
// event machinery.
func (c *Controller) TickFull(cycle uint64) bool {
	c.mutated = false
	// One memo epoch per tick: no command separates the victim, write,
	// and read passes within a tick, so bank-level CanPRE/CanACT/
	// CanColumn answers carry across all of them.
	c.scanEpoch++
	issued := c.tick(cycle)
	return issued || c.mutated
}

// tick is Tick's body; true when a DRAM command issued.
func (c *Controller) tick(cycle uint64) bool {
	// Refresh management.
	for rank := 0; rank < c.Cfg.Ranks; rank++ {
		c.Sys.EndRefreshIfDone(rank, cycle)
		if c.Sys.RefreshDue(rank, cycle) && !c.Sys.Ranks[rank].Refreshing {
			if c.Sys.AllPrecharged(rank) {
				c.Sys.REF(rank, cycle)
				c.Track.OnRefresh(rank, c.refSlice[rank], c.rowsPerREF)
				c.refSlice[rank] = (c.refSlice[rank] + c.rowsPerREF) % c.Cfg.RowsPerBank
				c.Stats.Refreshes++
				return true // REF consumes the command slot
			}
			// Close a bank blocking the refresh.
			base := rank * c.Sys.BanksPerRank()
			for b := base; b < base+c.Sys.BanksPerRank(); b++ {
				if c.Sys.Banks[b].OpenRow >= 0 && c.Sys.CanPRE(b, cycle) {
					c.Obs.RefreshStalls++
					c.issuePRE(b, cycle)
					return true
				}
			}
		}
	}

	// Preventive victim refreshes have priority over demand traffic:
	// they are the defense's security-critical action.
	if c.tickVictims(cycle) {
		return true
	}

	// Write drain mode with high/low watermarks.
	if c.writeMode {
		if len(c.writeQ) <= c.Cfg.WriteQ/4 {
			c.writeMode = false
		}
	} else if len(c.writeQ) >= c.Cfg.WriteQ*3/4 || (len(c.readQ) == 0 && len(c.writeQ) > 0) {
		c.writeMode = true
	}

	if c.writeMode && c.schedule(c.writeQ, cycle, true) {
		return true
	}
	if c.schedule(c.readQ, cycle, false) {
		return true
	}
	if !c.writeMode && len(c.writeQ) > 0 {
		// Opportunistically drain writes when reads have nothing to do.
		return c.schedule(c.writeQ, cycle, true)
	}
	return false
}

// NextEvent returns the earliest cycle after cycle at which an idle
// controller could act, or math.MaxUint64 when it has nothing pending.
// It is meaningful only right after a Tick(cycle) that returned false:
// in that state no command can issue, so every device ready time is
// frozen until the returned cycle, and mem.System's *Earliest bounds
// are exact. The bound is conservative (it may name a cycle where the
// controller still does nothing — e.g. a conflict PRE suppressed by the
// open-row policy, or a defense denying the ACT it anticipated), which
// costs a wasted tick but can never skip a cycle the per-cycle loop
// would have acted on.
//
// Two Tick-internal mutations deliberately do not appear here because
// they cannot change scheduling outcomes: EndRefreshIfDone only clears
// a flag that CanACT already double-checks against RefUntil, and the
// write-drain mode flip is a pure function of the (frozen) queue depths
// and the previous mode, so it reaches the same state on the wake tick
// as it would have on the next per-cycle tick — NextEvent therefore
// considers both queues regardless of the current mode.
func (c *Controller) NextEvent(cycle uint64) uint64 {
	if cycle < c.idleUntil {
		return c.idleUntil // computed by the idle Tick that got us here
	}
	// floor is the lowest value NextEvent can return: the moment any
	// candidate reaches it the minimum is decided, so every loop below
	// bails out (the remaining candidates could only tie).
	floor := cycle + 1
	next := ^uint64(0)
	consider := func(at uint64) bool {
		if at < next {
			next = at
		}
		return next <= floor
	}
	// Refresh: either the next deadline, or — when one is overdue — the
	// earliest close of a bank blocking it (REF itself needs every bank
	// precharged), the REF itself once no bank blocks it, or the end of
	// the refresh already in flight. The unblocked-overdue case only
	// arises when NextEvent runs right after an *active* tick (an idle
	// tick would have issued the REF), e.g. after the PRE that closed
	// the rank's last open bank.
	for rank := range c.Sys.Ranks {
		r := &c.Sys.Ranks[rank]
		if r.Refreshing && r.RefUntil > cycle && consider(r.RefUntil) {
			return floor
		}
		if r.NextREF > cycle {
			if consider(r.NextREF) {
				return floor
			}
			continue
		}
		if r.Refreshing {
			continue
		}
		base := rank * c.Sys.BanksPerRank()
		blocked := false
		for b := base; b < base+c.Sys.BanksPerRank(); b++ {
			if c.Sys.Banks[b].OpenRow >= 0 {
				blocked = true
				if consider(c.Sys.PreEarliest(b)) {
					return floor
				}
			}
		}
		if !blocked {
			return floor // REF is actionable on the next tick
		}
	}
	// Preventive refreshes: only the head of the backlog (up to the
	// per-tick scan cap) can act; later entries wait for a removal,
	// which is itself an active tick.
	for i := range c.victims {
		if i >= victimScanCap {
			break
		}
		v := &c.victims[i]
		b := &c.Sys.Banks[v.bank]
		switch {
		case !v.opened && b.OpenRow == v.row:
			return floor // adopts the open row on the next tick
		case !v.opened && b.OpenRow >= 0:
			if consider(c.Sys.PreEarliest(v.bank)) {
				return floor
			}
		case !v.opened:
			if consider(c.Sys.ActEarliest(v.bank)) {
				return floor
			}
		case b.OpenRow >= 0:
			if consider(maxU64(v.preAt, c.Sys.PreEarliest(v.bank))) {
				return floor
			}
		default:
			// Opened, but the bank was since closed underneath (a
			// refresh-blocking PRE): the completing PRE needs an open
			// row again, so the wake-up is the next ACT to this bank —
			// an active tick — not a time this victim can name.
		}
	}
	// Demand and write queues: each request's earliest actionable cycle
	// under the frozen bank state (column to its open row, PRE of a
	// conflicting or cap-rotated row, or ACT of a closed bank), gated by
	// any defense-imposed retry time. ActEarliest walks rank state, so
	// memoize it per bank across the scan; the memos are epoch-tagged so
	// no O(banks) reset is paid per call.
	c.actEpoch++
	actEarliest := func(bank int) uint64 {
		nb := &c.neBank[bank]
		if nb.actEpoch != c.actEpoch {
			nb.actEpoch = c.actEpoch
			nb.act = c.Sys.ActEarliest(bank)
		}
		return nb.act
	}
	for _, q := range [2][]Request{c.readQ, c.writeQ} {
		// Open-row suppression: schedule never closes a bank while a
		// same-queue request still hits its open row, so a conflicting
		// request only gets its PRE once every hit has drained — an
		// active tick that reschedules everything. suppScratch[bank] is
		// the first cycle some hit request suppresses the bank (its
		// defense retry time; usually 0 = suppressed throughout): a
		// conflict wake-up is only real if it lands strictly before it.
		// Hits and closed-bank requests resolve in the same pass that
		// records the suppression; conflict PREs are deferred to a
		// second pass over just the conflicted requests, which runs once
		// every hit in the queue has been seen.
		c.suppEpoch++
		conf := c.confScratch[:0]
		for i := range q {
			r := &q[i]
			bank := int(r.bank)
			b := &c.Sys.Banks[bank]
			var at uint64
			switch {
			case b.OpenRow == int(r.phys):
				nb := &c.neBank[bank]
				if nb.suppEpoch != c.suppEpoch || r.retryAt < nb.supp {
					nb.suppEpoch = c.suppEpoch
					nb.supp = r.retryAt
				}
				if r.retryAt == 0 {
					if nb.seenEpoch == c.suppEpoch && nb.seen&1 != 0 {
						continue // identical candidate already considered
					}
					if nb.seenEpoch != c.suppEpoch {
						nb.seenEpoch = c.suppEpoch
						nb.seen = 0
					}
					nb.seen |= 1
				}
				if b.HitStreak < c.Cfg.ColumnCap {
					at = c.Sys.ColumnEarliest(bank, r.Write)
				} else {
					at = c.Sys.PreEarliest(bank) // column-cap rotation
				}
			case b.OpenRow >= 0:
				conf = append(conf, int32(i))
				continue
			default:
				at = actEarliest(bank)
			}
			if r.retryAt > at {
				at = r.retryAt
			}
			if consider(at) {
				c.confScratch = conf
				return floor
			}
		}
		for _, i := range conf {
			r := &q[i]
			bank := int(r.bank)
			nb := &c.neBank[bank]
			if r.retryAt == 0 {
				if nb.seenEpoch == c.suppEpoch && nb.seen&2 != 0 {
					continue // identical candidate already handled
				}
				if nb.seenEpoch != c.suppEpoch {
					nb.seenEpoch = c.suppEpoch
					nb.seen = 0
				}
				nb.seen |= 2
			}
			at := c.Sys.PreEarliest(bank)
			if r.retryAt > at {
				at = r.retryAt
			}
			if at <= cycle {
				at = cycle + 1
			}
			if nb.suppEpoch == c.suppEpoch && at >= nb.supp {
				continue // suppressed until an active tick intervenes
			}
			if consider(at) {
				c.confScratch = conf
				return floor
			}
		}
		c.confScratch = conf
	}
	if next <= cycle {
		next = cycle + 1
	}
	return next
}

// victimScanCap bounds how many pending preventive refreshes are
// considered per cycle; the backlog drains FIFO, so a deeper scan only
// helps when the head entries' banks are all blocked.
const victimScanCap = 16

// tickVictims advances in-flight preventive refreshes; true if a
// command was issued.
func (c *Controller) tickVictims(cycle uint64) bool {
	for i := range c.victims {
		if i >= victimScanCap {
			break
		}
		v := &c.victims[i]
		if !v.opened {
			b := &c.Sys.Banks[v.bank]
			if b.OpenRow == v.row {
				// The victim row happens to be open: reopening is
				// unnecessary; close it to complete the restore. preAt
				// captures the current cycle, so this transition must
				// count as activity or a skipping driver could stamp it
				// later than a per-cycle one.
				v.opened = true
				v.preAt = maxU64(cycle, b.PreReady)
				c.mutated = true
				continue
			}
			if b.OpenRow >= 0 {
				f, ok := c.canPREMemo(v.bank, c.tickTag(v.bank), cycle)
				c.scanTag[v.bank] = f
				if ok {
					c.issuePRE(v.bank, cycle)
					return true
				}
				continue
			}
			f, ok := c.canACTMemo(v.bank, c.tickTag(v.bank), cycle)
			c.scanTag[v.bank] = f
			if ok {
				c.issueACTRaw(v.bank, v.row, cycle)
				v.opened = true
				v.preAt = cycle + c.Sys.T.RAS
				return true
			}
			continue
		}
		if cycle >= v.preAt {
			f, ok := c.canPREMemo(v.bank, c.tickTag(v.bank), cycle)
			c.scanTag[v.bank] = f
			if ok {
				c.issuePRE(v.bank, cycle)
				c.Stats.VictimRefreshes++
				c.victimSet.Unset(c.rowKey(v.bank, v.row))
				c.victims = append(c.victims[:i], c.victims[i+1:]...)
				return true
			}
		}
	}
	return false
}

// Per-tick bank memo flags: within one tick no command separates the
// scheduling passes, so CanColumn/CanPRE/CanACT answer identically for
// every visitor of the same bank. Hit and column flags are kept per
// queue direction (the hit set defines each queue's open-row policy;
// CanColumn depends on read-vs-write latency). The flags live in the
// low 16 bits of scanTag, whose high bits hold the tick epoch the flags
// belong to — one load validates and reads a bank's memo, and bumping
// scanEpoch lazily resets every bank.
const (
	scanHitR uint64 = 1 << iota
	scanHitW
	scanColRChecked
	scanColROK
	scanColWChecked
	scanColWOK
	scanPreChecked
	scanPreOK
	scanActChecked
	scanActOK
)

const scanFlagBits = 16

// tickTag returns bank's memo word for the current tick epoch.
func (c *Controller) tickTag(bank int) uint64 {
	f := c.scanTag[bank]
	if f>>scanFlagBits != c.scanEpoch {
		f = c.scanEpoch << scanFlagBits
	}
	return f
}

// canACTMemo is CanACT with the per-tick bank memo; it returns the
// updated flag word.
func (c *Controller) canACTMemo(bank int, f uint64, cycle uint64) (uint64, bool) {
	if f&scanActChecked == 0 {
		f |= scanActChecked
		if c.Sys.CanACT(bank, cycle) {
			f |= scanActOK
		}
	}
	return f, f&scanActOK != 0
}

// schedule applies FR-FCFS to one queue in a single pass: it finds the
// oldest ready row-hit column command, and failing that, the oldest
// request needing an ACT, a cap-rotation PRE, or a conflict PRE — where
// a conflicting bank is only closed if no queued request still targets
// its open row (open-row policy).
func (c *Controller) schedule(q []Request, cycle uint64, writes bool) bool {
	if len(q) == 0 {
		return false
	}
	c.Obs.ScanPasses++
	epoch := c.scanEpoch << scanFlagBits
	hitSum := c.hitSumR
	if writes {
		hitSum = c.hitSumW
	}
	colCand, actCand, capCand := -1, -1, -1
	confBanks := c.confScratch[:0]
	if hitSum == 0 {
		// No hit-class entry anywhere in the queue: no column or
		// cap-rotation candidate can exist, and no conflict PRE can be
		// suppressed by the open-row policy, so the oldest eligible ACT
		// wins the moment it is found — the scan stops there instead of
		// walking the rest of the queue for a hit that cannot exist.
		for i := range q {
			r := &q[i]
			c.Obs.ScanEntries++
			if cycle < r.retryAt {
				continue
			}
			bank := int(r.bank)
			b := &c.Sys.Banks[bank]
			f := c.scanTag[bank]
			if f>>scanFlagBits != c.scanEpoch {
				f = epoch
			}
			if b.OpenRow >= 0 {
				if len(confBanks) == 0 {
					if f, _ = c.canPREMemo(bank, f, cycle); f&scanPreOK != 0 {
						confBanks = append(confBanks, r.bank)
					}
					c.scanTag[bank] = f
				}
				continue
			}
			if f&scanActChecked == 0 {
				f |= scanActChecked
				if c.Sys.CanACT(bank, cycle) {
					f |= scanActOK
				}
			}
			c.scanTag[bank] = f
			if f&scanActOK != 0 {
				actCand = i
				break
			}
		}
		c.confScratch = confBanks[:0]
		if actCand >= 0 {
			r := &q[actCand]
			ok, retry := c.Def.CanActivate(int(r.bank), int(r.phys), cycle)
			if ok {
				c.issueACT(int(r.bank), int(r.phys), cycle)
				return true
			}
			if retry <= cycle {
				retry = cycle + 1
			}
			r.retryAt = retry
			c.Stats.ThrottleStalls++
			c.mutated = true
			return false
		}
		if len(confBanks) > 0 {
			c.issuePRE(int(confBanks[0]), cycle)
			return true
		}
		return false
	}
	hitBit, colChecked, colOK := scanHitR, scanColRChecked, scanColROK
	if writes {
		hitBit, colChecked, colOK = scanHitW, scanColWChecked, scanColWOK
	}
	for i := range q {
		r := &q[i]
		c.Obs.ScanEntries++
		if cycle < r.retryAt {
			continue
		}
		bank := int(r.bank)
		b := &c.Sys.Banks[bank]
		f := c.scanTag[bank]
		if f>>scanFlagBits != c.scanEpoch {
			f = epoch
		}
		switch {
		case b.OpenRow == int(r.phys):
			f |= hitBit
			if b.HitStreak < c.Cfg.ColumnCap {
				if f&colChecked == 0 {
					f |= colChecked
					if c.Sys.CanColumn(bank, int(r.phys), writes, cycle) {
						f |= colOK
					}
				}
				if f&colOK != 0 {
					colCand = i
				}
			} else if capCand < 0 && actCand < 0 {
				if f, _ = c.canPREMemo(bank, f, cycle); f&scanPreOK != 0 {
					capCand = i
				}
			}
		case b.OpenRow >= 0:
			// Collected only while no ACT candidate exists: the ACT
			// path below returns (issue or throttle) without reaching
			// the conflict PREs, so later ones are dead the moment an
			// ACT candidate appears. Same for the cap rotation above.
			if actCand < 0 {
				if f, _ = c.canPREMemo(bank, f, cycle); f&scanPreOK != 0 {
					confBanks = append(confBanks, r.bank)
				}
			}
		default:
			if actCand < 0 {
				// Inline ACT memo: canACTMemo sits just past the
				// inlining budget and this is the simulator's hottest
				// loop.
				if f&scanActChecked == 0 {
					f |= scanActChecked
					if c.Sys.CanACT(bank, cycle) {
						f |= scanActOK
					}
				}
				if f&scanActOK != 0 {
					actCand = i
				}
			}
		}
		c.scanTag[bank] = f
		if colCand >= 0 {
			// Oldest ready row hit wins outright; the rest of the scan
			// only feeds the lower-priority paths.
			break
		}
	}
	// Retain confBanks' growth for the next scan (the entries stay
	// readable through the local slice below).
	c.confScratch = confBanks[:0]
	if colCand >= 0 {
		c.issueColumn(colCand, cycle, writes)
		return true
	}
	if actCand >= 0 {
		r := &q[actCand]
		ok, retry := c.Def.CanActivate(int(r.bank), int(r.phys), cycle)
		if ok {
			c.issueACT(int(r.bank), int(r.phys), cycle)
			return true
		}
		if retry <= cycle {
			retry = cycle + 1
		}
		r.retryAt = retry
		c.Stats.ThrottleStalls++
		c.mutated = true
		return false
	}
	for _, bank := range confBanks {
		if c.scanTag[bank]&hitBit == 0 {
			c.issuePRE(int(bank), cycle)
			return true
		}
	}
	if capCand >= 0 {
		c.issuePRE(int(q[capCand].bank), cycle)
		return true
	}
	return false
}

// canPREMemo is CanPRE with the per-scan bank memo; it returns the
// updated flag word.
func (c *Controller) canPREMemo(bank int, f uint64, cycle uint64) (uint64, bool) {
	if f&scanPreChecked == 0 {
		f |= scanPreChecked
		if c.Sys.CanPRE(bank, cycle) {
			f |= scanPreOK
		}
	}
	return f, f&scanPreOK != 0
}

func (c *Controller) issuePRE(bank int, cycle uint64) {
	row, on := c.Sys.PRE(bank, cycle)
	c.hitSumR -= int(c.hitCntR[bank])
	c.hitCntR[bank] = 0
	c.hitSumW -= int(c.hitCntW[bank])
	c.hitCntW[bank] = 0
	c.Track.OnPre(bank, row, on)
	c.Stats.Pres++
}

// issueACTRaw opens a row without consulting the defense (internal
// operations: victim refreshes are themselves exempt, as in real
// controllers where maintenance traffic bypasses the tracker).
func (c *Controller) issueACTRaw(bank, row int, cycle uint64) {
	c.Sys.ACT(bank, row, cycle)
	c.recountHits(bank)
	c.Track.OnAct(bank, row, cycle)
	c.Stats.Acts++
}

func (c *Controller) issueACT(bank, physRow int, cycle uint64) {
	c.issueACTRaw(bank, physRow, cycle)
	for _, dir := range c.Def.OnActivate(bank, physRow, cycle) {
		c.execute(dir, cycle)
	}
}

func (c *Controller) execute(dir mitigation.Directive, cycle uint64) {
	switch dir.Kind {
	case mitigation.RefreshVictim:
		// Deduplicate: a pending refresh of the same row already covers
		// this directive.
		key := c.rowKey(dir.Bank, dir.Row)
		if c.victimSet.Get(key) {
			c.Obs.DirRefreshDeduped++
			return
		}
		c.victimSet.Set(key)
		c.Obs.DirRefreshVictim++
		c.victims = append(c.victims, victimOp{bank: dir.Bank, row: dir.Row})
	case mitigation.SwapRows:
		c.swapRows(dir.Bank, dir.Row, dir.DstRow)
		c.Sys.BlockBank(dir.Bank, cycle, dir.BusyCycles)
		c.Track.OnRowsSwapped(dir.Bank, dir.Row, dir.DstRow)
		c.Stats.Migrations++
		c.Obs.DirSwapRows++
	case mitigation.ExtraMem:
		c.Obs.DirExtraMem++
		for i := 0; i < dir.MemReads; i++ {
			if c.Read(c.metaAddr(dir.Bank, dir.Row, i), 0, nil, cycle) {
				c.Stats.MetaReads++
			}
		}
		for i := 0; i < dir.MemWrites; i++ {
			if c.Write(c.metaAddr(dir.Bank, dir.Row, dir.MemReads+i), 0, cycle) {
				c.Stats.MetaWr++
			}
		}
	}
}

// metaAddr maps defense metadata (Hydra's in-DRAM counter table) to a
// reserved row range, spread across banks, so metadata traffic contends
// realistically with demand traffic.
func (c *Controller) metaAddr(bank, row, salt int) uint64 {
	metaBank := (bank + 1 + salt) % c.Sys.TotalBanks()
	metaRow := c.Cfg.RowsPerBank - 1 - (row % (c.Cfg.RowsPerBank / 16))
	// Invert Decode approximately: choose an address that decodes into
	// (metaBank, metaRow). Decode is onto, so compose the fields.
	rank := metaBank / (c.Cfg.BankGroups * c.Cfg.BanksPerGroup)
	rem := metaBank % (c.Cfg.BankGroups * c.Cfg.BanksPerGroup)
	bg := rem / c.Cfg.BanksPerGroup
	bk := rem % c.Cfg.BanksPerGroup
	colHigh := 0
	block := uint64(metaRow)
	block = block*uint64(c.blocksPerRow/c.Cfg.MOPWidth) + uint64(colHigh)
	block = block*uint64(c.Cfg.Ranks) + uint64(rank)
	block = block*uint64(c.Cfg.BanksPerGroup) + uint64(bk)
	block = block*uint64(c.Cfg.BankGroups) + uint64(bg)
	block = block * uint64(c.Cfg.MOPWidth)
	return block << 6
}

// issueColumn issues the column command of queue entry idx (of the
// write queue when writes, else the read queue) and removes it.
func (c *Controller) issueColumn(idx int, cycle uint64, writes bool) {
	if writes {
		r := &c.writeQ[idx]
		c.Sys.Column(int(r.bank), true, cycle)
		c.Stats.Writes++
		c.hitCntW[r.bank]-- // a column target is hit-class by definition
		c.hitSumW--
		c.writeQ = append(c.writeQ[:idx], c.writeQ[idx+1:]...)
		return
	}
	r := &c.readQ[idx]
	dataEnd := c.Sys.Column(int(r.bank), false, cycle)
	c.Stats.Reads++
	c.hitCntR[r.bank]--
	c.hitSumR--
	if c.Sys.Banks[r.bank].HitStreak > 1 {
		c.Stats.RowHits++
	} else {
		c.Stats.RowMisses++
	}
	// Remove before invoking the completion: the callback may enqueue (a
	// dirty-eviction writeback), which must see the freed slot.
	done := r.Done
	c.readQ = append(c.readQ[:idx], c.readQ[idx+1:]...)
	if done != nil {
		done(dataEnd)
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
