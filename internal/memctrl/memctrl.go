// Package memctrl implements the cycle-level memory controller of the
// performance evaluation (§7.1, Table 4): 64-entry read/write queues,
// FR-FCFS scheduling with a column cap of 16, open-row policy, MOP
// address mapping, rank-level refresh, and the defense hook points —
// activation gating (throttling), preventive victim refreshes, row
// migrations, and metadata traffic.
package memctrl

import (
	"svard/internal/mem"
	"svard/internal/mitigation"
)

// Config sizes the controller.
type Config struct {
	CPUGHz        float64
	ReadQ, WriteQ int
	ColumnCap     int // FR-FCFS consecutive row-hit cap
	MOPWidth      int // consecutive cache blocks per row before bank interleave
	RowBytes      int
	Ranks         int
	BankGroups    int
	BanksPerGroup int
	RowsPerBank   int
}

// DefaultConfig returns Table 4's memory controller configuration.
func DefaultConfig(rowsPerBank int) Config {
	return Config{
		CPUGHz:        3.2,
		ReadQ:         64,
		WriteQ:        64,
		ColumnCap:     16,
		MOPWidth:      4,
		RowBytes:      8 * 1024,
		Ranks:         2,
		BankGroups:    4,
		BanksPerGroup: 4,
		RowsPerBank:   rowsPerBank,
	}
}

// Tracker observes physically-addressed DRAM activity for security
// accounting; package sim implements it over the disturbance model.
type Tracker interface {
	// OnAct fires when a row is opened (its cells recharge).
	OnAct(bank, physRow int, cycle uint64)
	// OnPre fires when a row closes after onCycles open.
	OnPre(bank, physRow int, onCycles uint64)
	// OnRefresh fires when REF restores rows [first, first+count) of
	// every bank in the rank.
	OnRefresh(rank, firstRow, count int)
	// OnRowsSwapped fires when a migration rewrites two rows.
	OnRowsSwapped(bank, physA, physB int)
}

// nopTracker is used when no security accounting is attached.
type nopTracker struct{}

func (nopTracker) OnAct(int, int, uint64)      {}
func (nopTracker) OnPre(int, int, uint64)      {}
func (nopTracker) OnRefresh(int, int, int)     {}
func (nopTracker) OnRowsSwapped(int, int, int) {}

// Request is one memory transaction.
type Request struct {
	Addr    uint64
	Write   bool
	Core    int
	Done    func(cycle uint64) // read completion callback (may be nil)
	arrive  uint64
	bank    int // global bank
	row     int // MC-visible row (pre-remap)
	phys    int // physical row after migration indirection
	retryAt uint64
}

// victimOp is an in-flight preventive refresh (ACT+PRE of one row).
type victimOp struct {
	bank, row int // physical row
	opened    bool
	preAt     uint64
}

// Stats aggregates controller activity.
type Stats struct {
	Reads, Writes      uint64
	Acts, Pres         uint64
	RowHits, RowMisses uint64
	VictimRefreshes    uint64
	Migrations         uint64
	MetaReads, MetaWr  uint64
	ThrottleStalls     uint64
	Refreshes          uint64
}

// Controller is the memory controller.
type Controller struct {
	Cfg   Config
	Sys   *mem.System
	Def   mitigation.Defense
	Track Tracker
	Stats Stats

	readQ     []*Request
	writeQ    []*Request
	victims   []victimOp
	victimSet map[int64]bool

	// Row indirection installed by migration defenses (RRS/AQUA).
	logToPhys []map[int]int // per bank; nil entry = identity
	physToLog []map[int]int

	blocksPerRow int
	writeMode    bool
	refSlice     []int // per-rank next refresh slice row
	rowsPerREF   int
	actScratch   []uint64 // per-bank ActEarliest memo for NextEvent
	suppScratch  []uint64 // per-bank open-row suppression for NextEvent
	idleUntil    uint64   // Tick fast path: no-op until this cycle

	// Per-scan bank memos for schedule (see bankScan). The epoch is
	// uint64 so it cannot wrap within any run length a caller can
	// configure (schedule runs a few times per cycle at most).
	scanFlags     []uint8
	scanBankEpoch []uint64
	scanEpoch     uint64

	// mutated records command-free state changes within one Tick (a
	// defense throttle stamping retryAt, a victim op adopting an
	// already-open row), so Tick can report them as activity to the
	// event-driven engine: a cycle that changed anything must not be
	// treated as skippable.
	mutated bool
}

// New builds a controller over timing t, defense def (nil = none), and
// tracker tr (nil = none).
func New(cfg Config, t mem.Timing, def mitigation.Defense, tr Tracker) *Controller {
	if def == nil {
		def = mitigation.Nop{}
	}
	if tr == nil {
		tr = nopTracker{}
	}
	sys := mem.NewSystem(t, cfg.Ranks, cfg.BankGroups, cfg.BanksPerGroup, cfg.RowsPerBank)
	refs := int(t.REFW / t.REFI)
	if refs <= 0 {
		refs = 1
	}
	rowsPerREF := (cfg.RowsPerBank + refs - 1) / refs
	return &Controller{
		Cfg:          cfg,
		Sys:          sys,
		Def:          def,
		Track:        tr,
		logToPhys:    make([]map[int]int, sys.TotalBanks()),
		physToLog:    make([]map[int]int, sys.TotalBanks()),
		blocksPerRow: cfg.RowBytes / 64,
		refSlice:     make([]int, cfg.Ranks),
		rowsPerREF:   rowsPerREF,
	}
}

// Decode applies the MOP address mapping: consecutive cache blocks fill
// MOPWidth columns of a row, then interleave across bank groups, banks,
// and ranks, keeping row-buffer locality while spreading traffic.
func (c *Controller) Decode(addr uint64) (bank, row int) {
	block := addr >> 6
	block /= uint64(c.Cfg.MOPWidth)
	bg := int(block % uint64(c.Cfg.BankGroups))
	block /= uint64(c.Cfg.BankGroups)
	bk := int(block % uint64(c.Cfg.BanksPerGroup))
	block /= uint64(c.Cfg.BanksPerGroup)
	rank := int(block % uint64(c.Cfg.Ranks))
	block /= uint64(c.Cfg.Ranks)
	colHigh := block % uint64(c.blocksPerRow/c.Cfg.MOPWidth)
	block /= uint64(c.blocksPerRow / c.Cfg.MOPWidth)
	_ = colHigh
	row = int(block % uint64(c.Cfg.RowsPerBank))
	bank = rank*c.Cfg.BankGroups*c.Cfg.BanksPerGroup + bg*c.Cfg.BanksPerGroup + bk
	return bank, row
}

// physOf resolves the MC-visible row through the migration indirection.
func (c *Controller) physOf(bank, row int) int {
	if m := c.logToPhys[bank]; m != nil {
		if p, ok := m[row]; ok {
			return p
		}
	}
	return row
}

func (c *Controller) logOf(bank, phys int) int {
	if m := c.physToLog[bank]; m != nil {
		if l, ok := m[phys]; ok {
			return l
		}
	}
	return phys
}

func (c *Controller) swapRows(bank, physA, physB int) {
	if c.logToPhys[bank] == nil {
		c.logToPhys[bank] = make(map[int]int)
		c.physToLog[bank] = make(map[int]int)
	}
	la, lb := c.logOf(bank, physA), c.logOf(bank, physB)
	c.logToPhys[bank][la] = physB
	c.logToPhys[bank][lb] = physA
	c.physToLog[bank][physB] = la
	c.physToLog[bank][physA] = lb
	// Repair the cached physical rows of queued requests (rare path).
	for _, q := range [][]*Request{c.readQ, c.writeQ} {
		for _, r := range q {
			if r.bank == bank {
				r.phys = c.physOf(bank, r.row)
			}
		}
	}
}

// EnqueueRead adds a read; false when the queue is full.
func (c *Controller) EnqueueRead(r *Request, cycle uint64) bool {
	if len(c.readQ) >= c.Cfg.ReadQ {
		return false
	}
	r.arrive = cycle
	r.bank, r.row = c.Decode(r.Addr)
	r.phys = c.physOf(r.bank, r.row)
	r.Write = false
	c.readQ = append(c.readQ, r)
	c.idleUntil = 0 // the new request may be actionable immediately
	return true
}

// EnqueueWrite adds a write; false when the queue is full. Writes are
// posted: the issuer never waits for them.
func (c *Controller) EnqueueWrite(r *Request, cycle uint64) bool {
	if len(c.writeQ) >= c.Cfg.WriteQ {
		return false
	}
	r.arrive = cycle
	r.bank, r.row = c.Decode(r.Addr)
	r.phys = c.physOf(r.bank, r.row)
	r.Write = true
	c.writeQ = append(c.writeQ, r)
	c.idleUntil = 0 // the new request may be actionable immediately
	return true
}

// QueueLens returns the current read and write queue depths.
func (c *Controller) QueueLens() (int, int) { return len(c.readQ), len(c.writeQ) }

// Idle reports whether all queues and internal operations are drained.
func (c *Controller) Idle() bool {
	return len(c.readQ) == 0 && len(c.writeQ) == 0 && len(c.victims) == 0
}

// Tick advances the controller one CPU cycle, issuing at most one DRAM
// command. It reports whether the controller did anything — issued a
// command or changed scheduling state. A false return guarantees the
// tick was a no-op (re-ticking any later cycle before NextEvent's bound
// would also be a no-op), which is what lets the event-driven engine in
// sim.Run skip the controller's idle cycles.
//
// Tick exploits its own guarantee: after an idle cycle it caches the
// NextEvent bound and answers every Tick before it with an immediate
// false, skipping the scheduling scan entirely. The cache is dropped on
// any enqueue (a new request can be actionable at once); every other
// state change happens inside an active tick, which recomputes the
// bound at the next idle one.
func (c *Controller) Tick(cycle uint64) bool {
	if cycle < c.idleUntil {
		return false
	}
	if c.TickFull(cycle) {
		return true
	}
	c.idleUntil = c.NextEvent(cycle)
	return false
}

// TickFull is Tick without the idle fast path: it always evaluates the
// full per-cycle scheduling pass. The per-cycle reference loop
// (sim.Config.NoSkip) drives the controller through TickFull so the
// baseline the differential tests compare against contains none of the
// event machinery.
func (c *Controller) TickFull(cycle uint64) bool {
	c.mutated = false
	issued := c.tick(cycle)
	return issued || c.mutated
}

// tick is Tick's body; true when a DRAM command issued.
func (c *Controller) tick(cycle uint64) bool {
	// Refresh management.
	for rank := 0; rank < c.Cfg.Ranks; rank++ {
		c.Sys.EndRefreshIfDone(rank, cycle)
		if c.Sys.RefreshDue(rank, cycle) && !c.Sys.Ranks[rank].Refreshing {
			if c.Sys.AllPrecharged(rank) {
				c.Sys.REF(rank, cycle)
				c.Track.OnRefresh(rank, c.refSlice[rank], c.rowsPerREF)
				c.refSlice[rank] = (c.refSlice[rank] + c.rowsPerREF) % c.Cfg.RowsPerBank
				c.Stats.Refreshes++
				return true // REF consumes the command slot
			}
			// Close a bank blocking the refresh.
			base := rank * c.Sys.BanksPerRank()
			for b := base; b < base+c.Sys.BanksPerRank(); b++ {
				if c.Sys.Banks[b].OpenRow >= 0 && c.Sys.CanPRE(b, cycle) {
					c.issuePRE(b, cycle)
					return true
				}
			}
		}
	}

	// Preventive victim refreshes have priority over demand traffic:
	// they are the defense's security-critical action.
	if c.tickVictims(cycle) {
		return true
	}

	// Write drain mode with high/low watermarks.
	if c.writeMode {
		if len(c.writeQ) <= c.Cfg.WriteQ/4 {
			c.writeMode = false
		}
	} else if len(c.writeQ) >= c.Cfg.WriteQ*3/4 || (len(c.readQ) == 0 && len(c.writeQ) > 0) {
		c.writeMode = true
	}

	if c.writeMode && c.schedule(c.writeQ, cycle, true) {
		return true
	}
	if c.schedule(c.readQ, cycle, false) {
		return true
	}
	if !c.writeMode && len(c.writeQ) > 0 {
		// Opportunistically drain writes when reads have nothing to do.
		return c.schedule(c.writeQ, cycle, true)
	}
	return false
}

// NextEvent returns the earliest cycle after cycle at which an idle
// controller could act, or math.MaxUint64 when it has nothing pending.
// It is meaningful only right after a Tick(cycle) that returned false:
// in that state no command can issue, so every device ready time is
// frozen until the returned cycle, and mem.System's *Earliest bounds
// are exact. The bound is conservative (it may name a cycle where the
// controller still does nothing — e.g. a conflict PRE suppressed by the
// open-row policy, or a defense denying the ACT it anticipated), which
// costs a wasted tick but can never skip a cycle the per-cycle loop
// would have acted on.
//
// Two Tick-internal mutations deliberately do not appear here because
// they cannot change scheduling outcomes: EndRefreshIfDone only clears
// a flag that CanACT already double-checks against RefUntil, and the
// write-drain mode flip is a pure function of the (frozen) queue depths
// and the previous mode, so it reaches the same state on the wake tick
// as it would have on the next per-cycle tick — NextEvent therefore
// considers both queues regardless of the current mode.
func (c *Controller) NextEvent(cycle uint64) uint64 {
	if cycle < c.idleUntil {
		return c.idleUntil // computed by the idle Tick that got us here
	}
	next := ^uint64(0)
	consider := func(at uint64) {
		if at < next {
			next = at
		}
	}
	// Refresh: either the next deadline, or — when one is overdue — the
	// earliest close of a bank blocking it (REF itself needs every bank
	// precharged) or the end of the refresh already in flight.
	for rank := range c.Sys.Ranks {
		r := &c.Sys.Ranks[rank]
		if r.Refreshing && r.RefUntil > cycle {
			consider(r.RefUntil)
		}
		if r.NextREF > cycle {
			consider(r.NextREF)
			continue
		}
		base := rank * c.Sys.BanksPerRank()
		for b := base; b < base+c.Sys.BanksPerRank(); b++ {
			if c.Sys.Banks[b].OpenRow >= 0 {
				consider(c.Sys.PreEarliest(b))
			}
		}
	}
	// Preventive refreshes: only the head of the backlog (up to the
	// per-tick scan cap) can act; later entries wait for a removal,
	// which is itself an active tick.
	for i := range c.victims {
		if i >= victimScanCap {
			break
		}
		v := &c.victims[i]
		b := &c.Sys.Banks[v.bank]
		switch {
		case !v.opened && b.OpenRow == v.row:
			consider(cycle + 1) // adopts the open row on the next tick
		case !v.opened && b.OpenRow >= 0:
			consider(c.Sys.PreEarliest(v.bank))
		case !v.opened:
			consider(c.Sys.ActEarliest(v.bank))
		case b.OpenRow >= 0:
			consider(maxU64(v.preAt, c.Sys.PreEarliest(v.bank)))
		default:
			// Opened, but the bank was since closed underneath (a
			// refresh-blocking PRE): the completing PRE needs an open
			// row again, so the wake-up is the next ACT to this bank —
			// an active tick — not a time this victim can name.
		}
	}
	// Demand and write queues: each request's earliest actionable cycle
	// under the frozen bank state (column to its open row, PRE of a
	// conflicting or cap-rotated row, or ACT of a closed bank), gated by
	// any defense-imposed retry time. ActEarliest walks rank state, so
	// memoize it per bank across the scan.
	if c.actScratch == nil {
		c.actScratch = make([]uint64, c.Sys.TotalBanks())
		c.suppScratch = make([]uint64, c.Sys.TotalBanks())
	}
	unset := ^uint64(0)
	for i := range c.actScratch {
		c.actScratch[i] = unset
	}
	actEarliest := func(bank int) uint64 {
		if c.actScratch[bank] == unset {
			c.actScratch[bank] = c.Sys.ActEarliest(bank)
		}
		return c.actScratch[bank]
	}
	for _, q := range [2][]*Request{c.readQ, c.writeQ} {
		// Open-row suppression: schedule never closes a bank while a
		// same-queue request still hits its open row, so a conflicting
		// request only gets its PRE once every hit has drained — an
		// active tick that reschedules everything. suppScratch[bank] is
		// the first cycle some hit request suppresses the bank (its
		// defense retry time; usually 0 = suppressed throughout): a
		// conflict wake-up is only real if it lands strictly before it.
		supp := c.suppScratch
		for i := range supp {
			supp[i] = unset
		}
		for _, r := range q {
			if c.Sys.Banks[r.bank].OpenRow == r.phys && r.retryAt < supp[r.bank] {
				supp[r.bank] = r.retryAt
			}
		}
		for _, r := range q {
			b := &c.Sys.Banks[r.bank]
			var at uint64
			switch {
			case b.OpenRow == r.phys && b.HitStreak < c.Cfg.ColumnCap:
				at = c.Sys.ColumnEarliest(r.bank, r.Write)
			case b.OpenRow == r.phys:
				at = c.Sys.PreEarliest(r.bank) // column-cap rotation
			case b.OpenRow >= 0:
				at = c.Sys.PreEarliest(r.bank)
				if r.retryAt > at {
					at = r.retryAt
				}
				if at <= cycle {
					at = cycle + 1
				}
				if at >= supp[r.bank] {
					continue // suppressed until an active tick intervenes
				}
				consider(at)
				continue
			default:
				at = actEarliest(r.bank)
			}
			if r.retryAt > at {
				at = r.retryAt
			}
			consider(at)
		}
	}
	if next <= cycle {
		next = cycle + 1
	}
	return next
}

// victimScanCap bounds how many pending preventive refreshes are
// considered per cycle; the backlog drains FIFO, so a deeper scan only
// helps when the head entries' banks are all blocked.
const victimScanCap = 16

// tickVictims advances in-flight preventive refreshes; true if a
// command was issued.
func (c *Controller) tickVictims(cycle uint64) bool {
	for i := range c.victims {
		if i >= victimScanCap {
			break
		}
		v := &c.victims[i]
		if !v.opened {
			b := &c.Sys.Banks[v.bank]
			if b.OpenRow == v.row {
				// The victim row happens to be open: reopening is
				// unnecessary; close it to complete the restore. preAt
				// captures the current cycle, so this transition must
				// count as activity or a skipping driver could stamp it
				// later than a per-cycle one.
				v.opened = true
				v.preAt = maxU64(cycle, b.PreReady)
				c.mutated = true
				continue
			}
			if b.OpenRow >= 0 {
				if c.Sys.CanPRE(v.bank, cycle) {
					c.issuePRE(v.bank, cycle)
					return true
				}
				continue
			}
			if c.Sys.CanACT(v.bank, cycle) {
				c.issueACTRaw(v.bank, v.row, cycle)
				v.opened = true
				v.preAt = cycle + c.Sys.T.RAS
				return true
			}
			continue
		}
		if cycle >= v.preAt && c.Sys.CanPRE(v.bank, cycle) {
			c.issuePRE(v.bank, cycle)
			c.Stats.VictimRefreshes++
			delete(c.victimSet, int64(v.bank)<<32|int64(v.row))
			c.victims = append(c.victims[:i], c.victims[i+1:]...)
			return true
		}
	}
	return false
}

// Per-scan bank memo flags: within one schedule pass no command issues,
// so CanColumn/CanPRE/CanACT answer identically for every request on
// the same bank. The flags live in epoch-tagged scratch (scanFlags is
// lazily reset by bumping scanEpoch, never cleared) and also replace
// the per-scan hit mask.
const (
	scanHit uint8 = 1 << iota
	scanColChecked
	scanColOK
	scanPreChecked
	scanPreOK
	scanActChecked
	scanActOK
)

// bankScan returns the bank's memo flags for the current scan epoch.
func (c *Controller) bankScan(bank int) *uint8 {
	if c.scanBankEpoch[bank] != c.scanEpoch {
		c.scanBankEpoch[bank] = c.scanEpoch
		c.scanFlags[bank] = 0
	}
	return &c.scanFlags[bank]
}

// schedule applies FR-FCFS to one queue in a single pass: it finds the
// oldest ready row-hit column command, and failing that, the oldest
// request needing an ACT, a cap-rotation PRE, or a conflict PRE — where
// a conflicting bank is only closed if no queued request still targets
// its open row (open-row policy).
func (c *Controller) schedule(q []*Request, cycle uint64, writes bool) bool {
	if len(q) == 0 {
		return false
	}
	if c.scanFlags == nil {
		c.scanFlags = make([]uint8, c.Sys.TotalBanks())
		c.scanBankEpoch = make([]uint64, c.Sys.TotalBanks())
	}
	c.scanEpoch++
	var colCand, actCand, capCand *Request
	var confCands []*Request
	for _, r := range q {
		if cycle < r.retryAt {
			continue
		}
		b := &c.Sys.Banks[r.bank]
		f := c.bankScan(r.bank)
		switch {
		case b.OpenRow == r.phys:
			*f |= scanHit
			if b.HitStreak < c.Cfg.ColumnCap {
				if *f&scanColChecked == 0 {
					*f |= scanColChecked
					if c.Sys.CanColumn(r.bank, r.phys, writes, cycle) {
						*f |= scanColOK
					}
				}
				if *f&scanColOK != 0 {
					colCand = r
				}
			} else if capCand == nil && actCand == nil && c.canPREMemo(r.bank, f, cycle) {
				capCand = r
			}
		case b.OpenRow >= 0:
			// Collected only while no ACT candidate exists: the ACT
			// path below returns (issue or throttle) without reaching
			// the conflict PREs, so later ones are dead the moment an
			// ACT candidate appears. Same for the cap rotation above.
			if actCand == nil && c.canPREMemo(r.bank, f, cycle) {
				confCands = append(confCands, r)
			}
		default:
			if actCand == nil {
				if *f&scanActChecked == 0 {
					*f |= scanActChecked
					if c.Sys.CanACT(r.bank, cycle) {
						*f |= scanActOK
					}
				}
				if *f&scanActOK != 0 {
					actCand = r
				}
			}
		}
		if colCand != nil {
			// Oldest ready row hit wins outright; the rest of the scan
			// only feeds the lower-priority paths.
			break
		}
	}
	if colCand != nil {
		c.issueColumn(colCand, cycle, writes)
		return true
	}
	if actCand != nil {
		ok, retry := c.Def.CanActivate(actCand.bank, actCand.phys, cycle)
		if ok {
			c.issueACT(actCand.bank, actCand.phys, cycle)
			return true
		}
		if retry <= cycle {
			retry = cycle + 1
		}
		actCand.retryAt = retry
		c.Stats.ThrottleStalls++
		c.mutated = true
		return false
	}
	for _, r := range confCands {
		if c.scanFlags[r.bank]&scanHit == 0 {
			c.issuePRE(r.bank, cycle)
			return true
		}
	}
	if capCand != nil {
		c.issuePRE(capCand.bank, cycle)
		return true
	}
	return false
}

// canPREMemo is CanPRE with the per-scan bank memo.
func (c *Controller) canPREMemo(bank int, f *uint8, cycle uint64) bool {
	if *f&scanPreChecked == 0 {
		*f |= scanPreChecked
		if c.Sys.CanPRE(bank, cycle) {
			*f |= scanPreOK
		}
	}
	return *f&scanPreOK != 0
}

func (c *Controller) issuePRE(bank int, cycle uint64) {
	row, on := c.Sys.PRE(bank, cycle)
	c.Track.OnPre(bank, row, on)
	c.Stats.Pres++
}

// issueACTRaw opens a row without consulting the defense (internal
// operations: victim refreshes are themselves exempt, as in real
// controllers where maintenance traffic bypasses the tracker).
func (c *Controller) issueACTRaw(bank, row int, cycle uint64) {
	c.Sys.ACT(bank, row, cycle)
	c.Track.OnAct(bank, row, cycle)
	c.Stats.Acts++
}

func (c *Controller) issueACT(bank, physRow int, cycle uint64) {
	c.issueACTRaw(bank, physRow, cycle)
	for _, dir := range c.Def.OnActivate(bank, physRow, cycle) {
		c.execute(dir, cycle)
	}
}

func (c *Controller) execute(dir mitigation.Directive, cycle uint64) {
	switch dir.Kind {
	case mitigation.RefreshVictim:
		// Deduplicate: a pending refresh of the same row already covers
		// this directive.
		key := int64(dir.Bank)<<32 | int64(dir.Row)
		if c.victimSet[key] {
			return
		}
		if c.victimSet == nil {
			c.victimSet = make(map[int64]bool)
		}
		c.victimSet[key] = true
		c.victims = append(c.victims, victimOp{bank: dir.Bank, row: dir.Row})
	case mitigation.SwapRows:
		c.swapRows(dir.Bank, dir.Row, dir.DstRow)
		c.Sys.BlockBank(dir.Bank, cycle, dir.BusyCycles)
		c.Track.OnRowsSwapped(dir.Bank, dir.Row, dir.DstRow)
		c.Stats.Migrations++
	case mitigation.ExtraMem:
		for i := 0; i < dir.MemReads; i++ {
			req := &Request{Addr: c.metaAddr(dir.Bank, dir.Row, i)}
			if c.EnqueueRead(req, cycle) {
				c.Stats.MetaReads++
			}
		}
		for i := 0; i < dir.MemWrites; i++ {
			req := &Request{Addr: c.metaAddr(dir.Bank, dir.Row, dir.MemReads+i)}
			if c.EnqueueWrite(req, cycle) {
				c.Stats.MetaWr++
			}
		}
	}
}

// metaAddr maps defense metadata (Hydra's in-DRAM counter table) to a
// reserved row range, spread across banks, so metadata traffic contends
// realistically with demand traffic.
func (c *Controller) metaAddr(bank, row, salt int) uint64 {
	metaBank := (bank + 1 + salt) % c.Sys.TotalBanks()
	metaRow := c.Cfg.RowsPerBank - 1 - (row % (c.Cfg.RowsPerBank / 16))
	// Invert Decode approximately: choose an address that decodes into
	// (metaBank, metaRow). Decode is onto, so compose the fields.
	rank := metaBank / (c.Cfg.BankGroups * c.Cfg.BanksPerGroup)
	rem := metaBank % (c.Cfg.BankGroups * c.Cfg.BanksPerGroup)
	bg := rem / c.Cfg.BanksPerGroup
	bk := rem % c.Cfg.BanksPerGroup
	colHigh := 0
	block := uint64(metaRow)
	block = block*uint64(c.blocksPerRow/c.Cfg.MOPWidth) + uint64(colHigh)
	block = block*uint64(c.Cfg.Ranks) + uint64(rank)
	block = block*uint64(c.Cfg.BanksPerGroup) + uint64(bk)
	block = block*uint64(c.Cfg.BankGroups) + uint64(bg)
	block = block * uint64(c.Cfg.MOPWidth)
	return block << 6
}

func (c *Controller) issueColumn(r *Request, cycle uint64, writes bool) {
	dataEnd := c.Sys.Column(r.bank, writes, cycle)
	if writes {
		c.Stats.Writes++
		c.removeReq(&c.writeQ, r)
		return
	}
	c.Stats.Reads++
	if c.Sys.Banks[r.bank].HitStreak > 1 {
		c.Stats.RowHits++
	} else {
		c.Stats.RowMisses++
	}
	c.removeReq(&c.readQ, r)
	if r.Done != nil {
		r.Done(dataEnd)
	}
}

func (c *Controller) removeReq(q *[]*Request, r *Request) {
	for i, x := range *q {
		if x == r {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
