package sim

import (
	"svard/internal/disturb"
	"svard/internal/temporal"
)

// secTracker implements memctrl.Tracker: it accounts read disturbance
// accrual for every row under the scaled vulnerability model and counts
// security violations (a row crossing its scaled true HCfirst without a
// restore). A correctly configured defense must keep this at zero; the
// defense-free baseline at low thresholds must not (tests assert both).
//
// The thresholds it compares against are the LIVE view of the truth
// (views.go): for static runs that is exactly the calibration view the
// defenses were configured against; with a temporal process attached the
// live view drifts per epoch while defenses keep reading calibration —
// the tracker is the only component allowed to see the drifted truth.
//
// All per-row tables are flat [bank*rows+row] arrays — the tracker is
// on the controller's command path, and the accrual table is the
// largest piece of pooled state (4 B/row: 16 MB at the paper's 128K
// rows x 32 banks).
type secTracker struct {
	model  *disturb.Model
	live   liveView  // ground-truth thresholds (== calibration when static)
	psi    []float64 // RowPress susceptibility per [bank*rows+row], from buildModule
	cpuGHz float64

	rows         int
	banksPerRank int
	cur          []float32 // accrued effective hammers per [bank*rows+row]

	// Single-entry memo for the on-time term of the RowPress factor:
	// row on-times are quantized by the DRAM timing parameters (most
	// closings happen at exactly tRAS or a column-burst multiple), so
	// consecutive PREs overwhelmingly repeat the previous on-time and
	// skip the pow.
	lastOnNs float64
	lastBase float64

	Violations uint64
	acts       uint64
}

func newSecTracker(model *disturb.Model, hcBase, psi []float64, factor, cpuGHz float64, banks, banksPerRank int) *secTracker {
	t := &secTracker{}
	t.reset(model, hcBase, psi, factor, cpuGHz, banks, banksPerRank)
	return t
}

// reset reinitializes the tracker in place to the state newSecTracker
// produces, retaining the accrual table when the geometry still fits.
func (t *secTracker) reset(model *disturb.Model, hcBase, psi []float64, factor, cpuGHz float64, banks, banksPerRank int) {
	rows := model.Geom.RowsPerBank
	t.model = model
	t.live.reset(hcBase, factor, rows)
	t.psi = psi
	t.cpuGHz = cpuGHz
	t.rows = rows
	t.banksPerRank = banksPerRank
	if n := banks * rows; cap(t.cur) >= n {
		t.cur = t.cur[:n]
		clear(t.cur)
	} else {
		t.cur = make([]float32, n)
	}
	t.lastOnNs, t.lastBase = 0, 1
	t.Violations = 0
	t.acts = 0
}

func (t *secTracker) hcFirst(idx int) float32 {
	return t.live.hcFirst(idx)
}

// startTemporal attaches a temporal process to the tracker's live view.
// Must be called after reset, before the run starts.
func (t *secTracker) startTemporal(proc temporal.Process, epochCycles uint64) {
	t.live.start(proc, epochCycles, len(t.cur))
}

// epochAdvances reports how many epoch edges the live view crossed this
// run — the flight recorder's temporal counter (0 on static runs).
func (t *secTracker) epochAdvances() uint64 { return t.live.advances }

// tickEpoch advances the live view to cycle's epoch; the engine loops
// call it every ticked cycle (a single branch when static).
func (t *secTracker) tickEpoch(cycle uint64) { t.live.tickEpoch(cycle) }

// NextEvent reports the next cycle at which the tracker's state changes
// on its own — the next epoch edge (MaxUint64 when static). The event
// engine folds it into its skip bounds so cycle-skipping never jumps
// over an epoch boundary.
func (t *secTracker) NextEvent(cycle uint64) uint64 { return t.live.nextEvent() }

// OnAct: opening a row restores its own cells.
func (t *secTracker) OnAct(bank, row int, cycle uint64) {
	t.cur[bank*t.rows+row] = 0
	t.acts++
}

// OnPre: the closing row disturbed its neighbours for its whole on-time
// (RowHammer per activation + RowPress per on-time).
func (t *secTracker) OnPre(bank, row int, onCycles uint64) {
	onNs := float64(onCycles) / t.cpuGHz
	// One pow per closing (memoized on the repeating on-time), shared by
	// all of its victims.
	pressBase := t.lastBase
	if onNs != t.lastOnNs {
		pressBase = t.model.PressBase(onNs)
		t.lastOnNs, t.lastBase = onNs, pressBase
	}
	g := t.model.Geom
	base := bank * t.rows
	for _, d := range [...]int{-2, -1, 1, 2} {
		v := row + d
		if v < 0 || v >= t.rows || !g.SameSubarray(row, v) {
			continue
		}
		w := 0.5
		if d == -2 || d == 2 {
			w *= t.model.P.BlastDecay
		}
		idx := base + v
		acc := t.cur[idx] + float32(w*disturb.PressFactorFromBase(pressBase, t.psi[idx]))
		if acc >= t.hcFirst(idx) {
			t.Violations++
			acc = 0 // count each crossing once; the row has flipped
		}
		t.cur[idx] = acc
	}
}

// OnRefresh: REF restored a slice of rows in every bank of the rank.
func (t *secTracker) OnRefresh(rank, firstRow, count int) {
	base := rank * t.banksPerRank
	banks := len(t.cur) / t.rows
	for b := base; b < base+t.banksPerRank && b < banks; b++ {
		for i := 0; i < count; i++ {
			t.cur[b*t.rows+(firstRow+i)%t.rows] = 0
		}
	}
}

// OnRowsSwapped: a migration rewrites both rows.
func (t *secTracker) OnRowsSwapped(bank, a, b int) {
	t.cur[bank*t.rows+a] = 0
	t.cur[bank*t.rows+b] = 0
}
