package sim

import (
	"math"

	"svard/internal/disturb"
)

// secTracker implements memctrl.Tracker: it accounts read disturbance
// accrual for every row under the scaled vulnerability model and counts
// security violations (a row crossing its scaled true HCfirst without a
// restore). A correctly configured defense must keep this at zero; the
// defense-free baseline at low thresholds must not (tests assert both).
type secTracker struct {
	model  *disturb.Model
	hcBase [][]float64 // unscaled true HCfirst per (bank, row), from buildModule
	psi    [][]float64 // RowPress susceptibility per (bank, row), from buildModule
	factor float64     // profile scaling factor (§7.1 future-chip scaling)
	cpuGHz float64

	rows         int
	banksPerRank int
	cur          [][]float32 // accrued effective hammers per (bank, row)

	Violations uint64
	acts       uint64
}

func newSecTracker(model *disturb.Model, hcBase, psi [][]float64, factor, cpuGHz float64, banks, banksPerRank int) *secTracker {
	rows := model.Geom.RowsPerBank
	t := &secTracker{
		model:        model,
		hcBase:       hcBase,
		psi:          psi,
		factor:       factor,
		cpuGHz:       cpuGHz,
		rows:         rows,
		banksPerRank: banksPerRank,
		cur:          make([][]float32, banks),
	}
	for b := range t.cur {
		t.cur[b] = make([]float32, rows)
	}
	return t
}

func (t *secTracker) hcFirst(bank, row int) float32 {
	v := float32(t.hcBase[bank][row] * t.factor)
	if v == 0 {
		v = math.SmallestNonzeroFloat32
	}
	return v
}

// OnAct: opening a row restores its own cells.
func (t *secTracker) OnAct(bank, row int, cycle uint64) {
	t.cur[bank][row] = 0
	t.acts++
}

// OnPre: the closing row disturbed its neighbours for its whole on-time
// (RowHammer per activation + RowPress per on-time).
func (t *secTracker) OnPre(bank, row int, onCycles uint64) {
	onNs := float64(onCycles) / t.cpuGHz
	g := t.model.Geom
	for _, d := range [...]int{-2, -1, 1, 2} {
		v := row + d
		if v < 0 || v >= t.rows || !g.SameSubarray(row, v) {
			continue
		}
		w := 0.5
		if d == -2 || d == 2 {
			w *= t.model.P.BlastDecay
		}
		acc := t.cur[bank][v] + float32(w*t.model.PressFactorFromPsi(t.psi[bank][v], onNs))
		if acc >= t.hcFirst(bank, v) {
			t.Violations++
			acc = 0 // count each crossing once; the row has flipped
		}
		t.cur[bank][v] = acc
	}
}

// OnRefresh: REF restored a slice of rows in every bank of the rank.
func (t *secTracker) OnRefresh(rank, firstRow, count int) {
	base := rank * t.banksPerRank
	for b := base; b < base+t.banksPerRank && b < len(t.cur); b++ {
		for i := 0; i < count; i++ {
			t.cur[b][(firstRow+i)%t.rows] = 0
		}
	}
}

// OnRowsSwapped: a migration rewrites both rows.
func (t *secTracker) OnRowsSwapped(bank, a, b int) {
	t.cur[bank][a] = 0
	t.cur[bank][b] = 0
}
