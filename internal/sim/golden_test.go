package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// update regenerates the golden fixtures under testdata/:
//
//	go test ./internal/sim/ -run Golden -update
//
// The fixtures pin the exact cell values of a small Fig. 12/13 sweep, so
// any refactor of the sweep machinery (job enumeration, runner routing,
// metric folding, caching) must prove bit-identical output against the
// recorded seed behavior. Floats are compared exactly: encoding/json
// round-trips float64 losslessly, and the simulator is deterministic by
// contract.
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// Fig12GoldenFile and Fig13GoldenFile record both the swept options and
// the resulting cells, so an out-of-package consumer (the campaign
// engine's resume test) can rebuild the identical sweep from the fixture
// alone, and drift between the fixture and the in-code options is
// detected rather than silently compared.
type Fig12GoldenFile struct {
	Base     Config
	Mixes    [][]string
	NRHs     []float64
	Defenses []string
	Profiles []string
	Cells    []Fig12Cell
}

type Fig13GoldenFile struct {
	Base     Config
	NRH      float64
	Benign   []string
	Profiles []string
	Cells    []Fig13Cell
}

// goldenFig12Options is the fixture sweep: small enough for seconds-scale
// runs, wide enough to cover two defenses, two thresholds, both Svärd
// settings, and a min-max span over two mixes.
func goldenFig12Options() Fig12Options {
	return Fig12Options{
		Base:     tinyBase(),
		Mixes:    [][]string{{"mcf06", "ycsb-a"}, {"lbm06", "tpcc"}},
		NRHs:     []float64{1024, 64},
		Defenses: []string{"para", "rrs"},
		Profiles: []string{"S0"},
	}
}

// goldenFig12HBM2Options is the HBM2-backend fixture sweep: the same
// shape as the DDR4 fixture but narrower (one defense), since its job
// is pinning the multi-channel backend's numerical behavior, not
// re-covering the sweep machinery.
func goldenFig12HBM2Options() Fig12Options {
	base := tinyBase()
	base.Backend = "hbm2"
	return Fig12Options{
		Base:     base,
		Mixes:    [][]string{{"mcf06", "ycsb-a"}, {"lbm06", "tpcc"}},
		NRHs:     []float64{1024, 64},
		Defenses: []string{"para"},
		Profiles: []string{"S0"},
	}
}

func goldenFig13Options() Fig13Options {
	return Fig13Options{
		Base:     tinyBase(),
		NRH:      64,
		Benign:   []string{"mcf06"},
		Profiles: []string{"S0"},
	}
}

func writeGolden(t *testing.T, path string, v any) {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("rewrote %s", path)
}

func readGolden(t *testing.T, path string, v any) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		t.Fatal(err)
	}
}

// compareCells checks got against want field-by-field via reflection, so
// a new cell field is compared the day it is added and every mismatch
// names the exact field.
func compareCells[T any](t *testing.T, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d cells, golden has %d", len(got), len(want))
	}
	for i := range got {
		gv, wv := reflect.ValueOf(got[i]), reflect.ValueOf(want[i])
		for f := 0; f < gv.NumField(); f++ {
			if !reflect.DeepEqual(gv.Field(f).Interface(), wv.Field(f).Interface()) {
				t.Errorf("cell %d (%+v): field %s = %v, golden %v",
					i, want[i], gv.Type().Field(f).Name, gv.Field(f).Interface(), wv.Field(f).Interface())
			}
		}
	}
}

func TestGoldenFig12(t *testing.T) {
	opt := goldenFig12Options()
	cells, err := RunFig12(opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fig12_golden.json")
	if *update {
		writeGolden(t, path, Fig12GoldenFile{
			Base: opt.Base, Mixes: opt.Mixes, NRHs: opt.NRHs,
			Defenses: opt.Defenses, Profiles: opt.Profiles, Cells: cells,
		})
		return
	}
	var golden Fig12GoldenFile
	readGolden(t, path, &golden)
	want := Fig12GoldenFile{
		Base: opt.Base, Mixes: opt.Mixes, NRHs: opt.NRHs,
		Defenses: opt.Defenses, Profiles: opt.Profiles,
	}
	got := golden
	got.Cells = nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden fixture swept different options than the test; regenerate with -update\nfixture: %+v\ntest:    %+v", got, want)
	}
	compareCells(t, cells, golden.Cells)
}

// TestGoldenFig12HBM2 pins the HBM2 backend's cell values, so backend
// or routing changes that alter HBM2 results are caught the same way
// DDR4 regressions are — by fixture, not by eye.
func TestGoldenFig12HBM2(t *testing.T) {
	opt := goldenFig12HBM2Options()
	cells, err := RunFig12(opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fig12_hbm2_golden.json")
	if *update {
		writeGolden(t, path, Fig12GoldenFile{
			Base: opt.Base, Mixes: opt.Mixes, NRHs: opt.NRHs,
			Defenses: opt.Defenses, Profiles: opt.Profiles, Cells: cells,
		})
		return
	}
	var golden Fig12GoldenFile
	readGolden(t, path, &golden)
	want := Fig12GoldenFile{
		Base: opt.Base, Mixes: opt.Mixes, NRHs: opt.NRHs,
		Defenses: opt.Defenses, Profiles: opt.Profiles,
	}
	got := golden
	got.Cells = nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden fixture swept different options than the test; regenerate with -update\nfixture: %+v\ntest:    %+v", got, want)
	}
	compareCells(t, cells, golden.Cells)
}

func TestGoldenFig13(t *testing.T) {
	opt := goldenFig13Options()
	cells, err := RunFig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "fig13_golden.json")
	if *update {
		writeGolden(t, path, Fig13GoldenFile{
			Base: opt.Base, NRH: opt.NRH, Benign: opt.Benign,
			Profiles: opt.Profiles, Cells: cells,
		})
		return
	}
	var golden Fig13GoldenFile
	readGolden(t, path, &golden)
	want := Fig13GoldenFile{Base: opt.Base, NRH: opt.NRH, Benign: opt.Benign, Profiles: opt.Profiles}
	got := golden
	got.Cells = nil
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("golden fixture swept different options than the test; regenerate with -update\nfixture: %+v\ntest:    %+v", got, want)
	}
	compareCells(t, cells, golden.Cells)
}
