package sim

import (
	"reflect"
	"testing"

	"svard/internal/obs"
)

// TestRecordedMatchesUnrecorded is the observability no-interference
// contract: attaching a Recorder must not change a single bit of the
// Result, across defenses and both engine loops.
func TestRecordedMatchesUnrecorded(t *testing.T) {
	for _, defense := range append([]string{"none"}, DefenseNames...) {
		for _, noSkip := range []bool{false, true} {
			cfg := diffBase()
			cfg.Defense = defense
			cfg.Mix = []string{"mcf06", "ycsb-a"}
			cfg.Svard = defense != "none"
			cfg.NoSkip = noSkip
			plain, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rec := &obs.Recorder{}
			recorded, err := RunRecorded(cfg, rec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, recorded) {
				t.Errorf("%s noskip=%v: recorded run diverged:\nplain:    %+v\nrecorded: %+v",
					defense, noSkip, plain, recorded)
			}
			if rec.Counters.Ticks == 0 {
				t.Errorf("%s noskip=%v: recorder saw no ticks", defense, noSkip)
			}
		}
	}
}

// TestRecorderCounterInvariants cross-checks the engine counters
// against the engine's own contract: the naive loop ticks every cycle,
// so naive ticks == skip ticks + skipped cycles; and every jump is
// attributed to exactly one bound source.
func TestRecorderCounterInvariants(t *testing.T) {
	cfg := diffBase()
	cfg.Defense = "para"
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	cfg.Svard = true

	skipRec := &obs.Recorder{}
	if _, err := RunRecorded(cfg, skipRec); err != nil {
		t.Fatal(err)
	}
	naiveCfg := cfg
	naiveCfg.NoSkip = true
	naiveRec := &obs.Recorder{}
	if _, err := RunRecorded(naiveCfg, naiveRec); err != nil {
		t.Fatal(err)
	}

	s, n := skipRec.Counters, naiveRec.Counters
	if s.SkipJumps == 0 || s.SkippedCycles == 0 {
		t.Fatalf("skip engine recorded no jumps: %+v", s.EngineCounters)
	}
	if s.Ticks+s.SkippedCycles != n.Ticks {
		t.Errorf("skip ticks %d + skipped %d != naive ticks %d", s.Ticks, s.SkippedCycles, n.Ticks)
	}
	if n.SkipJumps != 0 || n.SkippedCycles != 0 || n.ActiveTicks != 0 {
		t.Errorf("naive loop must not record skip-engine counters: %+v", n.EngineCounters)
	}
	bounds := s.BoundTracker + s.BoundController + s.BoundCore + s.BoundHorizon
	if bounds != s.SkipJumps {
		t.Errorf("bound attribution %d != jumps %d (tracker %d ctrl %d core %d horizon %d)",
			bounds, s.SkipJumps, s.BoundTracker, s.BoundController, s.BoundCore, s.BoundHorizon)
	}
	// Both loops execute the identical schedule, so the behavioral
	// controller counters (stalls, directives) agree exactly. The scan
	// counters measure simulator effort, not behavior: the naive loop
	// ticks the controller every cycle and legitimately scans far more.
	sb, nb := s.ControllerCounters, n.ControllerCounters
	sb.ScanPasses, sb.ScanEntries = 0, 0
	nb.ScanPasses, nb.ScanEntries = 0, 0
	if !reflect.DeepEqual(sb, nb) {
		t.Errorf("behavioral controller counters diverge between loops:\nskip:  %+v\nnaive: %+v", sb, nb)
	}
	if n.ScanPasses < s.ScanPasses {
		t.Errorf("naive loop scanned less than the skip engine (%d < %d)", n.ScanPasses, s.ScanPasses)
	}
	if s.ScanPasses == 0 || s.ScanEntries < s.ScanPasses {
		t.Errorf("scheduler scan counters implausible: %+v", s.ControllerCounters)
	}
	// para under attack mixes issues neighbor refreshes.
	if s.DirRefreshVictim == 0 {
		t.Errorf("para recorded no refresh-victim directives: %+v", s.ControllerCounters)
	}
}

// TestPooledRecordedDeterministic is the dirty-arena contract for
// telemetry: a pooled recorded run after a truncated, state-dirtying
// run must produce the identical Result AND identical counters as a
// fresh recorded run — the arena reset covers the counter fields too.
func TestPooledRecordedDeterministic(t *testing.T) {
	pool := NewPool()

	dirty := diffBase()
	dirty.Defense = "hydra"
	dirty.Mix = []string{"attack:hydra", "mcf06"}
	dirty.MaxCycles = 30_000
	dirtyRec := &obs.Recorder{}
	if _, err := pool.RunRecorded(dirty, dirtyRec); err != nil {
		t.Fatal(err)
	}
	if dirtyRec.Counters.Ticks == 0 {
		t.Fatal("dirtying run recorded nothing")
	}

	cfg := diffBase()
	cfg.Defense = "rrs"
	cfg.Mix = []string{"lbm06", "ycsb-a"}
	freshRec := &obs.Recorder{}
	fresh, err := RunRecorded(cfg, freshRec)
	if err != nil {
		t.Fatal(err)
	}
	pooledRec := &obs.Recorder{}
	pooled, err := pool.RunRecorded(cfg, pooledRec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("pooled recorded run diverged:\nfresh:  %+v\npooled: %+v", fresh, pooled)
	}
	if !reflect.DeepEqual(freshRec.Counters, pooledRec.Counters) {
		t.Errorf("dirty arena leaked into counters:\nfresh:  %+v\npooled: %+v",
			freshRec.Counters, pooledRec.Counters)
	}

	// A nil recorder through the pooled recorded entry point is the
	// disabled path and must still work.
	nilRes, err := pool.RunRecorded(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, nilRes) {
		t.Error("nil-recorder pooled run diverged")
	}
}

// TestRecorderPhases pins the span timeline: build, warmup, run, and
// fold must all complete, in order.
func TestRecorderPhases(t *testing.T) {
	cfg := diffBase()
	cfg.Defense = "para"
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	rec := &obs.Recorder{}
	if _, err := RunRecorded(cfg, rec); err != nil {
		t.Fatal(err)
	}
	var prevEnd int64 = -1 << 62
	for _, p := range []obs.Phase{obs.PhaseBuild, obs.PhaseWarmup, obs.PhaseRun, obs.PhaseFold} {
		start, end, ok := rec.Span(p)
		if !ok {
			t.Fatalf("phase %s never completed", p)
		}
		if start.UnixNano() < prevEnd {
			t.Errorf("phase %s starts before the previous phase ends", p)
		}
		prevEnd = end.UnixNano()
	}
	if _, _, ok := rec.Span(obs.PhaseWait); ok {
		t.Error("the sim itself must not stamp the wait phase (that is the campaign's)")
	}
}

// TestGoldenSweepBitIdenticalRecorded runs the golden Fig. 12 sweep
// twice — plain, and with a fresh Recorder attached to every cell —
// and requires identical cells. With the golden fixture tests beside
// it, this proves tracing can be left on for fixture-checked runs.
func TestGoldenSweepBitIdenticalRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is seconds-scale")
	}
	opt := goldenFig12Options()
	plain, err := RunFig12(opt)
	if err != nil {
		t.Fatal(err)
	}
	recorded := opt
	recorded.Runner = func(cfg Config) (Result, error) {
		return PooledRunRecorded(cfg, &obs.Recorder{})
	}
	cells, err := RunFig12(recorded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, cells) {
		t.Error("recorded golden sweep diverged from the plain sweep")
	}
}
