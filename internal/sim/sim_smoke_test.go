package sim

import (
	"testing"
	"time"
)

// mix4 returns a small representative mix.
func mix4() []string {
	return []string{"mcf06", "lbm06", "ycsb-a", "tpcc"}
}

func smokeCfg() Config {
	cfg := DefaultConfig()
	cfg.Cores = 4
	cfg.Mix = mix4()
	cfg.InstrPerCore = 60_000
	cfg.WarmupPerCore = 10_000
	return cfg
}

func TestSmokeBaselineRuns(t *testing.T) {
	t0 := time.Now()
	res, err := Run(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: cycles=%d acts=%d reads=%d rowhits=%d ipc=%v elapsed=%v",
		res.Cycles, res.MC.Acts, res.MC.Reads, res.MC.RowHits, res.IPC, time.Since(t0))
	if !res.Finished {
		t.Fatalf("baseline did not finish in %d cycles", res.Cycles)
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 || ipc > 4 {
			t.Errorf("core %d IPC = %v", i, ipc)
		}
	}
	if res.MC.Reads == 0 {
		t.Error("no memory reads reached DRAM")
	}
}

func TestSmokeDefensesRun(t *testing.T) {
	for _, d := range DefenseNames {
		d := d
		t.Run(d, func(t *testing.T) {
			cfg := smokeCfg()
			cfg.Defense = d
			cfg.NRH = 1024
			t0 := time.Now()
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: cycles=%d victims=%d migr=%d meta=%d throttle=%d viol=%d elapsed=%v",
				d, res.Cycles, res.MC.VictimRefreshes, res.MC.Migrations, res.MC.MetaReads,
				res.MC.ThrottleStalls, res.Violations, time.Since(t0))
			if res.Violations != 0 {
				t.Errorf("%s at nRH=1024: %d bitflip violations", d, res.Violations)
			}
		})
	}
}
