// Package sim assembles the full performance-evaluation system of §7.1
// (Table 4): eight trace-driven cores with private LLCs, the FR-FCFS
// memory controller, cycle-level DDR4 ranks, one of the five defenses
// (with or without Svärd), and a security tracker that accounts read
// disturbance under the scaled vulnerability profile.
package sim

import (
	"fmt"
	"strings"
	"sync"

	"svard/internal/core"
	"svard/internal/cpu"
	"svard/internal/disturb"
	"svard/internal/dram"
	"svard/internal/mem"
	"svard/internal/memctrl"
	"svard/internal/mitigation"
	"svard/internal/mitigation/aqua"
	"svard/internal/mitigation/blockhammer"
	"svard/internal/mitigation/hydra"
	"svard/internal/mitigation/para"
	"svard/internal/mitigation/rrs"
	"svard/internal/profile"
	"svard/internal/trace"
)

// DefenseNames lists the evaluated defenses in Fig. 12's column order.
var DefenseNames = []string{"aqua", "blockhammer", "hydra", "para", "rrs"}

// Config describes one simulation.
type Config struct {
	CPUGHz float64
	Cores  int
	Core   cpu.Config

	ModuleLabel string  // vulnerability profile source (Table 5 label)
	RowsPerBank int     // scaled bank size (Table 4 uses 128K; see EXPERIMENTS.md)
	CellsPerRow int     // scaled row width for the vulnerability model
	NRH         float64 // target worst-case HCfirst after scaling (§7.1)

	Defense string // "none", "aqua", "blockhammer", "hydra", "para", "rrs"
	Svard   bool   // per-row thresholds instead of the worst case

	Mix           []string // one workload (or "attack:hydra"/"attack:rrs") per core
	InstrPerCore  uint64
	WarmupPerCore uint64
	MaxCycles     uint64
	Seed          uint64

	// WindowScale divides the 64 ms refresh window so that scaled-down
	// runs span a representative number of defense counting windows; the
	// acts-per-window to threshold ratio is what shapes every defense's
	// behaviour (see EXPERIMENTS.md, "time scaling"). 1 = unscaled.
	WindowScale float64

	// NoSkip forces the per-cycle reference loop instead of the
	// event-driven cycle-skipping engine. Results are bit-identical
	// either way — the differential tests enforce it — so the reference
	// loop exists only for those tests and for debugging the engine
	// itself (see EXPERIMENTS.md, "event-driven engine").
	NoSkip bool
}

// DefaultConfig returns the Table 4 system with scaled-down workload
// sizes (see EXPERIMENTS.md for the scaling rationale).
func DefaultConfig() Config {
	return Config{
		CPUGHz:        3.2,
		Cores:         8,
		Core:          cpu.DefaultConfig(),
		ModuleLabel:   "S0",
		RowsPerBank:   8192,
		CellsPerRow:   4096,
		NRH:           1024,
		Defense:       "none",
		InstrPerCore:  200_000,
		WarmupPerCore: 40_000,
		MaxCycles:     80_000_000,
		Seed:          1,
		WindowScale:   64,
	}
}

// Result summarizes one simulation.
type Result struct {
	IPC        []float64
	Cycles     uint64
	MC         memctrl.Stats
	Violations uint64
	Finished   bool
}

// moduleCache memoizes calibrated modules and captured profiles, which
// are reused across the hundreds of runs of an experiment sweep. The
// cache is singleflight-style: each key carries its own sync.Once, so
// concurrent workers building *distinct* modules calibrate in parallel,
// while duplicate requests for the same key coalesce onto one build (a
// single global lock here would serialize the entire parallel sweep
// behind the expensive BuildScaled+Capture path).
var moduleCache sync.Map // key string -> *moduleEntry

type moduleEntry struct {
	once sync.Once
	mod  *profile.Module
	prof *profile.VulnProfile
	// Per-row tables the security tracker reads at high rate, derived
	// once from the disturbance model (they cost an exp/log chain per
	// row and depend only on the module): the unscaled true HCfirst and
	// the RowPress susceptibility psi, flattened to [bank*rows+row].
	// Deliberate trade: eager and process-lifetime (16 B/row — 4 MB per
	// module at the default 8K rows, ~67 MB at the paper's 128K) in
	// exchange for hundreds of sweep runs skipping the per-run,
	// per-touched-row rederivation.
	hcBase []float64
	psi    []float64
	err    error
}

func buildModule(label string, rows, cells, banks int, seed uint64) (*moduleEntry, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", label, rows, cells, banks, seed)
	v, _ := moduleCache.LoadOrStore(key, &moduleEntry{})
	e := v.(*moduleEntry)
	e.once.Do(func() {
		spec, ok := profile.SpecByLabel(label)
		if !ok {
			e.err = fmt.Errorf("sim: unknown module %q", label)
			return
		}
		m, err := profile.BuildScaled(spec, seed, rows, cells)
		if err != nil {
			e.err = err
			return
		}
		// Profile every bank the simulated system exposes so Svärd's
		// per-bank lookups never fall back across banks (security).
		all := make([]int, banks)
		for i := range all {
			all[i] = i
		}
		e.mod = m
		e.prof = profile.Capture(m.NewModel(), label, all)
		model := disturb.NewModel(m.Params, m.Geom)
		e.hcBase = make([]float64, banks*rows)
		e.psi = make([]float64, banks*rows)
		for b := 0; b < banks; b++ {
			for r := 0; r < rows; r++ {
				e.hcBase[b*rows+r] = model.HCFirst(b, r)
				e.psi[b*rows+r] = model.PressPsi(b, r)
			}
		}
	})
	return e, e.err
}

// buildDefense constructs the configured defense over thresholds th.
// When prev holds a previous instance of the same defense type (pooled
// reuse between sweep cells), it is reinitialized in place instead of
// reallocated — every defense's Reset restores the exact state its
// constructor produces, so results are bit-identical either way.
func buildDefense(name string, si mitigation.SystemInfo, th core.Thresholds, cpuGHz float64, prev mitigation.Defense) (mitigation.Defense, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return mitigation.Nop{}, nil
	case "para":
		if d, ok := prev.(*para.Defense); ok {
			d.Reset(si, th)
			return d, nil
		}
		return para.New(si, th), nil
	case "blockhammer":
		if d, ok := prev.(*blockhammer.Defense); ok {
			d.Reset(si, th)
			return d, nil
		}
		return blockhammer.New(si, th), nil
	case "hydra":
		if d, ok := prev.(*hydra.Defense); ok {
			d.Reset(si, th)
			return d, nil
		}
		return hydra.New(si, th), nil
	case "rrs":
		if d, ok := prev.(*rrs.Defense); ok {
			d.Reset(si, th, cpuGHz)
			return d, nil
		}
		return rrs.New(si, th, cpuGHz), nil
	case "aqua":
		if d, ok := prev.(*aqua.Defense); ok {
			d.Reset(si, th, cpuGHz)
			return d, nil
		}
		return aqua.New(si, th, cpuGHz), nil
	default:
		return nil, fmt.Errorf("sim: unknown defense %q", name)
	}
}

// port adapts the controller to the core's MemPort. Requests flow
// through the controller's internal request pool, so the per-access
// path allocates nothing.
type port struct {
	mc   *memctrl.Controller
	core int
}

func (p port) Read(addr uint64, done func(uint64), cycle uint64) bool {
	return p.mc.Read(addr, p.core, done, cycle)
}

func (p port) Write(addr uint64, cycle uint64) bool {
	return p.mc.Write(addr, p.core, cycle)
}

// generatorFor builds the trace generator for one core slot; uncached
// marks clflush-style attacker cores whose accesses bypass the LLC.
func (c *Config) generatorFor(mcCfg memctrl.Config, slot int, name string) (gen cpu.Generator, uncached bool, err error) {
	base := uint64(slot) << 34
	// One MC row spans this many bytes of the MOP-interleaved address
	// space before the row index increments within a bank.
	rowSpan := uint64(mcCfg.MOPWidth) * 64 * uint64(mcCfg.BankGroups*mcCfg.BanksPerGroup*mcCfg.Ranks) *
		uint64(mcCfg.RowBytes/64/mcCfg.MOPWidth)
	switch name {
	case "attack:hydra":
		count := uint64(2 * hydra.RCCEntries)
		if max := uint64(mcCfg.RowsPerBank / 2); count > max {
			count = max
		}
		return &trace.RowCycler{Base: base, Stride: rowSpan, Count: count}, true, nil
	case "attack:rrs":
		return &trace.PairHammer{A: base, B: base + 4*rowSpan}, true, nil
	default:
		w, ok := trace.ByName(name)
		if !ok {
			return nil, false, fmt.Errorf("sim: unknown workload %q", name)
		}
		return trace.NewSynth(w, base, c.Seed+uint64(slot)*977), false, nil
	}
}

// machine is one assembled simulation — the controller, the cores, and
// the security tracker — ready to be driven to completion by either
// engine loop. Tests reach into it to assert per-core invariants the
// folded Result cannot express (exact finish cycles, measurement-region
// accounting).
type machine struct {
	mc      *memctrl.Controller
	cores   []*cpu.Core
	tracker *secTracker
	ticks   uint64 // simulated cycles actually ticked by the driver loop
}

// newMachine builds the simulated system of cfg from fresh allocations.
func newMachine(cfg Config) (*machine, error) { return buildMachine(cfg, nil) }

// poolState is one worker's reusable simulation arena: the controller
// (with the DRAM system, queues, and per-row tables inside), the cores
// (windows, LLCs, MSHR records), the security tracker's accrual table,
// and one instance of each defense type seen so far. buildMachine
// Reset()s each piece to its exactly-fresh state instead of
// reallocating, so a sweep executes cells allocation-flat after its
// first few cells warm the arena.
type poolState struct {
	mc       *memctrl.Controller
	cores    []*cpu.Core
	tracker  *secTracker
	defenses map[string]mitigation.Defense
}

// buildMachine builds the simulated system of cfg, reusing st's
// allocations when non-nil. The pooled and fresh paths are bit-identical
// by construction — every component's Reset restores the state its
// constructor produces — and the pooled differential tests enforce it.
func buildMachine(cfg Config, st *poolState) (*machine, error) {
	if cfg.Cores <= 0 || len(cfg.Mix) != cfg.Cores {
		return nil, fmt.Errorf("sim: mix has %d entries for %d cores", len(cfg.Mix), cfg.Cores)
	}
	mcCfg := memctrl.DefaultConfig(cfg.RowsPerBank)
	mcCfg.CPUGHz = cfg.CPUGHz
	banks := mcCfg.Ranks * mcCfg.BankGroups * mcCfg.BanksPerGroup

	entry, err := buildModule(cfg.ModuleLabel, cfg.RowsPerBank, cfg.CellsPerRow, banks, cfg.Seed)
	if err != nil {
		return nil, err
	}
	mod, prof := entry.mod, entry.prof
	scaled := prof.ScaledTo(cfg.NRH)

	var th core.Thresholds
	if cfg.Svard {
		sv, err := core.New(scaled)
		if err != nil {
			return nil, err
		}
		th = sv
	} else {
		th = core.Fixed(cfg.NRH)
	}

	timing := mem.CyclesFrom(dram.DDR4Timing(mod.Spec.FreqMTs), cfg.CPUGHz)
	if cfg.WindowScale > 1 {
		// Shrink the refresh window (and with it every defense's
		// counting window and the per-REF restore slice) so short runs
		// cover representative window dynamics.
		timing.REFW = uint64(float64(timing.REFW) / cfg.WindowScale)
		if timing.REFW < 4*timing.REFI {
			timing.REFW = 4 * timing.REFI
		}
	}
	si := mitigation.SystemInfo{
		Banks:       banks,
		RowsPerBank: cfg.RowsPerBank,
		REFWCycles:  timing.REFW,
		Seed:        cfg.Seed,
	}
	defName := strings.ToLower(cfg.Defense)
	var prev mitigation.Defense
	if st != nil {
		prev = st.defenses[defName]
	}
	def, err := buildDefense(cfg.Defense, si, th, cfg.CPUGHz, prev)
	if err != nil {
		return nil, err
	}
	if st != nil {
		st.defenses[defName] = def
	}

	model := disturb.NewModel(mod.Params, mod.Geom)
	var tracker *secTracker
	var mc *memctrl.Controller
	if st != nil && st.tracker != nil {
		tracker = st.tracker
		tracker.reset(model, entry.hcBase, entry.psi, scaled.Factor, cfg.CPUGHz, banks, mcCfg.BankGroups*mcCfg.BanksPerGroup)
	} else {
		tracker = newSecTracker(model, entry.hcBase, entry.psi, scaled.Factor, cfg.CPUGHz, banks, mcCfg.BankGroups*mcCfg.BanksPerGroup)
	}
	if st != nil && st.mc != nil {
		mc = st.mc
		mc.Reset(mcCfg, timing, def, tracker)
	} else {
		mc = memctrl.New(mcCfg, timing, def, tracker)
	}
	if st != nil {
		st.tracker = tracker
		st.mc = mc
	}

	var cores []*cpu.Core
	if st != nil && cap(st.cores) >= cfg.Cores {
		cores = st.cores[:cfg.Cores]
	} else {
		cores = make([]*cpu.Core, cfg.Cores)
		if st != nil {
			copy(cores, st.cores)
		}
	}
	for i := range cores {
		gen, uncached, err := cfg.generatorFor(mcCfg, i, cfg.Mix[i])
		if err != nil {
			return nil, err
		}
		coreCfg := cfg.Core
		coreCfg.Uncached = uncached
		if cores[i] == nil {
			cores[i] = cpu.New(i, coreCfg, gen, port{mc: mc, core: i})
		} else {
			cores[i].Reset(i, coreCfg, gen, port{mc: mc, core: i})
		}
		cores[i].WarmupTarget = cfg.WarmupPerCore
		cores[i].MeasureTarget = cfg.InstrPerCore
	}
	if st != nil {
		st.cores = cores
	}
	return &machine{mc: mc, cores: cores, tracker: tracker}, nil
}

// runNaive is the per-cycle reference loop: tick the controller and
// every core on every CPU cycle. It ends at the exact cycle the last
// core finishes (no polling granularity) and returns that cycle with
// finished=true, or (maxCycles, false) on a truncated run.
func (m *machine) runNaive(maxCycles uint64) (uint64, bool) {
	remaining := len(m.cores)
	for cycle := uint64(0); cycle < maxCycles; cycle++ {
		m.ticks++
		m.mc.TickFull(cycle)
		for _, c := range m.cores {
			was := c.Finished()
			c.Tick(cycle)
			if !was && c.Finished() {
				remaining--
			}
		}
		if remaining == 0 {
			return cycle, true
		}
	}
	return maxCycles, false
}

// runSkip is the event-driven engine: it performs exactly the ticks of
// runNaive that do something and jumps over the rest. After a cycle in
// which neither the controller nor any core made progress, every ready
// time in the system is frozen, so the next cycle anything can happen
// is the minimum of the components' NextEvent bounds — the driver
// advances straight to it. Cycles where any component was active
// advance by one, like the reference loop, because activity (an issued
// command, a retired instruction, an enqueue) can enable any other
// component on the very next cycle. The two loops are bit-identical by
// construction; the differential tests in engine_diff_test.go enforce
// it across every defense, attack mix, and Svärd setting.
func (m *machine) runSkip(maxCycles uint64) (uint64, bool) {
	remaining := len(m.cores)
	cycle := uint64(0)
	for cycle < maxCycles {
		m.ticks++
		active := m.mc.Tick(cycle)
		for _, c := range m.cores {
			was := c.Finished()
			if c.Tick(cycle) {
				active = true
			}
			if !was && c.Finished() {
				remaining--
			}
		}
		if remaining == 0 {
			return cycle, true
		}
		if active {
			cycle++
			continue
		}
		next := m.mc.NextEvent(cycle)
		for _, c := range m.cores {
			if n := c.NextEvent(cycle); n < next {
				next = n
			}
		}
		if next <= cycle {
			next = cycle + 1
		}
		if next > maxCycles {
			next = maxCycles // quiescent to the horizon: truncate
		}
		cycle = next
	}
	return maxCycles, false
}

// result folds the machine's final state into a Result. endCycle is the
// cycle the run stopped at: the last core's finish cycle, or MaxCycles
// when truncated.
func (m *machine) result(cfg Config, endCycle uint64, finished bool) Result {
	res := Result{
		IPC:        make([]float64, len(m.cores)),
		Cycles:     endCycle,
		MC:         m.mc.Stats,
		Violations: m.tracker.Violations,
		Finished:   finished,
	}
	for i, c := range m.cores {
		switch {
		case c.Finished():
			res.IPC[i] = c.IPC()
		case c.Started() && endCycle > c.StartCycle():
			// Truncated run: report measurement-region progress only,
			// consistent with Core.IPC — warmup instructions and warmup
			// cycles are excluded. A core still in warmup reports 0.
			res.IPC[i] = float64(c.Retired-c.WarmupTarget) / float64(endCycle-c.StartCycle())
		}
	}
	return res
}

// run drives a built machine to completion and folds the Result.
func (m *machine) run(cfg Config) Result {
	var cycle uint64
	var finished bool
	if cfg.NoSkip {
		cycle, finished = m.runNaive(cfg.MaxCycles)
	} else {
		cycle, finished = m.runSkip(cfg.MaxCycles)
	}
	return m.result(cfg, cycle, finished)
}

// Run executes one simulation from fresh allocations.
func Run(cfg Config) (Result, error) {
	m, err := newMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.run(cfg), nil
}

// Pool executes simulations on reusable state arenas. A paper-scale
// sweep rebuilds its multi-megabyte simulator (LLC arrays, tracker
// accrual tables, defense counters, controller queues) hundreds of
// times; a Pool Reset()s one arena per worker instead, so cells execute
// allocation-flat once the arenas are warm. Results are bit-identical
// to Run for every configuration — each component's Reset restores the
// exact state its constructor produces, and the pooled differential
// tests (pool_test.go) enforce it, including reuse across different
// geometries and after truncated runs.
//
// A Pool is safe for concurrent use: arenas are handed out through a
// sync.Pool, so concurrent Runs never share one (idle arenas remain
// collectable under memory pressure).
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty pool; arenas are created on demand.
func NewPool() *Pool { return &Pool{} }

// Run executes one simulation on a pooled arena, bit-identical to
// sim.Run(cfg).
func (p *Pool) Run(cfg Config) (Result, error) {
	st, _ := p.p.Get().(*poolState)
	if st == nil {
		st = &poolState{defenses: make(map[string]mitigation.Defense)}
	}
	m, err := buildMachine(cfg, st)
	if err != nil {
		// The arena stays reusable: every Reset fully reinitializes,
		// regardless of how far a failed build got.
		p.p.Put(st)
		return Result{}, err
	}
	res := m.run(cfg)
	p.p.Put(st)
	return res, nil
}

// defaultPool backs PooledRun: one process-wide arena pool shared by
// every sweep, so consecutive sweeps (and benchmark iterations) stay
// warm.
var defaultPool = NewPool()

// PooledRun is Run on the process-wide state pool — the executor the
// sweep paths (RunFig12/RunFig13, the campaign engine, svard-perf's
// cache fallback) use. Bit-identical to Run.
func PooledRun(cfg Config) (Result, error) { return defaultPool.Run(cfg) }
