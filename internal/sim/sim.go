// Package sim assembles the full performance-evaluation system of §7.1
// (Table 4): eight trace-driven cores with private LLCs, one FR-FCFS
// memory controller per (pseudo) channel of the selected backend
// (DDR4-3200 by default, HBM2 optionally), cycle-level DRAM ranks, one
// of the five defenses (with or without Svärd), and a security tracker
// that accounts read disturbance under the scaled vulnerability
// profile.
package sim

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"svard/internal/core"
	"svard/internal/cpu"
	"svard/internal/disturb"
	"svard/internal/dram"
	"svard/internal/mem"
	"svard/internal/memctrl"
	"svard/internal/mitigation"
	"svard/internal/mitigation/aqua"
	"svard/internal/mitigation/blockhammer"
	"svard/internal/mitigation/hydra"
	"svard/internal/mitigation/para"
	"svard/internal/mitigation/rrs"
	"svard/internal/obs"
	"svard/internal/population"
	"svard/internal/profile"
	"svard/internal/temporal"
	"svard/internal/trace"
)

// DefenseNames lists the evaluated defenses in Fig. 12's column order.
var DefenseNames = []string{"aqua", "blockhammer", "hydra", "para", "rrs"}

// Config describes one simulation.
type Config struct {
	CPUGHz float64
	Cores  int
	Core   cpu.Config

	// Backend selects the memory-system preset (dram.BackendByName):
	// "ddr4-3200" — the paper's Table 4 system — or "hbm2". The empty
	// string aliases ddr4-3200, so pre-backend configs, fixtures, and
	// fingerprints keep their exact meaning.
	Backend string

	ModuleLabel string  // vulnerability profile source (Table 5 label)
	RowsPerBank int     // scaled bank size (Table 4 uses 128K; see EXPERIMENTS.md)
	CellsPerRow int     // scaled row width for the vulnerability model
	NRH         float64 // target worst-case HCfirst after scaling (§7.1)

	Defense string // "none", "aqua", "blockhammer", "hydra", "para", "rrs"
	Svard   bool   // per-row thresholds instead of the worst case

	Mix           []string // one workload (or "attack:hydra"/"attack:rrs") per core
	InstrPerCore  uint64
	WarmupPerCore uint64
	MaxCycles     uint64
	Seed          uint64

	// WindowScale divides the 64 ms refresh window so that scaled-down
	// runs span a representative number of defense counting windows; the
	// acts-per-window to threshold ratio is what shapes every defense's
	// behaviour (see EXPERIMENTS.md, "time scaling"). 1 = unscaled.
	WindowScale float64

	// NoSkip forces the per-cycle reference loop instead of the
	// event-driven cycle-skipping engine. Results are bit-identical
	// either way — the differential tests enforce it — so the reference
	// loop exists only for those tests and for debugging the engine
	// itself (see EXPERIMENTS.md, "event-driven engine").
	NoSkip bool

	// Temporal, when non-nil, attaches a temporal-variation process
	// (internal/temporal): the security tracker's ground-truth
	// thresholds drift per epoch while every defense keeps reading the
	// frozen calibration view (views.go). nil means static truth — and
	// is deliberately invisible to cache keys and campaign fingerprints,
	// so every pre-temporal configuration keeps its exact identity.
	Temporal *temporal.Spec `json:",omitempty"`
}

// DefaultConfig returns the Table 4 system with scaled-down workload
// sizes (see EXPERIMENTS.md for the scaling rationale).
func DefaultConfig() Config {
	return Config{
		CPUGHz:        3.2,
		Cores:         8,
		Core:          cpu.DefaultConfig(),
		ModuleLabel:   "S0",
		RowsPerBank:   8192,
		CellsPerRow:   4096,
		NRH:           1024,
		Defense:       "none",
		InstrPerCore:  200_000,
		WarmupPerCore: 40_000,
		MaxCycles:     80_000_000,
		Seed:          1,
		WindowScale:   64,
	}
}

// Validate checks the configuration's named presets — the memory
// backend and the temporal process — without building anything. The
// campaign spec validator and the server's submit path call it so an
// invalid backend or temporal spec is a descriptive error (HTTP 400),
// never a panic inside a worker.
func (c *Config) Validate() error {
	b, err := dram.BackendByName(c.Backend)
	if err != nil {
		return err
	}
	if err := b.Validate(); err != nil {
		return err
	}
	if c.Temporal != nil {
		if err := c.Temporal.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result summarizes one simulation.
type Result struct {
	IPC        []float64
	Cycles     uint64
	MC         memctrl.Stats
	Violations uint64
	Finished   bool
}

// moduleCache memoizes calibrated modules and captured profiles, which
// are reused across the hundreds of runs of an experiment sweep. The
// cache is singleflight-style: each key carries its own sync.Once, so
// concurrent workers building *distinct* modules calibrate in parallel,
// while duplicate requests for the same key coalesce onto one build (a
// single global lock here would serialize the entire parallel sweep
// behind the expensive BuildScaled+Capture path).
var moduleCache sync.Map // key string -> *moduleEntry

type moduleEntry struct {
	once sync.Once
	mod  *profile.Module
	prof *profile.VulnProfile
	// Per-row tables the security tracker reads at high rate, derived
	// once from the disturbance model (they cost an exp/log chain per
	// row and depend only on the module): the unscaled true HCfirst and
	// the RowPress susceptibility psi, flattened to [bank*rows+row].
	// Deliberate trade: eager and process-lifetime (16 B/row — 4 MB per
	// module at the default 8K rows, ~67 MB at the paper's 128K) in
	// exchange for hundreds of sweep runs skipping the per-run,
	// per-touched-row rederivation.
	hcBase []float64
	psi    []float64
	err    error
}

func buildModule(label string, rows, cells, banks int, seed uint64) (*moduleEntry, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", label, rows, cells, banks, seed)
	v, _ := moduleCache.LoadOrStore(key, &moduleEntry{})
	e := v.(*moduleEntry)
	e.once.Do(func() {
		spec, ok := profile.SpecByLabel(label)
		if !ok {
			// Synthetic population modules ("pop:<seed>:<index>") resolve
			// through the Monte Carlo sampler; any other unknown label is
			// an error.
			spec, ok = population.SpecForLabel(label)
		}
		if !ok {
			e.err = fmt.Errorf("sim: unknown module %q", label)
			return
		}
		m, err := profile.BuildScaled(spec, seed, rows, cells)
		if err != nil {
			e.err = err
			return
		}
		// Profile every bank the simulated system exposes so Svärd's
		// per-bank lookups never fall back across banks (security).
		all := make([]int, banks)
		for i := range all {
			all[i] = i
		}
		e.mod = m
		e.prof = profile.Capture(m.NewModel(), label, all)
		model := disturb.NewModel(m.Params, m.Geom)
		e.hcBase = make([]float64, banks*rows)
		e.psi = make([]float64, banks*rows)
		for b := 0; b < banks; b++ {
			for r := 0; r < rows; r++ {
				e.hcBase[b*rows+r] = model.HCFirst(b, r)
				e.psi[b*rows+r] = model.PressPsi(b, r)
			}
		}
	})
	return e, e.err
}

// dropCachedModule evicts every module-cache entry for the given label.
// The per-module tables a sweep pins are deliberately process-lifetime
// (megabytes per module — see moduleEntry), which is exactly wrong for a
// Monte Carlo population: 10K synthetic chips would pin tens of
// gigabytes that are each consulted for one module's cells and never
// again. The population sweep evicts each chunk's modules once their
// cells are folded. Eviction is only a cache hint — an in-flight run
// holding the entry pointer keeps using it, and a later request simply
// rebuilds — so it is safe even if a concurrent sweep shares a label.
func dropCachedModule(label string) {
	prefix := label + "/"
	moduleCache.Range(func(k, _ any) bool {
		if strings.HasPrefix(k.(string), prefix) {
			moduleCache.Delete(k)
		}
		return true
	})
}

// buildDefense constructs the configured defense over thresholds th.
// When prev holds a previous instance of the same defense type (pooled
// reuse between sweep cells), it is reinitialized in place instead of
// reallocated — every defense's Reset restores the exact state its
// constructor produces, so results are bit-identical either way.
func buildDefense(name string, si mitigation.SystemInfo, th core.Thresholds, cpuGHz float64, prev mitigation.Defense) (mitigation.Defense, error) {
	switch strings.ToLower(name) {
	case "", "none":
		return mitigation.Nop{}, nil
	case "para":
		if d, ok := prev.(*para.Defense); ok {
			d.Reset(si, th)
			return d, nil
		}
		return para.New(si, th), nil
	case "blockhammer":
		if d, ok := prev.(*blockhammer.Defense); ok {
			d.Reset(si, th)
			return d, nil
		}
		return blockhammer.New(si, th), nil
	case "hydra":
		if d, ok := prev.(*hydra.Defense); ok {
			d.Reset(si, th)
			return d, nil
		}
		return hydra.New(si, th), nil
	case "rrs":
		if d, ok := prev.(*rrs.Defense); ok {
			d.Reset(si, th, cpuGHz)
			return d, nil
		}
		return rrs.New(si, th, cpuGHz), nil
	case "aqua":
		if d, ok := prev.(*aqua.Defense); ok {
			d.Reset(si, th, cpuGHz)
			return d, nil
		}
		return aqua.New(si, th, cpuGHz), nil
	default:
		return nil, fmt.Errorf("sim: unknown defense %q", name)
	}
}

// port adapts a single controller to the core's MemPort — the
// single-channel fast path (the DDR4 preset), with no routing between
// the core and the controller's request pool. Requests flow through the
// controller's internal request pool, so the per-access path allocates
// nothing.
type port struct {
	mc   *memctrl.Controller
	core int
}

func (p port) Read(addr uint64, done func(uint64), cycle uint64) bool {
	return p.mc.Read(addr, p.core, done, cycle)
}

func (p port) Write(addr uint64, cycle uint64) bool {
	return p.mc.Write(addr, p.core, cycle)
}

// chanPort is port for a multi-channel machine: it routes each access
// to its (pseudo) channel's controller with the channel bits folded out
// of the address.
type chanPort struct {
	m    *machine
	core int
}

func (p chanPort) Read(addr uint64, done func(uint64), cycle uint64) bool {
	ch, a := p.m.route(addr)
	return p.m.mcs[ch].Read(a, p.core, done, cycle)
}

func (p chanPort) Write(addr uint64, cycle uint64) bool {
	ch, a := p.m.route(addr)
	return p.m.mcs[ch].Write(a, p.core, cycle)
}

// generatorFor builds the trace generator for one core slot; uncached
// marks clflush-style attacker cores whose accesses bypass the LLC.
// nchan is the system's (pseudo) channel count — it widens the stride
// between consecutive rows of one bank in the interleaved address
// space.
func (c *Config) generatorFor(mcCfg memctrl.Config, nchan, slot int, name string) (gen cpu.Generator, uncached bool, err error) {
	base := uint64(slot) << 34
	// One MC row spans this many bytes of the MOP-interleaved address
	// space before the row index increments within a bank.
	rowSpan := uint64(mcCfg.MOPWidth) * 64 * uint64(mcCfg.BankGroups*mcCfg.BanksPerGroup*mcCfg.Ranks) * uint64(nchan) *
		uint64(mcCfg.RowBytes/64/mcCfg.MOPWidth)
	switch name {
	case "attack:hydra":
		count := uint64(2 * hydra.RCCEntries)
		if max := uint64(mcCfg.RowsPerBank / 2); count > max {
			count = max
		}
		return &trace.RowCycler{Base: base, Stride: rowSpan, Count: count}, true, nil
	case "attack:rrs":
		return &trace.PairHammer{A: base, B: base + 4*rowSpan}, true, nil
	default:
		w, ok := trace.ByName(name)
		if !ok {
			return nil, false, fmt.Errorf("sim: unknown workload %q", name)
		}
		return trace.NewSynth(w, base, c.Seed+uint64(slot)*977), false, nil
	}
}

// machine is one assembled simulation — the per-channel controllers,
// the cores, and the security tracker — ready to be driven to
// completion by either engine loop. Tests reach into it to assert
// per-core invariants the folded Result cannot express (exact finish
// cycles, measurement-region accounting).
type machine struct {
	mcs     []*memctrl.Controller // one per (pseudo) channel
	cores   []*cpu.Core
	tracker *secTracker
	ticks   uint64 // simulated cycles actually ticked by the driver loop

	// Flight-recorder state. The engine counters are plain fields on the
	// per-run machine (zeroed by construction), incremented only on the
	// idle-jump path, so they cost the hot loop nothing measurable. rec
	// is the attached recorder — nil on the unrecorded paths, where the
	// only residue is one predictable nil check per ticked cycle.
	obs       obs.EngineCounters
	rec       *obs.Recorder
	measuring bool // every core has entered its measurement region

	// Channel routing fields (unused when nchan == 1 — the DDR4 preset
	// binds cores straight to mcs[0] through port).
	nchan      uint64
	mopWidth   uint64
	chanStride uint64 // banks per channel: BankGroups*BanksPerGroup*Ranks
}

// route maps a flat physical address to its (pseudo) channel and the
// channel-local address that channel's controller decodes. The channel
// bits sit between the rank and column-high fields of the MOP mapping,
// so consecutive MOP groups interleave across bank groups, banks, and
// ranks within a channel before spilling to the next channel.
func (m *machine) route(addr uint64) (int, uint64) {
	low := addr & 63
	blk := addr >> 6
	mop := blk % m.mopWidth
	q := blk / m.mopWidth
	pre := q % m.chanStride
	q /= m.chanStride
	ch := int(q % m.nchan)
	q /= m.nchan
	blk = (q*m.chanStride+pre)*m.mopWidth + mop
	return ch, blk<<6 | low
}

// chanTracker adapts a channel-local controller to the system-wide
// security tracker by offsetting bank and rank indices. Channel 0 skips
// the adapter and reports straight into the tracker.
type chanTracker struct {
	t       *secTracker
	bankOff int
	rankOff int
}

func (ct chanTracker) OnAct(bank, row int, cycle uint64) { ct.t.OnAct(ct.bankOff+bank, row, cycle) }
func (ct chanTracker) OnPre(bank, row int, on uint64)    { ct.t.OnPre(ct.bankOff+bank, row, on) }
func (ct chanTracker) OnRefresh(rank, firstRow, count int) {
	ct.t.OnRefresh(ct.rankOff+rank, firstRow, count)
}
func (ct chanTracker) OnRowsSwapped(bank, a, b int) { ct.t.OnRowsSwapped(ct.bankOff+bank, a, b) }

// chanThresholds shifts a channel-local bank index into the system-wide
// per-bank threshold tables (Svärd profiles every bank of the system).
// Channel 0 queries the thresholds directly.
type chanThresholds struct {
	th  core.Thresholds
	off int
}

func (ct chanThresholds) ActivationBudget(bank, row int) float64 {
	return ct.th.ActivationBudget(ct.off+bank, row)
}

func (ct chanThresholds) MinBudget() float64 { return ct.th.MinBudget() }

// newMachine builds the simulated system of cfg from fresh allocations.
func newMachine(cfg Config) (*machine, error) { return buildMachine(cfg, nil) }

// poolState is one worker's reusable simulation arena: the per-channel
// controllers (with the DRAM systems, queues, and per-row tables
// inside), the cores (windows, LLCs, MSHR records), the security
// tracker's accrual table, and one instance of each defense type seen
// so far (keyed per channel — defenses hold per-bank state sized to
// their channel). buildMachine Reset()s each piece to its exactly-fresh
// state instead of reallocating, so a sweep executes cells
// allocation-flat after its first few cells warm the arena — including
// sweeps that alternate backends, since every Reset resizes to the
// requested geometry.
type poolState struct {
	mcs      []*memctrl.Controller
	cores    []*cpu.Core
	tracker  *secTracker
	defenses map[string]mitigation.Defense
}

// buildMachine builds the simulated system of cfg, reusing st's
// allocations when non-nil. The pooled and fresh paths are bit-identical
// by construction — every component's Reset restores the state its
// constructor produces — and the pooled differential tests enforce it.
func buildMachine(cfg Config, st *poolState) (*machine, error) {
	if cfg.Cores <= 0 || len(cfg.Mix) != cfg.Cores {
		return nil, fmt.Errorf("sim: mix has %d entries for %d cores", len(cfg.Mix), cfg.Cores)
	}
	backend, err := dram.BackendByName(cfg.Backend)
	if err != nil {
		return nil, err
	}
	if err := backend.Validate(); err != nil {
		return nil, err
	}
	nchan := backend.Geom.TotalChannels()
	mcCfg := memctrl.ConfigFor(backend.Geom, cfg.RowsPerBank, cfg.CPUGHz)
	banksPerChan := mcCfg.Ranks * mcCfg.BankGroups * mcCfg.BanksPerGroup
	banks := nchan * banksPerChan

	entry, err := buildModule(cfg.ModuleLabel, cfg.RowsPerBank, cfg.CellsPerRow, banks, cfg.Seed)
	if err != nil {
		return nil, err
	}
	mod, prof := entry.mod, entry.prof
	scaled := prof.ScaledTo(cfg.NRH)

	var th core.Thresholds
	if cfg.Svard {
		sv, err := core.New(scaled)
		if err != nil {
			return nil, err
		}
		th = sv
	} else {
		th = core.Fixed(cfg.NRH)
	}

	timing := mem.CyclesFrom(backend.Timing(mod.Spec.FreqMTs), cfg.CPUGHz)
	if cfg.WindowScale > 1 {
		// Shrink the refresh window (and with it every defense's
		// counting window and the per-REF restore slice) so short runs
		// cover representative window dynamics.
		timing.REFW = uint64(float64(timing.REFW) / cfg.WindowScale)
		if timing.REFW < 4*timing.REFI {
			timing.REFW = 4 * timing.REFI
		}
	}
	defName := strings.ToLower(cfg.Defense)

	model := disturb.NewModel(mod.Params, mod.Geom)
	var tracker *secTracker
	if st != nil && st.tracker != nil {
		tracker = st.tracker
		tracker.reset(model, entry.hcBase, entry.psi, scaled.Factor, cfg.CPUGHz, banks, mcCfg.BankGroups*mcCfg.BanksPerGroup)
	} else {
		tracker = newSecTracker(model, entry.hcBase, entry.psi, scaled.Factor, cfg.CPUGHz, banks, mcCfg.BankGroups*mcCfg.BanksPerGroup)
	}
	if st != nil {
		st.tracker = tracker
	}
	if cfg.Temporal != nil {
		if err := cfg.Temporal.Validate(); err != nil {
			return nil, err
		}
		tracker.startTemporal(temporal.NewProcess(*cfg.Temporal, cfg.Seed), cfg.Temporal.EpochCycles)
	}

	var mcs []*memctrl.Controller
	if st != nil && cap(st.mcs) >= nchan {
		mcs = st.mcs[:nchan]
	} else {
		mcs = make([]*memctrl.Controller, nchan)
		if st != nil {
			copy(mcs, st.mcs)
		}
	}
	if st != nil {
		st.mcs = mcs
	}
	m := &machine{mcs: mcs, tracker: tracker}
	if nchan > 1 {
		m.nchan = uint64(nchan)
		m.mopWidth = uint64(mcCfg.MOPWidth)
		m.chanStride = uint64(banksPerChan)
	}
	for ch := 0; ch < nchan; ch++ {
		// Each (pseudo) channel runs its own controller and defense
		// instance over its slice of the global bank space. Channel 0
		// uses the unwrapped tracker, thresholds, key, and seed, so the
		// single-channel DDR4 preset is bit- and allocation-identical to
		// the pre-backend system.
		si := mitigation.SystemInfo{
			Banks:       banksPerChan,
			RowsPerBank: cfg.RowsPerBank,
			REFWCycles:  timing.REFW,
			Seed:        cfg.Seed,
		}
		chTh := th
		var chTr memctrl.Tracker = tracker
		key := defName
		if ch > 0 {
			// Decorrelate per-channel probabilistic defenses (PARA) the
			// same way a real system's independent controllers would be.
			si.Seed = cfg.Seed + uint64(ch)*0x9E3779B97F4A7C15
			chTh = chanThresholds{th: th, off: ch * banksPerChan}
			chTr = chanTracker{t: tracker, bankOff: ch * banksPerChan, rankOff: ch * mcCfg.Ranks}
			key = defName + "#" + strconv.Itoa(ch)
		}
		var prev mitigation.Defense
		if st != nil {
			prev = st.defenses[key]
		}
		def, err := buildDefense(cfg.Defense, si, chTh, cfg.CPUGHz, prev)
		if err != nil {
			return nil, err
		}
		if st != nil {
			st.defenses[key] = def
		}
		if mcs[ch] != nil {
			mcs[ch].Reset(mcCfg, timing, def, chTr)
		} else {
			mcs[ch] = memctrl.New(mcCfg, timing, def, chTr)
		}
	}

	var cores []*cpu.Core
	if st != nil && cap(st.cores) >= cfg.Cores {
		cores = st.cores[:cfg.Cores]
	} else {
		cores = make([]*cpu.Core, cfg.Cores)
		if st != nil {
			copy(cores, st.cores)
		}
	}
	for i := range cores {
		gen, uncached, err := cfg.generatorFor(mcCfg, nchan, i, cfg.Mix[i])
		if err != nil {
			return nil, err
		}
		coreCfg := cfg.Core
		coreCfg.Uncached = uncached
		var mp cpu.MemPort
		if nchan > 1 {
			mp = chanPort{m: m, core: i}
		} else {
			mp = port{mc: mcs[0], core: i}
		}
		if cores[i] == nil {
			cores[i] = cpu.New(i, coreCfg, gen, mp)
		} else {
			cores[i].Reset(i, coreCfg, gen, mp)
		}
		cores[i].WarmupTarget = cfg.WarmupPerCore
		cores[i].MeasureTarget = cfg.InstrPerCore
	}
	if st != nil {
		st.cores = cores
	}
	m.cores = cores
	return m, nil
}

// runNaive is the per-cycle reference loop: tick the controller and
// every core on every CPU cycle. It ends at the exact cycle the last
// core finishes (no polling granularity) and returns that cycle with
// finished=true, or (maxCycles, false) on a truncated run.
func (m *machine) runNaive(maxCycles uint64) (uint64, bool) {
	remaining := len(m.cores)
	for cycle := uint64(0); cycle < maxCycles; cycle++ {
		m.ticks++
		m.tracker.tickEpoch(cycle)
		for _, mc := range m.mcs {
			mc.TickFull(cycle)
		}
		for _, c := range m.cores {
			was := c.Finished()
			c.Tick(cycle)
			if !was && c.Finished() {
				remaining--
			}
		}
		if m.rec != nil && !m.measuring {
			m.noteMeasuring()
		}
		if remaining == 0 {
			return cycle, true
		}
	}
	return maxCycles, false
}

// runSkip is the event-driven engine: it performs exactly the ticks of
// runNaive that do something and jumps over the rest. After a cycle in
// which neither the controller nor any core made progress, every ready
// time in the system is frozen, so the next cycle anything can happen
// is the minimum of the components' NextEvent bounds — the driver
// advances straight to it. Cycles where any component was active
// advance by one, like the reference loop, because activity (an issued
// command, a retired instruction, an enqueue) can enable any other
// component on the very next cycle. The two loops are bit-identical by
// construction; the differential tests in engine_diff_test.go enforce
// it across every defense, attack mix, and Svärd setting.
func (m *machine) runSkip(maxCycles uint64) (uint64, bool) {
	remaining := len(m.cores)
	cycle := uint64(0)
	for cycle < maxCycles {
		m.ticks++
		m.tracker.tickEpoch(cycle)
		active := false
		for _, mc := range m.mcs {
			if mc.Tick(cycle) {
				active = true
			}
		}
		for _, c := range m.cores {
			was := c.Finished()
			if c.Tick(cycle) {
				active = true
			}
			if !was && c.Finished() {
				remaining--
			}
		}
		if m.rec != nil && !m.measuring {
			m.noteMeasuring()
		}
		if remaining == 0 {
			return cycle, true
		}
		if active {
			m.obs.ActiveTicks++
			cycle++
			continue
		}
		// The tracker's next epoch edge bounds the jump too: live
		// thresholds change at the edge, so skipping across it could
		// misclassify a violation. MaxUint64 when static. bound tracks
		// which component's NextEvent set the jump target (ties keep the
		// earlier source, matching the scan order).
		next := m.tracker.NextEvent(cycle)
		bound := &m.obs.BoundTracker
		for _, mc := range m.mcs {
			if n := mc.NextEvent(cycle); n < next {
				next = n
				bound = &m.obs.BoundController
			}
		}
		for _, c := range m.cores {
			if n := c.NextEvent(cycle); n < next {
				next = n
				bound = &m.obs.BoundCore
			}
		}
		if next <= cycle {
			next = cycle + 1
		}
		if next > maxCycles {
			next = maxCycles // quiescent to the horizon: truncate
			bound = &m.obs.BoundHorizon
		}
		m.obs.SkipJumps++
		m.obs.SkippedCycles += next - (cycle + 1)
		*bound += 1
		cycle = next
	}
	return maxCycles, false
}

// result folds the machine's final state into a Result. endCycle is the
// cycle the run stopped at: the last core's finish cycle, or MaxCycles
// when truncated.
func (m *machine) result(cfg Config, endCycle uint64, finished bool) Result {
	res := Result{
		IPC:        make([]float64, len(m.cores)),
		Cycles:     endCycle,
		MC:         m.mcs[0].Stats,
		Violations: m.tracker.Violations,
		Finished:   finished,
	}
	for _, mc := range m.mcs[1:] {
		res.MC.Add(mc.Stats)
	}
	for i, c := range m.cores {
		switch {
		case c.Finished():
			res.IPC[i] = c.IPC()
		case c.Started() && endCycle > c.StartCycle():
			// Truncated run: report measurement-region progress only,
			// consistent with Core.IPC — warmup instructions and warmup
			// cycles are excluded. A core still in warmup reports 0.
			res.IPC[i] = float64(c.Retired-c.WarmupTarget) / float64(endCycle-c.StartCycle())
		}
	}
	return res
}

// noteMeasuring flips the attached recorder from the warmup phase to
// the run phase on the first ticked cycle where every core has entered
// its measurement region. Only called while a recorder is attached and
// the flip is still pending.
func (m *machine) noteMeasuring() {
	for _, c := range m.cores {
		if !c.Started() {
			return
		}
	}
	m.rec.End(obs.PhaseWarmup)
	m.rec.Begin(obs.PhaseRun)
	m.measuring = true
}

// foldObs folds the machine's engine counters and every controller's
// counters into the attached recorder (no-op when none is attached).
func (m *machine) foldObs() {
	if m.rec == nil {
		return
	}
	m.obs.Ticks = m.ticks
	m.obs.EpochAdvances = m.tracker.epochAdvances()
	c := &m.rec.Counters
	c.EngineCounters.Add(m.obs)
	for _, mc := range m.mcs {
		c.ControllerCounters.Add(mc.Obs)
		// The throttle counter lives in Stats (it predates the flight
		// recorder and is part of cached Results); mirror it here so the
		// obs counter set is self-contained.
		c.ThrottleStalls += mc.Stats.ThrottleStalls
	}
}

// run drives a built machine to completion and folds the Result.
func (m *machine) run(cfg Config) Result {
	m.rec.Begin(obs.PhaseWarmup)
	var cycle uint64
	var finished bool
	if cfg.NoSkip {
		cycle, finished = m.runNaive(cfg.MaxCycles)
	} else {
		cycle, finished = m.runSkip(cfg.MaxCycles)
	}
	if m.rec != nil {
		if !m.measuring {
			// Truncated before every core entered measurement: close the
			// warmup span here so the timeline stays well-formed.
			m.rec.End(obs.PhaseWarmup)
			m.rec.Begin(obs.PhaseRun)
		}
		m.rec.End(obs.PhaseRun)
	}
	m.rec.Begin(obs.PhaseFold)
	res := m.result(cfg, cycle, finished)
	m.foldObs()
	m.rec.End(obs.PhaseFold)
	return res
}

// Run executes one simulation from fresh allocations.
func Run(cfg Config) (Result, error) {
	m, err := newMachine(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.run(cfg), nil
}

// RunRecorded is Run with a flight recorder attached: the run's engine
// and controller counters fold into rec.Counters, and the build,
// warmup, run, and fold phases are stamped onto rec. The Result is
// bit-identical to Run's — the recorder observes, it never steers —
// and a nil rec makes this exactly Run.
func RunRecorded(cfg Config, rec *obs.Recorder) (Result, error) {
	rec.Begin(obs.PhaseBuild)
	m, err := newMachine(cfg)
	rec.End(obs.PhaseBuild)
	if err != nil {
		return Result{}, err
	}
	m.rec = rec
	return m.run(cfg), nil
}

// Pool executes simulations on reusable state arenas. A paper-scale
// sweep rebuilds its multi-megabyte simulator (LLC arrays, tracker
// accrual tables, defense counters, controller queues) hundreds of
// times; a Pool Reset()s one arena per worker instead, so cells execute
// allocation-flat once the arenas are warm. Results are bit-identical
// to Run for every configuration — each component's Reset restores the
// exact state its constructor produces, and the pooled differential
// tests (pool_test.go) enforce it, including reuse across different
// geometries and after truncated runs.
//
// A Pool is safe for concurrent use: arenas are handed out through a
// sync.Pool, so concurrent Runs never share one (idle arenas remain
// collectable under memory pressure).
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty pool; arenas are created on demand.
func NewPool() *Pool { return &Pool{} }

// Run executes one simulation on a pooled arena, bit-identical to
// sim.Run(cfg).
func (p *Pool) Run(cfg Config) (Result, error) {
	st, _ := p.p.Get().(*poolState)
	if st == nil {
		st = &poolState{defenses: make(map[string]mitigation.Defense)}
	}
	m, err := buildMachine(cfg, st)
	if err != nil {
		// The arena stays reusable: every Reset fully reinitializes,
		// regardless of how far a failed build got.
		p.p.Put(st)
		return Result{}, err
	}
	res := m.run(cfg)
	p.p.Put(st)
	return res, nil
}

// RunRecorded is Run on a pooled arena with a flight recorder attached
// (see RunRecorded). Allocation-flat like Run: the recorder is caller-
// owned, the counters are plain fields, and the phase stamps write into
// a fixed array. A nil rec is exactly Run.
func (p *Pool) RunRecorded(cfg Config, rec *obs.Recorder) (Result, error) {
	if rec == nil {
		return p.Run(cfg)
	}
	st, _ := p.p.Get().(*poolState)
	if st == nil {
		st = &poolState{defenses: make(map[string]mitigation.Defense)}
	}
	rec.Begin(obs.PhaseBuild)
	m, err := buildMachine(cfg, st)
	rec.End(obs.PhaseBuild)
	if err != nil {
		p.p.Put(st)
		return Result{}, err
	}
	m.rec = rec
	res := m.run(cfg)
	p.p.Put(st)
	return res, nil
}

// defaultPool backs PooledRun: one process-wide arena pool shared by
// every sweep, so consecutive sweeps (and benchmark iterations) stay
// warm.
var defaultPool = NewPool()

// PooledRun is Run on the process-wide state pool — the executor the
// sweep paths (RunFig12/RunFig13, the campaign engine, svard-perf's
// cache fallback) use. Bit-identical to Run.
func PooledRun(cfg Config) (Result, error) { return defaultPool.Run(cfg) }

// PooledRunRecorded is RunRecorded on the process-wide state pool.
func PooledRunRecorded(cfg Config, rec *obs.Recorder) (Result, error) {
	return defaultPool.RunRecorded(cfg, rec)
}
