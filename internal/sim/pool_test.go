package sim

import (
	"fmt"
	"reflect"
	"testing"

	"svard/internal/rng"
)

// TestPooledVsFresh is the pooling counterpart of the engine
// differential: across every defense, the adversarial and streaming
// mixes, and Svärd on/off, a Pool that has already executed other
// configurations must produce a Result bit-identical to a fresh
// construction. The pool is deliberately shared across the whole
// matrix, so every case runs on state dirtied by the previous ones.
func TestPooledVsFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("pooled differential matrix is seconds-scale")
	}
	pool := NewPool()
	defenses := append([]string{"none"}, DefenseNames...)
	for _, defense := range defenses {
		for mixName, mix := range diffMixes() {
			for _, svard := range []bool{false, true} {
				if defense == "none" && svard {
					continue
				}
				name := fmt.Sprintf("%s/%s/svard=%v", defense, mixName, svard)
				t.Run(name, func(t *testing.T) {
					cfg := diffBase()
					cfg.Defense = defense
					cfg.Mix = mix
					cfg.Svard = svard
					fresh, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					pooled, err := pool.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(fresh, pooled) {
						t.Errorf("pooled run diverged:\nfresh:  %+v\npooled: %+v", fresh, pooled)
					}
				})
			}
		}
	}
}

// TestPoolDirtyReuse proves a dirty arena resets completely: a
// truncated run (whose controller queues, in-flight victim refreshes,
// core windows, and defense counters all stop mid-flight) is followed
// on the same pool by a different full-length configuration, which must
// match a fresh run bit for bit.
func TestPoolDirtyReuse(t *testing.T) {
	pool := NewPool()

	dirty := diffBase()
	dirty.Defense = "hydra"
	dirty.Mix = []string{"attack:hydra", "mcf06"}
	dirty.MaxCycles = 30_000 // cut off mid-flight
	res, err := pool.Run(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished {
		t.Fatal("dirtying run finished; shrink MaxCycles")
	}

	clean := diffBase()
	clean.Defense = "rrs" // different defense type reuses the same arena
	clean.Mix = []string{"lbm06", "ycsb-a"}
	fresh, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := pool.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("dirty pool diverged:\nfresh:  %+v\npooled: %+v", fresh, pooled)
	}

	// And the same config as the truncated one, full length.
	dirty.MaxCycles = diffBase().MaxCycles
	fresh, err = Run(dirty)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err = pool.Run(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("dirty pool (same config, full length) diverged:\nfresh:  %+v\npooled: %+v", fresh, pooled)
	}
}

// TestPoolBackendAlternationHBM2 is the deterministic cross-backend
// reuse differential: DDR4 and HBM2 cells alternate through one pool —
// the arena's controller slice grows from one controller to four and
// shrinks back, with a truncated HBM2 run left mid-flight in between —
// and every cell must match fresh construction bit for bit.
func TestPoolBackendAlternationHBM2(t *testing.T) {
	pool := NewPool()
	base := diffBase()
	base.Mix = []string{"mcf06", "ycsb-a"}
	base.Defense = "para"

	steps := []struct {
		name      string
		backend   string
		defense   string
		maxCycles uint64
	}{
		{"ddr4", "", "para", 0},
		{"hbm2", "hbm2", "para", 0},
		{"hbm2-truncated", "hbm2", "hydra", 25_000},
		{"ddr4-after-hbm2", "", "hydra", 0},
		{"hbm2-after-shrink", "hbm2", "rrs", 0},
	}
	for _, st := range steps {
		cfg := base
		cfg.Backend = st.backend
		cfg.Defense = st.defense
		if st.maxCycles > 0 {
			cfg.MaxCycles = st.maxCycles
		}
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		pooled, err := pool.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", st.name, err)
		}
		if !reflect.DeepEqual(fresh, pooled) {
			t.Fatalf("%s: pooled run diverged:\nfresh:  %+v\npooled: %+v", st.name, fresh, pooled)
		}
	}
}

// TestPoolGeometryInterleave funnels randomized configurations of
// different geometries (memory backend, rows per bank, cores,
// workloads, defenses, truncation) through ONE pool arena in sequence
// and checks each against fresh construction. This is the randomized
// reset-coverage test: growing and shrinking geometry — including
// alternating the single-channel DDR4 preset with the four-pseudo-
// channel HBM2 preset, which resizes the controller slice, every
// per-channel defense, and the tracker's accrual table — must never
// leak state between cells.
func TestPoolGeometryInterleave(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized geometry interleave is seconds-scale")
	}
	pool := NewPool()
	r := rng.New(0xD00DF00D)
	rows := []int{1024, 2048, 4096}
	cores := []int{1, 2, 3}
	backends := []string{"", "hbm2", "ddr4-3200"}
	workloads := []string{"mcf06", "ycsb-a", "lbm06", "tpcc", "attack:hydra", "attack:rrs"}
	defenses := append([]string{"none"}, DefenseNames...)
	for i := 0; i < 24; i++ {
		cfg := DefaultConfig()
		cfg.Backend = backends[r.Intn(len(backends))]
		cfg.RowsPerBank = rows[r.Intn(len(rows))]
		cfg.CellsPerRow = 2048
		cfg.Cores = cores[r.Intn(len(cores))]
		cfg.InstrPerCore = 4_000 + uint64(r.Intn(4))*2_000
		cfg.WarmupPerCore = 1_000
		cfg.Defense = defenses[r.Intn(len(defenses))]
		cfg.Svard = r.Bool(0.5) && cfg.Defense != "none"
		cfg.NRH = []float64{64, 256, 1024}[r.Intn(3)]
		cfg.Mix = make([]string, cfg.Cores)
		for c := range cfg.Mix {
			cfg.Mix[c] = workloads[r.Intn(len(workloads))]
		}
		if r.Bool(0.25) {
			cfg.MaxCycles = 20_000 // leave the arena mid-flight
		}
		name := fmt.Sprintf("%02d-%s-%s-rows%d-cores%d", i, cfg.Defense, backendLabel(cfg.Backend), cfg.RowsPerBank, cfg.Cores)
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pooled, err := pool.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(fresh, pooled) {
			t.Fatalf("%s: pooled run diverged after %d prior cells:\nfresh:  %+v\npooled: %+v",
				name, i, fresh, pooled)
		}
	}
}

// TestPooledRunMatchesRun pins the exported entry point the sweeps use.
func TestPooledRunMatchesRun(t *testing.T) {
	cfg := diffBase()
	cfg.Defense = "para"
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	fresh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := PooledRun(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("PooledRun diverged:\nfresh:  %+v\npooled: %+v", fresh, pooled)
	}
}
