package sim

import (
	"context"
	"fmt"

	"svard/internal/temporal"
	"svard/internal/trace"
)

// The margin-erosion sweep quantifies the gap between the two views of
// the per-row truth (views.go): each defense is configured against the
// calibration-time profile, then attacked under a drifted live truth,
// and the sweep reports how far the defense's violation-free operating
// point moves as the re-calibration interval grows. It is the
// temporal-axis counterpart of Fig. 12: same (defense, nRH, Svärd)
// grid, but the quantity of interest is security margin vs. time
// instead of performance vs. threshold.

// DefaultErosionIntervals are the default re-calibration intervals, in
// epochs of the temporal process: freshly calibrated, moderately stale,
// and badly stale.
func DefaultErosionIntervals() []uint64 { return []uint64{0, 16, 64} }

// ErosionOptions parameterizes the margin-erosion sweep.
type ErosionOptions struct {
	Base Config // sizing knobs; Base.Temporal must be nil (Process owns the axis)

	// Process is the temporal-variation process every drifted leg runs
	// under. Its AgeEpochs must be 0: the sweep owns the age axis and
	// sets it per interval.
	Process temporal.Spec

	// Intervals are the re-calibration intervals to evaluate, in epochs
	// (default DefaultErosionIntervals). Each interval ages the live
	// truth by that many epochs of pre-run drift before the attack
	// starts; 0 evaluates a freshly calibrated defense that still
	// drifts during the run.
	Intervals []uint64

	Mixes    [][]string // workload mixes (default trace.Mixes(4, ...))
	NRHs     []float64  // swept worst-case HCfirst values (default 4K..64)
	Defenses []string   // default all five

	Workers  int    // max concurrent simulations (<= 0: GOMAXPROCS)
	Runner   Runner // per-job executor (nil: PooledRun); see Runner
	Progress func(string)
}

// fill applies the sweep defaults (idempotent, like Fig12Options.fill).
func (opt ErosionOptions) fill() ErosionOptions {
	if len(opt.Mixes) == 0 {
		opt.Mixes = trace.Mixes(4, opt.Base.Cores, opt.Base.Seed)
	}
	if len(opt.NRHs) == 0 {
		opt.NRHs = DefaultNRHs()
	}
	if len(opt.Defenses) == 0 {
		opt.Defenses = DefenseNames
	}
	if len(opt.Intervals) == 0 {
		opt.Intervals = DefaultErosionIntervals()
	}
	return opt
}

// validate rejects option combinations the fold cannot give a meaning
// to. Called by ErosionJobs, so every execution path (direct, campaign,
// service) admits or rejects identically.
func (opt ErosionOptions) validate() error {
	if err := opt.Process.Validate(); err != nil {
		return err
	}
	if opt.Process.AgeEpochs != 0 {
		return fmt.Errorf("sim: erosion Process.AgeEpochs must be 0 — the sweep sets the age per interval (got %d)", opt.Process.AgeEpochs)
	}
	if opt.Base.Temporal != nil {
		return fmt.Errorf("sim: erosion Base.Temporal must be nil — the sweep attaches the process itself")
	}
	seen := map[uint64]bool{}
	for _, iv := range opt.Intervals {
		if seen[iv] {
			return fmt.Errorf("sim: duplicate erosion interval %d", iv)
		}
		seen[iv] = true
	}
	return nil
}

// ErosionCell is one row of the margin-erosion report: a (defense,
// configuration, interval) with the smallest violation-free swept nRH
// under the calibration-time truth (CalibNRH) and under the live truth
// aged by Interval epochs (LiveNRH). Shift = LiveNRH/CalibNRH: 1.0
// means the defense's operating point survived the drift, > 1 means the
// margin eroded (the defense now needs a weaker-threshold assumption to
// stay clean), 0 means no swept nRH was violation-free. Violations
// counts the bitflips the drifted truth produces at CalibNRH — the
// operating point the defense was deployed at.
type ErosionCell struct {
	Defense    string
	Config     string // "NoSvard" or "Svard-<module>"
	Interval   uint64 // re-calibration interval, in epochs
	CalibNRH   float64
	LiveNRH    float64
	Shift      float64
	Violations uint64
}

// ErosionJobs expands the sweep into its flat job list, the enumeration
// every execution path shares: first the static legs — one per
// (defense, svard, nRH, mix), with Temporal nil so they are
// byte-identical (and cache-shared) with ordinary Fig. 12 cells — then,
// per interval, the same grid with the process attached at that age.
func ErosionJobs(opt ErosionOptions) ([]Job, error) {
	opt = opt.fill()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var jobs []Job
	grid := func(spec *temporal.Spec, suffix string) {
		for _, defense := range opt.Defenses {
			for _, svard := range []bool{false, true} {
				for _, nrh := range opt.NRHs {
					for mi := range opt.Mixes {
						cfg := opt.Base
						cfg.Mix = opt.Mixes[mi]
						cfg.Defense = defense
						cfg.NRH = nrh
						cfg.Svard = svard
						cfg.Temporal = spec
						name := "NoSvard"
						if svard {
							name = "Svard-" + cfg.ModuleLabel
						}
						jobs = append(jobs, Job{
							Label:  fmt.Sprintf("erosion %s nRH=%v %s mix %d%s", defense, nrh, name, mi, suffix),
							Config: cfg,
						})
					}
				}
			}
		}
	}
	grid(nil, " [calib]")
	for _, iv := range opt.Intervals {
		spec := opt.Process
		spec.AgeEpochs = iv
		grid(&spec, fmt.Sprintf(" [age=%d]", iv))
	}
	return jobs, nil
}

// RunErosion executes the margin-erosion sweep and returns cells in
// (defense, config, interval) order.
func RunErosion(opt ErosionOptions) ([]ErosionCell, error) {
	return RunErosionCtx(context.Background(), opt)
}

// RunErosionCtx is RunErosion with cancellation, with the same contract
// as RunFig12Ctx: results are bit-identical for any Workers value and
// any Runner faithful to Run, and a cancelled sweep returns no cells.
func RunErosionCtx(ctx context.Context, opt ErosionOptions) ([]ErosionCell, error) {
	opt = opt.fill()
	jobs, err := ErosionJobs(opt)
	if err != nil {
		return nil, err
	}
	results, err := runJobs(ctx, opt.Workers, opt.Runner, opt.Progress, jobs)
	if err != nil {
		return nil, err
	}

	// The job list is (1 + len(Intervals)) repetitions of the same
	// (defense, svard, nRH, mix) grid; segment 0 is calibration truth.
	nMix := len(opt.Mixes)
	perGrid := len(opt.Defenses) * 2 * len(opt.NRHs) * nMix
	// violations sums a grid point's bitflips over its mixes.
	violations := func(segment, defIdx, svIdx, nrhIdx int) uint64 {
		base := segment*perGrid + ((defIdx*2+svIdx)*len(opt.NRHs)+nrhIdx)*nMix
		var v uint64
		for mi := 0; mi < nMix; mi++ {
			v += results[base+mi].Violations
		}
		return v
	}
	// cleanNRH finds the smallest swept nRH with zero violations across
	// all mixes in the given segment (0 when no swept value is clean):
	// the weakest worst-case-threshold assumption the defense can be
	// deployed under and still keep the tracker silent.
	cleanNRH := func(segment, defIdx, svIdx int) float64 {
		best := 0.0
		for ni, nrh := range opt.NRHs {
			if violations(segment, defIdx, svIdx, ni) == 0 && (best == 0 || nrh < best) {
				best = nrh
			}
		}
		return best
	}
	nrhIndex := func(nrh float64) int {
		for i, v := range opt.NRHs {
			if v == nrh {
				return i
			}
		}
		return -1
	}

	var cells []ErosionCell
	for defIdx, defense := range opt.Defenses {
		for svIdx, name := range []string{"NoSvard", "Svard-" + opt.Base.ModuleLabel} {
			calib := cleanNRH(0, defIdx, svIdx)
			for si, iv := range opt.Intervals {
				cell := ErosionCell{
					Defense:  defense,
					Config:   name,
					Interval: iv,
					CalibNRH: calib,
					LiveNRH:  cleanNRH(1+si, defIdx, svIdx),
				}
				if calib > 0 {
					cell.Shift = cell.LiveNRH / calib
					cell.Violations = violations(1+si, defIdx, svIdx, nrhIndex(calib))
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}
