package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// diffBase is the differential-test system: small enough that the full
// defense x mix x Svärd matrix runs in seconds, large enough that every
// engine path (refresh, victim backlogs, write drain, throttling,
// migrations, metadata traffic, MSHR/queue back-pressure) is exercised.
func diffBase() Config {
	cfg := DefaultConfig()
	cfg.Cores = 2
	cfg.RowsPerBank = 2048
	cfg.CellsPerRow = 2048
	cfg.InstrPerCore = 10_000
	cfg.WarmupPerCore = 2_000
	cfg.NRH = 64 // low threshold: maximal defense activity
	return cfg
}

// diffMixes are the access-pattern legs of the differential matrix: a
// streaming mix (high row-buffer locality, long drained-queue gaps), and
// the two adversarial patterns (uncached attacker cores that saturate
// the controller).
func diffMixes() map[string][]string {
	return map[string][]string{
		"stream":       {"lbm06", "libquantum06"},
		"attack:hydra": {"attack:hydra", "mcf06"},
		"attack:rrs":   {"attack:rrs", "mcf06"},
	}
}

// runBoth executes cfg under both engines and returns (skip, naive).
func runBoth(t *testing.T, cfg Config) (Result, Result) {
	t.Helper()
	cfg.NoSkip = false
	skip, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoSkip = true
	naive, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return skip, naive
}

// TestEngineDifferential is the tentpole guarantee: the cycle-skipping
// engine produces a bit-identical Result (IPC, Cycles, every MC stat,
// Violations, Finished) to the per-cycle reference loop across all five
// defenses, the streaming and adversarial mixes, and Svärd on/off.
func TestEngineDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is seconds-scale")
	}
	defenses := append([]string{"none"}, DefenseNames...)
	for _, defense := range defenses {
		for mixName, mix := range diffMixes() {
			for _, svard := range []bool{false, true} {
				if defense == "none" && svard {
					continue // Svärd without a defense is a no-op
				}
				name := fmt.Sprintf("%s/%s/svard=%v", defense, mixName, svard)
				t.Run(name, func(t *testing.T) {
					cfg := diffBase()
					cfg.Defense = defense
					cfg.Mix = mix
					cfg.Svard = svard
					skip, naive := runBoth(t, cfg)
					if !reflect.DeepEqual(skip, naive) {
						t.Errorf("engines diverged:\nskip:  %+v\nnaive: %+v", skip, naive)
					}
					if !skip.Finished {
						t.Errorf("differential case did not finish in %d cycles", cfg.MaxCycles)
					}
				})
			}
		}
	}
}

// TestEngineDifferentialHBM2 extends the tentpole guarantee to the
// multi-channel backend: on the HBM2 preset (four independent pseudo
// channels, each with its own controller, defense instance, and
// NextEvent bound), the event-driven engine must stay bit-identical to
// the per-cycle reference loop. A skip bound computed over one channel
// while another still has work pending would diverge here.
func TestEngineDifferentialHBM2(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is seconds-scale")
	}
	defenses := append([]string{"none"}, DefenseNames...)
	for _, defense := range defenses {
		for mixName, mix := range diffMixes() {
			name := fmt.Sprintf("%s/%s", defense, mixName)
			t.Run(name, func(t *testing.T) {
				cfg := diffBase()
				cfg.Backend = "hbm2"
				cfg.Defense = defense
				cfg.Mix = mix
				cfg.Svard = defense != "none" // per-row thresholds across the channel split
				skip, naive := runBoth(t, cfg)
				if !reflect.DeepEqual(skip, naive) {
					t.Errorf("engines diverged on hbm2:\nskip:  %+v\nnaive: %+v", skip, naive)
				}
				if !skip.Finished {
					t.Errorf("hbm2 differential case did not finish in %d cycles", cfg.MaxCycles)
				}
			})
		}
	}
}

// TestEngineDifferentialTruncated pins bit-identity on runs cut off by
// MaxCycles, including the truncated-IPC accounting.
func TestEngineDifferentialTruncated(t *testing.T) {
	cfg := diffBase()
	cfg.Defense = "para"
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	cfg.MaxCycles = 40_000 // past warmup, well before finish
	skip, naive := runBoth(t, cfg)
	if !reflect.DeepEqual(skip, naive) {
		t.Errorf("truncated engines diverged:\nskip:  %+v\nnaive: %+v", skip, naive)
	}
	if skip.Finished {
		t.Fatal("truncation case finished; shrink MaxCycles")
	}
	if skip.Cycles != cfg.MaxCycles {
		t.Errorf("truncated Cycles = %d, want MaxCycles %d", skip.Cycles, cfg.MaxCycles)
	}
}

// TestEngineSkipsCycles asserts the engine actually skips: on a
// memory-bound mix the event-driven driver must reach the identical
// final state while ticking well under half the simulated cycles. This
// is the sim-level regression test for the speedup mechanism itself —
// a NextEvent that degenerates to cycle+1 or a Tick that always
// reports activity passes every differential test but fails here.
func TestEngineSkipsCycles(t *testing.T) {
	cfg := diffBase()
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	m, err := newMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cycle, finished := m.runSkip(cfg.MaxCycles)
	if !finished {
		t.Fatalf("run did not finish in %d cycles", cfg.MaxCycles)
	}
	if m.ticks >= cycle/2 {
		t.Errorf("event engine ticked %d of %d cycles (%.0f%%); expected well under half",
			m.ticks, cycle, 100*float64(m.ticks)/float64(cycle))
	}

	// The reference loop ticks every cycle by definition.
	mn, err := newMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nCycle, _ := mn.runNaive(cfg.MaxCycles)
	if nCycle != cycle {
		t.Errorf("engines ended at different cycles: %d vs %d", cycle, nCycle)
	}
	if mn.ticks != nCycle+1 {
		t.Errorf("reference loop ticked %d of %d cycles", mn.ticks, nCycle+1)
	}
}

// TestExactFinishCycle is the regression test for the 1024-cycle finish
// poll: both engines must end at the precise cycle the last core
// finishes, equal to the maximum per-core doneCycle.
func TestExactFinishCycle(t *testing.T) {
	cfg := diffBase()
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	for _, noskip := range []bool{false, true} {
		m, err := newMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var cycle uint64
		var finished bool
		if noskip {
			cycle, finished = m.runNaive(cfg.MaxCycles)
		} else {
			cycle, finished = m.runSkip(cfg.MaxCycles)
		}
		if !finished {
			t.Fatalf("noskip=%v: run did not finish", noskip)
		}
		var last uint64
		for i, c := range m.cores {
			if !c.Finished() {
				t.Fatalf("noskip=%v: core %d not finished at end", noskip, i)
			}
			if dc := c.DoneCycle(); dc > last {
				last = dc
			}
		}
		if cycle != last {
			t.Errorf("noskip=%v: run ended at cycle %d, last core finished at %d", noskip, cycle, last)
		}
	}
}

// TestTruncatedIPCExcludesWarmup is the regression test for the
// truncated-run IPC bug: a run cut off by MaxCycles after warmup must
// report measurement-region IPC ((Retired-WarmupTarget)/(cycle-start)),
// not Retired/cycle, which silently counted warmup instructions over
// warmup cycles.
func TestTruncatedIPCExcludesWarmup(t *testing.T) {
	cfg := diffBase()
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	cfg.InstrPerCore = 1 << 40 // never finishes: always truncated
	cfg.MaxCycles = 60_000
	m, err := newMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cycle, finished := m.runSkip(cfg.MaxCycles)
	res := m.result(cfg, cycle, finished)
	if finished {
		t.Fatal("truncation case finished")
	}
	for i, c := range m.cores {
		if !c.Started() {
			t.Fatalf("core %d still in warmup at %d cycles; raise MaxCycles", i, cfg.MaxCycles)
		}
		want := float64(c.Retired-c.WarmupTarget) / float64(cycle-c.StartCycle())
		if res.IPC[i] != want {
			t.Errorf("core %d truncated IPC = %v, want measurement-region %v", i, res.IPC[i], want)
		}
		// The buggy formula mixed warmup into both numerator and
		// denominator; on this workload the two visibly disagree.
		buggy := float64(c.Retired) / float64(cycle)
		if res.IPC[i] == buggy {
			t.Errorf("core %d truncated IPC %v indistinguishable from the warmup-polluted formula; test lost its power", i, res.IPC[i])
		}
	}
}

// TestTruncatedIPCZeroDuringWarmup: a run cut off before any core
// leaves warmup reports 0 IPC, not warmup throughput.
func TestTruncatedIPCZeroDuringWarmup(t *testing.T) {
	cfg := diffBase()
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	cfg.MaxCycles = 40 // a handful of cycles: nowhere near 2 000 retires
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished {
		t.Fatal("warmup-truncation case finished")
	}
	for i, ipc := range res.IPC {
		if ipc != 0 {
			t.Errorf("core %d reported IPC %v during warmup", i, ipc)
		}
	}
}
