package sim

import (
	"testing"

	"svard/internal/memctrl"
	"svard/internal/trace"
)

// TestAttackTargetsHaveGenerators: every adversarial target the
// validator (and thus Fig. 13's sweep) accepts must have a generator, so
// a target added to trace.AttackTargets without a generatorFor case
// fails here instead of mid-campaign.
func TestAttackTargetsHaveGenerators(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	mcCfg := memctrl.DefaultConfig(cfg.RowsPerBank)
	for _, target := range trace.AttackTargets {
		if _, _, err := cfg.generatorFor(mcCfg, 1, 0, "attack:"+target); err != nil {
			t.Errorf("attack target %q has no generator: %v", target, err)
		}
	}
}

// FuzzGeneratorFor pins the contract between the campaign-spec validator
// (trace.CheckWorkload, behind svard-sweep's -mix flag and spec files)
// and the simulator's generator factory — including the "attack:" prefix
// path RunFig13 builds its mixes with: the two must accept exactly the
// same names, neither may panic, and every accepted generator must
// produce accesses.
func FuzzGeneratorFor(f *testing.F) {
	f.Add("mcf06")
	f.Add("attack:hydra")
	f.Add("attack:rrs")
	f.Add("attack:")
	f.Add("attack:aqua")
	f.Add("")
	f.Add("ycsb-a\x00")
	f.Fuzz(func(t *testing.T, name string) {
		cfg := DefaultConfig()
		cfg.Cores = 2
		mcCfg := memctrl.DefaultConfig(cfg.RowsPerBank)

		gen, uncached, err := cfg.generatorFor(mcCfg, 1, 1, name)
		simOK := err == nil
		traceOK := trace.CheckWorkload(name) == nil
		if simOK != traceOK {
			t.Fatalf("validator and simulator disagree on %q: sim err=%v, trace err=%v",
				name, err, trace.CheckWorkload(name))
		}
		if !simOK {
			return
		}
		// Attackers bypass the LLC; benign workloads must not.
		if wantUncached := len(name) > 7 && name[:7] == "attack:"; uncached != wantUncached {
			t.Fatalf("%q: uncached = %v", name, uncached)
		}
		for i := 0; i < 16; i++ {
			gap, _, _ := gen.Next()
			if gap < 0 {
				t.Fatalf("%q: negative instruction gap %d", name, gap)
			}
		}
	})
}
