package sim

import (
	"fmt"
	"reflect"
	"testing"

	"svard/internal/temporal"
)

// diffTemporal is the differential-scale temporal process: epochs short
// enough that the adversarial legs cross dozens of epoch edges, drift
// and age aggressive enough that live thresholds move far below their
// calibration values and the tracker actually fires.
func diffTemporal() *temporal.Spec {
	return &temporal.Spec{EpochCycles: 65536, Drift: -0.05, Sigma: 0.1, DipP: 0.01, DipFactor: 0.5, AgeEpochs: 64}
}

// TestEngineDifferentialTemporal extends the NoSkip differential matrix
// with the temporal row: with the live truth drifting at epoch edges,
// the cycle-skipping engine must still produce a bit-identical Result
// to the per-cycle reference loop across all five defenses — proving
// the epoch-edge bound folded into NextEvent is exact (a skipped edge
// would sample different thresholds and diverge in Violations).
func TestEngineDifferentialTemporal(t *testing.T) {
	if testing.Short() {
		t.Skip("differential matrix is seconds-scale")
	}
	defenses := append([]string{"none"}, DefenseNames...)
	for _, defense := range defenses {
		for mixName, mix := range diffMixes() {
			name := fmt.Sprintf("%s/%s", defense, mixName)
			t.Run(name, func(t *testing.T) {
				cfg := diffBase()
				cfg.Defense = defense
				cfg.Mix = mix
				cfg.Svard = defense != "none"
				cfg.Temporal = diffTemporal()
				skip, naive := runBoth(t, cfg)
				if !reflect.DeepEqual(skip, naive) {
					t.Errorf("engines diverged under temporal drift:\nskip:  %+v\nnaive: %+v", skip, naive)
				}
				if !skip.Finished {
					t.Errorf("differential case did not finish in %d cycles", cfg.MaxCycles)
				}
			})
		}
	}
}

// TestTemporalMovesOnlyViolations pins the calibration-view contract:
// defenses, Svärd remapping, and the whole performance side read ONLY
// the frozen calibration view, so attaching a temporal process may
// change nothing but the security tracker's violation count. IPC,
// Cycles, and every controller stat must be bit-identical between the
// static run and the drifted run of the same configuration.
func TestTemporalMovesOnlyViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("temporal contract matrix is seconds-scale")
	}
	moved := false
	for _, defense := range []string{"none", "para", "hydra"} {
		for mixName, mix := range diffMixes() {
			cfg := diffBase()
			cfg.Defense = defense
			cfg.Mix = mix
			cfg.Svard = defense != "none"
			static, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Temporal = diffTemporal()
			drifted, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			name := defense + "/" + mixName
			if !reflect.DeepEqual(static.IPC, drifted.IPC) || static.Cycles != drifted.Cycles ||
				static.MC != drifted.MC || static.Finished != drifted.Finished {
				t.Errorf("%s: temporal drift leaked into the performance side:\nstatic:  %+v\ndrifted: %+v",
					name, static, drifted)
			}
			if drifted.Violations != static.Violations {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("aggressive drift changed no violation count anywhere; the live view is not reaching the tracker")
	}
}

// TestPoolDirtyTemporalReuse: an arena dirtied by a temporal run (epoch
// state advanced, threshold memo populated) must reset completely — a
// static run on it is bit-identical to fresh construction, and a second
// temporal run on it is bit-identical to a fresh temporal run.
func TestPoolDirtyTemporalReuse(t *testing.T) {
	pool := NewPool()

	dirty := diffBase()
	dirty.Defense = "para"
	dirty.Mix = []string{"attack:hydra", "mcf06"}
	dirty.Temporal = diffTemporal()
	if _, err := pool.Run(dirty); err != nil {
		t.Fatal(err)
	}

	clean := diffBase()
	clean.Defense = "para"
	clean.Mix = []string{"attack:hydra", "mcf06"}
	fresh, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := pool.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("static run on a temporally dirtied arena diverged:\nfresh:  %+v\npooled: %+v", fresh, pooled)
	}

	freshTemporal, err := Run(dirty)
	if err != nil {
		t.Fatal(err)
	}
	pooledTemporal, err := pool.Run(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(freshTemporal, pooledTemporal) {
		t.Errorf("temporal run on a dirtied arena diverged:\nfresh:  %+v\npooled: %+v", freshTemporal, pooledTemporal)
	}
}

// erosionTestOptions is the test-scale margin-erosion sweep: parameters
// chosen so the para defense is statically violation-free at the
// smallest swept nRH, stays clean when freshly calibrated (interval 0),
// and measurably erodes at the longer re-calibration intervals.
func erosionTestOptions() ErosionOptions {
	return ErosionOptions{
		Base:      diffBase(),
		Process:   temporal.Spec{EpochCycles: 65536, Drift: -0.03, Sigma: 0.05},
		Intervals: []uint64{0, 16, 64},
		Mixes:     [][]string{{"lbm06", "libquantum06"}, {"attack:hydra", "mcf06"}},
		NRHs:      []float64{1024, 256, 64},
		Defenses:  []string{"para"},
	}
}

// TestErosionMarginShifts is the headline acceptance check: under a
// drifting live truth, the margin-erosion report shows the defense's
// violation-free nRH threshold moving away from its calibration-time
// value as the re-calibration interval grows, with bitflips at the
// stale operating point.
func TestErosionMarginShifts(t *testing.T) {
	if testing.Short() {
		t.Skip("erosion sweep is seconds-scale")
	}
	cells, err := RunErosion(erosionTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1*2*3 {
		t.Fatalf("got %d cells, want %d", len(cells), 6)
	}
	byKey := map[string]ErosionCell{}
	for _, c := range cells {
		byKey[fmt.Sprintf("%s/%s/%d", c.Defense, c.Config, c.Interval)] = c
	}
	fresh := byKey["para/NoSvard/0"]
	if fresh.CalibNRH == 0 {
		t.Fatal("para has no statically violation-free swept nRH; the erosion baseline is meaningless")
	}
	if fresh.Shift != 1 || fresh.Violations != 0 {
		t.Errorf("freshly calibrated interval 0: shift %v with %d violations, want a clean 1.0x",
			fresh.Shift, fresh.Violations)
	}
	stale := byKey["para/NoSvard/64"]
	if stale.LiveNRH == fresh.CalibNRH {
		t.Error("64-epoch-stale calibration shows no threshold shift; drift is not eroding the margin")
	}
	if stale.Violations == 0 {
		t.Error("64-epoch-stale calibration produces no bitflips at the calibrated operating point")
	}
}

// TestErosionDeterministicAcrossWorkers: the margin-erosion report is
// bit-identical for any Workers value — the same guarantee RunFig12
// gives, extended to the temporal legs whose trajectories must be pure
// functions of (seed, bank, row, epoch) regardless of which worker
// samples them.
func TestErosionDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("erosion sweep is seconds-scale")
	}
	opt := erosionTestOptions()
	opt.Workers = 1
	serial, err := RunErosion(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 7
	parallel, err := RunErosion(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("erosion cells differ across worker counts:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestErosionJobsValidate: the sweep rejects option combinations whose
// fold would be meaningless, before any simulation runs.
func TestErosionJobsValidate(t *testing.T) {
	cases := []struct {
		name    string
		breakIt func(*ErosionOptions)
	}{
		{"invalid process", func(o *ErosionOptions) { o.Process.EpochCycles = 0 }},
		{"negative sigma", func(o *ErosionOptions) { o.Process.Sigma = -1 }},
		{"process owns age", func(o *ErosionOptions) { o.Process.AgeEpochs = 4 }},
		{"base already temporal", func(o *ErosionOptions) { o.Base.Temporal = &temporal.Spec{EpochCycles: 1} }},
		{"duplicate interval", func(o *ErosionOptions) { o.Intervals = []uint64{0, 16, 16} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := erosionTestOptions()
			tc.breakIt(&opt)
			if _, err := ErosionJobs(opt); err == nil {
				t.Error("ErosionJobs accepted an invalid option set")
			}
		})
	}
	if _, err := ErosionJobs(erosionTestOptions()); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}
