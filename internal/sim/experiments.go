package sim

import (
	"fmt"
	"math"

	"svard/internal/exec"
	"svard/internal/metrics"
	"svard/internal/profile"
	"svard/internal/trace"
)

// Fig12Options parameterizes the Fig. 12 sweep: five defenses, with and
// without Svärd (one configuration per representative manufacturer
// profile), across worst-case HCfirst values from 4K down to 64.
type Fig12Options struct {
	Base     Config     // sizing knobs (cores, instructions, module scale)
	Mixes    [][]string // workload mixes (paper: 120)
	NRHs     []float64  // default 4K..64
	Defenses []string   // default all five
	Profiles []string   // default S0, M0, H1
	Workers  int        // max concurrent simulations (<= 0: GOMAXPROCS)
	Progress func(string)
}

// DefaultNRHs returns the paper's swept worst-case HCfirst values.
func DefaultNRHs() []float64 {
	return []float64{4096, 2048, 1024, 512, 256, 128, 64}
}

// Fig12Cell is one point of Fig. 12: a (defense, nRH, configuration)
// with its three metrics averaged over mixes, plus the min-max span the
// paper shades.
type Fig12Cell struct {
	Defense    string
	NRH        float64
	Config     string // "NoSvard", "Svard-S0", "Svard-M0", "Svard-H1"
	WS, HS, MS float64
	WSMin      float64
	WSMax      float64
	Violations uint64
}

// runMetrics is the outcome of one (defense, nRH, module, svard, mix)
// simulation, the atomic unit of the Fig. 12 sweep.
type runMetrics struct {
	ws, hs, ms float64
	violations uint64
}

// RunFig12 executes the sweep and returns cells in (defense, nRH,
// config) order.
//
// The sweep's cells are fully independent simulations, so they are
// fanned out over a deterministic worker pool (see internal/exec):
// baselines first, then every (defense, nRH, module, svard, mix) cell.
// Results are bit-identical for any Workers value, including 1.
func RunFig12(opt Fig12Options) ([]Fig12Cell, error) {
	if len(opt.Mixes) == 0 {
		opt.Mixes = trace.Mixes(4, opt.Base.Cores, opt.Base.Seed)
	}
	if len(opt.NRHs) == 0 {
		opt.NRHs = DefaultNRHs()
	}
	if len(opt.Defenses) == 0 {
		opt.Defenses = DefenseNames
	}
	if len(opt.Profiles) == 0 {
		opt.Profiles = profile.RepresentativeLabels()
	}
	progress := exec.Progress(opt.Progress)

	// Phase 1 — baselines: per (module, mix), defense-free.
	type runKey struct {
		module string
		mix    int
	}
	var baseJobs []runKey
	for _, mod := range opt.Profiles {
		for mi := range opt.Mixes {
			baseJobs = append(baseJobs, runKey{mod, mi})
		}
	}
	baseIPCs, err := exec.Map(opt.Workers, len(baseJobs), func(i int) ([]float64, error) {
		j := baseJobs[i]
		cfg := opt.Base
		cfg.ModuleLabel = j.module
		cfg.Mix = opt.Mixes[j.mix]
		cfg.Defense = "none"
		progress(fmt.Sprintf("baseline %s mix %d", j.module, j.mix))
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		return res.IPC, nil
	})
	if err != nil {
		return nil, err
	}
	baselines := map[runKey][]float64{}
	for i, j := range baseJobs {
		baselines[j] = baseIPCs[i]
	}

	// Phase 2 — the full cell fan-out: one job per
	// (defense, nRH, module, svard, mix) simulation, enumerated in the
	// exact order the serial sweep visits them.
	type cellJob struct {
		defense string
		nrh     float64
		module  string
		svard   bool
		mix     int
	}
	var jobs []cellJob
	for _, defense := range opt.Defenses {
		for _, nrh := range opt.NRHs {
			for _, svard := range []bool{false, true} {
				for _, mod := range opt.Profiles {
					for mi := range opt.Mixes {
						jobs = append(jobs, cellJob{defense, nrh, mod, svard, mi})
					}
				}
			}
		}
	}
	perRun, err := exec.Map(opt.Workers, len(jobs), func(i int) (runMetrics, error) {
		j := jobs[i]
		cfg := opt.Base
		cfg.ModuleLabel = j.module
		cfg.Mix = opt.Mixes[j.mix]
		cfg.Defense = j.defense
		cfg.NRH = j.nrh
		cfg.Svard = j.svard
		name := "NoSvard (" + j.module + ")"
		if j.svard {
			name = "Svard-" + j.module
		}
		progress(fmt.Sprintf("%s nRH=%v %s mix %d", j.defense, j.nrh, name, j.mix))
		res, err := Run(cfg)
		if err != nil {
			return runMetrics{}, err
		}
		base := baselines[runKey{j.module, j.mix}]
		cores := make([]metrics.PerCore, len(res.IPC))
		for c := range cores {
			cores[c] = metrics.PerCore{BaselineIPC: base[c], IPC: res.IPC[c]}
		}
		return runMetrics{
			ws:         metrics.WeightedSpeedup(cores),
			hs:         metrics.HarmonicSpeedup(cores),
			ms:         metrics.MaxSlowdown(cores),
			violations: res.Violations,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3 — fold the per-run metrics back into cells, walking the
	// job list in its (deterministic) enumeration order.
	foldCell := func(defense string, nrh float64, per []runMetrics) Fig12Cell {
		cell := Fig12Cell{Defense: defense, NRH: nrh}
		var wss, hss, mss []float64
		for _, r := range per {
			cell.Violations += r.violations
			wss = append(wss, r.ws)
			hss = append(hss, r.hs)
			mss = append(mss, r.ms)
		}
		cell.WS = mean(wss)
		cell.HS = mean(hss)
		cell.MS = mean(mss)
		cell.WSMin, cell.WSMax = minMax(wss)
		return cell
	}

	nMix := len(opt.Mixes)
	next := 0
	take := func() []runMetrics {
		per := perRun[next : next+nMix]
		next += nMix
		return per
	}
	var cells []Fig12Cell
	for _, defense := range opt.Defenses {
		for _, nrh := range opt.NRHs {
			// No-Svärd: averaged over the three modules' chips (the
			// defense sees only the single worst-case threshold).
			var agg []Fig12Cell
			for range opt.Profiles {
				agg = append(agg, foldCell(defense, nrh, take()))
			}
			cells = append(cells, mergeCells(defense, nrh, "NoSvard", agg))
			for _, mod := range opt.Profiles {
				c := foldCell(defense, nrh, take())
				c.Config = "Svard-" + mod
				cells = append(cells, c)
			}
		}
	}
	return cells, nil
}

func mergeCells(defense string, nrh float64, config string, cs []Fig12Cell) Fig12Cell {
	out := Fig12Cell{Defense: defense, NRH: nrh, Config: config,
		WSMin: math.Inf(1), WSMax: math.Inf(-1)}
	if len(cs) == 0 {
		out.WSMin, out.WSMax = 0, 0
		return out
	}
	for _, c := range cs {
		out.WS += c.WS
		out.HS += c.HS
		out.MS += c.MS
		out.Violations += c.Violations
		if c.WSMin < out.WSMin {
			out.WSMin = c.WSMin
		}
		if c.WSMax > out.WSMax {
			out.WSMax = c.WSMax
		}
	}
	n := float64(len(cs))
	out.WS /= n
	out.HS /= n
	out.MS /= n
	return out
}

// Fig13Cell is one bar of Fig. 13: the slowdown an adversarial access
// pattern causes under a defense configuration, normalized to the
// defense without Svärd.
type Fig13Cell struct {
	Defense      string
	Config       string
	Slowdown     float64 // mean benign-core slowdown vs the no-defense baseline
	RelToNoSvard float64
}

// Fig13Options parameterizes the adversarial evaluation.
type Fig13Options struct {
	Base     Config
	NRH      float64  // paper: 64
	Benign   []string // 7 benign workloads joining the attacker
	Profiles []string
	Workers  int // max concurrent simulations (<= 0: GOMAXPROCS)
	Progress func(string)
}

// RunFig13 evaluates Hydra's and RRS's adversarial access patterns.
// Like RunFig12, the independent runs fan out over the exec pool and
// the result is identical for any Workers value.
func RunFig13(opt Fig13Options) ([]Fig13Cell, error) {
	if opt.NRH == 0 {
		opt.NRH = 64
	}
	if len(opt.Profiles) == 0 {
		opt.Profiles = profile.RepresentativeLabels()
	}
	if len(opt.Benign) == 0 {
		opt.Benign = []string{"mcf06", "lbm06", "ycsb-a", "tpcc", "h264dec", "milc06", "xz17"}
	}
	// Each mix is 1 attacker + the benign workloads; the config must ask
	// for at least one benign core (the slowdown metric averages over
	// them) and no more cores than the mix can fill.
	if opt.Base.Cores < 2 {
		return nil, fmt.Errorf("sim: Fig. 13 needs >= 2 cores (1 attacker + >= 1 benign), got %d", opt.Base.Cores)
	}
	if max := 1 + len(opt.Benign); opt.Base.Cores > max {
		return nil, fmt.Errorf("sim: Fig. 13 mix has %d workloads (1 attacker + %d benign) but the config asks for %d cores; add Benign workloads or lower Cores",
			max, len(opt.Benign), opt.Base.Cores)
	}
	progress := exec.Progress(opt.Progress)

	defenses := []string{"hydra", "rrs"}
	// Per defense: baseline, NoSvard, then one Svärd run per profile —
	// all independent, enumerated as one flat job list.
	type advJob struct {
		defense     string
		module      string
		withDefense bool
		svard       bool
		label       string
	}
	var jobs []advJob
	mod0 := opt.Profiles[0]
	for _, defense := range defenses {
		jobs = append(jobs,
			advJob{defense, mod0, false, false, defense + " baseline"},
			advJob{defense, mod0, true, false, defense + " NoSvard"})
		for _, mod := range opt.Profiles {
			jobs = append(jobs, advJob{defense, mod, true, true, defense + " Svard-" + mod})
		}
	}
	benignIPC, err := exec.Map(opt.Workers, len(jobs), func(i int) (float64, error) {
		j := jobs[i]
		mix := append([]string{"attack:" + j.defense}, opt.Benign...)
		mix = mix[:opt.Base.Cores]
		cfg := opt.Base
		cfg.ModuleLabel = j.module
		cfg.Mix = mix
		cfg.NRH = opt.NRH
		if j.withDefense {
			cfg.Defense = j.defense
			cfg.Svard = j.svard
		} else {
			cfg.Defense = "none"
		}
		progress(j.label)
		res, err := Run(cfg)
		if err != nil {
			return 0, err
		}
		// Mean IPC of the benign cores (core 0 is the attacker).
		sum := 0.0
		for c := 1; c < len(res.IPC); c++ {
			sum += res.IPC[c]
		}
		return sum / float64(len(res.IPC)-1), nil
	})
	if err != nil {
		return nil, err
	}

	var cells []Fig13Cell
	next := 0
	for _, defense := range defenses {
		baseIPC := benignIPC[next]
		noSvIPC := benignIPC[next+1]
		next += 2
		noSv := baseIPC / noSvIPC
		cells = append(cells, Fig13Cell{Defense: defense, Config: "NoSvard", Slowdown: noSv, RelToNoSvard: 1})
		for _, mod := range opt.Profiles {
			sd := baseIPC / benignIPC[next]
			next++
			cells = append(cells, Fig13Cell{
				Defense:      defense,
				Config:       "Svard-" + mod,
				Slowdown:     sd,
				RelToNoSvard: sd / noSv,
			})
		}
	}
	return cells, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minMax(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
