package sim

import (
	"fmt"

	"svard/internal/metrics"
	"svard/internal/profile"
	"svard/internal/trace"
)

// Fig12Options parameterizes the Fig. 12 sweep: five defenses, with and
// without Svärd (one configuration per representative manufacturer
// profile), across worst-case HCfirst values from 4K down to 64.
type Fig12Options struct {
	Base     Config     // sizing knobs (cores, instructions, module scale)
	Mixes    [][]string // workload mixes (paper: 120)
	NRHs     []float64  // default 4K..64
	Defenses []string   // default all five
	Profiles []string   // default S0, M0, H1
	Progress func(string)
}

// DefaultNRHs returns the paper's swept worst-case HCfirst values.
func DefaultNRHs() []float64 {
	return []float64{4096, 2048, 1024, 512, 256, 128, 64}
}

// Fig12Cell is one point of Fig. 12: a (defense, nRH, configuration)
// with its three metrics averaged over mixes, plus the min-max span the
// paper shades.
type Fig12Cell struct {
	Defense    string
	NRH        float64
	Config     string // "NoSvard", "Svard-S0", "Svard-M0", "Svard-H1"
	WS, HS, MS float64
	WSMin      float64
	WSMax      float64
	Violations uint64
}

// RunFig12 executes the sweep and returns cells in (defense, nRH,
// config) order.
func RunFig12(opt Fig12Options) ([]Fig12Cell, error) {
	if len(opt.Mixes) == 0 {
		opt.Mixes = trace.Mixes(4, opt.Base.Cores, opt.Base.Seed)
	}
	if len(opt.NRHs) == 0 {
		opt.NRHs = DefaultNRHs()
	}
	if len(opt.Defenses) == 0 {
		opt.Defenses = DefenseNames
	}
	if len(opt.Profiles) == 0 {
		opt.Profiles = profile.RepresentativeLabels()
	}
	progress := opt.Progress
	if progress == nil {
		progress = func(string) {}
	}

	// Baselines: per (module, mix), defense-free.
	type runKey struct {
		module string
		mix    int
	}
	baselines := map[runKey][]float64{}
	for _, mod := range opt.Profiles {
		for mi, mix := range opt.Mixes {
			cfg := opt.Base
			cfg.ModuleLabel = mod
			cfg.Mix = mix
			cfg.Defense = "none"
			progress(fmt.Sprintf("baseline %s mix %d", mod, mi))
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			baselines[runKey{mod, mi}] = res.IPC
		}
	}

	evalConfig := func(defense string, nrh float64, module string, svard bool) (Fig12Cell, error) {
		cell := Fig12Cell{Defense: defense, NRH: nrh, WSMin: 2}
		var wss, hss, mss []float64
		for mi, mix := range opt.Mixes {
			cfg := opt.Base
			cfg.ModuleLabel = module
			cfg.Mix = mix
			cfg.Defense = defense
			cfg.NRH = nrh
			cfg.Svard = svard
			res, err := Run(cfg)
			if err != nil {
				return cell, err
			}
			cell.Violations += res.Violations
			base := baselines[runKey{module, mi}]
			cores := make([]metrics.PerCore, len(res.IPC))
			for i := range cores {
				cores[i] = metrics.PerCore{BaselineIPC: base[i], IPC: res.IPC[i]}
			}
			wss = append(wss, metrics.WeightedSpeedup(cores))
			hss = append(hss, metrics.HarmonicSpeedup(cores))
			mss = append(mss, metrics.MaxSlowdown(cores))
		}
		cell.WS = mean(wss)
		cell.HS = mean(hss)
		cell.MS = mean(mss)
		cell.WSMin, cell.WSMax = minMax(wss)
		return cell, nil
	}

	var cells []Fig12Cell
	for _, defense := range opt.Defenses {
		for _, nrh := range opt.NRHs {
			// No-Svärd: averaged over the three modules' chips (the
			// defense sees only the single worst-case threshold).
			var agg []Fig12Cell
			for _, mod := range opt.Profiles {
				progress(fmt.Sprintf("%s nRH=%v NoSvard (%s)", defense, nrh, mod))
				c, err := evalConfig(defense, nrh, mod, false)
				if err != nil {
					return nil, err
				}
				agg = append(agg, c)
			}
			cells = append(cells, mergeCells(defense, nrh, "NoSvard", agg))
			for _, mod := range opt.Profiles {
				progress(fmt.Sprintf("%s nRH=%v Svard-%s", defense, nrh, mod))
				c, err := evalConfig(defense, nrh, mod, true)
				if err != nil {
					return nil, err
				}
				c.Config = "Svard-" + mod
				cells = append(cells, c)
			}
		}
	}
	return cells, nil
}

func mergeCells(defense string, nrh float64, config string, cs []Fig12Cell) Fig12Cell {
	out := Fig12Cell{Defense: defense, NRH: nrh, Config: config, WSMin: 2}
	for _, c := range cs {
		out.WS += c.WS
		out.HS += c.HS
		out.MS += c.MS
		out.Violations += c.Violations
		if c.WSMin < out.WSMin {
			out.WSMin = c.WSMin
		}
		if c.WSMax > out.WSMax {
			out.WSMax = c.WSMax
		}
	}
	n := float64(len(cs))
	out.WS /= n
	out.HS /= n
	out.MS /= n
	return out
}

// Fig13Cell is one bar of Fig. 13: the slowdown an adversarial access
// pattern causes under a defense configuration, normalized to the
// defense without Svärd.
type Fig13Cell struct {
	Defense      string
	Config       string
	Slowdown     float64 // mean benign-core slowdown vs the no-defense baseline
	RelToNoSvard float64
}

// Fig13Options parameterizes the adversarial evaluation.
type Fig13Options struct {
	Base     Config
	NRH      float64  // paper: 64
	Benign   []string // 7 benign workloads joining the attacker
	Profiles []string
	Progress func(string)
}

// RunFig13 evaluates Hydra's and RRS's adversarial access patterns.
func RunFig13(opt Fig13Options) ([]Fig13Cell, error) {
	if opt.NRH == 0 {
		opt.NRH = 64
	}
	if len(opt.Profiles) == 0 {
		opt.Profiles = profile.RepresentativeLabels()
	}
	if len(opt.Benign) == 0 {
		opt.Benign = []string{"mcf06", "lbm06", "ycsb-a", "tpcc", "h264dec", "milc06", "xz17"}
	}
	progress := opt.Progress
	if progress == nil {
		progress = func(string) {}
	}
	var cells []Fig13Cell
	for _, defense := range []string{"hydra", "rrs"} {
		mix := append([]string{"attack:" + defense}, opt.Benign...)
		mix = mix[:opt.Base.Cores]
		// Baseline and No-Svärd on the first representative module.
		mod0 := opt.Profiles[0]
		slowdown := func(module string, withDefense, svard bool) (float64, error) {
			cfg := opt.Base
			cfg.ModuleLabel = module
			cfg.Mix = mix
			cfg.NRH = opt.NRH
			if withDefense {
				cfg.Defense = defense
				cfg.Svard = svard
			} else {
				cfg.Defense = "none"
			}
			res, err := Run(cfg)
			if err != nil {
				return 0, err
			}
			// Mean IPC of the benign cores (core 0 is the attacker).
			sum := 0.0
			for i := 1; i < len(res.IPC); i++ {
				sum += res.IPC[i]
			}
			return sum / float64(len(res.IPC)-1), nil
		}
		progress(defense + " baseline")
		baseIPC, err := slowdown(mod0, false, false)
		if err != nil {
			return nil, err
		}
		progress(defense + " NoSvard")
		noSvIPC, err := slowdown(mod0, true, false)
		if err != nil {
			return nil, err
		}
		noSv := baseIPC / noSvIPC
		cells = append(cells, Fig13Cell{Defense: defense, Config: "NoSvard", Slowdown: noSv, RelToNoSvard: 1})
		for _, mod := range opt.Profiles {
			progress(defense + " Svard-" + mod)
			ipc, err := slowdown(mod, true, true)
			if err != nil {
				return nil, err
			}
			sd := baseIPC / ipc
			cells = append(cells, Fig13Cell{
				Defense:      defense,
				Config:       "Svard-" + mod,
				Slowdown:     sd,
				RelToNoSvard: sd / noSv,
			})
		}
	}
	return cells, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minMax(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
