package sim

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"strconv"

	"svard/internal/exec"
	"svard/internal/metrics"
	"svard/internal/obs"
	"svard/internal/population"
	"svard/internal/profile"
	"svard/internal/trace"
)

// Runner executes one simulation of a sweep. RunFig12 and RunFig13 route
// every job through their options' Runner, so a caller can interpose on
// the unit of work — the campaign engine (internal/campaign) injects a
// runner that consults the content-addressed result cache before falling
// back to the simulator. A nil Runner means PooledRun (bit-identical to
// Run, on the process-wide state pool). A Runner must be deterministic
// in its Config (Run and PooledRun are) and safe for concurrent use.
type Runner func(Config) (Result, error)

// Job is one simulation of a sweep's flat job list: the full Config it
// runs plus a human-readable progress label.
type Job struct {
	Label  string
	Config Config
}

// runJobs fans the job list out over the deterministic worker pool,
// routing each job through run (nil: Run). Results come back in job
// order, bit-identical for any worker count. Cancelling ctx stops
// dispatching new jobs; jobs already running finish, so the sweep
// returns within one simulation's latency.
func runJobs(ctx context.Context, workers int, run Runner, progress func(string), jobs []Job) ([]Result, error) {
	if run == nil {
		run = PooledRun
	}
	report := exec.Progress(progress)
	if obs.ProfilingLabelsEnabled() {
		// Attach cell-identity pprof labels around each job so CPU
		// profiles (svard-perf -cpuprofile, svard-served -pprof)
		// attribute samples to the cell that burned them. Off by default:
		// pprof.Do allocates per call, which would break the
		// allocation-flat sweep budget.
		return exec.MapCtx(ctx, workers, len(jobs), func(i int) (res Result, err error) {
			report(jobs[i].Label)
			cfg := &jobs[i].Config
			labels := pprof.Labels(
				"defense", cfg.Defense,
				"nrh", strconv.FormatFloat(cfg.NRH, 'g', -1, 64),
				"module", cfg.ModuleLabel,
				"backend", backendLabel(cfg.Backend),
			)
			pprof.Do(ctx, labels, func(context.Context) {
				res, err = run(jobs[i].Config)
			})
			return res, err
		})
	}
	return exec.MapCtx(ctx, workers, len(jobs), func(i int) (Result, error) {
		report(jobs[i].Label)
		return run(jobs[i].Config)
	})
}

// Fig12Options parameterizes the Fig. 12 sweep: five defenses, with and
// without Svärd (one configuration per representative manufacturer
// profile), across worst-case HCfirst values from 4K down to 64.
type Fig12Options struct {
	Base     Config     // sizing knobs (cores, instructions, module scale)
	Mixes    [][]string // workload mixes (paper: 120)
	NRHs     []float64  // default 4K..64
	Defenses []string   // default all five
	Profiles []string   // default S0, M0, H1
	Backends []string   // memory backends to sweep (default: just Base.Backend)

	// Population, when Size >= 1, sweeps a synthetic Monte Carlo module
	// population instead of the default representative profiles: with
	// Profiles unset, they become the population's labels
	// (pop:<seed>:<index>), one Svärd configuration per sampled chip.
	// This point-estimate path holds every module's tables resident —
	// for confidence bands over large populations use RunPopulation,
	// which streams.
	Population population.Ref

	Workers  int    // max concurrent simulations (<= 0: GOMAXPROCS)
	Runner   Runner // per-job executor (nil: Run); see Runner
	Progress func(string)
}

// fill applies the sweep defaults; it is idempotent, so RunFig12 and
// Fig12Jobs agree on the expansion no matter which is called first.
func (opt Fig12Options) fill() Fig12Options {
	if len(opt.Mixes) == 0 {
		opt.Mixes = trace.Mixes(4, opt.Base.Cores, opt.Base.Seed)
	}
	if len(opt.NRHs) == 0 {
		opt.NRHs = DefaultNRHs()
	}
	if len(opt.Defenses) == 0 {
		opt.Defenses = DefenseNames
	}
	if len(opt.Profiles) == 0 {
		if opt.Population.Size >= 1 {
			opt.Profiles = opt.Population.Labels()
		} else {
			opt.Profiles = profile.RepresentativeLabels()
		}
	}
	if len(opt.Backends) == 0 {
		opt.Backends = []string{opt.Base.Backend}
	}
	return opt
}

// DefaultNRHs returns the paper's swept worst-case HCfirst values.
func DefaultNRHs() []float64 {
	return []float64{4096, 2048, 1024, 512, 256, 128, 64}
}

// Fig12Cell is one point of Fig. 12: a (defense, nRH, configuration)
// with its three metrics averaged over mixes, plus the min-max span the
// paper shades. Backend names the memory backend the cell ran on (empty
// = the DDR4 default, so single-backend sweeps and their fixtures are
// unchanged).
type Fig12Cell struct {
	Defense    string
	NRH        float64
	Config     string // "NoSvard", "Svard-S0", "Svard-M0", "Svard-H1"
	Backend    string `json:",omitempty"`
	WS, HS, MS float64
	WSMin      float64
	WSMax      float64
	Violations uint64
}

// Fig12Jobs expands the sweep into its flat job list, the enumeration
// every execution path shares: per backend, the defense-free baselines
// first (one per (module, mix), module-major), then one job per
// (defense, nRH, svard, module, mix) cell in the exact order the serial
// sweep visits them. The campaign engine uses the same expansion to size
// and checkpoint a campaign before running it.
func Fig12Jobs(opt Fig12Options) []Job {
	opt = opt.fill()
	var jobs []Job
	for _, be := range opt.Backends {
		// Backend labels only appear in multi-backend sweeps, so
		// single-backend job lists (and the campaign journals keyed on
		// them) read exactly as before.
		suffix := ""
		if len(opt.Backends) > 1 {
			suffix = " [" + backendLabel(be) + "]"
		}
		for _, mod := range opt.Profiles {
			for mi := range opt.Mixes {
				cfg := opt.Base
				cfg.Backend = be
				cfg.ModuleLabel = mod
				cfg.Mix = opt.Mixes[mi]
				cfg.Defense = "none"
				jobs = append(jobs, Job{
					Label:  fmt.Sprintf("baseline %s mix %d%s", mod, mi, suffix),
					Config: cfg,
				})
			}
		}
		for _, defense := range opt.Defenses {
			for _, nrh := range opt.NRHs {
				for _, svard := range []bool{false, true} {
					for _, mod := range opt.Profiles {
						for mi := range opt.Mixes {
							cfg := opt.Base
							cfg.Backend = be
							cfg.ModuleLabel = mod
							cfg.Mix = opt.Mixes[mi]
							cfg.Defense = defense
							cfg.NRH = nrh
							cfg.Svard = svard
							name := "NoSvard (" + mod + ")"
							if svard {
								name = "Svard-" + mod
							}
							jobs = append(jobs, Job{
								Label:  fmt.Sprintf("%s nRH=%v %s mix %d%s", defense, nrh, name, mi, suffix),
								Config: cfg,
							})
						}
					}
				}
			}
		}
	}
	return jobs
}

// backendLabel names a backend in progress labels; the empty string is
// the DDR4 default.
func backendLabel(be string) string {
	if be == "" {
		return "ddr4-3200"
	}
	return be
}

// RunFig12 executes the sweep and returns cells in (defense, nRH,
// config) order.
//
// The sweep's cells are fully independent simulations: Fig12Jobs
// enumerates them as one flat list (baselines, then every
// (defense, nRH, module, svard, mix) cell), each job flows through
// opt.Runner (default Run) on the deterministic worker pool, and the
// results fold back into cells by walking the same enumeration. Cells
// are bit-identical for any Workers value and for any Runner that is
// faithful to Run — in particular with the campaign engine's result
// cache cold, warm, or mixed.
func RunFig12(opt Fig12Options) ([]Fig12Cell, error) {
	return RunFig12Ctx(context.Background(), opt)
}

// RunFig12Ctx is RunFig12 with cancellation: once ctx is done no new
// cell starts, in-flight cells finish, and the call returns ctx's cause
// within one cell's latency. A cancelled sweep returns no cells —
// partial figures would silently misrepresent the sweep — but every
// completed cell already flowed through opt.Runner, so a caching runner
// (the campaign engine's) keeps them for the next run.
func RunFig12Ctx(ctx context.Context, opt Fig12Options) ([]Fig12Cell, error) {
	opt = opt.fill()
	jobs := Fig12Jobs(opt)
	results, err := runJobs(ctx, opt.Workers, opt.Runner, opt.Progress, jobs)
	if err != nil {
		return nil, err
	}

	// Per backend segment: the first len(Profiles)*len(Mixes) results are
	// the baselines, in module-major order, then the cells in enumeration
	// order. A single-backend sweep has exactly one segment, so its cells
	// (and fixtures) are unchanged from the pre-backend sweep.
	nMix := len(opt.Mixes)
	perBackend := len(opt.Profiles) * nMix * (1 + len(opt.Defenses)*len(opt.NRHs)*2)

	var cells []Fig12Cell
	for bi, be := range opt.Backends {
		off := bi * perBackend
		baseline := func(modIdx, mixIdx int) []float64 {
			return results[off+modIdx*nMix+mixIdx].IPC
		}
		next := off + len(opt.Profiles)*nMix

		// Fold the per-run results back into cells, walking the job list
		// in its (deterministic) enumeration order.
		foldCell := func(defense string, nrh float64, modIdx int) Fig12Cell {
			cell := Fig12Cell{Defense: defense, NRH: nrh, Backend: be}
			var wss, hss, mss []float64
			for mi := 0; mi < nMix; mi++ {
				res := results[next]
				next++
				base := baseline(modIdx, mi)
				cores := make([]metrics.PerCore, len(res.IPC))
				for c := range cores {
					cores[c] = metrics.PerCore{BaselineIPC: base[c], IPC: res.IPC[c]}
				}
				cell.Violations += res.Violations
				wss = append(wss, metrics.WeightedSpeedup(cores))
				hss = append(hss, metrics.HarmonicSpeedup(cores))
				mss = append(mss, metrics.MaxSlowdown(cores))
			}
			cell.WS = mean(wss)
			cell.HS = mean(hss)
			cell.MS = mean(mss)
			cell.WSMin, cell.WSMax = minMax(wss)
			return cell
		}

		for _, defense := range opt.Defenses {
			for _, nrh := range opt.NRHs {
				// No-Svärd: averaged over the three modules' chips (the
				// defense sees only the single worst-case threshold).
				var agg []Fig12Cell
				for modIdx := range opt.Profiles {
					agg = append(agg, foldCell(defense, nrh, modIdx))
				}
				merged := mergeCells(defense, nrh, "NoSvard", agg)
				merged.Backend = be
				cells = append(cells, merged)
				for modIdx, mod := range opt.Profiles {
					c := foldCell(defense, nrh, modIdx)
					c.Config = "Svard-" + mod
					cells = append(cells, c)
				}
			}
		}
	}
	return cells, nil
}

func mergeCells(defense string, nrh float64, config string, cs []Fig12Cell) Fig12Cell {
	out := Fig12Cell{Defense: defense, NRH: nrh, Config: config,
		WSMin: math.Inf(1), WSMax: math.Inf(-1)}
	if len(cs) == 0 {
		out.WSMin, out.WSMax = 0, 0
		return out
	}
	for _, c := range cs {
		out.WS += c.WS
		out.HS += c.HS
		out.MS += c.MS
		out.Violations += c.Violations
		if c.WSMin < out.WSMin {
			out.WSMin = c.WSMin
		}
		if c.WSMax > out.WSMax {
			out.WSMax = c.WSMax
		}
	}
	n := float64(len(cs))
	out.WS /= n
	out.HS /= n
	out.MS /= n
	return out
}

// Fig13Cell is one bar of Fig. 13: the slowdown an adversarial access
// pattern causes under a defense configuration, normalized to the
// defense without Svärd.
type Fig13Cell struct {
	Defense      string
	Config       string
	Backend      string  `json:",omitempty"` // empty = the DDR4 default
	Slowdown     float64 // mean benign-core slowdown vs the no-defense baseline
	RelToNoSvard float64
}

// Fig13Options parameterizes the adversarial evaluation.
type Fig13Options struct {
	Base     Config
	NRH      float64  // paper: 64
	Benign   []string // 7 benign workloads joining the attacker
	Profiles []string
	Backends []string // memory backends to sweep (default: just Base.Backend)

	// Population, when Size >= 1 and Profiles is unset, evaluates the
	// adversarial patterns over a synthetic module population: one
	// Svärd bar per sampled chip (see Fig12Options.Population).
	Population population.Ref

	Workers  int    // max concurrent simulations (<= 0: GOMAXPROCS)
	Runner   Runner // per-job executor (nil: Run); see Runner
	Progress func(string)
}

// fill applies the adversarial sweep defaults (idempotent).
func (opt Fig13Options) fill() Fig13Options {
	if opt.NRH == 0 {
		opt.NRH = 64
	}
	if len(opt.Profiles) == 0 {
		if opt.Population.Size >= 1 {
			opt.Profiles = opt.Population.Labels()
		} else {
			opt.Profiles = profile.RepresentativeLabels()
		}
	}
	if len(opt.Benign) == 0 {
		opt.Benign = []string{"mcf06", "lbm06", "ycsb-a", "tpcc", "h264dec", "milc06", "xz17"}
	}
	if len(opt.Backends) == 0 {
		opt.Backends = []string{opt.Base.Backend}
	}
	return opt
}

// validate checks the core count against the mix the sweep builds.
func (opt Fig13Options) validate() error {
	// Each mix is 1 attacker + the benign workloads; the config must ask
	// for at least one benign core (the slowdown metric averages over
	// them) and no more cores than the mix can fill.
	if opt.Base.Cores < 2 {
		return fmt.Errorf("sim: Fig. 13 needs >= 2 cores (1 attacker + >= 1 benign), got %d", opt.Base.Cores)
	}
	if max := 1 + len(opt.Benign); opt.Base.Cores > max {
		return fmt.Errorf("sim: Fig. 13 mix has %d workloads (1 attacker + %d benign) but the config asks for %d cores; add Benign workloads or lower Cores",
			max, len(opt.Benign), opt.Base.Cores)
	}
	return nil
}

// fig13Defenses are the defenses with known adversarial patterns: the
// targets trace.AttackTargets declares. Config.generatorFor must build a
// generator for every one of them — adding a target means adding its
// "attack:<target>" case there too; TestAttackTargetsHaveGenerators
// fails until both sides agree.
var fig13Defenses = trace.AttackTargets

// Fig13Jobs expands the adversarial evaluation into its flat job list:
// per backend and defense, the no-defense baseline, the defense without
// Svärd, then one Svärd run per profile — all independent.
func Fig13Jobs(opt Fig13Options) ([]Job, error) {
	opt = opt.fill()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var jobs []Job
	mod0 := opt.Profiles[0]
	for _, be := range opt.Backends {
		suffix := ""
		if len(opt.Backends) > 1 {
			suffix = " [" + backendLabel(be) + "]"
		}
		job := func(defense, module string, withDefense, svard bool, label string) Job {
			mix := append([]string{"attack:" + defense}, opt.Benign...)
			mix = mix[:opt.Base.Cores]
			cfg := opt.Base
			cfg.Backend = be
			cfg.ModuleLabel = module
			cfg.Mix = mix
			cfg.NRH = opt.NRH
			if withDefense {
				cfg.Defense = defense
				cfg.Svard = svard
			} else {
				cfg.Defense = "none"
			}
			return Job{Label: label + suffix, Config: cfg}
		}
		for _, defense := range fig13Defenses {
			jobs = append(jobs,
				job(defense, mod0, false, false, defense+" baseline"),
				job(defense, mod0, true, false, defense+" NoSvard"))
			for _, mod := range opt.Profiles {
				jobs = append(jobs, job(defense, mod, true, true, defense+" Svard-"+mod))
			}
		}
	}
	return jobs, nil
}

// RunFig13 evaluates Hydra's and RRS's adversarial access patterns.
// Like RunFig12, the independent runs flow as a flat job list through
// opt.Runner over the exec pool, and the cells are identical for any
// Workers value and any Runner faithful to Run.
func RunFig13(opt Fig13Options) ([]Fig13Cell, error) {
	return RunFig13Ctx(context.Background(), opt)
}

// RunFig13Ctx is RunFig13 with cancellation, with the same contract as
// RunFig12Ctx.
func RunFig13Ctx(ctx context.Context, opt Fig13Options) ([]Fig13Cell, error) {
	opt = opt.fill()
	jobs, err := Fig13Jobs(opt)
	if err != nil {
		return nil, err
	}
	results, err := runJobs(ctx, opt.Workers, opt.Runner, opt.Progress, jobs)
	if err != nil {
		return nil, err
	}

	// Mean IPC of the benign cores (core 0 is the attacker).
	benignIPC := make([]float64, len(results))
	for i, res := range results {
		sum := 0.0
		for c := 1; c < len(res.IPC); c++ {
			sum += res.IPC[c]
		}
		benignIPC[i] = sum / float64(len(res.IPC)-1)
	}

	var cells []Fig13Cell
	next := 0
	for _, be := range opt.Backends {
		for _, defense := range fig13Defenses {
			baseIPC := benignIPC[next]
			noSvIPC := benignIPC[next+1]
			next += 2
			noSv := baseIPC / noSvIPC
			cells = append(cells, Fig13Cell{Defense: defense, Config: "NoSvard", Backend: be, Slowdown: noSv, RelToNoSvard: 1})
			for _, mod := range opt.Profiles {
				sd := baseIPC / benignIPC[next]
				next++
				cells = append(cells, Fig13Cell{
					Defense:      defense,
					Config:       "Svard-" + mod,
					Backend:      be,
					Slowdown:     sd,
					RelToNoSvard: sd / noSv,
				})
			}
		}
	}
	return cells, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minMax(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
