package sim

import (
	"context"
	"fmt"

	"svard/internal/metrics"
	"svard/internal/population"
	"svard/internal/trace"
)

// PopulationOptions parameterizes the Monte Carlo Fig. 12-style sweep:
// the Fig. 12 (defense, nRH) grid evaluated over a synthetic module
// population instead of the three representative Table 5 profiles, with
// each module's weighted speedup folded into per-(defense, nRH)
// confidence bands.
type PopulationOptions struct {
	Base       Config
	Population population.Ref // required: Size >= 1
	Mixes      [][]string     // workload mixes per module (default: 4 drawn)
	NRHs       []float64      // default 4K..64
	Defenses   []string       // default all five

	// Chunk bounds how many modules are resident at once: each chunk's
	// cells run, fold into the band accumulators, and the chunk's
	// calibrated module tables are evicted before the next chunk starts,
	// so a 10K-chip sweep holds a constant number of modules in memory.
	// Chunking is invisible in the results — cells fold in module order
	// regardless — so Chunk is a memory knob, never an axis of the
	// outcome. Default 16.
	Chunk int

	Workers  int    // max concurrent simulations (<= 0: GOMAXPROCS)
	Runner   Runner // per-job executor (nil: Run); see Runner
	Progress func(string)
}

// fill applies the sweep defaults (idempotent).
func (opt PopulationOptions) fill() PopulationOptions {
	if len(opt.Mixes) == 0 {
		opt.Mixes = trace.Mixes(4, opt.Base.Cores, opt.Base.Seed)
	}
	if len(opt.NRHs) == 0 {
		opt.NRHs = DefaultNRHs()
	}
	if len(opt.Defenses) == 0 {
		opt.Defenses = DefenseNames
	}
	if opt.Chunk <= 0 {
		opt.Chunk = 16
	}
	return opt
}

func (opt PopulationOptions) validate() error {
	if opt.Population.Size < 1 {
		return fmt.Errorf("sim: population sweep needs Population.Size >= 1, got %d", opt.Population.Size)
	}
	return nil
}

// Population band configurations: the defense assuming the single
// worst-case threshold, and the defense with Svärd's per-row profile.
const (
	BandNoSvard = "NoSvard"
	BandSvard   = "Svard"
)

// BandCell is one point of the population sweep: a (defense, nRH,
// config) with the distribution of each Fig. 12 metric over the sampled
// modules. Violations sums observed bitflips across the population's
// runs.
type BandCell struct {
	Defense    string
	NRH        float64
	Config     string // BandNoSvard or BandSvard
	Modules    int    // population size folded in
	WS, HS, MS population.Band
	Violations uint64
}

// populationModuleJobs enumerates one module's flat job list: the
// defense-free baseline per mix, then one job per (defense, nRH, svard,
// mix) in the exact order foldModule consumes results.
func populationModuleJobs(opt PopulationOptions, index int) []Job {
	label := population.Label(opt.Population.Seed, index)
	var jobs []Job
	for mi := range opt.Mixes {
		cfg := opt.Base
		cfg.ModuleLabel = label
		cfg.Mix = opt.Mixes[mi]
		cfg.Defense = "none"
		jobs = append(jobs, Job{
			Label:  fmt.Sprintf("baseline %s mix %d", label, mi),
			Config: cfg,
		})
	}
	for _, defense := range opt.Defenses {
		for _, nrh := range opt.NRHs {
			for _, svard := range []bool{false, true} {
				for mi := range opt.Mixes {
					cfg := opt.Base
					cfg.ModuleLabel = label
					cfg.Mix = opt.Mixes[mi]
					cfg.Defense = defense
					cfg.NRH = nrh
					cfg.Svard = svard
					name := BandNoSvard
					if svard {
						name = BandSvard
					}
					jobs = append(jobs, Job{
						Label:  fmt.Sprintf("%s nRH=%v %s %s mix %d", defense, nrh, name, label, mi),
						Config: cfg,
					})
				}
			}
		}
	}
	return jobs
}

// PopulationJobs expands the sweep into its flat, module-major job
// list — the enumeration RunPopulation executes chunk by chunk, and the
// campaign engine uses to size and checkpoint a population campaign
// before running it.
func PopulationJobs(opt PopulationOptions) ([]Job, error) {
	opt = opt.fill()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	var jobs []Job
	for i := 0; i < opt.Population.Size; i++ {
		jobs = append(jobs, populationModuleJobs(opt, i)...)
	}
	return jobs, nil
}

// bandAcc accumulates one (defense, nRH, config) cell's distributions.
type bandAcc struct {
	ws, hs, ms *population.Acc
	violations uint64
}

// Band accumulator shape: Fig. 12's metrics are speedups near 1 and max
// slowdowns rarely past a few x, so [0, 8) at 8192 bins gives ~1e-3
// quantile resolution; outliers clamp into the edge bins while their
// exact min/max still report.
func newBandAcc() bandAcc {
	return bandAcc{
		ws: population.NewAcc(0, 8, 8192),
		hs: population.NewAcc(0, 8, 8192),
		ms: population.NewAcc(0, 8, 8192),
	}
}

// RunPopulation executes the Monte Carlo sweep and returns band cells
// in (defense, nRH, config) order — the population analogue of
// RunFig12's point estimates.
//
// The sweep streams: modules are evaluated Chunk at a time, each
// module's per-mix results fold into its three per-config metrics
// (weighted/harmonic speedup and max slowdown against the module's own
// no-defense baseline, averaged over mixes, exactly like Fig. 12's
// fold), the metrics feed order-independent histogram accumulators, and
// the chunk's calibrated module tables are evicted before the next
// chunk begins. Memory is O(Chunk + bins) for any population size.
// Bands are bit-identical for any Workers and Chunk value, and for any
// Runner faithful to Run — in particular the campaign engine's caching
// runner, cold, warm, or mid-resume.
func RunPopulation(opt PopulationOptions) ([]BandCell, error) {
	return RunPopulationCtx(context.Background(), opt)
}

// RunPopulationCtx is RunPopulation with cancellation, under the same
// contract as RunFig12Ctx: a cancelled sweep returns no cells, but
// every completed cell already flowed through opt.Runner, so a caching
// runner keeps them for the resume.
func RunPopulationCtx(ctx context.Context, opt PopulationOptions) ([]BandCell, error) {
	opt = opt.fill()
	if err := opt.validate(); err != nil {
		return nil, err
	}

	nMix := len(opt.Mixes)
	nCfg := 2 // NoSvard, Svard
	accs := make([]bandAcc, len(opt.Defenses)*len(opt.NRHs)*nCfg)
	for i := range accs {
		accs[i] = newBandAcc()
	}

	// foldModule consumes one module's results in populationModuleJobs
	// order: baselines first, then (defense, nRH, svard, mix).
	foldModule := func(results []Result) {
		next := nMix
		acc := 0
		for range opt.Defenses {
			for range opt.NRHs {
				for cfgIdx := 0; cfgIdx < nCfg; cfgIdx++ {
					var wss, hss, mss []float64
					for mi := 0; mi < nMix; mi++ {
						res := results[next]
						next++
						base := results[mi].IPC
						cores := make([]metrics.PerCore, len(res.IPC))
						for c := range cores {
							cores[c] = metrics.PerCore{BaselineIPC: base[c], IPC: res.IPC[c]}
						}
						accs[acc+cfgIdx].violations += res.Violations
						wss = append(wss, metrics.WeightedSpeedup(cores))
						hss = append(hss, metrics.HarmonicSpeedup(cores))
						mss = append(mss, metrics.MaxSlowdown(cores))
					}
					accs[acc+cfgIdx].ws.Add(mean(wss))
					accs[acc+cfgIdx].hs.Add(mean(hss))
					accs[acc+cfgIdx].ms.Add(mean(mss))
				}
				acc += nCfg
			}
		}
	}

	perModule := nMix * (1 + len(opt.Defenses)*len(opt.NRHs)*nCfg)
	for start := 0; start < opt.Population.Size; start += opt.Chunk {
		end := start + opt.Chunk
		if end > opt.Population.Size {
			end = opt.Population.Size
		}
		var jobs []Job
		for i := start; i < end; i++ {
			jobs = append(jobs, populationModuleJobs(opt, i)...)
		}
		results, err := runJobs(ctx, opt.Workers, opt.Runner, opt.Progress, jobs)
		if err != nil {
			return nil, err
		}
		for i := start; i < end; i++ {
			foldModule(results[(i-start)*perModule : (i-start+1)*perModule])
			dropCachedModule(population.Label(opt.Population.Seed, i))
		}
	}

	cells := make([]BandCell, 0, len(accs))
	acc := 0
	for _, defense := range opt.Defenses {
		for _, nrh := range opt.NRHs {
			for cfgIdx := 0; cfgIdx < nCfg; cfgIdx++ {
				name := BandNoSvard
				if cfgIdx == 1 {
					name = BandSvard
				}
				a := accs[acc]
				acc++
				cells = append(cells, BandCell{
					Defense:    defense,
					NRH:        nrh,
					Config:     name,
					Modules:    a.ws.N(),
					WS:         a.ws.Band(),
					HS:         a.hs.Band(),
					MS:         a.ms.Band(),
					Violations: a.violations,
				})
			}
		}
	}
	return cells, nil
}
