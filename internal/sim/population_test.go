package sim

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"svard/internal/population"
)

func tinyPopulationOptions(size int) PopulationOptions {
	base := tinyBase()
	base.Cores = 1
	base.InstrPerCore = 8_000
	base.WarmupPerCore = 1_000
	return PopulationOptions{
		Base:       base,
		Population: population.Ref{Seed: 1, Size: size},
		Mixes:      [][]string{{"mcf06"}},
		NRHs:       []float64{64},
		Defenses:   []string{"rrs"},
	}
}

func TestPopulationJobsShape(t *testing.T) {
	opt := tinyPopulationOptions(3)
	opt.NRHs = []float64{2048, 64}
	jobs, err := PopulationJobs(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Per module: one baseline per mix, then (defenses x nrhs x 2 configs)
	// per mix.
	perModule := 1 * (1 + 1*2*2)
	if len(jobs) != 3*perModule {
		t.Fatalf("jobs = %d, want %d", len(jobs), 3*perModule)
	}
	for _, j := range jobs {
		if !strings.HasPrefix(j.Config.ModuleLabel, population.LabelPrefix) {
			t.Fatalf("job %q targets module %q", j.Label, j.Config.ModuleLabel)
		}
	}
	if _, err := PopulationJobs(PopulationOptions{Base: tinyBase()}); err == nil {
		t.Error("empty population accepted")
	}
}

func TestPopulationBandShapes(t *testing.T) {
	opt := tinyPopulationOptions(4)
	cells, err := RunPopulation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 { // 1 defense x 1 nRH x {NoSvard, Svard}
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Modules != 4 {
			t.Errorf("%s: folded %d modules, want 4", c.Config, c.Modules)
		}
		for name, b := range map[string]population.Band{"WS": c.WS, "HS": c.HS, "MS": c.MS} {
			if b.N != 4 {
				t.Errorf("%s %s: n = %d", c.Config, name, b.N)
			}
			if !(b.Min <= b.P5 && b.P5 <= b.P50 && b.P50 <= b.P95 && b.P95 <= b.Max) {
				t.Errorf("%s %s: quantiles unordered: %+v", c.Config, name, b)
			}
		}
		if c.WS.Mean <= 0 || c.WS.Mean > 1.2 {
			t.Errorf("%s: WS mean = %v", c.Config, c.WS.Mean)
		}
		if c.Violations != 0 {
			t.Errorf("%s: %d bitflips under the defense", c.Config, c.Violations)
		}
	}
}

// TestPopulationBandsOrderIndependent is the tentpole invariant: the
// confidence bands are bit-identical for any Workers and Chunk value.
func TestPopulationBandsOrderIndependent(t *testing.T) {
	want, err := RunPopulation(tinyPopulationOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range []struct {
		workers, chunk int
	}{{4, 2}, {2, 7}, {3, 1}} {
		opt := tinyPopulationOptions(5)
		opt.Workers = alt.workers
		opt.Chunk = alt.chunk
		got, err := RunPopulation(opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("bands differ at workers=%d chunk=%d:\n%+v\n%+v",
				alt.workers, alt.chunk, want, got)
		}
	}
}

func TestPopulationSweepEvictsModules(t *testing.T) {
	opt := tinyPopulationOptions(3)
	opt.Chunk = 2
	if _, err := RunPopulation(opt); err != nil {
		t.Fatal(err)
	}
	// The sweep's synthetic modules must not stay resident: 10K chips
	// would pin tens of gigabytes of per-row tables.
	var leaked []string
	moduleCache.Range(func(k, _ any) bool {
		if strings.HasPrefix(k.(string), population.LabelPrefix) {
			leaked = append(leaked, k.(string))
		}
		return true
	})
	if len(leaked) > 0 {
		t.Fatalf("population modules still cached after the sweep: %v", leaked)
	}
}

// TestPopulationSweepParallelSmoke drives a larger population through the
// parallel path; under -race it doubles as the data-race smoke for the
// chunked fold + eviction machinery.
func TestPopulationSweepParallelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("population smoke is not short")
	}
	opt := tinyPopulationOptions(64)
	opt.Base.RowsPerBank = 512
	opt.Base.CellsPerRow = 512
	opt.Base.InstrPerCore = 4_000
	opt.Base.WarmupPerCore = 500
	opt.Workers = 4
	opt.Chunk = 16
	var mu sync.Mutex
	seen := 0
	opt.Progress = func(string) { mu.Lock(); seen++; mu.Unlock() }
	cells, err := RunPopulation(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Modules != 64 {
			t.Errorf("%s: folded %d modules, want 64", c.Config, c.Modules)
		}
	}
	if seen == 0 {
		t.Error("progress callback never fired")
	}
}
