package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestRunFig12ParallelMatchesSerial is the determinism contract of the
// exec-pool refactor: a parallel sweep must be cell-for-cell identical
// to Workers=1.
func TestRunFig12ParallelMatchesSerial(t *testing.T) {
	opt := Fig12Options{
		Base:     tinyBase(),
		Mixes:    [][]string{{"mcf06", "ycsb-a"}, {"lbm06", "tpcc"}},
		NRHs:     []float64{1024, 64},
		Defenses: []string{"para", "rrs"},
		Profiles: []string{"S0"},
	}
	opt.Workers = 1
	serial, err := RunFig12(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	parallel, err := RunFig12(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel cells differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

func TestRunFig13ParallelMatchesSerial(t *testing.T) {
	opt := Fig13Options{
		Base:     tinyBase(),
		NRH:      64,
		Benign:   []string{"mcf06"},
		Profiles: []string{"S0"},
	}
	opt.Workers = 1
	serial, err := RunFig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	parallel, err := RunFig13(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel cells differ from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestRunFig12PropagatesRunErrors checks a failing cell surfaces as an
// error (not a panic or a silent zero cell) through the pool.
func TestRunFig12PropagatesRunErrors(t *testing.T) {
	_, err := RunFig12(Fig12Options{
		Base:     tinyBase(),
		Mixes:    [][]string{{"no-such-workload", "ycsb-a"}},
		NRHs:     []float64{64},
		Defenses: []string{"rrs"},
		Profiles: []string{"S0"},
		Workers:  4,
	})
	if err == nil {
		t.Fatal("expected error for unknown workload")
	}
	if !strings.Contains(err.Error(), "no-such-workload") {
		t.Fatalf("error %q does not name the bad workload", err)
	}
}

// TestRunFig13CoreValidation: the seed code panicked on
// mix[:Cores] for Cores > 8 and divided by zero benign cores for
// Cores = 1; both must be descriptive errors instead.
func TestRunFig13CoreValidation(t *testing.T) {
	base := tinyBase()
	base.Cores = 12
	if _, err := RunFig13(Fig13Options{Base: base}); err == nil {
		t.Error("Cores=12 with 7 benign workloads: expected error, got nil")
	} else if !strings.Contains(err.Error(), "12 cores") {
		t.Errorf("error %q does not describe the core count", err)
	}

	base.Cores = 1
	if _, err := RunFig13(Fig13Options{Base: base}); err == nil {
		t.Error("Cores=1: expected error, got nil")
	}

	base.Cores = 0
	if _, err := RunFig13(Fig13Options{Base: base}); err == nil {
		t.Error("Cores=0: expected error, got nil")
	}
}

// TestMergeCellsHighSpeedupMin: the seed initialized WSMin with the
// sentinel 2, so any cell whose minimum weighted speedup exceeded 2
// reported a wrong minimum.
func TestMergeCellsHighSpeedupMin(t *testing.T) {
	cells := []Fig12Cell{
		{WS: 3, WSMin: 2.5, WSMax: 3.5},
		{WS: 4, WSMin: 3.0, WSMax: 5.0},
	}
	out := mergeCells("rrs", 64, "NoSvard", cells)
	if out.WSMin != 2.5 {
		t.Errorf("WSMin = %v, want 2.5 (sentinel bug)", out.WSMin)
	}
	if out.WSMax != 5.0 {
		t.Errorf("WSMax = %v, want 5.0", out.WSMax)
	}
	if out.WS != 3.5 {
		t.Errorf("WS = %v, want 3.5", out.WS)
	}

	empty := mergeCells("rrs", 64, "NoSvard", nil)
	if math.IsInf(empty.WSMin, 0) || math.IsInf(empty.WSMax, 0) || math.IsNaN(empty.WS) {
		t.Errorf("empty merge not sanitized: %+v", empty)
	}
}
