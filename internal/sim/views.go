package sim

import (
	"math"

	"svard/internal/rowtab"
	"svard/internal/temporal"
)

// This file splits the per-row HCfirst truth into two explicit views:
//
//   - calibrationView: the per-row thresholds as they were measured when
//     the defense was configured — what every defense and the Svärd
//     remapping read. It is frozen at run start: core.Thresholds,
//     profile scaling, and all defense state derive from it and never
//     see temporal variation. That defenses read ONLY this view is a
//     contract, not an accident; TestTemporalMovesOnlyViolations pins it
//     by asserting a temporal run's performance-side results are
//     bit-identical to the static run's.
//
//   - liveView: the ground truth the security tracker checks accruals
//     against. For a static run it IS the calibration view (same
//     numbers, same code path, zero overhead). With a temporal process
//     attached it drifts under the defense's feet: per-row thresholds
//     are resampled at epoch boundaries from the process, so a defense
//     that was safe at calibration time can be violated at attack time.
//     The gap between the two views is exactly what the margin-erosion
//     sweep (erosion.go) quantifies.

// calibrationView is the frozen calibration-time threshold table:
// unscaled true HCfirst per flat [bank*rows+row] index plus the §7.1
// profile scaling factor, both fixed at run start.
type calibrationView struct {
	hcBase []float64 // unscaled true HCfirst per [bank*rows+row], from buildModule
	factor float64   // profile scaling factor (§7.1 future-chip scaling)
}

// hcFirst returns the calibration-time scaled threshold for idx.
func (v *calibrationView) hcFirst(idx int) float32 {
	h := float32(v.hcBase[idx] * v.factor)
	if h == 0 {
		h = math.SmallestNonzeroFloat32
	}
	return h
}

// liveView is the ground-truth threshold table. epochLen == 0 means
// static: the live view delegates straight to the calibration view and
// touches nothing else (the pre-temporal hot path, bit- and
// allocation-identical). With a process attached, hcFirst multiplies
// the calibration threshold by the process factor for the current
// epoch, memoized per row in an epoch-tagged paged table so pooled
// temporal runs stay allocation-flat after warmup.
type liveView struct {
	calib calibrationView
	rows  int // rows per bank: idx = bank*rows + row

	proc     temporal.Process
	epochLen uint64 // cycles per epoch; 0 = static (no process)
	epoch    uint64 // current in-run epoch number
	nextEdge uint64 // first cycle of the next epoch
	advances uint64 // epoch edges crossed this run (flight-recorder counter)

	// memo caches the live threshold per row for the current epoch:
	// (epoch+1)<<32 | float32bits(threshold). The tag makes stale
	// entries from earlier epochs (or, after a Clear, earlier runs)
	// self-invalidating, and the zero value is never a valid entry, so
	// rowtab's zero=absent contract holds. Allocated lazily on the
	// first temporal run of an arena; static runs never touch it.
	memo *rowtab.Table[uint64]
}

// reset returns the view to the static state newSecTracker produces:
// no process, no epoch structure, memo cleared (retaining pages for the
// next temporal run on this arena).
func (v *liveView) reset(hcBase []float64, factor float64, rows int) {
	v.calib = calibrationView{hcBase: hcBase, factor: factor}
	v.rows = rows
	v.proc = temporal.Process{}
	v.epochLen = 0
	v.epoch = 0
	v.nextEdge = ^uint64(0)
	v.advances = 0
	if v.memo != nil {
		v.memo.Clear()
	}
}

// start attaches a temporal process: the view begins at epoch 0 with
// the first edge one epoch length away. n is the flat key-space size
// (banks*rows) the memo must cover.
func (v *liveView) start(proc temporal.Process, epochCycles uint64, n int) {
	v.proc = proc
	v.epochLen = epochCycles
	v.epoch = 0
	v.nextEdge = epochCycles
	if v.memo == nil {
		v.memo = rowtab.New[uint64](int64(n))
	} else {
		v.memo.Resize(int64(n))
	}
}

// tickEpoch advances the view to cycle's epoch. Both engine loops call
// it at the top of every ticked cycle; for static runs it is a single
// predictable branch.
func (v *liveView) tickEpoch(cycle uint64) {
	for v.epochLen != 0 && cycle >= v.nextEdge {
		v.epoch++
		v.advances++
		v.nextEdge += v.epochLen
	}
}

// nextEvent returns the next epoch edge — the bound the event engine
// folds into its skip computation so cycle-skipping never jumps over an
// epoch boundary (MaxUint64 when static).
func (v *liveView) nextEvent() uint64 { return v.nextEdge }

// hcFirst returns the live (ground-truth) threshold for idx at the
// current epoch.
func (v *liveView) hcFirst(idx int) float32 {
	if v.epochLen == 0 {
		return v.calib.hcFirst(idx)
	}
	tag := (v.epoch + 1) << 32
	if e := v.memo.Get(int64(idx)); e>>32 == v.epoch+1 {
		return math.Float32frombits(uint32(e))
	}
	bank, row := idx/v.rows, idx%v.rows
	h := float32(v.calib.hcBase[idx] * v.calib.factor * v.proc.Factor(bank, row, v.epoch))
	if h <= 0 {
		// A drifted threshold can underflow to 0; keep the same
		// never-zero guard as the calibration view so accrual
		// comparisons stay well-defined.
		h = math.SmallestNonzeroFloat32
	}
	v.memo.Set(int64(idx), tag|uint64(math.Float32bits(h)))
	return h
}
