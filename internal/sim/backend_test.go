package sim

import (
	"reflect"
	"strings"
	"testing"
)

// TestConfigValidateBackend: the validation entry the campaign spec and
// the server submit path use must accept every preset (and the empty
// alias) and reject unknown names with the presets listed.
func TestConfigValidateBackend(t *testing.T) {
	for _, be := range []string{"", "ddr4-3200", "hbm2"} {
		cfg := DefaultConfig()
		cfg.Backend = be
		if err := cfg.Validate(); err != nil {
			t.Errorf("backend %q rejected: %v", be, err)
		}
	}
	cfg := DefaultConfig()
	cfg.Backend = "lpddr5"
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unknown backend validated")
	}
	if !strings.Contains(err.Error(), "hbm2") {
		t.Errorf("error %q does not list the available presets", err)
	}
}

// TestRunUnknownBackendErrors: an invalid backend must surface as an
// error from Run (and the pooled path), never a panic mid-build.
func TestRunUnknownBackendErrors(t *testing.T) {
	cfg := diffBase()
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	cfg.Backend = "gddr6"
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an unknown backend")
	}
	if _, err := PooledRun(cfg); err == nil {
		t.Error("PooledRun accepted an unknown backend")
	}
}

// TestBackendEmptyEqualsDDR4 pins the aliasing end to end: a run with
// Backend "" and one naming "ddr4-3200" explicitly are the same
// simulation, bit for bit.
func TestBackendEmptyEqualsDDR4(t *testing.T) {
	cfg := diffBase()
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	cfg.Defense = "para"
	implicit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backend = "ddr4-3200"
	explicit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(implicit, explicit) {
		t.Errorf("empty backend diverged from ddr4-3200:\nimplicit: %+v\nexplicit: %+v", implicit, explicit)
	}
}

// TestHBM2SpreadsTraffic sanity-checks the channel router: on the HBM2
// preset every pseudo channel must see demand traffic (a router that
// folds everything onto channel 0 passes the differential tests, which
// only compare the two engines against each other).
func TestHBM2SpreadsTraffic(t *testing.T) {
	cfg := diffBase()
	cfg.Backend = "hbm2"
	cfg.Mix = []string{"mcf06", "ycsb-a"}
	m, err := newMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.mcs) != 4 {
		t.Fatalf("hbm2 machine has %d controllers, want 4 (2 channels x 2 pseudo channels)", len(m.mcs))
	}
	if _, finished := m.runSkip(cfg.MaxCycles); !finished {
		t.Fatalf("hbm2 run did not finish in %d cycles", cfg.MaxCycles)
	}
	for ch, mc := range m.mcs {
		if mc.Stats.Reads == 0 {
			t.Errorf("pseudo channel %d served no reads; router is not spreading traffic", ch)
		}
	}
}
