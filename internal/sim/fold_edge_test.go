package sim

import (
	"math"
	"testing"
)

// sameFloat compares exactly, treating NaN as equal to NaN.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

func TestMeanEdgeCases(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	for _, tc := range []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"empty-slice", []float64{}, 0},
		{"single", []float64{3.25}, 3.25},
		{"pair", []float64{1, 3}, 2},
		{"nan-poisons", []float64{1, nan, 3}, nan},
		{"plus-inf", []float64{1, inf}, inf},
		{"minus-inf", []float64{1, -inf}, -inf},
		{"inf-cancel", []float64{inf, -inf}, nan},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := mean(tc.in); !sameFloat(got, tc.want) {
				t.Errorf("mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestMinMaxEdgeCases(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	for _, tc := range []struct {
		name   string
		in     []float64
		lo, hi float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{1.5}, 1.5, 1.5},
		{"ordered", []float64{1, 2, 3}, 1, 3},
		{"reversed", []float64{3, 2, 1}, 1, 3},
		{"infinities", []float64{1, inf, -inf}, -inf, inf},
		// NaN after the first element loses every comparison and is
		// skipped; real extremes still track.
		{"nan-later", []float64{2, nan, 1, 3}, 1, 3},
		// A leading NaN also loses every comparison, so it sticks as
		// both bounds — documented behavior, not a target.
		{"nan-first", []float64{nan, 1, 3}, nan, nan},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi := minMax(tc.in)
			if !sameFloat(lo, tc.lo) || !sameFloat(hi, tc.hi) {
				t.Errorf("minMax(%v) = %v, %v, want %v, %v", tc.in, lo, hi, tc.lo, tc.hi)
			}
		})
	}
}

func TestMergeCellsEdgeCases(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cell := func(ws, hs, ms, lo, hi float64, v uint64) Fig12Cell {
		return Fig12Cell{Defense: "rrs", NRH: 64, WS: ws, HS: hs, MS: ms, WSMin: lo, WSMax: hi, Violations: v}
	}
	for _, tc := range []struct {
		name string
		in   []Fig12Cell
		want Fig12Cell
	}{
		{
			// The previously untested path: no cells must fold to a
			// finite zero cell, not an Inf-seeded span.
			name: "empty",
			in:   nil,
			want: Fig12Cell{Defense: "rrs", NRH: 64, Config: "NoSvard"},
		},
		{
			name: "single-cell-identity",
			in:   []Fig12Cell{cell(0.8, 0.7, 1.3, 0.6, 0.9, 2)},
			want: Fig12Cell{Defense: "rrs", NRH: 64, Config: "NoSvard", WS: 0.8, HS: 0.7, MS: 1.3, WSMin: 0.6, WSMax: 0.9, Violations: 2},
		},
		{
			name: "averages-and-span-union",
			in:   []Fig12Cell{cell(0.5, 0.4, 2, 0.4, 0.6, 1), cell(0.9, 0.8, 1, 0.3, 1.1, 2)},
			want: Fig12Cell{Defense: "rrs", NRH: 64, Config: "NoSvard", WS: 0.7, HS: 0.6000000000000001, MS: 1.5, WSMin: 0.3, WSMax: 1.1, Violations: 3},
		},
		{
			name: "inf-metric-propagates",
			in:   []Fig12Cell{cell(inf, 0.5, 1, 0.4, 0.6, 0), cell(1, 0.5, 1, 0.4, 0.6, 0)},
			want: Fig12Cell{Defense: "rrs", NRH: 64, Config: "NoSvard", WS: inf, HS: 0.5, MS: 1, WSMin: 0.4, WSMax: 0.6},
		},
		{
			name: "nan-metric-poisons-mean-not-span",
			in:   []Fig12Cell{cell(nan, 0.5, 1, nan, nan, 0), cell(1, 0.5, 1, 0.4, 0.6, 0)},
			want: Fig12Cell{Defense: "rrs", NRH: 64, Config: "NoSvard", WS: nan, HS: 0.5, MS: 1, WSMin: 0.4, WSMax: 0.6},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := mergeCells("rrs", 64, "NoSvard", tc.in)
			if got.Defense != tc.want.Defense || got.NRH != tc.want.NRH || got.Config != tc.want.Config ||
				got.Violations != tc.want.Violations ||
				!sameFloat(got.WS, tc.want.WS) || !sameFloat(got.HS, tc.want.HS) || !sameFloat(got.MS, tc.want.MS) ||
				!sameFloat(got.WSMin, tc.want.WSMin) || !sameFloat(got.WSMax, tc.want.WSMax) {
				t.Errorf("mergeCells(%v)\n got %+v\nwant %+v", tc.in, got, tc.want)
			}
		})
	}
}
