package sim

import "testing"

func tinyBase() Config {
	base := DefaultConfig()
	base.Cores = 2
	base.RowsPerBank = 2048
	base.CellsPerRow = 2048
	base.InstrPerCore = 20_000
	base.WarmupPerCore = 4_000
	return base
}

func TestRunFig12ShapesHold(t *testing.T) {
	cells, err := RunFig12(Fig12Options{
		Base:     tinyBase(),
		Mixes:    [][]string{{"mcf06", "ycsb-a"}},
		NRHs:     []float64{2048, 64},
		Defenses: []string{"rrs"},
		Profiles: []string{"S0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig12Cell{}
	for _, c := range cells {
		byKey[c.Config+"@"+itoa(int(c.NRH))] = c
		if c.Violations != 0 {
			t.Errorf("%s@%v: %d bitflips", c.Config, c.NRH, c.Violations)
		}
		if c.WS <= 0 || c.WS > 1.2 {
			t.Errorf("%s@%v: WS = %v", c.Config, c.NRH, c.WS)
		}
		if c.HS > c.WS+1e-9 {
			t.Errorf("%s@%v: HS %v above WS %v", c.Config, c.NRH, c.HS, c.WS)
		}
		if c.WSMin > c.WS+1e-9 || c.WSMax < c.WS-1e-9 {
			t.Errorf("%s@%v: span does not bracket mean", c.Config, c.NRH)
		}
	}
	// Obsv. 14: Svärd improves the defense at low thresholds, and the
	// overhead grows as the threshold shrinks.
	no64, sv64 := byKey["NoSvard@64"], byKey["Svard-S0@64"]
	if sv64.WS <= no64.WS {
		t.Errorf("Svärd did not help at 64: %v vs %v", sv64.WS, no64.WS)
	}
	no2k := byKey["NoSvard@2048"]
	if no64.WS >= no2k.WS {
		t.Errorf("overhead did not grow toward low thresholds: %v vs %v", no64.WS, no2k.WS)
	}
}

func TestRunFig13Shapes(t *testing.T) {
	cells, err := RunFig13(Fig13Options{
		Base:     tinyBase(),
		NRH:      64,
		Benign:   []string{"mcf06"},
		Profiles: []string{"S0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 { // 2 defenses x (NoSvard + Svard-S0)
		t.Fatalf("cells = %d", len(cells))
	}
	rel := map[string]float64{}
	for _, c := range cells {
		if c.Config == "NoSvard" && c.RelToNoSvard != 1 {
			t.Errorf("NoSvard relative slowdown = %v", c.RelToNoSvard)
		}
		if c.Config == "Svard-S0" {
			rel[c.Defense] = c.RelToNoSvard
			// Takeaway 9: Svärd never makes the adversarial slowdown worse.
			if c.RelToNoSvard > 1.02 {
				t.Errorf("%s: Svärd worsened the attack: %v", c.Defense, c.RelToNoSvard)
			}
		}
	}
	// Obsv. 16/17 shape: RRS benefits far more than Hydra.
	if rel["rrs"] >= rel["hydra"] {
		t.Errorf("RRS relative slowdown (%v) not below Hydra's (%v)", rel["rrs"], rel["hydra"])
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
