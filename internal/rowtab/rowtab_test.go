package rowtab

import (
	"testing"

	"svard/internal/rng"
)

// TestTableVsMap drives a Table and a map through an identical random
// op sequence (set/add/get/clear) and requires identical reads —
// the contract every converted defense structure relies on.
func TestTableVsMap(t *testing.T) {
	const n = 3 * pageSize
	tab := New[uint32](n)
	ref := map[int64]uint32{}
	r := rng.New(42)
	for op := 0; op < 200_000; op++ {
		k := int64(r.Intn(n))
		switch r.Intn(10) {
		case 0:
			tab.Clear()
			clear(ref)
		case 1, 2, 3:
			v := uint32(r.Intn(1 << 20))
			tab.Set(k, v)
			ref[k] = v
		case 4, 5:
			got := tab.Add(k, 1)
			ref[k]++
			if got != ref[k] {
				t.Fatalf("op %d: Add(%d) = %d, want %d", op, k, got, ref[k])
			}
		default:
			if got, want := tab.Get(k), ref[k]; got != want {
				t.Fatalf("op %d: Get(%d) = %d, want %d", op, k, got, want)
			}
		}
	}
}

// TestTableZeroAbsent pins the map-like zero contract: unwritten keys
// read 0, and Clear restores it for every written key.
func TestTableZeroAbsent(t *testing.T) {
	tab := New[int32](2 * pageSize)
	if got := tab.Get(pageSize + 7); got != 0 {
		t.Fatalf("unwritten Get = %d", got)
	}
	tab.Set(3, -5)
	tab.Set(pageSize+1, 9)
	tab.Clear()
	for _, k := range []int64{3, pageSize + 1, 0} {
		if got := tab.Get(k); got != 0 {
			t.Fatalf("after Clear, Get(%d) = %d", k, got)
		}
	}
}

// TestTableResizeReuse: shrinking then regrowing within the high-water
// mark reuses pages, and resized tables never leak stale values.
func TestTableResizeReuse(t *testing.T) {
	tab := New[uint64](4 * pageSize)
	for k := int64(0); k < 4*pageSize; k += 17 {
		tab.Set(k, uint64(k)+1)
	}
	tab.Resize(pageSize) // shrink: drops pages past the bound
	if got := tab.Get(5); got != 0 {
		t.Fatalf("stale value %d after shrink", got)
	}
	tab.Set(5, 11)
	tab.Resize(4 * pageSize) // regrow
	for _, k := range []int64{5, 17, 3 * pageSize} {
		if got := tab.Get(k); got != 0 {
			t.Fatalf("stale value %d at key %d after regrow", got, k)
		}
	}
	if tab.Len() != 4*pageSize {
		t.Fatalf("Len = %d", tab.Len())
	}
}

// TestTableClearCost: Clear touches only written pages — a table with
// one written page must not rescan its full geometry. (Asserted
// structurally: the written list holds exactly the touched pages.)
func TestTableClearCost(t *testing.T) {
	tab := New[uint32](1 << 22) // 4M keys = 1024 pages
	tab.Set(0, 1)
	tab.Set(5*pageSize+3, 2)
	tab.Set(7, 3) // same page as key 0
	if len(tab.written) != 2 {
		t.Fatalf("written pages = %d, want 2", len(tab.written))
	}
	tab.Clear()
	if len(tab.written) != 0 {
		t.Fatalf("written pages after Clear = %d", len(tab.written))
	}
}

// TestBitsVsMap drives Bits and a map[int64]bool through an identical
// random op sequence.
func TestBitsVsMap(t *testing.T) {
	const n = 3 * bitsPerPage / 2
	bits := NewBits(n)
	ref := map[int64]bool{}
	r := rng.New(7)
	for op := 0; op < 200_000; op++ {
		k := int64(r.Intn(n))
		switch r.Intn(10) {
		case 0:
			bits.Clear()
			clear(ref)
		case 1, 2, 3:
			bits.Set(k)
			ref[k] = true
		case 4:
			bits.Unset(k)
			delete(ref, k)
		default:
			if got, want := bits.Get(k), ref[k]; got != want {
				t.Fatalf("op %d: Get(%d) = %v, want %v", op, k, got, want)
			}
		}
	}
}

// TestBitsResize mirrors the table resize contract for bitsets.
func TestBitsResize(t *testing.T) {
	bits := NewBits(2 * bitsPerPage)
	bits.Set(1)
	bits.Set(bitsPerPage + 2)
	bits.Resize(bitsPerPage)
	if bits.Get(1) {
		t.Fatal("stale bit after resize")
	}
	bits.Resize(2 * bitsPerPage)
	if bits.Get(bitsPerPage + 2) {
		t.Fatal("stale bit after regrow")
	}
}
