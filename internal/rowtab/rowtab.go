// Package rowtab provides flat, geometry-sized tables for per-row
// simulation state. The simulated structures that track DRAM rows
// (defense counters, remap indirections, victim-refresh dedup sets) are
// logically maps keyed by (bank, row), but their key space is dense and
// bounded by the device geometry, and the hot path touches them on
// every activation — per-access map hashing and the GC pressure of
// millions of map cells dominate paper-scale sweeps.
//
// A Table is the replacement: a paged array over the flattened key
// space [0, n) (callers key by bank*rowsPerBank+row, the same flattening
// as mitigation.Key). Pages allocate lazily on first write, so a table
// over a 128K-row bank costs memory only for the regions a workload
// touches, and Clear zeroes only the pages that were written — the
// per-window resets every defense performs stay proportional to the
// touched footprint, not the geometry.
//
// The zero value of E is the "absent" value: Get of a never-written key
// returns 0, exactly like a Go map read. State whose zero value is
// meaningful (Hydra's tracked-at-zero counters, identity row remaps)
// stores v+1.
//
// Tables are built to be pooled: Clear and Resize retain page
// allocations, so a table reused across the cells of a sweep performs
// no steady-state allocation. Tables are not safe for concurrent use.
package rowtab

// PageBits sets the page granularity: 4096 entries per page balances
// the sparse cases (Hydra's RCT touches isolated hot groups) against
// per-page bookkeeping.
const PageBits = 12

const (
	pageSize = 1 << PageBits
	pageMask = pageSize - 1
)

// Elem constrains table elements to the integer widths the simulator
// stores per row.
type Elem interface {
	~int32 | ~uint32 | ~int64 | ~uint64
}

// Table is a paged array over keys [0, n).
type Table[E Elem] struct {
	pages   [][]E
	written []int32 // page indices that may hold nonzero entries
	marked  []bool  // page index -> already in written
	n       int64
}

// New builds a table over keys [0, n). No pages are allocated until the
// first write.
func New[E Elem](n int64) *Table[E] {
	t := &Table[E]{}
	t.Resize(n)
	return t
}

// Len returns the table's key-space size.
func (t *Table[E]) Len() int64 { return t.n }

func pagesFor(n int64) int { return int((n + pageSize - 1) >> PageBits) }

// Resize clears the table and adjusts its key space to [0, n). Pages
// already allocated within the new bound are retained (zeroed), so a
// pooled table resized between sweep cells of different geometries
// reallocates only when it grows past its high-water mark.
func (t *Table[E]) Resize(n int64) {
	t.Clear()
	np := pagesFor(n)
	if np <= cap(t.pages) {
		t.pages = t.pages[:np]
		t.marked = t.marked[:np]
	} else {
		pages := make([][]E, np)
		copy(pages, t.pages)
		t.pages = pages
		marked := make([]bool, np)
		t.marked = marked
	}
	t.n = n
}

// Get returns the value at key k (0 when never written).
func (t *Table[E]) Get(k int64) E {
	p := t.pages[k>>PageBits]
	if p == nil {
		var zero E
		return zero
	}
	return p[k&pageMask]
}

// page returns key k's page, allocating and marking it written.
func (t *Table[E]) page(k int64) []E {
	pi := k >> PageBits
	p := t.pages[pi]
	if p == nil {
		p = make([]E, pageSize)
		t.pages[pi] = p
	}
	if !t.marked[pi] {
		t.marked[pi] = true
		t.written = append(t.written, int32(pi))
	}
	return p
}

// Set stores v at key k.
func (t *Table[E]) Set(k int64, v E) {
	t.page(k)[k&pageMask] = v
}

// Add adds delta to the value at key k and returns the new value.
func (t *Table[E]) Add(k int64, delta E) E {
	p := t.page(k)
	p[k&pageMask] += delta
	return p[k&pageMask]
}

// Clear zeroes every written entry, retaining page allocations. Cost is
// proportional to the pages written since the previous Clear.
func (t *Table[E]) Clear() {
	for _, pi := range t.written {
		clear(t.pages[pi])
		t.marked[pi] = false
	}
	t.written = t.written[:0]
}

// Bits is a paged bitset over keys [0, n): the dense replacement for
// map[int64]bool presence sets. Same paging, zero-value, and pooling
// contract as Table.
type Bits struct {
	pages   [][]uint64
	written []int32
	marked  []bool
	n       int64
}

const (
	bitsPerPage  = pageSize * 64
	bitPageShift = PageBits + 6
	bitPageMask  = bitsPerPage - 1
)

// NewBits builds a bitset over keys [0, n).
func NewBits(n int64) *Bits {
	b := &Bits{}
	b.Resize(n)
	return b
}

// Len returns the bitset's key-space size.
func (b *Bits) Len() int64 { return b.n }

// Resize clears the bitset and adjusts its key space to [0, n),
// retaining page allocations within the new bound.
func (b *Bits) Resize(n int64) {
	b.Clear()
	np := int((n + bitsPerPage - 1) >> bitPageShift)
	if np <= cap(b.pages) {
		b.pages = b.pages[:np]
		b.marked = b.marked[:np]
	} else {
		pages := make([][]uint64, np)
		copy(pages, b.pages)
		b.pages = pages
		b.marked = make([]bool, np)
	}
	b.n = n
}

// Get reports whether bit k is set.
func (b *Bits) Get(k int64) bool {
	p := b.pages[k>>bitPageShift]
	if p == nil {
		return false
	}
	i := k & bitPageMask
	return p[i>>6]&(1<<(i&63)) != 0
}

// Set sets bit k.
func (b *Bits) Set(k int64) {
	pi := k >> bitPageShift
	p := b.pages[pi]
	if p == nil {
		p = make([]uint64, pageSize)
		b.pages[pi] = p
	}
	if !b.marked[pi] {
		b.marked[pi] = true
		b.written = append(b.written, int32(pi))
	}
	i := k & bitPageMask
	p[i>>6] |= 1 << (i & 63)
}

// Unset clears bit k.
func (b *Bits) Unset(k int64) {
	p := b.pages[k>>bitPageShift]
	if p == nil {
		return
	}
	i := k & bitPageMask
	p[i>>6] &^= 1 << (i & 63)
}

// Clear zeroes every written page, retaining allocations.
func (b *Bits) Clear() {
	for _, pi := range b.written {
		clear(b.pages[pi])
		b.marked[pi] = false
	}
	b.written = b.written[:0]
}
