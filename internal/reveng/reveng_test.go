package reveng

import (
	"testing"

	"svard/internal/disturb"
	"svard/internal/dram"
	"svard/internal/profile"
	"svard/internal/testbench"
)

func smallBench(t *testing.T, rows, scrambleOps int, seed uint64) (*testbench.Bench, *disturb.Model) {
	t.Helper()
	g := &dram.Geometry{BankGroups: 2, BanksPerGroup: 2, RowsPerBank: rows, CellsPerRow: 4096}
	g.BuildSubarrays(seed, rows/8, rows/4)
	model := disturb.NewModel(disturb.DefaultParams(seed), g)
	var mapping dram.RowMapping = dram.IdentityMapping{}
	if scrambleOps > 0 {
		mapping = dram.NewScrambleMapping(seed, rows, scrambleOps)
	}
	dev, err := dram.NewDevice(g, dram.DDR4Timing(3200), mapping, model)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetSeed(seed)
	b := testbench.New(dev, model)
	b.EnforceBudget = false // reverse engineering uses long runs
	return b, model
}

func TestAnalyticFootprints(t *testing.T) {
	g := &dram.Geometry{BankGroups: 1, BanksPerGroup: 1, RowsPerBank: 100, CellsPerRow: 64}
	g.SetSubarrayStarts([]int{0, 50})
	fp := AnalyticFootprints(g)
	for _, r := range []int{0, 49, 50, 99} {
		if fp[r] != 1 {
			t.Errorf("edge row %d footprint = %d, want 1", r, fp[r])
		}
	}
	for _, r := range []int{1, 25, 51, 98} {
		if fp[r] != 2 {
			t.Errorf("interior row %d footprint = %d, want 2", r, fp[r])
		}
	}
}

func TestOrdinalsAndBoundaries(t *testing.T) {
	g := &dram.Geometry{BankGroups: 1, BanksPerGroup: 1, RowsPerBank: 120, CellsPerRow: 64}
	g.SetSubarrayStarts([]int{0, 40, 80})
	fp := AnalyticFootprints(g)
	ords := OrdinalsFromFootprints(fp)
	if ords[0] != 0 || ords[39] != 0 || ords[40] != 1 || ords[79] != 1 || ords[80] != 2 {
		t.Errorf("ordinals wrong: %v %v %v %v %v", ords[0], ords[39], ords[40], ords[79], ords[80])
	}
	starts := BoundariesFromFootprints(fp)
	want := []int{0, 40, 80}
	if len(starts) != len(want) {
		t.Fatalf("boundaries = %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", starts, want)
		}
	}
}

func TestMeasuredFootprintsMatchAnalytic(t *testing.T) {
	b, model := smallBench(t, 256, 0, 5)
	g := b.Dev.Geom
	truth := AnalyticFootprints(g)
	// Enough activations to flip any neighbour: ~4x the strongest
	// HCfirst in effective hammers (single-sided halves the rate).
	acts := 8 * 1024 * 1024
	_ = model
	for _, phys := range []int{0, 1, 100, g.SubarrayStarts()[1] - 1, g.SubarrayStarts()[1], 255} {
		got, err := MeasureFootprint(b, 0, phys, acts, 36)
		if err != nil {
			t.Fatal(err)
		}
		if got != truth[phys] {
			t.Errorf("row %d footprint = %d, want %d", phys, got, truth[phys])
		}
	}
}

func TestSilhouettePeaksAtTrueSubarrayCount(t *testing.T) {
	g := &dram.Geometry{BankGroups: 1, BanksPerGroup: 1, RowsPerBank: 1200, CellsPerRow: 64}
	g.BuildSubarrays(9, 140, 220)
	truth := g.Subarrays()
	fp := AnalyticFootprints(g)
	var ks []int
	for k := 2; k <= truth+5; k++ {
		ks = append(ks, k)
	}
	curve, best := SubarraySilhouetteSweep(fp, ks, 77)
	if best != truth {
		t.Errorf("silhouette best k = %d, want %d (curve %v)", best, truth, curve)
	}
	// The paper observes monotone decay past the peak; allow slight
	// noise but demand a clear drop by the end.
	var peak, last float64
	for _, p := range curve {
		if p.K == best {
			peak = p.Score
		}
		last = p.Score
	}
	if last >= peak {
		t.Errorf("silhouette does not decay past the peak: peak=%v last=%v", peak, last)
	}
}

func TestValidateBoundariesKeepsTrueOnes(t *testing.T) {
	b, _ := smallBench(t, 256, 0, 6)
	g := b.Dev.Geom
	truth := g.SubarrayStarts()
	fp := AnalyticFootprints(g)
	candidates := BoundariesFromFootprints(fp)
	surviving, err := ValidateBoundaries(b, 0, candidates, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(surviving) != len(truth) {
		t.Fatalf("surviving = %v, truth = %v", surviving, truth)
	}
	for i := range truth {
		if surviving[i] != truth[i] {
			t.Fatalf("surviving = %v, truth = %v", surviving, truth)
		}
	}
}

func TestValidateBoundariesRejectsFalseOnes(t *testing.T) {
	b, _ := smallBench(t, 256, 0, 7)
	g := b.Dev.Geom
	// Inject a false candidate in the middle of subarray 0.
	s0, e0 := g.SubarrayBounds(0)
	false1 := (s0 + e0) / 2
	surviving, err := ValidateBoundaries(b, 0, []int{0, false1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range surviving {
		if s == false1 {
			t.Errorf("false boundary %d survived RowClone validation", false1)
		}
	}
}

func TestRecoverPhysicalOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("O(rows^2) reverse engineering")
	}
	b, _ := smallBench(t, 128, 6, 8)
	g := b.Dev.Geom
	chains, err := RecoverPhysicalOrder(b, 0, 4*1024*1024, 36)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != g.Subarrays() {
		t.Fatalf("recovered %d chains for %d subarrays", len(chains), g.Subarrays())
	}
	covered := 0
	for _, chain := range chains {
		if !MatchesMapping(chain, b.Dev.Map, g) {
			t.Errorf("chain of %d rows does not match a subarray's physical order", len(chain))
		}
		covered += len(chain)
	}
	if covered != g.RowsPerBank {
		t.Errorf("chains cover %d rows, want %d", covered, g.RowsPerBank)
	}
}

func TestFeatureEnumerationCoversKinds(t *testing.T) {
	g := &dram.Geometry{BankGroups: 4, BanksPerGroup: 4, RowsPerBank: 4096, CellsPerRow: 64}
	g.BuildSubarrays(3, 330, 600)
	fs := AllFeatures(g)
	kinds := map[FeatureKind]int{}
	for _, f := range fs {
		kinds[f.Kind]++
	}
	if kinds[BankBit] != 4 {
		t.Errorf("bank bits = %d, want 4", kinds[BankBit])
	}
	if kinds[RowAddrBit] != 12 {
		t.Errorf("row bits = %d, want 12", kinds[RowAddrBit])
	}
	if kinds[SubarrayIdxBit] == 0 || kinds[DistBit] == 0 {
		t.Error("missing subarray/distance features")
	}
}

// structLevels builds a level function with a planted perfect dependence
// on row bit 3 for sensitivity checks.
func structLevels(g *dram.Geometry) LevelFn {
	return func(bank, row int) int {
		if row>>3&1 == 1 {
			return 2
		}
		return 7
	}
}

func TestScoreFeaturesDetectsPlantedBit(t *testing.T) {
	g := &dram.Geometry{BankGroups: 2, BanksPerGroup: 2, RowsPerBank: 1024, CellsPerRow: 64}
	g.BuildSubarrays(4, 100, 200)
	scores := ScoreFeatures(g, []int{0, 1}, structLevels(g), 14, AllFeatures(g))
	var planted, other float64
	for _, s := range scores {
		if s.Feature.Kind == RowAddrBit && s.Feature.Bit == 3 {
			planted = s.F1
		} else if s.Feature.Kind == RowAddrBit && s.Feature.Bit == 5 {
			other = s.F1
		}
	}
	if planted < 0.99 {
		t.Errorf("planted feature F1 = %v, want ~1", planted)
	}
	if other > 0.8 {
		t.Errorf("unrelated feature F1 = %v, want below planted", other)
	}
}

func TestStrongFeaturesOnlyForStructuredModules(t *testing.T) {
	// S4 (subarray-parity structure) must expose a strong feature; M4
	// (unstructured) must not (Takeaway 6).
	check := func(label string, wantStrong bool) {
		spec, _ := profile.SpecByLabel(label)
		m, err := profile.BuildScaled(spec, 1, 4096, 4096)
		if err != nil {
			t.Fatal(err)
		}
		model := m.NewModel()
		levels := disturb.HammerLevels()
		levelOf := func(bank, row int) int {
			return disturb.LevelIndex(levels, model.HCFirst(bank, row))
		}
		banks := profile.TestedBanks()
		scores := ScoreFeatures(m.Geom, banks, levelOf, len(levels), AllFeatures(m.Geom))
		strong := StrongFeatures(scores, 0.7)
		if wantStrong && len(strong) == 0 {
			t.Errorf("%s: no feature above F1=0.7, expected structured correlation", label)
		}
		if !wantStrong && len(strong) > 0 {
			t.Errorf("%s: unexpected strong features %v", label, strong)
		}
		// No feature exceeds ~0.8 (paper: max average F1 is 0.77).
		for _, s := range scores {
			if s.F1 > 0.85 {
				t.Errorf("%s: feature %v F1=%v implausibly high", label, s.Feature, s.F1)
			}
		}
	}
	check("S4", true)
	check("M4", false)
}

func TestFractionAboveMonotone(t *testing.T) {
	scores := []FeatureScore{{F1: 0.2}, {F1: 0.5}, {F1: 0.9}}
	ths := []float64{0, 0.3, 0.6, 1}
	fr := FractionAbove(scores, ths)
	for i := 1; i < len(fr); i++ {
		if fr[i] > fr[i-1] {
			t.Errorf("fraction not monotone: %v", fr)
		}
	}
	if fr[0] != 1 || fr[3] != 0 {
		t.Errorf("endpoints wrong: %v", fr)
	}
}
