// Package reveng implements the paper's reverse engineering analyses:
// recovery of the physical row order behind the in-DRAM address
// scrambling, subarray boundary identification from single-sided
// disturbance footprints (k-means + silhouette, Key Insight 1) with
// RowClone cross-validation (Key Insight 2), and the spatial-feature
// correlation analysis (per-bit HCfirst prediction scored by F1).
package reveng

import (
	"fmt"

	"svard/internal/dram"
	"svard/internal/rng"
	"svard/internal/stats"
	"svard/internal/testbench"
)

// AnalyticFootprints returns, for every physical row, how many
// distance-1 victims single-sided hammering that row would affect: 2 for
// interior rows, 1 at subarray (and bank) edges. This is the ground
// truth the measured footprints converge to.
func AnalyticFootprints(g *dram.Geometry) []int {
	fp := make([]int, g.RowsPerBank)
	for r := range fp {
		n := 0
		if r-1 >= 0 && g.SameSubarray(r, r-1) {
			n++
		}
		if r+1 < g.RowsPerBank && g.SameSubarray(r, r+1) {
			n++
		}
		fp[r] = n
	}
	return fp
}

// MeasureFootprints hammers every physical row of the bank single-sided
// and counts its flipped distance-1..2 victims, classifying distance-1
// victims by flip magnitude. acts must be large enough to flip the
// strongest row's neighbours (the harness derives it from the largest
// tested hammer count).
func MeasureFootprints(b *testbench.Bench, bank, acts int, tAggOnNs float64) ([]int, error) {
	g := b.Dev.Geom
	fp := make([]int, g.RowsPerBank)
	for phys := 0; phys < g.RowsPerBank; phys++ {
		n, err := measureFootprint(b, bank, phys, acts, tAggOnNs)
		if err != nil {
			return nil, err
		}
		fp[phys] = n
	}
	return fp, nil
}

// MeasureFootprint measures one physical row's distance-1 footprint.
func MeasureFootprint(b *testbench.Bench, bank, phys, acts int, tAggOnNs float64) (int, error) {
	return measureFootprint(b, bank, phys, acts, tAggOnNs)
}

func measureFootprint(b *testbench.Bench, bank, phys, acts int, tAggOnNs float64) (int, error) {
	logical := b.Dev.Map.PhysicalToLogical(phys)
	victims, err := b.SingleSidedFootprint(bank, logical, acts, tAggOnNs)
	if err != nil {
		return 0, err
	}
	// Distance-1 victims flip orders of magnitude more cells than
	// distance-2 bystanders; with the bench's boolean victim report the
	// distance-1 count is the number of immediate neighbours among the
	// flipped rows.
	n := 0
	for _, v := range victims {
		if v == phys-1 || v == phys+1 {
			n++
		}
	}
	return n, nil
}

// OrdinalsFromFootprints converts a per-physical-row footprint vector
// into per-row subarray ordinals: a new subarray starts after each
// adjacent pair of footprint-1 rows (the last row of one subarray and
// the first row of the next).
func OrdinalsFromFootprints(fp []int) []int {
	ord := make([]int, len(fp))
	cur := 0
	for r := range fp {
		if r > 0 && fp[r-1] == 1 && fp[r] == 1 {
			cur++
		}
		ord[r] = cur
	}
	return ord
}

// BoundariesFromFootprints returns the candidate subarray start rows
// (always including row 0) implied by a footprint vector.
func BoundariesFromFootprints(fp []int) []int {
	starts := []int{0}
	for r := 1; r < len(fp); r++ {
		if fp[r-1] == 1 && fp[r] == 1 {
			starts = append(starts, r)
		}
	}
	return starts
}

// SilhouettePoint is one (k, score) sample of the Fig. 8 sweep.
type SilhouettePoint struct {
	K     int
	Score float64
}

// SubarraySilhouetteSweep clusters rows into k subarrays for each k in
// ks, scoring each clustering with the silhouette; the best k estimates
// the subarray count (Fig. 8). Rows are embedded as (normalized row
// address, scaled footprint ordinal), the features Key Insight 1 names.
func SubarraySilhouetteSweep(fp []int, ks []int, seed uint64) ([]SilhouettePoint, int) {
	ords := OrdinalsFromFootprints(fp)
	maxOrd := ords[len(ords)-1]
	if maxOrd == 0 {
		maxOrd = 1
	}
	n := len(fp)
	points := make([][]float64, n)
	for r := range points {
		points[r] = []float64{
			float64(r) / float64(n-1),
			3 * float64(ords[r]) / float64(maxOrd),
		}
	}
	out := make([]SilhouettePoint, 0, len(ks))
	bestK, bestScore := 0, -2.0
	for _, k := range ks {
		res := stats.KMeans(points, k, 30, rng.At(seed, uint64(k)))
		score := stats.Silhouette(points, res)
		out = append(out, SilhouettePoint{K: k, Score: score})
		if score > bestScore {
			bestK, bestScore = k, score
		}
	}
	return out, bestK
}

// ValidateBoundaries cross-checks candidate subarray boundaries with
// RowClone probes (Key Insight 2): a successful clone across a candidate
// boundary proves both rows share a subarray, invalidating the
// candidate. probes pairs are tried per boundary; failed clones prove
// nothing (RowClone is unreliable even within a subarray), so a
// candidate survives unless some probe succeeds.
func ValidateBoundaries(b *testbench.Bench, bank int, candidates []int, probes int) ([]int, error) {
	g := b.Dev.Geom
	var surviving []int
	for _, start := range candidates {
		if start == 0 {
			surviving = append(surviving, 0) // bank edge, trivially a boundary
			continue
		}
		invalidated := false
		for p := 0; p < probes && !invalidated; p++ {
			srcPhys := start - 1 - p
			dstPhys := start + p
			if srcPhys < 0 || dstPhys >= g.RowsPerBank {
				break
			}
			ok, err := b.RowCloneSucceeds(bank,
				b.Dev.Map.PhysicalToLogical(srcPhys),
				b.Dev.Map.PhysicalToLogical(dstPhys))
			if err != nil {
				return nil, err
			}
			if ok {
				invalidated = true
			}
		}
		if !invalidated {
			surviving = append(surviving, start)
		}
	}
	return surviving, nil
}

// SubarraySizesOK reports whether recovered subarray sizes fall in the
// paper's observed range (330 to 1027 rows per subarray; scaled banks
// use their own bounds).
func SubarraySizesOK(starts []int, rowsPerBank, minRows, maxRows int) error {
	for i := range starts {
		end := rowsPerBank
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		size := end - starts[i]
		if i+1 < len(starts) && (size < minRows || size > maxRows) {
			return fmt.Errorf("reveng: subarray %d has %d rows, outside [%d,%d]", i, size, minRows, maxRows)
		}
	}
	return nil
}
