package reveng

import (
	"fmt"
	"math/bits"
	"sort"

	"svard/internal/dram"
	"svard/internal/stats"
)

// FeatureKind identifies one family of spatial features (§5.4.2): bits
// of the bank address, the row address, the subarray index, and the
// row's distance to its local sense amplifiers.
type FeatureKind int

// Feature kinds, in the paper's Table 3 column order.
const (
	BankBit FeatureKind = iota
	RowAddrBit
	SubarrayIdxBit
	DistBit
)

func (k FeatureKind) String() string {
	switch k {
	case BankBit:
		return "Ba"
	case RowAddrBit:
		return "Ro"
	case SubarrayIdxBit:
		return "Sa"
	case DistBit:
		return "Dist"
	default:
		return "?"
	}
}

// Feature is one binary spatial feature: a single bit of one spatial
// property.
type Feature struct {
	Kind FeatureKind
	Bit  int
}

func (f Feature) String() string { return fmt.Sprintf("%s bit %d", f.Kind, f.Bit) }

// FeatureScore is a feature with its HCfirst-prediction F1 score.
type FeatureScore struct {
	Feature Feature
	F1      float64
}

// LevelFn returns a row's measured HCfirst class (index into the tested
// hammer levels, with the censored class one past the last level).
type LevelFn func(bank, physRow int) int

// AllFeatures enumerates every spatial feature of a geometry: all bank
// bits, row address bits, subarray index bits, and distance bits.
func AllFeatures(g *dram.Geometry) []Feature {
	var fs []Feature
	for b := 0; b < bits.Len(uint(g.Banks()-1)); b++ {
		fs = append(fs, Feature{BankBit, b})
	}
	for b := 0; b < bits.Len(uint(g.RowsPerBank-1)); b++ {
		fs = append(fs, Feature{RowAddrBit, b})
	}
	nSub := g.Subarrays()
	if nSub < 2 {
		nSub = 2
	}
	for b := 0; b < bits.Len(uint(nSub-1)); b++ {
		fs = append(fs, Feature{SubarrayIdxBit, b})
	}
	// Distance to sense amps spans up to half the largest subarray.
	maxDist := 0
	for i := 0; i < g.Subarrays(); i++ {
		s, e := g.SubarrayBounds(i)
		if d := (e - s) / 2; d > maxDist {
			maxDist = d
		}
	}
	if maxDist < 1 {
		maxDist = 1
	}
	for b := 0; b < bits.Len(uint(maxDist)); b++ {
		fs = append(fs, Feature{DistBit, b})
	}
	return fs
}

// featureValue extracts the feature bit for a (bank, physical row).
func featureValue(f Feature, g *dram.Geometry, bank, row int) int {
	switch f.Kind {
	case BankBit:
		return bank >> f.Bit & 1
	case RowAddrBit:
		return row >> f.Bit & 1
	case SubarrayIdxBit:
		return g.SubarrayOf(row) >> f.Bit & 1
	case DistBit:
		return g.DistanceToSenseAmps(row) >> f.Bit & 1
	default:
		return 0
	}
}

// ScoreFeatures evaluates how well each spatial feature predicts HCfirst
// (§5.4.2): rows are labelled weak or strong by splitting the measured
// HCfirst levels at the module median, each feature's Bayes-optimal
// single-bit classifier (majority label per feature value, fit on the
// same rows) predicts the label, and the confusion matrix is scored with
// the macro F1.
//
// The paper's exact prediction target among the 14 levels is not fully
// specified; the median split is the calibration under which its
// reported F1 landscape (most features below 0.7, the strongest at 0.77,
// Table 3) is reproducible by a single-bit predictor — a 14-way target
// caps any single bit far below the paper's scores. See EXPERIMENTS.md.
func ScoreFeatures(g *dram.Geometry, banks []int, levelOf LevelFn, numLevels int, features []Feature) []FeatureScore {
	// Cache per-row levels once; feature loops reuse them.
	type rowRef struct{ bank, row int }
	refs := make([]rowRef, 0, len(banks)*g.RowsPerBank)
	levels := make([]int, 0, len(banks)*g.RowsPerBank)
	for _, b := range banks {
		for r := 0; r < g.RowsPerBank; r++ {
			refs = append(refs, rowRef{b, r})
			levels = append(levels, levelOf(b, r))
		}
	}
	// Median split: weak = level strictly below the median level; pick
	// the split closest to balanced among the level cut points.
	hist := make([]int, numLevels+2)
	for _, l := range levels {
		if l >= 0 && l < len(hist) {
			hist[l]++
		}
	}
	n := len(levels)
	bestCut, bestSkew := 1, n
	acc := 0
	for c := 1; c < len(hist); c++ {
		acc += hist[c-1]
		skew := acc - (n - acc)
		if skew < 0 {
			skew = -skew
		}
		if skew < bestSkew {
			bestCut, bestSkew = c, skew
		}
	}
	labels := make([]int, n)
	for i, l := range levels {
		if l < bestCut {
			labels[i] = 1 // weak
		}
	}

	scores := make([]FeatureScore, 0, len(features))
	for _, f := range features {
		var cnt [2][2]int // [featureValue][label]
		vals := make([]uint8, len(refs))
		for i, ref := range refs {
			v := featureValue(f, g, ref.bank, ref.row)
			vals[i] = uint8(v)
			cnt[v][labels[i]]++
		}
		var pred [2]int
		for v := 0; v < 2; v++ {
			if cnt[v][1] > cnt[v][0] {
				pred[v] = 1
			}
		}
		cm := stats.NewConfusionMatrix(2)
		for i := range refs {
			cm.Add(labels[i], pred[vals[i]])
		}
		scores = append(scores, FeatureScore{Feature: f, F1: cm.F1()})
	}
	return scores
}

// FractionAbove returns, for each threshold, the fraction of features
// whose F1 exceeds it — the y-axis of Fig. 9.
func FractionAbove(scores []FeatureScore, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	if len(scores) == 0 {
		return out
	}
	for i, th := range thresholds {
		n := 0
		for _, s := range scores {
			if s.F1 > th {
				n++
			}
		}
		out[i] = float64(n) / float64(len(scores))
	}
	return out
}

// StrongFeatures returns the features with F1 above the threshold
// (Table 3 uses 0.7), sorted by descending F1.
func StrongFeatures(scores []FeatureScore, threshold float64) []FeatureScore {
	var out []FeatureScore
	for _, s := range scores {
		if s.F1 > threshold {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].F1 > out[j].F1 })
	return out
}
