package reveng

import (
	"fmt"
	"sort"

	"svard/internal/dram"
	"svard/internal/testbench"
)

// RecoverPhysicalOrder reverse-engineers the physical row order of a
// bank with no knowledge of the mapping: every logical row is hammered
// single-sided, all other rows are scanned for bitflips, the flipped
// rows with dominant flip counts are classified as physical distance-1
// neighbours, and the resulting adjacency graph — a disjoint union of
// paths, one per subarray — is traversed into ordered chains.
//
// Each returned chain lists logical row addresses in consecutive
// physical order (direction is unrecoverable, as on real silicon).
// The cost is O(rows²) device reads; use small banks.
func RecoverPhysicalOrder(b *testbench.Bench, bank, acts int, tAggOnNs float64) ([][]int, error) {
	g := b.Dev.Geom
	n := g.RowsPerBank
	dev := b.Dev

	initAll := func() error {
		for l := 0; l < n; l++ {
			if err := benchInitRow(b, bank, l, dram.RowStripe); err != nil {
				return err
			}
		}
		return nil
	}
	if err := initAll(); err != nil {
		return nil, err
	}

	adj := make(map[int]map[int]bool, n)
	addEdge := func(a, c int) {
		if adj[a] == nil {
			adj[a] = make(map[int]bool, 2)
		}
		if adj[c] == nil {
			adj[c] = make(map[int]bool, 2)
		}
		adj[a][c] = true
		adj[c][a] = true
	}

	for agg := 0; agg < n; agg++ {
		if err := benchInitRow(b, bank, agg, dram.RowStripeInv); err != nil {
			return nil, err
		}
		if err := dev.HammerSingleSided(bank, agg, acts, tAggOnNs); err != nil {
			return nil, err
		}
		type hit struct{ row, flips int }
		var hits []hit
		for v := 0; v < n; v++ {
			if v == agg {
				continue
			}
			flips, err := benchReadFlips(b, bank, v)
			if err != nil {
				return nil, err
			}
			if flips > 0 {
				hits = append(hits, hit{v, flips})
			}
		}
		if len(hits) > 0 {
			maxFlips := 0
			for _, h := range hits {
				if h.flips > maxFlips {
					maxFlips = h.flips
				}
			}
			for _, h := range hits {
				// Distance-1 victims flip orders of magnitude more
				// cells than distance-2 bystanders.
				if h.flips*5 >= maxFlips && h.flips > 2 {
					addEdge(agg, h.row)
				}
				// Clean the victim for subsequent aggressors.
				if err := benchInitRow(b, bank, h.row, dram.RowStripe); err != nil {
					return nil, err
				}
			}
		}
		if err := benchInitRow(b, bank, agg, dram.RowStripe); err != nil {
			return nil, err
		}
	}
	return chainsFromAdjacency(adj, n)
}

// chainsFromAdjacency turns the adjacency graph into ordered row chains,
// verifying it is a union of simple paths.
func chainsFromAdjacency(adj map[int]map[int]bool, n int) ([][]int, error) {
	visited := make(map[int]bool, n)
	var chains [][]int
	// Endpoints (degree 1) seed path traversals.
	var endpoints []int
	for row, nb := range adj {
		switch len(nb) {
		case 1:
			endpoints = append(endpoints, row)
		case 2:
		default:
			return nil, fmt.Errorf("reveng: row %d has %d physical neighbours; adjacency is not a path", row, len(nb))
		}
	}
	sort.Ints(endpoints)
	for _, start := range endpoints {
		if visited[start] {
			continue
		}
		chain := []int{start}
		visited[start] = true
		cur := start
		for {
			next := -1
			for nb := range adj[cur] {
				if !visited[nb] {
					next = nb
					break
				}
			}
			if next < 0 {
				break
			}
			visited[next] = true
			chain = append(chain, next)
			cur = next
		}
		chains = append(chains, chain)
	}
	// Isolated rows (single-row subarrays do not occur, but a row whose
	// neighbours were all too strong to flip would surface here).
	for row := 0; row < n; row++ {
		if adj[row] == nil && !visited[row] {
			chains = append(chains, []int{row})
		}
	}
	return chains, nil
}

// MatchesMapping reports whether a recovered chain equals the physical
// row sequence of some subarray under the device's true mapping, in
// either direction. It is the validation oracle for tests and the
// harness (real silicon has no such oracle, §5.4.1).
func MatchesMapping(chain []int, mapping dram.RowMapping, g *dram.Geometry) bool {
	if len(chain) == 0 {
		return false
	}
	phys := make([]int, len(chain))
	for i, l := range chain {
		phys[i] = mapping.LogicalToPhysical(l)
	}
	ok := true
	for i := 1; i < len(phys); i++ {
		if phys[i] != phys[i-1]+1 {
			ok = false
			break
		}
	}
	if !ok {
		for i := 1; i < len(phys); i++ {
			if phys[i] != phys[i-1]-1 {
				return false
			}
		}
	}
	// The chain must span a whole subarray.
	lo, hi := phys[0], phys[len(phys)-1]
	if lo > hi {
		lo, hi = hi, lo
	}
	sa := g.SubarrayOf(lo)
	start, end := g.SubarrayBounds(sa)
	return lo == start && hi == end-1
}

// benchInitRow/benchReadFlips re-use the bench's internal row helpers.
func benchInitRow(b *testbench.Bench, bank, logical int, p dram.Pattern) error {
	return b.InitRow(bank, logical, p)
}

func benchReadFlips(b *testbench.Bench, bank, logical int) (int, error) {
	return b.ReadFlips(bank, logical)
}
