package profile

import (
	"encoding/json"
	"fmt"
	"math"

	"svard/internal/disturb"
)

// VulnProfile is a captured per-row read disturbance vulnerability
// profile: for every characterized (bank, row) it records the largest
// tested hammer level at which the row showed no bitflip — the safe
// floor a defense may assume. This is the data structure Svärd stores
// (§6.1) and the product of the paper's characterization campaign.
type VulnProfile struct {
	Label       string    `json:"label"`
	RowsPerBank int       `json:"rows_per_bank"`
	Banks       []int     `json:"banks"`  // characterized banks
	Levels      []float64 `json:"levels"` // tested hammer levels (ascending)

	// Bins[i][row] is the safe-level index for row `row` of
	// Banks[i]: Levels[idx] is the largest level with no observed flip.
	// BinBelowGrid marks rows that flipped at the smallest tested level.
	Bins [][]uint8 `json:"bins"`
}

// BinBelowGrid marks a row that flipped at the smallest tested level, so
// no tested level is known safe.
const BinBelowGrid = 0xFF

// validateGrid checks that a level grid fits the uint8 bin encoding:
// at least one level, and fewer than 255 of them — bin 0xFF is reserved
// for BinBelowGrid, so a grid with >= 255 entries would silently alias
// real safe-level indices with "no level is safe".
func validateGrid(levels []float64) error {
	if len(levels) == 0 {
		return fmt.Errorf("profile: empty hammer-level grid")
	}
	if len(levels) >= BinBelowGrid {
		return fmt.Errorf("profile: %d hammer levels overflow the uint8 bin encoding (max %d; bin 0x%X is reserved for below-grid rows)",
			len(levels), BinBelowGrid-1, BinBelowGrid)
	}
	return nil
}

// validateBanks rejects a profile with no characterized banks: every
// lookup would have nothing to fall back on (and the representative-bank
// modulo would divide by zero).
func validateBanks(banks []int) error {
	if len(banks) == 0 {
		return fmt.Errorf("profile: no characterized banks")
	}
	return nil
}

// Capture profiles the given banks of a module under model m: for every
// row, the analytic equivalent of sweeping Alg. 1's hammer counts and
// recording the largest level with no bitflip. Censored rows (no flip
// even at the top level) record the top level as safe. It panics on an
// empty bank list or a level grid the uint8 bin encoding cannot hold —
// both are programmer errors, never data.
func Capture(m *disturb.Model, label string, banks []int) *VulnProfile {
	levels := disturb.HammerLevels()
	if err := validateGrid(levels); err != nil {
		panic(err)
	}
	if err := validateBanks(banks); err != nil {
		panic(err)
	}
	p := &VulnProfile{
		Label:       label,
		RowsPerBank: m.Geom.RowsPerBank,
		Banks:       append([]int(nil), banks...),
		Levels:      levels,
		Bins:        make([][]uint8, len(banks)),
	}
	for i, b := range banks {
		bins := make([]uint8, m.Geom.RowsPerBank)
		for row := 0; row < m.Geom.RowsPerBank; row++ {
			bins[row] = safeIdx(levels, m.HCFirst(b, row))
		}
		p.Bins[i] = bins
	}
	return p
}

func safeIdx(levels []float64, hcFirst float64) uint8 {
	i := disturb.LevelIndex(levels, hcFirst) // first level >= true HCfirst = first flip level
	if i == 0 {
		return BinBelowGrid
	}
	return uint8(i - 1)
}

// NewEmpty builds an empty profile for measurement-driven capture (the
// testbench path); fill it with SetBin. Like Capture it panics on an
// empty bank list or an oversized level grid — the caller supplies both
// as constants of the measurement campaign.
func NewEmpty(label string, rowsPerBank int, banks []int, levels []float64) *VulnProfile {
	if err := validateGrid(levels); err != nil {
		panic(err)
	}
	if err := validateBanks(banks); err != nil {
		panic(err)
	}
	p := &VulnProfile{
		Label:       label,
		RowsPerBank: rowsPerBank,
		Banks:       append([]int(nil), banks...),
		Levels:      append([]float64(nil), levels...),
		Bins:        make([][]uint8, len(banks)),
	}
	// Unmeasured rows default to the most conservative assumption: no
	// tested level is known safe.
	for i := range p.Bins {
		p.Bins[i] = make([]uint8, rowsPerBank)
		for r := range p.Bins[i] {
			p.Bins[i][r] = BinBelowGrid
		}
	}
	return p
}

// SetBin records a measured first-flip level index for a row: the safe
// floor becomes the previous level. firstFlipIdx == len(Levels) means
// censored (no flip at any level).
func (p *VulnProfile) SetBin(bankPos, row, firstFlipIdx int) {
	switch {
	case firstFlipIdx <= 0:
		p.Bins[bankPos][row] = BinBelowGrid
	case firstFlipIdx >= len(p.Levels):
		p.Bins[bankPos][row] = uint8(len(p.Levels) - 1)
	default:
		p.Bins[bankPos][row] = uint8(firstFlipIdx - 1)
	}
}

// bankPos maps an arbitrary bank index onto a characterized bank: the
// bank itself when characterized, otherwise a representative (banks
// within a module exhibit near-identical distributions, Takeaways 1/3).
// A profile with no characterized banks — only constructible by hand,
// since the constructors and Unmarshal reject it — reports -1, and the
// lookups fall back to the most conservative answer.
func (p *VulnProfile) bankPos(bank int) int {
	for i, b := range p.Banks {
		if b == bank {
			return i
		}
	}
	if len(p.Bins) == 0 {
		return -1
	}
	return bank % len(p.Bins)
}

// SafeThreshold returns the largest hammer count known not to flip the
// row: the defense-facing per-row threshold. Rows that flipped at the
// smallest tested level report half that level, as does every row of a
// degenerate profile with no characterized banks (nothing is known safe).
func (p *VulnProfile) SafeThreshold(bank, row int) float64 {
	idx := p.SafeIdx(bank, row)
	if idx == BinBelowGrid {
		if len(p.Levels) == 0 {
			return 0
		}
		return p.Levels[0] / 2
	}
	return p.Levels[idx]
}

// SafeIdx returns the row's safe-level index (BinBelowGrid for rows
// below the grid, and for every row of a profile with no characterized
// banks or rows).
func (p *VulnProfile) SafeIdx(bank, row int) uint8 {
	pos := p.bankPos(bank)
	if pos < 0 || p.RowsPerBank <= 0 {
		return BinBelowGrid
	}
	return p.Bins[pos][row%p.RowsPerBank]
}

// MinSafeThreshold returns the module's worst-case safe threshold — what
// a profile-oblivious defense must assume for every row.
func (p *VulnProfile) MinSafeThreshold() float64 {
	min := math.Inf(1)
	for i := range p.Bins {
		for _, idx := range p.Bins[i] {
			var v float64
			if idx == BinBelowGrid {
				v = p.Levels[0] / 2
			} else {
				v = p.Levels[idx]
			}
			if v < min {
				min = v
			}
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// BinCounts returns how many rows fall in each safe-level index
// (index len(Levels) collects below-grid rows).
func (p *VulnProfile) BinCounts() []int {
	counts := make([]int, len(p.Levels)+1)
	for i := range p.Bins {
		for _, idx := range p.Bins[i] {
			if idx == BinBelowGrid {
				counts[len(p.Levels)]++
			} else {
				counts[idx]++
			}
		}
	}
	return counts
}

// NumBins returns the number of distinct vulnerability bins the profile
// uses; Svärd's metadata sizing (§6.4) requires <= 16 so a 4-bit id
// suffices. The bin id domain is a uint8, so a fixed array replaces the
// map a per-row loop over every bank would otherwise hash into.
func (p *VulnProfile) NumBins() int {
	var seen [256]bool
	n := 0
	for i := range p.Bins {
		for _, idx := range p.Bins[i] {
			if !seen[idx] {
				seen[idx] = true
				n++
			}
		}
	}
	return n
}

// ScaledProfile views a VulnProfile with every threshold multiplied by
// Factor. The paper evaluates future, more vulnerable chips by scaling
// all observed HCfirst values so the profile minimum equals the target
// worst-case HCfirst (§7.1).
type ScaledProfile struct {
	P      *VulnProfile
	Factor float64
}

// ScaledTo returns the profile scaled so its minimum safe threshold
// equals targetMin.
func (p *VulnProfile) ScaledTo(targetMin float64) *ScaledProfile {
	min := p.MinSafeThreshold()
	if min <= 0 {
		return &ScaledProfile{P: p, Factor: 1}
	}
	return &ScaledProfile{P: p, Factor: targetMin / min}
}

// SafeThreshold returns the scaled per-row threshold.
func (s *ScaledProfile) SafeThreshold(bank, row int) float64 {
	return s.P.SafeThreshold(bank, row) * s.Factor
}

// MinSafeThreshold returns the scaled worst-case threshold.
func (s *ScaledProfile) MinSafeThreshold() float64 {
	return s.P.MinSafeThreshold() * s.Factor
}

// MarshalJSON/UnmarshalJSON round-trip the profile; []uint8 bins encode
// compactly as base64.
func (p *VulnProfile) Marshal() ([]byte, error) { return json.Marshal(p) }

// Unmarshal parses a profile produced by Marshal. Unlike the in-process
// constructors it treats the input as untrusted — a corrupt or
// hand-edited profile is rejected with a descriptive error instead of
// panicking rows later inside SafeThreshold: the banks must be
// non-empty, the level grid must fit the uint8 bin encoding, and every
// bin must name a tested level (or BinBelowGrid).
func Unmarshal(data []byte) (*VulnProfile, error) {
	var p VulnProfile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	if err := validateBanks(p.Banks); err != nil {
		return nil, err
	}
	if err := validateGrid(p.Levels); err != nil {
		return nil, err
	}
	if p.RowsPerBank <= 0 {
		return nil, fmt.Errorf("profile: rows_per_bank %d, want >= 1", p.RowsPerBank)
	}
	if len(p.Bins) != len(p.Banks) {
		return nil, fmt.Errorf("profile: %d bin banks for %d banks", len(p.Bins), len(p.Banks))
	}
	for i := range p.Bins {
		if len(p.Bins[i]) != p.RowsPerBank {
			return nil, fmt.Errorf("profile: bank %d has %d rows, want %d", i, len(p.Bins[i]), p.RowsPerBank)
		}
		for r, bin := range p.Bins[i] {
			if bin != BinBelowGrid && int(bin) >= len(p.Levels) {
				return nil, fmt.Errorf("profile: bank %d (index %d) row %d: bin %d out of range for %d levels",
					p.Banks[i], i, r, bin, len(p.Levels))
			}
		}
	}
	return &p, nil
}

// RepresentativeLabels returns the per-manufacturer representative
// modules used for Svärd's performance evaluation (Fig. 12): S0, M0, H1.
func RepresentativeLabels() []string { return []string{"S0", "M0", "H1"} }
