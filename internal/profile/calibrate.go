package profile

import (
	"fmt"
	"math"

	"svard/internal/disturb"
	"svard/internal/dram"
	"svard/internal/rng"
)

// Module is a built, calibrated module: geometry, scrambling, and a
// disturbance parameter set whose per-row HCfirst and BER statistics
// match the module's Table 5 / Fig. 3 targets.
type Module struct {
	Spec   ModuleSpec
	Geom   *dram.Geometry
	Params disturb.Params
	Seed   uint64
}

// NewModel returns a fresh disturbance model for the module. Models are
// cheap; the per-row universe is procedural and shared across instances
// with the same seed.
func (m *Module) NewModel() *disturb.Model {
	return disturb.NewModel(m.Params, m.Geom)
}

// NewMapping returns the module's in-DRAM row scrambling.
func (m *Module) NewMapping() dram.RowMapping {
	if m.Spec.ScrambleOps <= 0 {
		return dram.IdentityMapping{}
	}
	return dram.NewScrambleMapping(m.Seed, m.Geom.RowsPerBank, m.Spec.ScrambleOps)
}

// NewDevice returns a command-level device plus its attached model, as
// the testbench mounts it.
func (m *Module) NewDevice() (*dram.Device, *disturb.Model, error) {
	model := m.NewModel()
	dev, err := dram.NewDevice(m.Geom, dram.DDR4Timing(m.Spec.FreqMTs), m.NewMapping(), model)
	if err != nil {
		return nil, nil, err
	}
	dev.SetSeed(m.Seed)
	return dev, model, nil
}

// Build constructs and calibrates the module at full size (65536 cells
// per row, Table 5 row count).
func Build(spec ModuleSpec, seed uint64) (*Module, error) {
	return BuildScaled(spec, seed, spec.RowsPerBank, 64*K)
}

// BuildScaled constructs and calibrates the module with an overridden
// bank size — tests and the performance simulator use smaller banks,
// with identical calibration logic and targets.
func BuildScaled(spec ModuleSpec, seed uint64, rowsPerBank, cellsPerRow int) (*Module, error) {
	if rowsPerBank < 64 {
		return nil, fmt.Errorf("profile: rowsPerBank %d too small to calibrate", rowsPerBank)
	}
	mseed := rng.Hash64(seed, labelHash(spec.Label))
	geom := &dram.Geometry{
		BankGroups:    4,
		BanksPerGroup: 4,
		RowsPerBank:   rowsPerBank,
		CellsPerRow:   cellsPerRow,
	}
	minSub, maxSub := 330, 1027
	if rowsPerBank < 4*maxSub {
		// Scaled-down banks keep several subarrays.
		minSub, maxSub = rowsPerBank/12+2, rowsPerBank/6+4
	}
	geom.BuildSubarrays(mseed, minSub, maxSub)

	p := disturb.DefaultParams(mseed)
	p.PeriodFrac = spec.PeriodFrac
	p.ChunkCount = spec.ChunkCount
	p.ChunkWeight = spec.ChunkWeight
	p.Struct = spec.Struct
	if spec.MaxHC < 128*K {
		p.CapHC = spec.MaxHC * 0.99
	}

	cal, err := calibrate(spec, p, geom)
	if err != nil {
		return nil, err
	}
	return &Module{Spec: spec, Geom: geom, Params: cal, Seed: mseed}, nil
}

func labelHash(label string) uint64 {
	h := uint64(0)
	for _, c := range label {
		h = h*131 + uint64(c)
	}
	return h
}

// calibrate solves the model parameters against the module targets:
//
//	mean BER at 128K hammers  -> couples LnHCMid and SigmaCell,
//	mean quantized HCfirst    -> closes the LnHCMid/SigmaCell system,
//	CV of BER across rows     -> RegAmp,
//	min quantized HCfirst     -> IrrSigma (bisection on the sampled
//	                             latent fields, so the achieved min is
//	                             exact for the tested banks).
func calibrate(spec ModuleSpec, p disturb.Params, geom *dram.Geometry) (disturb.Params, error) {
	if spec.BER128 <= 0 || spec.BER128 >= p.BERSat {
		return p, fmt.Errorf("profile: %s BER128 %v outside (0, BERSat)", spec.Label, spec.BER128)
	}
	if spec.MinHC <= 0 || spec.AvgHC <= spec.MinHC {
		return p, fmt.Errorf("profile: %s HCfirst targets inconsistent", spec.Label)
	}

	banks := TestedBanks()
	probe := disturb.NewModel(p, geom)

	// Sample the latent fields once; calibration then works on arrays.
	reg := make([]float64, geom.RowsPerBank)
	for row := range reg {
		reg[row] = probe.Regular(row)
	}
	irr := make([]float64, 0, len(banks)*geom.RowsPerBank)
	bankOff := make([]float64, 0, len(banks)*geom.RowsPerBank)
	for _, b := range banks {
		off := p.BankJitter * rng.NormalAt(p.Seed, 0x12 /* domBank */, uint64(b))
		for row := 0; row < geom.RowsPerBank; row++ {
			irr = append(irr, probe.Irregular(b, row))
			bankOff = append(bankOff, off)
		}
	}
	meanOf := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	stdOf := func(xs []float64) float64 {
		m := meanOf(xs)
		s := 0.0
		for _, x := range xs {
			s += (x - m) * (x - m)
		}
		return math.Sqrt(s / float64(len(xs)))
	}
	meanReg, stdReg := meanOf(reg), stdOf(reg)
	meanIrr := meanOf(irr)

	const hc128 = 128 * K
	x := disturb.PhiInv(spec.BER128 / p.BERSat) // standardized BER@128K position
	zM := disturb.Lift(geom.CellsPerRow, p.BERSat, 1)
	pdfX := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)

	// Continuous targets: quantization to the 14-level grid raises the
	// reported average and the reported minimum sits one bin above the
	// true value, so aim slightly below the Table 5 numbers. The average
	// gets a correction iteration below.
	avgTc := spec.AvgHC * 0.93
	minTc := spec.MinHC * 0.93

	levels := disturb.HammerLevels()
	var out disturb.Params
	for iter := 0; iter < 3; iter++ {
		rm := 0.0 // mean of the non-constant latent terms, refined per pass
		var sigmaCell, lnHCMid, regAmp, irrSigma float64
		for pass := 0; pass < 3; pass++ {
			sigmaCell = (math.Log(hc128) + rm - math.Log(avgTc)) / (x + zM)
			if sigmaCell <= 0.05 {
				sigmaCell = 0.05
			}
			lnHCMid = math.Log(hc128) - sigmaCell*x
			lift := disturb.Lift(geom.CellsPerRow, p.BERSat, sigmaCell)

			// RegAmp from the BER CV target: relative BER sensitivity to
			// the regular field is pdf(x)/Phi(x) per unit of lnHCMid/sigma.
			regAmp = spec.BERCV * (spec.BER128 / p.BERSat) / pdfX * sigmaCell
			if stdReg > 0 {
				regAmp /= stdReg
			}

			// IrrSigma: bisect so the sampled minimum hits the target.
			target := math.Log(minTc) - lnHCMid + lift
			irrSigma = bisectMin(reg, irr, bankOff, geom.RowsPerBank, regAmp, target)

			rm = regAmp*meanReg + meanOf(bankOff) + irrSigma*meanIrr
		}

		out = p
		out.SigmaCell = sigmaCell
		out.LnHCMid = lnHCMid
		out.RegAmp = regAmp
		out.IrrSigma = irrSigma

		// Correct the continuous average so the *quantized* average hits
		// the Table 5 value (censored rows count as 128K, as in the paper).
		model := disturb.NewModel(out, geom)
		sum := 0.0
		n := 0
		for _, b := range banks {
			for row := 0; row < geom.RowsPerBank; row += 1 {
				q, ok := model.QuantizedHCFirst(b, row, levels)
				if !ok {
					q = 128 * K
				}
				sum += q
				n++
			}
		}
		qAvg := sum / float64(n)
		adj := spec.AvgHC / qAvg
		if math.Abs(adj-1) < 0.01 {
			break
		}
		avgTc *= adj
	}
	return out, nil
}

// bisectMin finds s >= 0 such that
// min over samples of (regAmp·reg[row] + bankOff[i] + s·irr[i]) = target,
// where i indexes (bank, row) pairs row-major. The minimum is monotone
// non-increasing in s, and target is below the s=0 minimum in all
// calibrated modules.
func bisectMin(reg, irr, bankOff []float64, rowsPerBank int, regAmp, target float64) float64 {
	minAt := func(s float64) float64 {
		m := math.Inf(1)
		for i := range irr {
			v := regAmp*reg[i%rowsPerBank] + bankOff[i] + s*irr[i]
			if v < m {
				m = v
			}
		}
		return m
	}
	lo, hi := 0.0, 0.25
	for minAt(hi) > target {
		hi *= 2
		if hi > 64 {
			break
		}
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if minAt(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
