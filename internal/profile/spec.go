// Package profile defines the 15 DDR4 modules of the paper's Table 1 /
// Table 5, calibrates a disturbance model to each module's published
// characteristics (min/avg/max HCfirst, BER scale and coefficient of
// variation), and captures per-row read disturbance vulnerability
// profiles — the input Svärd consumes.
package profile

import "svard/internal/disturb"

// K follows the paper's convention: 2^10.
const K = 1024

// Manufacturer identifies one of the three DRAM vendors in the test pool.
type Manufacturer string

// The three manufacturers of Table 1.
const (
	MfrH Manufacturer = "SK Hynix"
	MfrM Manufacturer = "Micron"
	MfrS Manufacturer = "Samsung"
)

// Short returns the paper's single-letter manufacturer code.
func (m Manufacturer) Short() string {
	switch m {
	case MfrH:
		return "H"
	case MfrM:
		return "M"
	default:
		return "S"
	}
}

// StructSpec mirrors disturb.StructTerm for the spec table.
type StructSpec = disturb.StructTerm

// ModuleSpec describes one tested module: its Table 5 identity plus the
// calibration targets extracted from the paper's measurements.
type ModuleSpec struct {
	Label       string // paper's module label, e.g. "H0"
	Mfr         Manufacturer
	Chips       int    // DRAM chips on the module
	DensityGb   int    // per-chip density
	DieRev      string // die revision code
	Org         int    // chip organization: x4 / x8 / x16
	FreqMTs     int    // interface speed in MT/s
	DateCode    string // manufacturing date ww-yy ("N/A" when unknown)
	RowsPerBank int

	// Calibration targets.
	MinHC  float64 // Table 5 min HCfirst (hammers)
	AvgHC  float64 // Table 5 avg HCfirst
	MaxHC  float64 // Table 5 max HCfirst (128K means right-censored)
	BER128 float64 // mean per-row BER at HC=128K, tAggOn=36ns (Fig. 3)
	BERCV  float64 // coefficient of variation of BER across rows (Fig. 3)

	// Spatial character.
	PeriodFrac  float64      // period of the design-induced BER pattern
	ChunkCount  int          // manufacturing chunks across the bank
	ChunkWeight float64      // relative weight of the chunk term
	Struct      []StructSpec // address-bit structure (S modules, Table 3)
	ScrambleOps int          // complexity of the in-DRAM row scrambling
}

// Table5 returns the full inventory of tested modules, transcribed from
// the paper's Table 5 (identity, organization, HCfirst statistics) with
// BER scale/CV from Fig. 3 and spatial character consistent with Figs.
// 4-6 and Table 3. Struct amplitudes are chosen so that exactly the four
// Samsung modules S0, S1, S3, S4 exhibit spatial-feature F1 above 0.7,
// reproducing Takeaway 6.
func Table5() []ModuleSpec {
	return []ModuleSpec{
		{
			Label: "H0", Mfr: MfrH, Chips: 8, DensityGb: 16, DieRev: "A", Org: 8,
			FreqMTs: 3200, DateCode: "51-20", RowsPerBank: 128 * K,
			MinHC: 16 * K, AvgHC: 46.2 * K, MaxHC: 96 * K, BER128: 2.0e-2, BERCV: 0.0336,
			PeriodFrac: 0.5, ChunkCount: 16, ChunkWeight: 0.8, ScrambleOps: 4,
		},
		{
			Label: "H1", Mfr: MfrH, Chips: 8, DensityGb: 16, DieRev: "C", Org: 8,
			FreqMTs: 3200, DateCode: "51-20", RowsPerBank: 128 * K,
			MinHC: 12 * K, AvgHC: 54.0 * K, MaxHC: 128 * K, BER128: 3.2e-2, BERCV: 0.0225,
			PeriodFrac: 0.5, ChunkCount: 16, ChunkWeight: 0.8, ScrambleOps: 4,
		},
		{
			Label: "H2", Mfr: MfrH, Chips: 8, DensityGb: 16, DieRev: "C", Org: 8,
			FreqMTs: 3200, DateCode: "36-21", RowsPerBank: 128 * K,
			MinHC: 12 * K, AvgHC: 55.4 * K, MaxHC: 128 * K, BER128: 3.2e-2, BERCV: 0.0243,
			PeriodFrac: 0.5, ChunkCount: 16, ChunkWeight: 0.8, ScrambleOps: 4,
		},
		{
			Label: "H3", Mfr: MfrH, Chips: 8, DensityGb: 16, DieRev: "C", Org: 8,
			FreqMTs: 3200, DateCode: "36-21", RowsPerBank: 128 * K,
			MinHC: 12 * K, AvgHC: 57.8 * K, MaxHC: 128 * K, BER128: 3.2e-2, BERCV: 0.0199,
			PeriodFrac: 0.5, ChunkCount: 16, ChunkWeight: 0.8, ScrambleOps: 4,
		},
		{
			Label: "H4", Mfr: MfrH, Chips: 8, DensityGb: 8, DieRev: "D", Org: 8,
			FreqMTs: 3200, DateCode: "48-20", RowsPerBank: 64 * K,
			MinHC: 16 * K, AvgHC: 38.1 * K, MaxHC: 96 * K, BER128: 2.2e-2, BERCV: 0.025,
			PeriodFrac: 0.5, ChunkCount: 20, ChunkWeight: 1.2, ScrambleOps: 4,
		},
		{
			Label: "M0", Mfr: MfrM, Chips: 4, DensityGb: 16, DieRev: "E", Org: 16,
			FreqMTs: 3200, DateCode: "46-20", RowsPerBank: 128 * K,
			MinHC: 8 * K, AvgHC: 24.5 * K, MaxHC: 40 * K, BER128: 1.7e-2, BERCV: 0.008,
			PeriodFrac: 0.33, ChunkCount: 12, ChunkWeight: 0.6, ScrambleOps: 6,
		},
		{
			Label: "M1", Mfr: MfrM, Chips: 16, DensityGb: 8, DieRev: "B", Org: 4,
			FreqMTs: 2400, DateCode: "N/A", RowsPerBank: 128 * K,
			MinHC: 40 * K, AvgHC: 64.5 * K, MaxHC: 96 * K, BER128: 6.0e-4, BERCV: 0.0808,
			PeriodFrac: 0.33, ChunkCount: 10, ChunkWeight: 1.8, ScrambleOps: 6,
		},
		{
			Label: "M2", Mfr: MfrM, Chips: 16, DensityGb: 16, DieRev: "E", Org: 4,
			FreqMTs: 2933, DateCode: "14-20", RowsPerBank: 128 * K,
			MinHC: 8 * K, AvgHC: 28.6 * K, MaxHC: 48 * K, BER128: 8.0e-2, BERCV: 0.0063,
			PeriodFrac: 0.33, ChunkCount: 12, ChunkWeight: 0.6, ScrambleOps: 6,
		},
		{
			Label: "M3", Mfr: MfrM, Chips: 16, DensityGb: 8, DieRev: "B", Org: 4,
			FreqMTs: 2400, DateCode: "36-21", RowsPerBank: 128 * K,
			MinHC: 56 * K, AvgHC: 90.0 * K, MaxHC: 128 * K, BER128: 1.5e-4, BERCV: 0.0521,
			PeriodFrac: 0.33, ChunkCount: 10, ChunkWeight: 1.8, ScrambleOps: 6,
		},
		{
			Label: "M4", Mfr: MfrM, Chips: 4, DensityGb: 16, DieRev: "B", Org: 16,
			FreqMTs: 3200, DateCode: "26-21", RowsPerBank: 128 * K,
			MinHC: 12 * K, AvgHC: 42.2 * K, MaxHC: 96 * K, BER128: 2.2e-2, BERCV: 0.0065,
			PeriodFrac: 0.33, ChunkCount: 12, ChunkWeight: 0.6, ScrambleOps: 6,
		},
		{
			Label: "S0", Mfr: MfrS, Chips: 8, DensityGb: 8, DieRev: "B", Org: 8,
			FreqMTs: 2666, DateCode: "52-20", RowsPerBank: 64 * K,
			MinHC: 32 * K, AvgHC: 57.0 * K, MaxHC: 128 * K, BER128: 1.15e-3, BERCV: 0.0437,
			PeriodFrac: 0.25, ChunkCount: 16, ChunkWeight: 0.9, ScrambleOps: 3,
			Struct: []StructSpec{
				{Kind: disturb.SubarrayBit, Bit: 0, Amp: 0.9},
				{Kind: disturb.RowBit, Bit: 7, Amp: 0.5},
				{Kind: disturb.RowBit, Bit: 8, Amp: 0.4},
				{Kind: disturb.DistanceBit, Bit: 7, Amp: 0.3},
			},
		},
		{
			Label: "S1", Mfr: MfrS, Chips: 8, DensityGb: 8, DieRev: "B", Org: 8,
			FreqMTs: 2666, DateCode: "52-20", RowsPerBank: 64 * K,
			MinHC: 24 * K, AvgHC: 59.8 * K, MaxHC: 128 * K, BER128: 1.3e-3, BERCV: 0.0577,
			PeriodFrac: 0.25, ChunkCount: 16, ChunkWeight: 0.9, ScrambleOps: 3,
			Struct: []StructSpec{
				{Kind: disturb.RowBit, Bit: 7, Amp: 0.5},
				{Kind: disturb.RowBit, Bit: 8, Amp: 0.45},
				{Kind: disturb.RowBit, Bit: 10, Amp: 0.4},
				{Kind: disturb.RowBit, Bit: 12, Amp: 0.35},
				{Kind: disturb.SubarrayBit, Bit: 0, Amp: 0.8},
			},
		},
		{
			Label: "S2", Mfr: MfrS, Chips: 8, DensityGb: 8, DieRev: "B", Org: 8,
			FreqMTs: 2666, DateCode: "10-21", RowsPerBank: 64 * K,
			MinHC: 12 * K, AvgHC: 42.7 * K, MaxHC: 96 * K, BER128: 1.3e-2, BERCV: 0.041,
			PeriodFrac: 0.25, ChunkCount: 16, ChunkWeight: 0.9, ScrambleOps: 3,
		},
		{
			Label: "S3", Mfr: MfrS, Chips: 8, DensityGb: 4, DieRev: "F", Org: 8,
			FreqMTs: 2400, DateCode: "04-21", RowsPerBank: 32 * K,
			MinHC: 16 * K, AvgHC: 59.2 * K, MaxHC: 128 * K, BER128: 1.9e-2, BERCV: 0.0299,
			PeriodFrac: 0.25, ChunkCount: 12, ChunkWeight: 0.9, ScrambleOps: 3,
			Struct: []StructSpec{
				{Kind: disturb.RowBit, Bit: 10, Amp: 0.60},
				{Kind: disturb.DistanceBit, Bit: 1, Amp: 0.4},
				{Kind: disturb.DistanceBit, Bit: 2, Amp: 0.4},
			},
		},
		{
			Label: "S4", Mfr: MfrS, Chips: 16, DensityGb: 8, DieRev: "C", Org: 4,
			FreqMTs: 2666, DateCode: "35-21", RowsPerBank: 128 * K,
			MinHC: 12 * K, AvgHC: 55.4 * K, MaxHC: 128 * K, BER128: 1.25e-2, BERCV: 0.0365,
			PeriodFrac: 0.25, ChunkCount: 16, ChunkWeight: 0.9, ScrambleOps: 3,
			Struct: []StructSpec{
				{Kind: disturb.SubarrayBit, Bit: 0, Amp: 0.62},
			},
		},
	}
}

// SpecByLabel returns the Table 5 spec with the given label.
func SpecByLabel(label string) (ModuleSpec, bool) {
	for _, s := range Table5() {
		if s.Label == label {
			return s, true
		}
	}
	return ModuleSpec{}, false
}

// TestedBanks returns the representative banks the paper sweeps, one per
// bank group: 1, 4, 10, and 15 (§4.3).
func TestedBanks() []int { return []int{1, 4, 10, 15} }
