package profile

import (
	"math"
	"testing"
	"testing/quick"

	"svard/internal/disturb"
	"svard/internal/stats"
)

func TestTable5Inventory(t *testing.T) {
	specs := Table5()
	if len(specs) != 15 {
		t.Fatalf("got %d modules, want 15", len(specs))
	}
	chips := 0
	designs := map[string]bool{}
	byMfr := map[Manufacturer]int{}
	for _, s := range specs {
		chips += s.Chips
		designs[string(s.Mfr)+"/"+s.DieRev+"/"+itoa(s.DensityGb)+"/x"+itoa(s.Org)] = true
		byMfr[s.Mfr]++
		if s.MinHC >= s.AvgHC || s.AvgHC >= s.MaxHC {
			t.Errorf("%s: min/avg/max not ordered", s.Label)
		}
		if s.RowsPerBank%K != 0 {
			t.Errorf("%s: odd row count %d", s.Label, s.RowsPerBank)
		}
	}
	if chips != 144 {
		t.Errorf("total chips = %d, want 144 (paper abstract)", chips)
	}
	if len(designs) != 10 {
		t.Errorf("distinct chip designs = %d, want 10", len(designs))
	}
	if byMfr[MfrH] != 5 || byMfr[MfrM] != 5 || byMfr[MfrS] != 5 {
		t.Errorf("modules per manufacturer = %v, want 5 each", byMfr)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestSpecByLabel(t *testing.T) {
	s, ok := SpecByLabel("M2")
	if !ok || s.Mfr != MfrM || s.BER128 != 8.0e-2 {
		t.Errorf("SpecByLabel(M2) = %+v, %v", s, ok)
	}
	if _, ok := SpecByLabel("Z9"); ok {
		t.Error("unknown label found")
	}
}

func TestTestedBanks(t *testing.T) {
	b := TestedBanks()
	want := []int{1, 4, 10, 15}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("tested banks = %v, want %v", b, want)
		}
	}
}

// buildScaledForTest builds a module with a small bank so the full
// calibration is fast.
func buildScaledForTest(t *testing.T, label string) *Module {
	t.Helper()
	spec, ok := SpecByLabel(label)
	if !ok {
		t.Fatalf("unknown label %s", label)
	}
	m, err := BuildScaled(spec, 1, 4*K, 8*K)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCalibrationHitsTargets(t *testing.T) {
	// Calibration must reproduce each module's Table 5 min (exactly, on
	// the quantized grid), avg (within tolerance), and Fig. 3 BER scale.
	levels := disturb.HammerLevels()
	for _, label := range []string{"H0", "M0", "M2", "M3", "S0"} {
		label := label
		t.Run(label, func(t *testing.T) {
			m := buildScaledForTest(t, label)
			model := m.NewModel()
			banks := TestedBanks()

			var quantized []float64
			var bers []float64
			minHC := math.Inf(1)
			for _, b := range banks {
				for row := 0; row < m.Geom.RowsPerBank; row++ {
					hcf := model.HCFirst(b, row)
					if hcf < minHC {
						minHC = hcf
					}
					q, ok := disturb.Quantize(levels, hcf)
					if !ok {
						q = 128 * K
					}
					quantized = append(quantized, q)
					bers = append(bers, model.BER(b, row, 128*K))
				}
			}
			qs := stats.Summarize(quantized)
			if qs.Min != m.Spec.MinHC {
				t.Errorf("quantized min = %v, want %v", qs.Min, m.Spec.MinHC)
			}
			if rel := math.Abs(qs.Mean-m.Spec.AvgHC) / m.Spec.AvgHC; rel > 0.12 {
				t.Errorf("quantized avg = %v, want %v (+-12%%)", qs.Mean, m.Spec.AvgHC)
			}
			bs := stats.Summarize(bers)
			if rel := math.Abs(bs.Mean-m.Spec.BER128) / m.Spec.BER128; rel > 0.35 {
				t.Errorf("mean BER128 = %v, want %v (+-35%%)", bs.Mean, m.Spec.BER128)
			}
			if m.Spec.MaxHC < 128*K && qs.Max > m.Spec.MaxHC {
				t.Errorf("quantized max = %v exceeds cap %v", qs.Max, m.Spec.MaxHC)
			}
		})
	}
}

func TestCalibrationBERCVOrdering(t *testing.T) {
	// M1 (CV 8.08%) must show much larger BER spread than M4 (CV 0.65%).
	cv := func(label string) float64 {
		m := buildScaledForTest(t, label)
		model := m.NewModel()
		var bers []float64
		for row := 0; row < m.Geom.RowsPerBank; row++ {
			bers = append(bers, model.BER(1, row, 128*K))
		}
		return stats.Summarize(bers).CV()
	}
	if cvM1, cvM4 := cv("M1"), cv("M4"); cvM1 < 3*cvM4 {
		t.Errorf("BER CV ordering violated: M1=%v M4=%v", cvM1, cvM4)
	}
}

func TestCaptureAndSafety(t *testing.T) {
	m := buildScaledForTest(t, "S0")
	model := m.NewModel()
	banks := TestedBanks()
	p := Capture(model, m.Spec.Label, banks)

	// Security invariant: every safe threshold is strictly below the
	// row's true HCfirst.
	for _, b := range banks {
		for row := 0; row < m.Geom.RowsPerBank; row++ {
			if th := p.SafeThreshold(b, row); th >= model.HCFirst(b, row) {
				t.Fatalf("bank %d row %d: safe threshold %v >= true HCfirst %v",
					b, row, th, model.HCFirst(b, row))
			}
		}
	}
	if p.NumBins() > 16 {
		t.Errorf("profile uses %d bins, must fit a 4-bit id (<=16)", p.NumBins())
	}
	counts := p.BinCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(banks)*m.Geom.RowsPerBank {
		t.Errorf("bin counts cover %d rows, want %d", total, len(banks)*m.Geom.RowsPerBank)
	}
}

func TestProfileUncharacterizedBankFallback(t *testing.T) {
	m := buildScaledForTest(t, "H0")
	p := Capture(m.NewModel(), "H0", TestedBanks())
	// Bank 0 was not characterized: lookups must still work and return a
	// representative bank's value.
	th := p.SafeThreshold(0, 123)
	if th <= 0 {
		t.Errorf("fallback threshold = %v", th)
	}
}

func TestScaledProfile(t *testing.T) {
	m := buildScaledForTest(t, "M0")
	p := Capture(m.NewModel(), "M0", TestedBanks())
	s := p.ScaledTo(1024)
	if got := s.MinSafeThreshold(); math.Abs(got-1024) > 1e-9 {
		t.Errorf("scaled min = %v, want 1024", got)
	}
	// Scaling preserves ratios.
	r0 := p.SafeThreshold(1, 0) / p.MinSafeThreshold()
	r1 := s.SafeThreshold(1, 0) / s.MinSafeThreshold()
	if math.Abs(r0-r1) > 1e-9 {
		t.Errorf("scaling distorted ratios: %v vs %v", r0, r1)
	}
}

func TestProfileRoundTrip(t *testing.T) {
	m := buildScaledForTest(t, "S3")
	p := Capture(m.NewModel(), "S3", TestedBanks())
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Label != p.Label || q.RowsPerBank != p.RowsPerBank {
		t.Fatal("metadata lost in round trip")
	}
	for b := range p.Bins {
		for r := range p.Bins[b] {
			if p.Bins[b][r] != q.Bins[b][r] {
				t.Fatalf("bin mismatch at %d/%d", b, r)
			}
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte(`{"label":"x","rows_per_bank":10,"banks":[1,2],"levels":[1],"bins":[[0]]}`)); err == nil {
		t.Error("inconsistent bins accepted")
	}
	if _, err := Unmarshal([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSetBinSemantics(t *testing.T) {
	p := NewEmpty("t", 4, []int{0}, []float64{10, 20, 30})
	p.SetBin(0, 0, 0) // flips at first level
	if p.SafeThreshold(0, 0) != 5 {
		t.Errorf("below-grid safe threshold = %v, want levels[0]/2", p.SafeThreshold(0, 0))
	}
	p.SetBin(0, 1, 2) // first flip at level idx 2 -> safe = levels[1]
	if p.SafeThreshold(0, 1) != 20 {
		t.Errorf("safe threshold = %v, want 20", p.SafeThreshold(0, 1))
	}
	p.SetBin(0, 2, 3) // censored -> safe = top level
	if p.SafeThreshold(0, 2) != 30 {
		t.Errorf("censored safe threshold = %v, want 30", p.SafeThreshold(0, 2))
	}
	// Unmeasured row stays most conservative.
	if p.SafeThreshold(0, 3) != 5 {
		t.Errorf("unmeasured safe threshold = %v, want 5", p.SafeThreshold(0, 3))
	}
}

func TestQuickSafeThresholdPositive(t *testing.T) {
	m := buildScaledForTest(t, "H4")
	p := Capture(m.NewModel(), "H4", TestedBanks())
	f := func(bank uint8, row uint16) bool {
		th := p.SafeThreshold(int(bank)%16, int(row)%p.RowsPerBank)
		return th > 0 && th <= 128*K
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZeroBankProfileConservative(t *testing.T) {
	// A degenerate profile with no characterized banks is only
	// constructible by hand, but lookups on one must stay conservative
	// instead of dividing by zero in the representative-bank modulo.
	p := &VulnProfile{Label: "empty", RowsPerBank: 4, Levels: []float64{10, 20}}
	if idx := p.SafeIdx(3, 2); idx != BinBelowGrid {
		t.Errorf("SafeIdx on empty profile = %d, want BinBelowGrid", idx)
	}
	if th := p.SafeThreshold(3, 2); th != 5 {
		t.Errorf("SafeThreshold on empty profile = %v, want levels[0]/2", th)
	}
	p.Levels = nil
	if th := p.SafeThreshold(0, 0); th != 0 {
		t.Errorf("SafeThreshold with no levels = %v, want 0", th)
	}
}

func TestNewEmptyPanicsOnBadShape(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewEmpty with no banks", func() { NewEmpty("t", 4, nil, []float64{10}) })
	mustPanic("NewEmpty with no levels", func() { NewEmpty("t", 4, []int{0}, nil) })
	bigGrid := make([]float64, BinBelowGrid)
	for i := range bigGrid {
		bigGrid[i] = float64(i + 1)
	}
	mustPanic("NewEmpty with 255 levels", func() { NewEmpty("t", 4, []int{0}, bigGrid) })
	// One below the reserved marker is the largest legal grid.
	if p := NewEmpty("t", 4, []int{0}, bigGrid[:BinBelowGrid-1]); p.NumBins() == 0 {
		t.Error("254-level grid rejected")
	}
}

func TestUnmarshalRejectsBadShapes(t *testing.T) {
	cases := map[string]string{
		"no banks":         `{"label":"x","rows_per_bank":2,"banks":[],"levels":[1],"bins":[]}`,
		"no levels":        `{"label":"x","rows_per_bank":2,"banks":[1],"levels":[],"bins":[[255,255]]}`,
		"zero rows":        `{"label":"x","rows_per_bank":0,"banks":[1],"levels":[1],"bins":[[]]}`,
		"out-of-range bin": `{"label":"x","rows_per_bank":2,"banks":[1],"levels":[1,2],"bins":[[0,2]]}`,
	}
	for name, data := range cases {
		if _, err := Unmarshal([]byte(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// BinBelowGrid is always legal, as is the top real index.
	ok := `{"label":"x","rows_per_bank":2,"banks":[1],"levels":[1,2],"bins":[[255,1]]}`
	if _, err := Unmarshal([]byte(ok)); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestRepresentativeLabelsExist(t *testing.T) {
	for _, l := range RepresentativeLabels() {
		if _, ok := SpecByLabel(l); !ok {
			t.Errorf("representative module %s missing from Table 5", l)
		}
	}
}
