package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with the same seed diverged at step %d", i)
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d times in 1000 draws", same)
	}
}

func TestHash64TupleSensitivity(t *testing.T) {
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Error("Hash64 is order-insensitive")
	}
	if Hash64(1) == Hash64(1, 0) {
		t.Error("Hash64 is length-insensitive")
	}
	if Hash64() == Hash64(0) {
		t.Error("Hash64 empty tuple collides with (0)")
	}
}

func TestHash64Stability(t *testing.T) {
	// Guard against accidental changes to the hash: the whole simulated
	// universe is derived from it, so its outputs are part of the contract.
	got := Hash64(7, 11, 13)
	if got != Hash64(7, 11, 13) {
		t.Fatal("Hash64 is not a pure function")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestGumbelMean(t *testing.T) {
	// Standard Gumbel has mean equal to the Euler-Mascheroni constant.
	const gamma = 0.5772156649
	r := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Gumbel()
	}
	if got := sum / n; math.Abs(got-gamma) > 0.02 {
		t.Errorf("gumbel mean = %v, want ~%v", got, gamma)
	}
}

func TestBinomialExactSmall(t *testing.T) {
	r := New(7)
	const n, p, trials = 20, 0.3, 50000
	sum := 0
	for i := 0; i < trials; i++ {
		k := r.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("binomial out of range: %d", k)
		}
		sum += k
	}
	mean := float64(sum) / trials
	if math.Abs(mean-n*p) > 0.1 {
		t.Errorf("binomial mean = %v, want ~%v", mean, n*p)
	}
}

func TestBinomialApproxLarge(t *testing.T) {
	r := New(8)
	const n, p, trials = 100000, 0.2, 2000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(r.Binomial(n, p))
	}
	mean := sum / trials
	want := float64(n) * p
	if math.Abs(mean-want)/want > 0.01 {
		t.Errorf("binomial mean = %v, want ~%v", mean, want)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(9)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d, want 0", got)
	}
	if got := r.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d, want 0", got)
	}
	if got := r.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d, want 10", got)
	}
	if got := r.Binomial(10, -0.5); got != 0 {
		t.Errorf("Binomial(10, -0.5) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(10)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 0.99)
	r := New(11)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[500] {
		t.Errorf("zipf not skewed: count[0]=%d count[500]=%d", counts[0], counts[500])
	}
	// Head items should dominate: top 10 should carry well over 10% mass.
	head := 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	if float64(head)/n < 0.2 {
		t.Errorf("zipf head mass = %v, want > 0.2", float64(head)/n)
	}
}

func TestZipfSampleInRange(t *testing.T) {
	z := NewZipf(7, 1.2)
	r := New(12)
	for i := 0; i < 10000; i++ {
		s := z.Sample(r)
		if s < 0 || s >= 7 {
			t.Fatalf("zipf sample out of range: %d", s)
		}
	}
}

func TestAtMatchesHash(t *testing.T) {
	a := At(1, 2, 3)
	b := New(Hash64(1, 2, 3))
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("At stream differs from New(Hash64) stream")
		}
	}
}

// Property: stateless samplers are pure functions of their coordinates.
func TestQuickStatelessSamplersPure(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return UniformAt(a, b, c) == UniformAt(a, b, c) &&
			NormalAt(a, b, c) == NormalAt(a, b, c) &&
			GumbelAt(a, b, c) == GumbelAt(a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: UniformAt is always in [0,1) and NormalAt/GumbelAt are finite.
func TestQuickSamplerRanges(t *testing.T) {
	f := func(a, b uint64) bool {
		u := UniformAt(a, b)
		return u >= 0 && u < 1 &&
			!math.IsNaN(NormalAt(a, b)) && !math.IsInf(NormalAt(a, b), 0) &&
			!math.IsNaN(GumbelAt(a, b)) && !math.IsInf(GumbelAt(a, b), 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Mix64 is a bijection-ish mixer — no fixed collisions on
// sequential inputs (sanity, not a proof).
func TestQuickMix64NoTrivialCollisions(t *testing.T) {
	f := func(x uint64) bool {
		return Mix64(x) != Mix64(x+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintNPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UintN(0) did not panic")
		}
	}()
	New(13).UintN(0)
}

func TestUintNBounds(t *testing.T) {
	r := New(14)
	for _, n := range []uint64{1, 2, 3, 7, 16, 100, 1 << 33, ^uint64(0)} {
		for i := 0; i < 200; i++ {
			if v := r.UintN(n); v >= n {
				t.Fatalf("UintN(%d) = %d out of range", n, v)
			}
		}
	}
	for i := 0; i < 100; i++ {
		if v := r.UintN(1); v != 0 {
			t.Fatalf("UintN(1) = %d, want 0", v)
		}
	}
}

func TestUintNPowerOfTwoMatchesMask(t *testing.T) {
	// The power-of-two fast path must be a pure mask of the next Uint64,
	// consuming exactly one draw.
	a, b := New(15), New(15)
	for i := 0; i < 1000; i++ {
		if got, want := a.UintN(64), b.Uint64()&63; got != want {
			t.Fatalf("step %d: UintN(64) = %d, want %d", i, got, want)
		}
	}
}

func TestUintNUnbiased(t *testing.T) {
	// n = 3 maximizes the modulo bias UintN exists to remove; with
	// rejection each residue should land within a few sigma of n/3.
	r := New(16)
	const n, trials = 3, 300000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.UintN(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.01 {
			t.Errorf("UintN(3) residue %d: %d draws, want ~%.0f", v, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkHash64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Hash64(uint64(i), 42, 7)
	}
}
