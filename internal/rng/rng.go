// Package rng provides the deterministic random-number substrate used by
// every other package in this repository.
//
// All simulated physics (per-cell disturbance thresholds, spatial
// variation fields, workload generation, defense randomness) must be
// bit-reproducible across runs and must be computable lazily for any
// coordinate without materializing state for the whole device. The
// package therefore offers two complementary primitives:
//
//   - Rand: a sequential xoshiro256** stream for places that consume an
//     ordered sequence of random values (workload generators, PARA's coin
//     flips, k-means initialization).
//   - Hash64 / the *At samplers: a stateless stable hash so that the
//     value attached to a coordinate tuple (seed, bank, row, cell, ...)
//     can be recomputed on demand, in any order, from anywhere.
package rng

import "math"

// splitMix64 advances a SplitMix64 state and returns the next value.
// SplitMix64 is the canonical seeding/diffusion function recommended by
// the xoshiro authors; it is also an excellent 64-bit mixer.
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Mix64 diffuses a single 64-bit value through the SplitMix64 finalizer.
// It is used to derive independent sub-seeds from one master seed.
func Mix64(x uint64) uint64 {
	_, v := splitMix64(x)
	return v
}

// Hash64 hashes an arbitrary tuple of 64-bit coordinates into a single
// well-mixed 64-bit value. Distinct tuples (including tuples of different
// lengths) produce independent-looking outputs.
func Hash64(parts ...uint64) uint64 {
	h := uint64(0x51ed2701a9e0a3d5) // arbitrary odd constant
	for _, p := range parts {
		h = Mix64(h ^ p)
	}
	// Fold in the length so (a) and (a,0) differ.
	return Mix64(h ^ uint64(len(parts))<<56)
}

// Rand is a xoshiro256** pseudo-random stream. The zero value is not
// valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a stream seeded from seed via SplitMix64, per the xoshiro
// reference implementation.
func New(seed uint64) *Rand {
	var r Rand
	r.Reseed(seed)
	return &r
}

// Reseed reinitializes the stream in place to the exact state New(seed)
// produces — the allocation-free form pooled simulation state uses.
func (r *Rand) Reseed(seed uint64) {
	st := seed
	for i := range r.s {
		st, r.s[i] = splitMix64(st)
	}
}

// At returns a stream whose seed is the stable hash of the coordinate
// tuple. Streams for distinct tuples are independent.
func At(parts ...uint64) *Rand {
	return New(Hash64(parts...))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a near-uniform value in [0, n). It panics if n <= 0.
//
// Intn deliberately retains the textbook modulo bias of Uint64()%n: the
// bias is at most n/2^64 per value (immeasurable for every n this
// repository uses), and every golden fixture, calibrated module, and
// content-addressed cache key downstream was produced through this
// exact reduction, so changing it would silently move all of them. New
// code that needs exact uniformity — the population sampler — uses
// UintN instead.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// UintN returns an exactly uniform value in [0, n) by bounded rejection:
// values above the largest multiple of n are redrawn, so every residue
// is equally likely (no modulo bias). Powers of two reduce to a mask and
// never reject. It panics if n == 0.
func (r *Rand) UintN(n uint64) uint64 {
	if n == 0 {
		panic("rng: UintN called with n == 0")
	}
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Largest multiple of n that fits in a uint64; at worst (n just above
	// 2^63) this rejects just under half of all draws.
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		if v := r.Uint64(); v < limit {
			return v % n
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Gumbel returns a standard Gumbel (type-I extreme value) variate with
// location 0 and scale 1. Gumbel is the limiting distribution of the
// maximum of many light-tailed variates, which is exactly the role it
// plays in the weakest-cell model of package disturb (the minimum of many
// lognormal cell thresholds).
func (r *Rand) Gumbel() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(-math.Log(u))
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Binomial returns the number of successes in n Bernoulli(p) trials.
// Small n·p uses exact inversion; large n uses a normal approximation,
// which is accurate to well under the sampling noise of the simulations
// that consume it.
func (r *Rand) Binomial(n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	mean := float64(n) * p
	if n <= 64 || mean < 16 {
		// Exact: count successes.
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a Zipf distribution over [0, n) with exponent s > 0,
// using inverse-CDF over precomputed weights. Use NewZipf for repeated
// sampling over the same support.
type Zipf struct {
	cdf []float64
	// coarse[k] is the first index i with cdf[i] >= k/len(coarse): a
	// first-level index that narrows Sample's binary search to a few
	// entries instead of log2(n) cache-missing probes over the full CDF.
	// The narrowed search returns the identical index (first cdf >= u).
	coarse []int32
}

// NewZipf prepares a Zipf sampler over n items with exponent s.
// Item 0 is the most popular. It panics if n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf n <= 0")
	}
	if s <= 0 {
		panic("rng: NewZipf s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	coarse := make([]int32, 1024)
	i := 0
	for k := range coarse {
		u := float64(k) / float64(len(coarse))
		for i < n-1 && cdf[i] < u {
			i++
		}
		coarse[k] = int32(i)
	}
	return &Zipf{cdf: cdf, coarse: coarse}
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one item index from the distribution using stream r.
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	// Binary search for the first cdf[i] >= u, narrowed by the coarse
	// index: cdf[coarse[k]-1] < k/K <= u (when coarse[k] > 0), and the
	// answer for u < (k+1)/K is at most coarse[k+1].
	k := int(u * float64(len(z.coarse)))
	lo := int(z.coarse[k])
	hi := len(z.cdf) - 1
	if k+1 < len(z.coarse) {
		hi = int(z.coarse[k+1])
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UniformAt returns the uniform [0,1) value stably attached to a
// coordinate tuple.
func UniformAt(parts ...uint64) float64 {
	return float64(Hash64(parts...)>>11) / (1 << 53)
}

// NormalAt returns a standard normal variate stably attached to a
// coordinate tuple.
func NormalAt(parts ...uint64) float64 {
	h := Hash64(parts...)
	u1 := float64(h>>11) / (1 << 53)
	u2 := float64(Mix64(h)>>11) / (1 << 53)
	if u1 <= 0 {
		u1 = 0x1p-53
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// GumbelAt returns a standard Gumbel variate stably attached to a
// coordinate tuple.
func GumbelAt(parts ...uint64) float64 {
	u := UniformAt(parts...)
	if u <= 0 {
		u = 0x1p-53
	}
	return -math.Log(-math.Log(u))
}
