// Package testbench is the DRAM-Bender equivalent: it drives a
// command-level dram.Device through the paper's test programs (Alg. 1):
// double-sided hammering, BER measurement, worst-case data pattern
// search, the 14-level hammer count sweep, single-sided footprint tests
// for subarray reverse engineering, and RowClone probes.
//
// Interference elimination follows §4.1: refresh stays disabled during
// test programs, every measurement's execution time is checked against
// the refresh window (retention budget), and the device model has no ECC
// to mask bitflips.
package testbench

import (
	"fmt"

	"svard/internal/dram"
)

// TemperatureControl is implemented by disturbance models whose
// behaviour depends on chip temperature; the bench acts as the PID
// temperature controller holding the set point.
type TemperatureControl interface {
	SetTemperature(c float64)
}

// Bench wires a device to the test programs.
type Bench struct {
	Dev *dram.Device
	// EnforceBudget aborts measurements that would exceed the refresh
	// window (data retention would interfere with read disturbance).
	EnforceBudget bool

	temp TemperatureControl
}

// New builds a bench over dev. temp may be nil when the attached sink
// has no temperature dependence.
func New(dev *dram.Device, temp TemperatureControl) *Bench {
	dev.SetRefreshEnabled(false)
	return &Bench{Dev: dev, EnforceBudget: true, temp: temp}
}

// SetTemperature moves the heater set point (±0.5 °C in the real rig;
// exact here).
func (b *Bench) SetTemperature(c float64) {
	if b.temp != nil {
		b.temp.SetTemperature(c)
	}
}

// BudgetError reports a measurement whose execution time would exceed
// the refresh window, so data retention could interfere with read
// disturbance (§4.1, second measure).
type BudgetError struct {
	NeedNs, BudgetNs float64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("testbench: measurement needs %.2f ms, refresh window is %.2f ms",
		e.NeedNs/1e6, e.BudgetNs/1e6)
}

// AggressorRows returns the logical addresses of the two rows physically
// adjacent to the victim (the reverse-engineered double-sided aggressor
// pair, §4.3 "Finding Physically Adjacent Rows"). It fails when the
// victim sits at a subarray edge, where it has no same-subarray
// neighbour on one side.
func (b *Bench) AggressorRows(bank, victimLogical int) (lo, hi int, err error) {
	g := b.Dev.Geom
	vp := b.Dev.Map.LogicalToPhysical(victimLogical)
	if vp-1 < 0 || vp+1 >= g.RowsPerBank ||
		!g.SameSubarray(vp, vp-1) || !g.SameSubarray(vp, vp+1) {
		return 0, 0, fmt.Errorf("testbench: victim %d (phys %d) has no double-sided aggressors", victimLogical, vp)
	}
	return b.Dev.Map.PhysicalToLogical(vp - 1), b.Dev.Map.PhysicalToLogical(vp + 1), nil
}

// InitRow activates a row, writes the pattern across it, and precharges.
func (b *Bench) InitRow(bank, logicalRow int, p dram.Pattern) error {
	return b.initRow(bank, logicalRow, p)
}

// ReadFlips activates a row, reads it back, and returns the number of
// cells that differ from the last written pattern.
func (b *Bench) ReadFlips(bank, logicalRow int) (int, error) {
	return b.readFlips(bank, logicalRow)
}

// initRow activates a row, writes the pattern across it, and precharges.
func (b *Bench) initRow(bank, logicalRow int, p dram.Pattern) error {
	d := b.Dev
	if err := d.Activate(bank, logicalRow); err != nil {
		return err
	}
	d.Wait(d.Tim.TRCD)
	if err := d.WriteOpenRow(bank, p); err != nil {
		return err
	}
	if left := d.Tim.TRAS - d.Tim.TRCD; left > 0 {
		d.Wait(left)
	}
	if err := d.Precharge(bank); err != nil {
		return err
	}
	d.Wait(d.Tim.TRP)
	return nil
}

// readFlips activates a row, reads it back, counts mismatches against
// the last written pattern, and precharges.
func (b *Bench) readFlips(bank, logicalRow int) (int, error) {
	d := b.Dev
	if err := d.Activate(bank, logicalRow); err != nil {
		return 0, err
	}
	d.Wait(d.Tim.TRCD)
	n, _, err := d.ReadOpenRowFlips(bank, false)
	if err != nil {
		return 0, err
	}
	d.Wait(d.Tim.TRTP) // read-to-precharge
	if err := d.Precharge(bank); err != nil {
		return 0, err
	}
	d.Wait(d.Tim.TRP)
	return n, nil
}

// hammerTimeNs returns the wall-clock a double-sided hammer run takes.
func (b *Bench) hammerTimeNs(pairs int, tAggOnNs float64) float64 {
	per := b.Dev.Tim.TCK + tAggOnNs + b.Dev.Tim.TCK + b.Dev.Tim.TRP
	return float64(2*pairs) * per
}

// MeasureBER is Alg. 1's measure_BER: initialize the victim with the
// pattern and the aggressors with its inverse, hammer double-sided hc
// times with the given aggressor on-time, read the victim back, and
// return the bit error rate.
func (b *Bench) MeasureBER(bank, victimLogical int, p dram.Pattern, hc int, tAggOnNs float64) (float64, error) {
	lo, hi, err := b.AggressorRows(bank, victimLogical)
	if err != nil {
		return 0, err
	}
	if b.EnforceBudget {
		if need := b.hammerTimeNs(hc, tAggOnNs); need > b.Dev.Tim.TREFW {
			return 0, &BudgetError{NeedNs: need, BudgetNs: b.Dev.Tim.TREFW}
		}
	}
	if err := b.initRow(bank, victimLogical, p); err != nil {
		return 0, err
	}
	inv := p.Inverse()
	if err := b.initRow(bank, lo, inv); err != nil {
		return 0, err
	}
	if err := b.initRow(bank, hi, inv); err != nil {
		return 0, err
	}
	if err := b.Dev.HammerDoubleSided(bank, lo, hi, hc, tAggOnNs); err != nil {
		return 0, err
	}
	flips, err := b.readFlips(bank, victimLogical)
	if err != nil {
		return 0, err
	}
	return float64(flips) / float64(b.Dev.Geom.CellsPerRow), nil
}

// FindWCDP sweeps the six data patterns of Table 2 at the given hammer
// count (the paper uses 128K) and returns the pattern with the largest
// BER, plus that BER.
func (b *Bench) FindWCDP(bank, victimLogical, hc int, tAggOnNs float64) (dram.Pattern, float64, error) {
	best := dram.RowStripe
	bestBER := -1.0
	for _, p := range dram.AllPatterns {
		ber, err := b.MeasureBER(bank, victimLogical, p, hc, tAggOnNs)
		if err != nil {
			return 0, 0, err
		}
		if ber > bestBER {
			best, bestBER = p, ber
		}
	}
	return best, bestBER, nil
}

// SweepResult is the outcome of a hammer-count sweep on one victim row.
type SweepResult struct {
	WCDP dram.Pattern
	// FirstFlipIdx is the index of the smallest tested level that
	// produced a bitflip; len(levels) when no tested level flipped the
	// row (right-censored).
	FirstFlipIdx int
	// TestedUpTo is the number of levels actually run; sweeps stop early
	// at the first flip, and the retention budget can censor long
	// RowPress runs before the top level.
	TestedUpTo int
	// BER per tested level (zero beyond TestedUpTo).
	BER []float64
}

// MeasureHCFirst runs Alg. 1's per-row core: find the WCDP at
// levels[len-1], then sweep the levels ascending and record the first
// level that flips the row.
func (b *Bench) MeasureHCFirst(bank, victimLogical int, levels []float64, tAggOnNs float64) (SweepResult, error) {
	res := SweepResult{FirstFlipIdx: len(levels), BER: make([]float64, len(levels))}
	// The WCDP search runs at the minimum on-time: at long RowPress
	// on-times a 128K-hammer run would not fit the retention budget.
	wcdp, _, err := b.FindWCDP(bank, victimLogical, int(levels[len(levels)-1]), b.Dev.Tim.TRAS)
	if err != nil {
		return res, err
	}
	res.WCDP = wcdp
	for i, hc := range levels {
		if b.EnforceBudget {
			if need := b.hammerTimeNs(int(hc), tAggOnNs); need > b.Dev.Tim.TREFW {
				break // censored by the retention budget (long RowPress runs)
			}
		}
		ber, err := b.MeasureBER(bank, victimLogical, wcdp, int(hc), tAggOnNs)
		if err != nil {
			return res, err
		}
		res.BER[i] = ber
		res.TestedUpTo = i + 1
		if ber > 0 {
			res.FirstFlipIdx = i
			break
		}
	}
	return res, nil
}

// SingleSidedFootprint hammers one row single-sided and reports which of
// the candidate physical neighbours (distance 1 and 2 on both sides)
// experienced bitflips — the per-row signal behind subarray boundary
// detection (§5.4.1, Key Insight 1).
func (b *Bench) SingleSidedFootprint(bank, aggLogical, acts int, tAggOnNs float64) (victims []int, err error) {
	g := b.Dev.Geom
	aggPhys := b.Dev.Map.LogicalToPhysical(aggLogical)
	var candidates []int
	for _, d := range [...]int{-2, -1, 1, 2} {
		if v := aggPhys + d; v >= 0 && v < g.RowsPerBank {
			candidates = append(candidates, v)
		}
	}
	// Initialize aggressor and candidates with opposite stripes.
	if err := b.initRow(bank, aggLogical, dram.RowStripe.Inverse()); err != nil {
		return nil, err
	}
	for _, v := range candidates {
		if err := b.initRow(bank, b.Dev.Map.PhysicalToLogical(v), dram.RowStripe); err != nil {
			return nil, err
		}
	}
	if err := b.Dev.HammerSingleSided(bank, aggLogical, acts, tAggOnNs); err != nil {
		return nil, err
	}
	for _, v := range candidates {
		flips, err := b.readFlips(bank, b.Dev.Map.PhysicalToLogical(v))
		if err != nil {
			return nil, err
		}
		if flips > 0 {
			victims = append(victims, v)
		}
	}
	return victims, nil
}

// RowCloneSucceeds probes whether an intra-subarray RowClone works for
// the (src, dst) pair: write a known pattern to src, a different one to
// dst, attempt the clone, and read dst back. A clean copy of src's data
// means success (§5.4.1, Key Insight 2).
func (b *Bench) RowCloneSucceeds(bank, srcLogical, dstLogical int) (bool, error) {
	if err := b.initRow(bank, srcLogical, dram.RowStripe); err != nil {
		return false, err
	}
	if err := b.initRow(bank, dstLogical, dram.ColStripe); err != nil {
		return false, err
	}
	if _, err := b.Dev.TryRowClone(bank, srcLogical, dstLogical); err != nil {
		return false, err
	}
	b.Dev.Wait(b.Dev.Tim.TRP)
	flips, err := b.readFlips(bank, dstLogical)
	if err != nil {
		return false, err
	}
	if flips > 0 {
		return false, nil
	}
	p, written := b.Dev.PatternOf(bank, dstLogical)
	return written && p == dram.RowStripe, nil
}
